// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation at reduced scale (full-scale tables come from cmd/netpipe,
// cmd/overlap, cmd/multirail and cmd/nasbench). Virtual-time results are
// reported as custom metrics: `us_oneway`, `MBps`, `us_sendtime` and
// `vsec_exec` — those, not ns/op, are the reproduced quantities.
package repro

import (
	"testing"

	"repro/bench"
	"repro/cluster"
	"repro/internal/nas"
	"repro/internal/nmad"
	"repro/internal/topo"
	"repro/mpi"
)

// oneWayUS runs a short pingpong and returns the one-way latency in µs.
func oneWayUS(b *testing.B, stack cluster.Stack, size int, o bench.NetpipeOptions) float64 {
	b.Helper()
	s, err := bench.Latency(stack, []int{size}, o)
	if err != nil {
		b.Fatal(err)
	}
	return s.Points[0].Y
}

func bwMBps(b *testing.B, stack cluster.Stack, size int) float64 {
	b.Helper()
	s, err := bench.Bandwidth(stack, []int{size}, bench.NetpipeOptions{Iters: 3})
	if err != nil {
		b.Fatal(err)
	}
	return s.Points[0].Y
}

// ---- Figure 4: Infiniband latency/bandwidth ---------------------------------

func BenchmarkFig4aLatencyIB(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
		any   bool
	}{
		{"MVAPICH2", cluster.MVAPICH2(), false},
		{"OpenMPI", cluster.OpenMPIIB(), false},
		{"NMadIB", cluster.MPICH2NmadIB(), false},
		{"NMadIB_AnySource", cluster.MPICH2NmadIB(), true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, tc.stack, 4, bench.NetpipeOptions{Iters: 10, AnySource: tc.any})
			}
			b.ReportMetric(us, "us_oneway")
		})
	}
}

func BenchmarkFig4bBandwidthIB(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"MVAPICH2", cluster.MVAPICH2()},
		{"OpenMPI", cluster.OpenMPIIB()},
		{"NMadIB", cluster.MPICH2NmadIB()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bwMBps(b, tc.stack, 1<<20)
			}
			b.ReportMetric(mbps, "MBps_1MB")
		})
	}
}

// ---- Figure 5: multirail -----------------------------------------------------

func BenchmarkFig5aLatencyMultirail(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"NMadMX", cluster.MPICH2NmadMX()},
		{"NMadIB", cluster.MPICH2NmadIB()},
		{"NMadMulti", cluster.MPICH2NmadMulti()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, tc.stack, 4, bench.NetpipeOptions{Iters: 10})
			}
			b.ReportMetric(us, "us_oneway")
		})
	}
}

func BenchmarkFig5bBandwidthMultirail(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"NMadMX", cluster.MPICH2NmadMX()},
		{"NMadIB", cluster.MPICH2NmadIB()},
		{"NMadMulti", cluster.MPICH2NmadMulti()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bwMBps(b, tc.stack, 16<<20)
			}
			b.ReportMetric(mbps, "MBps_16MB")
		})
	}
}

// ---- Figure 6: PIOMan latency overhead ----------------------------------------

func BenchmarkFig6aShmPIOMan(b *testing.B) {
	intra := bench.NetpipeOptions{Iters: 10, IntraNode: true}
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"Nemesis", cluster.MPICH2NmadIB()},
		{"NemesisPIOMan", cluster.MPICH2NmadIB().WithPIOMan(true)},
		{"OpenMPI", cluster.OpenMPIIB()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, tc.stack, 4, intra)
			}
			b.ReportMetric(us, "us_oneway")
		})
	}
}

func BenchmarkFig6bMXPIOMan(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"OpenMPI_PML_MX", cluster.OpenMPICMMX()},
		{"OpenMPI_BTL_MX", cluster.OpenMPIBTLMX()},
		{"NMadMX", cluster.MPICH2NmadMX()},
		{"NMadMX_PIOMan", cluster.MPICH2NmadMX().WithPIOMan(true)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, tc.stack, 4, bench.NetpipeOptions{Iters: 10})
			}
			b.ReportMetric(us, "us_oneway")
		})
	}
}

// ---- Figure 7: overlap ---------------------------------------------------------

func BenchmarkFig7aEagerOverlap(b *testing.B) {
	o := bench.OverlapOptions{ComputeUS: 20, Iters: 5}
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"NMadMX", cluster.MPICH2NmadMX()},
		{"NMadMX_PIOMan", cluster.MPICH2NmadMX().WithPIOMan(true)},
		{"OpenMPI_BTL_MX", cluster.OpenMPIBTLMX()},
		{"OpenMPI_PML_MX", cluster.OpenMPICMMX()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				t, err := bench.OverlapOnce(tc.stack, 16<<10, o)
				if err != nil {
					b.Fatal(err)
				}
				us = t * 1e6
			}
			b.ReportMetric(us, "us_sendtime_16K")
		})
	}
}

func BenchmarkFig7bRndvOverlap(b *testing.B) {
	o := bench.OverlapOptions{ComputeUS: 400, Iters: 5}
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"NMadIB", cluster.MPICH2NmadIB()},
		{"NMadIB_PIOMan", cluster.MPICH2NmadIB().WithPIOMan(true)},
		{"OpenMPI", cluster.OpenMPIIB()},
		{"MVAPICH2", cluster.MVAPICH2()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				t, err := bench.OverlapOnce(tc.stack, 256<<10, o)
				if err != nil {
					b.Fatal(err)
				}
				us = t * 1e6
			}
			b.ReportMetric(us, "us_sendtime_256K")
		})
	}
}

// ---- Figure 8: NAS kernels (class S at benchmark scale) -------------------------

func BenchmarkFig8NAS(b *testing.B) {
	for _, k := range nas.Kernels() {
		k := k
		for _, tc := range []struct {
			name  string
			stack cluster.Stack
		}{
			{"MVAPICH2", cluster.MVAPICH2()},
			{"NMad", cluster.MPICH2NmadIB()},
			{"NMadPIOMan", cluster.MPICH2NmadIB().WithPIOMan(true)},
		} {
			b.Run(k.Name+"/"+tc.name, func(b *testing.B) {
				var vsec float64
				for i := 0; i < b.N; i++ {
					r, err := bench.RunNASKernel(k, tc.stack, 8, nas.ClassS)
					if err != nil {
						b.Fatal(err)
					}
					if !r.Verified {
						b.Fatalf("%s not verified", k.Name)
					}
					vsec = r.Seconds
				}
				b.ReportMetric(vsec*1000, "vmsec_exec")
			})
		}
	}
}

// ---- Ablations (DESIGN.md A1–A4) -------------------------------------------------

// BenchmarkAblationNestedHandshake compares the direct CH3→NewMadeleine path
// against the generic Nemesis module whose CH3 rendezvous nests the
// library's own handshake (§2.1.3, Fig. 2).
func BenchmarkAblationNestedHandshake(b *testing.B) {
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{
		{"DirectBypass", cluster.MPICH2NmadIB()},
		{"GenericNetmod", cluster.MPICH2NemesisGeneric()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, tc.stack, 256<<10, bench.NetpipeOptions{Iters: 5})
			}
			b.ReportMetric(us, "us_oneway_256K")
		})
	}
}

// BenchmarkAblationAggregation measures a burst of small sends with and
// without the aggregation strategy.
func BenchmarkAblationAggregation(b *testing.B) {
	burst := func(stack cluster.Stack) float64 {
		var dt float64
		cfg := mpi.Config{Cluster: cluster.Xeon2(), Stack: stack, NP: 2,
			Placement: topo.Placement{0, 1}}
		_, err := mpi.Run(cfg, func(c *mpi.Comm) {
			const n = 64
			msg := make([]byte, 128)
			if c.Rank() == 0 {
				c.Barrier()
				t0 := c.Wtime()
				var qs []*mpi.Request
				for i := 0; i < n; i++ {
					qs = append(qs, c.Isend(1, 1, msg))
				}
				c.WaitAll(qs...)
				c.Recv(1, 2, make([]byte, 1)) // all delivered
				dt = c.Wtime() - t0
			} else {
				c.Barrier()
				for i := 0; i < n; i++ {
					c.Recv(0, 1, make([]byte, 128))
				}
				c.Send(0, 2, make([]byte, 1))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return dt * 1e6
	}
	agg := cluster.MPICH2NmadIB()
	noAgg := cluster.MPICH2NmadIB()
	noAgg.Name = "mpich2-nmad-ib-noaggr"
	noAgg.Strategy = nmad.StratDefault
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{{"Aggregation", agg}, {"Default", noAgg}} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = burst(tc.stack)
			}
			b.ReportMetric(us, "us_burst64x128B")
		})
	}
}

// BenchmarkAblationSplitRatio compares the sampling-derived split against a
// static 50/50 split on asymmetric rails (IB at full rate, MX at half rate).
func BenchmarkAblationSplitRatio(b *testing.B) {
	slowMX := cluster.RailMX()
	slowMX.BytesPerSec /= 2
	adaptive := cluster.MPICH2Nmad("nmad-multi-adaptive", cluster.RailIB(), slowMX)
	static := cluster.MPICH2Nmad("nmad-multi-static", cluster.RailIB(), slowMX)
	static.Strategy = nmad.StratSplitStatic
	for _, tc := range []struct {
		name  string
		stack cluster.Stack
	}{{"AdaptiveSampling", adaptive}, {"Static5050", static}} {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bwMBps(b, tc.stack, 16<<20)
			}
			b.ReportMetric(mbps, "MBps_16MB")
		})
	}
}

// BenchmarkAblationAnySource quantifies the §3.2 probe-and-post machinery.
func BenchmarkAblationAnySource(b *testing.B) {
	for _, tc := range []struct {
		name string
		any  bool
	}{{"KnownSource", false}, {"AnySource", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = oneWayUS(b, cluster.MPICH2NmadIB(), 4,
					bench.NetpipeOptions{Iters: 10, AnySource: tc.any})
			}
			b.ReportMetric(us, "us_oneway")
		})
	}
}
