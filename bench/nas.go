package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/nas"
	"repro/internal/trace"
	"repro/mpi"
)

// NASResult is one (kernel, stack, np) execution.
type NASResult struct {
	Kernel   string    `json:"kernel"`
	Stack    string    `json:"stack"`
	NP       int       `json:"np"` // actual process count (9/36 for BT/SP at 8/32)
	Class    nas.Class `json:"class"`
	Seconds  float64   `json:"seconds"`
	Verified bool      `json:"verified"`
	// Counters is the run's registry snapshot.
	Counters *mpi.CounterSnapshot `json:"counters,omitempty"`
}

// NASStacks returns the four implementations compared in Fig. 8.
func NASStacks() []cluster.Stack {
	return []cluster.Stack{
		cluster.MVAPICH2(),
		cluster.OpenMPIIB(),
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
	}
}

// RunNASKernel executes one kernel under one stack on the Grid5000 testbed
// with the default collective selection.
func RunNASKernel(k nas.Kernel, stack cluster.Stack, np int, class nas.Class) (NASResult, error) {
	return RunNASKernelTuned(k, stack, np, class, nil)
}

// RunNASKernelTuned is RunNASKernel with a calibrated tuning table
// installed (nil keeps the defaults) — the table a cmd/nasbench -tuned run
// feeds from tune.TableFor. The table is resolved through the same
// Config.Coll wiring applications use, so a mismatched calibration stack
// fails the run instead of silently mis-selecting.
func RunNASKernelTuned(k nas.Kernel, stack cluster.Stack, np int, class nas.Class, table *coll.Table) (NASResult, error) {
	return RunNASKernelTraced(k, stack, np, class, table, nil)
}

// RunNASKernelTraced is RunNASKernelTuned with an optional event trace
// attached to the run (nil records nothing).
func RunNASKernelTraced(k nas.Kernel, stack cluster.Stack, np int, class nas.Class, table *coll.Table, tr *trace.Trace) (NASResult, error) {
	actual := k.AdjustNP(np)
	var res nas.Result
	cfg := mpi.Config{Cluster: cluster.Grid5000(), Stack: stack, NP: actual, Trace: tr}
	cfg.Coll.Table = table
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		r := k.Run(c, class)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		return NASResult{}, fmt.Errorf("%s/%s np=%d: %w", k.Name, stack.Name, actual, err)
	}
	return NASResult{
		Kernel: k.Name, Stack: stack.Name, NP: actual, Class: class,
		Seconds: res.Seconds, Verified: res.Verified,
		Counters: rep.Counters(),
	}, nil
}

// RunNAS sweeps kernels × stacks at one requested process count (Fig. 8 has
// one panel per process count: 8/9, 16, 32/36, 64). tableFor supplies the
// calibrated tuning table per stack name (nil, or a nil return, keeps the
// default selection) — pass tune.TableFor to run the calibrated variant.
func RunNAS(class nas.Class, np int, kernels []nas.Kernel, stacks []cluster.Stack, tableFor func(string) *coll.Table) ([]NASResult, error) {
	var out []NASResult
	for _, k := range kernels {
		for _, s := range stacks {
			var tab *coll.Table
			if tableFor != nil {
				tab = tableFor(s.Name)
			}
			r, err := RunNASKernelTuned(k, s, np, class, tab)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// WriteNASDeltaTable renders a default-vs-tuned comparison: one row per
// (kernel, stack) pair with both execution times and the relative win of
// the calibrated tables — the end-to-end answer to "does per-stack
// calibration move whole kernels, not just microbenchmarks?".
func WriteNASDeltaTable(w io.Writer, title string, def, tuned []NASResult) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-8s %-24s %12s %12s %9s\n", "kernel", "stack", "default", "tuned", "delta")
	for _, d := range def {
		for _, t := range tuned {
			if t.Kernel != d.Kernel || t.Stack != d.Stack || t.NP != d.NP {
				continue
			}
			delta := 0.0
			if d.Seconds > 0 {
				delta = (d.Seconds - t.Seconds) / d.Seconds * 100
			}
			mark := ""
			if !d.Verified || !t.Verified {
				mark = "!"
			}
			fmt.Fprintf(w, "%-8s %-24s %11.4fs %11.4fs %8.1f%%%s\n",
				d.Kernel, d.Stack, d.Seconds, t.Seconds, delta, mark)
		}
	}
}

// WriteNASTable renders results grouped like one Fig. 8 panel: one row per
// kernel, one column per stack, cells in seconds.
func WriteNASTable(w io.Writer, title string, results []NASResult) {
	fmt.Fprintf(w, "# %s\n", title)
	var kernels []string
	var stacks []string
	seenK := map[string]bool{}
	seenS := map[string]bool{}
	for _, r := range results {
		if !seenK[r.Kernel] {
			seenK[r.Kernel] = true
			kernels = append(kernels, r.Kernel)
		}
		if !seenS[r.Stack] {
			seenS[r.Stack] = true
			stacks = append(stacks, r.Stack)
		}
	}
	header := []string{fmt.Sprintf("%-8s", "kernel")}
	for _, s := range stacks {
		header = append(header, fmt.Sprintf("%24s", s))
	}
	fmt.Fprintln(w, strings.Join(header, " "))
	for _, k := range kernels {
		row := []string{fmt.Sprintf("%-8s", k)}
		for _, s := range stacks {
			cell := "-"
			for _, r := range results {
				if r.Kernel == k && r.Stack == s {
					mark := ""
					if !r.Verified {
						mark = "!"
					}
					cell = fmt.Sprintf("%.2fs%s (np=%d)", r.Seconds, mark, r.NP)
				}
			}
			row = append(row, fmt.Sprintf("%24s", cell))
		}
		fmt.Fprintln(w, strings.Join(row, " "))
	}
}
