package bench

import "repro/cluster"

// collect builds a figure from (label, producer) pairs, failing fast.
func collect(name, title, xl, yl string, produce []func() (Series, error)) (*Figure, error) {
	f := &Figure{Name: name, Title: title, XLabel: xl, YLabel: yl}
	for _, p := range produce {
		s, err := p()
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig4a reproduces Fig. 4(a): Infiniband small-message latency for
// MVAPICH2, Open MPI, MPICH2:Nem:Nmad:IB and the ANY_SOURCE variant.
func Fig4a() (*Figure, error) {
	sizes := LatencySizes()
	return collect("fig4a", "Infiniband latency", "size(B)", "latency(us)",
		[]func() (Series, error){
			func() (Series, error) { return Latency(cluster.MVAPICH2(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.OpenMPIIB(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{}) },
			func() (Series, error) {
				return Latency(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{AnySource: true})
			},
		})
}

// Fig4b reproduces Fig. 4(b): Infiniband bandwidth.
func Fig4b() (*Figure, error) {
	sizes := BandwidthSizes()
	return collect("fig4b", "Infiniband bandwidth", "size(B)", "bandwidth(MBps)",
		[]func() (Series, error){
			func() (Series, error) { return Bandwidth(cluster.MVAPICH2(), sizes, NetpipeOptions{Iters: 3}) },
			func() (Series, error) { return Bandwidth(cluster.OpenMPIIB(), sizes, NetpipeOptions{Iters: 3}) },
			func() (Series, error) { return Bandwidth(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{Iters: 3}) },
		})
}

// Fig5a reproduces Fig. 5(a): multirail latency vs the single rails.
func Fig5a() (*Figure, error) {
	sizes := LatencySizes()
	return collect("fig5a", "Multirail latency (MX+IB)", "size(B)", "latency(us)",
		[]func() (Series, error){
			func() (Series, error) { return Latency(cluster.MPICH2NmadMX(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.MPICH2NmadMulti(), sizes, NetpipeOptions{}) },
		})
}

// Fig5b reproduces Fig. 5(b): multirail bandwidth approaches the sum of the
// two rails for large messages.
func Fig5b() (*Figure, error) {
	sizes := BandwidthSizes()
	return collect("fig5b", "Multirail bandwidth (MX+IB)", "size(B)", "bandwidth(MBps)",
		[]func() (Series, error){
			func() (Series, error) { return Bandwidth(cluster.MPICH2NmadMX(), sizes, NetpipeOptions{Iters: 3}) },
			func() (Series, error) { return Bandwidth(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{Iters: 3}) },
			func() (Series, error) {
				return Bandwidth(cluster.MPICH2NmadMulti(), sizes, NetpipeOptions{Iters: 3})
			},
		})
}

// Fig6a reproduces Fig. 6(a): shared-memory latency with and without PIOMan,
// against Open MPI.
func Fig6a() (*Figure, error) {
	sizes := LatencySizes()
	intra := NetpipeOptions{IntraNode: true}
	return collect("fig6a", "Shared-memory latency w/ PIOMan", "size(B)", "latency(us)",
		[]func() (Series, error){
			func() (Series, error) { return Latency(cluster.MPICH2NmadIB(), sizes, intra) },
			func() (Series, error) {
				return Latency(cluster.MPICH2NmadIB().WithPIOMan(true), sizes, intra)
			},
			func() (Series, error) { return Latency(cluster.OpenMPIIB(), sizes, intra) },
		})
}

// Fig6b reproduces Fig. 6(b): Myrinet MX latency across Open MPI PML/BTL and
// MPICH2-NMad with and without PIOMan.
func Fig6b() (*Figure, error) {
	sizes := LatencySizes()
	return collect("fig6b", "MX latency w/ PIOMan", "size(B)", "latency(us)",
		[]func() (Series, error){
			func() (Series, error) { return Latency(cluster.OpenMPICMMX(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.OpenMPIBTLMX(), sizes, NetpipeOptions{}) },
			func() (Series, error) { return Latency(cluster.MPICH2NmadMX(), sizes, NetpipeOptions{}) },
			func() (Series, error) {
				return Latency(cluster.MPICH2NmadMX().WithPIOMan(true), sizes, NetpipeOptions{})
			},
		})
}

// Fig7a reproduces Fig. 7(a): overlapping eager messages over MX with 20 µs
// of injected computation.
func Fig7a() (*Figure, error) {
	sizes := []int{4 << 10, 16 << 10}
	o := OverlapOptions{ComputeUS: 20}
	return collect("fig7a", "Eager overlap over MX (20us compute)", "size(B)", "send time(us)",
		[]func() (Series, error){
			func() (Series, error) { return OverlapReference(cluster.MPICH2NmadMX(), sizes) },
			func() (Series, error) { return Overlap(cluster.MPICH2NmadMX(), sizes, o) },
			func() (Series, error) { return Overlap(cluster.MPICH2NmadMX().WithPIOMan(true), sizes, o) },
			func() (Series, error) { return Overlap(cluster.OpenMPIBTLMX(), sizes, o) },
			func() (Series, error) { return Overlap(cluster.OpenMPICMMX(), sizes, o) },
		})
}

// Fig7b reproduces Fig. 7(b): rendezvous progression over Infiniband with
// 400 µs of injected computation.
func Fig7b() (*Figure, error) {
	sizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20}
	o := OverlapOptions{ComputeUS: 400}
	return collect("fig7b", "Rendezvous overlap over IB (400us compute)", "size(B)", "send time(us)",
		[]func() (Series, error){
			func() (Series, error) { return OverlapReference(cluster.MPICH2NmadIB(), sizes) },
			func() (Series, error) { return Overlap(cluster.MPICH2NmadIB(), sizes, o) },
			func() (Series, error) { return Overlap(cluster.MPICH2NmadIB().WithPIOMan(true), sizes, o) },
			func() (Series, error) { return Overlap(cluster.OpenMPIIB(), sizes, o) },
			func() (Series, error) { return Overlap(cluster.MVAPICH2(), sizes, o) },
		})
}
