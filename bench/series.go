// Package bench regenerates every figure of the paper's evaluation (§4):
// Netpipe latency/bandwidth sweeps (Figs. 4–6), the communication/computation
// overlap micro-benchmark (Fig. 7), and the NAS kernel runs (Fig. 8), plus
// the ablation experiments catalogued in DESIGN.md. Each figure is expressed
// as a set of labelled series that print as aligned text tables comparable
// to the paper's plots.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the Y value at x (exact match) and whether it exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a named set of series sharing an X axis.
type Figure struct {
	Name   string // e.g. "fig4a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(n float64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%gM", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%gK", n/(1<<10))
	default:
		return fmt.Sprintf("%g", n)
	}
}

// WriteTable renders the figure as an aligned text table: one row per X
// value, one column per series.
func (f *Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.Name, f.Title)
	fmt.Fprintf(w, "# x: %s   y: %s\n", f.XLabel, f.YLabel)

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{fmt.Sprintf("%-10s", f.XLabel)}
	for _, s := range f.Series {
		header = append(header, fmt.Sprintf("%18s", s.Label))
	}
	fmt.Fprintln(w, strings.Join(header, " "))
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%-10s", SizeLabel(x))}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%18.3f", y))
			} else {
				row = append(row, fmt.Sprintf("%18s", "-"))
			}
		}
		fmt.Fprintln(w, strings.Join(row, " "))
	}
}

// String renders the figure as a table.
func (f *Figure) String() string {
	var b strings.Builder
	f.WriteTable(&b)
	return b.String()
}

// LatencySizes is the paper's Fig. 4(a)/5(a)/6 X axis: 1–512 bytes.
func LatencySizes() []int {
	var out []int
	for s := 1; s <= 512; s *= 2 {
		out = append(out, s)
	}
	return out
}

// BandwidthSizes is the paper's Fig. 4(b)/5(b) X axis: 1 B – 64 MB.
func BandwidthSizes() []int {
	var out []int
	for s := 1; s <= 64<<20; s *= 4 {
		out = append(out, s)
	}
	return out
}
