package bench

import (
	"fmt"
	"time"

	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/mpi"
)

// CollBenchOptions tunes one collective-benchmark measurement: Op at Bytes
// payload per rank, averaged over Iters, on NP ranks block-placed so the
// topology-aware variants have co-located ranks to aggregate.
type CollBenchOptions struct {
	// Op is one of "bcast", "allreduce", "allgather", "alltoall", or the
	// vector ops "alltoallv", "allgatherv", "reducescatter".
	Op string
	// Bytes is the per-rank payload: the full buffer for bcast, the vector
	// bytes for allreduce (rounded down to whole float64s), the per-rank
	// block for allgather/alltoall, and the average per-rank block for the
	// vector ops (the skew redistributes it).
	Bytes int
	// Skew shapes the vector ops' per-rank counts: "uniform" (or empty),
	// "linear" (counts ramp from zero to twice the average across rank
	// pairs, zero-length blocks included) or "sparse" (everything
	// concentrated on self and right neighbour, the rest empty).
	Skew string
	// Iters averages over this many repetitions (after one warmup).
	Iters int
	// NP is the number of ranks.
	NP int
	// Algo forces one algorithm (coll.AlgoAuto lets the selector choose).
	Algo coll.Algo
	// Seg forces the pipeline segment size of the segmented algorithms in
	// bytes (0 = table entry's seg, then coll.DefSegBytes).
	Seg int
	// Stripe forces the rail-stripe width of the rail-striped algorithms
	// (0 = table entry's stripe, then no striping). Only meaningful on a
	// multirail stack: with fewer than two rails the width resolves to 0
	// whatever is forced.
	Stripe int
	// Table supplies calibrated selection thresholds for the auto rows
	// (nil keeps the built-in defaults). Ignored when Algo forces a pick.
	Table *coll.Table
	// TwoLevel enables the topology-aware variants.
	TwoLevel bool
	// NoCache disables the per-communicator schedule cache.
	NoCache bool
	// Trace, when set, records the run's event trace.
	Trace *trace.Trace
}

func (o CollBenchOptions) withDefaults() CollBenchOptions {
	if o.Op == "" {
		o.Op = "allreduce"
	}
	if o.Bytes == 0 {
		o.Bytes = 32 << 10
	}
	if o.Iters == 0 {
		o.Iters = 10
	}
	if o.NP == 0 {
		o.NP = 8
	}
	return o
}

// CollBenchResult reports one configuration's measurement.
type CollBenchResult struct {
	// PerOp is the virtual time of one collective, in seconds.
	PerOp float64
	// HostMS is the host wall-clock of the whole simulated run in
	// milliseconds — the quantity schedule caching improves.
	HostMS float64
	// Compiles and Hits are rank 0's schedule-cache counters.
	Compiles, Hits int64
	// Rails is the run's per-rail traffic (packets and bytes per rail) —
	// one entry per rail on multirail stacks, so striping benchmarks can
	// report how the payload actually split across the wires.
	Rails []mpi.RailCounter
	// Counters is the run's registry snapshot (cache effectiveness across
	// all ranks, poll split, rail traffic).
	Counters *mpi.CounterSnapshot
}

// OpKindOf maps the benchmark op name to the registry's kind.
func OpKindOf(op string) (coll.OpKind, error) {
	switch op {
	case "bcast":
		return coll.OpBcast, nil
	case "allreduce":
		return coll.OpAllreduce, nil
	case "allgather":
		return coll.OpAllgather, nil
	case "alltoall":
		return coll.OpAlltoall, nil
	case "alltoallv":
		return coll.OpAlltoallv, nil
	case "allgatherv":
		return coll.OpAllgatherv, nil
	case "reducescatter", "reduce-scatter":
		// Both the harness's historical spelling and the registry's
		// canonical OpKind name, so names copied out of colltune tables
		// work here unchanged.
		return coll.OpReduceScatter, nil
	}
	return 0, fmt.Errorf("bench: unknown collective %q", op)
}

// alltoallvLayout derives rank me's alltoallv arguments under a skew: the
// send row and receive column of the count matrix plus packed flat buffers.
func alltoallvLayout(skew string, np, bytes, me int) (scounts, rcounts []int, sbuf, rbuf []byte) {
	scounts, _ = VecCounts(skew, np, bytes, me)
	rcounts = make([]int, np)
	for s := range rcounts {
		row, _ := VecCounts(skew, np, bytes, s)
		rcounts[s] = row[me]
	}
	return scounts, rcounts, make([]byte, sumCounts(scounts)), make([]byte, sumCounts(rcounts))
}

// allgathervLayout derives the global allgatherv count vector under a skew
// plus rank me's contribution and the flat receive buffer.
func allgathervLayout(skew string, np, bytes, me int) (counts []int, mine, rbuf []byte) {
	counts, _ = VecCounts(skew, np, bytes, 0)
	return counts, make([]byte, counts[me]), make([]byte, sumCounts(counts))
}

// reduceScatterLayout derives the global reduce-scatter element counts
// under a skew (bytes averaged per rank, in float64 elements) plus rank
// me's input vector and result segment.
func reduceScatterLayout(skew string, np, bytes, me int) (counts []int, x, recv []float64) {
	bcounts, _ := VecCounts(skew, np, bytes, 0)
	counts = make([]int, np)
	for r := range counts {
		counts[r] = bcounts[r] / 8
	}
	return counts, make([]float64, sumCounts(counts)), make([]float64, counts[me])
}

// VecCounts returns the per-destination byte counts rank src sends under a
// skew pattern, averaging ~bytes per destination. The pattern depends only
// on (src, dst, np), so every rank can derive both its send row and its
// receive column of the count matrix — the global-consistency requirement
// of the vector collectives.
func VecCounts(skew string, np, bytes, src int) ([]int, error) {
	counts := make([]int, np)
	switch skew {
	case "", "uniform":
		for d := range counts {
			counts[d] = bytes
		}
	case "linear":
		div := np - 1
		if div < 1 {
			div = 1
		}
		for d := range counts {
			counts[d] = bytes * 2 * ((src + d) % np) / div
		}
	case "sparse":
		counts[src] = bytes * np / 2
		counts[(src+1)%np] = bytes * np / 2
	default:
		return nil, fmt.Errorf("bench: unknown skew %q", skew)
	}
	return counts, nil
}

// CollBenchOnce measures one stack at one (op, payload, algorithm, cache)
// configuration.
func CollBenchOnce(stack cluster.Stack, o CollBenchOptions) (CollBenchResult, error) {
	o = o.withDefaults()
	kind, err := OpKindOf(o.Op)
	if err != nil {
		return CollBenchResult{}, err
	}
	if _, err := VecCounts(o.Skew, o.NP, o.Bytes, 0); err != nil {
		return CollBenchResult{}, err
	}
	// The 2-node Xeon pair fits the calibration-scale runs byte-for-byte;
	// beyond its 16 cores the machine grows with the job — 8-core nodes
	// under the switch/rack hierarchy, as a real large allocation would —
	// so NP in the thousands measures a plausible topology instead of
	// failing a capacity check.
	cl := cluster.Xeon2()
	if o.NP > cl.NumNodes*cl.CoresPerNode {
		cl = cluster.XeonRacks((o.NP + 7) / 8)
	}
	cfg := mpi.Config{
		Cluster:      cl,
		Stack:        stack,
		NP:           o.NP,
		Placement:    topo.Block(o.NP, cl.NumNodes),
		TwoLevelColl: o.TwoLevel,
		NoSchedCache: o.NoCache,
		Trace:        o.Trace,
	}
	if o.Algo != coll.AlgoAuto {
		cfg.Coll.Force = map[coll.OpKind]coll.Algo{kind: o.Algo}
	}
	cfg.Coll.Table = o.Table
	cfg.Coll.SegBytes = o.Seg
	cfg.Coll.StripeWidth = o.Stripe

	var res CollBenchResult
	start := time.Now()
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		np := c.Size()
		body := func() {}
		switch kind {
		case coll.OpBcast:
			data := make([]byte, o.Bytes)
			body = func() { c.Bcast(0, data) }
		case coll.OpAllreduce:
			x := make([]float64, o.Bytes/8)
			body = func() { c.AllreduceF64(x, mpi.OpSum) }
		case coll.OpAllgather:
			mine := make([]byte, o.Bytes)
			out := make([][]byte, np)
			for r := range out {
				out[r] = make([]byte, o.Bytes)
			}
			body = func() { c.Allgather(mine, out) }
		case coll.OpAlltoall:
			send := make([][]byte, np)
			recv := make([][]byte, np)
			for r := range send {
				send[r] = make([]byte, o.Bytes)
				recv[r] = make([]byte, o.Bytes)
			}
			body = func() { c.Alltoall(send, recv) }
		case coll.OpAlltoallv:
			scounts, rcounts, sbuf, rbuf := alltoallvLayout(o.Skew, np, o.Bytes, c.Rank())
			body = func() { c.Alltoallv(sbuf, scounts, nil, rbuf, rcounts, nil) }
		case coll.OpAllgatherv:
			counts, mine, rbuf := allgathervLayout(o.Skew, np, o.Bytes, c.Rank())
			body = func() { c.Allgatherv(mine, rbuf, counts, nil) }
		case coll.OpReduceScatter:
			counts, x, recv := reduceScatterLayout(o.Skew, np, o.Bytes, c.Rank())
			body = func() { c.ReduceScatterF64(x, recv, counts, mpi.OpSum) }
		}
		body() // warmup: connections settle, schedule compiles
		c.Barrier()
		t0 := c.Wtime()
		for i := 0; i < o.Iters; i++ {
			body()
		}
		if c.Rank() == 0 {
			res.PerOp = (c.Wtime() - t0) / float64(o.Iters)
			res.Compiles, res.Hits = c.SchedCacheStats()
		}
	})
	res.HostMS = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return res, err
	}
	res.Counters = rep.Counters()
	res.Rails = res.Counters.Rails
	return res, nil
}

func sumCounts(counts []int) int {
	t := 0
	for _, n := range counts {
		t += n
	}
	return t
}
