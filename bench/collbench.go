package bench

import (
	"fmt"
	"time"

	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/topo"
	"repro/mpi"
)

// CollBenchOptions tunes one collective-benchmark measurement: Op at Bytes
// payload per rank, averaged over Iters, on NP ranks block-placed so the
// topology-aware variants have co-located ranks to aggregate.
type CollBenchOptions struct {
	// Op is one of "bcast", "allreduce", "allgather", "alltoall".
	Op string
	// Bytes is the per-rank payload: the full buffer for bcast, the vector
	// bytes for allreduce (rounded down to whole float64s), the per-rank
	// block for allgather/alltoall.
	Bytes int
	// Iters averages over this many repetitions (after one warmup).
	Iters int
	// NP is the number of ranks.
	NP int
	// Algo forces one algorithm (coll.AlgoAuto lets the selector choose).
	Algo coll.Algo
	// TwoLevel enables the topology-aware variants.
	TwoLevel bool
	// NoCache disables the per-communicator schedule cache.
	NoCache bool
}

func (o CollBenchOptions) withDefaults() CollBenchOptions {
	if o.Op == "" {
		o.Op = "allreduce"
	}
	if o.Bytes == 0 {
		o.Bytes = 32 << 10
	}
	if o.Iters == 0 {
		o.Iters = 10
	}
	if o.NP == 0 {
		o.NP = 8
	}
	return o
}

// CollBenchResult reports one configuration's measurement.
type CollBenchResult struct {
	// PerOp is the virtual time of one collective, in seconds.
	PerOp float64
	// HostMS is the host wall-clock of the whole simulated run in
	// milliseconds — the quantity schedule caching improves.
	HostMS float64
	// Compiles and Hits are rank 0's schedule-cache counters.
	Compiles, Hits int64
}

// opKindOf maps the benchmark op name to the registry's kind.
func opKindOf(op string) (coll.OpKind, error) {
	switch op {
	case "bcast":
		return coll.OpBcast, nil
	case "allreduce":
		return coll.OpAllreduce, nil
	case "allgather":
		return coll.OpAllgather, nil
	case "alltoall":
		return coll.OpAlltoall, nil
	}
	return 0, fmt.Errorf("bench: unknown collective %q", op)
}

// CollBenchOnce measures one stack at one (op, payload, algorithm, cache)
// configuration.
func CollBenchOnce(stack cluster.Stack, o CollBenchOptions) (CollBenchResult, error) {
	o = o.withDefaults()
	kind, err := opKindOf(o.Op)
	if err != nil {
		return CollBenchResult{}, err
	}
	cfg := mpi.Config{
		Cluster:      cluster.Xeon2(),
		Stack:        stack,
		NP:           o.NP,
		Placement:    topo.Block(o.NP, cluster.Xeon2().NumNodes),
		TwoLevelColl: o.TwoLevel,
		NoSchedCache: o.NoCache,
	}
	if o.Algo != coll.AlgoAuto {
		cfg.Coll.Force = map[coll.OpKind]coll.Algo{kind: o.Algo}
	}

	var res CollBenchResult
	start := time.Now()
	_, err = mpi.Run(cfg, func(c *mpi.Comm) {
		np := c.Size()
		body := func() {}
		switch kind {
		case coll.OpBcast:
			data := make([]byte, o.Bytes)
			body = func() { c.Bcast(0, data) }
		case coll.OpAllreduce:
			x := make([]float64, o.Bytes/8)
			body = func() { c.AllreduceF64(x, mpi.OpSum) }
		case coll.OpAllgather:
			mine := make([]byte, o.Bytes)
			out := make([][]byte, np)
			for r := range out {
				out[r] = make([]byte, o.Bytes)
			}
			body = func() { c.Allgather(mine, out) }
		case coll.OpAlltoall:
			send := make([][]byte, np)
			recv := make([][]byte, np)
			for r := range send {
				send[r] = make([]byte, o.Bytes)
				recv[r] = make([]byte, o.Bytes)
			}
			body = func() { c.Alltoall(send, recv) }
		}
		body() // warmup: connections settle, schedule compiles
		c.Barrier()
		t0 := c.Wtime()
		for i := 0; i < o.Iters; i++ {
			body()
		}
		if c.Rank() == 0 {
			res.PerOp = (c.Wtime() - t0) / float64(o.Iters)
			res.Compiles, res.Hits = c.SchedCacheStats()
		}
	})
	res.HostMS = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return res, err
	}
	return res, nil
}
