package bench

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestCollBenchOnce: the sweep harness runs every op and reports sane
// numbers, with the cache compiling once per shape.
func TestCollBenchOnce(t *testing.T) {
	for _, op := range []string{"bcast", "allreduce", "allgather", "alltoall"} {
		r, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
			Op: op, Bytes: 1024, Iters: 3, NP: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.PerOp <= 0 {
			t.Errorf("%s: per-op time %g", op, r.PerOp)
		}
		// Warmup compiles (collective + the barrier), iterations hit.
		if r.Hits < 3 {
			t.Errorf("%s: only %d cache hits over 3 iterations", op, r.Hits)
		}
	}
}

// TestCollBenchForcedAlgo: forcing an algorithm flows through to selection.
func TestCollBenchForcedAlgo(t *testing.T) {
	rd, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRecDoubling,
	})
	if err != nil {
		t.Fatal(err)
	}
	rab, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRabenseifner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rd.PerOp == rab.PerOp {
		t.Errorf("forced algorithms produced identical timings (%g): force ignored?", rd.PerOp)
	}
}

// TestCollBenchVectorOps: the irregular-counts mode runs every vector op
// across skews with the cache compiling once per shape, and cached/uncached
// virtual times agree (determinism guarantee on irregular schedules).
func TestCollBenchVectorOps(t *testing.T) {
	for _, op := range []string{"alltoallv", "allgatherv", "reducescatter"} {
		for _, skew := range []string{"uniform", "linear", "sparse"} {
			cached, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
				Op: op, Skew: skew, Bytes: 2048, Iters: 3, NP: 4,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", op, skew, err)
			}
			if cached.PerOp <= 0 {
				t.Errorf("%s/%s: per-op time %g", op, skew, cached.PerOp)
			}
			if cached.Hits < 3 {
				t.Errorf("%s/%s: only %d cache hits over 3 iterations", op, skew, cached.Hits)
			}
			uncached, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
				Op: op, Skew: skew, Bytes: 2048, Iters: 3, NP: 4, NoCache: true,
			})
			if err != nil {
				t.Fatalf("%s/%s uncached: %v", op, skew, err)
			}
			if cached.PerOp != uncached.PerOp {
				t.Errorf("%s/%s: cached %g != uncached %g", op, skew, cached.PerOp, uncached.PerOp)
			}
		}
	}
}

// TestCollBenchBadSkew: unknown skews error instead of silently running
// uniform.
func TestCollBenchBadSkew(t *testing.T) {
	if _, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "alltoallv", Skew: "zipf", NP: 4,
	}); err == nil {
		t.Fatal("unknown skew must error")
	}
}

// TestNbcOverlapVectorOps: the overlap harness drives the nonblocking
// vector collectives; with PIOMan the irregular schedules progress in the
// background.
func TestNbcOverlapVectorOps(t *testing.T) {
	for _, op := range []string{"alltoallv", "allgatherv", "reducescatter"} {
		r, err := NbcOverlapOnce(cluster.MPICH2NmadIB().WithPIOMan(true), NbcOverlapOptions{
			Op: op, Elems: 8 << 10, Iters: 2, NP: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.CommOnly <= 0 || r.Blocking <= 0 || r.Nonblocking <= 0 {
			t.Fatalf("%s: degenerate timings %+v", op, r)
		}
		if ratio := r.OverlapRatio(); ratio < 0.3 {
			t.Errorf("%s: overlap ratio %.2f under PIOMan, want >= 0.3", op, ratio)
		}
	}
	if _, err := NbcOverlapOnce(cluster.MPICH2NmadIB(), NbcOverlapOptions{Op: "bogus"}); err == nil {
		t.Fatal("unknown overlap op must error")
	}
}

// TestChainBeatsBinomialLargeBcast is the segmented-schedules acceptance
// bar: at >= 256 KiB the pipelined chain broadcast beats the monolithic
// binomial tree in virtual time on preset stacks — the pipeline moves
// n·(1 + (p-2)/S) bytes on the critical path against the tree's n·log2(p).
// Both I* forms pipeline through the same schedules (the nbc engine
// executes the identical round program), so the blocking measurement pins
// the algorithmic win.
func TestChainBeatsBinomialLargeBcast(t *testing.T) {
	for _, stack := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.OpenMPIIB()} {
		for _, bytes := range []int{256 << 10, 1 << 20} {
			bin, err := CollBenchOnce(stack, CollBenchOptions{
				Op: "bcast", Bytes: bytes, Iters: 3, NP: 8, Algo: coll.AlgoBinomial,
			})
			if err != nil {
				t.Fatal(err)
			}
			chain, err := CollBenchOnce(stack, CollBenchOptions{
				Op: "bcast", Bytes: bytes, Iters: 3, NP: 8, Algo: coll.AlgoChain, Seg: 16 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if chain.PerOp >= bin.PerOp {
				t.Errorf("%s @ %dB: chain %.1fµs >= binomial %.1fµs — pipelining buys nothing",
					stack.Name, bytes, chain.PerOp*1e6, bin.PerOp*1e6)
			}
		}
	}
}

// TestSegRingBeatsRabenseifnerLargeAllreduce: the segmented ring allreduce
// outperforms the monolithic Rabenseifner at large vectors, where the
// per-segment pipeline overlaps the elementwise reduction with the next
// segment's transfer.
func TestSegRingBeatsRabenseifnerLargeAllreduce(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	rab, err := CollBenchOnce(stack, CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 3, NP: 8, Algo: coll.AlgoRabenseifner,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := CollBenchOnce(stack, CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 3, NP: 8, Algo: coll.AlgoSegRing, Seg: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ring.PerOp >= rab.PerOp {
		t.Errorf("segmented ring %.1fµs >= rabenseifner %.1fµs at 512KB",
			ring.PerOp*1e6, rab.PerOp*1e6)
	}
}
