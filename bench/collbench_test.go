package bench

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestCollBenchOnce: the sweep harness runs every op and reports sane
// numbers, with the cache compiling once per shape.
func TestCollBenchOnce(t *testing.T) {
	for _, op := range []string{"bcast", "allreduce", "allgather", "alltoall"} {
		r, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
			Op: op, Bytes: 1024, Iters: 3, NP: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.PerOp <= 0 {
			t.Errorf("%s: per-op time %g", op, r.PerOp)
		}
		// Warmup compiles (collective + the barrier), iterations hit.
		if r.Hits < 3 {
			t.Errorf("%s: only %d cache hits over 3 iterations", op, r.Hits)
		}
	}
}

// TestCollBenchForcedAlgo: forcing an algorithm flows through to selection.
func TestCollBenchForcedAlgo(t *testing.T) {
	rd, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRecDoubling,
	})
	if err != nil {
		t.Fatal(err)
	}
	rab, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRabenseifner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rd.PerOp == rab.PerOp {
		t.Errorf("forced algorithms produced identical timings (%g): force ignored?", rd.PerOp)
	}
}

// TestCollBenchVectorOps: the irregular-counts mode runs every vector op
// across skews with the cache compiling once per shape, and cached/uncached
// virtual times agree (determinism guarantee on irregular schedules).
func TestCollBenchVectorOps(t *testing.T) {
	for _, op := range []string{"alltoallv", "allgatherv", "reducescatter"} {
		for _, skew := range []string{"uniform", "linear", "sparse"} {
			cached, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
				Op: op, Skew: skew, Bytes: 2048, Iters: 3, NP: 4,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", op, skew, err)
			}
			if cached.PerOp <= 0 {
				t.Errorf("%s/%s: per-op time %g", op, skew, cached.PerOp)
			}
			if cached.Hits < 3 {
				t.Errorf("%s/%s: only %d cache hits over 3 iterations", op, skew, cached.Hits)
			}
			uncached, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
				Op: op, Skew: skew, Bytes: 2048, Iters: 3, NP: 4, NoCache: true,
			})
			if err != nil {
				t.Fatalf("%s/%s uncached: %v", op, skew, err)
			}
			if cached.PerOp != uncached.PerOp {
				t.Errorf("%s/%s: cached %g != uncached %g", op, skew, cached.PerOp, uncached.PerOp)
			}
		}
	}
}

// TestCollBenchBadSkew: unknown skews error instead of silently running
// uniform.
func TestCollBenchBadSkew(t *testing.T) {
	if _, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "alltoallv", Skew: "zipf", NP: 4,
	}); err == nil {
		t.Fatal("unknown skew must error")
	}
}

// TestNbcOverlapVectorOps: the overlap harness drives the nonblocking
// vector collectives; with PIOMan the irregular schedules progress in the
// background.
func TestNbcOverlapVectorOps(t *testing.T) {
	for _, op := range []string{"alltoallv", "allgatherv", "reducescatter"} {
		r, err := NbcOverlapOnce(cluster.MPICH2NmadIB().WithPIOMan(true), NbcOverlapOptions{
			Op: op, Elems: 8 << 10, Iters: 2, NP: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.CommOnly <= 0 || r.Blocking <= 0 || r.Nonblocking <= 0 {
			t.Fatalf("%s: degenerate timings %+v", op, r)
		}
		if ratio := r.OverlapRatio(); ratio < 0.3 {
			t.Errorf("%s: overlap ratio %.2f under PIOMan, want >= 0.3", op, ratio)
		}
	}
	if _, err := NbcOverlapOnce(cluster.MPICH2NmadIB(), NbcOverlapOptions{Op: "bogus"}); err == nil {
		t.Fatal("unknown overlap op must error")
	}
}
