package bench

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestCollBenchOnce: the sweep harness runs every op and reports sane
// numbers, with the cache compiling once per shape.
func TestCollBenchOnce(t *testing.T) {
	for _, op := range []string{"bcast", "allreduce", "allgather", "alltoall"} {
		r, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
			Op: op, Bytes: 1024, Iters: 3, NP: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.PerOp <= 0 {
			t.Errorf("%s: per-op time %g", op, r.PerOp)
		}
		// Warmup compiles (collective + the barrier), iterations hit.
		if r.Hits < 3 {
			t.Errorf("%s: only %d cache hits over 3 iterations", op, r.Hits)
		}
	}
}

// TestCollBenchForcedAlgo: forcing an algorithm flows through to selection.
func TestCollBenchForcedAlgo(t *testing.T) {
	rd, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRecDoubling,
	})
	if err != nil {
		t.Fatal(err)
	}
	rab, err := CollBenchOnce(cluster.MPICH2NmadIB(), CollBenchOptions{
		Op: "allreduce", Bytes: 512 << 10, Iters: 2, NP: 8, Algo: coll.AlgoRabenseifner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rd.PerOp == rab.PerOp {
		t.Errorf("forced algorithms produced identical timings (%g): force ignored?", rd.PerOp)
	}
}
