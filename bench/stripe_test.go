package bench

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// stripeBcast measures a chain bcast of 1 MiB between two single-rank nodes
// — every hop of the chain crosses the network, so the virtual time is a
// pure measure of inter-node transfer capability.
func stripeBcast(t *testing.T, stack cluster.Stack, seg, stripe int) CollBenchResult {
	t.Helper()
	r, err := CollBenchOnce(stack, CollBenchOptions{
		Op: "bcast", Bytes: 1 << 20, Iters: 4, NP: 2,
		Algo: coll.AlgoChain, Seg: seg, Stripe: stripe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStripedBcastBandwidthAdditivity is the end-to-end bandwidth claim of
// rail striping: on the heterogeneous two-rail stack (IB + MX), the striped
// chain bcast at 1 MiB must beat the best single rail's virtual time by at
// least 1.5× — the two rails' bandwidths add, they don't just average.
func TestStripedBcastBandwidthAdditivity(t *testing.T) {
	const seg = 64 << 10
	striped := stripeBcast(t, cluster.MPICH2NmadMulti(), seg, 2).PerOp
	ib := stripeBcast(t, cluster.MPICH2NmadIB(), seg, 0).PerOp
	mx := stripeBcast(t, cluster.MPICH2NmadMX(), seg, 0).PerOp
	best := ib
	if mx < best {
		best = mx
	}
	if ratio := best / striped; ratio < 1.5 {
		t.Fatalf("striped bcast %.1fµs vs best single rail %.1fµs: ratio %.2f < 1.5 — rails not additive",
			striped*1e6, best*1e6, ratio)
	}
}

// TestStripedBeatsUnstripedEagerSegments pins down the regime where the
// schedule-level stripe is the only mechanism in play: 32 KiB segments sit
// at the eager threshold, so unstriped they ride the single best rail whole
// (the rendezvous split strategy never sees them). The stripe hint forces
// them through the offset-addressed rendezvous path across both rails and
// must win despite the per-segment handshake.
func TestStripedBeatsUnstripedEagerSegments(t *testing.T) {
	const seg = 32 << 10
	stack := cluster.MPICH2NmadMulti()
	unstriped := stripeBcast(t, stack, seg, 0)
	striped := stripeBcast(t, stack, seg, 2)
	if striped.PerOp >= unstriped.PerOp {
		t.Fatalf("striped %.1fµs not faster than unstriped %.1fµs at eager-sized segments",
			striped.PerOp*1e6, unstriped.PerOp*1e6)
	}
	// The per-rail counters must show real payload on both wires for the
	// striped run. The unstriped run keeps the payload on one rail (only
	// control-sized traffic elsewhere).
	if len(striped.Rails) != 2 {
		t.Fatalf("expected two rail counters, got %v", striped.Rails)
	}
	for _, rc := range striped.Rails {
		if rc.Bytes < 1<<20 {
			t.Errorf("striped run: rail %s carried only %d bytes", rc.Name, rc.Bytes)
		}
	}
	minU, maxU := unstriped.Rails[0].Bytes, unstriped.Rails[0].Bytes
	for _, rc := range unstriped.Rails[1:] {
		if rc.Bytes < minU {
			minU = rc.Bytes
		}
		if rc.Bytes > maxU {
			maxU = rc.Bytes
		}
	}
	if minU > maxU/10 {
		t.Errorf("unstriped run should keep the payload on one rail, got %v", unstriped.Rails)
	}
}

// TestSingleRailStackIgnoresStripe: forcing a stripe width on a single-rail
// stack must be a bit-exact no-op — the width resolves to zero before it can
// perturb selection, keys, or schedules.
func TestSingleRailStackIgnoresStripe(t *testing.T) {
	plain := stripeBcast(t, cluster.MPICH2NmadIB(), 64<<10, 0)
	forced := stripeBcast(t, cluster.MPICH2NmadIB(), 64<<10, 2)
	if plain.PerOp != forced.PerOp {
		t.Fatalf("stripe width changed a single-rail run: %.3fµs vs %.3fµs",
			plain.PerOp*1e6, forced.PerOp*1e6)
	}
}
