package bench

import (
	"testing"

	"repro/cluster"
)

// TestCollStormSmoke: the stress harness completes a small storm under
// PIOMan, every started op finishes, the pools get exercised and the window
// actually reaches the requested in-flight depth.
func TestCollStormSmoke(t *testing.T) {
	r, err := CollStormOnce(cluster.MPICH2NmadIB().WithPIOMan(true), CollStormOptions{
		NP: 4, InFlight: 64, Batches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops != 4*16*2 {
		t.Errorf("ops = %d, want %d", r.Ops, 4*16*2)
	}
	if r.InFlight < 64 {
		t.Errorf("in-flight window %d, want >= 64", r.InFlight)
	}
	if r.NsPerOp <= 0 || r.OpsPerSec <= 0 || r.VirtualS <= 0 {
		t.Errorf("degenerate measurement: %+v", r)
	}
	cs := r.Counters
	if cs == nil {
		t.Fatal("no counter snapshot")
	}
	if cs.ReqPoolHits == 0 || cs.OpPoolHits == 0 {
		t.Errorf("pools never hit: req %d/%d, op %d/%d",
			cs.ReqPoolHits, cs.ReqPoolMisses, cs.OpPoolHits, cs.OpPoolMisses)
	}
	if cs.ReqInFlight < 4 {
		t.Errorf("peak in-flight requests %d, want >= NP", cs.ReqInFlight)
	}
}

// TestCollStormDeterminism: the storm's virtual time is a pure function of
// its configuration — host-side pooling, batching and window refills leave
// no trace in simulated seconds.
func TestCollStormDeterminism(t *testing.T) {
	opts := CollStormOptions{NP: 4, InFlight: 48, Batches: 2}
	a, err := CollStormOnce(cluster.MPICH2NmadIB().WithPIOMan(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollStormOnce(cluster.MPICH2NmadIB().WithPIOMan(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualS != b.VirtualS {
		t.Errorf("virtual time not deterministic: %v != %v", a.VirtualS, b.VirtualS)
	}
}

// BenchmarkCollStorm reports the host cost of the stress workload —
// ops/sec, ns per simulated operation and allocations — at a moderate
// window. CI runs it with -benchmem as the hot-path regression smoke.
func BenchmarkCollStorm(b *testing.B) {
	stack := cluster.MPICH2NmadIB().WithPIOMan(true)
	opts := CollStormOptions{NP: 8, InFlight: 256, Batches: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := CollStormOnce(stack, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OpsPerSec, "storm-ops/s")
		b.ReportMetric(r.AllocsPerOp, "storm-allocs/op")
	}
}
