package bench

import (
	"testing"

	"repro/cluster"
)

// TestNbcOverlapPIOManWins pins the tentpole claim at benchmark level: the
// PIOMan-enabled stack hides a strictly larger fraction of the collective
// behind computation than the same stack without the progress thread.
func TestNbcOverlapPIOManWins(t *testing.T) {
	o := NbcOverlapOptions{Elems: 32 << 10, ComputeUS: 300, Iters: 2}
	base := cluster.MPICH2NmadIB()

	plain, err := NbcOverlapOnce(base, o)
	if err != nil {
		t.Fatal(err)
	}
	pio, err := NbcOverlapOnce(base.WithPIOMan(true), o)
	if err != nil {
		t.Fatal(err)
	}
	if pio.OverlapRatio() <= plain.OverlapRatio() {
		t.Fatalf("pioman overlap %.2f not above plain %.2f",
			pio.OverlapRatio(), plain.OverlapRatio())
	}
	if pio.OverlapRatio() < 0.5 {
		t.Fatalf("pioman hides only %.0f%% of the collective", 100*pio.OverlapRatio())
	}
	// Sanity: the blocking sequence is never cheaper than its parts.
	if plain.Blocking < plain.CommOnly || plain.Blocking < plain.Compute {
		t.Fatalf("inconsistent blocking measurement: %+v", plain)
	}
}

// TestNbcOverlapSweepShape: the sweep returns one ratio in [0, 1] per size.
func TestNbcOverlapSweepShape(t *testing.T) {
	s, err := NbcOverlapSweep(cluster.MPICH2NmadIB().WithPIOMan(true),
		[]int{512, 4 << 10}, NbcOverlapOptions{ComputeUS: 100, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("sweep points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Y < 0 || p.Y > 1.5 {
			t.Fatalf("ratio out of range at %g: %g", p.X, p.Y)
		}
	}
}
