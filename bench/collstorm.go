package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/cluster"
	"repro/internal/topo"
	"repro/mpi"
)

// CollStorm is the heavy-traffic host-path stress workload: every rank keeps
// a large window of nonblocking allreduces outstanding at once, spread over
// several sibling Split communicators, and refills the window for a number of
// batches. Unlike collbench — which measures the virtual time of one
// collective — collstorm measures the *host* cost of sustaining thousands of
// concurrent operations: matching-queue pressure (the bucketed posted and
// unexpected queues), free-list effectiveness (pooled requests, shm jobs and
// nbc ops) and schedule-cache rebinding, reported as ops/sec, ns/op and
// allocs/op of wall-clock simulator time.
//
// Each window slot uses a distinct vector length, so slots map to distinct
// schedule-cache keys: concurrent same-communicator ops never collide on an
// in-use cache entry (which would force throwaway compiles), and batch ≥ 2
// runs entirely on cache hits — the steady state the pools target.

// CollStormOptions tunes one stress measurement.
type CollStormOptions struct {
	// NP is the number of ranks (round-robin placed so sibling
	// communicators span nodes and the shm and network paths are both
	// under load). Up to 16 ranks run on the paper's two-node Xeon
	// testbed; larger NP scales the node count at 8 cores per node.
	NP int
	// Workers is the number of PIOMan background progression workers per
	// rank (0/1 = the classic single worker).
	Workers int
	// Splits is the number of sibling Split communicators each rank joins
	// (colors rotate over low rank bits, so each has about NP/2 members).
	Splits int
	// InFlight is the total number of concurrently outstanding
	// nonblocking collectives across all ranks; each rank holds
	// ceil(InFlight/NP) window slots.
	InFlight int
	// Batches is how many times the window is refilled and drained.
	Batches int
	// VecLen is the base float64 vector length; slot s uses VecLen+s so
	// every slot has a distinct schedule-cache key.
	VecLen int
}

func (o CollStormOptions) withDefaults() CollStormOptions {
	if o.NP == 0 {
		o.NP = 8
	}
	if o.Splits == 0 {
		o.Splits = 3
	}
	if o.InFlight == 0 {
		o.InFlight = 1000
	}
	if o.Batches == 0 {
		o.Batches = 4
	}
	if o.VecLen == 0 {
		o.VecLen = 16
	}
	return o
}

// CollStormResult reports one stress measurement.
type CollStormResult struct {
	// Ops is the total number of nonblocking collectives started across
	// all ranks and batches.
	Ops int64 `json:"ops"`
	// InFlight is the concurrently outstanding op count during each
	// batch (the requested window, rounded up to a multiple of NP).
	InFlight int `json:"in_flight"`
	// HostMS is the host wall-clock of the whole simulated run.
	HostMS float64 `json:"host_ms"`
	// NsPerOp is host nanoseconds per operation (HostMS / Ops).
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the sustained host-side operation rate.
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp is heap allocations per operation over the whole run
	// (includes first-batch schedule compiles; later batches rebind).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CachedAllocsPerOp is heap allocations per operation over batches
	// 1..N-1 only — the steady state where every schedule start is a cache
	// hit and the free lists are primed. This is the number the CI
	// regression threshold pins (0 when Batches < 2).
	CachedAllocsPerOp float64 `json:"cached_allocs_per_op"`
	// VirtualS is the deterministic simulated time of the run.
	VirtualS float64 `json:"virtual_s"`
	// Events is the engine's total scheduled-event count: a deterministic,
	// noise-free proxy for host-side simulation work (bit-identical across
	// repetitions of the same configuration).
	Events int64 `json:"events"`
	// NsPerEvent is host nanoseconds per engine event. Per-op host time
	// legitimately grows O(log NP) with the collective's round count; per-
	// event host time must stay flat as NP grows — any growth there is a
	// host-side scaling bug (dense per-rank state, super-linear matching),
	// not algorithm depth.
	NsPerEvent float64 `json:"ns_per_event"`
	// Counters is the run-wide registry snapshot: pool hits/misses,
	// request in-flight peak, nbc started/completed, queue traffic.
	Counters *mpi.CounterSnapshot `json:"counters,omitempty"`
}

// CollStormOnce runs one stress measurement on the given stack.
func CollStormOnce(stack cluster.Stack, o CollStormOptions) (CollStormResult, error) {
	o = o.withDefaults()
	if o.NP < 2 {
		return CollStormResult{}, fmt.Errorf("bench: collstorm needs NP >= 2, got %d", o.NP)
	}
	perRank := (o.InFlight + o.NP - 1) / o.NP
	// The paper's two-node Xeon testbed caps at 16 ranks (8 cores/node);
	// the NP sweep grows the node count with the same per-node shape so
	// placement validation holds and per-node pressure stays constant.
	clus := cluster.Xeon2()
	if need := (o.NP + clus.CoresPerNode - 1) / clus.CoresPerNode; need > clus.NumNodes {
		clus.NumNodes = need
	}
	cfg := mpi.Config{
		Cluster:   clus,
		Stack:     stack,
		NP:        o.NP,
		Placement: topo.RoundRobin(o.NP, clus.NumNodes),
		Pioman:    mpi.PiomanConfig{Workers: o.Workers},
	}

	res := CollStormResult{
		Ops:      int64(o.NP) * int64(perRank) * int64(o.Batches),
		InFlight: perRank * o.NP,
	}
	errs := make([]error, o.NP)

	// msMid snapshots the heap after every rank finished batch 0 (schedule
	// compiles, pool warm-up): the batches after it are the cached steady
	// state the allocs/op threshold pins. The barrier synchronizes ranks,
	// and the engine runs exactly one proc at a time, so the host-side read
	// below is race-free.
	var ms0, msMid, ms1 runtime.MemStats
	midTaken := false
	// Collect the previous measurement's garbage first: back-to-back sweep
	// configurations otherwise hand growing GC debt to whichever row runs
	// later, skewing cross-configuration comparisons.
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		subs := make([]*mpi.Comm, o.Splits)
		for k := range subs {
			color := (me >> (k % 3)) & 1
			subs[k] = c.Split(color, me)
		}

		// One buffer and request slot per window position; slot s runs on
		// sub-communicator s%Splits with a slot-unique vector length.
		bufs := make([][]float64, perRank)
		reqs := make([]*mpi.Request, perRank)
		for s := range bufs {
			bufs[s] = make([]float64, o.VecLen+s)
		}

		for b := 0; b < o.Batches; b++ {
			for s := 0; s < perRank; s++ {
				sub := subs[s%o.Splits]
				x := bufs[s]
				for i := range x {
					x[i] = float64(sub.Rank() + 1)
				}
				reqs[s] = sub.IallreduceF64(x, mpi.OpSum)
			}
			c.WaitAll(reqs...)
			for s := 0; s < perRank; s++ {
				sub := subs[s%o.Splits]
				sz := sub.Size()
				want := float64(sz*(sz+1)) / 2
				if got := bufs[s][0]; got != want && errs[me] == nil {
					errs[me] = fmt.Errorf("rank %d batch %d slot %d: allreduce got %v, want %v",
						me, b, s, got, want)
				}
			}
			if b == 0 && o.Batches > 1 {
				c.Barrier()
				if !midTaken {
					midTaken = true
					runtime.ReadMemStats(&msMid)
				}
			}
		}
	})
	res.HostMS = float64(time.Since(start).Microseconds()) / 1e3
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return res, err
	}
	for _, e := range errs {
		if e != nil {
			return res, e
		}
	}
	hostSec := res.HostMS / 1e3
	res.NsPerOp = res.HostMS * 1e6 / float64(res.Ops)
	if hostSec > 0 {
		res.OpsPerSec = float64(res.Ops) / hostSec
	}
	res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Ops)
	if midTaken {
		cachedOps := int64(o.NP) * int64(perRank) * int64(o.Batches-1)
		res.CachedAllocsPerOp = float64(ms1.Mallocs-msMid.Mallocs) / float64(cachedOps)
	}
	res.VirtualS = rep.Seconds
	res.Events = rep.Events
	if rep.Events > 0 {
		res.NsPerEvent = res.HostMS * 1e6 / float64(rep.Events)
	}
	res.Counters = rep.Counters()
	if cs := res.Counters; cs.NbcStarted != cs.NbcCompleted {
		return res, fmt.Errorf("bench: collstorm leaked ops: started %d != completed %d",
			cs.NbcStarted, cs.NbcCompleted)
	}
	if got := res.Counters.NbcStarted; got < res.Ops {
		return res, fmt.Errorf("bench: collstorm started %d nbc ops, expected at least %d",
			got, res.Ops)
	}
	return res, nil
}
