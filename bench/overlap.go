package bench

import (
	"fmt"

	"repro/cluster"
	"repro/internal/topo"
	"repro/mpi"
)

// OverlapOptions tunes the communication/computation overlap benchmark of
// §4.1.2: the sender calls MPI_Isend, computes for ComputeUS microseconds,
// then waits for the end of the communication with MPI_Wait; the measured
// quantity is the total sending time. Implementations that progress
// communication in the background report ≈max(comm, compute); the others
// report ≈comm + compute.
type OverlapOptions struct {
	// ComputeUS is the computation time injected between Isend and Wait
	// (20 µs for the eager experiment, 400 µs for the rendezvous one).
	ComputeUS float64
	// Iters averages over this many repetitions.
	Iters int
}

func (o OverlapOptions) withDefaults() OverlapOptions {
	if o.Iters == 0 {
		o.Iters = 10
	}
	return o
}

// OverlapOnce measures the sending time (seconds) for one size.
func OverlapOnce(stack cluster.Stack, size int, o OverlapOptions) (float64, error) {
	o = o.withDefaults()
	cfg := mpi.Config{
		Cluster:   cluster.Xeon2(),
		Stack:     stack,
		NP:        2,
		Placement: topo.Placement{0, 1},
	}
	var total float64
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		msg := make([]byte, size)
		if c.Rank() == 0 {
			// Warmup.
			c.Send(1, 0, msg)
			c.Recv(1, 0, msg)
			c.Barrier()
			for i := 0; i < o.Iters; i++ {
				t0 := c.Wtime()
				q := c.Isend(1, 1, msg)
				c.Compute(o.ComputeUS * 1e-6)
				c.Wait(q)
				total += c.Wtime() - t0
				// Wait for the receiver's ack so iterations don't pipeline.
				c.Recv(1, 2, make([]byte, 1))
			}
			total /= float64(o.Iters)
		} else {
			c.Recv(0, 0, msg)
			c.Send(0, 0, msg)
			c.Barrier()
			for i := 0; i < o.Iters; i++ {
				c.Recv(0, 1, msg)
				c.Send(0, 2, make([]byte, 1))
			}
		}
	})
	return total, err
}

// Overlap sweeps message sizes and returns sending times in microseconds.
func Overlap(stack cluster.Stack, sizes []int, o OverlapOptions) (Series, error) {
	s := Series{Label: stack.Name}
	for _, size := range sizes {
		t, err := OverlapOnce(stack, size, o)
		if err != nil {
			return s, fmt.Errorf("%s size %d: %w", stack.Name, size, err)
		}
		s.Add(float64(size), t*1e6)
	}
	return s, nil
}

// OverlapReference is the "no computation" line of Fig. 7: the plain
// sending time with zero injected compute.
func OverlapReference(stack cluster.Stack, sizes []int) (Series, error) {
	s, err := Overlap(stack, sizes, OverlapOptions{ComputeUS: 0.001})
	s.Label = "reference (no computation)"
	return s, err
}
