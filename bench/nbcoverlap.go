package bench

import (
	"fmt"
	"strings"

	"repro/cluster"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/mpi"
)

// NbcOverlapOptions tunes the collective-overlap benchmark: every rank
// starts a nonblocking allreduce, computes for ComputeUS microseconds, then
// waits — against the blocking sequence (allreduce, then the same compute).
// A stack whose progress engine advances the schedule in the background
// hides the collective behind the computation; a progress-less stack pays
// both in full.
type NbcOverlapOptions struct {
	// Op selects the collective: "allreduce" (default), or the vector ops
	// "alltoallv", "allgatherv", "reducescatter", which run a linear-skew
	// irregular count layout totalling ~8·Elems bytes per rank.
	Op string
	// Elems is the allreduce vector length in float64 elements (8 bytes
	// each: 4096 elements = 32 KB on the wire, the eager/rendezvous switch
	// point of the nmad stacks).
	Elems int
	// ComputeUS is the computation injected between start and wait.
	ComputeUS float64
	// Iters averages over this many repetitions.
	Iters int
	// NP is the number of ranks (default 2, one per node).
	NP int
	// Trace, when set, records the run: each measured phase brackets its
	// iterations with "overlap:<phase>:start/:end" mark instants, which
	// OverlapFromTrace re-derives the overlap ratio from.
	Trace *trace.Trace
}

func (o NbcOverlapOptions) withDefaults() NbcOverlapOptions {
	if o.Elems == 0 {
		o.Elems = 4096
	}
	if o.ComputeUS == 0 {
		// A zero compute window leaves nothing to overlap and every ratio
		// degenerates to 0; default to a window comparable to a mid-size
		// collective. Pass a tiny value (e.g. 0.001) for a no-compute probe.
		o.ComputeUS = 300
	}
	if o.Iters == 0 {
		o.Iters = 5
	}
	if o.NP == 0 {
		o.NP = 2
	}
	return o
}

// NbcOverlapResult reports one configuration's timings (seconds, averaged).
type NbcOverlapResult struct {
	// Blocking is AllreduceF64 followed by Compute.
	Blocking float64
	// Nonblocking is IallreduceF64 + Compute + Wait.
	Nonblocking float64
	// CommOnly is the collective alone.
	CommOnly float64
	// Compute is the injected computation time.
	Compute float64
}

// OverlapRatio is the fraction of the hideable time actually hidden:
// (blocking − nonblocking) / min(comm, compute). 0 means no overlap, 1 means
// the shorter of the two costs disappeared entirely.
func (r NbcOverlapResult) OverlapRatio() float64 {
	hideable := r.CommOnly
	if r.Compute < hideable {
		hideable = r.Compute
	}
	if hideable <= 0 {
		return 0
	}
	ratio := (r.Blocking - r.Nonblocking) / hideable
	if ratio < 0 {
		return 0
	}
	return ratio
}

// NbcOverlapOnce measures one stack at one vector size.
func NbcOverlapOnce(stack cluster.Stack, o NbcOverlapOptions) (NbcOverlapResult, error) {
	o = o.withDefaults()
	cfg := mpi.Config{
		Cluster: cluster.Xeon2(),
		Stack:   stack,
		NP:      o.NP,
		// One rank per node first, so the collective crosses the rails.
		Placement: topo.RoundRobin(o.NP, cluster.Xeon2().NumNodes),
		Trace:     o.Trace,
	}
	res := NbcOverlapResult{Compute: o.ComputeUS * 1e-6}
	if _, err := overlapBodies(nil, o); err != nil {
		return res, err
	}
	var comm, blk, nbc float64
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		body, _ := overlapBodies(c, o)
		measure := func(phase string, f func()) float64 {
			var total float64
			for i := 0; i < o.Iters; i++ {
				c.Barrier()
				c.Mark("overlap:" + phase + ":start")
				t0 := c.Wtime()
				f()
				total += c.Wtime() - t0
				c.Mark("overlap:" + phase + ":end")
			}
			return total / float64(o.Iters)
		}
		// Warmup: one full collective so connections and buffers settle,
		// and the schedule compiles into the cache.
		body.run()

		co := measure("comm", body.run)
		bl := measure("blocking", func() {
			body.run()
			c.Compute(o.ComputeUS * 1e-6)
		})
		nb := measure("nonblocking", func() {
			q := body.start()
			c.Compute(o.ComputeUS * 1e-6)
			c.Wait(q)
		})
		if c.Rank() == 0 {
			comm, blk, nbc = co, bl, nb
		}
	})
	if err != nil {
		return res, err
	}
	res.CommOnly, res.Blocking, res.Nonblocking = comm, blk, nbc
	return res, nil
}

// overlapBody pairs one collective's blocking form with its nonblocking
// starter over fixed buffers.
type overlapBody struct {
	run   func()
	start func() *mpi.Request
}

// overlapBodies builds the measured collective for o.Op on c. A nil Comm
// only validates the op name. The vector ops use the linear skew so the
// nonblocking path exercises irregular schedules, zero-length blocks
// included.
func overlapBodies(c *mpi.Comm, o NbcOverlapOptions) (overlapBody, error) {
	switch o.Op {
	case "", "allreduce", "alltoallv", "allgatherv", "reducescatter":
	default:
		return overlapBody{}, fmt.Errorf("bench: unknown overlap op %q", o.Op)
	}
	if c == nil {
		return overlapBody{}, nil
	}
	np, rank := c.Size(), c.Rank()
	b := 8 * o.Elems / np
	switch o.Op {
	case "alltoallv":
		scounts, rcounts, sbuf, rbuf := alltoallvLayout("linear", np, b, rank)
		return overlapBody{
			run:   func() { c.Alltoallv(sbuf, scounts, nil, rbuf, rcounts, nil) },
			start: func() *mpi.Request { return c.Ialltoallv(sbuf, scounts, nil, rbuf, rcounts, nil) },
		}, nil
	case "allgatherv":
		counts, mine, rbuf := allgathervLayout("linear", np, b, rank)
		return overlapBody{
			run:   func() { c.Allgatherv(mine, rbuf, counts, nil) },
			start: func() *mpi.Request { return c.Iallgatherv(mine, rbuf, counts, nil) },
		}, nil
	case "reducescatter":
		counts, x, recv := reduceScatterLayout("linear", np, b, rank)
		return overlapBody{
			run:   func() { c.ReduceScatterF64(x, recv, counts, mpi.OpSum) },
			start: func() *mpi.Request { return c.IreduceScatterF64(x, recv, counts, mpi.OpSum) },
		}, nil
	}
	x := make([]float64, o.Elems)
	for i := range x {
		x[i] = float64(rank + i)
	}
	return overlapBody{
		run:   func() { c.AllreduceF64(x, mpi.OpSum) },
		start: func() *mpi.Request { return c.IallreduceF64(x, mpi.OpSum) },
	}, nil
}

// NbcOverlapSweep measures a stack across vector sizes and returns a series
// of overlap ratios (X = payload bytes, Y = ratio).
func NbcOverlapSweep(stack cluster.Stack, elemSizes []int, o NbcOverlapOptions) (Series, error) {
	s := Series{Label: stack.Name}
	for _, elems := range elemSizes {
		oo := o
		oo.Elems = elems
		r, err := NbcOverlapOnce(stack, oo)
		if err != nil {
			return s, fmt.Errorf("%s elems %d: %w", stack.Name, elems, err)
		}
		s.Add(float64(8*elems), r.OverlapRatio())
	}
	return s, nil
}

// OverlapFromTrace re-derives an NbcOverlapResult from a traced
// NbcOverlapOnce run: rank 0's "overlap:<phase>:start/:end" mark instants
// bracket exactly the window the benchmark timed with Wtime, so the two
// computations must agree — the trace cross-checks the benchmark (and vice
// versa). It errors when a phase's markers are missing or unbalanced.
func OverlapFromTrace(t *trace.Trace, o NbcOverlapOptions) (NbcOverlapResult, error) {
	o = o.withDefaults()
	res := NbcOverlapResult{Compute: o.ComputeUS * 1e-6}
	phases := map[string]*struct {
		open  bool
		start float64
		total float64
		n     int
	}{"comm": {}, "blocking": {}, "nonblocking": {}}
	for _, ev := range t.Events() {
		if ev.Rank != 0 || ev.Cat != "mark" || !strings.HasPrefix(ev.Name, "overlap:") {
			continue
		}
		rest := strings.TrimPrefix(ev.Name, "overlap:")
		i := strings.LastIndexByte(rest, ':')
		if i < 0 {
			continue
		}
		ph, edge := phases[rest[:i]], rest[i+1:]
		if ph == nil {
			continue
		}
		switch edge {
		case "start":
			if ph.open {
				return res, fmt.Errorf("bench: trace mark %q nested", ev.Name)
			}
			ph.open, ph.start = true, ev.Ts.Seconds()
		case "end":
			if !ph.open {
				return res, fmt.Errorf("bench: trace mark %q without start", ev.Name)
			}
			ph.open = false
			ph.total += ev.Ts.Seconds() - ph.start
			ph.n++
		}
	}
	for name, ph := range phases {
		if ph.open || ph.n == 0 {
			return res, fmt.Errorf("bench: trace has no complete %q phase markers (traced run required)", name)
		}
	}
	res.CommOnly = phases["comm"].total / float64(phases["comm"].n)
	res.Blocking = phases["blocking"].total / float64(phases["blocking"].n)
	res.Nonblocking = phases["nonblocking"].total / float64(phases["nonblocking"].n)
	return res, nil
}
