package bench

import (
	"math"
	"testing"

	"repro/cluster"
	"repro/internal/trace"
)

// TestOverlapFromTraceMatchesMeasured pins the acceptance criterion of the
// tracing layer: the overlap ratio re-derived from the trace's phase
// markers agrees with NbcOverlapOnce's own Wtime-based measurement to
// within 1% — same run, two independent readings of the same virtual
// clock.
func TestOverlapFromTraceMatchesMeasured(t *testing.T) {
	for _, pio := range []bool{false, true} {
		o := NbcOverlapOptions{Elems: 4096, ComputeUS: 300, Iters: 3, Trace: trace.New()}
		r, err := NbcOverlapOnce(cluster.MPICH2NmadIB().WithPIOMan(pio), o)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := OverlapFromTrace(o.Trace, o)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(r.OverlapRatio() - tr.OverlapRatio()); d > 0.01 {
			t.Fatalf("pioman=%v: measured overlap %.4f vs trace-derived %.4f (|Δ|=%.4f > 0.01)",
				pio, r.OverlapRatio(), tr.OverlapRatio(), d)
		}
		// The phase means themselves must agree, not just the ratio.
		for _, pair := range [][3]interface{}{
			{"comm", r.CommOnly, tr.CommOnly},
			{"blocking", r.Blocking, tr.Blocking},
			{"nonblocking", r.Nonblocking, tr.Nonblocking},
		} {
			m, d := pair[1].(float64), pair[2].(float64)
			if math.Abs(m-d) > 1e-9 {
				t.Fatalf("pioman=%v: %s phase measured %v vs trace %v", pio, pair[0], m, d)
			}
		}
	}
}

// TestOverlapFromTraceRequiresMarkers: an untraced (or wrong-benchmark)
// trace yields a clear error instead of zeroed results.
func TestOverlapFromTraceRequiresMarkers(t *testing.T) {
	o := NbcOverlapOptions{Elems: 512, ComputeUS: 100, Iters: 1}
	if _, err := OverlapFromTrace(trace.New(), o); err == nil {
		t.Fatal("empty trace produced a result")
	}
}

// TestCollBenchCountersSnapshot: a traced collbench measurement carries the
// registry snapshot, consistent with its per-comm compat counters.
func TestCollBenchCountersSnapshot(t *testing.T) {
	o := CollBenchOptions{Op: "allreduce", Bytes: 4096, Iters: 3, NP: 4, Trace: trace.New()}
	r, err := CollBenchOnce(cluster.MPICH2NmadIB(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters == nil {
		t.Fatal("no counter snapshot on the result")
	}
	if r.Counters.SchedCompiles == 0 || r.Counters.SchedHits == 0 {
		t.Fatalf("cache counters empty: %+v", r.Counters)
	}
	if r.Counters.CacheHitRate <= 0 || r.Counters.CacheHitRate >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", r.Counters.CacheHitRate)
	}
	if len(r.Counters.Rails) == 0 {
		t.Fatal("no rail traffic in snapshot")
	}
}
