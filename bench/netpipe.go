package bench

import (
	"fmt"

	"repro/cluster"
	"repro/internal/topo"
	"repro/mpi"
)

// NetpipeOptions tunes a pingpong sweep.
type NetpipeOptions struct {
	// Iters is the number of round trips per size (after one warmup).
	Iters int
	// AnySource makes the echo side receive with MPI_ANY_SOURCE, measuring
	// the §3.2 overhead.
	AnySource bool
	// IntraNode places both ranks on one node (shared-memory path, Fig. 6a).
	IntraNode bool
}

func (o NetpipeOptions) withDefaults() NetpipeOptions {
	if o.Iters == 0 {
		o.Iters = 20
	}
	return o
}

// pingpong measures the average one-way time in seconds for one message size.
func pingpong(stack cluster.Stack, size int, o NetpipeOptions) (float64, error) {
	o = o.withDefaults()
	cfg := mpi.Config{Cluster: cluster.Xeon2(), Stack: stack, NP: 2}
	if o.IntraNode {
		cfg.Placement = topo.Placement{0, 0}
	} else {
		cfg.Placement = topo.Placement{0, 1}
	}
	var oneWay float64
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		msg := make([]byte, size)
		// With AnySource every receive in the pingpong is a wildcard, so
		// the §3.2 machinery is exercised once per message (the paper's
		// constant per-message gap).
		src0, src1 := 1, 0
		if o.AnySource {
			src0, src1 = mpi.AnySource, mpi.AnySource
		}
		// Warmup round trip.
		if c.Rank() == 0 {
			c.Send(1, 1, msg)
			c.Recv(src0, 1, msg)
		} else {
			c.Recv(src1, 1, msg)
			c.Send(0, 1, msg)
		}
		c.Barrier()
		t0 := c.Wtime()
		for i := 0; i < o.Iters; i++ {
			if c.Rank() == 0 {
				c.Send(1, 1, msg)
				c.Recv(src0, 1, msg)
			} else {
				c.Recv(src1, 1, msg)
				c.Send(0, 1, msg)
			}
		}
		if c.Rank() == 0 {
			oneWay = (c.Wtime() - t0) / float64(2*o.Iters)
		}
	})
	return oneWay, err
}

// Latency sweeps sizes and returns one-way latencies in microseconds.
func Latency(stack cluster.Stack, sizes []int, o NetpipeOptions) (Series, error) {
	s := Series{Label: stack.Name}
	if o.AnySource {
		s.Label += " w/AS"
	}
	for _, size := range sizes {
		t, err := pingpong(stack, size, o)
		if err != nil {
			return s, fmt.Errorf("%s size %d: %w", stack.Name, size, err)
		}
		s.Add(float64(size), t*1e6)
	}
	return s, nil
}

// Bandwidth sweeps sizes and returns throughput in MB/s (1 MB = 1024×1024
// bytes, as the paper defines).
func Bandwidth(stack cluster.Stack, sizes []int, o NetpipeOptions) (Series, error) {
	s := Series{Label: stack.Name}
	for _, size := range sizes {
		opts := o
		if size >= 1<<20 && opts.Iters == 0 {
			opts.Iters = 3 // large transfers need few iterations
		}
		t, err := pingpong(stack, size, opts)
		if err != nil {
			return s, fmt.Errorf("%s size %d: %w", stack.Name, size, err)
		}
		s.Add(float64(size), float64(size)/t/(1<<20))
	}
	return s, nil
}
