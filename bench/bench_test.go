package bench

import (
	"strings"
	"testing"

	"repro/cluster"
	"repro/internal/nas"
)

func TestSeriesAndFigureFormatting(t *testing.T) {
	f := &Figure{Name: "t", Title: "test", XLabel: "size(B)", YLabel: "us"}
	var a, b Series
	a.Label = "one"
	a.Add(1, 1.5)
	a.Add(1024, 2.5)
	b.Label = "two"
	b.Add(1, 3.5) // no point at 1024: must render "-"
	f.Series = []Series{a, b}
	out := f.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Fatalf("missing labels:\n%s", out)
	}
	if !strings.Contains(out, "1K") {
		t.Fatalf("size label not formatted:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-point marker absent:\n%s", out)
	}
	if y, ok := a.YAt(1024); !ok || y != 2.5 {
		t.Fatal("YAt broken")
	}
	if _, ok := a.YAt(7); ok {
		t.Fatal("YAt found nonexistent point")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[float64]string{1: "1", 512: "512", 1024: "1K", 4096: "4K",
		1 << 20: "1M", 64 << 20: "64M"}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSizeLadders(t *testing.T) {
	lat := LatencySizes()
	if lat[0] != 1 || lat[len(lat)-1] != 512 {
		t.Fatalf("latency ladder %v", lat)
	}
	bw := BandwidthSizes()
	if bw[0] != 1 || bw[len(bw)-1] != 64<<20 {
		t.Fatalf("bandwidth ladder ends at %d", bw[len(bw)-1])
	}
}

func TestLatencySweepMonotonicInSize(t *testing.T) {
	s, err := Latency(cluster.MVAPICH2(), []int{1, 64, 512}, NetpipeOptions{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("latency not increasing with size: %+v", s.Points)
		}
	}
}

func TestAnySourceLatencyGapConstant(t *testing.T) {
	// Fig. 4(a): the ANY_SOURCE gap is ~300 ns and stays constant as the
	// message grows.
	sizes := []int{4, 512}
	base, err := Latency(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	as, err := Latency(cluster.MPICH2NmadIB(), sizes, NetpipeOptions{Iters: 10, AnySource: true})
	if err != nil {
		t.Fatal(err)
	}
	gapSmall := as.Points[0].Y - base.Points[0].Y
	gapLarge := as.Points[1].Y - base.Points[1].Y
	if gapSmall < 0.2 || gapSmall > 0.45 {
		t.Errorf("AS gap at 4B = %.3fus, want ~0.3", gapSmall)
	}
	if diff := gapLarge - gapSmall; diff < -0.1 || diff > 0.1 {
		t.Errorf("AS gap not constant: %.3f vs %.3f", gapSmall, gapLarge)
	}
}

func TestIntraNodeLatencyFarBelowNetwork(t *testing.T) {
	shm, err := Latency(cluster.MPICH2NmadIB(), []int{4}, NetpipeOptions{Iters: 10, IntraNode: true})
	if err != nil {
		t.Fatal(err)
	}
	net, err := Latency(cluster.MPICH2NmadIB(), []int{4}, NetpipeOptions{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if shm.Points[0].Y > 0.6 {
		t.Errorf("shm latency %.3fus, want ~0.2-0.5", shm.Points[0].Y)
	}
	if shm.Points[0].Y*2 > net.Points[0].Y {
		t.Errorf("shm (%.3f) should be far below network (%.3f)",
			shm.Points[0].Y, net.Points[0].Y)
	}
}

func TestPIOManShmOverheadApprox450ns(t *testing.T) {
	intra := NetpipeOptions{Iters: 10, IntraNode: true}
	base, err := Latency(cluster.MPICH2NmadIB(), []int{4}, intra)
	if err != nil {
		t.Fatal(err)
	}
	pio, err := Latency(cluster.MPICH2NmadIB().WithPIOMan(true), []int{4}, intra)
	if err != nil {
		t.Fatal(err)
	}
	gap := pio.Points[0].Y - base.Points[0].Y
	if gap < 0.3 || gap > 0.8 {
		t.Errorf("PIOMan shm overhead %.3fus, want ~0.45-0.65", gap)
	}
}

func TestOverlapSumVsMax(t *testing.T) {
	// The Fig. 7 headline: without PIOMan sending time ≈ comm + compute;
	// with PIOMan ≈ max(comm, compute).
	const computeUS = 400
	size := 256 << 10
	o := OverlapOptions{ComputeUS: computeUS, Iters: 3}
	ref, err := OverlapOnce(cluster.MPICH2NmadIB(), size, OverlapOptions{ComputeUS: 0.001, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := OverlapOnce(cluster.MPICH2NmadIB(), size, o)
	if err != nil {
		t.Fatal(err)
	}
	pio, err := OverlapOnce(cluster.MPICH2NmadIB().WithPIOMan(true), size, o)
	if err != nil {
		t.Fatal(err)
	}
	comm := ref * 1e6
	sum := comm + computeUS
	if got := plain * 1e6; got < 0.9*sum || got > 1.1*sum {
		t.Errorf("no-PIOMan sending time %.1fus, want ~sum %.1fus", got, sum)
	}
	if got := pio * 1e6; got > 1.1*computeUS {
		t.Errorf("PIOMan sending time %.1fus, want ~max %.0fus", got, float64(computeUS))
	}
}

func TestRunNASProducesTables(t *testing.T) {
	kernels := []nas.Kernel{nas.EP(), nas.MG()}
	res, err := RunNAS(nas.ClassS, 8, kernels, []cluster.Stack{
		cluster.MVAPICH2(), cluster.MPICH2NmadIB(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, r := range res {
		if !r.Verified || r.Seconds <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
	var b strings.Builder
	WriteNASTable(&b, "test panel", res)
	out := b.String()
	for _, want := range []string{"EP", "MG", "mvapich2", "mpich2-nmad-ib", "np=8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestNASStacksAreTheFigure8Set(t *testing.T) {
	stacks := NASStacks()
	if len(stacks) != 4 {
		t.Fatalf("want 4 stacks, got %d", len(stacks))
	}
	names := map[string]bool{}
	for _, s := range stacks {
		names[s.Name] = true
	}
	for _, want := range []string{"mvapich2", "openmpi-ib", "mpich2-nmad-ib", "mpich2-nmad-ib+pioman"} {
		if !names[want] {
			t.Fatalf("missing stack %q in %v", want, names)
		}
	}
}
