// Command nbcoverlap measures how much of a nonblocking collective a stack
// hides behind computation: every rank runs IallreduceF64 + Compute + Wait
// and the total is compared with the blocking sequence. The overlap ratio is
// the fraction of the hideable time (min of collective, compute) actually
// hidden. With PIOMan the schedule engine advances collective rounds on the
// background progress thread, so the ratio climbs; without it the rounds
// only move inside MPI calls and the ratio stays near zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
	"repro/cluster"
)

func main() {
	computeUS := flag.Float64("compute", 300, "injected computation in µs")
	iters := flag.Int("iters", 5, "iterations per measurement")
	np := flag.Int("np", 2, "number of ranks")
	flag.Parse()

	elemSizes := []int{512, 4 << 10, 32 << 10, 128 << 10} // 4K .. 1MB payloads
	base := cluster.MPICH2NmadIB()
	o := bench.NbcOverlapOptions{ComputeUS: *computeUS, Iters: *iters, NP: *np}

	fmt.Printf("IallreduceF64 + %gµs compute + Wait vs blocking sequence (np=%d, %s)\n\n",
		*computeUS, *np, base.Name)
	fmt.Printf("%-10s %14s %14s %14s %10s %10s\n",
		"size", "comm alone", "blocking seq", "nonblocking", "overlap", "pioman")

	wins := 0
	for _, elems := range elemSizes {
		oo := o
		oo.Elems = elems
		var ratios [2]float64
		for i, stack := range []cluster.Stack{base, base.WithPIOMan(true)} {
			r, err := bench.NbcOverlapOnce(stack, oo)
			if err != nil {
				log.Fatal(err)
			}
			ratios[i] = r.OverlapRatio()
			pio := "off"
			if i == 1 {
				pio = "on"
			}
			fmt.Printf("%-10s %12.1fµs %12.1fµs %12.1fµs %9.0f%% %10s\n",
				bench.SizeLabel(float64(8*elems)), r.CommOnly*1e6, r.Blocking*1e6,
				r.Nonblocking*1e6, 100*r.OverlapRatio(), pio)
		}
		if ratios[1] > ratios[0] {
			wins++
		}
		fmt.Println()
	}

	if wins == 0 {
		fmt.Println("RESULT: PIOMan never improved the overlap ratio — progression is broken")
		os.Exit(1)
	}
	fmt.Printf("RESULT: PIOMan strictly improves the overlap ratio on %d of %d size regimes\n",
		wins, len(elemSizes))
}
