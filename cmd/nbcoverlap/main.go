// Command nbcoverlap measures how much of a nonblocking collective a stack
// hides behind computation: every rank starts the collective (-op selects
// IallreduceF64, or the vector ops Ialltoallv / Iallgatherv /
// IreduceScatterF64 on a linear-skew irregular layout), computes, then
// waits, and the total is compared with the blocking sequence. The overlap ratio is
// the fraction of the hideable time (min of collective, compute) actually
// hidden. With PIOMan the schedule engine advances collective rounds on the
// background progress thread, so the ratio climbs; without it the rounds
// only move inside MPI calls and the ratio stays near zero. -json emits
// machine-readable rows for the perf trajectory (BENCH_*.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
	"repro/cluster"
	"repro/internal/trace"
)

// row is one measurement, JSON-shaped for BENCH_*.json.
type row struct {
	Op            string  `json:"op"`
	Bytes         int     `json:"bytes"`
	PIOMan        bool    `json:"pioman"`
	CommUS        float64 `json:"comm_us"`
	BlockingUS    float64 `json:"blocking_us"`
	NonblockingUS float64 `json:"nonblocking_us"`
	OverlapRatio  float64 `json:"overlap_ratio"`
}

func main() {
	opFlag := flag.String("op", "allreduce",
		"collective to overlap: allreduce, alltoallv, allgatherv, reducescatter")
	computeUS := flag.Float64("compute", 300, "injected computation in µs")
	iters := flag.Int("iters", 5, "iterations per measurement")
	np := flag.Int("np", 2, "number of ranks")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of the table")
	traceOut := flag.String("trace", "",
		"write a Chrome trace (chrome://tracing / Perfetto) of one traced run (PIOMan on, 32KB) to this file, plus a summary and measured-vs-trace-derived cross-check on stderr")
	flag.Parse()

	elemSizes := []int{512, 4 << 10, 32 << 10, 128 << 10} // 4K .. 1MB payloads
	base := cluster.MPICH2NmadIB()
	o := bench.NbcOverlapOptions{Op: *opFlag, ComputeUS: *computeUS, Iters: *iters, NP: *np}

	if !*jsonOut {
		fmt.Printf("nonblocking %s + %gµs compute + Wait vs blocking sequence (np=%d, %s)\n\n",
			*opFlag, *computeUS, *np, base.Name)
		fmt.Printf("%-10s %14s %14s %14s %10s %10s\n",
			"size", "comm alone", "blocking seq", "nonblocking", "overlap", "pioman")
	}

	var rows []row
	wins := 0
	for _, elems := range elemSizes {
		oo := o
		oo.Elems = elems
		var ratios [2]float64
		for i, stack := range []cluster.Stack{base, base.WithPIOMan(true)} {
			r, err := bench.NbcOverlapOnce(stack, oo)
			if err != nil {
				log.Fatal(err)
			}
			ratios[i] = r.OverlapRatio()
			rows = append(rows, row{
				Op: *opFlag, Bytes: 8 * elems, PIOMan: i == 1,
				CommUS: r.CommOnly * 1e6, BlockingUS: r.Blocking * 1e6,
				NonblockingUS: r.Nonblocking * 1e6, OverlapRatio: r.OverlapRatio(),
			})
			if !*jsonOut {
				pio := "off"
				if i == 1 {
					pio = "on"
				}
				fmt.Printf("%-10s %12.1fµs %12.1fµs %12.1fµs %9.0f%% %10s\n",
					bench.SizeLabel(float64(8*elems)), r.CommOnly*1e6, r.Blocking*1e6,
					r.Nonblocking*1e6, 100*r.OverlapRatio(), pio)
			}
		}
		if ratios[1] > ratios[0] {
			wins++
		}
		if !*jsonOut {
			fmt.Println()
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
	}
	if wins == 0 {
		fmt.Fprintln(os.Stderr, "RESULT: PIOMan never improved the overlap ratio — progression is broken")
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("RESULT: PIOMan strictly improves the overlap ratio on %d of %d size regimes\n",
			wins, len(elemSizes))
	}

	if *traceOut != "" {
		writeTrace(*traceOut, base, o)
	}
}

// writeTrace re-runs the PIOMan-on 32KB configuration with event tracing
// attached, writes the Chrome trace, prints the summary, and cross-checks
// the trace-derived overlap ratio against the benchmark's own measurement
// (the two bracket the same virtual-time windows, so they must agree).
func writeTrace(path string, base cluster.Stack, o bench.NbcOverlapOptions) {
	tr := trace.New()
	oo := o
	oo.Elems = 4096 // 32 KB payload
	oo.Trace = tr
	r, err := bench.NbcOverlapOnce(base.WithPIOMan(true), oo)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := bench.OverlapFromTrace(tr, oo)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteChrome(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\ntrace: wrote %s\n", path)
	trace.Summarize(tr).WriteText(os.Stderr)
	fmt.Fprintf(os.Stderr, "overlap cross-check: measured %.2f%%, trace-derived %.2f%%\n",
		100*r.OverlapRatio(), 100*tres.OverlapRatio())
	if d := r.OverlapRatio() - tres.OverlapRatio(); d > 0.01 || d < -0.01 {
		fmt.Fprintln(os.Stderr, "RESULT: trace-derived overlap diverges from the measured ratio")
		os.Exit(1)
	}
}
