// Command tracecat validates and summarizes a Chrome trace-event JSON file
// produced by the -trace flag of collbench, nbcoverlap or nasbench. It
// checks the structural invariants the exporter guarantees — every event
// carries ph/pid/ts, B/E spans nest per thread track, async b/e ids pair up
// — and that the thread tracks named by -require (default the application
// track; add pioman for a PIOMan-enabled run) carry events. It prints
// per-category event counts and exits nonzero on any violation, so CI can
// smoke-test tracing end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// tev is the subset of a Chrome trace event tracecat inspects.
type tev struct {
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   *float64        `json:"ts"`
	Cat  string          `json:"cat"`
	Name string          `json:"name"`
	ID   *int64          `json:"id"`
	Args json.RawMessage `json:"args"`
}

type traceFile struct {
	TraceEvents []tev `json:"traceEvents"`
}

func main() {
	require := flag.String("require", "app",
		"comma-separated thread tracks that must carry events (e.g. app,pioman for a PIOMan-enabled run)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracecat [-require tracks] FILE\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("%s: not valid trace JSON: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		log.Fatalf("%s: no trace events", path)
	}

	// threadNames[pid][tid] from the metadata events; spanDepth tracks B/E
	// nesting per (pid, tid); asyncOpen tracks b/e pairing per id.
	threadNames := map[int]map[int]string{}
	spanDepth := map[[2]int]int{}
	asyncOpen := map[int64]bool{}
	catCount := map[string]int{}
	tidEvents := map[string]int{} // thread-track name -> non-metadata events
	events := 0

	for i, ev := range tf.TraceEvents {
		if ev.Ph == "" {
			log.Fatalf("%s: event %d has no ph", path, i)
		}
		if ev.Ph == "M" {
			if ev.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
					log.Fatalf("%s: event %d: bad thread_name metadata", path, i)
				}
				if threadNames[ev.Pid] == nil {
					threadNames[ev.Pid] = map[int]string{}
				}
				threadNames[ev.Pid][ev.Tid] = args.Name
			}
			continue
		}
		events++
		if ev.Ts == nil {
			log.Fatalf("%s: event %d (%s %q) has no ts", path, i, ev.Ph, ev.Name)
		}
		if ev.Ph != "E" { // E events omit cat/name; they close the last B
			catCount[ev.Cat]++
		}
		if tn := threadNames[ev.Pid][ev.Tid]; tn != "" {
			tidEvents[tn]++
		}
		key := [2]int{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			spanDepth[key]++
		case "E":
			spanDepth[key]--
			if spanDepth[key] < 0 {
				log.Fatalf("%s: event %d: E without matching B on pid %d tid %d",
					path, i, ev.Pid, ev.Tid)
			}
		case "b":
			if ev.ID == nil {
				log.Fatalf("%s: event %d: async begin without id", path, i)
			}
			asyncOpen[*ev.ID] = true
		case "e":
			if ev.ID == nil || !asyncOpen[*ev.ID] {
				log.Fatalf("%s: event %d: async end without matching begin", path, i)
			}
			delete(asyncOpen, *ev.ID)
		}
	}

	for key, d := range spanDepth {
		if d != 0 {
			log.Fatalf("%s: %d unclosed span(s) on pid %d tid %d", path, d, key[0], key[1])
		}
	}
	if len(asyncOpen) > 0 {
		log.Fatalf("%s: %d unclosed async op(s)", path, len(asyncOpen))
	}
	for _, track := range strings.Split(*require, ",") {
		track = strings.TrimSpace(track)
		if track != "" && tidEvents[track] == 0 {
			log.Fatalf("%s: no events on the %q thread track — progress attribution is missing", path, track)
		}
	}

	fmt.Printf("%s: %d events across %d processes\n", path, events, len(threadNames))
	var cats []string
	for c := range catCount {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		name := c
		if name == "" {
			name = "(none)"
		}
		fmt.Printf("  %-10s %d\n", name, catCount[c])
	}
	var tracks []string
	for t := range tidEvents {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	fmt.Printf("  tracks:")
	for _, t := range tracks {
		fmt.Printf(" %s=%d", t, tidEvents[t])
	}
	fmt.Println()
	fmt.Println("OK")
}
