package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a 4b 5a 5b 6a 6b (or all)")
	flag.Parse()
	gens := map[string]func() (*bench.Figure, error){
		"4a": bench.Fig4a, "4b": bench.Fig4b,
		"5a": bench.Fig5a, "5b": bench.Fig5b,
		"6a": bench.Fig6a, "6b": bench.Fig6b,
	}
	names := []string{"4a", "4b", "5a", "5b", "6a", "6b"}
	if *fig != "all" {
		names = []string{*fig}
	}
	for _, n := range names {
		gen, ok := gens[n]
		if !ok {
			log.Fatalf("unknown figure %q", n)
		}
		f, err := gen()
		if err != nil {
			log.Fatalf("fig %s: %v", n, err)
		}
		f.WriteTable(os.Stdout)
		fmt.Println()
	}
}
