// Command multirail regenerates Fig. 5 (heterogeneous multirail latency and
// bandwidth) and prints the sampling tables and split ratios NewMadeleine
// derives for the configured rails (§2.2, [4]). -json instead emits the
// sampling tables and split ratios machine-readably (the CI artifact
// BENCH_multirail.json), so the striping benchmarks' rail split can be
// checked against the strategy's intended shares.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
	"repro/cluster"
	"repro/internal/nmad"
	"repro/internal/simnet"
)

// samplePoint is one entry of a rail's sampling table, JSON-shaped.
type samplePoint struct {
	Size   int     `json:"size"`
	XferUS float64 `json:"xfer_us"`
}

// railJSON is one rail's model parameters plus its sampling estimates.
type railJSON struct {
	Name        string        `json:"name"`
	LatencyNS   int64         `json:"latency_ns"`
	BytesPerSec float64       `json:"bytes_per_sec"`
	Sampling    []samplePoint `json:"sampling"`
}

// shareJSON is one rail's share of a split rendezvous payload.
type shareJSON struct {
	Rail  string  `json:"rail"`
	Bytes int     `json:"bytes"`
	Frac  float64 `json:"frac"`
}

// splitJSON is the strategy's split of one payload size across the rails.
type splitJSON struct {
	Size   int         `json:"size"`
	Shares []shareJSON `json:"shares"`
}

// doc is the BENCH_multirail.json schema.
type doc struct {
	Stack        string      `json:"stack"`
	Strategy     string      `json:"strategy"`
	RdvThreshold int         `json:"rdv_threshold"`
	Rails        []railJSON  `json:"rails"`
	Splits       []splitJSON `json:"splits"`
}

// buildDoc derives the machine-readable sampling + split report for the
// heterogeneous multirail stack. Pure parameter computation — no simulated
// traffic — so the output is trivially byte-reproducible.
func buildDoc() doc {
	stack := cluster.MPICH2NmadMulti()
	d := doc{Stack: stack.Name, Strategy: stack.Strategy.String(), RdvThreshold: stack.RdvThreshold}
	var rails []*simnet.Rail
	for i, rp := range stack.Rails {
		r := &simnet.Rail{Params: rp, ID: i}
		rails = append(rails, r)
		rj := railJSON{Name: rp.Name, LatencyNS: int64(rp.Latency), BytesPerSec: rp.BytesPerSec}
		for _, pt := range r.SampleTable() {
			rj.Sampling = append(rj.Sampling, samplePoint{Size: pt.Size, XferUS: pt.Xfer.Micros()})
		}
		d.Rails = append(d.Rails, rj)
	}
	for size := stack.RdvThreshold; size <= 64<<20; size *= 2 {
		sp := splitJSON{Size: size}
		for _, sh := range nmad.SplitPreview(stack.Strategy, rails, 0, size) {
			sp.Shares = append(sp.Shares, shareJSON{
				Rail:  stack.Rails[sh.Rail].Name,
				Bytes: sh.Len,
				Frac:  float64(sh.Len) / float64(size),
			})
		}
		d.Splits = append(d.Splits, sp)
	}
	return d
}

func main() {
	showSampling := flag.Bool("sampling", true, "print the rails' sampling estimates")
	jsonOut := flag.Bool("json", false,
		"emit the sampling tables and split ratios as JSON on stdout (BENCH_multirail.json) instead of the figures")
	flag.Parse()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildDoc()); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *showSampling {
		fmt.Println("# network sampling estimates (one-way transfer time)")
		fmt.Printf("%-10s %14s %14s\n", "size", "ib (us)", "mx (us)")
		ib := cluster.RailIB()
		mx := cluster.RailMX()
		for size := 1; size <= 64<<20; size *= 16 {
			fmt.Printf("%-10s %14.2f %14.2f\n", bench.SizeLabel(float64(size)),
				ib.EstimateXfer(size).Micros(), mx.EstimateXfer(size).Micros())
		}
		fmt.Println()
	}

	for _, gen := range []func() (*bench.Figure, error){bench.Fig5a, bench.Fig5b} {
		f, err := gen()
		if err != nil {
			log.Fatal(err)
		}
		f.WriteTable(os.Stdout)
		fmt.Println()
	}
}
