// Command multirail regenerates Fig. 5 (heterogeneous multirail latency and
// bandwidth) and prints the sampling tables and split ratios NewMadeleine
// derives for the configured rails (§2.2, [4]).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
	"repro/cluster"
)

func main() {
	showSampling := flag.Bool("sampling", true, "print the rails' sampling estimates")
	flag.Parse()

	if *showSampling {
		fmt.Println("# network sampling estimates (one-way transfer time)")
		fmt.Printf("%-10s %14s %14s\n", "size", "ib (us)", "mx (us)")
		ib := cluster.RailIB()
		mx := cluster.RailMX()
		for size := 1; size <= 64<<20; size *= 16 {
			fmt.Printf("%-10s %14.2f %14.2f\n", bench.SizeLabel(float64(size)),
				ib.EstimateXfer(size).Micros(), mx.EstimateXfer(size).Micros())
		}
		fmt.Println()
	}

	for _, gen := range []func() (*bench.Figure, error){bench.Fig5a, bench.Fig5b} {
		f, err := gen()
		if err != nil {
			log.Fatal(err)
		}
		f.WriteTable(os.Stdout)
		fmt.Println()
	}
}
