package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7a 7b (or all)")
	flag.Parse()
	gens := map[string]func() (*bench.Figure, error){
		"7a": bench.Fig7a, "7b": bench.Fig7b,
	}
	names := []string{"7a", "7b"}
	if *fig != "all" {
		names = []string{*fig}
	}
	for _, n := range names {
		gen, ok := gens[n]
		if !ok {
			log.Fatalf("unknown figure %q", n)
		}
		f, err := gen()
		if err != nil {
			log.Fatalf("fig %s: %v", n, err)
		}
		f.WriteTable(os.Stdout)
		fmt.Println()
	}
}
