// Command collbench sweeps the collective engine across operation × payload
// × algorithm × cache on/off and reports per-operation virtual time, host
// wall time and schedule-cache counters. It demonstrates the two wins of
// the per-communicator engine: tuned algorithm selection (the "auto" row
// tracks the best forced algorithm at every size) and schedule caching
// (compiles stay flat while iterations grow). -json emits machine-readable
// rows for the perf trajectory (BENCH_*.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bench"
	"repro/cluster"
	"repro/internal/coll"
)

// row is one measurement in the sweep, JSON-shaped for BENCH_*.json.
type row struct {
	Op       string  `json:"op"`
	Algo     string  `json:"algo"`
	Bytes    int     `json:"bytes"`
	TwoLevel bool    `json:"two_level"`
	Cache    bool    `json:"cache"`
	PerOpUS  float64 `json:"per_op_us"`
	HostMS   float64 `json:"host_ms"`
	Compiles int64   `json:"compiles"`
	Hits     int64   `json:"hits"`
}

// candidates lists the forced algorithms worth sweeping per operation;
// AlgoAuto is always measured first as the selector's pick.
var candidates = map[string][]coll.Algo{
	"bcast":     {coll.AlgoBinomial, coll.AlgoScatterAllgather, coll.AlgoTwoLevel},
	"allreduce": {coll.AlgoRecDoubling, coll.AlgoRabenseifner, coll.AlgoTwoLevel},
	"allgather": {coll.AlgoBruck, coll.AlgoRing, coll.AlgoTwoLevel},
	"alltoall":  {coll.AlgoPairwise, coll.AlgoTwoLevel},
}

func main() {
	np := flag.Int("np", 8, "number of ranks (block-placed over two nodes)")
	iters := flag.Int("iters", 10, "iterations per measurement")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of the table")
	flag.Parse()

	sizes := []int{256, 4 << 10, 64 << 10, 512 << 10}
	ops := []string{"bcast", "allreduce", "allgather", "alltoall"}
	stack := cluster.MPICH2NmadIB()

	var rows []row
	measure := func(op string, algo coll.Algo, bytes int, cache bool) row {
		o := bench.CollBenchOptions{
			Op: op, Bytes: bytes, Iters: *iters, NP: *np,
			TwoLevel: algo == coll.AlgoTwoLevel,
			NoCache:  !cache,
		}
		if algo != coll.AlgoAuto && algo != coll.AlgoTwoLevel {
			o.Algo = algo
		}
		r, err := bench.CollBenchOnce(stack, o)
		if err != nil {
			log.Fatalf("%s/%s/%dB: %v", op, algo, bytes, err)
		}
		return row{Op: op, Algo: algo.String(), Bytes: bytes,
			TwoLevel: algo == coll.AlgoTwoLevel, Cache: cache,
			PerOpUS: r.PerOp * 1e6, HostMS: r.HostMS,
			Compiles: r.Compiles, Hits: r.Hits}
	}

	for _, op := range ops {
		for _, bytes := range sizes {
			rows = append(rows, measure(op, coll.AlgoAuto, bytes, true))
			rows = append(rows, measure(op, coll.AlgoAuto, bytes, false))
			for _, algo := range candidates[op] {
				rows = append(rows, measure(op, algo, bytes, true))
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("collective engine sweep (np=%d, %s, block placement, %d iters)\n\n",
		*np, stack.Name, *iters)
	fmt.Printf("%-10s %-18s %-10s %-6s %12s %10s %9s/%-5s\n",
		"op", "algo", "size", "cache", "per-op", "host", "compiles", "hits")
	autoBest := 0.0
	for _, r := range rows {
		cacheLbl := "on"
		if !r.Cache {
			cacheLbl = "off"
		}
		marker := ""
		if r.Algo == "auto" && r.Cache {
			autoBest = r.PerOpUS
		} else if r.Cache && r.PerOpUS < autoBest {
			marker = "  << beats auto"
		}
		fmt.Printf("%-10s %-18s %-10s %-6s %10.1fµs %8.0fms %9d/%-5d%s\n",
			r.Op, r.Algo, bench.SizeLabel(float64(r.Bytes)), cacheLbl,
			r.PerOpUS, r.HostMS, r.Compiles, r.Hits, marker)
	}
	fmt.Println("\ncache=on rows compile once and rebind; cache=off rows recompile per call;")
	fmt.Println("virtual per-op time is identical either way (determinism guarantee) — the")
	fmt.Println("cache buys host time and allocation churn, the selector buys virtual time.")
}
