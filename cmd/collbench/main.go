// Command collbench sweeps the collective engine across operation × payload
// × algorithm × cache on/off and reports per-operation virtual time, host
// wall time and schedule-cache counters. It demonstrates the two wins of
// the per-communicator engine: tuned algorithm selection (the "auto" row
// tracks the best forced algorithm at every size) and schedule caching
// (compiles stay flat while iterations grow). The vector collectives
// (alltoallv, allgatherv, reducescatter) additionally sweep count skews —
// uniform, linear (zero blocks included) and sparse — so selection
// regressions on irregular layouts surface. -ops and -sizes restrict the
// grid (the CI smoke step runs only the vector ops at one size); -json
// emits machine-readable rows for the perf trajectory (BENCH_*.json).
// -stack picks the stack preset; on a multirail stack, -stripe sweeps the
// rail-stripe widths of the striped algorithms and the rows carry per-rail
// packet/byte counters, making bandwidth additivity across rails visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/bench"
	"repro/internal/coll"
	"repro/internal/coll/tune"
	"repro/internal/trace"
	"repro/mpi"
)

// row is one measurement in the sweep, JSON-shaped for BENCH_*.json.
type row struct {
	Op       string  `json:"op"`
	Algo     string  `json:"algo"`
	Skew     string  `json:"skew,omitempty"`
	Seg      int     `json:"seg,omitempty"`
	Stripe   int     `json:"stripe,omitempty"`
	Bytes    int     `json:"bytes"`
	TwoLevel bool    `json:"two_level"`
	Cache    bool    `json:"cache"`
	PerOpUS  float64 `json:"per_op_us"`
	HostMS   float64 `json:"host_ms"`
	Compiles int64   `json:"compiles"`
	Hits     int64   `json:"hits"`
	// Rails is the run's per-rail traffic (one entry per rail of the
	// stack), so multirail rows show how the payload split across wires.
	Rails []mpi.RailCounter `json:"rails,omitempty"`
	// Counters is the run-wide registry snapshot (cache effectiveness
	// across all ranks, poll split, rail traffic).
	Counters *mpi.CounterSnapshot `json:"counters,omitempty"`
}

// candidates derives the forced algorithms worth sweeping for one
// operation from the tuner's flat candidate pools (the single source both
// harnesses share), plus the two-level variant where one is registered;
// AlgoAuto is always measured first as the selector's pick.
func candidates(op string) []coll.Algo {
	kind, err := bench.OpKindOf(op)
	if err != nil {
		return nil
	}
	algos := append([]coll.Algo(nil), tune.Candidates[kind]...)
	for _, r := range coll.Registrations() {
		if r.Op == kind && r.Algo == coll.AlgoTwoLevel {
			algos = append(algos, coll.AlgoTwoLevel)
		}
	}
	return algos
}

// vecSkews is the irregular-counts dimension swept for the vector ops.
var vecSkews = []string{"uniform", "linear", "sparse"}

// isVector reports whether op takes per-rank counts (and so sweeps the
// skew dimension). Resolved through OpKindOf so both the harness and the
// registry spellings get the full grid.
func isVector(op string) bool {
	kind, err := bench.OpKindOf(op)
	if err != nil {
		return false
	}
	switch kind {
	case coll.OpAlltoallv, coll.OpAllgatherv, coll.OpReduceScatter:
		return true
	}
	return false
}

func main() {
	np := flag.Int("np", 8, "number of ranks (block-placed over two nodes)")
	iters := flag.Int("iters", 10, "iterations per measurement")
	opsFlag := flag.String("ops",
		"bcast,allreduce,allgather,alltoall,alltoallv,allgatherv,reducescatter",
		"comma-separated operations to sweep")
	sizesFlag := flag.String("sizes", "256,4096,65536,524288",
		"comma-separated payload sizes in bytes")
	segFlag := flag.String("seg", "",
		"comma-separated pipeline segment sizes in bytes, swept for the segmented algorithms (empty = the calibrated/default segment size)")
	stripeFlag := flag.String("stripe", "",
		"comma-separated rail-stripe widths, swept for the rail-striped algorithms (0 = unstriped; empty = the calibrated/default width; needs a multirail -stack)")
	stackFlag := flag.String("stack", "mpich2-nmad-ib",
		"stack preset to bench (the colltune presets; mpich2-nmad-multi-mx-ib is the two-rail stack)")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of the table")
	traceOut := flag.String("trace", "",
		"write a Chrome trace of the first swept configuration (auto algorithm, cache on) to this file, plus a summary on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var sizes []int
	for _, f := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad size %q", f)
		}
		sizes = append(sizes, n)
	}
	// The segmented algorithms sweep the -seg dimension; 0 means "whatever
	// the tuning resolves" (table seg, then the default).
	segSweep := []int{0}
	if *segFlag != "" {
		segSweep = nil
		for _, f := range strings.Split(*segFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad segment size %q", f)
			}
			segSweep = append(segSweep, n)
		}
	}
	// The rail-striped algorithms sweep the -stripe dimension; 0 means
	// "whatever the tuning resolves" (table stripe, then unstriped).
	stripeSweep := []int{0}
	if *stripeFlag != "" {
		stripeSweep = nil
		for _, f := range strings.Split(*stripeFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 0 {
				log.Fatalf("bad stripe width %q", f)
			}
			stripeSweep = append(stripeSweep, n)
		}
	}
	ops := strings.Split(*opsFlag, ",")
	for i := range ops {
		ops[i] = strings.TrimSpace(ops[i])
	}
	stack, ok := tune.StackByName(*stackFlag)
	if !ok {
		var names []string
		for _, p := range tune.PresetStacks() {
			names = append(names, p.Name)
		}
		log.Fatalf("unknown stack %q (presets: %s)", *stackFlag, strings.Join(names, ", "))
	}

	// Forced linear-depth rows are dropped beyond this rank count (see the
	// sweep loop); the bound keeps the default grids intact while letting
	// -np 4096 finish.
	const maxLinearNP = 512
	var skippedLinear []string

	var rows []row
	measure := func(op string, algo coll.Algo, skew string, seg, stripe, bytes int, cache bool) row {
		o := bench.CollBenchOptions{
			Op: op, Bytes: bytes, Iters: *iters, NP: *np, Skew: skew, Seg: seg, Stripe: stripe,
			TwoLevel: algo == coll.AlgoTwoLevel,
			NoCache:  !cache,
		}
		if algo != coll.AlgoAuto && algo != coll.AlgoTwoLevel {
			o.Algo = algo
		}
		r, err := bench.CollBenchOnce(stack, o)
		if err != nil {
			log.Fatalf("%s/%s/%s/seg%d/stripe%d/%dB: %v", op, algo, skew, seg, stripe, bytes, err)
		}
		return row{Op: op, Algo: algo.String(), Skew: skew, Seg: seg, Stripe: stripe, Bytes: bytes,
			TwoLevel: algo == coll.AlgoTwoLevel, Cache: cache,
			PerOpUS: r.PerOp * 1e6, HostMS: r.HostMS,
			Compiles: r.Compiles, Hits: r.Hits, Rails: r.Rails, Counters: r.Counters}
	}

	if *traceOut != "" {
		op := ops[0]
		skew := ""
		if isVector(op) {
			skew = vecSkews[0]
		}
		tr := trace.New()
		o := bench.CollBenchOptions{
			Op: op, Bytes: sizes[0], Iters: *iters, NP: *np, Skew: skew, Trace: tr,
		}
		if _, err := bench.CollBenchOnce(stack, o); err != nil {
			log.Fatalf("traced %s/%dB: %v", op, sizes[0], err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%s, %dB, auto, cache on)\n", *traceOut, op, sizes[0])
		trace.Summarize(tr).WriteText(os.Stderr)
	}

	for _, op := range ops {
		skews := []string{""}
		if isVector(op) {
			skews = vecSkews
		}
		for _, bytes := range sizes {
			for _, skew := range skews {
				rows = append(rows, measure(op, coll.AlgoAuto, skew, 0, 0, bytes, true))
				rows = append(rows, measure(op, coll.AlgoAuto, skew, 0, 0, bytes, false))
				for _, algo := range candidates(op) {
					// Skip forced picks the builder would silently replace
					// at this rank count — they duplicate another row under
					// a misleading label.
					if kind, err := bench.OpKindOf(op); err == nil && coll.FallsBack(kind, algo, *np) {
						continue
					}
					// Linear-depth algorithms (rings, chains, pairwise) run
					// O(NP) rounds per rank — forcing one at NP in the
					// thousands is O(NP²) simulation work for a row nobody
					// would select there. The auto rows still cover them
					// wherever the selector genuinely picks one.
					if *np > maxLinearNP && coll.LinearDepth(algo) {
						skippedLinear = append(skippedLinear, op+"/"+algo.String())
						continue
					}
					segs := []int{0}
					if coll.Segmented(algo) {
						segs = segSweep
					}
					strs := []int{0}
					if kind, err := bench.OpKindOf(op); err == nil && coll.Striped(kind, algo) {
						strs = stripeSweep
					}
					for _, seg := range segs {
						for _, stripe := range strs {
							rows = append(rows, measure(op, algo, skew, seg, stripe, bytes, true))
						}
					}
				}
			}
		}
	}

	if len(skippedLinear) > 0 {
		fmt.Fprintf(os.Stderr, "collbench: np=%d > %d: skipped forcing linear-depth algorithms: %s\n",
			*np, maxLinearNP, strings.Join(skippedLinear, ", "))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("collective engine sweep (np=%d, %s, block placement, %d iters)\n\n",
		*np, stack.Name, *iters)
	fmt.Printf("%-14s %-18s %-8s %-10s %-6s %12s %10s %9s/%-5s\n",
		"op", "algo", "skew", "size", "cache", "per-op", "host", "compiles", "hits")
	autoBest := 0.0
	for _, r := range rows {
		cacheLbl := "on"
		if !r.Cache {
			cacheLbl = "off"
		}
		marker := ""
		if r.Algo == "auto" && r.Cache {
			autoBest = r.PerOpUS
		} else if r.Cache && r.PerOpUS < autoBest {
			marker = "  << beats auto"
		}
		skew := r.Skew
		if skew == "" {
			skew = "-"
		}
		algoLbl := r.Algo
		if r.Seg > 0 {
			algoLbl += "/" + bench.SizeLabel(float64(r.Seg))
		}
		if r.Stripe > 0 {
			algoLbl += fmt.Sprintf("/x%d", r.Stripe)
		}
		fmt.Printf("%-14s %-18s %-8s %-10s %-6s %10.1fµs %8.0fms %9d/%-5d%s\n",
			r.Op, algoLbl, skew, bench.SizeLabel(float64(r.Bytes)), cacheLbl,
			r.PerOpUS, r.HostMS, r.Compiles, r.Hits, marker)
	}
	fmt.Println("\ncache=on rows compile once and rebind; cache=off rows recompile per call;")
	fmt.Println("virtual per-op time is identical either way (determinism guarantee) — the")
	fmt.Println("cache buys host time and allocation churn, the selector buys virtual time.")
}
