// Command nasbench regenerates the NAS panels of Fig. 8: per process count
// (8/9, 16, 32/36, 64), execution times of the BT, CG, EP, FT, SP, MG and LU
// class C kernels under MVAPICH2, Open MPI, MPICH2-NMad and MPICH2-NMad with
// PIOMan — plus IS, the kernel the paper could not run, now that its
// alltoallv compiles through the schedule engine (drop it from -kernels for
// the strict Fig. 8 set). Smaller classes (-class A/B/S) run much faster
// and keep the same relative shapes.
//
// -tuned runs every kernel twice — default selection vs the embedded
// per-stack calibration (tune.TableFor) — and reports the end-to-end delta,
// quantifying what the calibrated tables buy whole kernels rather than
// microbenchmarks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/bench"
	"repro/internal/coll/tune"
	"repro/internal/nas"
)

func main() {
	classFlag := flag.String("class", "C", "problem class: S, A, B or C")
	npFlag := flag.String("np", "8,16,32,64", "comma-separated process counts")
	kernFlag := flag.String("kernels", "BT,CG,EP,FT,SP,MG,LU,IS", "kernels to run")
	tuned := flag.Bool("tuned", false,
		"also run with the embedded calibrated tuning tables installed and report the delta")
	flag.Parse()

	class := nas.Class((*classFlag)[0])
	var kernels []nas.Kernel
	for _, name := range strings.Split(*kernFlag, ",") {
		k, err := nas.KernelByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	for _, npStr := range strings.Split(*npFlag, ",") {
		var np int
		if _, err := fmt.Sscanf(strings.TrimSpace(npStr), "%d", &np); err != nil {
			log.Fatalf("bad np %q", npStr)
		}
		res, err := bench.RunNAS(class, np, kernels, bench.NASStacks(), nil)
		if err != nil {
			log.Fatal(err)
		}
		bench.WriteNASTable(os.Stdout,
			fmt.Sprintf("fig8 — NAS class %c, %d processes", class, np), res)
		fmt.Println()
		if *tuned {
			tres, err := bench.RunNAS(class, np, kernels, bench.NASStacks(), tune.TableFor)
			if err != nil {
				log.Fatal(err)
			}
			bench.WriteNASDeltaTable(os.Stdout,
				fmt.Sprintf("calibrated tables — NAS class %c, %d processes", class, np), res, tres)
			fmt.Println()
		}
	}
}
