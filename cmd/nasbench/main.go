// Command nasbench regenerates the NAS panels of Fig. 8: per process count
// (8/9, 16, 32/36, 64), execution times of the BT, CG, EP, FT, SP, MG and LU
// class C kernels under MVAPICH2, Open MPI, MPICH2-NMad and MPICH2-NMad with
// PIOMan — plus IS, the kernel the paper could not run, now that its
// alltoallv compiles through the schedule engine (drop it from -kernels for
// the strict Fig. 8 set). Smaller classes (-class A/B/S) run much faster
// and keep the same relative shapes.
//
// -tuned runs every kernel twice — default selection vs the embedded
// per-stack calibration (tune.TableFor) — and reports the end-to-end delta,
// quantifying what the calibrated tables buy whole kernels rather than
// microbenchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/bench"
	"repro/internal/coll/tune"
	"repro/internal/nas"
	"repro/internal/trace"
)

func main() {
	classFlag := flag.String("class", "C", "problem class: S, A, B or C")
	npFlag := flag.String("np", "8,16,32,64", "comma-separated process counts")
	kernFlag := flag.String("kernels", "BT,CG,EP,FT,SP,MG,LU,IS", "kernels to run")
	tuned := flag.Bool("tuned", false,
		"also run with the embedded calibrated tuning tables installed and report the delta")
	jsonOut := flag.Bool("json", false,
		"emit JSON rows (one per kernel × stack × np, counter snapshot included) instead of the tables")
	traceOut := flag.String("trace", "",
		"write a Chrome trace of one run (first kernel, PIOMan stack, first np) to this file, plus a summary on stderr")
	flag.Parse()

	class := nas.Class((*classFlag)[0])
	var kernels []nas.Kernel
	for _, name := range strings.Split(*kernFlag, ",") {
		k, err := nas.KernelByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	var jsonRows []bench.NASResult
	var nps []int
	for _, npStr := range strings.Split(*npFlag, ",") {
		var np int
		if _, err := fmt.Sscanf(strings.TrimSpace(npStr), "%d", &np); err != nil {
			log.Fatalf("bad np %q", npStr)
		}
		nps = append(nps, np)
	}

	for _, np := range nps {
		res, err := bench.RunNAS(class, np, kernels, bench.NASStacks(), nil)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			jsonRows = append(jsonRows, res...)
		} else {
			bench.WriteNASTable(os.Stdout,
				fmt.Sprintf("fig8 — NAS class %c, %d processes", class, np), res)
			fmt.Println()
		}
		if *tuned {
			tres, err := bench.RunNAS(class, np, kernels, bench.NASStacks(), tune.TableFor)
			if err != nil {
				log.Fatal(err)
			}
			if *jsonOut {
				jsonRows = append(jsonRows, tres...)
			} else {
				bench.WriteNASDeltaTable(os.Stdout,
					fmt.Sprintf("calibrated tables — NAS class %c, %d processes", class, np), res, tres)
				fmt.Println()
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRows); err != nil {
			log.Fatal(err)
		}
	}

	if *traceOut != "" {
		tr := trace.New()
		pioStack := bench.NASStacks()[3] // MPICH2-NMad with PIOMan
		r, err := bench.RunNASKernelTraced(kernels[0], pioStack, nps[0], class, nil, tr)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%s class %c np=%d, %s)\n",
			*traceOut, r.Kernel, class, r.NP, r.Stack)
		trace.Summarize(tr).WriteText(os.Stderr)
	}
}
