// Command colltune calibrates collective algorithm selection for one MPI
// stack (or all presets): it sweeps op × payload × candidate algorithm
// through the collbench harness, derives the crossover thresholds, and
// emits a coll.Table as JSON — loadable via Config.Coll.LoadTable and
// embedded per stack in internal/coll/tune. Virtual time is deterministic,
// so the emitted tables are byte-reproducible.
//
//	colltune                          # calibrate mpich2-nmad-ib, table on stdout
//	colltune -stack all -out DIR      # regenerate every embedded table
//	colltune -check                   # assert tuned ≤ default on every swept point
//	colltune -smoke -out table.json   # tiny CI grid, implies -check
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/bench"
	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/coll/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("colltune: ")
	stackFlag := flag.String("stack", "mpich2-nmad-ib",
		"stack preset to calibrate, or \"all\" for every preset")
	np := flag.Int("np", 8, "number of ranks (block-placed)")
	iters := flag.Int("iters", 4, "iterations per measurement")
	sizesFlag := flag.String("sizes", "", "comma-separated per-rank payload sizes in bytes (default 256B..1MB ladder)")
	opsFlag := flag.String("ops", "", "comma-separated operations to tune (default every byte-tunable op)")
	out := flag.String("out", "-",
		"output file (\"-\" = stdout); a directory with -stack all (one <stack>.json each)")
	check := flag.Bool("check", false,
		"verify the tuned table is never slower than the defaults on any swept point")
	smoke := flag.Bool("smoke", false,
		"tiny CI grid (np=4, iters=2, two sizes); implies -check")
	flag.Parse()

	opts := tune.Options{NP: *np, Iters: *iters}
	if *sizesFlag != "" {
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad size %q", f)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}
	if *opsFlag != "" {
		for _, f := range strings.Split(*opsFlag, ",") {
			name := strings.TrimSpace(f)
			op, err := coll.OpKindByName(name)
			if err != nil {
				// Also accept the collbench harness spellings
				// ("reducescatter"), so op names move between the two
				// tools unchanged.
				if k, berr := bench.OpKindOf(name); berr == nil {
					op = k
				} else {
					log.Fatal(err)
				}
			}
			opts.Ops = append(opts.Ops, op)
		}
	}
	// -smoke shrinks the grid but never overrides a flag the user set
	// explicitly (the table's selector-space coordinates depend on -np).
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *smoke {
		*check = true
		if !set["np"] {
			opts.NP = 4
		}
		if !set["iters"] {
			opts.Iters = 2
		}
		if len(opts.Sizes) == 0 {
			opts.Sizes = []int{1 << 10, 64 << 10}
		}
	}

	var stacks []cluster.Stack
	if *stackFlag == "all" {
		stacks = tune.PresetStacks()
		if *out == "-" {
			log.Fatal("-stack all needs -out DIR (one table file per stack)")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	} else {
		s, ok := tune.StackByName(*stackFlag)
		if !ok {
			var names []string
			for _, p := range tune.PresetStacks() {
				names = append(names, p.Name)
			}
			log.Fatalf("unknown stack %q (presets: %s, or \"all\")",
				*stackFlag, strings.Join(names, ", "))
		}
		stacks = []cluster.Stack{s}
	}

	for _, s := range stacks {
		res, err := tune.Sweep(s, opts)
		if err != nil {
			log.Fatal(err)
		}
		if *check {
			if viols := tune.Check(res); len(viols) > 0 {
				for _, v := range viols {
					log.Printf("%s: VIOLATION %s", s.Name, v)
				}
				log.Fatalf("%s: tuned table slower than defaults on %d of %d swept points",
					s.Name, len(viols), len(res.Points))
			}
			log.Printf("%s: check ok — tuned ≤ default on all %d swept points",
				s.Name, len(res.Points))
		}
		data, err := res.Table.JSON()
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *stackFlag == "all":
			path := filepath.Join(*out, s.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("%s: wrote %s (%d points, %d ops)",
				s.Name, path, len(res.Points), len(res.Table.Ops))
		case *out == "-":
			fmt.Print(string(data))
		default:
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("%s: wrote %s (%d points, %d ops)",
				s.Name, *out, len(res.Points), len(res.Table.Ops))
		}
	}
}
