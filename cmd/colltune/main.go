// Command colltune calibrates collective algorithm selection for one MPI
// stack (or all presets): it sweeps op × payload × candidate algorithm
// through the collbench harness, derives the crossover thresholds, and
// emits a coll.Table as JSON — loadable via Config.Coll.LoadTable and
// embedded per stack in internal/coll/tune. Virtual time is deterministic,
// so the emitted tables are byte-reproducible.
//
//	colltune                          # calibrate mpich2-nmad-ib, table on stdout
//	colltune -stack all -out DIR      # regenerate every embedded table
//	colltune -check                   # assert tuned ≤ default on every swept point
//	colltune -smoke -out table.json   # tiny CI grid, implies -check
//	colltune -diff stackA stackB      # selection disagreements between two tables
//
// -diff takes two embedded stack names (or paths to colltune-emitted JSON
// files) and prints every (op, size) of the sweep grid where the two
// calibrations select differently — the paper's crossover-shift argument
// made directly visible.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/bench"
	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/coll/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("colltune: ")
	stackFlag := flag.String("stack", "mpich2-nmad-ib",
		"stack preset to calibrate, or \"all\" for every preset")
	np := flag.Int("np", 8, "number of ranks (block-placed)")
	npsFlag := flag.String("nps", "",
		"comma-separated rank counts, one table band each (overrides -np; e.g. 8,64)")
	iters := flag.Int("iters", 4, "iterations per measurement")
	sizesFlag := flag.String("sizes", "", "comma-separated per-rank payload sizes in bytes (default 256B..1MB ladder)")
	opsFlag := flag.String("ops", "", "comma-separated operations to tune (default every byte-tunable op)")
	out := flag.String("out", "-",
		"output file (\"-\" = stdout); a directory with -stack all (one <stack>.json each)")
	check := flag.Bool("check", false,
		"verify the tuned table is never slower than the defaults on any swept point")
	smoke := flag.Bool("smoke", false,
		"tiny CI grid (np=4, iters=2, two sizes); implies -check")
	segsFlag := flag.String("segs", "",
		"comma-separated pipeline segment sizes in bytes swept for the segmented algorithms (default 4K,16K,64K)")
	stripesFlag := flag.String("stripes", "",
		"comma-separated rail-stripe widths swept for the rail-striped algorithms on multirail stacks (0 = unstriped, always included; default 0 and the rail count; ignored on single-rail stacks)")
	diff := flag.Bool("diff", false,
		"compare two tables: colltune -diff stackA stackB (embedded stack names or JSON files)")
	flag.Parse()

	opts := tune.Options{NP: *np, Iters: *iters}
	if *npsFlag != "" {
		for _, f := range strings.Split(*npsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad rank count %q", f)
			}
			opts.NPs = append(opts.NPs, n)
		}
	}
	if *segsFlag != "" {
		for _, f := range strings.Split(*segsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad segment size %q", f)
			}
			opts.Segs = append(opts.Segs, n)
		}
	}
	if *stripesFlag != "" {
		for _, f := range strings.Split(*stripesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 0 {
				log.Fatalf("bad stripe width %q", f)
			}
			opts.Stripes = append(opts.Stripes, n)
		}
	}
	if *sizesFlag != "" {
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				log.Fatalf("bad size %q", f)
			}
			opts.Sizes = append(opts.Sizes, n)
		}
	}
	if *opsFlag != "" {
		for _, f := range strings.Split(*opsFlag, ",") {
			name := strings.TrimSpace(f)
			op, err := coll.OpKindByName(name)
			if err != nil {
				// Also accept the collbench harness spellings
				// ("reducescatter"), so op names move between the two
				// tools unchanged.
				if k, berr := bench.OpKindOf(name); berr == nil {
					op = k
				} else {
					log.Fatal(err)
				}
			}
			opts.Ops = append(opts.Ops, op)
		}
	}
	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("-diff needs exactly two arguments: embedded stack names or table files")
		}
		if n := diffTables(os.Stdout, loadTableArg(flag.Arg(0)), loadTableArg(flag.Arg(1)), opts); n > 0 {
			log.Printf("%d selection disagreements", n)
		} else {
			log.Print("tables agree on the whole grid")
		}
		return
	}

	// -smoke shrinks the grid but never overrides a flag the user set
	// explicitly (the table's selector-space coordinates depend on -np).
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *smoke {
		*check = true
		if !set["np"] {
			opts.NP = 4
		}
		if !set["iters"] {
			opts.Iters = 2
		}
		if len(opts.Sizes) == 0 {
			opts.Sizes = []int{1 << 10, 64 << 10}
		}
	}

	var stacks []cluster.Stack
	if *stackFlag == "all" {
		stacks = tune.PresetStacks()
		if *out == "-" {
			log.Fatal("-stack all needs -out DIR (one table file per stack)")
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	} else {
		s, ok := tune.StackByName(*stackFlag)
		if !ok {
			var names []string
			for _, p := range tune.PresetStacks() {
				names = append(names, p.Name)
			}
			log.Fatalf("unknown stack %q (presets: %s, or \"all\")",
				*stackFlag, strings.Join(names, ", "))
		}
		stacks = []cluster.Stack{s}
	}

	runSweeps(stacks, opts, *stackFlag, *out, *check)
}

// loadTableArg resolves a -diff argument: an embedded per-stack
// calibration by name, or a colltune-emitted JSON file by path.
func loadTableArg(arg string) *coll.Table {
	if t := tune.TableFor(arg); t != nil {
		return t
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		log.Fatalf("%q is neither an embedded stack (%s) nor a readable table file: %v",
			arg, strings.Join(tune.CalibratedStacks(), ", "), err)
	}
	t, err := coll.ParseTable(data)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// diffTables prints every (op, size) of the sweep grid where the two
// calibrations pick a different algorithm or segment size, resolving both
// through the same Tuning.Select/SegFor path mpi uses (so builder
// fallbacks at this -np are honoured), and returns the disagreement count.
func diffTables(w io.Writer, ta, tb *coll.Table, opts tune.Options) int {
	tunA := &coll.Tuning{Table: ta, Stack: ta.Stack}
	tunB := &coll.Tuning{Table: tb, Stack: tb.Stack}
	np := opts.NP
	if np == 0 {
		np = 8
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	ops := opts.Ops
	if len(ops) == 0 {
		ops = tune.DefaultOps()
	}
	pick := func(t *coll.Tuning, op coll.OpKind, sel int) (coll.Algo, int) {
		a := t.Select(op, np, sel, false)
		if coll.Segmented(a) {
			return a, t.SegFor(op, np, sel)
		}
		return a, 0
	}
	label := func(a coll.Algo, seg int) string {
		if seg > 0 {
			return fmt.Sprintf("%s(seg=%d)", a, seg)
		}
		return a.String()
	}
	fmt.Fprintf(w, "selection diff %s vs %s (np=%d, selector-space bytes)\n",
		ta.Stack, tb.Stack, np)
	fmt.Fprintf(w, "%-14s %-10s %-28s %-28s\n", "op", "size", ta.Stack, tb.Stack)
	n := 0
	for _, op := range ops {
		for _, bytes := range sizes {
			sel := tune.SelectorBytes(op, np, bytes)
			aA, sA := pick(tunA, op, sel)
			aB, sB := pick(tunB, op, sel)
			if aA == aB && sA == sB {
				continue
			}
			n++
			fmt.Fprintf(w, "%-14s %-10s %-28s %-28s\n",
				op, bench.SizeLabel(float64(sel)), label(aA, sA), label(aB, sB))
		}
	}
	return n
}

func runSweeps(stacks []cluster.Stack, opts tune.Options, stackFlag, out string, check bool) {
	for _, s := range stacks {
		res, err := tune.Sweep(s, opts)
		if err != nil {
			log.Fatal(err)
		}
		if check {
			if viols := tune.Check(res); len(viols) > 0 {
				for _, v := range viols {
					log.Printf("%s: VIOLATION %s", s.Name, v)
				}
				log.Fatalf("%s: tuned table slower than defaults on %d of %d swept points",
					s.Name, len(viols), len(res.Points))
			}
			log.Printf("%s: check ok — tuned ≤ default on all %d swept points",
				s.Name, len(res.Points))
		}
		data, err := res.Table.JSON()
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case stackFlag == "all":
			path := filepath.Join(out, s.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("%s: wrote %s (%d points, %d ops)",
				s.Name, path, len(res.Points), len(res.Table.OpNames()))
		case out == "-":
			fmt.Print(string(data))
		default:
			if err := os.WriteFile(out, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("%s: wrote %s (%d points, %d ops)",
				s.Name, out, len(res.Points), len(res.Table.OpNames()))
		}
	}
}
