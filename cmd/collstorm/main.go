// Command collstorm stresses the host-side hot paths: each rank keeps a
// window of nonblocking allreduces outstanding across several sibling Split
// communicators and refills it for a number of batches, sweeping the total
// in-flight depth. Where collbench measures virtual time per collective,
// collstorm measures what sustaining thousands of concurrent operations
// costs the *simulator host* — ops/sec, ns/op and allocs/op — exercising
// the bucketed matching queues, the request/op/job free lists and the
// schedule cache's rebind path at depth. The headline check: per-op host
// time stays flat (within 2×) as the window grows from the smallest to the
// largest swept depth, i.e. matching and pooling are O(1) per op, not
// O(in-flight). -json emits machine-readable rows for the perf trajectory
// (BENCH_collstorm.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/bench"
	"repro/cluster"
)

// row is one measurement at one in-flight depth, JSON-shaped for
// BENCH_collstorm.json.
type row struct {
	Stack    string `json:"stack"`
	NP       int    `json:"np"`
	Splits   int    `json:"splits"`
	Batches  int    `json:"batches"`
	InFlight int    `json:"in_flight"`
	bench.CollStormResult
}

func main() {
	np := flag.Int("np", 8, "number of ranks (round-robin placed over two nodes)")
	splits := flag.Int("splits", 3, "sibling Split communicators per rank")
	inflight := flag.String("inflight", "100,1000,5000",
		"comma-separated total in-flight op depths to sweep")
	batches := flag.Int("batches", 4, "window refills per depth")
	pioman := flag.Bool("pioman", true, "run under the PIOMan background-progress regime")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of the table")
	flag.Parse()

	var depths []int
	for _, f := range strings.Split(*inflight, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad in-flight depth %q", f)
		}
		depths = append(depths, n)
	}
	stack := cluster.MPICH2NmadIB()
	if *pioman {
		stack = stack.WithPIOMan(true)
	}

	var rows []row
	for _, depth := range depths {
		r, err := bench.CollStormOnce(stack, bench.CollStormOptions{
			NP: *np, Splits: *splits, InFlight: depth, Batches: *batches,
		})
		if err != nil {
			log.Fatalf("collstorm depth %d: %v", depth, err)
		}
		rows = append(rows, row{
			Stack: stack.Name, NP: *np, Splits: *splits, Batches: *batches,
			InFlight: r.InFlight, CollStormResult: r,
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("collective storm (np=%d, %d splits, %d batches, %s)\n\n",
		*np, *splits, *batches, stack.Name)
	fmt.Printf("%10s %10s %12s %12s %12s %10s %22s\n",
		"in-flight", "ops", "ops/sec", "ns/op", "allocs/op", "req-peak", "pools req/op hit%")
	for _, r := range rows {
		cs := r.Counters
		reqPct := pct(cs.ReqPoolHits, cs.ReqPoolMisses)
		opPct := pct(cs.OpPoolHits, cs.OpPoolMisses)
		fmt.Printf("%10d %10d %12.0f %12.0f %12.1f %10d %12s/%-8s\n",
			r.InFlight, r.Ops, r.OpsPerSec, r.NsPerOp, r.AllocsPerOp,
			cs.ReqInFlight, reqPct, opPct)
	}
	if len(rows) > 1 {
		lo, hi := rows[0], rows[len(rows)-1]
		ratio := hi.NsPerOp / lo.NsPerOp
		verdict := "flat matching/pooling (within 2x)"
		if ratio > 2 {
			verdict = "REGRESSION: per-op host cost grows with depth"
		}
		fmt.Printf("\nper-op host time %d -> %d in flight: %.2fx — %s\n",
			lo.InFlight, hi.InFlight, ratio, verdict)
	}
}

// pct formats a hit percentage from hit/miss counters.
func pct(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
}
