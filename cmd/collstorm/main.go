// Command collstorm stresses the host-side hot paths: each rank keeps a
// window of nonblocking allreduces outstanding across several sibling Split
// communicators and refills it for a number of batches, sweeping the total
// in-flight depth. Where collbench measures virtual time per collective,
// collstorm measures what sustaining thousands of concurrent operations
// costs the *simulator host* — ops/sec, ns/op and allocs/op — exercising
// the bucketed matching queues, the request/op/job free lists and the
// schedule cache's rebind path at depth. The headline check: per-op host
// time stays flat (within 2×) as the window grows from the smallest to the
// largest swept depth, i.e. matching and pooling are O(1) per op, not
// O(in-flight). -json emits machine-readable rows for the perf trajectory
// (BENCH_collstorm.json).
//
// Sweeps beyond depth:
//
//   - -workers runs every depth under each PIOMan worker count (multi-worker
//     background progression), reporting how host throughput scales with
//     progression parallelism at depth.
//   - -npsweep appends a rank-count sweep at a fixed depth (-npdepth),
//     growing the cluster at 8 cores per node past the two-node testbed.
//     Rank counts in the hundreds are routine: per-rank state (transport
//     wiring, cell pools) is allocated lazily, so host cost tracks the
//     traffic actually simulated, and the sweep's verdict pins host ns per
//     engine event flat (within 2×) from the smallest to the largest NP —
//     per-op cost is allowed its algorithmic O(log NP) round growth, but
//     nothing NP-linear may hide under it.
//   - -reps repeats each configuration, interleaved round-robin so host
//     drift spreads evenly, and keeps the median-throughput run: single
//     measurements on a shared host are noisy, and the virtual side of a
//     configuration is bit-identical across repetitions anyway.
//   - -maxallocs exits nonzero when any row's cached-steady-state allocs/op
//     (batches after the first, pools primed) exceeds the bound — the CI
//     allocation-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/bench"
	"repro/cluster"
)

// row is one measurement at one configuration, JSON-shaped for
// BENCH_collstorm.json.
type row struct {
	Stack    string `json:"stack"`
	NP       int    `json:"np"`
	Splits   int    `json:"splits"`
	Batches  int    `json:"batches"`
	Workers  int    `json:"workers"`
	InFlight int    `json:"in_flight"`
	bench.CollStormResult
}

func main() {
	np := flag.Int("np", 8, "number of ranks (round-robin placed, 8 cores per node)")
	splits := flag.Int("splits", 3, "sibling Split communicators per rank")
	inflight := flag.String("inflight", "100,1000,5000",
		"comma-separated total in-flight op depths to sweep")
	batches := flag.Int("batches", 4, "window refills per depth")
	pioman := flag.Bool("pioman", true, "run under the PIOMan background-progress regime")
	workers := flag.String("workers", "1",
		"comma-separated PIOMan worker counts to sweep at each depth")
	npSweep := flag.String("npsweep", "",
		"comma-separated rank counts for an extra NP sweep at -npdepth (e.g. 4,8,16,64,256)")
	npDepth := flag.Int("npdepth", 1000, "in-flight depth the -npsweep rows run at")
	reps := flag.Int("reps", 1,
		"repetitions per configuration, interleaved; the median-throughput run is kept")
	maxAllocs := flag.Float64("maxallocs", 0,
		"fail (exit 1) if any row's cached allocs/op exceeds this bound (0 = off)")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of the table")
	flag.Parse()

	depths := intList(*inflight, "in-flight depth")
	workerCounts := intList(*workers, "worker count")
	stack := cluster.MPICH2NmadIB()
	if *pioman {
		stack = stack.WithPIOMan(true)
	}

	type config struct{ np, depth, workers int }
	var cfgs []config
	for _, depth := range depths {
		for _, w := range workerCounts {
			cfgs = append(cfgs, config{*np, depth, w})
		}
	}
	npRows := 0
	if *npSweep != "" {
		for _, n := range intList(*npSweep, "np") {
			cfgs = append(cfgs, config{n, *npDepth, workerCounts[0]})
			npRows++
		}
	}

	// Repetitions are interleaved round-robin over the configurations (rep-
	// major, not config-major) so host-state drift across a long sweep (heap
	// growth, allocator reuse) spreads evenly over the rows instead of
	// penalizing whichever configuration happens to run later. Each row
	// reports its median-throughput repetition: at several percent of host
	// noise the fastest-of-N is biased by lucky scheduling windows, while
	// the median is stable. The virtual side is bit-identical across
	// repetitions, so only the host-time fields differ.
	runs := make([][]bench.CollStormResult, len(cfgs))
	for i := 0; i < *reps; i++ {
		for k, c := range cfgs {
			r, err := bench.CollStormOnce(stack, bench.CollStormOptions{
				NP: c.np, Splits: *splits, InFlight: c.depth, Batches: *batches, Workers: c.workers,
			})
			if err != nil {
				log.Fatalf("collstorm np=%d depth=%d workers=%d: %v", c.np, c.depth, c.workers, err)
			}
			runs[k] = append(runs[k], r)
		}
	}
	rows := make([]row, len(cfgs))
	for k, c := range cfgs {
		rs := runs[k]
		sort.Slice(rs, func(a, b int) bool { return rs[a].OpsPerSec < rs[b].OpsPerSec })
		med := rs[len(rs)/2]
		rows[k] = row{
			Stack: stack.Name, NP: c.np, Splits: *splits, Batches: *batches,
			Workers: c.workers, InFlight: med.InFlight, CollStormResult: med,
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		checkAllocs(rows, *maxAllocs)
		return
	}

	fmt.Printf("collective storm (%d splits, %d batches, %s)\n\n",
		*splits, *batches, stack.Name)
	fmt.Printf("%4s %4s %10s %10s %12s %12s %12s %10s %22s\n",
		"np", "wrk", "in-flight", "ops", "ops/sec", "ns/op", "allocs/op", "req-peak", "pools req/op hit%")
	for _, r := range rows {
		cs := r.Counters
		reqPct := pct(cs.ReqPoolHits, cs.ReqPoolMisses)
		opPct := pct(cs.OpPoolHits, cs.OpPoolMisses)
		fmt.Printf("%4d %4d %10d %10d %12.0f %12.0f %12.1f %10d %12s/%-8s\n",
			r.NP, r.Workers, r.InFlight, r.Ops, r.OpsPerSec, r.NsPerOp, r.AllocsPerOp,
			cs.ReqInFlight, reqPct, opPct)
	}

	// Depth-flatness verdict over the base-worker depth sweep.
	var base []row
	for _, r := range rows[:len(rows)-npRows] {
		if r.Workers == workerCounts[0] {
			base = append(base, r)
		}
	}
	if len(base) > 1 {
		lo, hi := base[0], base[len(base)-1]
		ratio := hi.NsPerOp / lo.NsPerOp
		verdict := "flat matching/pooling (within 2x)"
		if ratio > 2 {
			verdict = "REGRESSION: per-op host cost grows with depth"
		}
		fmt.Printf("\nper-op host time %d -> %d in flight: %.2fx — %s\n",
			lo.InFlight, hi.InFlight, ratio, verdict)
	}

	// NP-flatness verdict over the -npsweep rows. One op's host cost
	// legitimately grows O(log NP) — the collective runs that many more
	// rounds, and the engine schedules proportionally more events — so the
	// quantity pinned is host time per engine event: flat per-event cost
	// means matching, pooling and per-rank state carry no NP-dependent
	// terms, which is exactly what lazy wiring and lazy cell pools buy.
	if npRows > 1 {
		nps := rows[len(rows)-npRows:]
		lo, hi := nps[0], nps[len(nps)-1]
		ratio := hi.NsPerEvent / lo.NsPerEvent
		verdict := "flat per-event host cost (within 2x)"
		if ratio > 2 {
			verdict = "REGRESSION: super-linear host cost vs simulated work"
		}
		fmt.Printf("\nnp sweep %d -> %d at depth %d: per-op %.2fx, events/op %.2fx, per-event host cost %.2fx — %s\n",
			lo.NP, hi.NP, lo.InFlight,
			hi.NsPerOp/lo.NsPerOp,
			(float64(hi.Events)/float64(hi.Ops))/(float64(lo.Events)/float64(lo.Ops)),
			ratio, verdict)
	}

	// Worker-scaling verdict at the deepest swept window: the depth sweep's
	// last block holds one row per worker count, all at depths[len-1].
	if len(workerCounts) > 1 {
		deep := rows[len(rows)-npRows-len(workerCounts) : len(rows)-npRows]
		fmt.Printf("\nworker scaling at %d in flight (np=%d):\n", deep[0].InFlight, *np)
		first := deep[0]
		for _, r := range deep {
			mark := ""
			if r.Workers != first.Workers && first.OpsPerSec > 0 {
				mark = fmt.Sprintf("  (%.2fx vs %d worker)", r.OpsPerSec/first.OpsPerSec, first.Workers)
			}
			fmt.Printf("  workers=%d: %10.0f ops/sec, virtual %.4fs, %d engine events%s\n",
				r.Workers, r.OpsPerSec, r.VirtualS, r.Events, mark)
		}
	}
	checkAllocs(rows, *maxAllocs)
}

// checkAllocs enforces the cached-steady-state allocation bound.
func checkAllocs(rows []row, bound float64) {
	if bound <= 0 {
		return
	}
	for _, r := range rows {
		if r.CachedAllocsPerOp > bound {
			fmt.Fprintf(os.Stderr,
				"collstorm: np=%d workers=%d depth=%d cached allocs/op %.1f exceeds bound %.1f\n",
				r.NP, r.Workers, r.InFlight, r.CachedAllocsPerOp, bound)
			os.Exit(1)
		}
	}
}

// intList parses a comma-separated list of positive ints.
func intList(s, what string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad %s %q", what, f)
		}
		out = append(out, n)
	}
	return out
}

// pct formats a hit percentage from hit/miss counters.
func pct(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
}
