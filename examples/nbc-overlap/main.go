// nbc-overlap: demonstrate schedule-based nonblocking collectives hiding
// behind computation across MPI stacks. Each rank starts IallreduceF64,
// computes, then waits; the overlap ratio reports how much of the hideable
// time disappeared. Only stacks with an asynchronous progress engine
// (PIOMan) advance the collective's rounds while the application computes —
// the others serialize, exactly as the paper's §3.3/§4.1.2 argue for
// point-to-point overlap. Run with:
//
//	go run ./examples/nbc-overlap
package main

import (
	"fmt"
	"log"

	"repro/bench"
	"repro/cluster"
)

func main() {
	const computeUS = 300
	stacks := []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MPICH2NmadMX(),
		cluster.MPICH2NmadMX().WithPIOMan(true),
		cluster.MVAPICH2(),
	}
	elems := []int{4 << 10, 64 << 10} // 32 KB and 512 KB payloads

	fmt.Printf("IallreduceF64 + %dµs compute + Wait — overlap ratio per stack:\n\n", computeUS)
	fmt.Printf("%-26s %12s %12s\n", "stack", "32K", "512K")
	for _, st := range stacks {
		s, err := bench.NbcOverlapSweep(st, elems,
			bench.NbcOverlapOptions{ComputeUS: computeUS, Iters: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %11.0f%% %11.0f%%\n", st.Name,
			100*s.Points[0].Y, 100*s.Points[1].Y)
	}
	fmt.Println("\nPIOMan stacks hide the collective behind the computation;")
	fmt.Println("progress-less stacks only advance schedules inside MPI calls.")
}
