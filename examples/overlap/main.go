// Overlap: demonstrate PIOMan's communication/computation overlap (§4.1.2,
// Fig. 7). The sender posts a nonblocking send, computes for 400 µs, then
// waits. Without a progress engine the rendezvous handshake stalls until
// MPI_Wait (total ≈ compute + transfer); with PIOMan an idle core answers
// the handshake and drives the transfer in the background (total ≈
// max(compute, transfer)). Run with:
//
//	go run ./examples/overlap
package main

import (
	"fmt"
	"log"

	"repro/bench"
	"repro/cluster"
)

func main() {
	const computeUS = 400
	sizes := []int{64 << 10, 256 << 10, 1 << 20}

	fmt.Printf("Isend + %dµs compute + Wait, sender-side total time:\n\n", computeUS)
	fmt.Printf("%-10s %16s %16s %16s\n", "size", "no progress", "with PIOMan", "transfer alone")

	for _, size := range sizes {
		o := bench.OverlapOptions{ComputeUS: computeUS, Iters: 5}
		plain, err := bench.OverlapOnce(cluster.MPICH2NmadIB(), size, o)
		if err != nil {
			log.Fatal(err)
		}
		pio, err := bench.OverlapOnce(cluster.MPICH2NmadIB().WithPIOMan(true), size, o)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := bench.OverlapOnce(cluster.MPICH2NmadIB(), size,
			bench.OverlapOptions{ComputeUS: 0.001, Iters: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.1fµs %14.1fµs %14.1fµs\n",
			bench.SizeLabel(float64(size)), plain*1e6, pio*1e6, ref*1e6)
	}
	fmt.Println("\nwithout PIOMan: total ≈ compute + transfer (no overlap)")
	fmt.Println("with PIOMan:    total ≈ max(compute, transfer) (overlapped)")
}
