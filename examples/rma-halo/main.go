// RMA halo exchange: the paper lists MPI-2 one-sided operations as future
// work (§5); this reproduction implements the fence-synchronized subset.
// Each rank owns a row of a distributed grid and Puts its boundary into its
// neighbours' halo windows — a classic stencil pattern — then verifies the
// halos after the fence. Strided columns travel as a non-contiguous
// datatype (the other §5 future-work item). Run with:
//
//	go run ./examples/rma-halo
package main

import (
	"fmt"
	"log"

	"repro/cluster"
	"repro/mpi"
)

const cols = 8

func main() {
	cfg := mpi.Config{
		Cluster: cluster.Xeon2(),
		Stack:   cluster.MPICH2NmadIB().WithPIOMan(true),
		NP:      4,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		rank, np := c.Rank(), c.Size()

		// Window layout: [0:cols] = halo from the upper neighbour,
		// [cols:2*cols] = halo from the lower neighbour.
		win := c.CreateWin(make([]byte, 2*cols))

		// My row content.
		row := make([]byte, cols)
		for i := range row {
			row[i] = byte(rank*10 + i)
		}

		up := (rank - 1 + np) % np
		down := (rank + 1) % np
		win.Put(down, 0, row)  // I am my lower neighbour's upper halo
		win.Put(up, cols, row) // ... and my upper neighbour's lower halo
		win.Fence()

		// Verify the halos this rank received.
		for i := 0; i < cols; i++ {
			if win.Buffer()[i] != byte(up*10+i) {
				log.Fatalf("rank %d: upper halo corrupt at %d", rank, i)
			}
			if win.Buffer()[cols+i] != byte(down*10+i) {
				log.Fatalf("rank %d: lower halo corrupt at %d", rank, i)
			}
		}
		if rank == 0 {
			fmt.Printf("halo exchange verified on %d ranks at t=%.2fµs\n",
				np, c.Wtime()*1e6)
		}

		// Bonus: ship a strided column with the vector datatype.
		if rank == 0 {
			matrix := make([]byte, cols*cols)
			for r := 0; r < cols; r++ {
				matrix[r*cols+3] = byte(100 + r) // column 3
			}
			col := mpi.Vector{Count: cols, BlockLen: 1, Stride: cols}
			c.SendD(1, 7, matrix[3:], col, 1)
		} else if rank == 1 {
			landing := make([]byte, cols*cols)
			col := mpi.Vector{Count: cols, BlockLen: 1, Stride: cols}
			c.RecvD(0, 7, landing[3:], col, 1)
			for r := 0; r < cols; r++ {
				if landing[r*cols+3] != byte(100+r) {
					log.Fatalf("strided column corrupt at row %d", r)
				}
			}
			fmt.Println("strided-column datatype transfer verified")
		}
		c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}
