// subcomm: demonstrate sub-communicators (Comm.Split) driving the two-level
// collective decomposition by hand. Eight block-placed ranks split into
// per-node communicators and a leader communicator; a hierarchical
// allreduce then runs as three sub-collectives — intra-node reduce over
// shared memory, leader allreduce over the rails, intra-node bcast — and is
// checked against the flat AllreduceF64 on the world communicator. The
// rail report shows the leader phase is the only network traffic. Run with:
//
//	go run ./examples/subcomm
package main

import (
	"fmt"
	"log"
	"math"

	"repro/cluster"
	"repro/internal/topo"
	"repro/mpi"
)

func main() {
	const np = 8
	cfg := mpi.Config{
		Cluster:   cluster.Xeon2(),
		Stack:     cluster.MPICH2NmadIB().WithPIOMan(true),
		NP:        np,
		Placement: topo.Block(np, cluster.Xeon2().NumNodes),
	}

	rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
		me := c.Rank()
		nodeComm := c.SplitNode()   // ranks sharing my node
		leaders := c.SplitLeaders() // one rank per node (nil elsewhere)

		x := make([]float64, 1024)
		for i := range x {
			x[i] = float64(me + i)
		}
		want := make([]float64, len(x))
		copy(want, x)
		c.AllreduceF64(want, mpi.OpSum) // flat reference

		// Hand-built two-level allreduce over the subcomms.
		nodeComm.ReduceF64(0, x, mpi.OpSum)
		if leaders != nil {
			leaders.AllreduceF64(x, mpi.OpSum)
		}
		xb := mpi.F64Bytes(x) // leaders hold the result; encode for bcast
		nodeComm.Bcast(0, xb)
		mpi.BytesF64(x, xb)

		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				log.Fatalf("rank %d: two-level allreduce[%d] = %g, want %g", me, i, x[i], want[i])
			}
		}
		if me == 0 {
			fmt.Printf("subcomm allreduce matches flat AllreduceF64 on %d ranks\n", np)
			fmt.Printf("node comm size %d, leader comm size %d\n", nodeComm.Size(), leaders.Size())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Rails {
		fmt.Printf("rail %-10s %6d packets %10d bytes (leader traffic only)\n",
			r.Name, r.Packets, r.Bytes)
	}
}
