// Multirail: transfer one large message over a heterogeneous Infiniband +
// Myri-10G configuration and show how NewMadeleine's sampling-derived split
// ratio distributes the payload so both rails finish together (§2.2, Fig. 5).
// Run with:
//
//	go run ./examples/multirail
package main

import (
	"fmt"
	"log"

	"repro/cluster"
	"repro/internal/topo"
	"repro/mpi"
)

func run(name string, stack cluster.Stack, size int) *mpi.Report {
	cfg := mpi.Config{
		Cluster:   cluster.Xeon2(),
		Stack:     stack,
		NP:        2,
		Placement: topo.Placement{0, 1},
	}
	var oneWay float64
	report, err := mpi.Run(cfg, func(c *mpi.Comm) {
		msg := make([]byte, size)
		c.Barrier()
		t0 := c.Wtime()
		if c.Rank() == 0 {
			c.Send(1, 1, msg)
			c.Recv(1, 1, msg)
		} else {
			c.Recv(0, 1, msg)
			c.Send(0, 1, msg)
		}
		if c.Rank() == 0 {
			oneWay = (c.Wtime() - t0) / 2
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8.0f MB/s", name, float64(size)/oneWay/(1<<20))
	for _, r := range report.Rails {
		if r.Bytes > 0 {
			fmt.Printf("   [%s: %d pkts, %.1f MB]", r.Name, r.Packets,
				float64(r.Bytes)/(1<<20))
		}
	}
	fmt.Println()
	return report
}

func main() {
	const size = 16 << 20
	fmt.Printf("one-way transfer of %d MB:\n\n", size>>20)
	run("Infiniband only", cluster.MPICH2NmadIB(), size)
	run("Myri-10G only", cluster.MPICH2NmadMX(), size)
	rep := run("Multirail (sampling split)", cluster.MPICH2NmadMulti(), size)

	// The split ratio the strategy chose, from the rail byte counts.
	if len(rep.Rails) == 2 && rep.Rails[0].Bytes+rep.Rails[1].Bytes > 0 {
		total := float64(rep.Rails[0].Bytes + rep.Rails[1].Bytes)
		fmt.Printf("\nsplit ratio: %.1f%% %s / %.1f%% %s (sampling predicts the\n"+
			"ratio of the rails' bandwidths, adjusted for their latencies)\n",
			float64(rep.Rails[0].Bytes)/total*100, rep.Rails[0].Name,
			float64(rep.Rails[1].Bytes)/total*100, rep.Rails[1].Name)
	}
}
