// NAS CG: run the conjugate-gradient kernel end-to-end on 16 simulated
// processes (Grid5000 testbed) under all four MPI stacks of Fig. 8.
// Class A finishes in seconds of wall time; pass -class C -np 8 for the
// paper's configuration. Run with:
//
//	go run ./examples/nas-cg [-class A] [-np 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/bench"
	"repro/internal/nas"
)

func main() {
	classFlag := flag.String("class", "A", "problem class: S, A, B, C")
	np := flag.Int("np", 16, "process count (power of two)")
	flag.Parse()

	cg, err := nas.KernelByName("CG")
	if err != nil {
		log.Fatal(err)
	}
	class := nas.Class((*classFlag)[0])

	fmt.Printf("NAS CG class %c on %d processes (Grid5000 testbed):\n\n", class, *np)
	for _, stack := range bench.NASStacks() {
		res, err := bench.RunNASKernel(cg, stack, *np, class)
		if err != nil {
			log.Fatal(err)
		}
		status := "verified"
		if !res.Verified {
			status = "VERIFICATION FAILED"
		}
		fmt.Printf("%-26s %10.2fs  (%s, np=%d)\n",
			stack.Name, res.Seconds, status, res.NP)
	}
}
