// Quickstart: a minimal MPI program over the MPICH2-NewMadeleine stack —
// point-to-point messages, a wildcard receive, one collective, and virtual
// timing. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/cluster"
	"repro/mpi"
)

func main() {
	cfg := mpi.Config{
		Cluster: cluster.Xeon2(),        // two 8-core nodes
		Stack:   cluster.MPICH2NmadIB(), // the paper's stack over Infiniband
		NP:      4,                      // two ranks per node
	}
	report, err := mpi.Run(cfg, func(c *mpi.Comm) {
		rank, size := c.Rank(), c.Size()

		// Every rank greets rank 0; rank 0 receives with MPI_ANY_SOURCE,
		// exercising the pending-request lists of §3.2.
		if rank == 0 {
			for i := 1; i < size; i++ {
				buf := make([]byte, 64)
				st := c.Recv(mpi.AnySource, 1, buf)
				fmt.Printf("rank 0 got %q from rank %d at t=%.2fµs\n",
					buf[:st.Len], st.Source, c.Wtime()*1e6)
			}
		} else {
			c.Send(0, 1, []byte(fmt.Sprintf("hello from rank %d", rank)))
		}

		// A collective: sum of ranks.
		x := []float64{float64(rank)}
		c.AllreduceF64(x, mpi.OpSum)
		if rank == 0 {
			fmt.Printf("allreduce sum of ranks = %.0f (expect %d)\n",
				x[0], size*(size-1)/2)
		}

		// Simulated computation occupies a real (virtual) core.
		c.Compute(10e-6)
		c.Barrier()
		if rank == 0 {
			fmt.Printf("done at virtual t=%.2fµs\n", c.Wtime()*1e6)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation drained at %.2fµs; rail traffic: %+v\n",
		report.Seconds*1e6, report.Rails)
}
