package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/vtime"
)

// Summary condenses one traced run into the quantities the paper argues
// about: where progress happened (application vs background polling),
// how effective schedule caching was, what moved over each rail, how long
// each collective algorithm's rounds ran, and how much computation
// actually overlapped in-flight nonblocking collectives. JSON-marshalling
// the struct is deterministic (fixed fields and sorted slices only).
type Summary struct {
	Events int `json:"events"`
	Ranks  int `json:"ranks"`

	// Poll attribution (cross-rank counter totals).
	AppPolls  int64 `json:"app_polls"`
	AppEvents int64 `json:"app_events"`
	BgPolls   int64 `json:"bg_polls"`
	BgEvents  int64 `json:"bg_events"`
	BgTasks   int64 `json:"bg_tasks"`
	BgSteals  int64 `json:"bg_steals"`

	// Workers breaks background progression down per PIOMan worker
	// (cross-rank totals; present when the run used the Enabled regime).
	Workers []WorkerStat `json:"workers,omitempty"`

	// Schedule-cache effectiveness.
	SchedCompiles int64   `json:"sched_compiles"`
	SchedHits     int64   `json:"sched_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	// Free-list effectiveness on the request/op hot paths, plus the peak
	// number of CH3 requests concurrently in flight on any one rank.
	ReqPoolHits     int64 `json:"req_pool_hits"`
	ReqPoolMisses   int64 `json:"req_pool_misses"`
	OpPoolHits      int64 `json:"op_pool_hits"`
	OpPoolMisses    int64 `json:"op_pool_misses"`
	ReqInFlightPeak int64 `json:"req_in_flight_peak"`

	// RoundTimings aggregates the per-round slices (ph X, cat "round") by
	// op/algorithm name, sorted by name.
	RoundTimings []RoundTiming `json:"round_timings,omitempty"`

	// Overlap attributes, per rank, how much Compute time ran while a
	// nonblocking collective was in flight — the trace-derived counterpart
	// of bench.NbcOverlapOnce's end-to-end ratio.
	Overlap []RankOverlap `json:"overlap,omitempty"`

	// Counters is the full sorted counter snapshot (rank totals plus the
	// run-level registry: rail traffic lives here).
	Counters []NamedValue `json:"counters,omitempty"`
}

// WorkerStat is one PIOMan worker's background-progression breakdown,
// summed across ranks (worker i of every rank contributes to entry i).
type WorkerStat struct {
	Worker int   `json:"worker"`
	Polls  int64 `json:"polls"`
	Events int64 `json:"events"`
	Tasks  int64 `json:"tasks"`
	Steals int64 `json:"steals"`
}

// RoundTiming aggregates one op/algorithm's executed rounds.
type RoundTiming struct {
	Name    string  `json:"name"`
	Rounds  int     `json:"rounds"`
	TotalUS float64 `json:"total_us"`
	MeanUS  float64 `json:"mean_us"`
}

// RankOverlap is one rank's compute/collective concurrency attribution.
type RankOverlap struct {
	Rank int `json:"rank"`
	// ComputeUS is total Compute-span time; NbcUS total async-collective
	// in-flight time; OverlapUS the intersection of the two interval sets.
	ComputeUS float64 `json:"compute_us"`
	NbcUS     float64 `json:"nbc_us"`
	OverlapUS float64 `json:"overlap_us"`
}

type ival struct{ lo, hi int64 }

// Summarize folds a bound trace (and its attached metrics) into a Summary.
func Summarize(t *Trace) *Summary {
	s := &Summary{Events: len(t.events), Ranks: t.np}
	if m := t.metrics; m != nil {
		s.AppPolls = m.Total(CtrAppPolls)
		s.AppEvents = m.Total(CtrAppEvents)
		s.BgPolls = m.Total(CtrBgPolls)
		s.BgEvents = m.Total(CtrBgEvents)
		s.BgTasks = m.Total(CtrBgTasks)
		s.BgSteals = m.Total(CtrBgSteals)
		for i := 0; i < int(m.GaugePeak(GaugeWorkers)); i++ {
			s.Workers = append(s.Workers, WorkerStat{
				Worker: i,
				Polls:  m.Total(CtrWorkerPolls(i)),
				Events: m.Total(CtrWorkerEvents(i)),
				Tasks:  m.Total(CtrWorkerTasks(i)),
				Steals: m.Total(CtrWorkerSteals(i)),
			})
		}
		s.SchedCompiles = m.Total(CtrSchedCompiles)
		s.SchedHits = m.Total(CtrSchedHits)
		if n := s.SchedCompiles + s.SchedHits; n > 0 {
			s.CacheHitRate = float64(s.SchedHits) / float64(n)
		}
		s.ReqPoolHits = m.Total(CtrReqPoolHits)
		s.ReqPoolMisses = m.Total(CtrReqPoolMisses)
		s.OpPoolHits = m.Total(CtrOpPoolHits)
		s.OpPoolMisses = m.Total(CtrOpPoolMisses)
		s.ReqInFlightPeak = m.GaugePeak(GaugeReqsInFlight)
		s.Counters = m.Totals()
	}

	// Round slices by name.
	type agg struct {
		n   int
		tot vtime.Duration
	}
	rounds := make(map[string]*agg)
	// Interval sets per rank for the overlap attribution.
	compute := make(map[int][]ival)
	nbcOpen := make(map[int64]int64) // async id -> begin ns
	nbc := make(map[int][]ival)
	computeOpen := make(map[int]int64) // rank -> Compute begin ns (depth-1: Compute never nests)
	computeDepth := make(map[int]int)  // span nesting depth inside an open Compute

	for i := range t.events {
		ev := &t.events[i]
		switch {
		case ev.Ph == 'X' && ev.Cat == "round":
			a := rounds[ev.Name]
			if a == nil {
				a = &agg{}
				rounds[ev.Name] = a
			}
			a.n++
			a.tot += ev.Dur
		case ev.Ph == 'B' && ev.Cat == "mpi" && ev.Name == "Compute":
			computeOpen[ev.Rank] = int64(ev.Ts)
			computeDepth[ev.Rank] = 1
		case ev.Ph == 'B' && ev.Tid == TidApp:
			if computeDepth[ev.Rank] > 0 {
				computeDepth[ev.Rank]++
			}
		case ev.Ph == 'E' && ev.Tid == TidApp:
			if d := computeDepth[ev.Rank]; d > 0 {
				computeDepth[ev.Rank] = d - 1
				if d == 1 {
					compute[ev.Rank] = append(compute[ev.Rank],
						ival{computeOpen[ev.Rank], int64(ev.Ts)})
				}
			}
		case ev.Ph == 'b' && ev.Cat == "nbc":
			nbcOpen[ev.ID] = int64(ev.Ts)
		case ev.Ph == 'e' && ev.Cat == "nbc":
			if lo, ok := nbcOpen[ev.ID]; ok {
				delete(nbcOpen, ev.ID)
				nbc[ev.Rank] = append(nbc[ev.Rank], ival{lo, int64(ev.Ts)})
			}
		}
	}

	for name, a := range rounds {
		rt := RoundTiming{Name: name, Rounds: a.n, TotalUS: a.tot.Micros()}
		rt.MeanUS = rt.TotalUS / float64(a.n)
		s.RoundTimings = append(s.RoundTimings, rt)
	}
	sort.Slice(s.RoundTimings, func(i, j int) bool {
		return s.RoundTimings[i].Name < s.RoundTimings[j].Name
	})

	for rank := 0; rank < t.np; rank++ {
		cs, ns := compute[rank], nbc[rank]
		if cs == nil && ns == nil {
			continue
		}
		ro := RankOverlap{Rank: rank,
			ComputeUS: sumIvals(cs), NbcUS: sumIvals(ns),
			OverlapUS: intersectIvals(cs, ns)}
		s.Overlap = append(s.Overlap, ro)
	}
	return s
}

// sumIvals totals an interval set, in microseconds.
func sumIvals(xs []ival) float64 {
	var t int64
	for _, x := range xs {
		t += x.hi - x.lo
	}
	return float64(t) / 1e3
}

// intersectIvals returns the total intersection of two interval sets in
// microseconds. Sets come out of one rank's ordered event stream, so both
// are sorted; intervals within one set may touch but not overlap.
func intersectIvals(a, b []ival) float64 {
	var t int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].lo, a[i].hi
		if b[j].lo > lo {
			lo = b[j].lo
		}
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if hi > lo {
			t += hi - lo
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return float64(t) / 1e3
}

// WriteText renders the summary human-readably.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace summary: %d events over %d ranks\n", s.Events, s.Ranks)
	fmt.Fprintf(w, "  progress: app %d polls / %d events, background %d polls / %d events / %d tasks / %d steals\n",
		s.AppPolls, s.AppEvents, s.BgPolls, s.BgEvents, s.BgTasks, s.BgSteals)
	if len(s.Workers) > 0 {
		fmt.Fprintf(w, "  pioman workers:\n")
		for _, ws := range s.Workers {
			fmt.Fprintf(w, "    worker %-3d %8d polls %8d events %8d tasks %8d steals\n",
				ws.Worker, ws.Polls, ws.Events, ws.Tasks, ws.Steals)
		}
	}
	fmt.Fprintf(w, "  schedule cache: %d compiles, %d hits (%.0f%% hit rate)\n",
		s.SchedCompiles, s.SchedHits, 100*s.CacheHitRate)
	if s.ReqPoolHits+s.ReqPoolMisses+s.OpPoolHits+s.OpPoolMisses > 0 {
		fmt.Fprintf(w, "  pools: requests %d hits / %d misses, nbc ops %d hits / %d misses; peak in-flight requests %d\n",
			s.ReqPoolHits, s.ReqPoolMisses, s.OpPoolHits, s.OpPoolMisses, s.ReqInFlightPeak)
	}
	if len(s.RoundTimings) > 0 {
		fmt.Fprintf(w, "  round timings:\n")
		for _, rt := range s.RoundTimings {
			fmt.Fprintf(w, "    %-32s %5d rounds %10.1fµs total %8.2fµs mean\n",
				rt.Name, rt.Rounds, rt.TotalUS, rt.MeanUS)
		}
	}
	if len(s.Overlap) > 0 {
		fmt.Fprintf(w, "  overlap attribution (compute ∩ in-flight collectives):\n")
		for _, o := range s.Overlap {
			fmt.Fprintf(w, "    rank %-3d compute %9.1fµs  nbc %9.1fµs  overlapped %9.1fµs\n",
				o.Rank, o.ComputeUS, o.NbcUS, o.OverlapUS)
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "  counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "    %-32s %d\n", c.Name, c.Value)
		}
	}
}
