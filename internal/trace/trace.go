// Package trace is the deterministic virtual-time observability layer of
// the progress stack: a per-rank event recorder (spans, instants, async
// operations, completed slices) stamped with vtime.Time plus a monotone
// sequence number, and an MPI_T-pvar-style registry of named counters that
// subsumes the scattered ad-hoc statistics of the subsystems.
//
// Everything here is host-side bookkeeping: recording an event never
// charges virtual time, so a traced run and an untraced run produce
// bit-identical simulation results (asserted by TestTraceNeutrality).
// Determinism follows from the engine's: exactly one proc runs at a time
// and ties break on the engine's sequence numbers, so two identical runs
// append identical event streams — the Chrome export of both is
// byte-identical.
//
// Thread attribution does not rely on the subsystems declaring who they
// are: the recorder asks the engine which Proc is executing and reads the
// label stamped on it at spawn time (TidApp for application threads,
// TidPioman for the background progress thread). Work performed in engine
// context — event callbacks such as NIC completions — lands on TidEngine.
// This matters because the background thread can sleep mid-sweep (polling
// charges costs) while the application thread of the same rank runs; a
// mutable "current thread" variable would misattribute those interleavings.
package trace

import (
	"fmt"

	"repro/internal/vtime"
)

// Thread-track ids within one rank's process, stamped on vtime.Proc labels.
const (
	// TidApp is the application thread (the rank's MPI program).
	TidApp = 0
	// TidPioman is PIOMan progress worker 0 (track name "pioman-0").
	// Additional workers get the tracks after TidRounds — see TidPiomanN.
	TidPioman = 1
	// TidEngine collects work performed in engine context (event
	// callbacks: NIC completions, visibility timers) with no proc running.
	TidEngine = 2
	// TidRounds is a synthetic per-rank track for collective round slices:
	// rounds are recorded as completed (ph X) events whose start lies in
	// the past, which would corrupt the B/E nesting of the real threads.
	TidRounds = 3
)

// tidNames maps the fixed track ids to the thread names the Chrome export
// declares; worker tracks beyond these derive their names in TidName.
var tidNames = [...]string{"app", "pioman-0", "engine", "rounds"}

// TidPiomanN returns the thread-track id of PIOMan progress worker i:
// worker 0 keeps the classic TidPioman slot, workers 1..N-1 take the ids
// after the fixed tracks so existing attributions never shift.
func TidPiomanN(i int) int {
	if i == 0 {
		return TidPioman
	}
	return TidRounds + i
}

// TidName returns the display name of a thread-track id, including the
// dynamic per-worker tracks ("pioman-1", "pioman-2", ...).
func TidName(tid int) string {
	if tid >= 0 && tid < len(tidNames) {
		return tidNames[tid]
	}
	return fmt.Sprintf("pioman-%d", tid-TidRounds)
}

// Arg is one ordered key/value event argument. Ordered slices (never maps)
// keep the export byte-deterministic.
type Arg struct {
	Key string
	Str string
	Int int64
	// IsStr selects which value field is live.
	IsStr bool
}

// Str builds a string-valued argument.
func Str(k, v string) Arg { return Arg{Key: k, Str: v, IsStr: true} }

// Int64 builds an integer-valued argument.
func Int64(k string, v int64) Arg { return Arg{Key: k, Int: v} }

// Event is one recorded trace event, Chrome-trace-shaped: Ph is the event
// phase ('B'/'E' nested spans, 'i' instants, 'b'/'e' async operations, 'X'
// completed slices with an explicit duration).
type Event struct {
	Seq  int64
	Rank int
	Tid  int
	Ph   byte
	Cat  string
	Name string
	Ts   vtime.Time
	Dur  vtime.Duration // ph 'X' only
	ID   int64          // ph 'b'/'e' only
	Args []Arg
}

// Trace collects one run's events. Create with New, hand to mpi.Config, and
// export with WriteChrome / Summarize after the run. A Trace is bound to
// exactly one run; reusing it is an error (the second Bind fails).
type Trace struct {
	e       *vtime.Engine
	np      int
	seq     int64
	nextID  int64
	events  []Event
	recs    []*Recorder
	metrics *Metrics
}

// New returns an empty, unbound trace.
func New() *Trace { return &Trace{} }

// Bind attaches the trace to a run's engine and rank count. mpi.Run calls
// it; a second call (trace reuse across runs) is rejected so timestamps
// from different engines never interleave in one event stream.
func (t *Trace) Bind(e *vtime.Engine, np int) error {
	if t.e != nil {
		return fmt.Errorf("trace: already bound to a run (np=%d)", t.np)
	}
	t.e = e
	t.np = np
	t.recs = make([]*Recorder, np)
	for r := range t.recs {
		t.recs[r] = &Recorder{t: t, rank: r}
	}
	return nil
}

// AttachMetrics links the run's counter registries so Summarize can fold
// counter totals into the trace summary.
func (t *Trace) AttachMetrics(m *Metrics) { t.metrics = m }

// Metrics returns the attached registries (nil before the run).
func (t *Trace) Metrics() *Metrics { return t.metrics }

// NP returns the bound rank count (0 before Bind).
func (t *Trace) NP() int { return t.np }

// Recorder returns rank's recorder. Panics if unbound or out of range —
// recorders only exist for the run the trace is bound to.
func (t *Trace) Recorder(rank int) *Recorder {
	if t.e == nil {
		panic("trace: Recorder before Bind")
	}
	return t.recs[rank]
}

// Events returns the recorded stream in emission order.
func (t *Trace) Events() []Event { return t.events }

// Recorder emits one rank's events. A nil *Recorder is the disabled state:
// every method no-ops, so subsystems hold one without checking, and the
// span helper returns a shared empty closure — tracing off costs a nil
// check per site and nothing else.
type Recorder struct {
	t    *Trace
	rank int
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Rank returns the rank this recorder records for (-1 when disabled).
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Now returns the bound engine's virtual time (0 when disabled).
func (r *Recorder) Now() vtime.Time {
	if r == nil {
		return 0
	}
	return r.t.e.Now()
}

// tid derives the thread track from the proc the engine is running: the
// label stamped at spawn time, or TidEngine when an event callback (no
// proc) is executing.
func (r *Recorder) tid() int {
	cur := r.t.e.Current()
	if cur == nil {
		return TidEngine
	}
	return cur.Label()
}

func (r *Recorder) emit(ev Event) {
	r.t.seq++
	ev.Seq = r.t.seq
	ev.Rank = r.rank
	ev.Ts = r.t.e.Now()
	r.t.events = append(r.t.events, ev)
}

// Begin opens a nested span on the current thread track. Every Begin must
// be matched by an End on the same proc (spans follow the proc's call
// stack, so LIFO nesting is structural).
func (r *Recorder) Begin(cat, name string, args ...Arg) {
	if r == nil {
		return
	}
	r.emit(Event{Tid: r.tid(), Ph: 'B', Cat: cat, Name: name, Args: args})
}

// End closes the innermost open span on the current thread track.
func (r *Recorder) End() {
	if r == nil {
		return
	}
	r.emit(Event{Tid: r.tid(), Ph: 'E'})
}

var noopEnd = func() {}

// Span opens a span and returns the closure that closes it — the one-line
// instrumentation form: defer rec.Span("mpi", "Barrier")().
func (r *Recorder) Span(cat, name string, args ...Arg) func() {
	if r == nil {
		return noopEnd
	}
	r.Begin(cat, name, args...)
	return r.End
}

// Instant records a zero-duration event on the current thread track.
func (r *Recorder) Instant(cat, name string, args ...Arg) {
	if r == nil {
		return
	}
	r.emit(Event{Tid: r.tid(), Ph: 'i', Cat: cat, Name: name, Args: args})
}

// AsyncBegin opens an async operation and returns its id (0 when
// disabled). Async events render as their own track per (cat, id), which
// is how in-flight nonblocking collectives appear alongside the threads
// that advance them.
func (r *Recorder) AsyncBegin(cat, name string, args ...Arg) int64 {
	if r == nil {
		return 0
	}
	r.t.nextID++
	id := r.t.nextID
	r.emit(Event{Tid: r.tid(), Ph: 'b', Cat: cat, Name: name, ID: id, Args: args})
	return id
}

// AsyncEnd closes the async operation id (pass the matching cat and name).
func (r *Recorder) AsyncEnd(cat, name string, id int64, args ...Arg) {
	if r == nil {
		return
	}
	r.emit(Event{Tid: r.tid(), Ph: 'e', Cat: cat, Name: name, ID: id, Args: args})
}

// Complete records a finished slice [start, now] on an explicit thread
// track — the collective round events land on TidRounds with it, since
// their start predates their recording point.
func (r *Recorder) Complete(cat, name string, tid int, start vtime.Time, args ...Arg) {
	if r == nil {
		return
	}
	now := r.t.e.Now()
	r.emit(Event{Tid: tid, Ph: 'X', Cat: cat, Name: name,
		Dur: vtime.Duration(now - start), Args: args})
	// emit stamped Ts=now; rewrite to the slice's start.
	r.t.events[len(r.t.events)-1].Ts = start
}
