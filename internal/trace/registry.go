package trace

import (
	"fmt"
	"sort"
)

// Counter is one named monotone statistic. Counters are live whether or
// not event tracing is enabled — they replace the subsystems' ad-hoc int64
// stat fields at identical cost (a plain add on the hot path).
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is one named level statistic: a value that goes up and down (live
// in-flight requests, pool occupancy) with its high-water mark tracked.
// Like counters, gauges are live whether or not event tracing is enabled.
type Gauge struct {
	v, peak int64
}

// Inc raises the gauge by one, updating the peak.
func (g *Gauge) Inc() {
	g.v++
	if g.v > g.peak {
		g.peak = g.v
	}
}

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v-- }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak }

// Registry is a get-or-create namespace of counters, in the spirit of the
// MPI_T performance-variable interface: subsystems register their
// statistics under dotted names ("pioman.bg_polls", "coll.sched_hits") and
// harnesses snapshot them without knowing each subsystem's struct layout.
//
// A nil *Registry is valid: Counter returns a fresh standalone counter, so
// subsystems wired without a registry keep working statistics that simply
// are not aggregated anywhere.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter), gauges: make(map[string]*Gauge)}
}

// Counter returns the counter registered under name, creating it on first
// use. On a nil registry it returns an unregistered standalone counter.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return &Counter{}
	}
	if c, ok := g.counters[name]; ok {
		return c
	}
	c := &Counter{}
	g.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// On a nil registry it returns an unregistered standalone gauge.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return &Gauge{}
	}
	if v, ok := g.gauges[name]; ok {
		return v
	}
	v := &Gauge{}
	g.gauges[name] = v
	return v
}

// NamedValue is one snapshot entry.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot returns every counter — plus each gauge's high-water mark under
// "<name>.peak" — sorted by name (deterministic output order for summaries
// and golden tests).
func (g *Registry) Snapshot() []NamedValue {
	if g == nil {
		return nil
	}
	out := make([]NamedValue, 0, len(g.counters)+len(g.gauges))
	for name, c := range g.counters {
		out = append(out, NamedValue{Name: name, Value: c.v})
	}
	for name, v := range g.gauges {
		out = append(out, NamedValue{Name: name + ".peak", Value: v.peak})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Metrics bundles one run's registries: one per rank (per-process
// statistics: poll splits, schedule-cache activity, collective engine
// counts) plus one run-level registry (global statistics: per-rail
// traffic).
type Metrics struct {
	Ranks []*Registry
	Run   *Registry
}

// NewMetrics returns registries for an np-rank run.
func NewMetrics(np int) *Metrics {
	m := &Metrics{Ranks: make([]*Registry, np), Run: NewRegistry()}
	for r := range m.Ranks {
		m.Ranks[r] = NewRegistry()
	}
	return m
}

// Rank returns rank r's registry (nil-safe: a nil Metrics yields a nil
// Registry, whose counters are standalone).
func (m *Metrics) Rank(r int) *Registry {
	if m == nil || r < 0 || r >= len(m.Ranks) {
		return nil
	}
	return m.Ranks[r]
}

// Totals sums each counter name across the per-rank registries and merges
// the run-level registry, sorted by name. Gauges contribute their per-rank
// high-water mark's cross-rank maximum under "<name>.peak" (peaks are
// levels, not flows — summing them would overstate concurrency).
func (m *Metrics) Totals() []NamedValue {
	if m == nil {
		return nil
	}
	sums := make(map[string]int64)
	for _, g := range m.Ranks {
		for name, c := range g.counters {
			sums[name] += c.v
		}
	}
	for name, c := range m.Run.counters {
		sums[name] += c.v
	}
	for name, p := range m.gaugePeaks() {
		sums[name+".peak"] = p
	}
	out := make([]NamedValue, 0, len(sums))
	for name, v := range sums {
		out = append(out, NamedValue{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// gaugePeaks folds every gauge name to its cross-rank maximum peak.
func (m *Metrics) gaugePeaks() map[string]int64 {
	peaks := make(map[string]int64)
	for _, g := range append(append([]*Registry(nil), m.Ranks...), m.Run) {
		for name, v := range g.gauges {
			if v.peak > peaks[name] {
				peaks[name] = v.peak
			}
		}
	}
	return peaks
}

// GaugePeak returns the cross-rank maximum high-water mark of one gauge.
func (m *Metrics) GaugePeak(name string) int64 {
	if m == nil {
		return 0
	}
	var p int64
	for _, g := range append(append([]*Registry(nil), m.Ranks...), m.Run) {
		if v, ok := g.gauges[name]; ok && v.peak > p {
			p = v.peak
		}
	}
	return p
}

// Total returns the cross-rank (plus run-level) sum of one counter name.
func (m *Metrics) Total(name string) int64 {
	if m == nil {
		return 0
	}
	var t int64
	for _, g := range m.Ranks {
		if c, ok := g.counters[name]; ok {
			t += c.v
		}
	}
	if c, ok := m.Run.counters[name]; ok {
		t += c.v
	}
	return t
}

// Canonical counter names. Subsystems and consumers share these constants
// so a renamed statistic breaks at compile time, not in a dashboard.
const (
	CtrAppPolls  = "pioman.app_polls"
	CtrAppEvents = "pioman.app_events"
	CtrBgPolls   = "pioman.bg_polls"
	CtrBgEvents  = "pioman.bg_events"
	CtrBgTasks   = "pioman.bg_tasks"
	CtrBgSteals  = "pioman.bg_steals"

	CtrNbcStarted   = "nbc.ops_started"
	CtrNbcCompleted = "nbc.ops_completed"
	CtrNbcBGRounds  = "nbc.bg_rounds"

	CtrSchedCompiles = "coll.sched_compiles"
	CtrSchedHits     = "coll.sched_hits"

	// Free-list effectiveness on the heavy-traffic hot paths: hits recycle
	// a pooled object, misses fall back to a fresh allocation.
	CtrReqPoolHits   = "ch3.req_pool_hits"
	CtrReqPoolMisses = "ch3.req_pool_misses"
	CtrOpPoolHits    = "nbc.op_pool_hits"
	CtrOpPoolMisses  = "nbc.op_pool_misses"
)

// GaugeReqsInFlight names the live CH3-request gauge: requests issued but
// not yet completed on one rank. Its peak is the per-rank high-water mark
// of concurrent in-flight traffic.
const GaugeReqsInFlight = "ch3.reqs_in_flight"

// GaugeWorkers names the PIOMan worker-count gauge: incremented once per
// spawned background progression worker, so its peak is the per-rank worker
// count (0 in the polling regime) — consumers size per-worker breakdowns
// from it.
const GaugeWorkers = "pioman.workers"

// CtrWorkerPolls / CtrWorkerEvents / CtrWorkerTasks / CtrWorkerSteals name
// one PIOMan worker's sweep statistics: background sweeps performed, events
// those sweeps handled, deferred tasks it ran, and tasks it stole from
// loaded sibling queues.
func CtrWorkerPolls(i int) string  { return fmt.Sprintf("pioman.worker%d.polls", i) }
func CtrWorkerEvents(i int) string { return fmt.Sprintf("pioman.worker%d.events", i) }
func CtrWorkerTasks(i int) string  { return fmt.Sprintf("pioman.worker%d.tasks", i) }
func CtrWorkerSteals(i int) string { return fmt.Sprintf("pioman.worker%d.steals", i) }

// RailPacketsCtr / RailBytesCtr name one rail's run-level traffic counters.
func RailPacketsCtr(rail string) string { return "rail." + rail + ".packets" }
func RailBytesCtr(rail string) string   { return "rail." + rail + ".bytes" }
