package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome exports the trace in Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load): ranks become processes (pid = rank),
// thread tracks become tids (app / pioman / engine / rounds), timestamps
// are virtual microseconds. The writer is hand-rolled so the bytes are a
// pure function of the event stream — no map iteration, no float
// formatting surprises — which is what makes "two identical runs emit
// byte-identical traces" a testable property.
func WriteChrome(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	comma := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}

	// Metadata: name every rank's process and thread tracks up front so
	// viewers label them before the first real event. Tracks beyond the
	// fixed four exist when multi-worker PIOMan ran (pioman-1, ...): scan
	// the stream for the highest tid so every used track gets a name.
	maxTid := len(tidNames) - 1
	for i := range t.events {
		if tid := t.events[i].Tid; tid > maxTid {
			maxTid = tid
		}
	}
	for rank := 0; rank < t.np; rank++ {
		comma()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"rank%d"}}`, rank, rank)
		for tid := 0; tid <= maxTid; tid++ {
			comma()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`, rank, tid, TidName(tid))
		}
	}

	for i := range t.events {
		ev := &t.events[i]
		comma()
		writeEvent(bw, ev)
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// writeEvent renders one event. Field order is fixed; ts is nanoseconds
// rendered as microseconds with three decimals, exact for the int64 range
// the simulations reach.
func writeEvent(bw *bufio.Writer, ev *Event) {
	bw.WriteString(`{"ph":"`)
	bw.WriteByte(ev.Ph)
	bw.WriteString(`","pid":`)
	bw.WriteString(strconv.Itoa(ev.Rank))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.Itoa(ev.Tid))
	bw.WriteString(`,"ts":`)
	writeMicros(bw, int64(ev.Ts))
	if ev.Ph == 'X' {
		bw.WriteString(`,"dur":`)
		writeMicros(bw, int64(ev.Dur))
	}
	if ev.Cat != "" {
		bw.WriteString(`,"cat":"`)
		writeEscaped(bw, ev.Cat)
		bw.WriteByte('"')
	}
	if ev.Name != "" {
		bw.WriteString(`,"name":"`)
		writeEscaped(bw, ev.Name)
		bw.WriteByte('"')
	}
	if ev.Ph == 'b' || ev.Ph == 'e' {
		bw.WriteString(`,"id":`)
		bw.WriteString(strconv.FormatInt(ev.ID, 10))
	}
	if ev.Ph == 'i' {
		bw.WriteString(`,"s":"t"`) // thread-scoped instant
	}
	if len(ev.Args) > 0 {
		bw.WriteString(`,"args":{`)
		for i := range ev.Args {
			a := &ev.Args[i]
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('"')
			writeEscaped(bw, a.Key)
			bw.WriteString(`":`)
			if a.IsStr {
				bw.WriteByte('"')
				writeEscaped(bw, a.Str)
				bw.WriteByte('"')
			} else {
				bw.WriteString(strconv.FormatInt(a.Int, 10))
			}
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// writeMicros renders ns as fixed-point microseconds ("12.345"): decimal
// integer arithmetic only, so the output is exact and deterministic.
func writeMicros(bw *bufio.Writer, ns int64) {
	if ns < 0 {
		bw.WriteByte('-')
		ns = -ns
	}
	bw.WriteString(strconv.FormatInt(ns/1000, 10))
	frac := ns % 1000
	bw.WriteByte('.')
	bw.WriteByte(byte('0' + frac/100))
	bw.WriteByte(byte('0' + (frac/10)%10))
	bw.WriteByte(byte('0' + frac%10))
}

// writeEscaped writes s with the JSON string escapes the event fields can
// need (names and categories are ASCII identifiers; quotes and backslashes
// are escaped defensively).
func writeEscaped(bw *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(bw, `\u%04x`, c)
		default:
			bw.WriteByte(c)
		}
	}
}
