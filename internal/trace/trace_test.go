package trace

import (
	"sort"
	"testing"

	"repro/internal/vtime"
)

// TestNilRecorderNoops: the disabled state (nil recorder) is safe to drive
// through every method — this is what makes unconditional instrumentation
// sites legal.
func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Rank() != -1 {
		t.Fatalf("nil recorder rank = %d, want -1", r.Rank())
	}
	if r.Now() != 0 {
		t.Fatal("nil recorder Now != 0")
	}
	r.Begin("c", "n")
	r.End()
	r.Span("c", "n", Int64("k", 1))()
	r.Instant("c", "n")
	if id := r.AsyncBegin("c", "n"); id != 0 {
		t.Fatalf("nil AsyncBegin id = %d, want 0", id)
	}
	r.AsyncEnd("c", "n", 0)
	r.Complete("c", "n", TidRounds, 0)
}

// TestNilRegistryCounters: a nil registry hands out live standalone
// counters, so subsystems increment without caring whether metrics were
// requested.
func TestNilRegistryCounters(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	if c == nil {
		t.Fatal("nil registry returned nil counter")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("standalone counter = %d, want 3", c.Value())
	}
}

// TestRegistryInterning: the same name returns the same counter; Snapshot
// is sorted by name.
func TestRegistryInterning(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("b.second")
	if reg.Counter("b.second") != a {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(5)
	reg.Counter("a.first").Inc()
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[0].Name != "a.first" || snap[0].Value != 1 || snap[1].Value != 5 {
		t.Fatalf("snapshot content wrong: %+v", snap)
	}
}

// TestMetricsTotals: Totals sums the same counter name across rank
// registries and the run registry.
func TestMetricsTotals(t *testing.T) {
	m := NewMetrics(3)
	for r := 0; r < 3; r++ {
		m.Rank(r).Counter(CtrAppPolls).Add(int64(r + 1))
	}
	m.Run.Counter("rail.ib.bytes").Add(100)
	if got := m.Total(CtrAppPolls); got != 6 {
		t.Fatalf("Total(%s) = %d, want 6", CtrAppPolls, got)
	}
	if got := m.Total("rail.ib.bytes"); got != 100 {
		t.Fatalf("run-level total = %d, want 100", got)
	}
	if got := m.Total("no.such"); got != 0 {
		t.Fatalf("missing counter total = %d, want 0", got)
	}
}

// TestBindOnce: a trace binds to exactly one run.
func TestBindOnce(t *testing.T) {
	tr := New()
	e := vtime.NewEngine()
	if err := tr.Bind(e, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Bind(vtime.NewEngine(), 2); err == nil {
		t.Fatal("second Bind succeeded; trace reuse must be rejected")
	}
}

// TestTidAttribution: events record the executing proc's label as their
// thread track, and TidEngine when recorded from engine context.
func TestTidAttribution(t *testing.T) {
	tr := New()
	e := vtime.NewEngine()
	if err := tr.Bind(e, 1); err != nil {
		t.Fatal(err)
	}
	rec := tr.Recorder(0)
	p := e.Spawn("app", func(p *vtime.Proc) {
		rec.Instant("t", "from-app")
		p.Sleep(10)
	})
	p.SetLabel(TidApp)
	bg := e.Spawn("bg", func(p *vtime.Proc) {
		rec.Instant("t", "from-bg")
	})
	bg.SetLabel(TidPioman)
	e.After(5, func() { rec.Instant("t", "from-engine") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"from-app": TidApp, "from-bg": TidPioman, "from-engine": TidEngine}
	seen := 0
	for _, ev := range tr.Events() {
		w, ok := want[ev.Name]
		if !ok {
			continue
		}
		seen++
		if ev.Tid != w {
			t.Fatalf("%s recorded on tid %d, want %d", ev.Name, ev.Tid, w)
		}
	}
	if seen != len(want) {
		t.Fatalf("saw %d of %d attribution events", seen, len(want))
	}
}

// TestCompleteRewindsTimestamp: a Complete slice carries its start time and
// the elapsed duration, not the recording instant.
func TestCompleteRewindsTimestamp(t *testing.T) {
	tr := New()
	e := vtime.NewEngine()
	if err := tr.Bind(e, 1); err != nil {
		t.Fatal(err)
	}
	rec := tr.Recorder(0)
	e.Spawn("p", func(p *vtime.Proc) {
		start := rec.Now()
		p.Sleep(250)
		rec.Complete("round", "x", TidRounds, start)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	if evs[0].Ts != 0 || evs[0].Dur != 250 {
		t.Fatalf("slice ts=%d dur=%d, want ts=0 dur=250", evs[0].Ts, evs[0].Dur)
	}
}
