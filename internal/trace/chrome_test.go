package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite the chrome export golden file")

// buildFixtureTrace records a small but representative event stream —
// nested spans, instants with string and integer args, an async pair, a
// completed slice, and an escaping-hostile name — under a real engine so
// timestamps and tids come from the same machinery production uses.
func buildFixtureTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New()
	e := vtime.NewEngine()
	if err := tr.Bind(e, 2); err != nil {
		t.Fatal(err)
	}
	r0, r1 := tr.Recorder(0), tr.Recorder(1)

	app := e.Spawn("app0", func(p *vtime.Proc) {
		end := r0.Span("mpi", "AllreduceF64")
		p.Sleep(1500)
		inner := r0.Span("mpi", "Wait")
		p.Sleep(499)
		inner()
		end()
		id := r0.AsyncBegin("nbc", "allreduce/rdb", Int64("rounds", 2))
		start := r0.Now()
		p.Sleep(2001)
		r0.Complete("round", "allreduce/rdb", TidRounds, start, Int64("round", 0))
		r0.AsyncEnd("nbc", "allreduce/rdb", id)
		r0.Instant("mark", `quote"back\slash`, Str("via", "ib"))
	})
	app.SetLabel(TidApp)

	bg := e.Spawn("pioman1", func(p *vtime.Proc) {
		sweep := r1.Span("pioman", "sweep")
		p.Sleep(750)
		r1.Instant("proto", "rts", Str("via", "nmad"), Int64("bytes", 65536))
		sweep()
	})
	bg.SetLabel(TidPioman)

	e.After(100, func() { r1.Instant("nemesis", "cells-drained", Int64("cells", 3)) })

	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestChromeGolden pins the exporter's exact bytes: field order, fixed-point
// microsecond timestamps, metadata naming, escaping. Regenerate with
// go test ./internal/trace -run ChromeGolden -update after a deliberate
// format change.
func TestChromeGolden(t *testing.T) {
	tr := buildFixtureTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestChromeIsValidJSON: the hand-rolled writer must still produce JSON a
// standard parser accepts, with the structure viewers expect.
func TestChromeIsValidJSON(t *testing.T) {
	tr := buildFixtureTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		Unit        string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Unit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 ranks × (1 process_name + 4 thread_name) metadata + the events.
	if len(doc.TraceEvents) != 10+len(tr.Events()) {
		t.Fatalf("%d JSON events for %d recorded (+10 metadata)",
			len(doc.TraceEvents), len(tr.Events()))
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"]; !ok {
			t.Fatalf("event missing ph: %v", ev)
		}
	}
}

// TestChromeDeterministicBytes: two identical fixture runs export
// byte-identical traces — the exporter-level half of the determinism
// guarantee (mpi.TestTraceDeterminism covers the full stack).
func TestChromeDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, buildFixtureTrace(t)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, buildFixtureTrace(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical fixture runs exported different bytes")
	}
}

// TestWriteMicros pins the fixed-point timestamp rendering.
func TestWriteMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{1234567, "1234.567"}, {-1500, "-1.500"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		bw := newTestWriter(&buf)
		writeMicros(bw, c.ns)
		bw.Flush()
		if buf.String() != c.want {
			t.Fatalf("writeMicros(%d) = %q, want %q", c.ns, buf.String(), c.want)
		}
	}
}

// newTestWriter adapts a buffer for the low-level writer helpers.
func newTestWriter(buf *bytes.Buffer) *bufio.Writer { return bufio.NewWriter(buf) }
