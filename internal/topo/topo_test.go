package topo

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinSpread(t *testing.T) {
	p := RoundRobin(8, 10)
	if m := p.MaxRanksPerNode(10); m != 1 {
		t.Fatalf("8 ranks on 10 nodes: max per node = %d, want 1", m)
	}
	p = RoundRobin(16, 10)
	if m := p.MaxRanksPerNode(10); m != 2 {
		t.Fatalf("16 ranks on 10 nodes: max per node = %d, want 2", m)
	}
	p = RoundRobin(64, 10)
	if m := p.MaxRanksPerNode(10); m != 7 {
		t.Fatalf("64 ranks on 10 nodes: max per node = %d, want 7", m)
	}
}

func TestBlockPlacement(t *testing.T) {
	p := Block(8, 2)
	for r := 0; r < 4; r++ {
		if p.NodeOf(r) != 0 {
			t.Fatalf("rank %d on node %d, want 0", r, p.NodeOf(r))
		}
	}
	for r := 4; r < 8; r++ {
		if p.NodeOf(r) != 1 {
			t.Fatalf("rank %d on node %d, want 1", r, p.NodeOf(r))
		}
	}
}

func TestSameNode(t *testing.T) {
	p := Placement{0, 0, 1, 1}
	if !p.SameNode(0, 1) || p.SameNode(1, 2) || !p.SameNode(2, 3) {
		t.Fatal("SameNode wrong")
	}
}

func TestRanksOnNode(t *testing.T) {
	p := RoundRobin(6, 3)
	got := p.RanksOnNode(1)
	want := []int{1, 4}
	if len(got) != len(want) {
		t.Fatalf("ranks on node 1 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks on node 1 = %v, want %v", got, want)
		}
	}
}

func TestClusterValidate(t *testing.T) {
	for _, c := range []Cluster{Xeon2(), Grid5000()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := Cluster{Name: "bad", NumNodes: 0, CoresPerNode: 1, FlopsPerCore: 1, MemBWBytes: 1}
	if bad.Validate() == nil {
		t.Error("expected error for 0-node cluster")
	}
	bad = Cluster{Name: "bad", NumNodes: 1, CoresPerNode: 0, FlopsPerCore: 1, MemBWBytes: 1}
	if bad.Validate() == nil {
		t.Error("expected error for 0-core cluster")
	}
	bad = Cluster{Name: "bad", NumNodes: 1, CoresPerNode: 1, FlopsPerCore: 0, MemBWBytes: 1}
	if bad.Validate() == nil {
		t.Error("expected error for 0-flops cluster")
	}
}

func TestPlacementValidate(t *testing.T) {
	c := Xeon2()
	if err := RoundRobin(2, c.NumNodes).Validate(c); err != nil {
		t.Fatal(err)
	}
	// 20 ranks on 2 nodes with 8 cores each must fail.
	if err := RoundRobin(20, c.NumNodes).Validate(c); err == nil {
		t.Fatal("expected over-subscription error")
	}
	// Placement referencing nonexistent node must fail.
	if err := (Placement{0, 5}).Validate(c); err == nil {
		t.Fatal("expected out-of-range node error")
	}
}

func TestTestbedShapes(t *testing.T) {
	x := Xeon2()
	if x.NumNodes != 2 || x.CoresPerNode != 8 {
		t.Fatalf("xeon2 = %+v", x)
	}
	g := Grid5000()
	if g.NumNodes != 10 || g.CoresPerNode != 8 {
		t.Fatalf("grid5000 = %+v", g)
	}
	if x.TotalCores() != 16 || g.TotalCores() != 80 {
		t.Fatal("TotalCores wrong")
	}
}

// Property: every rank is placed on a valid node and round-robin balances
// within one rank.
func TestPropertyRoundRobinBalanced(t *testing.T) {
	f := func(npRaw, nodesRaw uint8) bool {
		np := int(npRaw%64) + 1
		nodes := int(nodesRaw%16) + 1
		p := RoundRobin(np, nodes)
		counts := make([]int, nodes)
		for _, n := range p {
			if n < 0 || n >= nodes {
				return false
			}
			counts[n]++
		}
		min, max := np, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
