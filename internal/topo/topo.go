// Package topo describes simulated cluster topologies: nodes, cores and the
// placement of MPI ranks onto nodes. It mirrors the two testbeds used in the
// paper (two dual-quadcore Xeon boxes for the point-to-point experiments and
// ten 4-core Opteron nodes on Grid5000 for the NAS runs).
package topo

import "fmt"

// Cluster describes a homogeneous set of nodes.
type Cluster struct {
	Name         string
	NumNodes     int
	CoresPerNode int
	// FlopsPerCore is the sustained floating-point rate of one core in
	// operations per second; NAS kernels use it to convert operation counts
	// into virtual compute time.
	FlopsPerCore float64
	// MemBWBytes is the per-node memory copy bandwidth in bytes per second,
	// used by the shared-memory channel cost model.
	MemBWBytes float64
	// Hierarchy groups nodes into nested interconnect units (switch, rack,
	// ...). Empty means a flat machine: every node pair is one switch hop
	// apart, which is what the small paper testbeds are.
	Hierarchy Hierarchy
}

// Level is one tier of the interconnect hierarchy above the node NIC.
type Level struct {
	Name string
	// Size is the number of units of the tier below grouped under one unit
	// of this tier — nodes per switch for the innermost level, switches per
	// rack for the next, and so on.
	Size int
}

// Hierarchy nests nodes into interconnect units, innermost level first.
// Node ids stay dense (0..NumNodes-1); a node's unit at level l is its id
// divided by the cumulative group size up to that level.
type Hierarchy struct {
	Levels []Level
}

// Flat reports whether the hierarchy is empty (single-switch machine).
func (h Hierarchy) Flat() bool { return len(h.Levels) == 0 }

// Validate checks level sizes.
func (h Hierarchy) Validate() error {
	for i, l := range h.Levels {
		if l.Size <= 1 {
			return fmt.Errorf("topo: hierarchy level %d (%s) groups %d units", i, l.Name, l.Size)
		}
	}
	return nil
}

// Distance returns the number of hierarchy tiers a message between nodes a
// and b must cross: 0 when they share the innermost unit (same switch),
// len(Levels) when they only meet above the top level. A flat hierarchy
// returns 0 for every pair.
func (h Hierarchy) Distance(a, b int) int {
	group := 1
	for i, l := range h.Levels {
		group *= l.Size
		if a/group == b/group {
			return i
		}
	}
	return len(h.Levels)
}

// Validate reports whether the cluster description is self-consistent.
func (c Cluster) Validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("topo: cluster %q has %d nodes", c.Name, c.NumNodes)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("topo: cluster %q has %d cores per node", c.Name, c.CoresPerNode)
	}
	if c.FlopsPerCore <= 0 {
		return fmt.Errorf("topo: cluster %q has non-positive flops rate", c.Name)
	}
	if c.MemBWBytes <= 0 {
		return fmt.Errorf("topo: cluster %q has non-positive memory bandwidth", c.Name)
	}
	if err := c.Hierarchy.Validate(); err != nil {
		return fmt.Errorf("%v (cluster %q)", err, c.Name)
	}
	return nil
}

// TotalCores returns the number of cores across the cluster.
func (c Cluster) TotalCores() int { return c.NumNodes * c.CoresPerNode }

// Placement maps each rank to the node hosting it.
type Placement []int

// RoundRobin places np ranks cyclically over nodes: rank r on node r%nodes.
// This is the scatter placement the paper uses on Grid5000 (8 processes on
// 10 nodes means at most one process per node, so no shared memory traffic).
func RoundRobin(np, nodes int) Placement {
	p := make(Placement, np)
	for r := range p {
		p[r] = r % nodes
	}
	return p
}

// Block places np ranks in contiguous blocks: node 0 fills first.
func Block(np, nodes int) Placement {
	p := make(Placement, np)
	per := (np + nodes - 1) / nodes
	for r := range p {
		p[r] = r / per
	}
	return p
}

// NodeOf returns the node hosting rank r.
func (p Placement) NodeOf(r int) int { return p[r] }

// SameNode reports whether ranks a and b share a node.
func (p Placement) SameNode(a, b int) bool { return p[a] == p[b] }

// RanksOnNode returns all ranks placed on node n, in rank order.
func (p Placement) RanksOnNode(n int) []int {
	var rs []int
	for r, node := range p {
		if node == n {
			rs = append(rs, r)
		}
	}
	return rs
}

// MaxRanksPerNode returns the largest number of ranks any node hosts.
func (p Placement) MaxRanksPerNode(nodes int) int {
	counts := make([]int, nodes)
	max := 0
	for _, n := range p {
		counts[n]++
		if counts[n] > max {
			max = counts[n]
		}
	}
	return max
}

// Validate checks the placement fits the cluster (enough cores per node).
func (p Placement) Validate(c Cluster) error {
	for r, n := range p {
		if n < 0 || n >= c.NumNodes {
			return fmt.Errorf("topo: rank %d placed on node %d of %d", r, n, c.NumNodes)
		}
	}
	if m := p.MaxRanksPerNode(c.NumNodes); m > c.CoresPerNode {
		return fmt.Errorf("topo: %d ranks on one node exceeds %d cores", m, c.CoresPerNode)
	}
	return nil
}

// Xeon2 is the point-to-point testbed of §4.1: two boxes with two quad-core
// 3.16 GHz Intel Xeon CPUs and 4 GB of memory each.
func Xeon2() Cluster {
	return Cluster{
		Name:         "xeon2",
		NumNodes:     2,
		CoresPerNode: 8,
		FlopsPerCore: 3.0e9, // ~1 flop/cycle sustained at 3.16 GHz
		MemBWBytes:   4.0e9,
	}
}

// Grid5000 is the NAS testbed of §4.2: ten nodes, four dual-core 2.6 GHz
// AMD Opteron 2218 CPUs (8 cores) and 32 GB per node.
func Grid5000() Cluster {
	return Cluster{
		Name:         "grid5000",
		NumNodes:     10,
		CoresPerNode: 8,
		FlopsPerCore: 2.4e9,
		MemBWBytes:   3.2e9,
	}
}

// XeonRacks scales the Xeon testbed out to nodes boxes arranged as a
// two-tier fat tree: 16 nodes per leaf switch, 4 switches per rack. This is
// the NP-scale machine the large collective runs use — per-node parameters
// match Xeon2 so small and large runs stay comparable.
func XeonRacks(nodes int) Cluster {
	return Cluster{
		Name:         "xeonracks",
		NumNodes:     nodes,
		CoresPerNode: 8,
		FlopsPerCore: 3.0e9,
		MemBWBytes:   4.0e9,
		Hierarchy: Hierarchy{Levels: []Level{
			{Name: "switch", Size: 16},
			{Name: "rack", Size: 4},
		}},
	}
}
