package shmq

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEnqueueDequeueFIFO(t *testing.T) {
	q := &Queue{}
	cells := make([]*Cell, 10)
	for i := range cells {
		cells[i] = &Cell{buf: make([]byte, 0, 16)}
		cells[i].Hdr.SeqNo = uint32(i)
		q.Enqueue(cells[i])
	}
	for i := range cells {
		c := q.Dequeue()
		if c == nil {
			t.Fatalf("premature empty at %d", i)
		}
		if c.Hdr.SeqNo != uint32(i) {
			t.Fatalf("got seq %d, want %d", c.Hdr.SeqNo, i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestEmpty(t *testing.T) {
	q := &Queue{}
	if !q.Empty() {
		t.Fatal("new queue not empty")
	}
	c := &Cell{buf: make([]byte, 0, 8)}
	q.Enqueue(c)
	if q.Empty() {
		t.Fatal("queue with one cell reported empty")
	}
	q.Dequeue()
	if !q.Empty() {
		t.Fatal("drained queue not empty")
	}
}

func TestInterleavedEnqueueDequeue(t *testing.T) {
	q := &Queue{}
	mk := func(i int) *Cell {
		c := &Cell{buf: make([]byte, 0, 8)}
		c.Hdr.SeqNo = uint32(i)
		return c
	}
	q.Enqueue(mk(0))
	q.Enqueue(mk(1))
	if got := q.Dequeue().Hdr.SeqNo; got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
	q.Enqueue(mk(2))
	if got := q.Dequeue().Hdr.SeqNo; got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := q.Dequeue().Hdr.SeqNo; got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if q.Dequeue() != nil {
		t.Fatal("expected empty")
	}
}

// TestConcurrentProducers runs many producers against a single consumer with
// the race detector able to observe the real atomics. Every cell must arrive
// exactly once and in FIFO order per producer.
func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	q := &Queue{}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c := &Cell{buf: make([]byte, 0, 8)}
				c.Hdr.Src = int32(p)
				c.Hdr.SeqNo = uint32(i)
				q.Enqueue(c)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	lastSeq := make(map[int32]int64)
	for p := int32(0); p < producers; p++ {
		lastSeq[p] = -1
	}
	received := 0
	drained := false
	for received < producers*perProducer {
		c := q.Dequeue()
		if c == nil {
			if drained {
				t.Fatalf("queue empty after producers done, received %d", received)
			}
			select {
			case <-done:
				drained = true
			default:
			}
			continue
		}
		drained = false
		if c.Hdr.SeqNo != uint32(lastSeq[c.Hdr.Src]+1) {
			t.Fatalf("producer %d: got seq %d after %d", c.Hdr.Src, c.Hdr.SeqNo, lastSeq[c.Hdr.Src])
		}
		lastSeq[c.Hdr.Src]++
		received++
	}
}

func TestPoolLifecycle(t *testing.T) {
	p, err := NewPool(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCells() != 4 || p.CellSize() != 64 {
		t.Fatalf("pool meta wrong: %d x %d", p.NumCells(), p.CellSize())
	}
	var got []*Cell
	for i := 0; i < 4; i++ {
		c := p.GetFree()
		if c == nil {
			t.Fatalf("free queue exhausted at %d", i)
		}
		got = append(got, c)
	}
	if p.GetFree() != nil {
		t.Fatal("free queue should be exhausted")
	}
	for _, c := range got {
		p.Release(c)
	}
	if p.GetFree() == nil {
		t.Fatal("released cells not reusable")
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 64); err == nil {
		t.Fatal("expected error for 0 cells")
	}
	if _, err := NewPool(4, 0); err == nil {
		t.Fatal("expected error for 0-byte cells")
	}
}

func TestCellPayload(t *testing.T) {
	p, err := NewPool(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := p.GetFree()
	c.SetPayload([]byte("hello"))
	if string(c.Payload()) != "hello" {
		t.Fatalf("payload = %q", c.Payload())
	}
	if c.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", c.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload must panic")
		}
	}()
	c.SetPayload(make([]byte, 17))
}

func TestReleaseClearsCell(t *testing.T) {
	p, _ := NewPool(1, 16)
	c := p.GetFree()
	c.SetPayload([]byte("x"))
	c.Hdr.Tag = 42
	p.Release(c)
	c2 := p.GetFree()
	if c2.Hdr.Tag != 0 || len(c2.Payload()) != 0 {
		t.Fatal("released cell not cleared")
	}
}

func TestCellsDoNotAlias(t *testing.T) {
	p, _ := NewPool(2, 8)
	a := p.GetFree()
	b := p.GetFree()
	a.SetPayload([]byte("aaaaaaaa"))
	b.SetPayload([]byte("bbbbbbbb"))
	if string(a.Payload()) != "aaaaaaaa" {
		t.Fatal("cell buffers alias")
	}
}

// Property: any interleaving of enqueue/dequeue operations driven by a
// script behaves like a FIFO queue.
func TestPropertyQueueIsFIFO(t *testing.T) {
	f := func(script []bool) bool {
		q := &Queue{}
		var model []uint32
		next := uint32(0)
		for _, enq := range script {
			if enq {
				c := &Cell{buf: make([]byte, 0, 4)}
				c.Hdr.SeqNo = next
				model = append(model, next)
				next++
				q.Enqueue(c)
			} else {
				c := q.Dequeue()
				if len(model) == 0 {
					if c != nil {
						return false
					}
					continue
				}
				if c == nil || c.Hdr.SeqNo != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		// Drain and compare the remainder.
		for _, want := range model {
			c := q.Dequeue()
			if c == nil || c.Hdr.SeqNo != want {
				return false
			}
		}
		return q.Dequeue() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a pool never hands out more cells than it owns and recycling
// preserves the total.
func TestPropertyPoolConservation(t *testing.T) {
	f := func(ops []bool) bool {
		p, err := NewPool(8, 8)
		if err != nil {
			return false
		}
		var held []*Cell
		for _, get := range ops {
			if get {
				c := p.GetFree()
				if c != nil {
					held = append(held, c)
				} else if len(held) != 8 {
					return false // exhausted early
				}
			} else if len(held) > 0 {
				p.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		// Drain everything: held + free must total 8.
		n := len(held)
		for {
			c := p.GetFree()
			if c == nil {
				break
			}
			n++
		}
		return n == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := &Queue{}
	c := &Cell{buf: make([]byte, 0, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(c)
		q.Dequeue()
	}
}
