// Package shmq implements the lock-free shared-memory queues at the heart of
// the Nemesis communication channel (§2.1.1 of the paper).
//
// Nemesis moves intra-node messages through fixed-size message cells that
// live in shared memory. Each process owns two multi-producer single-consumer
// queues: a *free queue* holding empty cells and a *receive queue* into which
// any sender may enqueue filled cells. Enqueue is lock-free (an atomic swap
// on the tail pointer); dequeue is performed only by the owning process. The
// receiver polls a single receive queue regardless of the number of peers,
// which is what makes the design scalable and MPI_ANY_SOURCE-friendly.
//
// This package is real concurrent code (sync/atomic) and is exercised by the
// race-enabled tests; the simulation layers use it with deterministic,
// single-threaded call sequences plus a virtual-time cost model.
package shmq

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// CellType discriminates what a filled cell carries.
type CellType uint8

const (
	// CellData is an in-band eager message fragment.
	CellData CellType = iota
	// CellRTS is a CH3 rendezvous request-to-send control message.
	CellRTS
	// CellCTS is a CH3 rendezvous clear-to-send control message.
	CellCTS
	// CellRdvData is a rendezvous payload fragment, routed by ReqID rather
	// than matched by tag.
	CellRdvData
)

// Header describes the message (fragment) held in a cell. Field layout
// mirrors the MPICH2 packet header that travels in each Nemesis cell.
type Header struct {
	Type   CellType
	Src    int32 // sending rank
	Tag    int32
	Ctx    int32 // communicator context id
	SeqNo  uint32
	MsgLen int64 // total message length (may span multiple cells)
	Offset int64 // offset of this fragment within the message
	// ReqID carries an opaque request handle in RTS/CTS control cells so
	// the peer can address its reply.
	ReqID uint64
}

// Cell is one fixed-size shared-memory message cell. Its backing storage
// is allocated lazily on first fill: a simulated job of thousands of ranks
// would otherwise pay for (and zero) every rank's full cell pool up front,
// when a log-depth collective touches only a handful of cells per rank.
// The *capacity* stays fixed — flow control and fragmentation behave
// exactly as if the memory were preallocated.
type Cell struct {
	next atomic.Pointer[Cell]
	Hdr  Header
	size int    // fixed payload capacity
	buf  []byte // grown on demand up to size; len tracks the valid fragment bytes
}

// Payload returns the valid bytes of the fragment.
func (c *Cell) Payload() []byte { return c.buf }

// SetPayload copies p into the cell. It panics if p exceeds the capacity;
// callers fragment messages across cells (as Nemesis does) before filling.
func (c *Cell) SetPayload(p []byte) {
	if len(p) > c.size {
		panic(fmt.Sprintf("shmq: payload %d exceeds cell capacity %d", len(p), c.size))
	}
	if cap(c.buf) < len(p) {
		c.buf = make([]byte, len(p))
	} else {
		c.buf = c.buf[:len(p)]
	}
	copy(c.buf, p)
}

// Capacity returns the fixed payload capacity of the cell.
func (c *Cell) Capacity() int { return c.size }

// Queue is a lock-free multi-producer single-consumer queue of cells,
// implementing the MPICH2/Nemesis enqueue/dequeue algorithm: enqueue swaps
// the tail atomically and links the predecessor; dequeue (owner only)
// resolves the race against an in-flight enqueue with a tail CAS.
type Queue struct {
	head atomic.Pointer[Cell]
	tail atomic.Pointer[Cell]
}

// Enqueue appends c. Safe for concurrent use by any number of producers.
func (q *Queue) Enqueue(c *Cell) {
	c.next.Store(nil)
	prev := q.tail.Swap(c)
	if prev == nil {
		q.head.Store(c)
	} else {
		prev.next.Store(c)
	}
}

// Dequeue removes and returns the oldest cell, or nil if the queue is
// (observably) empty. Only the owning consumer may call Dequeue.
func (q *Queue) Dequeue() *Cell {
	c := q.head.Load()
	if c == nil {
		return nil
	}
	if next := c.next.Load(); next != nil {
		q.head.Store(next)
	} else {
		q.head.Store(nil)
		if !q.tail.CompareAndSwap(c, nil) {
			// A producer swapped the tail but has not linked c.next yet;
			// wait for the link to appear (it is one store away).
			next := c.next.Load()
			for next == nil {
				runtime.Gosched()
				next = c.next.Load()
			}
			q.head.Store(next)
		}
	}
	c.next.Store(nil)
	return c
}

// Empty reports whether the queue appears empty to the consumer. A false
// negative is impossible for cells enqueued before the call from the same
// goroutine; concurrent in-flight enqueues may or may not be visible, which
// is the same guarantee polling has on real shared memory.
func (q *Queue) Empty() bool { return q.head.Load() == nil }

// Pool is a process's pair of queues plus its cell storage: the free queue
// seeded with every cell, and the receive queue into which peers enqueue.
type Pool struct {
	Free *Queue
	Recv *Queue

	numCells int
	cellSize int
}

// NewPool allocates numCells cells of payload capacity cellSize bytes and
// seeds the free queue with all of them.
func NewPool(numCells, cellSize int) (*Pool, error) {
	if numCells <= 0 || cellSize <= 0 {
		return nil, fmt.Errorf("shmq: invalid pool %d cells x %d bytes", numCells, cellSize)
	}
	p := &Pool{Free: &Queue{}, Recv: &Queue{}, numCells: numCells, cellSize: cellSize}
	for i := 0; i < numCells; i++ {
		p.Free.Enqueue(&Cell{size: cellSize})
	}
	return p, nil
}

// NumCells returns the number of cells the pool was created with.
func (p *Pool) NumCells() int { return p.numCells }

// CellSize returns the payload capacity of each cell.
func (p *Pool) CellSize() int { return p.cellSize }

// GetFree dequeues a free cell (nil if the free queue is exhausted, in which
// case the sender must poll and retry, exactly like Nemesis flow control).
func (p *Pool) GetFree() *Cell { return p.Free.Dequeue() }

// Release returns a consumed cell to the free queue.
func (p *Pool) Release(c *Cell) {
	c.buf = c.buf[:0]
	c.Hdr = Header{}
	p.Free.Enqueue(c)
}
