package nbc

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/coll"
	"repro/internal/marcel"
	"repro/internal/pioman"
	"repro/internal/vtime"
)

// The fake transport is an n-rank loopback network: sends complete at
// submission, deliveries land after a fixed latency in engine context, and
// matching is per-(src, tag) FIFO — the invariant the real CH3 layer
// provides. It lets the engine's round sequencing be tested without the full
// simulator stack.

type fakeReq struct {
	done bool
	cbs  []func()
	src  int
	tag  int32
	buf  []byte
}

func (r *fakeReq) Done() bool { return r.done }
func (r *fakeReq) AddCallback(f func()) {
	if r.done {
		f()
		return
	}
	r.cbs = append(r.cbs, f)
}
func (r *fakeReq) complete() {
	r.done = true
	for _, f := range r.cbs {
		f()
	}
	r.cbs = nil
}

type fakeMsg struct {
	src  int
	tag  int32
	data []byte
}

type fakeSide struct {
	net    *fakeNet
	rank   int
	mgr    *pioman.Manager
	eng    *Engine
	posted []*fakeReq
	unexp  []fakeMsg
}

type fakeNet struct {
	e     *vtime.Engine
	lat   vtime.Duration
	sides []*fakeSide
}

func newFakeNet(e *vtime.Engine, n int, lat vtime.Duration, pio bool) *fakeNet {
	net := &fakeNet{e: e, lat: lat}
	for r := 0; r < n; r++ {
		node := marcel.NewNode(e, fmt.Sprintf("n%d", r), 4)
		side := &fakeSide{net: net, rank: r}
		side.mgr = pioman.New(e, node, fmt.Sprintf("p%d", r), pioman.Config{Enabled: pio})
		side.eng = NewEngine(side.mgr, side)
		net.sides = append(net.sides, side)
	}
	return net
}

func (s *fakeSide) Isend(proc *vtime.Proc, dst int, tag int32, data []byte, rail int) Req {
	cp := make([]byte, len(data))
	copy(cp, data)
	peer := s.net.sides[dst]
	src := s.rank
	s.net.e.After(s.net.lat, func() {
		peer.deliver(src, tag, cp)
		peer.mgr.Notify()
	})
	return &fakeReq{done: true}
}

func (s *fakeSide) Irecv(proc *vtime.Proc, src int, tag int32, buf []byte) Req {
	r := &fakeReq{src: src, tag: tag, buf: buf}
	for i, m := range s.unexp {
		if m.src == src && m.tag == tag {
			s.unexp = append(s.unexp[:i], s.unexp[i+1:]...)
			copy(buf, m.data)
			r.complete()
			return r
		}
	}
	s.posted = append(s.posted, r)
	return r
}

func (s *fakeSide) deliver(src int, tag int32, data []byte) {
	for i, r := range s.posted {
		if r.src == src && r.tag == tag {
			s.posted = append(s.posted[:i], s.posted[i+1:]...)
			copy(r.buf, data)
			r.complete()
			return
		}
	}
	s.unexp = append(s.unexp, fakeMsg{src: src, tag: tag, data: data})
}

// runOps starts build(rank)'s schedule on every rank and waits for all.
// Shutdown waits for every engine, not just rank 0's: an asymmetric
// schedule (e.g. a vector collective whose receives are all elided) can
// complete rank 0 at Start while other ranks still need progress.
func runOps(t *testing.T, n int, pio bool, build func(rank int) *coll.Schedule) *fakeNet {
	t.Helper()
	e := vtime.NewEngine()
	net := newFakeNet(e, n, 500*vtime.Nanosecond, pio)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn(fmt.Sprintf("app%d", r), func(p *vtime.Proc) {
			side := net.sides[r]
			op := side.eng.Start(p, build(r))
			side.mgr.WaitUntil(p, op.Done)
			net.sides[0].mgr.Notify()
			if r == 0 {
				side.mgr.WaitUntil(p, func() bool {
					for _, s := range net.sides {
						if s.eng.Completed() < 1 {
							return false
						}
					}
					return true
				})
				for _, s := range net.sides {
					s.mgr.Stop()
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestEngineEmptySchedule(t *testing.T) {
	e := vtime.NewEngine()
	net := newFakeNet(e, 1, 0, false)
	e.Spawn("app", func(p *vtime.Proc) {
		op := net.sides[0].eng.Start(p, &coll.Schedule{})
		if !op.Done() {
			t.Error("empty schedule must complete at Start")
		}
		net.sides[0].mgr.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBarrierAllNP(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		for _, pio := range []bool{false, true} {
			runOps(t, n, pio, func(rank int) *coll.Schedule {
				return coll.BuildBarrier(rank, n)
			})
		}
	}
}

func TestEngineAllreduceMatchesSerial(t *testing.T) {
	const n, m = 5, 8
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, m)
		for i := range vecs[r] {
			vecs[r][i] = float64(r + i*3)
		}
	}
	runOps(t, n, true, func(rank int) *coll.Schedule {
		return coll.BuildAllreduce(rank, n, vecs[rank], coll.OpSum)
	})
	for i := 0; i < m; i++ {
		want := 0.0
		for r := 0; r < n; r++ {
			want += float64(r + i*3)
		}
		for r := 0; r < n; r++ {
			if math.Abs(vecs[r][i]-want) > 1e-9 {
				t.Fatalf("rank %d elem %d = %g, want %g", r, i, vecs[r][i], want)
			}
		}
	}
}

// TestEngineRoundsDeferredToProgress: multi-round schedules must advance via
// deferred progress tasks, not inline on the completion callback.
func TestEngineRoundsDeferredToProgress(t *testing.T) {
	net := runOps(t, 8, false, func(rank int) *coll.Schedule {
		return coll.BuildBarrier(rank, 8) // 3 rounds
	})
	for r, s := range net.sides {
		if s.eng.Completed() != 1 {
			t.Fatalf("rank %d: Completed = %d", r, s.eng.Completed())
		}
		if s.eng.BGRounds() == 0 {
			t.Fatalf("rank %d: no rounds issued from progress context", r)
		}
	}
}

// TestEngineSynchronousRounds: when every transfer is already satisfied at
// issue time (sends complete at submission, receives matched from the
// unexpected store), rounds collapse inline and the op completes without a
// single deferred task.
func TestEngineSynchronousRounds(t *testing.T) {
	e := vtime.NewEngine()
	net := newFakeNet(e, 2, 0, false)
	e.Spawn("seed", func(p *vtime.Proc) {
		// Pre-feed rank 0 with rank 1's barrier message (tag = seq 0).
		net.sides[0].deliver(1, 0, nil)
	})
	e.Spawn("app0", func(p *vtime.Proc) {
		side := net.sides[0]
		op := side.eng.Start(p, coll.BuildBarrier(0, 2))
		if !op.Done() {
			t.Error("pre-matched single-round barrier should complete inline")
		}
		if side.eng.BGRounds() != 0 {
			t.Errorf("BGRounds = %d, want 0", side.eng.BGRounds())
		}
		for _, s := range net.sides {
			s.mgr.Stop()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineConcurrentOpsIsolated: two outstanding ops between the same pair
// use distinct tags and never cross-match.
func TestEngineConcurrentOpsIsolated(t *testing.T) {
	const n = 4
	a := make([][]float64, n)
	b := make([][]float64, n)
	for r := 0; r < n; r++ {
		a[r] = []float64{float64(r)}
		b[r] = []float64{float64(100 + r)}
	}
	e := vtime.NewEngine()
	net := newFakeNet(e, n, 300, true)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn(fmt.Sprintf("app%d", r), func(p *vtime.Proc) {
			side := net.sides[r]
			op1 := side.eng.Start(p, coll.BuildAllreduce(r, n, a[r], coll.OpSum))
			op2 := side.eng.Start(p, coll.BuildAllreduce(r, n, b[r], coll.OpMax))
			side.mgr.WaitUntil(p, func() bool { return op1.Done() && op2.Done() })
			if r == 0 {
				for _, s := range net.sides {
					s.mgr.Stop()
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if a[r][0] != 6 { // 0+1+2+3
			t.Fatalf("rank %d: sum = %v, want 6", r, a[r][0])
		}
		if b[r][0] != 103 {
			t.Fatalf("rank %d: max = %v, want 103", r, b[r][0])
		}
	}
}

// TestEngineDeterministic: repeated runs drain at the identical virtual time.
func TestEngineDeterministic(t *testing.T) {
	run := func() vtime.Time {
		e := vtime.NewEngine()
		net := newFakeNet(e, 6, 700, true)
		for r := 0; r < 6; r++ {
			r := r
			e.Spawn(fmt.Sprintf("app%d", r), func(p *vtime.Proc) {
				side := net.sides[r]
				x := []float64{float64(r), 1}
				op := side.eng.Start(p, coll.BuildAllreduce(r, 6, x, coll.OpSum))
				side.mgr.WaitUntil(p, op.Done)
				if r == 0 {
					for _, s := range net.sides {
						s.mgr.Stop()
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if t1, t2 := run(), run(); t1 != t2 {
		t.Fatalf("nondeterministic: %d != %d", t1, t2)
	}
}

// TestEngineVectorSchedules: irregular (per-rank count) schedules — zero
// blocks elided, local copyF64 prims for the reduce-scatter landing — run
// correctly through the engine's round execution under both progress
// regimes.
func TestEngineVectorSchedules(t *testing.T) {
	const n = 4
	counts := []int{0, 3, 7, 2}
	total := 0
	for _, c := range counts {
		total += c
	}
	for _, pio := range []bool{false, true} {
		// Alltoallv: rank r sends counts[d] bytes of value r*16+d to d.
		send := make([][][]byte, n)
		recv := make([][][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = make([][]byte, n)
			recv[r] = make([][]byte, n)
			for d := 0; d < n; d++ {
				send[r][d] = make([]byte, counts[d])
				for i := range send[r][d] {
					send[r][d][i] = byte(r*16 + d)
				}
				recv[r][d] = make([]byte, counts[r])
			}
		}
		runOps(t, n, pio, func(rank int) *coll.Schedule {
			return coll.BuildAlltoallv(rank, n, send[rank], recv[rank], true)
		})
		for r := 0; r < n; r++ {
			for s := 0; s < n; s++ {
				for i := range recv[r][s] {
					if recv[r][s][i] != byte(s*16+r) {
						t.Fatalf("pio=%v: rank %d block from %d byte %d = %d",
							pio, r, s, i, recv[r][s][i])
					}
				}
			}
		}

		// Reduce-scatter: segment sums land in each rank's recv.
		xs := make([][]float64, n)
		recvs := make([][]float64, n)
		for r := 0; r < n; r++ {
			xs[r] = make([]float64, total)
			for i := range xs[r] {
				xs[r][i] = float64(r*10 + i)
			}
			recvs[r] = make([]float64, counts[r])
		}
		runOps(t, n, pio, func(rank int) *coll.Schedule {
			return coll.BuildReduceScatterHalving(rank, n, xs[rank], recvs[rank], counts, coll.OpSum)
		})
		off := 0
		for r := 0; r < n; r++ {
			for i := 0; i < counts[r]; i++ {
				want := 0.0
				for s := 0; s < n; s++ {
					want += float64(s*10 + off + i)
				}
				if math.Abs(recvs[r][i]-want) > 1e-9 {
					t.Fatalf("pio=%v: rank %d elem %d = %g, want %g", pio, r, i, recvs[r][i], want)
				}
			}
			off += counts[r]
		}
	}
}
