// Package nbc is a schedule-based nonblocking-collectives engine in the
// spirit of libNBC: a collective is compiled (by the builders in
// internal/coll) into per-rank rounds of {send, recv, copy, reduce}
// primitives, and an Op executes those rounds incrementally over the CH3
// nonblocking point-to-point layer.
//
// Progression rides the PIOMan progress authority of the paper:
//
//   - round 0 is issued inline by the application thread (the MPI_I* call);
//   - when a round's transfers complete, the next round is posted as a
//     deferred pioman task. Under the PIOMan regime the background progress
//     thread picks it up on an idle core — the collective advances while the
//     application computes, which is precisely the overlap §3.3 promises.
//     Without PIOMan the task runs at the next Progress pass an application
//     thread performs inside an MPI call (Wait/Test), reproducing the
//     no-overlap behaviour of progress-less stacks.
//
// Matching isolation: the engine tags every transfer with (op sequence,
// round) on a context of its own, so concurrently outstanding collectives —
// and the blocking collectives sharing the communicator — never cross-match.
package nbc

import (
	"repro/internal/coll"
	"repro/internal/pioman"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Req is the transport's nonblocking request handle (satisfied by
// *ch3.Request).
type Req interface {
	Done() bool
	AddCallback(func())
}

// Transport issues nonblocking point-to-point transfers on the collective
// engine's private context. Implemented by mpi.Comm. rail is the send's
// multirail placement hint, encoded as on coll.Prim.Rail: 0 lets the
// backend's strategy place the transfer, k > 0 pins it to rail k-1;
// single-rail transports ignore it.
type Transport interface {
	Isend(proc *vtime.Proc, dst int, tag int32, data []byte, rail int) Req
	Irecv(proc *vtime.Proc, src int, tag int32, buf []byte) Req
}

// Engine executes schedules for one rank, progressed by a pioman.Manager.
type Engine struct {
	mgr *pioman.Manager
	tr  Transport
	rec *trace.Recorder

	nextSeq int32

	// shard is the progress-manager shard key all of this engine's deferred
	// rounds and notifications route to (the owning communicator's context:
	// one communicator's rounds stay on one worker's queue, and idle
	// workers steal if that queue backs up). Zero — the default — is the
	// classic single-worker behavior.
	shard int

	// free recycles completed Ops (see getOp/putOp); pooling can be turned
	// off for neutrality verification.
	free    []*Op
	pooling bool

	// Stats, registered on a metrics registry via Instrument (standalone
	// counters otherwise). Read through the accessor methods.
	started   *trace.Counter // ops started
	completed *trace.Counter // ops completed
	bgRounds  *trace.Counter // rounds issued from a deferred progress task
	opHits    *trace.Counter // op pool hits
	opMisses  *trace.Counter // op pool misses
}

// NewEngine binds a schedule engine to a progress manager and transport.
func NewEngine(mgr *pioman.Manager, tr Transport) *Engine {
	e := &Engine{mgr: mgr, tr: tr, pooling: true}
	e.Instrument(nil, nil)
	return e
}

// Instrument attaches a trace recorder and re-homes the engine's statistics
// on a metrics registry. Call before starting operations; either argument
// may be nil (no events recorded / standalone counters).
func (e *Engine) Instrument(rec *trace.Recorder, met *trace.Registry) {
	e.rec = rec
	e.started = met.Counter(trace.CtrNbcStarted)
	e.completed = met.Counter(trace.CtrNbcCompleted)
	e.bgRounds = met.Counter(trace.CtrNbcBGRounds)
	e.opHits = met.Counter(trace.CtrOpPoolHits)
	e.opMisses = met.Counter(trace.CtrOpPoolMisses)
}

// DisablePooling makes every Start allocate a fresh Op (virtual-time results
// are identical either way; the switch exists for neutrality verification).
func (e *Engine) DisablePooling() { e.pooling = false }

// SetShard keys the engine's deferred work for multi-worker progression:
// mpi hands the owning communicator's collective context in. Call before
// starting operations.
func (e *Engine) SetShard(key int) { e.shard = key }

// Started returns the number of operations started.
func (e *Engine) Started() int64 { return e.started.Value() }

// Completed returns the number of operations completed.
func (e *Engine) Completed() int64 { return e.completed.Value() }

// BGRounds returns the number of rounds issued from deferred progress tasks.
func (e *Engine) BGRounds() int64 { return e.bgRounds.Value() }

// Op is one in-flight nonblocking collective. Completed ops return to the
// engine free list; a holder that may outlive completion (e.g. an MPI
// request) captures Gen() at start and polls DoneGen, which stays correct
// across recycling.
type Op struct {
	eng    *Engine
	sched  *coll.Schedule
	seq    int32
	onDone func()

	// gen counts acquisitions of this Op struct: bumped in getOp, never in
	// putOp. A recycled op therefore reads done=true to stale holders until
	// it is reacquired, after which their captured gen no longer matches.
	gen uint64

	round   int
	pending int // outstanding transfers of the current round (+1 issue guard)
	done    bool

	// cb / taskFn are the per-op closures of the hot path (transfer
	// completion callback, deferred-round task), built once per Op struct so
	// recycling does not re-allocate them.
	cb     func()
	taskFn func(*vtime.Proc)

	// Trace state: the async-operation id spanning start→completion, the
	// op/algo display name, and the current round's start time.
	tid        int64
	name       string
	roundStart vtime.Time
}

// getOp pops a recycled Op (or allocates one with its closures). The
// generation bump at acquisition invalidates DoneGen handles from the
// previous life.
func (e *Engine) getOp() *Op {
	var op *Op
	if n := len(e.free); n > 0 {
		op = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.opHits.Inc()
	} else {
		op = &Op{eng: e}
		op.cb = op.transferDone
		op.taskFn = func(p *vtime.Proc) {
			op.eng.bgRounds.Inc()
			op.issueRounds(p)
		}
		e.opMisses.Inc()
	}
	op.gen++
	op.done = false
	op.round, op.pending = 0, 0
	op.tid = 0
	return op
}

// putOp returns a completed op to the free list. done stays true (and gen
// unbumped) so stale holders keep reading completion correctly.
func (e *Engine) putOp(op *Op) {
	op.sched = nil
	op.onDone = nil
	op.name = ""
	e.free = append(e.free, op)
}

// Gen returns the op's current acquisition generation.
func (op *Op) Gen() uint64 { return op.gen }

// DoneGen reports whether the op life identified by gen has completed. A
// generation mismatch means the op was recycled — that life is over.
func (op *Op) DoneGen(gen uint64) bool { return op.gen != gen || op.done }

// Start begins executing s and returns its handle. Round 0 is issued on the
// calling proc (charging the caller the per-operation software costs, as a
// real MPI_I* call would); later rounds are driven by the progress engine.
// An empty schedule (single-rank collective) completes immediately.
func (e *Engine) Start(proc *vtime.Proc, s *coll.Schedule) *Op {
	return e.StartDone(proc, s, nil)
}

// StartDone is Start with a completion callback, invoked exactly once when
// the op completes — possibly synchronously, before StartDone returns. The
// schedule cache uses it to release a persistent schedule for rebinding.
func (e *Engine) StartDone(proc *vtime.Proc, s *coll.Schedule, onDone func()) *Op {
	op := e.getOp()
	op.sched, op.seq, op.onDone = s, e.nextSeq&0x7fffffff, onDone
	e.nextSeq++
	e.started.Inc()
	if e.rec.Enabled() {
		op.name = s.Key.Op.String() + "/" + s.Key.Algo.String()
		op.tid = e.rec.AsyncBegin("nbc", op.name,
			trace.Int64("rounds", int64(len(s.Rounds))))
	}
	op.issueRounds(proc)
	return op
}

// Done reports completion.
func (op *Op) Done() bool { return op.done }

// tag identifies the op so concurrently outstanding collectives never
// cross-match (the sequence uses the tag field's full non-negative range,
// so recycling needs 2^31 collectives outstanding-or-issued on one
// communicator). It must NOT encode the local round index: the two ends of
// one transfer can assign it different round numbers (a binomial root's
// second send is its round 1 but the receiver's round 0). Within an op,
// every pair exchanges in the same order on both sides, so per-pair FIFO
// matching — the invariant the transports guarantee — resolves the rest.
func (op *Op) tag() int32 { return op.seq }

// issueRounds starts the current round's transfers on proc and keeps going
// inline as long as rounds complete synchronously (e.g. transfers satisfied
// from the unexpected queue, or local-only rounds).
func (op *Op) issueRounds(proc *vtime.Proc) {
	for op.round < len(op.sched.Rounds) {
		op.roundStart = op.eng.rec.Now()
		rd := &op.sched.Rounds[op.round]
		// The +1 guard keeps the round open while transfers are being
		// issued: completion callbacks may fire synchronously inside
		// Isend/Irecv and must not advance the round mid-issue.
		op.pending = 1
		tag := op.tag()
		for i := range rd.Comm {
			pr := &rd.Comm[i]
			op.pending++
			var r Req
			if pr.Kind == coll.PrimSend {
				r = op.eng.tr.Isend(proc, pr.Peer, tag, coll.SendPayload(pr), pr.Rail)
			} else {
				r = op.eng.tr.Irecv(proc, pr.Peer, tag, pr.Buf)
			}
			r.AddCallback(op.cb)
		}
		op.pending--
		if op.pending > 0 {
			return // round continues under the progress engine
		}
		op.finishRound()
	}
	op.complete()
}

// transferDone runs when one transfer of the current round completes. It may
// run in engine context (a NIC completion event) or in progress context (a
// poll pass); both are safe since it only mutates op state and defers the
// next round to the progress engine.
func (op *Op) transferDone() {
	op.pending--
	if op.pending > 0 {
		return
	}
	op.finishRound()
	if op.round >= len(op.sched.Rounds) {
		op.complete()
		return
	}
	// Defer the next round's submission to the progress engine: under
	// PIOMan the worker owning this engine's shard executes it (submission
	// offload, §2.2.3); otherwise it runs inside the next MPI call's
	// progress pass.
	op.eng.mgr.PostTaskShard(op.eng.shard, pioman.Task{RunP: op.taskFn})
	op.eng.mgr.NotifyShard(op.eng.shard)
}

// finishRound runs the completed round's local prims and advances.
func (op *Op) finishRound() {
	rd := &op.sched.Rounds[op.round]
	for i := range rd.Local {
		coll.RunLocal(&rd.Local[i])
	}
	op.eng.rec.Complete("round", op.name, trace.TidRounds, op.roundStart,
		trace.Int64("round", int64(op.round)))
	op.round++
}

func (op *Op) complete() {
	if op.done {
		return
	}
	op.done = true
	op.eng.completed.Inc()
	if op.tid != 0 {
		op.eng.rec.AsyncEnd("nbc", op.name, op.tid)
		op.tid = 0
	}
	if f := op.onDone; f != nil {
		op.onDone = nil
		f()
	}
	// The op is finished: no transfer callback or deferred task can still
	// reference it (rounds only advance once every transfer of the previous
	// round has called back), so it can recycle now. Holders polling DoneGen
	// keep reading done=true until the struct is reacquired.
	if op.eng.pooling {
		op.eng.putOp(op)
	}
	// Wake anything blocked on the manager. The op is done — no progression
	// work remains — so multi-worker managers broadcast completion directly
	// instead of paying a worker an empty sweep for the re-broadcast.
	op.eng.mgr.Completed(op.eng.shard)
}
