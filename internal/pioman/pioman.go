// Package pioman implements the I/O event manager of the PM2 suite (§2.2.2,
// §3.3): a centralized progress authority for one MPI process.
//
// Every pollable event source (the NewMadeleine network driver, the Nemesis
// shared-memory receive queue) registers with the Manager. Two progress
// regimes exist:
//
//   - Disabled (plain Nemesis / baseline MPIs): progress happens only when
//     application threads call Progress from inside MPI routines; blocking
//     waits poll in a loop.
//   - Enabled (PIOMan): a background progress thread woken by arrival
//     notifications performs polling and deferred submission work on an idle
//     core, and application threads block on semaphore-like primitives
//     instead of busy-waiting (§3.3.2). Thread-safe progression costs a
//     per-event synchronization overhead (≈450 ns for shared memory, ≈2 µs
//     for the network — Fig. 6), charged on each background poll.
package pioman

import (
	"repro/internal/marcel"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Class tells the manager which synchronization cost a source carries.
type Class int

const (
	// ClassShm marks an intra-node shared-memory source.
	ClassShm Class = iota
	// ClassNet marks an inter-node network source.
	ClassNet
)

// Source is a pollable event source.
type Source interface {
	// SourceName identifies the source in diagnostics.
	SourceName() string
	// Poll performs protocol work for any pending events. It returns the
	// number of events handled and the total CPU cost of handling them
	// (parsing, matching, copies). It must be cheap when nothing is pending.
	Poll() (events int, cost vtime.Duration)
}

// Task is deferred host work (e.g. eager submission chunks) that may be
// offloaded to the progress thread. Exactly one of Run / RunP must be set:
// RunP receives the proc executing the progress pass (application thread or
// PIOMan thread) so the task can itself issue time-charged operations — the
// nonblocking-collective engine uses it to start schedule rounds from
// progress context.
type Task struct {
	Cost vtime.Duration
	Run  func()
	RunP func(p *vtime.Proc)
}

// Config tunes the manager.
type Config struct {
	// Enabled selects the PIOMan regime (background progress thread).
	Enabled bool
	// SyncShm/SyncNet are per-event synchronization overheads charged when
	// Enabled (the Fig. 6 offsets).
	SyncShm vtime.Duration
	SyncNet vtime.Duration
	// React is the scheduling delay before the background thread reacts to
	// a notification.
	React vtime.Duration
	// Metrics, when set, registers the manager's statistics (poll and event
	// counts, split by application vs background thread) under canonical
	// names; nil keeps standalone counters.
	Metrics *trace.Registry
	// Rec, when set, records progress-pass trace events.
	Rec *trace.Recorder
}

// Manager is the per-process progress authority.
type Manager struct {
	e    *vtime.Engine
	node *marcel.Node
	cfg  Config

	sources []Source
	classes []Class

	// tasks is consumed through taskHead so popping reuses the backing
	// array (vacated slots are zeroed; a drained queue resets to [:0]) —
	// the deferred-round hot path posts and pops thousands of tasks.
	tasks    []Task
	taskHead int

	// work is signalled by Notify and PostTask; the bg thread waits on it.
	work *vtime.Cond
	// Completion is broadcast whenever Poll completed protocol events;
	// blocked application threads re-check their predicates on it.
	Completion *vtime.Cond

	bgRunning bool
	stopped   bool
	notified  bool

	rec *trace.Recorder

	// Stats, registered on the configured metrics registry (standalone
	// counters otherwise). Read through the accessor methods.
	bgPolls   *trace.Counter
	bgEvents  *trace.Counter
	bgTasks   *trace.Counter
	appPolls  *trace.Counter
	appEvents *trace.Counter
}

// New returns a manager for one process living on node.
func New(e *vtime.Engine, node *marcel.Node, name string, cfg Config) *Manager {
	m := &Manager{
		e:          e,
		node:       node,
		cfg:        cfg,
		work:       vtime.NewCond(e, name+": pioman idle"),
		Completion: vtime.NewCond(e, name+": waiting for completion"),
		rec:        cfg.Rec,
		bgPolls:    cfg.Metrics.Counter(trace.CtrBgPolls),
		bgEvents:   cfg.Metrics.Counter(trace.CtrBgEvents),
		bgTasks:    cfg.Metrics.Counter(trace.CtrBgTasks),
		appPolls:   cfg.Metrics.Counter(trace.CtrAppPolls),
		appEvents:  cfg.Metrics.Counter(trace.CtrAppEvents),
	}
	if cfg.Enabled {
		m.bgRunning = true
		bp := e.Spawn(name+"/pioman", m.bgLoop)
		bp.SetLabel(trace.TidPioman)
	}
	return m
}

// BgPolls returns the number of background sweeps performed.
func (m *Manager) BgPolls() int64 { return m.bgPolls.Value() }

// BgEvents returns the number of events handled by background sweeps.
func (m *Manager) BgEvents() int64 { return m.bgEvents.Value() }

// BgTasks returns the number of deferred tasks run by the background thread.
func (m *Manager) BgTasks() int64 { return m.bgTasks.Value() }

// AppPolls returns the number of application-thread progress passes.
func (m *Manager) AppPolls() int64 { return m.appPolls.Value() }

// AppEvents returns the number of events handled on application threads.
func (m *Manager) AppEvents() int64 { return m.appEvents.Value() }

// Enabled reports whether the background regime is active.
func (m *Manager) Enabled() bool { return m.cfg.Enabled }

// Register adds a source with its synchronization class.
func (m *Manager) Register(s Source, c Class) {
	m.sources = append(m.sources, s)
	m.classes = append(m.classes, c)
}

// Notify tells the manager that a source may have a pending event. It is the
// mailbox mechanism of §3.3.2: arrival callbacks (engine context) call it.
func (m *Manager) Notify() {
	m.notified = true
	m.work.Broadcast()
	if !m.cfg.Enabled {
		// No background thread: wake any application thread blocked inside
		// a polling wait loop so it can poll again.
		m.Completion.Broadcast()
	}
}

// PostTask defers host work. Under PIOMan it is executed by the background
// thread (submission offload, §2.2.3); otherwise it runs at the next
// Progress call on the posting process's own time.
func (m *Manager) PostTask(t Task) {
	if (t.Run == nil) == (t.RunP == nil) {
		panic("pioman: Task needs exactly one of Run / RunP")
	}
	m.tasks = append(m.tasks, t)
	if m.cfg.Enabled {
		m.work.Broadcast()
	}
}

// noTasks reports an empty deferred-task queue.
func (m *Manager) noTasks() bool { return m.taskHead >= len(m.tasks) }

// runTasks executes deferred tasks, charging their cost to p. Tasks may
// post further tasks while running; they are picked up in the same pass.
func (m *Manager) runTasks(p *vtime.Proc, bg bool) int {
	n := 0
	for !m.noTasks() {
		t := m.tasks[m.taskHead]
		m.tasks[m.taskHead] = Task{}
		m.taskHead++
		if m.noTasks() {
			m.tasks = m.tasks[:0]
			m.taskHead = 0
		}
		if t.Cost > 0 {
			p.Sleep(t.Cost)
		}
		if t.RunP != nil {
			t.RunP(p)
		} else {
			t.Run()
		}
		n++
		if bg {
			m.bgTasks.Inc()
		}
	}
	return n
}

func (m *Manager) syncCost(c Class) vtime.Duration {
	if !m.cfg.Enabled {
		return 0
	}
	if c == ClassShm {
		return m.cfg.SyncShm
	}
	return m.cfg.SyncNet
}

// pollOnce polls every source, charging per-event costs to p. Returns events
// handled.
func (m *Manager) pollOnce(p *vtime.Proc) int {
	total := 0
	for i, s := range m.sources {
		n, cost := s.Poll()
		if n > 0 {
			cost += vtime.Duration(n) * m.syncCost(m.classes[i])
			if cost > 0 {
				p.Sleep(cost)
			}
			total += n
		}
	}
	return total
}

// Progress performs one explicit progress pass on the calling application
// thread: deferred tasks first (they may generate arrivals), then a poll
// sweep. Polling may itself defer new tasks (e.g. a strategy submitting an
// aggregated packet once the NIC drained), so the pass loops until the task
// queue is empty. Returns the number of events handled.
func (m *Manager) Progress(p *vtime.Proc) int {
	total := 0
	end := m.rec.Span("pioman", "progress")
	for {
		// Clear the notification flag before each sweep: arrivals landing
		// *during* the sweep (polling sleeps to charge costs, and events
		// fire meanwhile) re-set it and force another sweep, so nothing is
		// left undrained when the caller decides to block.
		m.notified = false
		n := m.runTasks(p, false)
		ev := m.pollOnce(p)
		m.appPolls.Inc()
		m.appEvents.Add(int64(ev))
		total += n + ev
		if m.noTasks() && !m.notified {
			break
		}
	}
	end()
	if total > 0 {
		m.Completion.Broadcast()
	}
	return total
}

// WaitUntil blocks the application thread p until done() is true.
//
// Without PIOMan this is the classic MPICH2 progress loop: poll, re-check,
// sleep on the arrival notification. With PIOMan the thread does no polling
// at all — it blocks on the completion condition, and the background thread
// (on an idle core) performs all protocol work, exactly as §3.3.2 describes
// for MPI_Wait.
func (m *Manager) WaitUntil(p *vtime.Proc, done func() bool) {
	if m.cfg.Enabled {
		for !done() {
			m.Completion.Wait(p)
		}
		return
	}
	for !done() {
		if m.Progress(p) > 0 {
			continue
		}
		if done() {
			return
		}
		m.work.Wait(p)
	}
}

// bgLoop is the PIOMan progress thread: woken by Notify/PostTask, it grabs
// an idle core, pays the reaction delay, and performs all pending work.
func (m *Manager) bgLoop(p *vtime.Proc) {
	for !m.stopped {
		if !m.notified && m.noTasks() {
			m.work.Wait(p)
			continue
		}
		if m.cfg.React > 0 {
			p.Sleep(m.cfg.React)
		}
		m.node.Acquire(p)
		end := m.rec.Span("pioman", "sweep")
		n, ev := 0, 0
		for {
			m.notified = false
			dn := m.runTasks(p, true)
			de := m.pollOnce(p)
			n += dn
			ev += de
			// Keep sweeping while anything happened: one source's events
			// may enable another's (e.g. an arrival parsed into the
			// library's buffers that the ANY_SOURCE probe then matches).
			if dn+de == 0 && m.noTasks() && !m.notified {
				break
			}
		}
		end()
		m.node.Release()
		m.bgPolls.Inc()
		m.bgEvents.Add(int64(ev))
		_ = n
		// Broadcast even when the sweep found no source events: a
		// notification may correspond to a request completed by an
		// engine-side event (e.g. a NIC send-completion), and blocked
		// threads re-check their predicates cheaply.
		m.Completion.Broadcast()
	}
	m.bgRunning = false
}

// Stop terminates the background thread (call at MPI finalize so the
// simulation can drain).
func (m *Manager) Stop() {
	m.stopped = true
	m.work.Broadcast()
}
