// Package pioman implements the I/O event manager of the PM2 suite (§2.2.2,
// §3.3): a centralized progress authority for one MPI process.
//
// Every pollable event source (the NewMadeleine network driver, the Nemesis
// shared-memory receive queue) registers with the Manager. Two progress
// regimes exist:
//
//   - Disabled (plain Nemesis / baseline MPIs): progress happens only when
//     application threads call Progress from inside MPI routines; blocking
//     waits poll in a loop.
//   - Enabled (PIOMan): background progress workers woken by arrival
//     notifications perform polling and deferred submission work on idle
//     cores, and application threads block on semaphore-like primitives
//     instead of busy-waiting (§3.3.2). Thread-safe progression costs a
//     per-event synchronization overhead (≈450 ns for shared memory, ≈2 µs
//     for the network — Fig. 6), charged on each background poll.
//
// # Multi-worker progression
//
// The Enabled regime runs Config.Workers background workers (default 1 —
// fully backward compatible), each a distinct vtime.Proc labeled
// pioman-0..N-1 for trace attribution. Work is sharded so workers do not
// duplicate each other's sweeps:
//
//   - Sources are assigned a shard at Register time, round-robin in
//     registration order; a worker's sweep polls only the sources whose
//     shard it owns (shard % Workers == worker id). Application-thread
//     Progress still polls everything.
//   - Deferred tasks carry a caller-chosen shard key (PostTaskShard): the
//     nonblocking-collective engine keys on its communicator context, so
//     one communicator's rounds stay on one worker's queue. NotifyShard
//     wakes only the owning worker; Notify wakes all of them.
//   - Idle workers steal: when a worker's queue backlog reaches stealMin,
//     posting broadcasts a steal invitation to the other workers, and a
//     worker that drained its own shard moves the oldest half of the most
//     loaded queue onto its own before sleeping. Tasks are independent
//     units (an op has at most one outstanding task), so migration is safe.
//
// Determinism contract: for a fixed Workers count the run is bit-identical
// across repetitions — workers are ordinary vtime procs, every wakeup,
// steal and core acquisition is ordered by the engine's (time, seq) order.
// Different Workers counts are different (equally deterministic) schedules.
package pioman

import (
	"repro/internal/marcel"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Class tells the manager which synchronization cost a source carries.
type Class int

const (
	// ClassShm marks an intra-node shared-memory source.
	ClassShm Class = iota
	// ClassNet marks an inter-node network source.
	ClassNet
)

// Source is a pollable event source.
type Source interface {
	// SourceName identifies the source in diagnostics.
	SourceName() string
	// Poll performs protocol work for any pending events. It returns the
	// number of events handled and the total CPU cost of handling them
	// (parsing, matching, copies). It must be cheap when nothing is pending.
	Poll() (events int, cost vtime.Duration)
}

// Task is deferred host work (e.g. eager submission chunks) that may be
// offloaded to the progress thread. Exactly one of Run / RunP must be set:
// RunP receives the proc executing the progress pass (application thread or
// PIOMan worker) so the task can itself issue time-charged operations — the
// nonblocking-collective engine uses it to start schedule rounds from
// progress context.
type Task struct {
	Cost vtime.Duration
	Run  func()
	RunP func(p *vtime.Proc)
}

// stealMin is the queue backlog at which a worker's queue becomes a steal
// target (and posting to it invites the other workers over). High enough
// that transient backlogs on a busy-but-healthy worker don't ping-pong
// tasks between queues; a storm concentrated on one shard blows past it
// immediately.
const stealMin = 16

// Config tunes the manager.
type Config struct {
	// Enabled selects the PIOMan regime (background progress workers).
	Enabled bool
	// Workers is the number of background progression workers (0 and 1 both
	// mean the classic single worker). Ignored unless Enabled: the polling
	// regime has no background procs to multiply.
	Workers int
	// SyncShm/SyncNet are per-event synchronization overheads charged when
	// Enabled (the Fig. 6 offsets).
	SyncShm vtime.Duration
	SyncNet vtime.Duration
	// React is the scheduling delay before a background worker reacts to a
	// notification.
	React vtime.Duration
	// Metrics, when set, registers the manager's statistics (poll and event
	// counts, split by application vs background thread, plus per-worker
	// breakdowns) under canonical names; nil keeps standalone counters.
	Metrics *trace.Registry
	// Rec, when set, records progress-pass trace events.
	Rec *trace.Recorder
}

// worker is one background progression worker: a task queue, a wakeup
// condition and per-worker statistics. Worker 0 exists even in the Disabled
// regime — its queue and condition are the polling path's.
type worker struct {
	id int

	// tasks is consumed through taskHead so popping reuses the backing
	// array (vacated slots are zeroed; a drained queue resets to [:0]) —
	// the deferred-round hot path posts and pops thousands of tasks.
	tasks    []Task
	taskHead int

	// work is signalled by Notify, PostTask and steal invitations; the
	// worker waits on it.
	work *vtime.Cond
	// notified means a source in this worker's shard may have a pending
	// event.
	notified bool

	polls  *trace.Counter
	events *trace.Counter
	ran    *trace.Counter
	steals *trace.Counter
}

// noTasks reports an empty deferred-task queue.
func (w *worker) noTasks() bool { return w.taskHead >= len(w.tasks) }

// backlog is the number of queued-but-unstarted tasks.
func (w *worker) backlog() int { return len(w.tasks) - w.taskHead }

// Manager is the per-process progress authority.
type Manager struct {
	e    *vtime.Engine
	node *marcel.Node
	cfg  Config

	sources []Source
	classes []Class
	shards  []int // sources[i] is polled by workers[shards[i]]
	rrNext  int   // next round-robin shard for Register (RegisterAt skips it)

	workers []*worker

	// sweeping counts workers currently inside a sweep. While it is
	// nonzero, sibling wake-ups are recorded in pendingWake and flushed
	// once when the last sweep ends: several completions landing in one
	// sweep then cost the woken worker a single sleep/wake transition
	// instead of one per completion (it would otherwise wake, drain one
	// task, sleep, and wake again for the next post).
	sweeping    int
	pendingWake []bool

	// Completion is broadcast whenever Poll completed protocol events;
	// blocked application threads re-check their predicates on it.
	Completion *vtime.Cond

	stopped bool

	rec *trace.Recorder

	// Aggregate stats, registered on the configured metrics registry
	// (standalone counters otherwise). Read through the accessor methods.
	bgPolls   *trace.Counter
	bgEvents  *trace.Counter
	bgTasks   *trace.Counter
	bgSteals  *trace.Counter
	appPolls  *trace.Counter
	appEvents *trace.Counter
}

// New returns a manager for one process living on node.
func New(e *vtime.Engine, node *marcel.Node, name string, cfg Config) *Manager {
	nw := cfg.Workers
	if nw < 1 || !cfg.Enabled {
		nw = 1
	}
	m := &Manager{
		e:          e,
		node:       node,
		cfg:        cfg,
		Completion: vtime.NewCond(e, name+": waiting for completion"),
		rec:        cfg.Rec,
		bgPolls:    cfg.Metrics.Counter(trace.CtrBgPolls),
		bgEvents:   cfg.Metrics.Counter(trace.CtrBgEvents),
		bgTasks:    cfg.Metrics.Counter(trace.CtrBgTasks),
		bgSteals:   cfg.Metrics.Counter(trace.CtrBgSteals),
		appPolls:   cfg.Metrics.Counter(trace.CtrAppPolls),
		appEvents:  cfg.Metrics.Counter(trace.CtrAppEvents),
	}
	for i := 0; i < nw; i++ {
		w := &worker{
			id:   i,
			work: vtime.NewCond(e, name+": pioman idle"),
		}
		if cfg.Enabled {
			// Fold the reaction delay into the wakeup itself: a sleeping
			// worker schedules one wake event at now+React instead of a
			// wake now plus a separate sleep, halving the per-notification
			// event cost without changing virtual timing.
			w.work.SetWakeDelay(cfg.React)
			w.polls = cfg.Metrics.Counter(trace.CtrWorkerPolls(i))
			w.events = cfg.Metrics.Counter(trace.CtrWorkerEvents(i))
			w.ran = cfg.Metrics.Counter(trace.CtrWorkerTasks(i))
			w.steals = cfg.Metrics.Counter(trace.CtrWorkerSteals(i))
		} else {
			w.polls, w.events, w.ran, w.steals =
				&trace.Counter{}, &trace.Counter{}, &trace.Counter{}, &trace.Counter{}
		}
		m.workers = append(m.workers, w)
	}
	m.pendingWake = make([]bool, nw)
	if cfg.Enabled {
		workersGauge := cfg.Metrics.Gauge(trace.GaugeWorkers)
		for i, w := range m.workers {
			w := w
			bp := e.Spawn(name+"/pioman-"+itoa(i), func(p *vtime.Proc) { m.workerLoop(p, w) })
			bp.SetLabel(trace.TidPiomanN(i))
			workersGauge.Inc()
		}
	}
	return m
}

// itoa formats small non-negative ints (worker ids) without strconv.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	return itoa(n/10) + itoa(n%10)
}

// BgPolls returns the number of background sweeps performed.
func (m *Manager) BgPolls() int64 { return m.bgPolls.Value() }

// BgEvents returns the number of events handled by background sweeps.
func (m *Manager) BgEvents() int64 { return m.bgEvents.Value() }

// BgTasks returns the number of deferred tasks run by background workers.
func (m *Manager) BgTasks() int64 { return m.bgTasks.Value() }

// BgSteals returns the number of tasks migrated between worker queues.
func (m *Manager) BgSteals() int64 { return m.bgSteals.Value() }

// AppPolls returns the number of application-thread progress passes.
func (m *Manager) AppPolls() int64 { return m.appPolls.Value() }

// AppEvents returns the number of events handled on application threads.
func (m *Manager) AppEvents() int64 { return m.appEvents.Value() }

// Enabled reports whether the background regime is active.
func (m *Manager) Enabled() bool { return m.cfg.Enabled }

// Workers returns the number of background progression workers (1 in the
// Disabled regime: the polling path's queue still lives on worker 0).
func (m *Manager) Workers() int { return len(m.workers) }

// shardOf folds an arbitrary shard key onto a worker index.
func (m *Manager) shardOf(key int) int {
	if key < 0 {
		key = -key
	}
	return key % len(m.workers)
}

// Register adds a source with its synchronization class and returns the
// shard it was assigned to (round-robin over registration order). Callers
// that route notifications hand the shard back to NotifyShard so only the
// owning worker wakes.
func (m *Manager) Register(s Source, c Class) int {
	shard := m.shardOf(m.rrNext)
	m.rrNext++
	return m.RegisterAt(s, c, shard)
}

// RegisterAt adds a source pinned onto a specific shard (folded onto a
// worker like any shard key) without consuming a round-robin slot. It is
// for sources whose progress cascades into another source's: if the two
// land on different workers, the event that makes the second pollable is
// handled by a worker that never polls it, and the cascade is lost. CH3
// pins its job engine onto its shm endpoint's shard for exactly this.
func (m *Manager) RegisterAt(s Source, c Class, shard int) int {
	shard = m.shardOf(shard)
	m.sources = append(m.sources, s)
	m.classes = append(m.classes, c)
	m.shards = append(m.shards, shard)
	return shard
}

// Notify tells the manager that any source may have a pending event. It is
// the mailbox mechanism of §3.3.2 in its broadcast form: every worker
// re-sweeps its shard. Arrival paths that know their source use NotifyShard.
func (m *Manager) Notify() {
	for _, w := range m.workers {
		w.notified = true
		m.wakeWorker(w)
	}
	m.notifyWaiters()
}

// NotifyShard tells the manager that a source in one shard may have a
// pending event, waking only the owning worker. Equivalent to Notify at
// Workers=1.
func (m *Manager) NotifyShard(key int) {
	w := m.workers[m.shardOf(key)]
	w.notified = true
	m.wakeWorker(w)
	m.notifyWaiters()
}

// wakeWorker wakes w, or — while a multi-worker sweep is in progress —
// defers the wake for the end-of-sweep flush. Deferral never loses work:
// the notified flag and task queue are already set when it is recorded,
// and a worker that is awake re-checks both before sleeping. Workers <= 1
// never defers, keeping the classic schedule bit-identical.
func (m *Manager) wakeWorker(w *worker) {
	if m.sweeping > 0 && len(m.workers) > 1 {
		m.pendingWake[w.id] = true
		return
	}
	w.work.Broadcast()
}

// flushWakes delivers the wake-ups deferred during a sweep, one broadcast
// per worker however many completions landed on it.
func (m *Manager) flushWakes() {
	for id, pending := range m.pendingWake {
		if pending {
			m.pendingWake[id] = false
			m.workers[id].work.Broadcast()
		}
	}
}

// notifyWaiters wakes blocked application threads on notification in the
// polling regime: without background workers the threads themselves poll,
// so they must wake to re-poll. Under PIOMan the owning worker's sweep
// broadcasts Completion instead — one wakeup per sweep, not per event.
func (m *Manager) notifyWaiters() {
	if !m.cfg.Enabled {
		m.Completion.Broadcast()
	}
}

// Completed wakes blocked application threads after a request finished in
// task or engine context — there is no progression work left for that
// request, so waking a worker would buy nothing but an empty sweep. The
// classic single-worker schedule keeps the historical two-hop wake (notify
// the worker, whose sweep re-broadcasts completion) so that Workers <= 1
// timing stays bit-identical; multi-worker managers broadcast the
// completion condition directly, which is where the per-sweep overhead of
// the extra workers would otherwise dominate.
func (m *Manager) Completed(key int) {
	if m.cfg.Enabled && len(m.workers) > 1 {
		m.Completion.Broadcast()
		return
	}
	m.NotifyShard(key)
}

// PostTask defers host work onto shard 0. Under PIOMan it is executed by a
// background worker (submission offload, §2.2.3); otherwise it runs at the
// next Progress call on the posting process's own time.
func (m *Manager) PostTask(t Task) { m.PostTaskShard(0, t) }

// PostTaskShard defers host work onto the worker owning key's shard. When
// the queue backlog crosses stealMin the other workers are invited to steal.
func (m *Manager) PostTaskShard(key int, t Task) {
	if (t.Run == nil) == (t.RunP == nil) {
		panic("pioman: Task needs exactly one of Run / RunP")
	}
	w := m.workers[m.shardOf(key)]
	w.tasks = append(w.tasks, t)
	if m.cfg.Enabled {
		m.wakeWorker(w)
		// Invite exactly once per drain cycle, on the crossing — a deep
		// window keeps the backlog above the threshold for thousands of
		// posts, and re-inviting on each would wake every sibling per post.
		if len(m.workers) > 1 && w.backlog() == stealMin {
			for _, o := range m.workers {
				if o != w {
					m.wakeWorker(o)
				}
			}
		}
	}
}

// anyNotified reports whether any worker has a pending notification.
func (m *Manager) anyNotified() bool {
	for _, w := range m.workers {
		if w.notified {
			return true
		}
	}
	return false
}

// allQueuesEmpty reports whether every worker's task queue is drained.
func (m *Manager) allQueuesEmpty() bool {
	for _, w := range m.workers {
		if !w.noTasks() {
			return false
		}
	}
	return true
}

// runTasks executes w's deferred tasks, charging their cost to p. Tasks may
// post further tasks while running; those landing on w are picked up in the
// same pass.
func (m *Manager) runTasks(p *vtime.Proc, w *worker, bg bool) int {
	n := 0
	for !w.noTasks() {
		t := w.tasks[w.taskHead]
		w.tasks[w.taskHead] = Task{}
		w.taskHead++
		if w.noTasks() {
			w.tasks = w.tasks[:0]
			w.taskHead = 0
		}
		if t.Cost > 0 {
			p.Sleep(t.Cost)
		}
		if t.RunP != nil {
			t.RunP(p)
		} else {
			t.Run()
		}
		n++
		if bg {
			m.bgTasks.Inc()
			w.ran.Inc()
		}
	}
	return n
}

func (m *Manager) syncCost(c Class) vtime.Duration {
	if !m.cfg.Enabled {
		return 0
	}
	if c == ClassShm {
		return m.cfg.SyncShm
	}
	return m.cfg.SyncNet
}

// pollOnce polls every source, charging per-event costs to p. Returns events
// handled. Application-thread progress passes use it: the calling thread is
// inside an MPI routine and drains everything.
func (m *Manager) pollOnce(p *vtime.Proc) int {
	total := 0
	for i, s := range m.sources {
		n, cost := s.Poll()
		if n > 0 {
			cost += vtime.Duration(n) * m.syncCost(m.classes[i])
			if cost > 0 {
				p.Sleep(cost)
			}
			total += n
		}
	}
	return total
}

// pollShard polls only the sources owned by w's shard — the worker-sweep
// form of pollOnce: N workers each sweep a disjoint source subset.
func (m *Manager) pollShard(p *vtime.Proc, w *worker) int {
	if len(m.workers) == 1 {
		return m.pollOnce(p)
	}
	total := 0
	for i, s := range m.sources {
		if m.shards[i] != w.id {
			continue
		}
		n, cost := s.Poll()
		if n > 0 {
			cost += vtime.Duration(n) * m.syncCost(m.classes[i])
			if cost > 0 {
				p.Sleep(cost)
			}
			total += n
		}
	}
	return total
}

// Progress performs one explicit progress pass on the calling application
// thread: deferred tasks first (they may generate arrivals), then a poll
// sweep over every source. Polling may itself defer new tasks (e.g. a
// strategy submitting an aggregated packet once the NIC drained), so the
// pass loops until every queue is empty. Returns the number of events
// handled.
func (m *Manager) Progress(p *vtime.Proc) int {
	total := 0
	end := m.rec.Span("pioman", "progress")
	for {
		// Clear the notification flags before each sweep: arrivals landing
		// *during* the sweep (polling sleeps to charge costs, and events
		// fire meanwhile) re-set them and force another sweep, so nothing is
		// left undrained when the caller decides to block.
		for _, w := range m.workers {
			w.notified = false
		}
		n := 0
		for _, w := range m.workers {
			n += m.runTasks(p, w, false)
		}
		ev := m.pollOnce(p)
		m.appPolls.Inc()
		m.appEvents.Add(int64(ev))
		total += n + ev
		if m.allQueuesEmpty() && !m.anyNotified() {
			break
		}
	}
	end()
	if total > 0 {
		m.Completion.Broadcast()
	}
	return total
}

// WaitUntil blocks the application thread p until done() is true.
//
// Without PIOMan this is the classic MPICH2 progress loop: poll, re-check,
// sleep on the arrival notification. With PIOMan the thread does no polling
// at all — it blocks on the completion condition, and the background workers
// (on idle cores) perform all protocol work, exactly as §3.3.2 describes
// for MPI_Wait.
func (m *Manager) WaitUntil(p *vtime.Proc, done func() bool) {
	if m.cfg.Enabled {
		for !done() {
			// Predicate-gated wait: completion broadcasts that cannot
			// satisfy done() skip this thread entirely (no wake event), so
			// an MPI_Waitall over a deep window wakes once — when its last
			// request finishes — not once per completion.
			m.Completion.WaitPred(p, done)
		}
		return
	}
	for !done() {
		if m.Progress(p) > 0 {
			continue
		}
		if done() {
			return
		}
		m.workers[0].work.Wait(p)
	}
}

// stealTarget returns the most loaded other worker whose backlog has
// reached stealMin (lowest id wins ties), or nil.
func (m *Manager) stealTarget(w *worker) *worker {
	var victim *worker
	for _, o := range m.workers {
		if o == w || o.backlog() < stealMin {
			continue
		}
		if victim == nil || o.backlog() > victim.backlog() {
			victim = o
		}
	}
	return victim
}

// trySteal moves the oldest half of the most loaded queue onto w's own.
// Returns whether anything was stolen. Tasks are independent units (an op
// has at most one outstanding task), so migration preserves correctness;
// taking from the head keeps the victim running its newest — likely still
// cache-hot — work.
func (m *Manager) trySteal(w *worker) bool {
	victim := m.stealTarget(w)
	if victim == nil {
		return false
	}
	k := (victim.backlog() + 1) / 2
	for i := 0; i < k; i++ {
		w.tasks = append(w.tasks, victim.tasks[victim.taskHead])
		victim.tasks[victim.taskHead] = Task{}
		victim.taskHead++
	}
	if victim.noTasks() {
		victim.tasks = victim.tasks[:0]
		victim.taskHead = 0
	}
	m.bgSteals.Add(int64(k))
	w.steals.Add(int64(k))
	return true
}

// workerLoop is one PIOMan progress worker: woken by Notify/PostTask (or a
// steal invitation), it grabs an idle core, pays the reaction delay, and
// performs all pending work in its shard — then steals from loaded siblings
// before going back to sleep.
func (m *Manager) workerLoop(p *vtime.Proc, w *worker) {
	multi := len(m.workers) > 1
	waited := false
	for !m.stopped {
		if !w.notified && w.noTasks() && !(multi && m.stealTarget(w) != nil) {
			w.work.Wait(p)
			waited = true
			continue
		}
		// A worker woken from Wait already paid React inside the wakeup
		// (SetWakeDelay); pay it explicitly only when work arrived while
		// the worker was still running.
		if !waited && m.cfg.React > 0 {
			p.Sleep(m.cfg.React)
		}
		waited = false
		m.node.Acquire(p)
		end := m.rec.Span("pioman", "sweep")
		m.sweeping++
		n, ev := 0, 0
		for {
			w.notified = false
			dn := m.runTasks(p, w, true)
			de := m.pollShard(p, w)
			n += dn
			ev += de
			// Keep sweeping while anything happened: one source's events
			// may enable another's (e.g. an arrival parsed into the
			// library's buffers that the ANY_SOURCE probe then matches).
			if dn+de == 0 && w.noTasks() && !w.notified {
				if multi && m.trySteal(w) {
					continue
				}
				break
			}
		}
		m.sweeping--
		if m.sweeping == 0 {
			m.flushWakes()
		}
		end()
		m.node.Release()
		m.bgPolls.Inc()
		m.bgEvents.Add(int64(ev))
		w.polls.Inc()
		w.events.Add(int64(ev))
		_ = n
		// Broadcast even when the sweep found no source events: a
		// notification may correspond to a request completed by an
		// engine-side event (e.g. a NIC send-completion), and blocked
		// threads re-check their predicates cheaply.
		m.Completion.Broadcast()
	}
}

// Stop terminates the background workers (call at MPI finalize so the
// simulation can drain).
func (m *Manager) Stop() {
	m.stopped = true
	for _, w := range m.workers {
		// Wake without the reaction delay: the worker only observes
		// stopped and exits, and finalize should not drift by React.
		w.work.SetWakeDelay(0)
		w.work.Broadcast()
	}
}
