package pioman

import (
	"testing"

	"repro/internal/marcel"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// multiSetup builds an Enabled manager with nw workers, a metrics registry
// and two registered net sources (round-robin shards 0 and 1).
func multiSetup(nw int) (*vtime.Engine, *Manager, *trace.Registry, []*fakeSource) {
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 8)
	reg := trace.NewRegistry()
	m := New(e, node, "p0", Config{Enabled: true, Workers: nw, Metrics: reg})
	srcs := []*fakeSource{
		{name: "s0", cost: 100},
		{name: "s1", cost: 100},
	}
	for _, s := range srcs {
		m.Register(s, ClassNet)
	}
	return e, m, reg, srcs
}

// TestWorkersClampedWhenDisabled: the Workers knob only multiplies
// background procs, so the polling regime (and Workers<1) stays on the
// single classic worker slot.
func TestWorkersClampedWhenDisabled(t *testing.T) {
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 4)
	if got := New(e, node, "p0", Config{Workers: 4}).Workers(); got != 1 {
		t.Fatalf("disabled manager has %d workers, want 1", got)
	}
	if got := New(e, node, "p1", Config{Enabled: true, Workers: 3}).Workers(); got != 3 {
		t.Fatalf("enabled Workers=3 manager has %d workers, want 3", got)
	}
}

// TestRegisterRoundRobinShards: sources land on consecutive shards so N
// workers split the polling load.
func TestRegisterRoundRobinShards(t *testing.T) {
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 4)
	m := New(e, node, "p0", Config{Enabled: true, Workers: 2})
	got := []int{
		m.Register(&fakeSource{name: "a"}, ClassNet),
		m.Register(&fakeSource{name: "b"}, ClassShm),
		m.Register(&fakeSource{name: "c"}, ClassNet),
	}
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registration %d assigned shard %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestShardedPollingSplitsSources: under Workers=2 each worker's sweep polls
// only its own shard, and NotifyShard wakes only the owning worker.
func TestShardedPollingSplitsSources(t *testing.T) {
	e, m, reg, srcs := multiSetup(2)
	e.At(0, func() {
		srcs[1].pending = 1
		m.NotifyShard(1)
	})
	e.At(10_000, func() { m.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.BgEvents(); got != 1 {
		t.Fatalf("bg events = %d, want 1", got)
	}
	if p0 := reg.Counter(trace.CtrWorkerPolls(0)).Value(); p0 != 0 {
		t.Errorf("worker 0 swept %d times on a shard-1 notify, want 0", p0)
	}
	if ev1 := reg.Counter(trace.CtrWorkerEvents(1)).Value(); ev1 != 1 {
		t.Errorf("worker 1 handled %d events, want 1", ev1)
	}
	if srcs[0].polled != 0 {
		t.Errorf("shard-0 source polled %d times by a shard-1 sweep, want 0", srcs[0].polled)
	}
}

// TestStealRebalancesLoadedQueue: a storm of tasks keyed onto one shard blows
// past stealMin; the other worker accepts the steal invitation and migrates
// part of the queue, with both aggregate and per-worker counters recording it.
func TestStealRebalancesLoadedQueue(t *testing.T) {
	e, m, reg, _ := multiSetup(2)
	const tasks = 3 * stealMin
	ran := 0
	e.At(0, func() {
		for i := 0; i < tasks; i++ {
			m.PostTaskShard(0, Task{Cost: 200, Run: func() { ran++ }})
		}
	})
	e.At(1_000_000, func() { m.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != tasks {
		t.Fatalf("ran %d tasks, want %d", ran, tasks)
	}
	if m.BgSteals() == 0 {
		t.Fatal("no tasks were stolen from the loaded shard-0 queue")
	}
	if got := reg.Counter(trace.CtrWorkerSteals(1)).Value(); got != m.BgSteals() {
		t.Errorf("worker 1 steals = %d, want all %d (only worker 1 was idle)", got, m.BgSteals())
	}
	t0 := reg.Counter(trace.CtrWorkerTasks(0)).Value()
	t1 := reg.Counter(trace.CtrWorkerTasks(1)).Value()
	if t0 == 0 || t1 == 0 || t0+t1 != tasks {
		t.Errorf("task split %d/%d, want both nonzero summing to %d", t0, t1, tasks)
	}
}

// TestMultiWorkerDeterminism: a fixed Workers count yields a bit-identical
// schedule — same virtual finish, same per-worker counters — across runs.
func TestMultiWorkerDeterminism(t *testing.T) {
	run := func() (vtime.Time, int64, int64) {
		e, m, reg, srcs := multiSetup(3)
		e.At(0, func() {
			for i := 0; i < 40; i++ {
				shard := i
				m.PostTaskShard(shard, Task{Cost: 150, Run: func() {}})
			}
			srcs[0].pending = 2
			m.Notify()
		})
		e.At(500_000, func() { m.Stop() })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), m.BgSteals(), reg.Counter(trace.CtrWorkerTasks(2)).Value()
	}
	aT, aS, aW := run()
	bT, bS, bW := run()
	if aT != bT || aS != bS || aW != bW {
		t.Fatalf("multi-worker run not deterministic: (%d,%d,%d) != (%d,%d,%d)",
			aT, aS, aW, bT, bS, bW)
	}
}
