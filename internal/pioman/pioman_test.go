package pioman

import (
	"testing"

	"repro/internal/marcel"
	"repro/internal/vtime"
)

// fakeSource is a scripted event source.
type fakeSource struct {
	name    string
	pending int
	cost    vtime.Duration
	polled  int
}

func (f *fakeSource) SourceName() string { return f.name }
func (f *fakeSource) Poll() (int, vtime.Duration) {
	f.polled++
	n := f.pending
	f.pending = 0
	return n, vtime.Duration(n) * f.cost
}

func setup(cfg Config) (*vtime.Engine, *marcel.Node, *Manager, *fakeSource) {
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 4)
	m := New(e, node, "p0", cfg)
	src := &fakeSource{name: "fake", cost: 100}
	m.Register(src, ClassNet)
	return e, node, m, src
}

func TestProgressChargesPollCost(t *testing.T) {
	e, _, m, src := setup(Config{})
	e.Spawn("app", func(p *vtime.Proc) {
		src.pending = 3
		n := m.Progress(p)
		if n != 3 {
			t.Errorf("Progress handled %d, want 3", n)
		}
		if p.Now() != 300 {
			t.Errorf("poll cost charged %d, want 300", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntilPollingMode(t *testing.T) {
	e, _, m, src := setup(Config{})
	done := false
	var finished vtime.Time
	e.Spawn("app", func(p *vtime.Proc) {
		m.WaitUntil(p, func() bool { return done })
		finished = p.Now()
	})
	// Event arrives at t=1000.
	e.At(1000, func() {
		src.pending = 1
		done = true
		m.Notify()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished < 1000 {
		t.Fatalf("wait finished at %d before event", finished)
	}
	if m.AppPolls() == 0 {
		t.Fatal("polling mode should poll on the app thread")
	}
}

func TestWaitUntilPIOManMode(t *testing.T) {
	cfg := Config{Enabled: true, SyncNet: 2000, React: 100}
	e, _, m, src := setup(cfg)
	done := false
	var finished vtime.Time
	e.Spawn("app", func(p *vtime.Proc) {
		m.WaitUntil(p, func() bool { return done })
		finished = p.Now()
		m.Stop()
	})
	e.At(1000, func() {
		src.pending = 1
		done = true
		m.Notify()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Background thread wakes at 1000 + react 100 + poll 100 + sync 2000.
	if finished != 3200 {
		t.Fatalf("finished at %d, want 3200", finished)
	}
	if m.AppPolls() != 0 {
		t.Fatal("PIOMan mode must not poll on the app thread")
	}
	if m.BgEvents() != 1 {
		t.Fatalf("bg events = %d, want 1", m.BgEvents())
	}
}

func TestSyncOverheadOnlyWhenEnabled(t *testing.T) {
	// Disabled: poll cost only.
	e, _, m, src := setup(Config{SyncNet: 2000})
	e.Spawn("app", func(p *vtime.Proc) {
		src.pending = 1
		m.Progress(p)
		if p.Now() != 100 {
			t.Errorf("disabled manager charged %d, want 100", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShmVsNetSyncClasses(t *testing.T) {
	cfg := Config{Enabled: true, SyncShm: 450, SyncNet: 2000, React: 0}
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 4)
	m := New(e, node, "p0", cfg)
	shm := &fakeSource{name: "shm", cost: 50}
	m.Register(shm, ClassShm)
	var bgDone vtime.Time
	e.At(0, func() {
		shm.pending = 1
		m.Notify()
	})
	e.At(10_000, func() {
		bgDone = vtime.Time(m.BgEvents())
		m.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bgDone != 1 {
		t.Fatalf("bg handled %d, want 1", bgDone)
	}
	// Check the charged time: the bg thread should have slept 50+450ns.
	// (Indirectly verified: BgPolls == 1.)
	if m.BgPolls() != 1 {
		t.Fatalf("bg polls = %d, want 1", m.BgPolls())
	}
}

func TestPostTaskDeferredWithoutPIOMan(t *testing.T) {
	e, _, m, _ := setup(Config{})
	ran := false
	var ranAt vtime.Time
	e.Spawn("app", func(p *vtime.Proc) {
		m.PostTask(Task{Cost: 500, Run: func() { ran = true }})
		if ran {
			t.Error("task ran synchronously at post")
		}
		p.Sleep(1000)
		m.Progress(p)
		ranAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task never ran")
	}
	if ranAt != 1500 {
		t.Fatalf("task completed at %d, want 1500 (cost charged to caller)", ranAt)
	}
}

func TestPostTaskOffloadedWithPIOMan(t *testing.T) {
	cfg := Config{Enabled: true, React: 0}
	e, _, m, _ := setup(cfg)
	var ranAt vtime.Time
	e.At(0, func() {
		m.PostTask(Task{Cost: 500, Run: func() { ranAt = e.Now() }})
	})
	e.At(5000, func() { m.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ranAt != 500 {
		t.Fatalf("offloaded task ran at %d, want 500 (bg executes immediately)", ranAt)
	}
	if m.BgTasks() != 1 {
		t.Fatalf("bg tasks = %d, want 1", m.BgTasks())
	}
}

func TestBackgroundThreadWaitsForIdleCore(t *testing.T) {
	// One core, occupied by compute until t=10000: the bg thread cannot
	// progress until the core frees.
	cfg := Config{Enabled: true, React: 0}
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 1)
	m := New(e, node, "p0", cfg)
	src := &fakeSource{name: "net", cost: 100}
	m.Register(src, ClassNet)
	var handled vtime.Time
	e.Spawn("app", func(p *vtime.Proc) {
		node.Compute(p, 10_000)
	})
	e.At(1000, func() {
		src.pending = 1
		m.Notify()
	})
	e.At(20_000, func() {
		m.Stop()
	})
	prev := vtime.NewCond(e, "x")
	_ = prev
	e.Spawn("watch", func(p *vtime.Proc) {
		m.Completion.Wait(p)
		handled = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if handled < 10_000 {
		t.Fatalf("bg progressed at %d while the only core was busy", handled)
	}
}

func TestStopTerminatesBg(t *testing.T) {
	cfg := Config{Enabled: true}
	e, _, m, _ := setup(cfg)
	e.At(100, func() { m.Stop() })
	if err := e.Run(); err != nil {
		t.Fatalf("engine did not drain after Stop: %v", err)
	}
}

func TestDisabledManagerHasNoBgThread(t *testing.T) {
	e, _, m, _ := setup(Config{})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.BgPolls() != 0 || m.Enabled() {
		t.Fatal("disabled manager ran a bg thread")
	}
}

func TestNotifyWakesPollingWaiter(t *testing.T) {
	e, _, m, src := setup(Config{})
	var finished vtime.Time
	matched := false
	e.Spawn("app", func(p *vtime.Proc) {
		m.WaitUntil(p, func() bool { return matched })
		finished = p.Now()
	})
	// Two notifications; only the second satisfies the predicate, proving
	// the waiter re-polls on every notify.
	e.At(100, func() { m.Notify() })
	e.At(900, func() {
		src.pending = 1
		matched = true
		m.Notify()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished < 900 {
		t.Fatalf("finished at %d, want >= 900", finished)
	}
}
