// Package nemesis implements the Nemesis communication channel's intra-node
// layer (§2.1.1): per-process free/receive queues of fixed-size shared-memory
// cells with a virtual-time cost model layered over the real lock-free
// queues of package shmq.
//
// Message payloads genuinely move through cells (fragmented when larger than
// one cell), senders genuinely block when the free queue drains (Nemesis
// flow control), and receivers genuinely poll a single receive queue for all
// local peers. Costs charged: queue operations, cache-line visibility delay,
// and memory-bandwidth-limited copies in and out of cells — the copies whose
// avoidance for *network* messages motivates the paper's CH3 bypass (§2.1.3).
package nemesis

import (
	"fmt"

	"repro/internal/shmq"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Options is the shared-memory cost/shape model.
type Options struct {
	// NumCells and CellPayload size each process's cell pool.
	NumCells    int
	CellPayload int
	// MemBW is the node's copy bandwidth in bytes/sec.
	MemBW float64
	// EnqueueCost / DequeueCost are per queue operation.
	EnqueueCost vtime.Duration
	DequeueCost vtime.Duration
	// Visibility is the cache-coherence delay before an enqueued cell is
	// seen by the peer's poll.
	Visibility vtime.Duration
	// Rec, when set, records cell-queue trace events.
	Rec *trace.Recorder
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.NumCells == 0 {
		o.NumCells = 64
	}
	if o.CellPayload == 0 {
		o.CellPayload = 32 << 10
	}
	if o.MemBW == 0 {
		o.MemBW = 4e9
	}
	if o.EnqueueCost == 0 {
		o.EnqueueCost = 25
	}
	if o.DequeueCost == 0 {
		o.DequeueCost = 25
	}
	if o.Visibility == 0 {
		o.Visibility = 100
	}
	return o
}

// Handler consumes one arrived cell's header and payload (CH3 matching and
// user-buffer copies happen there); it returns the extra host cost incurred.
type Handler func(hdr shmq.Header, payload []byte) vtime.Duration

// Endpoint is one process's attachment to the node's shared memory.
type Endpoint struct {
	e    *vtime.Engine
	rank int
	opt  Options

	pool  *shmq.Pool
	peers map[int]*Endpoint

	handler Handler
	notify  func()

	// Stats.
	CellsSent int64
	CellsRecv int64
	SendStall int64 // times a sender found its free queue empty
}

// NewEndpoint creates the endpoint for rank with its cell pool.
func NewEndpoint(e *vtime.Engine, rank int, opt Options) (*Endpoint, error) {
	opt = opt.withDefaults()
	pool, err := shmq.NewPool(opt.NumCells, opt.CellPayload)
	if err != nil {
		return nil, err
	}
	return &Endpoint{
		e: e, rank: rank, opt: opt, pool: pool,
		peers:  map[int]*Endpoint{},
		notify: func() {},
	}, nil
}

// Rank returns the owning rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Options returns the active cost model.
func (ep *Endpoint) Options() Options { return ep.opt }

// ConnectLocal registers a same-node peer (both directions must be
// connected by the caller).
func (ep *Endpoint) ConnectLocal(peer *Endpoint) {
	if peer.rank == ep.rank {
		panic("nemesis: connecting endpoint to itself")
	}
	ep.peers[peer.rank] = peer
}

// SetHandler installs the arrival consumer (the CH3 layer).
func (ep *Endpoint) SetHandler(h Handler) { ep.handler = h }

// SetNotify installs the arrival notification hook. This is the mailbox
// mechanism of §3.3.2: instead of Nemesis busy-polling, the notification
// tells PIOMan that the receive-queue "counter" moved.
func (ep *Endpoint) SetNotify(n func()) { ep.notify = n }

// MaxFragment returns the largest payload one cell carries.
func (ep *Endpoint) MaxFragment() int { return ep.opt.CellPayload }

// TrySendFragment copies one fragment (len(frag) <= CellPayload) into a free
// cell and enqueues it on dst's receive queue. It returns the host cost to
// charge to the caller and whether a cell was available; on false the caller
// must make progress (so the receiver can recycle cells) and retry — this is
// Nemesis flow control.
func (ep *Endpoint) TrySendFragment(dst int, hdr shmq.Header, frag []byte) (vtime.Duration, bool) {
	peer, ok := ep.peers[dst]
	if !ok {
		panic(fmt.Sprintf("nemesis[%d]: no local peer %d", ep.rank, dst))
	}
	cell := ep.pool.GetFree()
	if cell == nil {
		ep.SendStall++
		return 0, false
	}
	hdr.Src = int32(ep.rank)
	cell.Hdr = hdr
	cell.SetPayload(frag)
	peer.pool.Recv.Enqueue(cell)
	ep.CellsSent++
	ep.opt.Rec.Instant("nemesis", "cell-send",
		trace.Int64("dst", int64(dst)), trace.Int64("bytes", int64(len(frag))))
	cost := ep.opt.EnqueueCost + ep.opt.DequeueCost + copyCost(len(frag), ep.opt.MemBW)
	notifyPeer := peer
	ep.e.After(ep.opt.Visibility, func() { notifyPeer.notify() })
	return cost, true
}

// SourceName implements pioman.Source.
func (ep *Endpoint) SourceName() string { return fmt.Sprintf("shm[%d]", ep.rank) }

// Poll implements pioman.Source: it drains the receive queue, hands each
// cell to the handler and recycles the cell to its owner's free queue.
func (ep *Endpoint) Poll() (int, vtime.Duration) {
	events := 0
	var cost vtime.Duration
	for {
		cell := ep.pool.Recv.Dequeue()
		if cell == nil {
			break
		}
		events++
		ep.CellsRecv++
		cost += ep.opt.DequeueCost
		if ep.handler == nil {
			panic(fmt.Sprintf("nemesis[%d]: cell arrived with no handler", ep.rank))
		}
		cost += ep.handler(cell.Hdr, cell.Payload())
		owner := ep.peers[int(cell.Hdr.Src)]
		if owner == nil {
			panic(fmt.Sprintf("nemesis[%d]: cell from unknown peer %d", ep.rank, cell.Hdr.Src))
		}
		owner.pool.Release(cell)
		cost += ep.opt.EnqueueCost
		// Releasing a cell may unblock a stalled sender.
		owner.notify()
	}
	if events > 0 {
		ep.opt.Rec.Instant("nemesis", "cells-drained",
			trace.Int64("cells", int64(events)))
	}
	return events, cost
}

// FreeCells reports how many cells remain in this endpoint's free queue
// (test/diagnostic helper; counts by draining and refilling would perturb
// state, so this walks the real queue non-destructively is impossible —
// instead we track via pool counts).
func (ep *Endpoint) FreeCells() int {
	// Drain and refill to count: safe because only the owner touches Free.
	var cells []*shmq.Cell
	for {
		c := ep.pool.GetFree()
		if c == nil {
			break
		}
		cells = append(cells, c)
	}
	for _, c := range cells {
		ep.pool.Free.Enqueue(c)
	}
	return len(cells)
}

func copyCost(n int, bw float64) vtime.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / bw * 1e9)
}
