package nemesis

import (
	"bytes"
	"testing"

	"repro/internal/shmq"
	"repro/internal/vtime"
)

func pair(t *testing.T, opt Options) (*vtime.Engine, *Endpoint, *Endpoint) {
	t.Helper()
	e := vtime.NewEngine()
	a, err := NewEndpoint(e, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint(e, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	a.ConnectLocal(b)
	b.ConnectLocal(a)
	return e, a, b
}

func TestFragmentDelivery(t *testing.T) {
	e, a, b := pair(t, Options{})
	var gotHdr shmq.Header
	var gotPayload []byte
	b.SetHandler(func(h shmq.Header, p []byte) vtime.Duration {
		gotHdr = h
		gotPayload = append([]byte(nil), p...)
		return 0
	})
	e.At(0, func() {
		cost, ok := a.TrySendFragment(1, shmq.Header{Tag: 5, MsgLen: 3}, []byte("abc"))
		if !ok || cost <= 0 {
			t.Errorf("send cost=%d ok=%v", cost, ok)
		}
	})
	e.At(1000, func() {
		n, cost := b.Poll()
		if n != 1 {
			t.Errorf("poll events = %d, want 1", n)
		}
		if cost <= 0 {
			t.Error("poll cost should be positive")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotHdr.Src != 0 || gotHdr.Tag != 5 || string(gotPayload) != "abc" {
		t.Fatalf("hdr=%+v payload=%q", gotHdr, gotPayload)
	}
}

func TestCellRecycling(t *testing.T) {
	e, a, b := pair(t, Options{NumCells: 2, CellPayload: 8})
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	e.At(0, func() {
		// Exhaust a's free queue.
		if _, ok := a.TrySendFragment(1, shmq.Header{}, []byte("x")); !ok {
			t.Error("first send failed")
		}
		if _, ok := a.TrySendFragment(1, shmq.Header{}, []byte("y")); !ok {
			t.Error("second send failed")
		}
		if _, ok := a.TrySendFragment(1, shmq.Header{}, []byte("z")); ok {
			t.Error("third send should stall (no free cells)")
		}
		if a.SendStall != 1 {
			t.Errorf("SendStall = %d, want 1", a.SendStall)
		}
	})
	e.At(1000, func() {
		b.Poll() // recycles both cells to a
		if _, ok := a.TrySendFragment(1, shmq.Header{}, []byte("z")); !ok {
			t.Error("send after recycle failed")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyOnVisibility(t *testing.T) {
	opt := Options{Visibility: 250}
	e, a, b := pair(t, opt)
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	var notifiedAt vtime.Time = -1
	b.SetNotify(func() {
		if notifiedAt < 0 {
			notifiedAt = e.Now()
		}
	})
	e.At(100, func() { a.TrySendFragment(1, shmq.Header{}, []byte("n")) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if notifiedAt != 350 {
		t.Fatalf("notified at %d, want 350 (send+visibility)", notifiedAt)
	}
}

func TestReleaseNotifiesOwnerForFlowControl(t *testing.T) {
	e, a, b := pair(t, Options{NumCells: 1, CellPayload: 8})
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	ownerNotified := 0
	a.SetNotify(func() { ownerNotified++ })
	e.At(0, func() { a.TrySendFragment(1, shmq.Header{}, []byte("a")) })
	e.At(500, func() { b.Poll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ownerNotified == 0 {
		t.Fatal("cell release must notify owner (stalled senders retry)")
	}
}

func TestCopyCostScalesWithSize(t *testing.T) {
	e, a, b := pair(t, Options{MemBW: 1e9}) // 1 ns/byte
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	var small, large vtime.Duration
	e.At(0, func() {
		small, _ = a.TrySendFragment(1, shmq.Header{}, make([]byte, 64))
		large, _ = a.TrySendFragment(1, shmq.Header{}, make([]byte, 4096))
	})
	e.At(10, func() { b.Poll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if large-small < 4000 {
		t.Fatalf("copy cost small=%d large=%d; expected ~4032ns gap", small, large)
	}
}

func TestHandlerCostPropagates(t *testing.T) {
	e, a, b := pair(t, Options{})
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 777 })
	e.At(0, func() { a.TrySendFragment(1, shmq.Header{}, []byte("q")) })
	e.At(10, func() {
		_, cost := b.Poll()
		if cost < 777 {
			t.Errorf("poll cost %d does not include handler cost", cost)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPollEmptyIsCheap(t *testing.T) {
	e, _, b := pair(t, Options{})
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	e.At(0, func() {
		n, cost := b.Poll()
		if n != 0 || cost != 0 {
			t.Errorf("empty poll = (%d, %d)", n, cost)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplePeersOneRecvQueue(t *testing.T) {
	e := vtime.NewEngine()
	var eps []*Endpoint
	for i := 0; i < 3; i++ {
		ep, err := NewEndpoint(e, i, Options{})
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].ConnectLocal(eps[j])
			}
		}
	}
	var srcs []int32
	eps[2].SetHandler(func(h shmq.Header, p []byte) vtime.Duration {
		srcs = append(srcs, h.Src)
		return 0
	})
	e.At(0, func() {
		eps[0].TrySendFragment(2, shmq.Header{}, []byte("from0"))
		eps[1].TrySendFragment(2, shmq.Header{}, []byte("from1"))
	})
	e.At(10, func() {
		n, _ := eps[2].Poll()
		if n != 2 {
			t.Errorf("single receive queue should yield both cells, got %d", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 || srcs[0] != 0 || srcs[1] != 1 {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestPayloadIntegrityAcrossRecycle(t *testing.T) {
	e, a, b := pair(t, Options{NumCells: 1, CellPayload: 16})
	var got [][]byte
	b.SetHandler(func(h shmq.Header, p []byte) vtime.Duration {
		got = append(got, append([]byte(nil), p...))
		return 0
	})
	e.At(0, func() { a.TrySendFragment(1, shmq.Header{}, []byte("first")) })
	e.At(100, func() { b.Poll() })
	e.At(200, func() { a.TrySendFragment(1, shmq.Header{}, []byte("second")) })
	e.At(300, func() { b.Poll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], []byte("first")) || !bytes.Equal(got[1], []byte("second")) {
		t.Fatalf("got %q", got)
	}
}

func TestSelfConnectPanics(t *testing.T) {
	e := vtime.NewEngine()
	a, _ := NewEndpoint(e, 0, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ConnectLocal(a)
}

func TestFreeCellsDiagnostic(t *testing.T) {
	e, a, b := pair(t, Options{NumCells: 4, CellPayload: 8})
	b.SetHandler(func(shmq.Header, []byte) vtime.Duration { return 0 })
	if a.FreeCells() != 4 {
		t.Fatalf("FreeCells = %d, want 4", a.FreeCells())
	}
	e.At(0, func() {
		a.TrySendFragment(1, shmq.Header{}, []byte("x"))
		if a.FreeCells() != 3 {
			t.Errorf("FreeCells = %d, want 3", a.FreeCells())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
