package coll

// This file holds the segmented (pipelined) large-message builders: the
// payload is split into S pipeline segments and the rounds carry
// per-segment transfers so segment k+1 moves while segment k is being
// forwarded or reduced on the next rank. The schedule model needs no new
// primitive kinds for this — segmentation is purely a round-program shape —
// which is the point: the same schedules execute blocking (ExecBlocking
// turns each send+recv round into a SendRecvT exchange) and nonblocking,
// where every per-segment round is another in-flight operation for PIOMan
// to progress. That is exactly the paper's overlap story: the more
// independent transfers the progress engine can see, the more of the
// collective advances while the application computes.
//
// Three builders live here:
//
//   - BuildBcastChain: the pipelined chain broadcast (the large-message
//     workhorse of Open MPI's tuned tables) — ranks form a chain in
//     root-relative order and forward segment k downstream while receiving
//     segment k+1, so the pipeline fills in p-1 segment times and then
//     streams;
//   - BuildBcastSegBinomial: the segmented binomial tree — segments flow
//     down the binomial tree back to back, with each interior node's
//     receive of segment k+1 overlapped (SendRecvT) with its first forward
//     of segment k;
//   - BuildAllreduceSegRing: the segmented ring allreduce — a ring
//     reduce-scatter over per-rank windows followed by a ring allgather
//     (prefixSums windows, as the vector builders use), each window moved
//     in pipeline segments so the local reduction of one segment overlaps
//     the transfer of the next across ranks.
//
// Segment size arrives through Args.Seg (resolved by KeyFor: Tuning's
// SegBytes > table entry seg > DefSegBytes); every builder treats a
// non-positive value as DefSegBytes so direct construction — the
// conformance harness builds with a zero Args — still works.

// segBounds splits [0, n) into ascending segment boundaries of at most seg
// bytes each (the last segment takes the remainder). There is always at
// least one segment, so zero-length payloads still compile the one-segment
// schedule and keep the collective's synchronization.
func segBounds(n, seg int) []int {
	if seg <= 0 {
		seg = DefSegBytes
	}
	bounds := []int{0}
	for off := seg; off < n; off += seg {
		bounds = append(bounds, off)
	}
	return append(bounds, n)
}

// BuildBcastChain compiles the pipelined chain broadcast: ranks order
// themselves root, root+1, ..., root-1 and each forwards segment k to its
// successor while receiving segment k+1 from its predecessor (one
// SendRecvT round per segment once the pipe is full). The critical path
// carries n·(1 + (p-2)/S) bytes instead of the binomial tree's n·log2(p),
// which is why the chain wins for large payloads despite its p-1 latency
// terms.
func BuildBcastChain(rank, size, root int, data []byte, seg int) *Schedule {
	return BuildBcastChainStriped(rank, size, root, data, seg, Striping{})
}

// BuildBcastChainStriped is BuildBcastChain with the chain's per-segment
// forwards dealt across rails (see stripe.go); the zero Striping compiles
// the identical unstriped schedule.
func BuildBcastChainStriped(rank, size, root int, data []byte, seg int, st Striping) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	segs := segBounds(len(data), seg)
	S := len(segs) - 1
	vr := (rank - root + size) % size
	prev := (rank - 1 + size) % size
	next := (rank + 1) % size
	for k := 0; k <= S; k++ {
		rd := Round{}
		if vr < size-1 && k >= 1 {
			rd.Comm = append(rd.Comm, sendP(next, data[segs[k-1]:segs[k]]))
		}
		if vr > 0 && k < S {
			rd.Comm = append(rd.Comm, recvP(prev, data[segs[k]:segs[k+1]]))
		}
		if len(rd.Comm) > 0 {
			s.Rounds = append(s.Rounds, rd)
		}
	}
	stampRails(s, 0, st)
	return s
}

// BuildBcastSegBinomial compiles the segmented binomial broadcast: the
// usual binomial tree (over root-relative ranks), but segments stream down
// it back to back — an interior node forwards segment k to its subtrees
// while already receiving segment k+1 from its parent (the receive rides
// the first child round as a SendRecvT). Latency stays logarithmic like
// the monolithic binomial tree, but a node's children stop waiting for the
// whole payload to land before the forwarding starts.
func BuildBcastSegBinomial(rank, size, root int, data []byte, seg int) *Schedule {
	return BuildBcastSegBinomialStriped(rank, size, root, data, seg, Striping{})
}

// BuildBcastSegBinomialStriped is BuildBcastSegBinomial with each node's
// per-segment forwards dealt across rails — consecutive child sends ride
// different rails, so an interior node's fan-out streams in parallel over
// the stack. The zero Striping compiles the identical unstriped schedule.
func BuildBcastSegBinomialStriped(rank, size, root int, data []byte, seg int, st Striping) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	segs := segBounds(len(data), seg)
	S := len(segs) - 1
	segSl := func(k int) []byte { return data[segs[k]:segs[k+1]] }

	vr := (rank - root + size) % size
	parent := -1
	mask := 1
	for mask < size {
		if vr&mask != 0 {
			parent = (vr - mask + root) % size
			break
		}
		mask <<= 1
	}
	var children []int // decreasing-mask order, the binomial forward order
	for cm := mask >> 1; cm > 0; cm >>= 1 {
		if vr+cm < size {
			children = append(children, (vr+cm+root)%size)
		}
	}

	if parent >= 0 {
		rd := s.round()
		rd.Comm = append(rd.Comm, recvP(parent, segSl(0)))
	}
	for k := 0; k < S; k++ {
		if len(children) == 0 {
			// Leaf: nothing to forward, just keep draining segments.
			if parent >= 0 && k+1 < S {
				rd := s.round()
				rd.Comm = append(rd.Comm, recvP(parent, segSl(k+1)))
			}
			continue
		}
		for ci, child := range children {
			rd := s.round()
			rd.Comm = append(rd.Comm, sendP(child, segSl(k)))
			if ci == 0 && parent >= 0 && k+1 < S {
				rd.Comm = append(rd.Comm, recvP(parent, segSl(k+1)))
			}
		}
	}
	stampRails(s, 0, st)
	return s
}

// BuildAllreduceSegRing compiles the segmented ring allreduce: the vector
// is split into p near-uniform windows (prefixSums, as the reduce-scatter
// builders use), a p-1 step ring reduce-scatter leaves rank r owning the
// fully reduced window (r+1) mod p, and a p-1 step ring allgather streams
// the reduced windows back around. Each window additionally moves in
// pipeline segments of at most seg bytes, so the elementwise reduction of
// segment l overlaps the transfer of segment l+1 on the neighbouring rank.
// Bandwidth-optimal (~2n elements per rank, like Rabenseifner) at any rank
// count, power of two or not. Commutative op only.
func BuildAllreduceSegRing(rank, size int, x []float64, op Op, seg int) *Schedule {
	return BuildAllreduceSegRingStriped(rank, size, x, op, seg, Striping{})
}

// BuildAllreduceSegRingStriped is BuildAllreduceSegRing with the ring's
// per-sub-segment sends dealt across rails; the zero Striping compiles the
// identical unstriped schedule.
func BuildAllreduceSegRingStriped(rank, size int, x []float64, op Op, seg int, st Striping) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	n := len(x)
	counts := make([]int, size)
	for r := range counts {
		counts[r] = n / size
		if r < n%size {
			counts[r]++
		}
	}
	win := prefixSums(counts)

	// L sub-segments per window, sized so no sub-segment exceeds seg bytes.
	if seg <= 0 {
		seg = DefSegBytes
	}
	segElems := seg / 8
	if segElems < 1 {
		segElems = 1
	}
	L := 1
	if counts[0] > 0 {
		L = (counts[0] + segElems - 1) / segElems
	}
	// sub returns the element window of sub-segment l of window w
	// (near-uniform integer split — globally agreed, so elision of empty
	// sub-segments is symmetric on both ends of a transfer).
	sub := func(w, l int) (lo, hi int) {
		c := counts[w]
		return win[w] + l*c/L, win[w] + (l+1)*c/L
	}
	// The near-uniform split yields sub-segments of floor(c/L) or ceil(c/L)
	// elements, and counts[0] is the largest window, so the scratch needs
	// exactly ceil(counts[0]/L) elements.
	rbuf := make([]byte, 8*((counts[0]+L-1)/L))
	right := (rank + 1) % size
	left := (rank - 1 + size) % size

	exchange := func(ws, wr int, land func(lo, hi int) Prim) {
		for l := 0; l < L; l++ {
			sLo, sHi := sub(ws, l)
			rLo, rHi := sub(wr, l)
			if sHi == sLo && rHi == rLo {
				continue
			}
			rd := s.round()
			if sHi > sLo {
				rd.Comm = append(rd.Comm, sendF64(right, x[sLo:sHi]))
			}
			if rHi > rLo {
				rd.Comm = append(rd.Comm, recvP(left, rbuf[:8*(rHi-rLo)]))
				rd.Local = append(rd.Local, land(rLo, rHi))
			}
		}
	}

	// Phase 1: ring reduce-scatter. Step t sends window rank-t and folds
	// the incoming window rank-t-1 into x, so after p-1 steps rank owns the
	// fully reduced window (rank+1) mod p.
	for t := 0; t < size-1; t++ {
		ws := ((rank-t)%size + size) % size
		wr := ((rank-t-1)%size + size) % size
		exchange(ws, wr, func(lo, hi int) Prim { return reduceP(x[lo:hi], rbuf, op) })
	}
	// Phase 2: ring allgather. Step t streams window rank+1-t onward and
	// lands the incoming reduced window rank-t.
	for t := 0; t < size-1; t++ {
		ws := ((rank+1-t)%size + size) % size
		wr := ((rank-t)%size + size) % size
		exchange(ws, wr, func(lo, hi int) Prim { return decodeP(x[lo:hi], rbuf) })
	}
	stampRails(s, 0, st)
	return s
}
