package coll

// This file holds the data-driven side of algorithm selection: a Table maps
// payload sizes to algorithms per operation, replacing the hard-coded
// MPICH-flavoured thresholds when present. Tables are calibrated per MPI
// stack from collbench sweeps (internal/coll/tune, cmd/colltune) — the
// paper's point is exactly that the communication subsystem underneath
// MPICH2 moves the crossover points, so thresholds tuned for one stack
// leave performance on the table on another.
//
// The format is deliberately minimal: per operation, an ascending list of
// inclusive byte bounds, the last one open-ended. Bytes are in the
// *selector's* size space (payloadBytes in registry.go): the full buffer
// for bcast, 8·len(x) for the reductions, the total gathered payload for
// allgather/allgatherv. Selection safety for vector ops is unchanged — the
// selector still feeds the table only globally agreed byte counts, so two
// ranks can never disagree on a lookup.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// TableEntry is one threshold step: Algo applies to payloads of up to
// MaxBytes bytes (inclusive). A negative MaxBytes means unbounded and must
// terminate the list. For segmented algorithms Seg records the calibrated
// pipeline segment size in bytes (0 = DefSegBytes); validation rejects a
// seg on a non-segmented algorithm as dead config. For rail-striped
// algorithms Stripe records the calibrated rail-stripe width (0 = no
// striping; widths beyond the running stack's rail count clamp at
// resolution, see Tuning.StripeFor); validation likewise rejects a stripe
// on an algorithm that cannot stripe.
type TableEntry struct {
	MaxBytes int  `json:"max_bytes"`
	Algo     Algo `json:"algo"`
	Seg      int  `json:"seg,omitempty"`
	Stripe   int  `json:"stripe,omitempty"`
}

// NPBand scopes one list of byte-threshold entries to a rank-count range:
// the band applies to communicators of up to MaxNP ranks (inclusive), with
// a negative MaxNP meaning unbounded (and terminating the list). Bands are
// how a calibration records its own validity range — crossovers measured at
// NP=8 say nothing about NP=4096, where log-depth fan-out, tree height and
// payload aggregation all shift, so a lookup beyond the last band falls
// back to the (rank-count-aware) built-in defaults instead of silently
// stretching a small-scale calibration three orders of magnitude.
type NPBand struct {
	MaxNP   int          `json:"max_np"`
	Entries []TableEntry `json:"entries"`
}

// Table holds calibrated per-operation selection thresholds for one stack.
// Ops is keyed by OpKind name ("bcast", "allreduce", ...); operations
// absent from both maps keep the built-in default selection.
type Table struct {
	// Stack names the MPI stack the table was calibrated on
	// (cluster.Stack.Name). Tuning.Validate rejects a known mismatch with
	// the stack selection runs under — see that method for the deliberate
	// cross-application escape hatch.
	Stack string `json:"stack"`
	// Ops holds unbanded entry lists: thresholds applied at every rank
	// count. The legacy (pre-banding) format; colltune now always emits
	// Bands, but hand-written unbanded tables keep loading.
	Ops map[string][]TableEntry `json:"ops,omitempty"`
	// Bands holds rank-count-banded entry lists, ascending by MaxNP. An
	// operation may appear in Ops or Bands, not both. A rank count beyond
	// the last band deliberately misses: the calibration does not claim
	// validity there.
	Bands map[string][]NPBand `json:"bands,omitempty"`
	// TwoLevelMin calibrates the flat-vs-two-level crossover per operation:
	// when the caller requests the hierarchical variant, two-level is only
	// selected for payloads strictly above this many selector-space bytes —
	// below it the flat selection applies (leader aggregation costs an extra
	// intra-node phase that small payloads never amortize). A negative value
	// means two-level never won on the calibrated topology; an absent entry
	// leaves the structural default (two-level whenever requested).
	TwoLevelMin map[string]int `json:"two_level_min,omitempty"`
}

// MarshalJSON serializes the algorithm by name.
func (a Algo) MarshalJSON() ([]byte, error) {
	if int(a) >= len(algoNames) {
		return nil, fmt.Errorf("coll: cannot marshal unknown algo %d", uint8(a))
	}
	return json.Marshal(a.String())
}

// UnmarshalJSON parses an algorithm name.
func (a *Algo) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	got, err := AlgoByName(name)
	if err != nil {
		return err
	}
	*a = got
	return nil
}

// AlgoByName resolves an algorithm name to its enum value.
func AlgoByName(name string) (Algo, error) {
	for i, n := range algoNames {
		if n == name {
			return Algo(i), nil
		}
	}
	return AlgoAuto, fmt.Errorf("coll: unknown algorithm %q", name)
}

// MarshalJSON serializes the operation by name.
func (o OpKind) MarshalJSON() ([]byte, error) {
	if int(o) >= len(opNames) {
		return nil, fmt.Errorf("coll: cannot marshal unknown op %d", uint8(o))
	}
	return json.Marshal(o.String())
}

// UnmarshalJSON parses an operation name.
func (o *OpKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	got, err := OpKindByName(name)
	if err != nil {
		return err
	}
	*o = got
	return nil
}

// OpKindByName resolves an operation name to its enum value.
func OpKindByName(name string) (OpKind, error) {
	for i, n := range opNames {
		if n == name {
			return OpKind(i), nil
		}
	}
	return 0, fmt.Errorf("coll: unknown operation %q", name)
}

// checkOp resolves and vets an operation name appearing in one of the
// table's maps.
func (t *Table) checkOp(opName string) (OpKind, error) {
	op, err := OpKindByName(opName)
	if err != nil {
		return 0, fmt.Errorf("coll: table for stack %q: %v", t.Stack, err)
	}
	if !ByteTunable(op) {
		return 0, fmt.Errorf("coll: table for stack %q: selection for %s does not key on payload size, a table cannot tune it",
			t.Stack, op)
	}
	return op, nil
}

// validateEntries checks one byte-threshold list: a registered flat builder
// behind every entry, ascending thresholds, and exactly one open-ended
// entry closing the list.
func (t *Table) validateEntries(op OpKind, entries []TableEntry) error {
	if len(entries) == 0 {
		return fmt.Errorf("coll: table for stack %q: op %s has no entries", t.Stack, op)
	}
	prev := -1
	for i, e := range entries {
		if e.Algo == AlgoAuto || e.Algo == AlgoTwoLevel {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: %s is not a flat algorithm (tables drive flat selection; two-level is topology's decision)",
				t.Stack, op, i, e.Algo)
		}
		if int(e.Algo) >= int(numAlgos) || registry[op][e.Algo] == nil {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: no %s builder registered",
				t.Stack, op, i, e.Algo)
		}
		if e.Seg < 0 {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: negative seg %d",
				t.Stack, op, i, e.Seg)
		}
		if e.Seg > 0 && !Segmented(e.Algo) {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: seg %d on non-segmented algorithm %s (dead config)",
				t.Stack, op, i, e.Seg, e.Algo)
		}
		if e.Stripe < 0 {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: negative stripe %d",
				t.Stack, op, i, e.Stripe)
		}
		if e.Stripe > 0 && !Striped(op, e.Algo) {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: stripe %d on non-striped algorithm %s (dead config)",
				t.Stack, op, i, e.Stripe, e.Algo)
		}
		if e.MaxBytes < 0 {
			if i != len(entries)-1 {
				return fmt.Errorf("coll: table for stack %q: op %s entry %d: unbounded entry must be last",
					t.Stack, op, i)
			}
			continue
		}
		if i == len(entries)-1 {
			return fmt.Errorf("coll: table for stack %q: op %s: last entry must be unbounded (max_bytes < 0), got %d",
				t.Stack, op, e.MaxBytes)
		}
		if e.MaxBytes <= prev {
			return fmt.Errorf("coll: table for stack %q: op %s entry %d: max_bytes %d not ascending",
				t.Stack, op, i, e.MaxBytes)
		}
		prev = e.MaxBytes
	}
	return nil
}

// Validate checks the table's structure: known operations, a registered
// builder behind every entry, ascending thresholds (bytes within a list,
// rank counts across bands), and exactly one open-ended entry closing each
// byte list. Errors name the offending operation and entry so a hand-edited
// table fails loudly instead of silently falling back to defaults.
func (t *Table) Validate() error {
	for opName, entries := range t.Ops {
		op, err := t.checkOp(opName)
		if err != nil {
			return err
		}
		if _, dup := t.Bands[opName]; dup {
			return fmt.Errorf("coll: table for stack %q: op %s appears in both ops and bands", t.Stack, op)
		}
		if err := t.validateEntries(op, entries); err != nil {
			return err
		}
	}
	for opName, bands := range t.Bands {
		op, err := t.checkOp(opName)
		if err != nil {
			return err
		}
		if len(bands) == 0 {
			return fmt.Errorf("coll: table for stack %q: op %s has no bands", t.Stack, op)
		}
		prevNP := 0
		for i, b := range bands {
			if b.MaxNP == 0 {
				return fmt.Errorf("coll: table for stack %q: op %s band %d: max_np 0 covers nothing", t.Stack, op, i)
			}
			if b.MaxNP < 0 && i != len(bands)-1 {
				return fmt.Errorf("coll: table for stack %q: op %s band %d: unbounded band must be last", t.Stack, op, i)
			}
			if b.MaxNP > 0 && b.MaxNP <= prevNP {
				return fmt.Errorf("coll: table for stack %q: op %s band %d: max_np %d not ascending", t.Stack, op, i, b.MaxNP)
			}
			if b.MaxNP > 0 {
				prevNP = b.MaxNP
			}
			if err := t.validateEntries(op, b.Entries); err != nil {
				return err
			}
		}
	}
	for opName := range t.TwoLevelMin {
		op, err := t.checkOp(opName)
		if err != nil {
			return err
		}
		if registry[op][AlgoTwoLevel] == nil {
			return fmt.Errorf("coll: table for stack %q: two_level_min for %s, but %s has no two-level builder", t.Stack, op, op)
		}
	}
	return nil
}

// Lookup returns the table's algorithm for op on np ranks at bytes of
// payload, or (AlgoAuto, false) when the table has no applicable entry.
func (t *Table) Lookup(op OpKind, np, bytes int) (Algo, bool) {
	e, ok := t.LookupEntry(op, np, bytes)
	return e.Algo, ok
}

// LookupEntry returns the full table entry matching op on np ranks at bytes
// of payload — algorithm plus its calibrated segment size — or (zero,
// false) when the table has no applicable entry. Banded operations resolve
// through the first band covering np; a rank count beyond the last band
// misses deliberately (the calibration's validity ends there, the built-in
// rank-count-aware defaults take over). Unbanded operations apply at every
// rank count.
func (t *Table) LookupEntry(op OpKind, np, bytes int) (TableEntry, bool) {
	if t == nil {
		return TableEntry{}, false
	}
	entries, ok := t.Ops[op.String()]
	if !ok {
		bands, bok := t.Bands[op.String()]
		if !bok {
			return TableEntry{}, false
		}
		for _, b := range bands {
			if b.MaxNP < 0 || np <= b.MaxNP {
				entries = b.Entries
				break
			}
		}
		if entries == nil {
			return TableEntry{}, false
		}
	}
	for _, e := range entries {
		if e.MaxBytes < 0 || bytes <= e.MaxBytes {
			return e, true
		}
	}
	// Validate guarantees an unbounded final entry; an unvalidated table
	// without one falls through to the defaults rather than panicking.
	return TableEntry{}, false
}

// OpNames returns the table's operation names (banded and unbanded) in
// sorted order — the deterministic iteration order serializers and reports
// use.
func (t *Table) OpNames() []string {
	names := make([]string, 0, len(t.Ops)+len(t.Bands))
	for n := range t.Ops {
		names = append(names, n)
	}
	for n := range t.Bands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// JSON serializes the table deterministically (encoding/json sorts map
// keys): byte-identical output for identical tables, the property the
// golden-file tests and CI artifacts rely on.
func (t *Table) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseTable decodes and validates a JSON table. Unknown fields and
// structural mistakes are errors, not silent fallbacks: a tuning file that
// does not say what the caller thinks it says must not quietly select
// defaults.
func ParseTable(data []byte) (*Table, error) {
	var t Table
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("coll: parsing tuning table: %v", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTable parses a serialized tuning table into the Tuning, replacing any
// previous table. The usual wiring is cfg.Coll.LoadTable(fileBytes) before
// mpi.Run.
func (t *Tuning) LoadTable(data []byte) error {
	tab, err := ParseTable(data)
	if err != nil {
		return err
	}
	t.Table = tab
	return nil
}

// Validate checks the whole Tuning: forced algorithms must have a builder
// registered for their operation, and a table, when present, must pass its
// own validation. mpi.Run calls this so misconfiguration fails the run with
// a message instead of panicking mid-collective or silently selecting
// defaults.
func (t *Tuning) Validate() error {
	if t == nil {
		return nil
	}
	if t.SegBytes < 0 {
		return fmt.Errorf("coll: tuning forces negative segment size %d", t.SegBytes)
	}
	if t.StripeWidth < 0 {
		return fmt.Errorf("coll: tuning forces negative stripe width %d", t.StripeWidth)
	}
	for op, a := range t.Force {
		if op >= numOps {
			return fmt.Errorf("coll: tuning forces unknown op %d", uint8(op))
		}
		if a == AlgoAuto {
			continue // explicit "let the selector choose"
		}
		if a != AlgoTwoLevel && (int(a) >= int(numAlgos) || registry[op][a] == nil) {
			return fmt.Errorf("coll: tuning forces %s for %s, but no such builder is registered", a, op)
		}
		if a == AlgoTwoLevel && registry[op][AlgoTwoLevel] == nil {
			return fmt.Errorf("coll: tuning forces two-level for %s, but %s has no two-level builder", op, op)
		}
	}
	if t.Table != nil {
		if err := t.Table.Validate(); err != nil {
			return err
		}
		// A table calibrated on one stack silently mis-selecting on another
		// is the exact failure per-stack calibration exists to prevent, so
		// a known mismatch is an error. Cross-stack application remains
		// possible deliberately: set Tuning.Stack to the table's stack (the
		// cache keys then record the calibration identity actually in
		// force).
		if t.Stack != "" && t.Table.Stack != "" && t.Stack != t.Table.Stack {
			return fmt.Errorf("coll: tuning table calibrated for stack %q but selection runs as %q; set Tuning.Stack to the table's stack to apply it deliberately",
				t.Table.Stack, t.Stack)
		}
	}
	return nil
}
