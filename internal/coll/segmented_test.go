package coll

import (
	"fmt"
	"math"
	"testing"
)

// segTestSegs exercises the interesting segment regimes: smaller than one
// block, mid-payload, and larger than the whole payload (degenerating to
// the monolithic schedule).
var segTestSegs = []int{1, 7, 64, 1 << 20}

func TestSegBounds(t *testing.T) {
	cases := []struct {
		n, seg int
		want   []int
	}{
		{0, 8, []int{0, 0}},
		{5, 8, []int{0, 5}},
		{8, 8, []int{0, 8}},
		{9, 8, []int{0, 8, 9}},
		{24, 8, []int{0, 8, 16, 24}},
		{24, 0, []int{0, 24}}, // seg 0 → DefSegBytes
	}
	for _, tc := range cases {
		got := segBounds(tc.n, tc.seg)
		if len(got) != len(tc.want) {
			t.Fatalf("segBounds(%d, %d) = %v, want %v", tc.n, tc.seg, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("segBounds(%d, %d) = %v, want %v", tc.n, tc.seg, got, tc.want)
			}
		}
	}
}

// TestSegmentedRoundShapes: every segmented builder keeps the blocking
// executor's deadlock-freedom invariant (a mixed round holds exactly one
// send and one recv) at every rank count, root and segment size.
func TestSegmentedRoundShapes(t *testing.T) {
	data := make([]byte, 200)
	x := make([]float64, 37)
	for _, n := range testNPs {
		for _, seg := range segTestSegs {
			for root := 0; root < n; root += 3 {
				for rank := 0; rank < n; rank++ {
					checkRoundShape(t, BuildBcastChain(rank, n, root, data, seg),
						fmt.Sprintf("chain/np%d/root%d/seg%d/r%d", n, root, seg, rank))
					checkRoundShape(t, BuildBcastSegBinomial(rank, n, root, data, seg),
						fmt.Sprintf("segbinomial/np%d/root%d/seg%d/r%d", n, root, seg, rank))
				}
			}
			for rank := 0; rank < n; rank++ {
				checkRoundShape(t, BuildAllreduceSegRing(rank, n, x, OpSum, seg),
					fmt.Sprintf("segring/np%d/seg%d/r%d", n, seg, rank))
			}
		}
	}
}

// TestBcastChainFabric / TestBcastSegBinomialFabric: payload correctness
// over the in-memory fabric at explicit (non-default) segment sizes — the
// conformance harness only exercises the default segment size.
func testSegBcastFabric(t *testing.T, name string, build func(rank, n, root int, data []byte, seg int) *Schedule) {
	for _, n := range testNPs {
		for _, seg := range segTestSegs {
			for root := 0; root < n; root += 5 {
				n, seg, root := n, seg, root
				t.Run(fmt.Sprintf("np%d/seg%d/root%d", n, seg, root), func(t *testing.T) {
					const sz = 150
					bufs := make([][]byte, n)
					for r := range bufs {
						bufs[r] = make([]byte, sz)
						if r == root {
							for i := range bufs[r] {
								bufs[r][i] = byte(i*7 + root)
							}
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return build(rank, n, root, bufs[rank], seg)
					}, 42)
					for r := range bufs {
						for i := range bufs[r] {
							if bufs[r][i] != byte(i*7+root) {
								t.Fatalf("%s rank %d byte %d = %d, want %d",
									name, r, i, bufs[r][i], byte(i*7+root))
							}
						}
					}
				})
			}
		}
	}
}

func TestBcastChainFabric(t *testing.T) {
	testSegBcastFabric(t, "chain", BuildBcastChain)
}

func TestBcastSegBinomialFabric(t *testing.T) {
	testSegBcastFabric(t, "segmented-binomial", BuildBcastSegBinomial)
}

// TestAllreduceSegRingFabric: the segmented ring allreduce produces the
// exact elementwise sum at every rank count (power of two or not), segment
// size, and vector length — including vectors shorter than the rank count,
// where whole ring windows are empty and their rounds elide.
func TestAllreduceSegRingFabric(t *testing.T) {
	for _, n := range testNPs {
		for _, seg := range segTestSegs {
			for _, m := range []int{0, 1, 3, 37, 100} {
				n, seg, m := n, seg, m
				t.Run(fmt.Sprintf("np%d/seg%d/m%d", n, seg, m), func(t *testing.T) {
					vecs := make([][]float64, n)
					for r := range vecs {
						vecs[r] = make([]float64, m)
						for i := range vecs[r] {
							vecs[r][i] = float64(r*100 + i)
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return BuildAllreduceSegRing(rank, n, vecs[rank], OpSum, seg)
					}, 43)
					for i := 0; i < m; i++ {
						want := 0.0
						for r := 0; r < n; r++ {
							want += float64(r*100 + i)
						}
						for r := 0; r < n; r++ {
							if math.Abs(vecs[r][i]-want) > 1e-9 {
								t.Fatalf("rank %d elem %d = %g, want %g", r, i, vecs[r][i], want)
							}
						}
					}
				})
			}
		}
	}
}

// TestKeyForSegmented: segment size is shape — it lands in Key.Seg, so two
// invocations pipelined at different granularities can never share a
// cached schedule, while non-segmented selections keep Seg 0 and never
// fragment.
func TestKeyForSegmented(t *testing.T) {
	data := make([]byte, 64<<10)
	a := Args{Size: 8, Data: data}

	force := func(segBytes int) *Tuning {
		return &Tuning{
			Force:    map[OpKind]Algo{OpBcast: AlgoChain},
			SegBytes: segBytes,
		}
	}
	kDef := KeyFor(force(0), OpBcast, a, false)
	if kDef.Algo != AlgoChain || kDef.Seg != DefSegBytes {
		t.Fatalf("forced chain key = %+v, want chain with DefSegBytes", kDef)
	}
	k4 := KeyFor(force(4096), OpBcast, a, false)
	if k4.Seg != 4096 {
		t.Fatalf("SegBytes 4096 key seg = %d", k4.Seg)
	}
	if kDef == k4 {
		t.Fatal("different segment sizes produced equal cache keys")
	}

	// A calibrated table entry supplies the segment size when SegBytes does
	// not force one...
	tab := &Table{Stack: "s", Ops: map[string][]TableEntry{
		"bcast": {{MaxBytes: -1, Algo: AlgoChain, Seg: 2048}},
	}}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	kTab := KeyFor(&Tuning{Table: tab, Stack: "s"}, OpBcast, a, false)
	if kTab.Algo != AlgoChain || kTab.Seg != 2048 {
		t.Fatalf("table key = %+v, want chain/seg2048", kTab)
	}
	// ...and SegBytes outranks the table entry.
	kBoth := KeyFor(&Tuning{Table: tab, Stack: "s", SegBytes: 512}, OpBcast, a, false)
	if kBoth.Seg != 512 {
		t.Fatalf("SegBytes should outrank the table entry, got seg %d", kBoth.Seg)
	}

	// Non-segmented selections never carry a segment size, even under a
	// forced SegBytes: their keys must not fragment on an irrelevant knob.
	kMono := KeyFor(&Tuning{SegBytes: 4096}, OpBcast, Args{Size: 8, Data: make([]byte, 64)}, false)
	if Segmented(kMono.Algo) || kMono.Seg != 0 {
		t.Fatalf("monolithic key = %+v, want seg 0", kMono)
	}
}

// TestSegTableValidation: the seg schema field is validated loudly — a
// segment size on a non-segmented algorithm is dead config, a negative one
// is malformed.
func TestSegTableValidation(t *testing.T) {
	bad := &Table{Stack: "s", Ops: map[string][]TableEntry{
		"bcast": {{MaxBytes: -1, Algo: AlgoBinomial, Seg: 4096}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("seg on binomial accepted")
	}
	neg := &Table{Stack: "s", Ops: map[string][]TableEntry{
		"bcast": {{MaxBytes: -1, Algo: AlgoChain, Seg: -1}},
	}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative seg accepted")
	}
	tn := Tuning{SegBytes: -5}
	if err := tn.Validate(); err == nil {
		t.Fatal("negative SegBytes accepted")
	}
}
