package coll

// This file holds the vector (per-rank-count) collective builders: alltoallv
// pairwise exchanges with zero-block elision, the first-class reduce-scatter
// (recursive halving for power-of-two sizes, rotated pairwise otherwise) that
// the Rabenseifner allreduce shares, and the Blocks helper slicing MPI-style
// (buffer, counts, displacements) arguments into the per-rank views every
// builder consumes. Allgatherv, gatherv and scatterv need no dedicated
// builders: the ring, Bruck, two-level and linear builders already operate on
// per-rank block views of any length, so the registry points the vector ops
// at them directly.
//
// Algorithm selection for vector ops must stay globally consistent even
// though counts differ per rank (a rank picking Bruck while its peer picks
// ring deadlocks). The selector therefore keys only on globally agreed
// inputs: the rank count for alltoallv and reduce-scatter (every rank knows
// only its own rows of the count matrix, so payload-size selection is
// unavailable), and the full recvcounts vector — which MPI_Allgatherv
// mandates on every rank — for allgatherv. The same constraint rules out
// Bruck-style store-and-forward for alltoallv: an intermediate hop would
// need the sizes of relayed blocks, which are other ranks' private counts.

// Blocks slices buf into per-rank views: block r is
// buf[displs[r] : displs[r]+counts[r]]. A nil displs packs the blocks
// back-to-back in rank order. Views are capacity-limited so a builder bug
// cannot silently bleed into a neighbouring block.
func Blocks(buf []byte, counts, displs []int) [][]byte {
	bs := make([][]byte, len(counts))
	off := 0
	for r, n := range counts {
		if displs != nil {
			off = displs[r]
		}
		bs[r] = buf[off : off+n : off+n]
		off += n
	}
	return bs
}

// prefixSums returns the len(counts)+1 ascending boundary array of counts:
// segment r spans [win[r], win[r+1]).
func prefixSums(counts []int) []int {
	win := make([]int, len(counts)+1)
	for r, n := range counts {
		win[r+1] = win[r] + n
	}
	return win
}

// BuildAlltoallv compiles the pairwise-exchange alltoallv over per-rank
// block views (XOR partner order when xor is set and size is a power of two,
// rotated shifts otherwise). Zero-length transfers are elided: both ends of
// a transfer see the same count (my send to p is p's receive from me), so
// the elision is symmetric and the schedules stay matched.
func BuildAlltoallv(rank, size int, send, recv [][]byte, xor bool) *Schedule {
	s := &Schedule{}
	if len(send[rank]) > 0 {
		rd := s.round()
		rd.Local = append(rd.Local, copyP(recv[rank], send[rank]))
	}
	if size == 1 {
		return s
	}
	if xor && size&(size-1) != 0 {
		xor = false
	}
	for i := 1; i < size; i++ {
		dst, src := (rank+i)%size, (rank-i+size)%size
		if xor {
			dst = rank ^ i
			src = dst
		}
		doSend, doRecv := len(send[dst]) > 0, len(recv[src]) > 0
		if !doSend && !doRecv {
			continue
		}
		rd := s.round()
		if doSend {
			rd.Comm = append(rd.Comm, sendP(dst, send[dst]))
		}
		if doRecv {
			rd.Comm = append(rd.Comm, recvP(src, recv[src]))
		}
	}
	return s
}

// halvingReduceScatter appends the recursive-halving reduce-scatter rounds:
// size must be a power of two and win an ascending size+1 element boundary
// array. After the rounds, x[win[rank]:win[rank+1]] holds the fully reduced
// segment (the rest of x is clobbered). Each step exchanges the half of the
// current window the partner keeps and folds the received half in; partners
// share identical window histories because they only differ in the current
// mask bit. rbuf must hold the largest incoming half. Commutative op only.
func halvingReduceScatter(s *Schedule, rank, size int, x []float64, win []int, rbuf []byte, op Op) {
	rlo, rhi := 0, size
	for mask := size >> 1; mask >= 1; mask >>= 1 {
		partner := rank ^ mask
		rmid := (rlo + rhi) / 2
		lo, mid, hi := win[rlo], win[rmid], win[rhi]
		keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
		if rank&mask != 0 {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		rd := s.round()
		rd.Comm = append(rd.Comm,
			sendF64(partner, x[sendLo:sendHi]),
			recvP(partner, rbuf[:8*(keepHi-keepLo)]))
		rd.Local = append(rd.Local, reduceP(x[keepLo:keepHi], rbuf, op))
		if rank&mask != 0 {
			rlo = rmid
		} else {
			rhi = rmid
		}
	}
}

// BuildReduceScatterHalving compiles the recursive-halving reduce-scatter:
// x (length sum(counts), clobbered as scratch) is reduced elementwise across
// ranks and rank r's segment of counts[r] elements lands in recv. log p
// rounds for power-of-two sizes; anything else falls back to the pairwise
// algorithm. Commutative op only.
func BuildReduceScatterHalving(rank, size int, x, recv []float64, counts []int, op Op) *Schedule {
	if size&(size-1) != 0 {
		return BuildReduceScatterPairwise(rank, size, x, recv, counts, op)
	}
	s := &Schedule{}
	win := prefixSums(counts)
	if size == 1 {
		rd := s.round()
		rd.Local = append(rd.Local, copyF64P(recv, x[:counts[0]]))
		return s
	}
	// Irregular boundaries can put almost the whole vector in one half, so
	// the scratch covers the full length.
	rbuf := make([]byte, 8*win[size])
	halvingReduceScatter(s, rank, size, x, win, rbuf, op)
	rd := s.round()
	rd.Local = append(rd.Local, copyF64P(recv, x[win[rank]:win[rank+1]]))
	return s
}

// BuildReduceScatterPairwise compiles the rotated pairwise reduce-scatter
// (any size): recv starts as the rank's own segment of x, then step i sends
// the segment owned by rank+i and folds in the segment received from
// rank-i. p-1 rounds moving ~sum(counts) elements per rank; x is read-only.
// Zero-length segments are elided symmetrically (a segment's length is its
// owner's count, which both ends know). Commutative op only.
func BuildReduceScatterPairwise(rank, size int, x, recv []float64, counts []int, op Op) *Schedule {
	s := &Schedule{}
	win := prefixSums(counts)
	rd := s.round()
	rd.Local = append(rd.Local, copyF64P(recv, x[win[rank]:win[rank+1]]))
	if size == 1 {
		return s
	}
	rbuf := make([]byte, 8*counts[rank])
	for i := 1; i < size; i++ {
		dst := (rank + i) % size
		src := (rank - i + size) % size
		doSend, doRecv := counts[dst] > 0, counts[rank] > 0
		if !doSend && !doRecv {
			continue
		}
		rd := s.round()
		if doSend {
			rd.Comm = append(rd.Comm, sendF64(dst, x[win[dst]:win[dst+1]]))
		}
		if doRecv {
			rd.Comm = append(rd.Comm, recvP(src, rbuf))
			rd.Local = append(rd.Local, reduceP(recv, rbuf, op))
		}
	}
	return s
}
