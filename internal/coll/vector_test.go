package coll

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// randCountMatrix derives a deterministic n×n count matrix from seed with
// plenty of zero blocks and occasional heavy skew — the layouts the vector
// builders must survive.
func randCountMatrix(seed int64, n, maxC int) [][]int {
	st := uint64(seed)*2862933555777941757 + 3037000493
	next := func() int {
		st = st*6364136223846793005 + 1442695040888963407
		return int(st >> 33)
	}
	m := make([][]int, n)
	for s := range m {
		m[s] = make([]int, n)
		for d := range m[s] {
			switch next() % 4 {
			case 0:
				m[s][d] = 0
			case 1:
				m[s][d] = next()%maxC + maxC*4 // heavy block
			default:
				m[s][d] = next() % (maxC + 1)
			}
		}
	}
	return m
}

// cell is the deterministic payload byte at position i of the s→d block.
func cell(s, d, i int) byte { return byte(s*31 + d*7 + i*3 + 1) }

func fillBlock(b []byte, s, d int) {
	for i := range b {
		b[i] = cell(s, d, i)
	}
}

func checkBlock(t *testing.T, b []byte, s, d int, label string) {
	t.Helper()
	for i := range b {
		if b[i] != cell(s, d, i) {
			t.Fatalf("%s: block %d->%d byte %d = %d, want %d", label, s, d, i, b[i], cell(s, d, i))
		}
	}
}

func TestAlltoallvMatchesReference(t *testing.T) {
	for _, n := range testNPs {
		for _, xor := range []bool{true, false} {
			for seed := int64(0); seed < 3; seed++ {
				n, xor, seed := n, xor, seed
				t.Run(fmt.Sprintf("np%d/xor%v/seed%d", n, xor, seed), func(t *testing.T) {
					m := randCountMatrix(seed, n, 9)
					send := make([][][]byte, n)
					recv := make([][][]byte, n)
					for r := 0; r < n; r++ {
						send[r] = make([][]byte, n)
						recv[r] = make([][]byte, n)
						for d := 0; d < n; d++ {
							send[r][d] = make([]byte, m[r][d])
							fillBlock(send[r][d], r, d)
							recv[r][d] = make([]byte, m[d][r])
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return BuildAlltoallv(rank, n, send[rank], recv[rank], xor)
					}, 30)
					for r := 0; r < n; r++ {
						for s := 0; s < n; s++ {
							checkBlock(t, recv[r][s], s, r, "alltoallv")
						}
					}
				})
			}
		}
	}
}

func TestAlltoallvExtremeDistributions(t *testing.T) {
	const n = 8
	mk := func(f func(s, d int) int) [][]int {
		m := make([][]int, n)
		for s := range m {
			m[s] = make([]int, n)
			for d := range m[s] {
				m[s][d] = f(s, d)
			}
		}
		return m
	}
	cases := map[string][][]int{
		"all-zero":    mk(func(s, d int) int { return 0 }),
		"to-rank0":    mk(func(s, d int) int { return 13 * boolInt(d == 0) }),
		"from-rank3":  mk(func(s, d int) int { return 17 * boolInt(s == 3) }),
		"single-pair": mk(func(s, d int) int { return 64 * boolInt(s == 1 && d == 6) }),
	}
	for name, m := range cases {
		m := m
		t.Run(name, func(t *testing.T) {
			send := make([][][]byte, n)
			recv := make([][][]byte, n)
			for r := 0; r < n; r++ {
				send[r] = make([][]byte, n)
				recv[r] = make([][]byte, n)
				for d := 0; d < n; d++ {
					send[r][d] = make([]byte, m[r][d])
					fillBlock(send[r][d], r, d)
					recv[r][d] = make([]byte, m[d][r])
				}
			}
			execSched(t, n, func(rank int) *Schedule {
				return BuildAlltoallv(rank, n, send[rank], recv[rank], true)
			}, 31)
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					checkBlock(t, recv[r][s], s, r, name)
				}
			}
		})
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Property: alltoallv over random zero-heavy matrices routes every block,
// in both partner orderings.
func TestPropertyAlltoallvRoutesAllBlocks(t *testing.T) {
	f := func(npRaw uint8, seed int64) bool {
		n := int(npRaw%10) + 1
		m := randCountMatrix(seed, n, 6)
		send := make([][][]byte, n)
		recv := make([][][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = make([][]byte, n)
			recv[r] = make([][]byte, n)
			for d := 0; d < n; d++ {
				send[r][d] = make([]byte, m[r][d])
				fillBlock(send[r][d], r, d)
				recv[r][d] = make([]byte, m[d][r])
			}
		}
		ok := true
		runAll(t, n, func(p *peer) {
			ExecBlocking(p, BuildAlltoallv(p.Rank(), n, send[p.Rank()], recv[p.Rank()], seed%2 == 0), 32)
		})
		for r := 0; r < n && ok; r++ {
			for s := 0; s < n && ok; s++ {
				want := make([]byte, m[s][r])
				fillBlock(want, s, r)
				ok = bytes.Equal(recv[r][s], want)
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgathervIrregularAllAlgos(t *testing.T) {
	for _, n := range testNPs {
		for seed := int64(0); seed < 2; seed++ {
			counts := randCountMatrix(seed, n, 11)[0] // one global vector
			algos := map[string]func(rank int, mine []byte, out [][]byte) *Schedule{
				"ring": func(rank int, mine []byte, out [][]byte) *Schedule {
					return BuildAllgather(rank, n, mine, out)
				},
				"bruck": func(rank int, mine []byte, out [][]byte) *Schedule {
					return BuildAllgatherBruck(rank, n, mine, out)
				},
			}
			for _, nodes := range testPlacements(n) {
				nodes := nodes
				algos[fmt.Sprintf("two-level/%v", nodes[:min(len(nodes), 4)])] =
					func(rank int, mine []byte, out [][]byte) *Schedule {
						return BuildAllgatherTwoLevel(rank, nodes, mine, out)
					}
			}
			for name, build := range algos {
				name, build := name, build
				t.Run(fmt.Sprintf("np%d/seed%d/%s", n, seed, name), func(t *testing.T) {
					mines := make([][]byte, n)
					outs := make([][][]byte, n)
					for r := 0; r < n; r++ {
						mines[r] = make([]byte, counts[r])
						fillBlock(mines[r], r, r)
						outs[r] = make([][]byte, n)
						for j := 0; j < n; j++ {
							outs[r][j] = make([]byte, counts[j])
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return build(rank, mines[rank], outs[rank])
					}, 33)
					for r := 0; r < n; r++ {
						for j := 0; j < n; j++ {
							checkBlock(t, outs[r][j], j, j, name)
						}
					}
				})
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestReduceScatterMatchesSerialSum(t *testing.T) {
	for _, n := range testNPs {
		for seed := int64(0); seed < 3; seed++ {
			counts := randCountMatrix(seed, n, 7)[0]
			total := 0
			for _, c := range counts {
				total += c
			}
			for _, algo := range []string{"halving", "pairwise"} {
				algo := algo
				t.Run(fmt.Sprintf("np%d/seed%d/%s", n, seed, algo), func(t *testing.T) {
					xs := make([][]float64, n)
					recvs := make([][]float64, n)
					for r := 0; r < n; r++ {
						xs[r] = make([]float64, total)
						for i := range xs[r] {
							xs[r][i] = float64(r*1000 + i)
						}
						recvs[r] = make([]float64, counts[r])
					}
					execSched(t, n, func(rank int) *Schedule {
						if algo == "halving" {
							return BuildReduceScatterHalving(rank, n, xs[rank], recvs[rank], counts, OpSum)
						}
						return BuildReduceScatterPairwise(rank, n, xs[rank], recvs[rank], counts, OpSum)
					}, 34)
					off := 0
					for r := 0; r < n; r++ {
						for i := 0; i < counts[r]; i++ {
							want := 0.0
							for s := 0; s < n; s++ {
								want += float64(s*1000 + off + i)
							}
							if math.Abs(recvs[r][i]-want) > 1e-9 {
								t.Fatalf("rank %d elem %d = %g, want %g", r, i, recvs[r][i], want)
							}
						}
						off += counts[r]
					}
				})
			}
		}
	}
}

func TestGathervScattervIrregular(t *testing.T) {
	for _, n := range testNPs {
		counts := randCountMatrix(5, n, 9)[0]
		for root := 0; root < n; root += 3 {
			n, root := n, root
			t.Run(fmt.Sprintf("np%d/root%d", n, root), func(t *testing.T) {
				// Gatherv: every rank's block lands at root.
				mines := make([][]byte, n)
				out := make([][]byte, n)
				for r := 0; r < n; r++ {
					mines[r] = make([]byte, counts[r])
					fillBlock(mines[r], r, root)
					out[r] = make([]byte, counts[r])
				}
				execSched(t, n, func(rank int) *Schedule {
					if rank == root {
						return BuildGather(rank, n, root, mines[rank], out)
					}
					return BuildGather(rank, n, root, mines[rank], nil)
				}, 35)
				for r := 0; r < n; r++ {
					checkBlock(t, out[r], r, root, "gatherv")
				}

				// Scatterv: root's block r lands in rank r's buf.
				blocks := make([][]byte, n)
				bufs := make([][]byte, n)
				for r := 0; r < n; r++ {
					blocks[r] = make([]byte, counts[r])
					fillBlock(blocks[r], root, r)
					bufs[r] = make([]byte, counts[r])
				}
				execSched(t, n, func(rank int) *Schedule {
					if rank == root {
						return BuildScatter(rank, n, root, blocks, bufs[rank])
					}
					return BuildScatter(rank, n, root, nil, bufs[rank])
				}, 36)
				for r := 0; r < n; r++ {
					checkBlock(t, bufs[r], root, r, "scatterv")
				}
			})
		}
	}
}

func TestVectorRoundShapes(t *testing.T) {
	for _, n := range testNPs {
		m := randCountMatrix(7, n, 8)
		counts := m[0]
		total := 0
		for _, c := range counts {
			total += c
		}
		x := make([]float64, total)
		for rank := 0; rank < n; rank++ {
			send := make([][]byte, n)
			recv := make([][]byte, n)
			for d := 0; d < n; d++ {
				send[d] = make([]byte, m[rank][d])
				recv[d] = make([]byte, m[d][rank])
			}
			rcv := make([]float64, counts[rank])
			checkRoundShape(t, BuildAlltoallv(rank, n, send, recv, true),
				fmt.Sprintf("alltoallv-xor/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAlltoallv(rank, n, send, recv, false),
				fmt.Sprintf("alltoallv-rot/np%d/r%d", n, rank))
			checkRoundShape(t, BuildReduceScatterHalving(rank, n, x, rcv, counts, OpSum),
				fmt.Sprintf("rs-halving/np%d/r%d", n, rank))
			checkRoundShape(t, BuildReduceScatterPairwise(rank, n, x, rcv, counts, OpSum),
				fmt.Sprintf("rs-pairwise/np%d/r%d", n, rank))
		}
	}
}

func TestRabBoundariesPartition(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8, 16, 32} {
		for _, n := range []int{0, 1, 5, 16, 33, 1000} {
			win := rabBoundaries(size, n)
			if len(win) != size+1 || win[0] != 0 || win[size] != n {
				t.Fatalf("size=%d n=%d: bad boundary array %v", size, n, win)
			}
			for r := 0; r < size; r++ {
				lo, hi := rabWindow(r, size, n)
				if win[r] != lo || win[r+1] != hi {
					t.Fatalf("size=%d n=%d rank=%d: win [%d,%d) != rabWindow [%d,%d)",
						size, n, r, win[r], win[r+1], lo, hi)
				}
				if win[r] > win[r+1] {
					t.Fatalf("size=%d n=%d: descending boundary at %d: %v", size, n, r, win)
				}
			}
		}
	}
}

func TestBlocksHelper(t *testing.T) {
	buf := make([]byte, 20)
	for i := range buf {
		buf[i] = byte(i)
	}
	packed := Blocks(buf, []int{3, 0, 5}, nil)
	if !bytes.Equal(packed[0], buf[0:3]) || len(packed[1]) != 0 || !bytes.Equal(packed[2], buf[3:8]) {
		t.Fatalf("packed views wrong: %v", packed)
	}
	gapped := Blocks(buf, []int{2, 4}, []int{10, 2})
	if !bytes.Equal(gapped[0], buf[10:12]) || !bytes.Equal(gapped[1], buf[2:6]) {
		t.Fatalf("displaced views wrong: %v", gapped)
	}
	// Views must be capacity-limited to their block.
	if cap(gapped[0]) != 2 {
		t.Fatalf("view capacity %d leaks past the block", cap(gapped[0]))
	}
}

// TestKeyForForcedTwoLevelWithoutNodes: forcing a two-level algorithm on a
// communicator with no node map must fall back to a flat algorithm (the
// re-selection strips Force), not hand the two-level builder a nil map.
func TestKeyForForcedTwoLevelWithoutNodes(t *testing.T) {
	tun := &Tuning{Force: map[OpKind]Algo{
		OpAllgatherv: AlgoTwoLevel,
		OpBcast:      AlgoTwoLevel,
	}}
	out := make([][]byte, 4)
	for i := range out {
		out[i] = make([]byte, 8)
	}
	a := Args{Rank: 0, Size: 4, Mine: out[0], Out: out, RCounts: []int{8, 8, 8, 8}}
	key := KeyFor(tun, OpAllgatherv, a, true) // no Nodes
	if key.Algo == AlgoTwoLevel {
		t.Fatalf("forced two-level without a node map selected %s", key.Algo)
	}
	if s := Build(key, a); s == nil || len(s.Rounds) == 0 {
		t.Fatal("fallback schedule did not build")
	}
	b := Args{Rank: 1, Size: 4, Data: make([]byte, 16)}
	if key := KeyFor(tun, OpBcast, b, false); key.Algo == AlgoTwoLevel {
		t.Fatalf("forced two-level bcast without a node map selected %s", key.Algo)
	}
}
