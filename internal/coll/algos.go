package coll

// This file holds the size-tuned algorithm variants the selector (registry.go)
// picks between: the van de Geijn scatter-allgather broadcast and the
// Rabenseifner allreduce for large payloads, the Bruck allgather for small
// ones, a linear scatter schedule, and the two-level (topology-aware)
// allgather and alltoall that aggregate per node so only the per-node leaders
// touch the network rails.

// BuildBcastScatterAllgather compiles the van de Geijn large-message
// broadcast: root scatters data in size chunks down a binomial tree, then a
// ring allgather (over relative ranks) reassembles the full buffer on every
// rank. Bandwidth-optimal for large payloads, at the price of ~2(p-1)/p
// extra latency terms.
func BuildBcastScatterAllgather(rank, size, root int, data []byte) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	n, p := len(data), size
	real := func(v int) int { return (v + root) % p }
	chunk := func(i, j int) []byte { return data[i*n/p : j*n/p] }
	vr := (rank - root + p) % p

	// Scatter phase: rank vr receives its subtree's chunks [vr, vr+cnt)
	// from its binomial parent, then halves them down to its children.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			cnt := mask
			if p-vr < cnt {
				cnt = p - vr
			}
			rd := s.round()
			rd.Comm = append(rd.Comm, recvP(real(vr-mask), chunk(vr, vr+cnt)))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			cnt := mask
			if p-(vr+mask) < cnt {
				cnt = p - (vr + mask)
			}
			rd := s.round()
			rd.Comm = append(rd.Comm, sendP(real(vr+mask), chunk(vr+mask, vr+mask+cnt)))
		}
		mask >>= 1
	}

	// Allgather phase: ring over relative ranks, one chunk per step.
	right, left := real(vr+1), real((vr-1+p)%p)
	for step := 0; step < p-1; step++ {
		si := (vr - step + p) % p
		ri := (vr - step - 1 + 2*p) % p
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(right, chunk(si, si+1)), recvP(left, chunk(ri, ri+1)))
	}
	return s
}

// rabWindow returns the element window [lo, hi) that rank owns after the
// recursive-halving reduce-scatter phase of the Rabenseifner allreduce
// (size must be a power of two). Windows are contiguous and ascend with
// rank, which the allgather phase relies on.
func rabWindow(rank, size, n int) (lo, hi int) {
	lo, hi = 0, n
	for mask := size >> 1; mask >= 1; mask >>= 1 {
		mid := lo + (hi-lo)/2
		if rank&mask == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// rabBoundaries expands rabWindow into the size+1 ascending boundary array
// the shared reduce-scatter builder consumes: rank r owns [win[r], win[r+1]).
func rabBoundaries(size, n int) []int {
	win := make([]int, size+1)
	for r := 0; r < size; r++ {
		win[r], _ = rabWindow(r, size, n)
	}
	win[size] = n
	return win
}

// BuildAllreduceRabenseifner compiles the large-vector allreduce:
// reduce-scatter by recursive halving (the shared first-class builder in
// vector.go), then allgather by recursive doubling, moving ~2n elements per
// rank instead of recursive doubling's n·log p. Power-of-two sizes only;
// anything else falls back to recursive doubling. Commutative op only.
func BuildAllreduceRabenseifner(rank, size int, x []float64, op Op) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	if size&(size-1) != 0 {
		rdAllreduce(s, identGroup(size), rank, x, op)
		return s
	}
	n := len(x)
	win := rabBoundaries(size, n)
	rbuf := make([]byte, 8*((n+1)/2))

	// Phase 1: reduce-scatter by recursive halving over the rabWindow
	// boundaries — the same builder the first-class ReduceScatter op uses.
	halvingReduceScatter(s, rank, size, x, win, rbuf, op)

	// Phase 2: allgather by recursive doubling. At step mask each rank holds
	// the union of the final windows of its aligned block of mask ranks and
	// swaps it with the partner block's union.
	for mask := 1; mask < size; mask <<= 1 {
		partner := rank ^ mask
		myLo, myHi := win[rank&^(mask-1)], win[(rank|(mask-1))+1]
		pLo, pHi := win[partner&^(mask-1)], win[(partner|(mask-1))+1]
		rd := s.round()
		rd.Comm = append(rd.Comm,
			sendF64(partner, x[myLo:myHi]),
			recvP(partner, rbuf[:8*(pHi-pLo)]))
		rd.Local = append(rd.Local, decodeP(x[pLo:pHi], rbuf))
	}
	return s
}

// BuildAllgatherBruck compiles the Bruck allgather: ceil(log2 p) rounds of
// doubling block counts, concatenated into per-round wire buffers so the
// message count stays logarithmic — the small-payload winner against the
// ring's p-1 messages. Position j of the Bruck order is rank (me+j) mod p,
// so blocks land directly in their out slots with no final rotation.
func BuildAllgatherBruck(rank, size int, mine []byte, out [][]byte) *Schedule {
	s := &Schedule{}
	rd := s.round()
	rd.Local = append(rd.Local, copyP(out[rank], mine))
	if size == 1 {
		return s
	}
	blockAt := func(j int) []byte { return out[(rank+j)%size] }
	prev := rd
	for k := 1; k < size; k <<= 1 {
		cnt := k
		if size-k < cnt {
			cnt = size - k
		}
		slen, rlen := 0, 0
		for j := 0; j < cnt; j++ {
			slen += len(blockAt(j))
			rlen += len(blockAt(k + j))
		}
		// The send buffer concatenates positions [0, cnt) once the previous
		// round's blocks have landed (prev is still addressable: no round
		// has been appended since it was created).
		sbuf := make([]byte, slen)
		off := 0
		for j := 0; j < cnt; j++ {
			b := blockAt(j)
			prev.Local = append(prev.Local, copyP(sbuf[off:off+len(b)], b))
			off += len(b)
		}
		rbuf := make([]byte, rlen)
		rd := s.round()
		rd.Comm = append(rd.Comm,
			sendP((rank-k+size)%size, sbuf),
			recvP((rank+k)%size, rbuf))
		off = 0
		for j := 0; j < cnt; j++ {
			b := blockAt(k + j)
			rd.Local = append(rd.Local, copyP(b, rbuf[off:off+len(b)]))
			off += len(b)
		}
		prev = rd
	}
	return s
}

// BuildScatter compiles the linear scatter: root sends blocks[r] to rank r
// (blocks is only read on root); every rank lands its block in buf.
func BuildScatter(rank, size, root int, blocks [][]byte, buf []byte) *Schedule {
	s := &Schedule{}
	if rank == root {
		rd := s.round()
		for r := 0; r < size; r++ {
			if r != root {
				rd.Comm = append(rd.Comm, sendP(r, blocks[r]))
			}
		}
		rd.Local = append(rd.Local, copyP(buf, blocks[root]))
		return s
	}
	rd := s.round()
	rd.Comm = append(rd.Comm, recvP(root, buf))
	return s
}

// BuildAllgatherTwoLevel compiles the hierarchical allgather: locals hand
// their block to the node leader over shared memory, leaders exchange
// per-node aggregates pairwise over the network (one message per leader
// pair instead of one per block), then each leader fans every aggregate
// back out to its locals.
func BuildAllgatherTwoLevel(rank int, nodes []int, mine []byte, out [][]byte) *Schedule {
	s := &Schedule{}
	size := len(nodes)
	rd := s.round()
	rd.Local = append(rd.Local, copyP(out[rank], mine))
	if size == 1 {
		return s
	}
	leaders, byNode := leadersOf(nodes, -1)
	local := byNode[nodes[rank]]
	lead := leaderFor(nodes, byNode, -1, rank)
	L := len(leaders)

	nodeRanks := make([][]int, L)
	nodeLen := make([]int, L)
	for j, l := range leaders {
		nodeRanks[j] = byNode[nodes[l]]
		for _, r := range nodeRanks[j] {
			nodeLen[j] += len(out[r])
		}
	}
	li := indexIn(leaders, lead)

	if rank != lead {
		// Upload my block, then collect every node's aggregate back in
		// leader-index order (matching the leader's fan-out rounds).
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(lead, mine))
		for j := 0; j < L; j++ {
			rbuf := make([]byte, nodeLen[j])
			rd := s.round()
			rd.Comm = append(rd.Comm, recvP(lead, rbuf))
			off := 0
			for _, r := range nodeRanks[j] {
				rd.Local = append(rd.Local, copyP(out[r], rbuf[off:off+len(out[r])]))
				off += len(out[r])
			}
		}
		return s
	}

	// Leader: gather local blocks, concatenate the node aggregate.
	if len(local) > 1 {
		rd := s.round()
		for _, r := range local {
			if r != lead {
				rd.Comm = append(rd.Comm, recvP(r, out[r]))
			}
		}
	}
	wbuf := make([]byte, nodeLen[li])
	{
		rd := s.round()
		off := 0
		for _, r := range local {
			rd.Local = append(rd.Local, copyP(wbuf[off:off+len(out[r])], out[r]))
			off += len(out[r])
		}
	}

	// Rotated pairwise exchange of aggregates among leaders: step t sends to
	// the t-th leader to the right and receives from the t-th to the left.
	aggs := make([][]byte, L)
	aggs[li] = wbuf
	for t := 1; t < L; t++ {
		dj, sj := (li+t)%L, (li-t+L)%L
		aggs[sj] = make([]byte, nodeLen[sj])
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(leaders[dj], wbuf), recvP(leaders[sj], aggs[sj]))
		off := 0
		for _, r := range nodeRanks[sj] {
			rd.Local = append(rd.Local, copyP(out[r], aggs[sj][off:off+len(out[r])]))
			off += len(out[r])
		}
	}

	// Fan every aggregate (own node's included, so locals see their
	// neighbours' blocks) out to the locals over shared memory.
	if len(local) > 1 {
		for j := 0; j < L; j++ {
			rd := s.round()
			for _, r := range local {
				if r != lead {
					rd.Comm = append(rd.Comm, sendP(r, aggs[j]))
				}
			}
		}
	}
	return s
}

// BuildAlltoallTwoLevel compiles the hierarchical alltoall for uniform block
// sizes: same-node blocks move by direct pairwise exchange over shared
// memory; off-node blocks are uploaded to the node leader, exchanged between
// leaders as one aggregate message per leader pair (source-major ×
// destination layout), and fanned back out to the destination locals. Only
// leaders touch the rails, with L·(L-1) messages instead of the pairwise
// exchange's per-rank-pair traffic.
func BuildAlltoallTwoLevel(rank int, nodes []int, send, recv [][]byte) *Schedule {
	s := &Schedule{}
	size := len(nodes)
	rd := s.round()
	rd.Local = append(rd.Local, copyP(recv[rank], send[rank]))
	if size == 1 {
		return s
	}
	b := len(send[0]) // uniform block size (the selector guarantees it)
	leaders, byNode := leadersOf(nodes, -1)
	local := byNode[nodes[rank]]
	lead := leaderFor(nodes, byNode, -1, rank)
	L := len(leaders)
	m := len(local)
	mi := indexIn(local, rank)

	nodeRanks := make([][]int, L)
	nodeIdx := make([]int, size)   // rank -> leader index of its node
	idxInNode := make([]int, size) // rank -> position within its node
	for j, l := range leaders {
		nodeRanks[j] = byNode[nodes[l]]
		for di, r := range nodeRanks[j] {
			nodeIdx[r] = j
			idxInNode[r] = di
		}
	}
	li := nodeIdx[rank]

	// Intra-node rotated pairwise exchange.
	for t := 1; t < m; t++ {
		dst := local[(mi+t)%m]
		src := local[(mi-t+m)%m]
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(dst, send[dst]), recvP(src, recv[src]))
	}
	if L == 1 {
		return s
	}

	if rank != lead {
		// Upload off-node blocks (global destination-ascending, the order
		// the leader posts its receives in), then collect per-source blocks
		// back (leader-index-major, source-ascending within a node).
		rd := s.round()
		for d := 0; d < size; d++ {
			if nodeIdx[d] != li {
				rd.Comm = append(rd.Comm, sendP(lead, send[d]))
			}
		}
		rd = s.round()
		for j := 0; j < L; j++ {
			if j == li {
				continue
			}
			for _, src := range nodeRanks[j] {
				rd.Comm = append(rd.Comm, recvP(lead, recv[src]))
			}
		}
		return s
	}

	// Leader wire buffers: wbuf[j] carries every local source's blocks for
	// node j (source-major, destinations ascending within a source); rbuf[j]
	// arrives with the symmetric layout from node j's leader.
	wbuf := make([][]byte, L)
	rbuf := make([][]byte, L)
	for j := 0; j < L; j++ {
		if j != li {
			wbuf[j] = make([]byte, b*m*len(nodeRanks[j]))
			rbuf[j] = make([]byte, b*len(nodeRanks[j])*m)
		}
	}
	slotW := func(j, si, di int) []byte {
		off := (si*len(nodeRanks[j]) + di) * b
		return wbuf[j][off : off+b]
	}
	slotR := func(j, si, di int) []byte {
		off := (si*m + di) * b
		return rbuf[j][off : off+b]
	}

	// Gather the locals' uploads into the wire buffers and copy in the
	// leader's own off-node blocks.
	rd = s.round()
	for si, src := range local {
		if src == lead {
			for d := 0; d < size; d++ {
				if nodeIdx[d] != li {
					rd.Local = append(rd.Local, copyP(slotW(nodeIdx[d], si, idxInNode[d]), send[d]))
				}
			}
			continue
		}
		for d := 0; d < size; d++ {
			if nodeIdx[d] != li {
				rd.Comm = append(rd.Comm, recvP(src, slotW(nodeIdx[d], si, idxInNode[d])))
			}
		}
	}

	// Rotated pairwise aggregate exchange between leaders.
	for t := 1; t < L; t++ {
		dj, sj := (li+t)%L, (li-t+L)%L
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(leaders[dj], wbuf[dj]), recvP(leaders[sj], rbuf[sj]))
	}

	// Deliver per-source blocks to the destination locals and unpack the
	// leader's own, one round per remote node in leader-index order.
	for j := 0; j < L; j++ {
		if j == li {
			continue
		}
		rd := s.round()
		for si, src := range nodeRanks[j] {
			for _, d := range local {
				if d != lead {
					rd.Comm = append(rd.Comm, sendP(d, slotR(j, si, idxInNode[d])))
				}
			}
			rd.Local = append(rd.Local, copyP(recv[src], slotR(j, si, idxInNode[lead])))
		}
	}
	return s
}
