package tune

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"sync"

	"repro/internal/coll"
)

// The embedded calibrations: one table per preset stack, emitted by
//
//	go run ./cmd/colltune -stack all -out internal/coll/tune/tables
//
// and committed. They are build artifacts of the deterministic simulator,
// so regeneration on any machine reproduces them byte-for-byte; the golden
// tests assert as much.
//
//go:embed tables/*.json
var tablesFS embed.FS

var (
	tablesOnce sync.Once
	tables     map[string]*coll.Table
)

func loadTables() {
	tables = make(map[string]*coll.Table)
	entries, err := fs.ReadDir(tablesFS, "tables")
	if err != nil {
		panic(fmt.Sprintf("tune: embedded tables unreadable: %v", err))
	}
	for _, e := range entries {
		data, err := tablesFS.ReadFile("tables/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("tune: embedded table %s unreadable: %v", e.Name(), err))
		}
		t, err := coll.ParseTable(data)
		if err != nil {
			// Embedded tables are commit-time artifacts; a malformed one is
			// a build bug, not a runtime condition.
			panic(fmt.Sprintf("tune: embedded table %s: %v", e.Name(), err))
		}
		tables[t.Stack] = t
	}
}

// TableFor returns the embedded calibrated table for the named stack
// (cluster.Stack.Name), or nil when no calibration ships for it. The usual
// wiring:
//
//	cfg.Coll.Table = tune.TableFor(cfg.Stack.Name)
func TableFor(stack string) *coll.Table {
	tablesOnce.Do(loadTables)
	return tables[stack]
}

// CalibratedStacks lists the stacks with embedded tables, sorted by name.
func CalibratedStacks() []string {
	tablesOnce.Do(loadTables)
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
