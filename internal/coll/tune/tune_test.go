package tune

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/topo"
	"repro/mpi"
)

var update = flag.Bool("update", false, "rewrite golden files")

func smallOpts() Options {
	return Options{NP: 4, Iters: 2, Sizes: []int{1 << 10, 64 << 10}}
}

// TestSweepGoldenDeterminism: colltune on a fixed simnet config twice
// produces byte-identical JSON tables, and those bytes match the committed
// golden file — calibration is a pure function of the configuration.
func TestSweepGoldenDeterminism(t *testing.T) {
	res1, err := Sweep(cluster.MPICH2NmadIB(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Sweep(cluster.MPICH2NmadIB(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := res1.Table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := res2.Table.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two identical sweeps emitted different tables:\n%s\nvs\n%s", b1, b2)
	}
	// The full results (points included) must agree too, not just the table.
	j1, _ := json.Marshal(res1)
	j2, _ := json.Marshal(res2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("two identical sweeps measured different points")
	}

	golden := filepath.Join("testdata", "golden-small.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(b1, want) {
		t.Fatalf("sweep diverged from golden file %s:\n got:\n%s\nwant:\n%s\n(rerun with -update if the change is intended)",
			golden, b1, want)
	}
}

// TestEmbeddedTablesReproducible: re-running the default calibration grid
// reproduces the committed embedded table byte-for-byte.
func TestEmbeddedTablesReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration grid in -short mode")
	}
	res, err := Sweep(cluster.MPICH2NmadIB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("tables", "mpich2-nmad-ib.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("embedded table for mpich2-nmad-ib is stale — regenerate with\n  go run ./cmd/colltune -stack all -out internal/coll/tune/tables\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEmbeddedTablesPresent: every preset stack ships a valid calibration
// and TableFor resolves it.
func TestEmbeddedTablesPresent(t *testing.T) {
	for _, s := range PresetStacks() {
		tab := TableFor(s.Name)
		if tab == nil {
			t.Errorf("no embedded table for preset stack %q", s.Name)
			continue
		}
		if tab.Stack != s.Name {
			t.Errorf("table for %q names stack %q", s.Name, tab.Stack)
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("embedded table for %q invalid: %v", s.Name, err)
		}
	}
	if got := len(CalibratedStacks()); got != len(PresetStacks()) {
		t.Errorf("CalibratedStacks lists %d stacks, presets are %d", got, len(PresetStacks()))
	}
}

// TestCalibratedChangesSelection: the acceptance criterion that calibration
// is not a no-op — at least one embedded table flips at least one selection
// away from the built-in defaults (and the flip is visible through the same
// Tuning.Select path mpi uses).
func TestCalibratedChangesSelection(t *testing.T) {
	var def *coll.Tuning
	sizes := []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 8 << 20}
	changed := 0
	var first string
	for _, name := range CalibratedStacks() {
		tn := &coll.Tuning{Table: TableFor(name), Stack: name}
		for _, op := range DefaultOps() {
			for _, np := range []int{4, 8} {
				for _, b := range sizes {
					got := tn.Select(op, np, b, false)
					want := def.Select(op, np, b, false)
					if got != want {
						if changed == 0 {
							first = name + "/" + op.String()
						}
						changed++
					}
				}
			}
		}
	}
	if changed == 0 {
		t.Fatal("no embedded table changes any selection — calibration is a no-op")
	}
	t.Logf("calibration flips %d grid selections (first: %s)", changed, first)
}

// TestCheckCleanAndTunedNeverSlower: Check finds no violation on a fresh
// sweep — the tuned table's pick is ≤ the default pick on every swept
// point, the colltune -check contract.
func TestCheckCleanAndTunedNeverSlower(t *testing.T) {
	res, err := Sweep(cluster.MPICH2NmadIB(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if viols := Check(res); len(viols) != 0 {
		for _, v := range viols {
			t.Errorf("violation: %s", v)
		}
	}
}

func TestSweepRejectsNonByteTunable(t *testing.T) {
	_, err := Sweep(cluster.MPICH2NmadIB(), Options{
		NP: 4, Iters: 1, Sizes: []int{1024}, Ops: []coll.OpKind{coll.OpAlltoallv},
	})
	if err == nil || !strings.Contains(err.Error(), "does not key on payload size") {
		t.Fatalf("alltoallv sweep: err = %v, want byte-tunability complaint", err)
	}
}

// TestEmbeddedCalibrationRuns: the shipped per-stack calibration loads
// through the public mpi wiring and the engine runs correctly under it.
// (Lives here rather than in mpi's tests because mpi importing tune would
// cycle: tune → bench → mpi.)
func TestEmbeddedCalibrationRuns(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	cfg := mpi.Config{
		Cluster: cluster.Xeon2(),
		Stack:   stack,
		NP:      8,
	}
	cfg.Coll.Table = TableFor(stack.Name)
	if cfg.Coll.Table == nil {
		t.Fatal("no embedded table for mpich2-nmad-ib")
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		x := make([]float64, 4096)
		for i := range x {
			x[i] = 1
		}
		c.AllreduceF64(x, mpi.OpSum)
		if x[0] != float64(c.Size()) {
			t.Errorf("rank %d: allreduce under calibration = %g, want %d", c.Rank(), x[0], c.Size())
		}
		data := make([]byte, 64<<10)
		if c.Rank() == 0 {
			for i := range data {
				data[i] = 0x5C
			}
		}
		c.Bcast(0, data)
		if data[len(data)-1] != 0x5C {
			t.Errorf("rank %d: bcast under calibration lost payload", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCalibrationBeatsDefaultsEndToEnd: on a point where the calibrated
// table disagrees with the defaults, the tuned engine run is at least as
// fast in virtual time — the -check contract, demonstrated through the
// public API rather than the sweep bookkeeping.
func TestCalibrationBeatsDefaultsEndToEnd(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	tab := TableFor(stack.Name)
	var def *coll.Tuning
	tuned := &coll.Tuning{Table: tab, Stack: stack.Name}

	// Find a disagreement point on the bcast ladder (the calibration keeps
	// binomial far past the default 12 KB switch on this stack).
	const np = 8
	bytes := -1
	for _, b := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		if tuned.Select(coll.OpBcast, np, b, false) != def.Select(coll.OpBcast, np, b, false) {
			bytes = b
			break
		}
	}
	if bytes < 0 {
		t.Skip("calibration agrees with defaults on the whole bcast ladder")
	}
	measure := func(table *coll.Table) float64 {
		cfg := mpi.Config{
			Cluster:   cluster.Xeon2(),
			Stack:     stack,
			NP:        np,
			Placement: topo.Block(np, cluster.Xeon2().NumNodes),
		}
		cfg.Coll.Table = table
		rep, err := mpi.Run(cfg, func(c *mpi.Comm) {
			data := make([]byte, bytes)
			for i := 0; i < 4; i++ {
				c.Bcast(0, data)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	tTuned, tDef := measure(tab), measure(nil)
	if tTuned > tDef {
		t.Errorf("tuned bcast at %dB: %.3gs > default %.3gs", bytes, tTuned, tDef)
	}
	if tTuned == tDef {
		t.Errorf("tuned and default runs identical at %dB despite differing selection", bytes)
	}
}

func TestStackByName(t *testing.T) {
	if _, ok := StackByName("mvapich2"); !ok {
		t.Error("mvapich2 preset not found")
	}
	if _, ok := StackByName("nope"); ok {
		t.Error("unknown stack resolved")
	}
}

// TestStripeLadder: the stripe sweep dimension resolves to {0} on
// single-rail stacks, defaults to {0, railCount} on multirail ones, always
// forces the unstriped point into a user list, and drops invalid widths.
func TestStripeLadder(t *testing.T) {
	for _, tc := range []struct {
		opts  []int
		rails int
		want  []int
	}{
		{nil, 1, []int{0}},
		{[]int{2}, 1, []int{0}},
		{nil, 2, []int{0, 2}},
		{[]int{2}, 2, []int{0, 2}},
		{[]int{2, 2, 0}, 2, []int{0, 2}},
		{[]int{5, -1}, 2, []int{0}}, // out-of-range widths dropped
		{[]int{2, 3}, 3, []int{0, 2, 3}},
	} {
		got := stripeLadder(append([]int(nil), tc.opts...), tc.rails)
		if len(got) != len(tc.want) {
			t.Errorf("stripeLadder(%v, %d) = %v, want %v", tc.opts, tc.rails, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("stripeLadder(%v, %d) = %v, want %v", tc.opts, tc.rails, got, tc.want)
				break
			}
		}
	}
}

// TestStripeSweepSingleRailByteIdentical: adding stripe options to a
// single-rail sweep changes nothing — the emitted table is byte-identical,
// so the pre-striping calibrations stay reproducible.
func TestStripeSweepSingleRailByteIdentical(t *testing.T) {
	base, err := Sweep(cluster.MPICH2NmadIB(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := smallOpts()
	o.Stripes = []int{2}
	with, err := Sweep(cluster.MPICH2NmadIB(), o)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := base.Table.JSON()
	b2, _ := with.Table.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("stripe options perturbed a single-rail sweep:\n%s\nvs\n%s", b1, b2)
	}
}
