package coll

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func TestBcastScatterAllgatherAllNP(t *testing.T) {
	for _, n := range testNPs {
		for _, sz := range []int{0, 3, 16, 257} { // incl. sz < np (empty chunks)
			for root := 0; root < n; root += 3 {
				n, sz, root := n, sz, root
				t.Run(fmt.Sprintf("np%d/sz%d/root%d", n, sz, root), func(t *testing.T) {
					bufs := make([][]byte, n)
					for r := range bufs {
						bufs[r] = make([]byte, sz)
						if r == root {
							for i := range bufs[r] {
								bufs[r][i] = byte(i*5 + root)
							}
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return BuildBcastScatterAllgather(rank, n, root, bufs[rank])
					}, 20)
					for r := range bufs {
						for i := range bufs[r] {
							if bufs[r][i] != byte(i*5+root) {
								t.Fatalf("rank %d byte %d = %d", r, i, bufs[r][i])
							}
						}
					}
				})
			}
		}
	}
}

func TestRabenseifnerAllreduce(t *testing.T) {
	// Power-of-two sizes run the real reduce-scatter + allgather; others
	// exercise the recursive-doubling fallback. Vector lengths include odd
	// sizes and lengths below the rank count (empty windows).
	for _, n := range []int{2, 3, 4, 6, 8, 16} {
		for _, m := range []int{1, 2, 5, 16, 33} {
			n, m := n, m
			t.Run(fmt.Sprintf("np%d/len%d", n, m), func(t *testing.T) {
				vecs := make([][]float64, n)
				for r := range vecs {
					vecs[r] = make([]float64, m)
					for i := range vecs[r] {
						vecs[r][i] = float64(r*100 + i)
					}
				}
				execSched(t, n, func(rank int) *Schedule {
					return BuildAllreduceRabenseifner(rank, n, vecs[rank], OpSum)
				}, 21)
				for i := 0; i < m; i++ {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r*100 + i)
					}
					for r := 0; r < n; r++ {
						if math.Abs(vecs[r][i]-want) > 1e-9 {
							t.Fatalf("rank %d elem %d = %g, want %g", r, i, vecs[r][i], want)
						}
					}
				}
			})
		}
	}
}

func TestBruckAllgatherAllNP(t *testing.T) {
	for _, n := range testNPs {
		n := n
		t.Run(fmt.Sprintf("np%d", n), func(t *testing.T) {
			// Irregular block sizes: rank r contributes r%3+1 bytes.
			blockOf := func(r int) []byte {
				b := make([]byte, r%3+1)
				for i := range b {
					b[i] = byte(r*7 + i)
				}
				return b
			}
			outs := make([][][]byte, n)
			for r := 0; r < n; r++ {
				outs[r] = make([][]byte, n)
				for q := 0; q < n; q++ {
					outs[r][q] = make([]byte, q%3+1)
				}
			}
			execSched(t, n, func(rank int) *Schedule {
				return BuildAllgatherBruck(rank, n, blockOf(rank), outs[rank])
			}, 22)
			for r := 0; r < n; r++ {
				for q := 0; q < n; q++ {
					if !bytes.Equal(outs[r][q], blockOf(q)) {
						t.Fatalf("rank %d slot %d = %v, want %v", r, q, outs[r][q], blockOf(q))
					}
				}
			}
		})
	}
}

func TestScatterScheduleAllNP(t *testing.T) {
	for _, n := range testNPs {
		for root := 0; root < n; root += 2 {
			n, root := n, root
			t.Run(fmt.Sprintf("np%d/root%d", n, root), func(t *testing.T) {
				blocks := make([][]byte, n)
				for r := range blocks {
					blocks[r] = []byte(fmt.Sprintf("blk-%02d", r))
				}
				got := make([][]byte, n)
				for r := range got {
					got[r] = make([]byte, len(blocks[r]))
				}
				execSched(t, n, func(rank int) *Schedule {
					var bs [][]byte
					if rank == root {
						bs = blocks
					}
					return BuildScatter(rank, n, root, bs, got[rank])
				}, 23)
				for r := range got {
					if !bytes.Equal(got[r], blocks[r]) {
						t.Fatalf("rank %d got %q, want %q", r, got[r], blocks[r])
					}
				}
			})
		}
	}
}

func TestTwoLevelAllgatherFabric(t *testing.T) {
	for _, n := range testNPs {
		if n < 2 {
			continue
		}
		for pi, nodes := range testPlacements(n) {
			nodes := nodes
			t.Run(fmt.Sprintf("np%d/p%d", n, pi), func(t *testing.T) {
				blockOf := func(r int) []byte {
					b := make([]byte, r%4+1)
					for i := range b {
						b[i] = byte(r*11 + i)
					}
					return b
				}
				outs := make([][][]byte, n)
				for r := 0; r < n; r++ {
					outs[r] = make([][]byte, n)
					for q := 0; q < n; q++ {
						outs[r][q] = make([]byte, q%4+1)
					}
				}
				execSched(t, n, func(rank int) *Schedule {
					return BuildAllgatherTwoLevel(rank, nodes, blockOf(rank), outs[rank])
				}, 24)
				for r := 0; r < n; r++ {
					for q := 0; q < n; q++ {
						if !bytes.Equal(outs[r][q], blockOf(q)) {
							t.Fatalf("rank %d slot %d = %v, want %v", r, q, outs[r][q], blockOf(q))
						}
					}
				}
			})
		}
	}
}

func TestTwoLevelAlltoallFabric(t *testing.T) {
	for _, n := range testNPs {
		if n < 2 {
			continue
		}
		for pi, nodes := range testPlacements(n) {
			nodes := nodes
			t.Run(fmt.Sprintf("np%d/p%d", n, pi), func(t *testing.T) {
				const b = 6
				blk := func(src, dst int) []byte {
					x := make([]byte, b)
					for i := range x {
						x[i] = byte(src*31 + dst*7 + i)
					}
					return x
				}
				recvs := make([][][]byte, n)
				for r := 0; r < n; r++ {
					recvs[r] = make([][]byte, n)
					for q := 0; q < n; q++ {
						recvs[r][q] = make([]byte, b)
					}
				}
				execSched(t, n, func(rank int) *Schedule {
					send := make([][]byte, n)
					for d := 0; d < n; d++ {
						send[d] = blk(rank, d)
					}
					return BuildAlltoallTwoLevel(rank, nodes, send, recvs[rank])
				}, 25)
				for r := 0; r < n; r++ {
					for q := 0; q < n; q++ {
						if !bytes.Equal(recvs[r][q], blk(q, r)) {
							t.Fatalf("rank %d from %d = %v, want %v", r, q, recvs[r][q], blk(q, r))
						}
					}
				}
			})
		}
	}
}

// TestNewBuilderRoundShapes extends the deadlock-freedom invariant to the
// tuned and two-level algorithm set.
func TestNewBuilderRoundShapes(t *testing.T) {
	x := make([]float64, 40)
	data := make([]byte, 4096)
	for _, n := range testNPs {
		blocks := make([][]byte, n)
		for i := range blocks {
			blocks[i] = make([]byte, 8)
		}
		nodes := make([]int, n)
		for r := range nodes {
			nodes[r] = r % 2
		}
		for rank := 0; rank < n; rank++ {
			checkRoundShape(t, BuildBcastScatterAllgather(rank, n, 0, data),
				fmt.Sprintf("bcast-sag/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllreduceRabenseifner(rank, n, x, OpSum),
				fmt.Sprintf("rabenseifner/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllgatherBruck(rank, n, blocks[0], blocks),
				fmt.Sprintf("bruck/np%d/r%d", n, rank))
			checkRoundShape(t, BuildScatter(rank, n, 0, blocks, blocks[rank]),
				fmt.Sprintf("scatter/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllgatherTwoLevel(rank, nodes, blocks[0], blocks),
				fmt.Sprintf("allgather2l/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAlltoallTwoLevel(rank, nodes, blocks, blocks),
				fmt.Sprintf("alltoall2l/np%d/r%d", n, rank))
		}
	}
}

func TestSelectTable(t *testing.T) {
	var tn *Tuning
	cases := []struct {
		op       OpKind
		size     int
		bytes    int
		twoLevel bool
		want     Algo
	}{
		{OpBarrier, 8, 0, false, AlgoDissemination},
		{OpBarrier, 8, 0, true, AlgoTwoLevel},
		{OpBcast, 16, 1024, false, AlgoBinomial},
		{OpBcast, 16, 64 << 10, false, AlgoScatterAllgather},
		{OpBcast, 4, 64 << 10, false, AlgoBinomial}, // too few ranks to scatter
		{OpBcast, 16, 64 << 10, true, AlgoTwoLevel},
		{OpAllreduce, 8, 256, false, AlgoRecDoubling},
		{OpAllreduce, 8, 64 << 10, false, AlgoRabenseifner},
		{OpAllreduce, 6, 64 << 10, false, AlgoRecDoubling}, // non-power-of-two
		{OpAllreduce, 8, 64 << 10, true, AlgoTwoLevel},
		{OpAllgather, 8, 1024, false, AlgoBruck},
		{OpAllgather, 8, 1 << 20, false, AlgoRing},
		{OpAlltoall, 8, 1024, false, AlgoPairwise},
		{OpGather, 8, 1024, false, AlgoLinear},
		{OpScatter, 8, 1024, false, AlgoLinear},
	}
	for _, c := range cases {
		if got := tn.Select(c.op, c.size, c.bytes, c.twoLevel); got != c.want {
			t.Errorf("Select(%s, np%d, %dB, twoLevel=%v) = %s, want %s",
				c.op, c.size, c.bytes, c.twoLevel, got, c.want)
		}
	}
	forced := &Tuning{Force: map[OpKind]Algo{OpAllgather: AlgoRing}}
	if got := forced.Select(OpAllgather, 8, 10, false); got != AlgoRing {
		t.Errorf("forced Select = %s, want ring", got)
	}
}

// TestKeyForFallbacks: two-level requests degrade gracefully when the
// topology or the block shapes rule the hierarchical variant out.
func TestKeyForFallbacks(t *testing.T) {
	a := Args{Rank: 0, Size: 8, Data: make([]byte, 64)}
	if k := KeyFor(nil, OpBcast, a, true); k.Algo != AlgoBinomial {
		t.Errorf("two-level bcast without nodes → %s, want binomial", k.Algo)
	}
	irregular := Args{Rank: 0, Size: 4, Nodes: []int{0, 0, 1, 1},
		Send: [][]byte{make([]byte, 1), make([]byte, 2), make([]byte, 1), make([]byte, 1)},
		Recv: [][]byte{make([]byte, 1), make([]byte, 1), make([]byte, 1), make([]byte, 1)}}
	if k := KeyFor(nil, OpAlltoall, irregular, true); k.Algo != AlgoPairwise {
		t.Errorf("two-level alltoall with irregular blocks → %s, want pairwise", k.Algo)
	}
	uniform := Args{Rank: 0, Size: 4, Nodes: []int{0, 0, 1, 1},
		Send: [][]byte{make([]byte, 2), make([]byte, 2), make([]byte, 2), make([]byte, 2)},
		Recv: [][]byte{make([]byte, 2), make([]byte, 2), make([]byte, 2), make([]byte, 2)}}
	if k := KeyFor(nil, OpAlltoall, uniform, true); k.Algo != AlgoTwoLevel {
		t.Errorf("two-level alltoall with uniform blocks → %s, want two-level", k.Algo)
	}
}

// TestRebind: a schedule compiled against one set of buffers re-executes
// correctly against another after Rebind, without touching the originals —
// the persistent-schedule property the mpi cache relies on.
func TestRebind(t *testing.T) {
	const n = 4
	// Compile a large-payload bcast (sub-slicing algorithm) per rank.
	mkArgs := func(bufs [][]byte, rank int) Args {
		return Args{Rank: rank, Size: n, Root: 0, Data: bufs[rank]}
	}
	bufs1 := make([][]byte, n)
	bufs2 := make([][]byte, n)
	for r := 0; r < n; r++ {
		bufs1[r] = make([]byte, 100)
		bufs2[r] = make([]byte, 100)
	}
	fill := func(b []byte, seed byte) {
		for i := range b {
			b[i] = byte(i)*3 + seed
		}
	}
	fill(bufs1[0], 1)
	fill(bufs2[0], 2)

	scheds := make([]*Schedule, n)
	for r := 0; r < n; r++ {
		scheds[r] = Build(Key{Op: OpBcast, Algo: AlgoScatterAllgather, Root: 0},
			mkArgs(bufs1, r))
	}
	runAll(t, n, func(p *peer) { ExecBlocking(p, scheds[p.Rank()], 30) })
	for r := 0; r < n; r++ {
		if bufs1[r][50] != byte(50)*3+1 {
			t.Fatalf("first run: rank %d wrong", r)
		}
	}

	// Rebind every rank's schedule to the second buffer set and re-execute.
	for r := 0; r < n; r++ {
		scheds[r].Rebind(mkArgs(bufs1, r).BufArgs(), mkArgs(bufs2, r).BufArgs())
	}
	runAll(t, n, func(p *peer) { ExecBlocking(p, scheds[p.Rank()], 31) })
	for r := 0; r < n; r++ {
		for i := range bufs2[r] {
			if bufs2[r][i] != byte(i)*3+2 {
				t.Fatalf("rebound run: rank %d byte %d = %d", r, i, bufs2[r][i])
			}
			if bufs1[r][i] != byte(i)*3+1 {
				t.Fatalf("rebound run clobbered original: rank %d byte %d", r, i)
			}
		}
	}
}

// TestRebindAllreduce covers f64 regions and operator rewriting.
func TestRebindAllreduce(t *testing.T) {
	const n, m = 4, 10
	mk := func() [][]float64 {
		vs := make([][]float64, n)
		for r := range vs {
			vs[r] = make([]float64, m)
			for i := range vs[r] {
				vs[r][i] = float64(r + i)
			}
		}
		return vs
	}
	v1, v2 := mk(), mk()
	scheds := make([]*Schedule, n)
	for r := 0; r < n; r++ {
		scheds[r] = BuildAllreduceRabenseifner(r, n, v1[r], OpSum)
	}
	runAll(t, n, func(p *peer) { ExecBlocking(p, scheds[p.Rank()], 32) })

	for r := 0; r < n; r++ {
		old := Args{Rank: r, Size: n, X: v1[r], Op: OpSum}.BufArgs()
		new := Args{Rank: r, Size: n, X: v2[r], Op: OpMax}.BufArgs()
		scheds[r].Rebind(old, new)
	}
	runAll(t, n, func(p *peer) { ExecBlocking(p, scheds[p.Rank()], 33) })
	for r := 0; r < n; r++ {
		for i := range v2[r] {
			if v2[r][i] != float64(n-1+i) { // max over ranks of (r+i)
				t.Fatalf("rank %d elem %d = %g, want %g", r, i, v2[r][i], float64(n-1+i))
			}
		}
	}
}
