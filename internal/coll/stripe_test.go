package coll

import "testing"

func twoRails() []RailInfo {
	return []RailInfo{
		{Name: "ib", LatencyNS: 1200, BytesPerSec: 1.25e9},
		{Name: "mx", LatencyNS: 2000, BytesPerSec: 1.15e9},
	}
}

func TestStripingWidthResolution(t *testing.T) {
	rails := twoRails()
	for _, tc := range []struct {
		st   Striping
		want int
	}{
		{Striping{}, 0},
		{Striping{Width: 2}, 0},               // no known rails
		{Striping{Width: 1, Rails: rails}, 0}, // below two
		{Striping{Width: 2, Rails: rails}, 2},
		{Striping{Width: 5, Rails: rails}, 2},     // clamps to rail count
		{Striping{Width: 2, Rails: rails[:1]}, 0}, // single-rail stack
	} {
		if got := tc.st.width(); got != tc.want {
			t.Errorf("width(%+v) = %d, want %d", tc.st, got, tc.want)
		}
	}
}

func TestStampRailsThresholdAndWidth(t *testing.T) {
	// Only send prims at or above stripeMinBytes get the -width stamp;
	// receives and small sends keep automatic placement.
	s := &Schedule{}
	rd := s.round()
	rd.Comm = append(rd.Comm,
		sendP(1, make([]byte, stripeMinBytes)),
		sendP(2, make([]byte, stripeMinBytes-1)),
		recvP(3, make([]byte, 1<<20)),
		sendF64(4, make([]float64, stripeMinBytes/8)),
	)
	stampRails(s, 0, Striping{Width: 2, Rails: twoRails()})
	want := []int{-2, 0, 0, -2}
	for i, w := range want {
		if got := s.Rounds[0].Comm[i].Rail; got != w {
			t.Errorf("prim %d: Rail = %d, want %d", i, got, w)
		}
	}
}

func TestStampRailsZeroStripingIsNoOp(t *testing.T) {
	s := &Schedule{}
	rd := s.round()
	rd.Comm = append(rd.Comm, sendP(1, make([]byte, 1<<20)))
	stampRails(s, 0, Striping{})
	if s.Rounds[0].Comm[0].Rail != 0 {
		t.Fatal("zero striping must leave every hint at 0")
	}
}

func TestStampRailsRespectsPhaseStart(t *testing.T) {
	// The two-level builders stripe only from their inter-node phase on;
	// rounds before lo must stay untouched.
	s := &Schedule{}
	for i := 0; i < 3; i++ {
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(1, make([]byte, 1<<20)))
	}
	stampRails(s, 2, Striping{Width: 2, Rails: twoRails()})
	for i, want := range []int{0, 0, -2} {
		if got := s.Rounds[i].Comm[0].Rail; got != want {
			t.Errorf("round %d: Rail = %d, want %d", i, got, want)
		}
	}
}

func TestTwoLevelStripedStampsOnlyInterNodePhase(t *testing.T) {
	// Four ranks on two nodes: the leader's inter-node send must carry the
	// stripe, its intra-node fan-out must not (shared memory has no rails).
	nodes := []int{0, 0, 1, 1}
	data := make([]byte, 64<<10)
	s := BuildBcastTwoLevelStriped(0, nodes, 0, data, Striping{Width: 2, Rails: twoRails()})
	var inter, intra int
	for _, rd := range s.Rounds {
		for _, pr := range rd.Comm {
			if pr.Kind != PrimSend {
				continue
			}
			if pr.Peer == 2 { // the other node's leader
				inter++
				if pr.Rail != -2 {
					t.Errorf("inter-node send to %d: Rail = %d, want -2", pr.Peer, pr.Rail)
				}
			} else {
				intra++
				if pr.Rail != 0 {
					t.Errorf("intra-node send to %d: Rail = %d, want 0", pr.Peer, pr.Rail)
				}
			}
		}
	}
	if inter == 0 || intra == 0 {
		t.Fatalf("expected both phases to emit sends: inter=%d intra=%d", inter, intra)
	}
}

func TestStripeForPrecedence(t *testing.T) {
	rails := twoRails()
	table := &Table{Stack: "s", Ops: map[string][]TableEntry{
		"bcast": {{MaxBytes: -1, Algo: AlgoChain, Seg: 32 << 10, Stripe: 2}},
	}}
	cases := []struct {
		name string
		tun  *Tuning
		want int
	}{
		{"nil tuning", nil, 0},
		{"single rail", &Tuning{StripeWidth: 2, Rails: rails[:1]}, 0},
		{"no source", &Tuning{Rails: rails}, 0},
		{"forced", &Tuning{StripeWidth: 2, Rails: rails}, 2},
		{"forced clamps", &Tuning{StripeWidth: 7, Rails: rails}, 2},
		{"forced width 1 off", &Tuning{StripeWidth: 1, Rails: rails}, 0},
		{"table entry", &Tuning{Table: table, Rails: rails}, 2},
		{"force beats table", &Tuning{StripeWidth: 2, Table: table, Rails: rails}, 2},
	}
	for _, tc := range cases {
		if got := tc.tun.StripeFor(OpBcast, 8, 1<<20); got != tc.want {
			t.Errorf("%s: StripeFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestKeyForStripeShape(t *testing.T) {
	data := make([]byte, 1<<20)
	a := Args{Size: 8, Root: 0, Data: data}
	multi := &Tuning{Force: map[OpKind]Algo{OpBcast: AlgoChain},
		StripeWidth: 2, Rails: twoRails()}
	k := KeyFor(multi, OpBcast, a, false)
	if k.Stripe != 2 || k.Rails != "ib+mx" {
		t.Fatalf("striped key = %+v, want Stripe=2 Rails=ib+mx", k)
	}

	// Different stripe widths are different cache shapes.
	multi.StripeWidth = 0
	if k0 := KeyFor(multi, OpBcast, a, false); k0 == k {
		t.Fatal("stripe width must be part of the cache key")
	}

	// A single-rail stack yields the zero stripe fields whatever is forced —
	// its keys are byte-identical to the pre-striping era.
	single := &Tuning{Force: map[OpKind]Algo{OpBcast: AlgoChain},
		StripeWidth: 2, Rails: twoRails()[:1]}
	bare := &Tuning{Force: map[OpKind]Algo{OpBcast: AlgoChain}}
	ks := KeyFor(single, OpBcast, a, false)
	if ks.Stripe != 0 || ks.Rails != "" {
		t.Fatalf("single-rail key carries stripe fields: %+v", ks)
	}
	if kb := KeyFor(bare, OpBcast, a, false); ks != kb {
		t.Fatalf("single-rail key %+v differs from rail-less key %+v", ks, kb)
	}
}

func TestStripedScheduleSameDataMovement(t *testing.T) {
	// A striped chain bcast must be the unstriped schedule plus rail hints:
	// same rounds, same prims, same payload bytes — only Rail differs.
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := Build(Key{Op: OpBcast, Algo: AlgoChain}, Args{Rank: 1, Size: 4, Root: 0, Data: cpb(data)})
	striped := Build(Key{Op: OpBcast, Algo: AlgoChain},
		Args{Rank: 1, Size: 4, Root: 0, Data: cpb(data), Stripe: 2, Rails: twoRails()})
	if len(base.Rounds) != len(striped.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(base.Rounds), len(striped.Rounds))
	}
	stamped := 0
	for ri := range base.Rounds {
		b, st := base.Rounds[ri].Comm, striped.Rounds[ri].Comm
		if len(b) != len(st) {
			t.Fatalf("round %d: prim counts differ", ri)
		}
		for i := range b {
			if b[i].Kind != st[i].Kind || b[i].Peer != st[i].Peer ||
				len(SendPayload(&b[i])) != len(SendPayload(&st[i])) {
				t.Fatalf("round %d prim %d: data movement differs", ri, i)
			}
			if st[i].Rail != 0 {
				stamped++
			}
		}
	}
	if stamped == 0 {
		t.Fatal("striped schedule carries no rail stamps")
	}
}
