package coll

import (
	"bytes"
	"strings"
	"testing"
)

// TestZeroValueTuningMatchesDefaults: the zero Tuning and the nil Tuning
// select identically over the whole (op, size, bytes, twoLevel) grid — the
// guarantee that adding tables changed nothing for untouched configs.
// (TestSelectTable pins the nil selection to the documented defaults, so
// equality here pins the zero value to them too.)
func TestZeroValueTuningMatchesDefaults(t *testing.T) {
	var nilTn *Tuning
	zero := &Tuning{}
	sizes := []int{1, 2, 3, 4, 6, 8, 13, 16, 64}
	bytess := []int{0, 1, 256, 4 << 10, 12 << 10, 12<<10 + 1, 32 << 10, 32<<10 + 1, 1 << 20}
	for op := OpKind(0); op < numOps; op++ {
		for _, size := range sizes {
			for _, b := range bytess {
				for _, twoLevel := range []bool{false, true} {
					got := zero.Select(op, size, b, twoLevel)
					want := nilTn.Select(op, size, b, twoLevel)
					if got != want {
						t.Fatalf("Select(%s, np%d, %dB, 2lvl=%v): zero Tuning = %s, nil = %s",
							op, size, b, twoLevel, got, want)
					}
				}
			}
		}
	}
	// Spot-pin two documented defaults so this test fails on its own if the
	// default table itself moves.
	if got := zero.Select(OpBcast, 16, DefBcastLong+1, false); got != AlgoScatterAllgather {
		t.Errorf("zero-value bcast above threshold = %s, want scatter-allgather", got)
	}
	if got := zero.Select(OpAllgather, 8, DefAllgatherLong, false); got != AlgoBruck {
		t.Errorf("zero-value allgather at threshold = %s, want bruck", got)
	}
}

func tableFlippingAllgather() *Table {
	// Calibrated-style table: ring already wins from 8 KB up (the default
	// switches at 32 KB) and bcast switches later than the default.
	return &Table{
		Stack: "test-stack",
		Ops: map[string][]TableEntry{
			"allgather": {
				{MaxBytes: 8 << 10, Algo: AlgoBruck},
				{MaxBytes: -1, Algo: AlgoRing},
			},
			"bcast": {
				{MaxBytes: 48 << 10, Algo: AlgoBinomial},
				{MaxBytes: -1, Algo: AlgoScatterAllgather},
			},
		},
	}
}

func TestTableDrivenSelection(t *testing.T) {
	tab := tableFlippingAllgather()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tn := &Tuning{Table: tab, Stack: "test-stack"}

	// The table flips selections inside the window where it disagrees with
	// the defaults.
	if got := tn.Select(OpAllgather, 8, 16<<10, false); got != AlgoRing {
		t.Errorf("tabled allgather at 16KB = %s, want ring", got)
	}
	if got := (*Tuning)(nil).Select(OpAllgather, 8, 16<<10, false); got != AlgoBruck {
		t.Errorf("default allgather at 16KB = %s, want bruck", got)
	}
	if got := tn.Select(OpBcast, 16, 24<<10, false); got != AlgoBinomial {
		t.Errorf("tabled bcast at 24KB = %s, want binomial", got)
	}

	// Operations the table does not cover keep the default selection.
	if got := tn.Select(OpAllreduce, 8, 64<<10, false); got != AlgoRabenseifner {
		t.Errorf("uncovered allreduce = %s, want rabenseifner", got)
	}

	// Topology outranks the table; Force outranks both.
	if got := tn.Select(OpAllgather, 8, 16<<10, true); got != AlgoTwoLevel {
		t.Errorf("two-level with table = %s, want two-level", got)
	}
	forced := &Tuning{Table: tab, Force: map[OpKind]Algo{OpAllgather: AlgoBruck}}
	if got := forced.Select(OpAllgather, 8, 1<<20, false); got != AlgoBruck {
		t.Errorf("forced with table = %s, want bruck", got)
	}
}

// TestTableFallbackNormalization: a table naming a power-of-two-only
// algorithm at a non-power-of-two rank count selects the algorithm the
// builder would actually construct, keeping Key.Algo honest.
func TestTableFallbackNormalization(t *testing.T) {
	tab := &Table{
		Stack: "t",
		Ops: map[string][]TableEntry{
			"allreduce":      {{MaxBytes: -1, Algo: AlgoRabenseifner}},
			"reduce-scatter": {{MaxBytes: -1, Algo: AlgoRecHalving}},
		},
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tn := &Tuning{Table: tab}
	cases := []struct {
		op         OpKind
		pow2, rest Algo
	}{
		{OpAllreduce, AlgoRabenseifner, AlgoRecDoubling},
		{OpReduceScatter, AlgoRecHalving, AlgoPairwise},
	}
	for _, c := range cases {
		if got := tn.Select(c.op, 8, 1<<20, false); got != c.pow2 {
			t.Errorf("%s np8 = %s, want %s", c.op, got, c.pow2)
		}
		if got := tn.Select(c.op, 6, 1<<20, false); got != c.rest {
			t.Errorf("%s np6 = %s, want %s (builder fallback)", c.op, got, c.rest)
		}
	}
}

func TestParseTableErrors(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"garbage", `{]`, "parsing tuning table"},
		{"unknown field", `{"stack":"s","ops":{},"extra":1}`, "parsing tuning table"},
		{"unknown op", `{"stack":"s","ops":{"allgathr":[{"max_bytes":-1,"algo":"ring"}]}}`, `unknown operation "allgathr"`},
		{"unknown algo", `{"stack":"s","ops":{"allgather":[{"max_bytes":-1,"algo":"rings"}]}}`, `unknown algorithm "rings"`},
		{"unregistered pair", `{"stack":"s","ops":{"allgather":[{"max_bytes":-1,"algo":"binomial"}]}}`, "no binomial builder registered"},
		{"not byte-tunable", `{"stack":"s","ops":{"alltoallv":[{"max_bytes":4096,"algo":"pairwise"},{"max_bytes":-1,"algo":"ring"}]}}`, "does not key on payload size"},
		{"two-level entry", `{"stack":"s","ops":{"bcast":[{"max_bytes":-1,"algo":"two-level"}]}}`, "not a flat algorithm"},
		{"empty op", `{"stack":"s","ops":{"bcast":[]}}`, "no entries"},
		{"not ascending", `{"stack":"s","ops":{"bcast":[{"max_bytes":4096,"algo":"binomial"},{"max_bytes":1024,"algo":"binomial"},{"max_bytes":-1,"algo":"scatter-allgather"}]}}`, "not ascending"},
		{"bounded last", `{"stack":"s","ops":{"bcast":[{"max_bytes":4096,"algo":"binomial"}]}}`, "must be unbounded"},
		{"unbounded not last", `{"stack":"s","ops":{"bcast":[{"max_bytes":-1,"algo":"binomial"},{"max_bytes":4096,"algo":"binomial"}]}}`, "must be last"},
	}
	for _, c := range cases {
		_, err := ParseTable([]byte(c.json))
		if err == nil {
			t.Errorf("%s: ParseTable accepted malformed table", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab := tableFlippingAllgather()
	b1, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := tab.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatal("Table.JSON is not deterministic")
	}
	var tn Tuning
	if err := tn.LoadTable(b1); err != nil {
		t.Fatalf("LoadTable round trip: %v", err)
	}
	if got := tn.Select(OpAllgather, 8, 16<<10, false); got != AlgoRing {
		t.Errorf("round-tripped table selects %s at 16KB, want ring", got)
	}
	b3, _ := tn.Table.JSON()
	if !bytes.Equal(b1, b3) {
		t.Fatalf("JSON → ParseTable → JSON changed bytes:\n%s\nvs\n%s", b1, b3)
	}
}

func TestTuningValidate(t *testing.T) {
	if err := (&Tuning{}).Validate(); err != nil {
		t.Fatalf("zero tuning invalid: %v", err)
	}
	if err := (*Tuning)(nil).Validate(); err != nil {
		t.Fatalf("nil tuning invalid: %v", err)
	}
	bad := &Tuning{Force: map[OpKind]Algo{OpBarrier: AlgoRing}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "no such builder") {
		t.Errorf("forcing ring barrier: err = %v, want builder complaint", err)
	}
	bad2 := &Tuning{Force: map[OpKind]Algo{OpAlltoallv: AlgoTwoLevel}}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "two-level") {
		t.Errorf("forcing two-level alltoallv: err = %v, want two-level complaint", err)
	}
	ok := &Tuning{Force: map[OpKind]Algo{OpBcast: AlgoScatterAllgather, OpBarrier: AlgoAuto}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid force rejected: %v", err)
	}

	// A table calibrated for another stack is rejected when the run's
	// stack identity is known; claiming the table's stack explicitly (the
	// deliberate cross-application escape hatch) passes.
	tab := tableFlippingAllgather() // calibrated for "test-stack"
	mismatch := &Tuning{Table: tab, Stack: "mvapich2"}
	if err := mismatch.Validate(); err == nil || !strings.Contains(err.Error(), "calibrated for stack") {
		t.Errorf("cross-stack table: err = %v, want mismatch complaint", err)
	}
	deliberate := &Tuning{Table: tab, Stack: "test-stack"}
	if err := deliberate.Validate(); err != nil {
		t.Errorf("matching stacks rejected: %v", err)
	}
	anonymous := &Tuning{Table: tab}
	if err := anonymous.Validate(); err != nil {
		t.Errorf("tuning without stack identity rejected: %v", err)
	}
}

// TestKeyCarriesStack: stack identity flows from the tuning into the cache
// key, so keys minted under different stacks never conflate.
func TestKeyCarriesStack(t *testing.T) {
	a := Args{Rank: 0, Size: 8, Data: make([]byte, 64)}
	k1 := KeyFor(&Tuning{Stack: "mpich2-nmad-ib"}, OpBcast, a, false)
	k2 := KeyFor(&Tuning{Stack: "mvapich2"}, OpBcast, a, false)
	if k1.Stack != "mpich2-nmad-ib" || k2.Stack != "mvapich2" {
		t.Fatalf("keys carry stacks %q / %q", k1.Stack, k2.Stack)
	}
	if k1 == k2 {
		t.Fatal("keys under different stacks compare equal")
	}
	if k := KeyFor(nil, OpBcast, a, false); k.Stack != "" {
		t.Fatalf("nil tuning key carries stack %q", k.Stack)
	}
}

// TestTableBeatsLongOverride pins the documented precedence order
// (Force > two-level > Table > *Long > defaults): when a table covers an
// operation, a conflicting *Long override is dead — selection must follow
// the table in both directions of the conflict, and the *Long knob only
// resurfaces for operations the table does not cover.
func TestTableBeatsLongOverride(t *testing.T) {
	tab := &Table{Stack: "s", Ops: map[string][]TableEntry{
		"bcast":     {{MaxBytes: -1, Algo: AlgoBinomial}},
		"allreduce": {{MaxBytes: -1, Algo: AlgoRabenseifner}},
	}}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tn := &Tuning{
		Table:         tab,
		Stack:         "s",
		BcastLong:     1,       // default switch would say scatter-allgather at 64KB
		AllreduceLong: 1 << 30, // default switch would say recursive-doubling at 64KB
	}
	if got := tn.Select(OpBcast, 8, 64<<10, false); got != AlgoBinomial {
		t.Errorf("bcast under table+BcastLong = %s, want binomial (table must beat *Long)", got)
	}
	if got := tn.Select(OpAllreduce, 8, 64<<10, false); got != AlgoRabenseifner {
		t.Errorf("allreduce under table+AllreduceLong = %s, want rabenseifner (table must beat *Long)", got)
	}
	// Allgather is NOT covered by this table, so its *Long override still
	// applies — the knob is only dead for covered operations.
	tn.AllgatherLong = 1
	if got := tn.Select(OpAllgather, 8, 64<<10, false); got != AlgoRing {
		t.Errorf("allgather (uncovered) with AllgatherLong=1 = %s, want ring (the *Long applies)", got)
	}
}
