// Package coll implements the collective algorithms the NAS kernels and the
// benchmark harnesses need, expressed over an abstract point-to-point layer.
// The algorithm set spans the classic MPICH2 latency-optimal choices
// (dissemination barrier, binomial broadcast/reduce, recursive-doubling
// allreduce, ring allgather, pairwise-exchange alltoall), their
// bandwidth-optimal large-message counterparts (van de Geijn
// scatter-allgather broadcast, Rabenseifner allreduce, Bruck allgather) and
// topology-aware two-level variants. A registry plus size/topology-based
// selector (registry.go, see README.md for the table) picks per invocation,
// and Rebind (rebind.go) gives compiled schedules persistent-collective
// semantics for the mpi layer's per-communicator cache.
package coll

import (
	"encoding/binary"
	"math"
)

// PtPt is the point-to-point substrate collectives run over (implemented by
// mpi.Comm).
type PtPt interface {
	Rank() int
	Size() int
	// SendT / RecvT are blocking tagged transfers on the collective context.
	SendT(dst int, tag int32, data []byte)
	RecvT(src int, tag int32, buf []byte) int
	// SendRecvT runs a concurrent send+receive (deadlock-free exchange).
	SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int
}

// RailPtPt is the optional multirail extension of PtPt: a substrate that can
// pin a send to one rail of a multirail stack implements it, and the
// executors then forward the rail hints the striped builders stamped onto
// their send prims (rail encoding as on Prim.Rail: 0 auto, k > 0 pins rail
// k-1). Substrates without rail placement — shared-memory fabrics, the
// conformance harness's in-memory peer, single-rail stacks — simply don't
// implement it and striped schedules execute identically to unstriped ones.
type RailPtPt interface {
	PtPt
	// SendRailT is SendT with a rail placement hint.
	SendRailT(dst int, tag int32, data []byte, rail int)
	// SendRecvRailT is SendRecvT with a rail placement hint on the send half.
	SendRecvRailT(dst int, sdata []byte, src int, rbuf []byte, tag int32, rail int) int
}

// Op is a reduction operator over float64 values applied elementwise.
type Op func(acc, in float64) float64

// Standard operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
	OpMin Op = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
)

// F64Bytes encodes a float64 vector for the wire.
func F64Bytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesF64 decodes len(dst) float64 values from b into dst.
func BytesF64(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// Barrier is a dissemination barrier: ceil(log2(n)) rounds of exchanges.
func Barrier(p PtPt, tag int32) {
	ExecBlocking(p, BuildBarrier(p.Rank(), p.Size()), tag)
}

// Bcast distributes data (in place) from root with a binomial tree.
func Bcast(p PtPt, root int, data []byte, tag int32) {
	ExecBlocking(p, BuildBcast(p.Rank(), p.Size(), root, data), tag)
}

// Reduce combines x from all ranks into root's x with a binomial tree over
// relative ranks. The operator must be commutative.
func Reduce(p PtPt, root int, x []float64, op Op, tag int32) {
	ExecBlocking(p, BuildReduce(p.Rank(), p.Size(), root, x, op), tag)
}

// Allreduce combines x across all ranks in place: recursive doubling with
// the standard pre/post phase for non-power-of-two sizes. The operator must
// be commutative.
func Allreduce(p PtPt, x []float64, op Op, tag int32) {
	ExecBlocking(p, BuildAllreduce(p.Rank(), p.Size(), x, op), tag)
}

// Allgather collects each rank's block into out (out[r] holds rank r's
// contribution; out[rank] is filled from mine) using a ring.
func Allgather(p PtPt, mine []byte, out [][]byte, tag int32) {
	ExecBlocking(p, BuildAllgather(p.Rank(), p.Size(), mine, out), tag)
}

// Alltoall exchanges send[r] → rank r, landing in recv[s] from rank s,
// with a pairwise-exchange schedule (XOR pattern for power-of-two sizes,
// rotated shifts otherwise).
func Alltoall(p PtPt, send, recv [][]byte, tag int32) {
	ExecBlocking(p, BuildAlltoall(p.Rank(), p.Size(), send, recv), tag)
}

// Gather collects each rank's block at root (out[r] is filled on root only).
func Gather(p PtPt, root int, mine []byte, out [][]byte, tag int32) {
	ExecBlocking(p, BuildGather(p.Rank(), p.Size(), root, mine, out), tag)
}
