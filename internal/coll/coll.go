// Package coll implements the collective algorithms the NAS kernels and the
// benchmark harnesses need, expressed over an abstract point-to-point layer:
// dissemination barrier, binomial broadcast and reduce, recursive-doubling
// allreduce, ring allgather and pairwise-exchange alltoall — the classic
// MPICH2 algorithm set.
package coll

import (
	"encoding/binary"
	"math"
)

// PtPt is the point-to-point substrate collectives run over (implemented by
// mpi.Comm).
type PtPt interface {
	Rank() int
	Size() int
	// SendT / RecvT are blocking tagged transfers on the collective context.
	SendT(dst int, tag int32, data []byte)
	RecvT(src int, tag int32, buf []byte) int
	// SendRecvT runs a concurrent send+receive (deadlock-free exchange).
	SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int
}

// Op is a reduction operator over float64 values applied elementwise.
type Op func(acc, in float64) float64

// Standard operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	}
	OpMin Op = func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	}
)

// F64Bytes encodes a float64 vector for the wire.
func F64Bytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesF64 decodes len(dst) float64 values from b into dst.
func BytesF64(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// Barrier is a dissemination barrier: ceil(log2(n)) rounds of exchanges.
func Barrier(p PtPt, tag int32) {
	n := p.Size()
	if n == 1 {
		return
	}
	rank := p.Rank()
	for k := 1; k < n; k <<= 1 {
		dst := (rank + k) % n
		src := (rank - k + n) % n
		p.SendRecvT(dst, nil, src, nil, tag)
	}
}

// Bcast distributes data (in place) from root with a binomial tree.
func Bcast(p PtPt, root int, data []byte, tag int32) {
	n := p.Size()
	if n == 1 {
		return
	}
	rank := p.Rank()
	vr := (rank - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			src := (vr - mask + root + n) % n
			p.RecvT(src, tag, data)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			dst := (vr + mask + root) % n
			p.SendT(dst, tag, data)
		}
		mask >>= 1
	}
}

// Reduce combines x from all ranks into root's x with a binomial tree over
// relative ranks. The operator must be commutative.
func Reduce(p PtPt, root int, x []float64, op Op, tag int32) {
	n := p.Size()
	if n == 1 {
		return
	}
	rank := p.Rank()
	vr := (rank - root + n) % n
	tmp := make([]float64, len(x))
	rbuf := make([]byte, 8*len(x))
	mask := 1
	for mask < n {
		if vr&mask == 0 {
			src := vr | mask
			if src < n {
				real := (src + root) % n
				p.RecvT(real, tag, rbuf)
				BytesF64(tmp, rbuf)
				for i := range x {
					x[i] = op(x[i], tmp[i])
				}
			}
		} else {
			dst := ((vr &^ mask) + root) % n
			p.SendT(dst, tag, F64Bytes(x))
			return
		}
		mask <<= 1
	}
}

// Allreduce combines x across all ranks in place: recursive doubling with
// the standard pre/post phase for non-power-of-two sizes. The operator must
// be commutative.
func Allreduce(p PtPt, x []float64, op Op, tag int32) {
	n := p.Size()
	if n == 1 {
		return
	}
	rank := p.Rank()
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	tmp := make([]float64, len(x))
	rbuf := make([]byte, 8*len(x))

	newrank := -1
	switch {
	case rank < 2*rem && rank%2 == 0:
		p.SendT(rank+1, tag, F64Bytes(x))
	case rank < 2*rem:
		p.RecvT(rank-1, tag, rbuf)
		BytesF64(tmp, rbuf)
		for i := range x {
			x[i] = op(x[i], tmp[i])
		}
		newrank = rank / 2
	default:
		newrank = rank - rem
	}

	if newrank != -1 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := newrank ^ mask
			var real int
			if partner < rem {
				real = partner*2 + 1
			} else {
				real = partner + rem
			}
			p.SendRecvT(real, F64Bytes(x), real, rbuf, tag)
			BytesF64(tmp, rbuf)
			for i := range x {
				x[i] = op(x[i], tmp[i])
			}
		}
	}

	if rank < 2*rem {
		if rank%2 == 0 {
			p.RecvT(rank+1, tag, rbuf)
			BytesF64(x, rbuf)
		} else {
			p.SendT(rank-1, tag, F64Bytes(x))
		}
	}
}

// Allgather collects each rank's block into out (out[r] holds rank r's
// contribution; out[rank] is filled from mine) using a ring.
func Allgather(p PtPt, mine []byte, out [][]byte, tag int32) {
	n := p.Size()
	rank := p.Rank()
	copy(out[rank], mine)
	if n == 1 {
		return
	}
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendIdx := (rank - step + n) % n
		recvIdx := (rank - step - 1 + n) % n
		p.SendRecvT(right, out[sendIdx], left, out[recvIdx], tag)
	}
}

// Alltoall exchanges send[r] → rank r, landing in recv[s] from rank s,
// with a pairwise-exchange schedule (XOR pattern for power-of-two sizes,
// rotated shifts otherwise).
func Alltoall(p PtPt, send, recv [][]byte, tag int32) {
	n := p.Size()
	rank := p.Rank()
	copy(recv[rank], send[rank])
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		for i := 1; i < n; i++ {
			partner := rank ^ i
			p.SendRecvT(partner, send[partner], partner, recv[partner], tag)
		}
		return
	}
	for i := 1; i < n; i++ {
		dst := (rank + i) % n
		src := (rank - i + n) % n
		p.SendRecvT(dst, send[dst], src, recv[src], tag)
	}
}

// Gather collects each rank's block at root (out[r] is filled on root only).
func Gather(p PtPt, root int, mine []byte, out [][]byte, tag int32) {
	n := p.Size()
	rank := p.Rank()
	if rank == root {
		copy(out[rank], mine)
		for r := 0; r < n; r++ {
			if r != root {
				p.RecvT(r, tag, out[r])
			}
		}
		return
	}
	p.SendT(root, tag, mine)
}
