package coll

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// fabric is a trivial in-memory point-to-point layer: one buffered FIFO per
// (src, dst, tag) triple, honouring MPI's per-pair ordering. It lets the
// collective algorithms be verified in isolation from the simulator.
type fabric struct {
	n  int
	mu sync.Mutex
	q  map[string]chan []byte
}

func newFabric(n int) *fabric {
	return &fabric{n: n, q: make(map[string]chan []byte)}
}

func (f *fabric) chanFor(src, dst int, tag int32) chan []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := fmt.Sprintf("%d/%d/%d", src, dst, tag)
	c, ok := f.q[k]
	if !ok {
		c = make(chan []byte, 1024)
		f.q[k] = c
	}
	return c
}

type peer struct {
	f    *fabric
	rank int
}

func (p *peer) Rank() int { return p.rank }
func (p *peer) Size() int { return p.f.n }

func (p *peer) SendT(dst int, tag int32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	p.f.chanFor(p.rank, dst, tag) <- cp
}

func (p *peer) RecvT(src int, tag int32, buf []byte) int {
	m := <-p.f.chanFor(src, p.rank, tag)
	return copy(buf, m)
}

func (p *peer) SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int {
	done := make(chan int, 1)
	go func() {
		p.SendT(dst, tag, sdata)
		done <- 0
	}()
	n := p.RecvT(src, tag, rbuf)
	<-done
	return n
}

// runAll executes fn on n concurrent peers and waits for all.
func runAll(t *testing.T, n int, fn func(p *peer)) {
	t.Helper()
	f := newFabric(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("rank %d panicked: %v", r, e)
				}
			}()
			fn(&peer{f: f, rank: r})
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

var testNPs = []int{1, 2, 3, 4, 5, 7, 8, 12, 16}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range testNPs {
		runAll(t, n, func(p *peer) { Barrier(p, 0) })
	}
}

func TestBcastAllNP(t *testing.T) {
	for _, n := range testNPs {
		for root := 0; root < n; root += 2 {
			n, root := n, root
			runAll(t, n, func(p *peer) {
				data := make([]byte, 16)
				if p.Rank() == root {
					for i := range data {
						data[i] = byte(i + root)
					}
				}
				Bcast(p, root, data, 1)
				for i := range data {
					if data[i] != byte(i+root) {
						panic(fmt.Sprintf("np=%d root=%d rank=%d: bad byte %d", n, root, p.Rank(), i))
					}
				}
			})
		}
	}
}

func TestAllreduceSumAllNP(t *testing.T) {
	for _, n := range testNPs {
		n := n
		runAll(t, n, func(p *peer) {
			x := []float64{float64(p.Rank()), 1, float64(p.Rank() * p.Rank())}
			Allreduce(p, x, OpSum, 2)
			wantSq := 0.0
			for r := 0; r < n; r++ {
				wantSq += float64(r * r)
			}
			if x[0] != float64(n*(n-1))/2 || x[1] != float64(n) || x[2] != wantSq {
				panic(fmt.Sprintf("np=%d rank=%d: %v", n, p.Rank(), x))
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	runAll(t, 7, func(p *peer) {
		x := []float64{float64(p.Rank())}
		Allreduce(p, x, OpMax, 2)
		if x[0] != 6 {
			panic(fmt.Sprintf("max = %v", x))
		}
		y := []float64{float64(p.Rank() + 3)}
		Allreduce(p, y, OpMin, 3)
		if y[0] != 3 {
			panic(fmt.Sprintf("min = %v", y))
		}
	})
}

func TestReduceAllRootsAllNP(t *testing.T) {
	for _, n := range testNPs {
		for root := 0; root < n; root = root*2 + 1 {
			n, root := n, root
			runAll(t, n, func(p *peer) {
				x := []float64{float64(p.Rank() + 1)}
				Reduce(p, root, x, OpSum, 4)
				if p.Rank() == root && x[0] != float64(n*(n+1))/2 {
					panic(fmt.Sprintf("np=%d root=%d: %v", n, root, x))
				}
			})
		}
	}
}

func TestAllgatherAllNP(t *testing.T) {
	for _, n := range testNPs {
		n := n
		runAll(t, n, func(p *peer) {
			out := make([][]byte, n)
			for i := range out {
				out[i] = make([]byte, 3)
			}
			mine := []byte{byte(p.Rank()), 0xBE, 0xEF}
			Allgather(p, mine, out, 5)
			for r := 0; r < n; r++ {
				if out[r][0] != byte(r) || out[r][1] != 0xBE {
					panic(fmt.Sprintf("np=%d rank=%d out[%d]=%v", n, p.Rank(), r, out[r]))
				}
			}
		})
	}
}

func TestAlltoallAllNP(t *testing.T) {
	for _, n := range testNPs {
		n := n
		runAll(t, n, func(p *peer) {
			send := make([][]byte, n)
			recv := make([][]byte, n)
			for i := range send {
				send[i] = []byte{byte(p.Rank()), byte(i)}
				recv[i] = make([]byte, 2)
			}
			Alltoall(p, send, recv, 6)
			for r := 0; r < n; r++ {
				if recv[r][0] != byte(r) || recv[r][1] != byte(p.Rank()) {
					panic(fmt.Sprintf("np=%d rank=%d recv[%d]=%v", n, p.Rank(), r, recv[r]))
				}
			}
		})
	}
}

func TestGatherAllNP(t *testing.T) {
	for _, n := range testNPs {
		n := n
		runAll(t, n, func(p *peer) {
			out := make([][]byte, n)
			for i := range out {
				out[i] = make([]byte, 1)
			}
			Gather(p, 0, []byte{byte(p.Rank() * 2)}, out, 7)
			if p.Rank() == 0 {
				for r := 0; r < n; r++ {
					if out[r][0] != byte(r*2) {
						panic(fmt.Sprintf("np=%d out[%d]=%v", n, r, out[r]))
					}
				}
			}
		})
	}
}

func TestF64Codec(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	b := F64Bytes(xs)
	if len(b) != 8*len(xs) {
		t.Fatalf("encoded %d bytes", len(b))
	}
	out := make([]float64, len(xs))
	BytesF64(out, b)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, out[i], xs[i])
		}
	}
}

func TestPropertyF64CodecRoundTrip(t *testing.T) {
	f := func(xs []float64) bool {
		out := make([]float64, len(xs))
		BytesF64(out, F64Bytes(xs))
		for i := range xs {
			if out[i] != xs[i] && !(math.IsNaN(out[i]) && math.IsNaN(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: allreduce(sum) over random vectors equals the serial sum for
// every participating rank.
func TestPropertyAllreduceEqualsSerialSum(t *testing.T) {
	f := func(npRaw uint8, seed int64) bool {
		n := int(npRaw%12) + 1
		vals := make([]float64, n)
		want := 0.0
		for r := range vals {
			vals[r] = float64((seed>>uint(r%32))&0xFF) / 7.0
			want += vals[r]
		}
		ok := true
		var mu sync.Mutex
		f2 := newFabric(n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				p := &peer{f: f2, rank: r}
				x := []float64{vals[r]}
				Allreduce(p, x, OpSum, 2)
				if math.Abs(x[0]-want) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}(r)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
