package coll

// Conformance harness: every registered (op, algo) builder pair is executed
// over the in-memory fabric on randomized rank counts, counts vectors and
// payloads, and its observable outputs are compared byte-for-byte against
// straight-line reference collectives — plain loops of sends and receives
// with none of the algorithms' structure. The harness walks Registrations(),
// so a newly registered algorithm is covered automatically (or fails the
// generator switch until a generator exists). Reduction inputs are
// integer-valued, making every fold order exact in float64 — equality is
// exact, not approximate.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

const confTag int32 = 77

// rankOut collects one rank's observable outputs for comparison.
type rankOut struct {
	B [][]byte
	X [][]float64
}

// runConf executes fn on np concurrent peers over a fresh fabric and
// returns the per-rank outputs. A watchdog converts the stall that follows
// a mid-schedule panic (surviving peers block in RecvT on messages that
// will never arrive) into a prompt failure carrying the panic message,
// instead of a go-test timeout with a goroutine dump.
func runConf(t *testing.T, np int, fn func(p *peer) rankOut) []rankOut {
	t.Helper()
	outs := make([]rankOut, np)
	f := newFabric(np)
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("rank %d panicked: %v", r, e)
				}
			}()
			outs[r] = fn(&peer{f: f, rank: r})
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		var stalled []string
	drain:
		for {
			select {
			case e := <-errs:
				stalled = append(stalled, e.Error())
			default:
				break drain
			}
		}
		t.Fatalf("conformance run stalled — a rank likely panicked mid-schedule: %v", stalled)
	}
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	return outs
}

// ---- straight-line reference collectives ------------------------------------
//
// Each reference is the simplest correct data movement: rooted fan-in/out
// loops, or everyone-sends-to-everyone. They share nothing with the
// schedule builders under test.

func refBarrier(p *peer) {
	n := p.Size()
	if p.rank == 0 {
		for r := 1; r < n; r++ {
			p.RecvT(r, confTag, nil)
		}
		for r := 1; r < n; r++ {
			p.SendT(r, confTag, nil)
		}
		return
	}
	p.SendT(0, confTag, nil)
	p.RecvT(0, confTag, nil)
}

func refBcast(p *peer, root int, data []byte) {
	if p.rank == root {
		for r := 0; r < p.Size(); r++ {
			if r != root {
				p.SendT(r, confTag, data)
			}
		}
		return
	}
	p.RecvT(root, confTag, data)
}

func refReduce(p *peer, root int, x []float64, op Op) {
	if p.rank != root {
		p.SendT(root, confTag, F64Bytes(x))
		return
	}
	buf := make([]byte, 8*len(x))
	tmp := make([]float64, len(x))
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		p.RecvT(r, confTag, buf)
		BytesF64(tmp, buf)
		for i := range x {
			x[i] = op(x[i], tmp[i])
		}
	}
}

func refAllreduce(p *peer, x []float64, op Op) {
	refReduce(p, 0, x, op)
	if p.rank == 0 {
		refBcast(p, 0, F64Bytes(x))
		return
	}
	buf := make([]byte, 8*len(x))
	refBcast(p, 0, buf)
	BytesF64(x, buf)
}

// refAllgather serves allgather and allgatherv alike: block lengths are
// whatever the out views say.
func refAllgather(p *peer, mine []byte, out [][]byte) {
	copy(out[p.rank], mine)
	for r := 0; r < p.Size(); r++ {
		if r != p.rank {
			p.SendT(r, confTag, mine)
		}
	}
	for r := 0; r < p.Size(); r++ {
		if r != p.rank {
			p.RecvT(r, confTag, out[r])
		}
	}
}

// refAlltoall serves alltoall and alltoallv alike.
func refAlltoall(p *peer, send, recv [][]byte) {
	copy(recv[p.rank], send[p.rank])
	for d := 0; d < p.Size(); d++ {
		if d != p.rank {
			p.SendT(d, confTag, send[d])
		}
	}
	for s := 0; s < p.Size(); s++ {
		if s != p.rank {
			p.RecvT(s, confTag, recv[s])
		}
	}
}

func refGather(p *peer, root int, mine []byte, out [][]byte) {
	if p.rank != root {
		p.SendT(root, confTag, mine)
		return
	}
	copy(out[root], mine)
	for r := 0; r < p.Size(); r++ {
		if r != root {
			p.RecvT(r, confTag, out[r])
		}
	}
}

func refScatter(p *peer, root int, blocks [][]byte, buf []byte) {
	if p.rank != root {
		p.RecvT(root, confTag, buf)
		return
	}
	copy(buf, blocks[root])
	for r := 0; r < p.Size(); r++ {
		if r != root {
			p.SendT(r, confTag, blocks[r])
		}
	}
}

func refReduceScatter(p *peer, x, recv []float64, counts []int, op Op) {
	win := prefixSums(counts)
	if p.rank != 0 {
		p.SendT(0, confTag, F64Bytes(x))
		buf := make([]byte, 8*counts[p.rank])
		p.RecvT(0, confTag, buf)
		BytesF64(recv, buf)
		return
	}
	acc := append([]float64(nil), x...)
	buf := make([]byte, 8*len(x))
	tmp := make([]float64, len(x))
	for r := 1; r < p.Size(); r++ {
		p.RecvT(r, confTag, buf)
		BytesF64(tmp, buf)
		for i := range acc {
			acc[i] = op(acc[i], tmp[i])
		}
	}
	for r := 1; r < p.Size(); r++ {
		p.SendT(r, confTag, F64Bytes(acc[win[r]:win[r+1]]))
	}
	copy(recv, acc[win[0]:win[1]])
}

// ---- randomized input generation --------------------------------------------

var confLens = []int{0, 1, 3, 8, 17, 64, 257}

func confLen(rng *rand.Rand) int { return confLens[rng.Intn(len(confLens))] }

func confBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// confF64s returns integer-valued floats so any reduction order is exact.
func confF64s(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(rng.Intn(17) - 8)
	}
	return xs
}

func confCounts(rng *rand.Rand, np int) []int {
	counts := make([]int, np)
	for r := range counts {
		if rng.Intn(4) == 0 {
			continue // zero-length block
		}
		counts[r] = 1 + rng.Intn(64)
	}
	return counts
}

func confOp(rng *rand.Rand) Op {
	if rng.Intn(2) == 0 {
		return OpSum
	}
	return OpMax
}

func confNodes(rng *rand.Rand, np int) []int {
	k := 1 + rng.Intn(np)
	nodes := make([]int, np)
	for r := range nodes {
		nodes[r] = rng.Intn(k)
	}
	return nodes
}

func cpb(b []byte) []byte { return append([]byte(nil), b...) }

func cpf(x []float64) []float64 { return append([]float64(nil), x...) }

// ---- the harness ------------------------------------------------------------

// confStripe, when set, is injected into every Args confExec builds: the
// striped conformance sweep re-runs the whole harness under a two-rail
// striping. The fabric is not rail-aware, so execution drops the hints —
// equality then asserts striping changes which wires data would ride, never
// what data moves.
var confStripe Striping

// confExec builds every rank's schedule on the test goroutine (asserting
// the round-shape deadlock-freedom invariant), executes them over the
// fabric, and returns the per-rank outputs read by out.
func confExec(t *testing.T, label string, reg Registration, np int,
	mkArgs func(rank int) Args, out func(rank int) rankOut) []rankOut {
	t.Helper()
	scheds := make([]*Schedule, np)
	for r := 0; r < np; r++ {
		a := mkArgs(r)
		a.Rank, a.Size = r, np
		a.Stripe, a.Rails = confStripe.Width, confStripe.Rails
		scheds[r] = Build(Key{Op: reg.Op, Algo: reg.Algo}, a)
		checkRoundShape(t, scheds[r], fmt.Sprintf("%s/r%d", label, r))
	}
	runConf(t, np, func(p *peer) rankOut {
		ExecBlocking(p, scheds[p.rank], confTag)
		return rankOut{}
	})
	outs := make([]rankOut, np)
	for r := 0; r < np; r++ {
		outs[r] = out(r)
	}
	return outs
}

func confCompare(t *testing.T, label string, algo, ref []rankOut) {
	t.Helper()
	for r := range algo {
		if !reflect.DeepEqual(algo[r], ref[r]) {
			t.Fatalf("%s: rank %d diverges from the reference\n algo: %+v\n  ref: %+v",
				label, r, algo[r], ref[r])
		}
	}
}

// confTrial runs one randomized conformance instance for a registered
// (op, algo) pair: identical inputs through the schedule builder and
// through the straight-line reference, outputs compared exactly.
func confTrial(t *testing.T, reg Registration, np int, nodes []int, rng *rand.Rand) {
	t.Helper()
	label := fmt.Sprintf("%s/%s/np%d", reg.Op, reg.Algo, np)
	root := rng.Intn(np)

	switch reg.Op {
	case OpBarrier:
		a := confExec(t, label, reg, np,
			func(rank int) Args { return Args{Nodes: nodes} },
			func(rank int) rankOut { return rankOut{} })
		ref := runConf(t, np, func(p *peer) rankOut { refBarrier(p); return rankOut{} })
		confCompare(t, label, a, ref)

	case OpBcast:
		data := confBytes(rng, confLen(rng))
		bufs := make([][]byte, np)
		mk := func() func(rank int) []byte {
			return func(rank int) []byte {
				buf := make([]byte, len(data))
				if rank == root {
					copy(buf, data)
				} else {
					for i := range buf {
						buf[i] = 0xAA
					}
				}
				return buf
			}
		}
		mkBuf := mk()
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				bufs[rank] = mkBuf(rank)
				return Args{Root: root, Data: bufs[rank], Nodes: nodes}
			},
			func(rank int) rankOut { return rankOut{B: [][]byte{bufs[rank]}} })
		mkRef := mk()
		ref := runConf(t, np, func(p *peer) rankOut {
			buf := mkRef(p.rank)
			refBcast(p, root, buf)
			return rankOut{B: [][]byte{buf}}
		})
		confCompare(t, label, a, ref)

	case OpReduce:
		m := confLen(rng)
		op := confOp(rng)
		xs := make([][]float64, np)
		for r := range xs {
			xs[r] = confF64s(rng, m)
		}
		vecs := make([][]float64, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				vecs[rank] = cpf(xs[rank])
				return Args{Root: root, X: vecs[rank], Op: op, Nodes: nodes}
			},
			func(rank int) rankOut {
				if rank != root {
					return rankOut{} // non-root x is scratch, by contract
				}
				return rankOut{X: [][]float64{vecs[rank]}}
			})
		ref := runConf(t, np, func(p *peer) rankOut {
			x := cpf(xs[p.rank])
			refReduce(p, root, x, op)
			if p.rank != root {
				return rankOut{}
			}
			return rankOut{X: [][]float64{x}}
		})
		confCompare(t, label, a, ref)

	case OpAllreduce:
		m := confLen(rng)
		op := confOp(rng)
		xs := make([][]float64, np)
		for r := range xs {
			xs[r] = confF64s(rng, m)
		}
		vecs := make([][]float64, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				vecs[rank] = cpf(xs[rank])
				return Args{X: vecs[rank], Op: op, Nodes: nodes}
			},
			func(rank int) rankOut { return rankOut{X: [][]float64{vecs[rank]}} })
		ref := runConf(t, np, func(p *peer) rankOut {
			x := cpf(xs[p.rank])
			refAllreduce(p, x, op)
			return rankOut{X: [][]float64{x}}
		})
		confCompare(t, label, a, ref)

	case OpAllgather, OpAllgatherv:
		var counts []int
		if reg.Op == OpAllgather {
			b := confLen(rng)
			counts = make([]int, np)
			for r := range counts {
				counts[r] = b
			}
		} else {
			counts = confCounts(rng, np)
		}
		mines := make([][]byte, np)
		for r := range mines {
			mines[r] = confBytes(rng, counts[r])
		}
		mkOut := func() [][]byte {
			out := make([][]byte, np)
			for r := range out {
				out[r] = make([]byte, counts[r])
			}
			return out
		}
		outs := make([][][]byte, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				outs[rank] = mkOut()
				return Args{Mine: cpb(mines[rank]), Out: outs[rank],
					RCounts: counts, Nodes: nodes}
			},
			func(rank int) rankOut { return rankOut{B: outs[rank]} })
		ref := runConf(t, np, func(p *peer) rankOut {
			out := mkOut()
			refAllgather(p, cpb(mines[p.rank]), out)
			return rankOut{B: out}
		})
		confCompare(t, label, a, ref)

	case OpAlltoall, OpAlltoallv:
		// counts[s][d] is the globally agreed matrix; alltoall is the
		// uniform special case (the two-level builder requires it).
		counts := make([][]int, np)
		if reg.Op == OpAlltoall {
			b := confLen(rng)
			for s := range counts {
				counts[s] = make([]int, np)
				for d := range counts[s] {
					counts[s][d] = b
				}
			}
		} else {
			for s := range counts {
				counts[s] = confCounts(rng, np)
			}
		}
		sends := make([][][]byte, np)
		for s := range sends {
			sends[s] = make([][]byte, np)
			for d := range sends[s] {
				sends[s][d] = confBytes(rng, counts[s][d])
			}
		}
		mkRecv := func(rank int) [][]byte {
			recv := make([][]byte, np)
			for s := range recv {
				recv[s] = make([]byte, counts[s][rank])
			}
			return recv
		}
		cpSend := func(rank int) [][]byte {
			send := make([][]byte, np)
			for d := range send {
				send[d] = cpb(sends[rank][d])
			}
			return send
		}
		recvs := make([][][]byte, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				recvs[rank] = mkRecv(rank)
				return Args{Send: cpSend(rank), Recv: recvs[rank], Nodes: nodes}
			},
			func(rank int) rankOut { return rankOut{B: recvs[rank]} })
		ref := runConf(t, np, func(p *peer) rankOut {
			recv := mkRecv(p.rank)
			refAlltoall(p, cpSend(p.rank), recv)
			return rankOut{B: recv}
		})
		confCompare(t, label, a, ref)

	case OpGather, OpGatherv:
		var counts []int
		if reg.Op == OpGather {
			b := confLen(rng)
			counts = make([]int, np)
			for r := range counts {
				counts[r] = b
			}
		} else {
			counts = confCounts(rng, np)
		}
		mines := make([][]byte, np)
		for r := range mines {
			mines[r] = confBytes(rng, counts[r])
		}
		mkOut := func() [][]byte {
			out := make([][]byte, np)
			for r := range out {
				out[r] = make([]byte, counts[r])
			}
			return out
		}
		outs := make([][][]byte, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				a := Args{Root: root, Mine: cpb(mines[rank]), Nodes: nodes}
				if rank == root {
					outs[rank] = mkOut()
					a.Out = outs[rank]
				}
				return a
			},
			func(rank int) rankOut {
				if rank != root {
					return rankOut{}
				}
				return rankOut{B: outs[rank]}
			})
		ref := runConf(t, np, func(p *peer) rankOut {
			if p.rank != root {
				refGather(p, root, cpb(mines[p.rank]), nil)
				return rankOut{}
			}
			out := mkOut()
			refGather(p, root, cpb(mines[p.rank]), out)
			return rankOut{B: out}
		})
		confCompare(t, label, a, ref)

	case OpScatter, OpScatterv:
		var counts []int
		if reg.Op == OpScatter {
			b := confLen(rng)
			counts = make([]int, np)
			for r := range counts {
				counts[r] = b
			}
		} else {
			counts = confCounts(rng, np)
		}
		blocks := make([][]byte, np)
		for r := range blocks {
			blocks[r] = confBytes(rng, counts[r])
		}
		cpBlocks := func() [][]byte {
			bs := make([][]byte, np)
			for r := range bs {
				bs[r] = cpb(blocks[r])
			}
			return bs
		}
		bufs := make([][]byte, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				bufs[rank] = make([]byte, counts[rank])
				a := Args{Root: root, Mine: bufs[rank], Nodes: nodes}
				if rank == root {
					a.Send = cpBlocks()
				}
				return a
			},
			func(rank int) rankOut { return rankOut{B: [][]byte{bufs[rank]}} })
		ref := runConf(t, np, func(p *peer) rankOut {
			buf := make([]byte, counts[p.rank])
			if p.rank == root {
				refScatter(p, root, cpBlocks(), buf)
			} else {
				refScatter(p, root, nil, buf)
			}
			return rankOut{B: [][]byte{buf}}
		})
		confCompare(t, label, a, ref)

	case OpReduceScatter:
		counts := confCounts(rng, np)
		op := confOp(rng)
		total := 0
		for _, n := range counts {
			total += n
		}
		xs := make([][]float64, np)
		for r := range xs {
			xs[r] = confF64s(rng, total)
		}
		recvs := make([][]float64, np)
		a := confExec(t, label, reg, np,
			func(rank int) Args {
				recvs[rank] = make([]float64, counts[rank])
				return Args{X: cpf(xs[rank]), RecvF64: recvs[rank],
					RCounts: counts, Op: op, Nodes: nodes}
			},
			func(rank int) rankOut { return rankOut{X: [][]float64{recvs[rank]}} })
		ref := runConf(t, np, func(p *peer) rankOut {
			recv := make([]float64, counts[p.rank])
			refReduceScatter(p, cpf(xs[p.rank]), recv, counts, op)
			return rankOut{X: [][]float64{recv}}
		})
		confCompare(t, label, a, ref)

	default:
		t.Fatalf("no conformance generator for op %s — every registered pair must be covered", reg.Op)
	}
}

// TestConformanceAllRegisteredPairs is the registry-wide conformance sweep:
// every (op, algo) pair × rank counts (power-of-two and not) × randomized
// payloads/counts/roots, against the straight-line references.
func TestConformanceAllRegisteredPairs(t *testing.T) {
	regs := Registrations()
	seen := make(map[OpKind]bool)
	for _, reg := range regs {
		seen[reg.Op] = true
	}
	for op := OpKind(0); op < numOps; op++ {
		if !seen[op] {
			t.Fatalf("op %s has no registered builders", op)
		}
	}

	nps := []int{1, 2, 3, 4, 5, 7, 8, 12}
	for _, reg := range regs {
		reg := reg
		t.Run(fmt.Sprintf("%s/%s", reg.Op, reg.Algo), func(t *testing.T) {
			for _, np := range nps {
				rng := rand.New(rand.NewSource(
					int64(reg.Op)<<20 | int64(reg.Algo)<<12 | int64(np)))
				for trial := 0; trial < 3; trial++ {
					var nodes []int
					if reg.Algo == AlgoTwoLevel {
						nodes = confNodes(rng, np)
					}
					confTrial(t, reg, np, nodes, rng)
				}
			}
		})
	}
}

// TestConformanceStripedPairs re-runs the conformance sweep for every
// striped-capable (op, algo) pair with a two-rail striping injected into the
// builders' Args, asserting exact equality against the same straight-line
// references. The rail hints are dropped by the fabric, so any divergence
// would mean the striped compile path altered the data movement itself.
func TestConformanceStripedPairs(t *testing.T) {
	confStripe = Striping{Width: 2, Rails: []RailInfo{
		{Name: "ib", LatencyNS: 1200, BytesPerSec: 1.25e9},
		{Name: "mx", LatencyNS: 2000, BytesPerSec: 1.15e9},
	}}
	// The default payload ladder tops out far below stripeMinBytes; the
	// striped sweep needs payloads whose sends actually carry the -width
	// stamp (9000 B > 8 KiB directly, 2048 float64s = 16 KiB encoded).
	oldLens := confLens
	confLens = []int{513, 2048, 9000, 40000}
	defer func() { confStripe, confLens = Striping{}, oldLens }()

	covered := 0
	nps := []int{1, 2, 4, 5, 8}
	for _, reg := range Registrations() {
		if !Striped(reg.Op, reg.Algo) {
			continue
		}
		covered++
		reg := reg
		t.Run(fmt.Sprintf("%s/%s", reg.Op, reg.Algo), func(t *testing.T) {
			for _, np := range nps {
				rng := rand.New(rand.NewSource(
					1<<40 | int64(reg.Op)<<20 | int64(reg.Algo)<<12 | int64(np)))
				for trial := 0; trial < 3; trial++ {
					var nodes []int
					if reg.Algo == AlgoTwoLevel {
						nodes = confNodes(rng, np)
					}
					confTrial(t, reg, np, nodes, rng)
				}
			}
		})
	}
	if covered == 0 {
		t.Fatal("no striped-capable (op, algo) pairs registered")
	}
}
