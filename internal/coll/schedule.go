package coll

import (
	"sort"

	"repro/internal/trace"
)

// This file expresses the collective algorithm set as *schedules*: per-rank
// programs of rounds, each round holding point-to-point transfers (send/recv
// prims) followed by local data movement (copy/reduce/decode prims). The same
// schedule drives two executors:
//
//   - ExecBlocking walks the rounds synchronously over a PtPt substrate —
//     this is the classic blocking collective path and produces exactly the
//     SendT/RecvT/SendRecvT call sequence of the historical implementations;
//   - the nonblocking engine in internal/nbc issues a round's transfers as
//     nonblocking requests and advances to the next round from the progress
//     engine (PIOMan) when they complete, which is what lets a collective
//     overlap with computation (libNBC-style, progressed per §3.3).
//
// Rounds sequence only the *local* rank: matching between ranks is by
// (source, tag) as usual, so peers may run ahead by a round; their traffic
// waits in the unexpected queues until the local schedule catches up.

// PrimKind discriminates schedule primitives.
type PrimKind uint8

const (
	// PrimSend transfers Data (or the lazily encoded AccF64) to Peer.
	PrimSend PrimKind = iota
	// PrimRecv receives from Peer into Buf.
	PrimRecv
	// PrimCopy copies Src into Dst locally.
	PrimCopy
	// PrimReduce folds the float64 vector encoded in In into AccF64 with Op.
	PrimReduce
	// PrimDecode overwrites AccF64 with the float64 vector encoded in In.
	PrimDecode
	// PrimCopyF64 copies SrcF64 into AccF64 locally (float64 elements, no
	// wire encoding) — the reduce-scatter builders land result segments with
	// it.
	PrimCopyF64
)

// Prim is one schedule primitive. Only the fields of its kind are set.
type Prim struct {
	Kind PrimKind
	// Peer is the destination (send) or source (recv) rank.
	Peer int
	// Data is a static send payload, captured at build time.
	Data []byte
	// AccF64 is a float64 vector: for sends it is encoded at round start
	// (payloads that earlier rounds mutate must be lazy); for
	// reduce/decode/copyF64 it is the accumulator written in place.
	AccF64 []float64
	// SrcF64 is the copyF64 source vector.
	SrcF64 []float64
	// Buf is the receive buffer.
	Buf []byte
	// Src/Dst are the copy operands.
	Src, Dst []byte
	// In is the reduce/decode input (bytes holding a float64 vector).
	In []byte
	// Op is the reduction operator.
	Op Op
	// Rail is the multirail placement hint of a send prim: 0 lets the
	// transport's strategy place the transfer (the default), k > 0 pins it
	// to rail k-1, and -w < 0 asks the transport to stripe the payload
	// across the first w rails (nmad forces the rendezvous path and
	// water-fills the bytes over those rails). The striped builders stamp
	// the negative form on large sends (see stripe.go); executors forward
	// the hint when the substrate is rail-aware (RailPtPt) and drop it
	// otherwise, so the hint never changes what data moves — only which
	// wires it moves on.
	Rail int
}

// Round is one schedule step: the transfers of Comm all complete before the
// Local prims run, and the next round starts only after both.
type Round struct {
	Comm  []Prim
	Local []Prim
}

// Schedule is one rank's compiled collective.
type Schedule struct {
	Rounds []Round
	// Key records what the schedule was compiled as (operation, algorithm,
	// segment size …). Build stamps it; observability layers read it to name
	// round and operation events. Zero for schedules built directly by a
	// Build* function.
	Key Key
}

// round appends and returns a fresh round.
func (s *Schedule) round() *Round {
	s.Rounds = append(s.Rounds, Round{})
	return &s.Rounds[len(s.Rounds)-1]
}

// SendPayload materializes a send prim's wire bytes.
func SendPayload(pr *Prim) []byte {
	if pr.AccF64 != nil {
		return F64Bytes(pr.AccF64)
	}
	return pr.Data
}

// RunLocal executes a local prim.
func RunLocal(pr *Prim) {
	switch pr.Kind {
	case PrimCopy:
		copy(pr.Dst, pr.Src)
	case PrimReduce:
		for i := range pr.AccF64 {
			pr.AccF64[i] = pr.Op(pr.AccF64[i], f64At(pr.In, i))
		}
	case PrimDecode:
		BytesF64(pr.AccF64, pr.In)
	case PrimCopyF64:
		copy(pr.AccF64, pr.SrcF64)
	}
}

// ExecBlocking runs the schedule synchronously over p with the given tag.
// A round holding exactly one send and one recv becomes a SendRecvT exchange
// (deadlock-free); otherwise sends are issued before receives.
func ExecBlocking(p PtPt, s *Schedule, tag int32) {
	ExecBlockingRec(p, s, tag, nil)
}

// ExecBlockingRec is ExecBlocking with per-round trace slices recorded on
// rec's rounds track (nil rec records nothing).
func ExecBlockingRec(p PtPt, s *Schedule, tag int32, rec *trace.Recorder) {
	rp, railOK := p.(RailPtPt)
	name := ""
	if rec.Enabled() {
		name = s.Key.Op.String() + "/" + s.Key.Algo.String()
	}
	for ri := range s.Rounds {
		start := rec.Now()
		rd := &s.Rounds[ri]
		var send, recv *Prim
		multi := false
		for i := range rd.Comm {
			pr := &rd.Comm[i]
			if pr.Kind == PrimSend {
				if send != nil {
					multi = true
				}
				send = pr
			} else {
				if recv != nil {
					multi = true
				}
				recv = pr
			}
		}
		if !multi && send != nil && recv != nil {
			if railOK && send.Rail != 0 {
				rp.SendRecvRailT(send.Peer, SendPayload(send), recv.Peer, recv.Buf, tag, send.Rail)
			} else {
				p.SendRecvT(send.Peer, SendPayload(send), recv.Peer, recv.Buf, tag)
			}
		} else {
			for i := range rd.Comm {
				if pr := &rd.Comm[i]; pr.Kind == PrimSend {
					if railOK && pr.Rail != 0 {
						rp.SendRailT(pr.Peer, tag, SendPayload(pr), pr.Rail)
					} else {
						p.SendT(pr.Peer, tag, SendPayload(pr))
					}
				}
			}
			for i := range rd.Comm {
				if pr := &rd.Comm[i]; pr.Kind == PrimRecv {
					p.RecvT(pr.Peer, tag, pr.Buf)
				}
			}
		}
		for i := range rd.Local {
			RunLocal(&rd.Local[i])
		}
		rec.Complete("round", name, trace.TidRounds, start,
			trace.Int64("round", int64(ri)))
	}
}

// ---- prim constructors -----------------------------------------------------

func sendP(peer int, data []byte) Prim    { return Prim{Kind: PrimSend, Peer: peer, Data: data} }
func sendF64(peer int, x []float64) Prim  { return Prim{Kind: PrimSend, Peer: peer, AccF64: x} }
func recvP(peer int, buf []byte) Prim     { return Prim{Kind: PrimRecv, Peer: peer, Buf: buf} }
func copyP(dst, src []byte) Prim          { return Prim{Kind: PrimCopy, Dst: dst, Src: src} }
func decodeP(x []float64, in []byte) Prim { return Prim{Kind: PrimDecode, AccF64: x, In: in} }
func copyF64P(dst, src []float64) Prim    { return Prim{Kind: PrimCopyF64, AccF64: dst, SrcF64: src} }
func reduceP(x []float64, in []byte, op Op) Prim {
	return Prim{Kind: PrimReduce, AccF64: x, In: in, Op: op}
}

// ---- flat builders (the classic MPICH2 algorithm set) ----------------------

// BuildBarrier compiles a dissemination barrier: ceil(log2(n)) rounds of
// zero-byte exchanges.
func BuildBarrier(rank, size int) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	for k := 1; k < size; k <<= 1 {
		rd := s.round()
		rd.Comm = append(rd.Comm,
			sendP((rank+k)%size, nil),
			recvP((rank-k+size)%size, nil))
	}
	return s
}

// BuildBcast compiles a binomial-tree broadcast of data (in place) from root.
func BuildBcast(rank, size, root int, data []byte) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	binomialBcastBytes(s, identGroup(size), root, rank, data)
	return s
}

// BuildReduce compiles a binomial-tree reduction of x into root's x over
// relative ranks. The operator must be commutative.
func BuildReduce(rank, size, root int, x []float64, op Op) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	binomialReduce(s, identGroup(size), root, rank, x, op)
	return s
}

// BuildAllreduce compiles recursive doubling with the standard pre/post
// phases for non-power-of-two sizes. The operator must be commutative.
func BuildAllreduce(rank, size int, x []float64, op Op) *Schedule {
	s := &Schedule{}
	if size == 1 {
		return s
	}
	rdAllreduce(s, identGroup(size), rank, x, op)
	return s
}

// BuildAllgather compiles the ring allgather: out[r] receives rank r's block.
func BuildAllgather(rank, size int, mine []byte, out [][]byte) *Schedule {
	s := &Schedule{}
	rd := s.round()
	rd.Local = append(rd.Local, copyP(out[rank], mine))
	if size == 1 {
		return s
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (rank - step + size) % size
		recvIdx := (rank - step - 1 + size) % size
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(right, out[sendIdx]), recvP(left, out[recvIdx]))
	}
	return s
}

// BuildAlltoall compiles the pairwise-exchange alltoall (XOR pattern for
// power-of-two sizes, rotated shifts otherwise).
func BuildAlltoall(rank, size int, send, recv [][]byte) *Schedule {
	s := &Schedule{}
	rd := s.round()
	rd.Local = append(rd.Local, copyP(recv[rank], send[rank]))
	if size == 1 {
		return s
	}
	if size&(size-1) == 0 {
		for i := 1; i < size; i++ {
			partner := rank ^ i
			rd := s.round()
			rd.Comm = append(rd.Comm, sendP(partner, send[partner]), recvP(partner, recv[partner]))
		}
		return s
	}
	for i := 1; i < size; i++ {
		dst := (rank + i) % size
		src := (rank - i + size) % size
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(dst, send[dst]), recvP(src, recv[src]))
	}
	return s
}

// BuildGather compiles the linear gather at root (out[r] filled on root only).
func BuildGather(rank, size, root int, mine []byte, out [][]byte) *Schedule {
	s := &Schedule{}
	if rank == root {
		rd := s.round()
		rd.Local = append(rd.Local, copyP(out[rank], mine))
		if size == 1 {
			return s
		}
		crd := s.round()
		for r := 0; r < size; r++ {
			if r != root {
				crd.Comm = append(crd.Comm, recvP(r, out[r]))
			}
		}
		return s
	}
	rd := s.round()
	rd.Comm = append(rd.Comm, sendP(root, mine))
	return s
}

// ---- group-relative building blocks ----------------------------------------

// Group is an ordered set of ranks a schedule fragment runs over. The
// log-depth builders only ever look up their own position plus O(log n)
// peers, so a group must not force an O(n) materialization: the whole
// communicator is the O(1) identGroup, and only genuinely irregular groups
// (per-node locals, leader sets) pay for a backing slice.
type Group interface {
	// Len is the number of member ranks.
	Len() int
	// At returns the member rank at position i.
	At(i int) int
	// Index returns the position of rank, or -1 when rank is not a member.
	Index(rank int) int
}

// identGroup is the group [0, 1, ..., n-1] with O(1) storage and lookups —
// what every flat (whole-communicator) builder runs over.
type identGroup int

func (g identGroup) Len() int     { return int(g) }
func (g identGroup) At(i int) int { return i }
func (g identGroup) Index(rank int) int {
	if rank < 0 || rank >= int(g) {
		return -1
	}
	return rank
}

// sliceGroup adapts an explicit rank list (leaders, one node's locals).
type sliceGroup []int

func (g sliceGroup) Len() int           { return len(g) }
func (g sliceGroup) At(i int) int       { return g[i] }
func (g sliceGroup) Index(rank int) int { return indexIn(g, rank) }

// indexIn returns the position of rank in group, or -1.
func indexIn(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	return -1
}

// binomialBcast appends rank me's rounds of a binomial broadcast over the
// ranks of group, rooted at group member root. mkSend builds the forwarding
// prim toward a peer; mkRecv builds the receive prim (plus optional local
// prims to run after it). Ranks outside group get no rounds. Work and
// schedule size are O(log |group|) plus the cost of two Index lookups.
func binomialBcast(s *Schedule, group Group, root, me int,
	mkSend func(peer int) Prim, mkRecv func(peer int) (Prim, []Prim)) {

	m := group.Len()
	idx := group.Index(me)
	rootIdx := group.Index(root)
	if idx < 0 || m <= 1 {
		return
	}
	vr := (idx - rootIdx + m) % m
	mask := 1
	for mask < m {
		if vr&mask != 0 {
			src := group.At((vr - mask + rootIdx + m) % m)
			rd := s.round()
			pr, locals := mkRecv(src)
			rd.Comm = append(rd.Comm, pr)
			rd.Local = append(rd.Local, locals...)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < m {
			dst := group.At((vr + mask + rootIdx) % m)
			rd := s.round()
			rd.Comm = append(rd.Comm, mkSend(dst))
		}
		mask >>= 1
	}
}

// binomialBcastBytes broadcasts a byte buffer (in place) over group from
// root: receivers land directly in data and forward the same buffer.
func binomialBcastBytes(s *Schedule, group Group, root, me int, data []byte) {
	binomialBcast(s, group, root, me, func(peer int) Prim {
		return sendP(peer, data)
	}, func(peer int) (Prim, []Prim) {
		return recvP(peer, data), nil
	})
}

// binomialBcastF64 broadcasts the float64 vector x over group from root:
// receivers land bytes in a scratch buffer, decode into x, and forward x
// lazily so intermediate tree nodes relay what they received.
func binomialBcastF64(s *Schedule, group Group, root, me int, x []float64) {
	m := group.Len()
	if m <= 1 || group.Index(me) < 0 {
		return
	}
	scratch := make([]byte, 8*len(x))
	binomialBcast(s, group, root, me, func(peer int) Prim {
		return sendF64(peer, x)
	}, func(peer int) (Prim, []Prim) {
		return recvP(peer, scratch), []Prim{decodeP(x, scratch)}
	})
}

// binomialReduce appends rank me's rounds of a binomial-tree reduction of x
// into group-member root's x (clobbered elsewhere). Commutative op only.
func binomialReduce(s *Schedule, group Group, root, me int, x []float64, op Op) {
	m := group.Len()
	idx := group.Index(me)
	rootIdx := group.Index(root)
	if idx < 0 || m <= 1 {
		return
	}
	vr := (idx - rootIdx + m) % m
	rbuf := make([]byte, 8*len(x))
	mask := 1
	for mask < m {
		if vr&mask == 0 {
			src := vr | mask
			if src < m {
				rd := s.round()
				rd.Comm = append(rd.Comm, recvP(group.At((src+rootIdx)%m), rbuf))
				rd.Local = append(rd.Local, reduceP(x, rbuf, op))
			}
		} else {
			dst := group.At(((vr &^ mask) + rootIdx) % m)
			rd := s.round()
			rd.Comm = append(rd.Comm, sendF64(dst, x))
			return
		}
		mask <<= 1
	}
}

// rdAllreduce appends rank me's rounds of a recursive-doubling allreduce of x
// over group, with the standard pre/post phases when the group size is not a
// power of two. Commutative op only.
func rdAllreduce(s *Schedule, group Group, me int, x []float64, op Op) {
	m := group.Len()
	idx := group.Index(me)
	if idx < 0 || m <= 1 {
		return
	}
	pof2 := 1
	for pof2*2 <= m {
		pof2 *= 2
	}
	rem := m - pof2
	rbuf := make([]byte, 8*len(x))

	newrank := -1
	switch {
	case idx < 2*rem && idx%2 == 0:
		rd := s.round()
		rd.Comm = append(rd.Comm, sendF64(group.At(idx+1), x))
	case idx < 2*rem:
		rd := s.round()
		rd.Comm = append(rd.Comm, recvP(group.At(idx-1), rbuf))
		rd.Local = append(rd.Local, reduceP(x, rbuf, op))
		newrank = idx / 2
	default:
		newrank = idx - rem
	}

	if newrank != -1 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := newrank ^ mask
			var real int
			if partner < rem {
				real = partner*2 + 1
			} else {
				real = partner + rem
			}
			rd := s.round()
			rd.Comm = append(rd.Comm, sendF64(group.At(real), x), recvP(group.At(real), rbuf))
			rd.Local = append(rd.Local, reduceP(x, rbuf, op))
		}
	}

	if idx < 2*rem {
		rd := s.round()
		if idx%2 == 0 {
			rd.Comm = append(rd.Comm, recvP(group.At(idx+1), rbuf))
			rd.Local = append(rd.Local, decodeP(x, rbuf))
		} else {
			rd.Comm = append(rd.Comm, sendF64(group.At(idx-1), x))
		}
	}
}

// ---- topology-aware two-level builders --------------------------------------
//
// The two-level variants split a collective into an intra-node phase over the
// shared-memory channel and an inter-node phase among per-node leaders over
// the network rails, following the placement of ranks onto nodes. They shine
// when several ranks share a node: only one rank per node touches the NIC.

// leadersOf returns one leader rank per populated node (ascending node id)
// and the local rank group of rank's own node. When root >= 0 and shares a
// node with rank's view of the placement, root is promoted to leader of its
// node so rooted operations need no extra hop. Node ids only need to be
// comparable, not dense: hierarchical placements encode rack/switch position
// in the id, leaving large gaps, and a scan over the id range would turn a
// 4-node map into millions of iterations. Only populated ids are visited.
func leadersOf(nodes []int, root int) (leaders []int, byNode map[int][]int) {
	byNode = make(map[int][]int)
	ids := make([]int, 0, 16)
	for r, n := range nodes {
		if _, ok := byNode[n]; !ok {
			ids = append(ids, n)
		}
		byNode[n] = append(byNode[n], r)
	}
	sort.Ints(ids)
	leaders = make([]int, 0, len(ids))
	for _, n := range ids {
		leaders = append(leaders, leaderFor(nodes, byNode, root, byNode[n][0]))
	}
	return leaders, byNode
}

// leaderFor returns the leader of rank's node under the same promotion rule
// leadersOf applies — the single site defining leader election.
func leaderFor(nodes []int, byNode map[int][]int, root, rank int) int {
	if root >= 0 && nodes[root] == nodes[rank] {
		return root
	}
	return byNode[nodes[rank]][0]
}

// BuildBarrierTwoLevel compiles a hierarchical barrier: locals check in with
// their node leader over shared memory, leaders run a dissemination barrier
// over the network, then leaders release their locals.
func BuildBarrierTwoLevel(rank int, nodes []int) *Schedule {
	s := &Schedule{}
	size := len(nodes)
	if size == 1 {
		return s
	}
	leaders, byNode := leadersOf(nodes, -1)
	local := byNode[nodes[rank]]
	lead := leaderFor(nodes, byNode, -1, rank)

	if rank != lead {
		rd := s.round()
		rd.Comm = append(rd.Comm, sendP(lead, nil))
	} else if len(local) > 1 {
		rd := s.round()
		for _, r := range local {
			if r != lead {
				rd.Comm = append(rd.Comm, recvP(r, nil))
			}
		}
	}

	if rank == lead && len(leaders) > 1 {
		li := indexIn(leaders, lead)
		m := len(leaders)
		for k := 1; k < m; k <<= 1 {
			rd := s.round()
			rd.Comm = append(rd.Comm,
				sendP(leaders[(li+k)%m], nil),
				recvP(leaders[(li-k+m)%m], nil))
		}
	}

	if rank != lead {
		rd := s.round()
		rd.Comm = append(rd.Comm, recvP(lead, nil))
	} else if len(local) > 1 {
		rd := s.round()
		for _, r := range local {
			if r != lead {
				rd.Comm = append(rd.Comm, sendP(r, nil))
			}
		}
	}
	return s
}

// BuildBcastTwoLevel compiles a hierarchical broadcast: root feeds the
// per-node leaders with a binomial tree over the network, each leader then
// broadcasts over shared memory inside its node.
func BuildBcastTwoLevel(rank int, nodes []int, root int, data []byte) *Schedule {
	return BuildBcastTwoLevelStriped(rank, nodes, root, data, Striping{})
}

// BuildBcastTwoLevelStriped is BuildBcastTwoLevel with the inter-node
// (leader tree) sends dealt across rails — parallel tree edges out of one
// leader ride different rails. The intra-node phase runs over shared memory
// and is never striped. The zero Striping compiles the identical unstriped
// schedule.
func BuildBcastTwoLevelStriped(rank int, nodes []int, root int, data []byte, st Striping) *Schedule {
	s := &Schedule{}
	if len(nodes) == 1 {
		return s
	}
	leaders, byNode := leadersOf(nodes, root)
	binomialBcastBytes(s, sliceGroup(leaders), root, rank, data)
	stampRails(s, 0, st)
	local := byNode[nodes[rank]]
	binomialBcastBytes(s, sliceGroup(local), leaderFor(nodes, byNode, root, rank), rank, data)
	return s
}

// BuildAllreduceTwoLevel compiles a hierarchical allreduce: binomial reduce
// to the node leader over shared memory, recursive-doubling allreduce among
// leaders over the network, binomial broadcast of the result back over
// shared memory. Commutative op only.
func BuildAllreduceTwoLevel(rank int, nodes []int, x []float64, op Op) *Schedule {
	return BuildAllreduceTwoLevelStriped(rank, nodes, x, op, Striping{})
}

// BuildAllreduceTwoLevelStriped is BuildAllreduceTwoLevel with the
// inter-node (leader allreduce) sends dealt across rails; the intra-node
// reduce and broadcast phases run over shared memory and are never striped.
// The zero Striping compiles the identical unstriped schedule.
func BuildAllreduceTwoLevelStriped(rank int, nodes []int, x []float64, op Op, st Striping) *Schedule {
	s := &Schedule{}
	if len(nodes) == 1 {
		return s
	}
	leaders, byNode := leadersOf(nodes, -1)
	local := byNode[nodes[rank]]
	lead := leaderFor(nodes, byNode, -1, rank)
	binomialReduce(s, sliceGroup(local), lead, rank, x, op)
	interLo := len(s.Rounds)
	rdAllreduce(s, sliceGroup(leaders), rank, x, op)
	stampRails(s, interLo, st)
	binomialBcastF64(s, sliceGroup(local), lead, rank, x)
	return s
}

// f64At decodes the i-th float64 of a wire-encoded vector.
func f64At(b []byte, i int) float64 {
	var v [1]float64
	BytesF64(v[:], b[8*i:])
	return v[0]
}
