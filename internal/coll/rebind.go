package coll

import (
	"fmt"
	"unsafe"
)

// Persistent-schedule support: a compiled schedule references two kinds of
// memory — the caller's argument buffers (bcast payload, reduce vector,
// allgather blocks, ...) and scratch the builder allocated privately
// (receive staging, wire aggregates). Rebind retargets every prim field that
// aliases an old argument region — including sub-slices, which the
// large-message algorithms take liberally — onto the corresponding new
// region, leaving scratch untouched. A cached schedule rebound to fresh
// buffers re-executes with zero compile work, which is what makes repeated
// collectives on one communicator compile exactly once.

// BufArgs lists one invocation's caller-owned buffer regions, in the
// canonical order Args.BufArgs produces. Two invocations with the same
// cache key yield positionally identical region lists.
type BufArgs struct {
	Bytes [][]byte
	F64   [][]float64
	// Op is the reduction operator; Rebind rewrites reduce prims with it.
	Op Op
}

// BufArgs flattens the invocation's caller-owned buffers for rebinding.
// Zero-length buffers are dropped (not just nil ones): the cache key only
// encodes lengths, so nil and empty must flatten identically for two
// same-key invocations to produce positionally matching region lists —
// and rebindBytes ignores zero-length regions anyway.
func (a Args) BufArgs() BufArgs {
	var ba BufArgs
	a.BufArgsInto(&ba)
	return ba
}

// BufArgsInto is BufArgs flattening into a caller-provided value, reusing
// its slice capacity — the schedule cache's hot path flattens into a
// per-entry scratch so a rebind allocates nothing.
func (a Args) BufArgsInto(ba *BufArgs) {
	ba.Bytes = ba.Bytes[:0]
	ba.F64 = ba.F64[:0]
	ba.Op = a.Op
	add := func(b []byte) {
		if len(b) > 0 {
			ba.Bytes = append(ba.Bytes, b)
		}
	}
	add(a.Data)
	add(a.Mine)
	for _, b := range a.Out {
		add(b)
	}
	for _, b := range a.Send {
		add(b)
	}
	for _, b := range a.Recv {
		add(b)
	}
	if len(a.X) > 0 {
		ba.F64 = append(ba.F64, a.X)
	}
	if len(a.RecvF64) > 0 {
		ba.F64 = append(ba.F64, a.RecvF64)
	}
}

// Rebind retargets the schedule from the old argument regions to the new
// ones (positionally matched; shapes must be identical, which the cache key
// guarantees). Safe only while no execution of s is in flight.
func (s *Schedule) Rebind(old, new BufArgs) {
	if len(old.Bytes) != len(new.Bytes) || len(old.F64) != len(new.F64) {
		panic(fmt.Sprintf("coll: Rebind shape mismatch: %d/%d byte regions, %d/%d f64 regions",
			len(old.Bytes), len(new.Bytes), len(old.F64), len(new.F64)))
	}
	for ri := range s.Rounds {
		rd := &s.Rounds[ri]
		rebindPrims(rd.Comm, old, new)
		rebindPrims(rd.Local, old, new)
	}
}

func rebindPrims(prims []Prim, old, new BufArgs) {
	for i := range prims {
		pr := &prims[i]
		pr.Data = rebindBytes(pr.Data, old.Bytes, new.Bytes)
		pr.Buf = rebindBytes(pr.Buf, old.Bytes, new.Bytes)
		pr.Src = rebindBytes(pr.Src, old.Bytes, new.Bytes)
		pr.Dst = rebindBytes(pr.Dst, old.Bytes, new.Bytes)
		pr.In = rebindBytes(pr.In, old.Bytes, new.Bytes)
		pr.AccF64 = rebindF64(pr.AccF64, old.F64, new.F64)
		pr.SrcF64 = rebindF64(pr.SrcF64, old.F64, new.F64)
		if pr.Op != nil && new.Op != nil {
			pr.Op = new.Op
		}
	}
}

// rebindBytes maps sl onto the new region when it lies inside one of the
// old ones (same offset, same length); scratch falls through unchanged.
func rebindBytes(sl []byte, old, new [][]byte) []byte {
	if len(sl) == 0 {
		return sl
	}
	p := uintptr(unsafe.Pointer(&sl[0]))
	for i, ob := range old {
		if len(ob) == 0 {
			continue
		}
		base := uintptr(unsafe.Pointer(&ob[0]))
		if p >= base && p+uintptr(len(sl)) <= base+uintptr(len(ob)) {
			off := int(p - base)
			if off+len(sl) > len(new[i]) {
				panic(fmt.Sprintf("coll: Rebind region %d: [%d:%d) exceeds new length %d",
					i, off, off+len(sl), len(new[i])))
			}
			return new[i][off : off+len(sl)]
		}
	}
	return sl
}

// rebindF64 is rebindBytes for float64 regions (8-byte elements).
func rebindF64(sl []float64, old, new [][]float64) []float64 {
	if len(sl) == 0 {
		return sl
	}
	const esz = unsafe.Sizeof(float64(0))
	p := uintptr(unsafe.Pointer(&sl[0]))
	for i, ob := range old {
		if len(ob) == 0 {
			continue
		}
		base := uintptr(unsafe.Pointer(&ob[0]))
		if p >= base && p+uintptr(len(sl))*esz <= base+uintptr(len(ob))*esz {
			off := int((p - base) / esz)
			if off+len(sl) > len(new[i]) {
				panic(fmt.Sprintf("coll: Rebind f64 region %d: [%d:%d) exceeds new length %d",
					i, off, off+len(sl), len(new[i])))
			}
			return new[i][off : off+len(sl)]
		}
	}
	return sl
}
