package coll

import (
	"fmt"
	"math"
	"testing"
)

// execSched runs rank-specific schedules over the in-memory fabric.
func execSched(t *testing.T, n int, build func(rank int) *Schedule, tag int32) {
	t.Helper()
	runAll(t, n, func(p *peer) {
		ExecBlocking(p, build(p.Rank()), tag)
	})
}

// checkRoundShape asserts the blocking-executor deadlock-freedom invariant:
// a round that mixes sends and receives holds exactly one of each (it
// becomes a SendRecvT); multi-transfer rounds are send-only or recv-only.
func checkRoundShape(t *testing.T, s *Schedule, label string) {
	t.Helper()
	for ri, rd := range s.Rounds {
		sends, recvs := 0, 0
		for _, pr := range rd.Comm {
			switch pr.Kind {
			case PrimSend:
				sends++
			case PrimRecv:
				recvs++
			default:
				t.Fatalf("%s round %d: local prim in Comm", label, ri)
			}
		}
		if sends > 0 && recvs > 0 && (sends != 1 || recvs != 1) {
			t.Fatalf("%s round %d: mixed round with %d sends, %d recvs", label, ri, sends, recvs)
		}
	}
}

func TestScheduleRoundShapes(t *testing.T) {
	x := make([]float64, 4)
	data := make([]byte, 64)
	blocks := func(n int) [][]byte {
		b := make([][]byte, n)
		for i := range b {
			b[i] = make([]byte, 8)
		}
		return b
	}
	for _, n := range testNPs {
		nodes := make([]int, n)
		for r := range nodes {
			nodes[r] = r % 2 // two nodes
		}
		for rank := 0; rank < n; rank++ {
			checkRoundShape(t, BuildBarrier(rank, n), fmt.Sprintf("barrier/np%d/r%d", n, rank))
			checkRoundShape(t, BuildBcast(rank, n, 0, data), fmt.Sprintf("bcast/np%d/r%d", n, rank))
			checkRoundShape(t, BuildReduce(rank, n, 0, x, OpSum), fmt.Sprintf("reduce/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllreduce(rank, n, x, OpSum), fmt.Sprintf("allreduce/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllgather(rank, n, data[:8], blocks(n)), fmt.Sprintf("allgather/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAlltoall(rank, n, blocks(n), blocks(n)), fmt.Sprintf("alltoall/np%d/r%d", n, rank))
			checkRoundShape(t, BuildGather(rank, n, 0, data[:8], blocks(n)), fmt.Sprintf("gather/np%d/r%d", n, rank))
			checkRoundShape(t, BuildBarrierTwoLevel(rank, nodes), fmt.Sprintf("barrier2l/np%d/r%d", n, rank))
			checkRoundShape(t, BuildBcastTwoLevel(rank, nodes, 0, data), fmt.Sprintf("bcast2l/np%d/r%d", n, rank))
			checkRoundShape(t, BuildAllreduceTwoLevel(rank, nodes, x, OpSum), fmt.Sprintf("allreduce2l/np%d/r%d", n, rank))
		}
	}
}

// placements to exercise the two-level builders: ranks over 2 and 3 nodes,
// balanced and skewed.
func testPlacements(n int) [][]int {
	var ps [][]int
	rr2 := make([]int, n)
	blk2 := make([]int, n)
	skew := make([]int, n)
	for r := 0; r < n; r++ {
		rr2[r] = r % 2
		blk2[r] = r * 2 / n
		if r == 0 {
			skew[r] = 0
		} else {
			skew[r] = 1 + r%2
		}
	}
	ps = append(ps, rr2, blk2)
	if n >= 3 {
		ps = append(ps, skew)
	}
	return ps
}

func TestTwoLevelBarrierFabric(t *testing.T) {
	for _, n := range testNPs {
		if n < 2 {
			continue
		}
		for pi, nodes := range testPlacements(n) {
			nodes := nodes
			t.Run(fmt.Sprintf("np%d/p%d", n, pi), func(t *testing.T) {
				execSched(t, n, func(rank int) *Schedule {
					return BuildBarrierTwoLevel(rank, nodes)
				}, 10)
			})
		}
	}
}

func TestTwoLevelBcastFabric(t *testing.T) {
	for _, n := range testNPs {
		if n < 2 {
			continue
		}
		for pi, nodes := range testPlacements(n) {
			for root := 0; root < n; root += 3 {
				nodes, root := nodes, root
				t.Run(fmt.Sprintf("np%d/p%d/root%d", n, pi, root), func(t *testing.T) {
					bufs := make([][]byte, n)
					for r := range bufs {
						bufs[r] = make([]byte, 24)
						if r == root {
							for i := range bufs[r] {
								bufs[r][i] = byte(i ^ root)
							}
						}
					}
					execSched(t, n, func(rank int) *Schedule {
						return BuildBcastTwoLevel(rank, nodes, root, bufs[rank])
					}, 11)
					for r := range bufs {
						for i := range bufs[r] {
							if bufs[r][i] != byte(i^root) {
								t.Fatalf("rank %d byte %d = %d", r, i, bufs[r][i])
							}
						}
					}
				})
			}
		}
	}
}

func TestTwoLevelAllreduceFabric(t *testing.T) {
	for _, n := range testNPs {
		if n < 2 {
			continue
		}
		for pi, nodes := range testPlacements(n) {
			nodes := nodes
			t.Run(fmt.Sprintf("np%d/p%d", n, pi), func(t *testing.T) {
				const m = 9
				vecs := make([][]float64, n)
				for r := range vecs {
					vecs[r] = make([]float64, m)
					for i := range vecs[r] {
						vecs[r][i] = float64(r*10 + i)
					}
				}
				execSched(t, n, func(rank int) *Schedule {
					return BuildAllreduceTwoLevel(rank, nodes, vecs[rank], OpSum)
				}, 12)
				for i := 0; i < m; i++ {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r*10 + i)
					}
					for r := 0; r < n; r++ {
						if math.Abs(vecs[r][i]-want) > 1e-9 {
							t.Fatalf("rank %d elem %d = %g, want %g", r, i, vecs[r][i], want)
						}
					}
				}
			})
		}
	}
}

// TestFlatBuildersMatchLegacySequence pins the executor's call decomposition:
// single-send+single-recv rounds must become SendRecvT exchanges so the
// blocking path keeps the historical deadlock-free pairwise pattern.
func TestFlatBuildersMatchLegacySequence(t *testing.T) {
	s := BuildBarrier(0, 8)
	if len(s.Rounds) != 3 {
		t.Fatalf("np8 barrier rounds = %d, want 3", len(s.Rounds))
	}
	for ri, rd := range s.Rounds {
		if len(rd.Comm) != 2 {
			t.Fatalf("barrier round %d has %d prims", ri, len(rd.Comm))
		}
	}
	x := make([]float64, 2)
	s = BuildAllreduce(3, 6, x, OpSum) // non-power-of-two: pre/main/post
	if len(s.Rounds) < 3 {
		t.Fatalf("np6 allreduce rounds = %d, want >= 3", len(s.Rounds))
	}
}
