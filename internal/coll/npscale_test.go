package coll

// NP-scale checks: the conformance harness's randomized sweep stops at a
// dozen ranks, where an O(NP) term per rank hides comfortably. These tests
// push representative algorithms to NP ∈ {128, 1024} — correctness spot
// checks against the straight-line references — and pin the budget that
// makes NP=4096 points affordable: per-rank schedule memory and compile
// time of the log-depth algorithms must scale sublinearly in NP.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// npScaleRegs names one representative algorithm per op family for the
// large-NP spot checks. The quadratic-reference families (allgather,
// alltoall — the reference sends one message per rank pair) stop at 128;
// the rest also run at 1024. Only log-depth algorithms and the rooted
// linear fans (whose total message count is O(NP)) qualify: forcing a ring
// at NP=1024 is O(NP²) simulation work the selector would never schedule.
var npScaleRegs = []struct {
	reg   Registration
	maxNP int
}{
	{Registration{OpBarrier, AlgoDissemination}, 1024},
	{Registration{OpBcast, AlgoBinomial}, 1024},
	{Registration{OpReduce, AlgoBinomial}, 1024},
	{Registration{OpAllreduce, AlgoRecDoubling}, 1024},
	{Registration{OpGather, AlgoLinear}, 1024},
	{Registration{OpScatter, AlgoLinear}, 1024},
	{Registration{OpAllgather, AlgoBruck}, 128},
	{Registration{OpAllgatherv, AlgoBruck}, 128},
	{Registration{OpAlltoall, AlgoPairwise}, 128},
	{Registration{OpAlltoallv, AlgoPairwise}, 128},
	{Registration{OpReduceScatter, AlgoRecHalving}, 128},
	// Hierarchical variants on a ragged random node map: the two-level
	// builders see uneven per-node populations at scale.
	{Registration{OpBcast, AlgoTwoLevel}, 128},
	{Registration{OpAllreduce, AlgoTwoLevel}, 128},
	{Registration{OpBarrier, AlgoTwoLevel}, 128},
}

// TestConformanceNPScale runs each representative (op, algo) at NP=128 and
// — where the reference cost allows — NP=1024, inputs randomized the same
// way the main sweep's are.
func TestConformanceNPScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-NP conformance spot checks skipped in -short")
	}
	for _, c := range npScaleRegs {
		c := c
		t.Run(fmt.Sprintf("%s/%s", c.reg.Op, c.reg.Algo), func(t *testing.T) {
			for _, np := range []int{128, 1024} {
				if np > c.maxNP {
					continue
				}
				rng := rand.New(rand.NewSource(
					int64(c.reg.Op)<<20 | int64(c.reg.Algo)<<12 | int64(np)))
				var nodes []int
				if c.reg.Algo == AlgoTwoLevel {
					nodes = confNodes(rng, np)
				}
				confTrial(t, c.reg, np, nodes, rng)
			}
		})
	}
}

// TestConformanceNPScaleSparseCounts: a sparse reduce-scatter at NP=1024 —
// 16 of 1024 ranks own a nonzero segment, the count vector is almost all
// zeros — against the straight-line reference. This is the "sparse
// schedule" shape the vector collectives see on irregular decompositions,
// at a rank count where any per-rank O(NP) blowup in the halving windows
// would be visible.
func TestConformanceNPScaleSparseCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("large-NP conformance spot checks skipped in -short")
	}
	const np = 1024
	reg := Registration{OpReduceScatter, AlgoRecHalving}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, np)
	total := 0
	for i := 0; i < 16; i++ {
		r := rng.Intn(np)
		counts[r] = 1 + rng.Intn(8)
	}
	for _, n := range counts {
		total += n
	}
	op := OpSum
	xs := make([][]float64, np)
	for r := range xs {
		xs[r] = confF64s(rng, total)
	}
	recvs := make([][]float64, np)
	label := fmt.Sprintf("%s/%s/np%d/sparse", reg.Op, reg.Algo, np)
	a := confExec(t, label, reg, np,
		func(rank int) Args {
			recvs[rank] = make([]float64, counts[rank])
			return Args{X: cpf(xs[rank]), RecvF64: recvs[rank],
				RCounts: counts, Op: op}
		},
		func(rank int) rankOut { return rankOut{X: [][]float64{recvs[rank]}} })
	ref := runConf(t, np, func(p *peer) rankOut {
		recv := make([]float64, counts[p.rank])
		refReduceScatter(p, cpf(xs[p.rank]), recv, counts, op)
		return rankOut{X: [][]float64{recv}}
	})
	confCompare(t, label, a, ref)
}

// budgetAlgos are the log-depth algorithms whose compile cost the NP=4096
// benchmark points rely on; a rank of a binomial tree or a recursive-
// doubling exchange touches O(log NP) peers, and its schedule must cost
// that — in primitives, in bytes and in compile time.
var budgetAlgos = []Registration{
	{OpBcast, AlgoBinomial},
	{OpAllreduce, AlgoRecDoubling},
	{OpBarrier, AlgoDissemination},
}

// budgetArgs builds minimal valid args for one budget compile.
func budgetArgs(op OpKind, rank, np int) Args {
	a := Args{Rank: rank, Size: np}
	switch op {
	case OpBcast:
		a.Data = make([]byte, 64)
	case OpAllreduce:
		a.X = make([]float64, 8)
		a.Op = OpSum
	}
	return a
}

// measureCompile compiles rank np/3's schedule iters times and reports the
// per-compile primitive count, allocated bytes and wall time.
func measureCompile(reg Registration, np, iters int) (prims int, bytesPer float64, perCompile time.Duration) {
	key := Key{Op: reg.Op, Algo: reg.Algo}
	a := budgetArgs(reg.Op, np/3, np)
	s := Build(key, a)
	for _, rd := range s.Rounds {
		prims += len(rd.Comm) + len(rd.Local)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		Build(key, a)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return prims, float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
		elapsed / time.Duration(iters)
}

// TestScheduleBudgetSublinear pins the NP-scaling budget: quadrupling NP
// (1024 → 4096) may grow a log-depth rank schedule by at most the log
// factor, with slack — nowhere near the 4× a hidden O(NP) term would cost.
// Primitive counts are deterministic and bounded tightly; allocated bytes
// and compile time are bounded at 2× (log₂ 4096 / log₂ 1024 = 1.2), with
// compile time re-measured before failing, as host timers share the
// machine with the rest of the suite.
func TestScheduleBudgetSublinear(t *testing.T) {
	const loNP, hiNP, iters = 1024, 4096, 200
	for _, reg := range budgetAlgos {
		reg := reg
		t.Run(fmt.Sprintf("%s/%s", reg.Op, reg.Algo), func(t *testing.T) {
			loPrims, loBytes, _ := measureCompile(reg, loNP, iters)
			hiPrims, hiBytes, _ := measureCompile(reg, hiNP, iters)
			if hiPrims > 2*loPrims {
				t.Errorf("schedule primitives grew %d -> %d from NP=%d to NP=%d; log-depth allows at most 2x",
					loPrims, hiPrims, loNP, hiNP)
			}
			if hiBytes > 2*loBytes+512 {
				t.Errorf("compile allocated %.0fB/rank at NP=%d vs %.0fB at NP=%d; growth is super-logarithmic",
					hiBytes, hiNP, loBytes, loNP)
			}
			// Compile time: linear scaling would be ≥ 4×; assert < 3× on the
			// best of three measurement rounds to ride out scheduler noise.
			ok := false
			var loT, hiT time.Duration
			for round := 0; round < 3 && !ok; round++ {
				_, _, loT = measureCompile(reg, loNP, iters)
				_, _, hiT = measureCompile(reg, hiNP, iters)
				ok = float64(hiT) < 3*float64(loT)+float64(2*time.Microsecond)
			}
			if !ok {
				t.Errorf("compile time %v at NP=%d vs %v at NP=%d: scaling ~linearly in NP",
					hiT, hiNP, loT, loNP)
			}
		})
	}
}
