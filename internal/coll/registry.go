package coll

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind enumerates the collective operations the registry dispatches.
type OpKind uint8

const (
	OpBarrier OpKind = iota
	OpBcast
	OpReduce
	OpAllreduce
	OpAllgather
	OpAlltoall
	OpGather
	OpScatter
	OpAlltoallv
	OpAllgatherv
	OpGatherv
	OpScatterv
	OpReduceScatter
	numOps
)

var opNames = [numOps]string{
	"barrier", "bcast", "reduce", "allreduce",
	"allgather", "alltoall", "gather", "scatter",
	"alltoallv", "allgatherv", "gatherv", "scatterv", "reduce-scatter",
}

func (o OpKind) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Algo enumerates the schedule algorithms the selector picks between.
type Algo uint8

const (
	// AlgoAuto lets the selector choose from size and topology.
	AlgoAuto Algo = iota
	AlgoDissemination
	AlgoBinomial
	AlgoScatterAllgather
	AlgoRecDoubling
	AlgoRabenseifner
	AlgoRing
	AlgoBruck
	AlgoPairwise
	AlgoLinear
	AlgoTwoLevel
	AlgoRecHalving
	// The segmented (pipelined) algorithms split the payload into pipeline
	// segments so consecutive segments overlap across ranks — the
	// large-message workhorses the schedule engine's per-segment rounds
	// exist for (see segmented.go).
	AlgoChain
	AlgoSegBinomial
	AlgoSegRing
	numAlgos
)

var algoNames = [numAlgos]string{
	"auto", "dissemination", "binomial", "scatter-allgather",
	"recursive-doubling", "rabenseifner", "ring", "bruck",
	"pairwise", "linear", "two-level", "recursive-halving",
	"chain", "segmented-binomial", "segmented-ring",
}

// Segmented reports whether algo pipelines its payload in segments — the
// algorithms whose schedules depend on a segment size (Key.Seg).
func Segmented(a Algo) bool {
	switch a {
	case AlgoChain, AlgoSegBinomial, AlgoSegRing:
		return true
	}
	return false
}

// Striped reports whether (op, algo) can deal its transfers across the
// rails of a multirail stack — the pairs whose schedules depend on a
// stripe width (Key.Stripe). Every segmented algorithm stripes (segments
// are the natural stripe unit), plus the two-level variants whose
// inter-node phase moves bulk payload (bcast's leader tree, allreduce's
// leader exchange); the other two-level ops move per-rank blocks or
// zero-byte tokens between leaders, which striping cannot help.
func Striped(op OpKind, a Algo) bool {
	if Segmented(a) {
		return true
	}
	if a == AlgoTwoLevel {
		switch op {
		case OpBcast, OpAllreduce:
			return true
		}
	}
	return false
}

// LinearDepth reports whether algo's round count grows linearly with the
// rank count — rings, chains, linear rooted fan-in/out, pairwise exchange,
// and the scatter-allgather bcast (its allgather phase is a ring). Their
// per-rank schedules are inherently O(NP), so forcing one at NP in the
// thousands costs O(NP²) total simulation work; harnesses consult this to
// keep large-NP sweeps to the logarithmic-depth pool.
func LinearDepth(a Algo) bool {
	switch a {
	case AlgoRing, AlgoSegRing, AlgoChain, AlgoLinear, AlgoPairwise, AlgoScatterAllgather:
		return true
	}
	return false
}

func (a Algo) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("algo(%d)", uint8(a))
}

// Args carries one invocation's parameters into a registered builder. Only
// the fields an operation uses are read: Data for bcast, X/Op for the
// reductions, Mine/Out for allgather and gather, Send for scatter's blocks,
// Send/Recv for alltoall, Nodes for the two-level variants. The vector ops
// add per-rank count vectors: Send/Recv/Out hold the variable-length block
// views (sliced from flat buffers by Blocks) whose lengths the cache
// signature serializes, and reduce-scatter reads the full input vector
// from X, the element counts from RCounts and lands the result segment in
// RecvF64.
type Args struct {
	Rank, Size int
	Root       int
	// Nodes maps comm-local ranks to node ids for the two-level variants
	// (nil selects the flat algorithms).
	Nodes []int

	Data []byte
	X    []float64
	Op   Op
	Mine []byte
	Out  [][]byte
	Send [][]byte
	Recv [][]byte

	// RCounts are the vector ops' per-rank receive counts (bytes; float64
	// elements for reduce-scatter). They drive allgatherv's size-based
	// selection and reduce-scatter's signature and halving windows — the
	// other vector ops' counts are fully carried by their Send/Recv/Out
	// view lengths, which sigOf serializes. RecvF64 is the reduce-scatter
	// result segment of RCounts[Rank] elements.
	RCounts []int
	RecvF64 []float64

	// SDispls is set (and folded into the signature) only when the caller's
	// send blocks overlap in the flat buffer — legal for sends, since they
	// are only read. Disjoint layouts rebind positionally whatever their
	// displacements, but overlapping regions make pointer-containment
	// rebinding ambiguous, so aliased layouts key on their exact
	// displacements instead. (Overlapping *receive* blocks are rejected at
	// the mpi entry points: they would corrupt data, not just the cache.)
	SDispls []int

	// Seg is the pipeline segment size in bytes for the segmented builders
	// (0 selects DefSegBytes). It is schedule *shape* — two invocations with
	// different segment sizes compile structurally different round programs
	// — so KeyFor resolves it (Tuning.SegBytes > table entry seg > default)
	// into Key.Seg and the mpi layer copies the resolved value back before
	// building; non-segmented algorithms always run with Seg 0 so their
	// cache keys never fragment.
	Seg int

	// Stripe is the rail-stripe width for the rail-striped algorithms: the
	// number of rails consecutive segments (or inter-node tree edges) are
	// dealt across, 0 or 1 disabling striping. Like Seg it is schedule
	// *shape* — the same segments carrying different rail hints are
	// different compiled programs — so KeyFor resolves it (Tuning.
	// StripeWidth > table entry stripe > off) into Key.Stripe and the mpi
	// layer copies it back before building. Rails carries the per-rail
	// capacities the proportional stripe assigner weighs; builders only
	// read it when Stripe > 1.
	Stripe int
	Rails  []RailInfo
}

// Builder compiles one rank's schedule for one (op, algorithm) pair.
type Builder func(a Args) *Schedule

var registry [numOps][numAlgos]Builder

// Register installs a builder; the last registration for a pair wins.
func Register(op OpKind, algo Algo, b Builder) { registry[op][algo] = b }

func init() {
	Register(OpBarrier, AlgoDissemination, func(a Args) *Schedule {
		return BuildBarrier(a.Rank, a.Size)
	})
	Register(OpBarrier, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildBarrierTwoLevel(a.Rank, a.Nodes)
	})
	Register(OpBcast, AlgoBinomial, func(a Args) *Schedule {
		return BuildBcast(a.Rank, a.Size, a.Root, a.Data)
	})
	Register(OpBcast, AlgoScatterAllgather, func(a Args) *Schedule {
		return BuildBcastScatterAllgather(a.Rank, a.Size, a.Root, a.Data)
	})
	Register(OpBcast, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildBcastTwoLevelStriped(a.Rank, a.Nodes, a.Root, a.Data, a.striping())
	})
	Register(OpBcast, AlgoChain, func(a Args) *Schedule {
		return BuildBcastChainStriped(a.Rank, a.Size, a.Root, a.Data, a.Seg, a.striping())
	})
	Register(OpBcast, AlgoSegBinomial, func(a Args) *Schedule {
		return BuildBcastSegBinomialStriped(a.Rank, a.Size, a.Root, a.Data, a.Seg, a.striping())
	})
	Register(OpReduce, AlgoBinomial, func(a Args) *Schedule {
		return BuildReduce(a.Rank, a.Size, a.Root, a.X, a.Op)
	})
	Register(OpAllreduce, AlgoRecDoubling, func(a Args) *Schedule {
		return BuildAllreduce(a.Rank, a.Size, a.X, a.Op)
	})
	Register(OpAllreduce, AlgoRabenseifner, func(a Args) *Schedule {
		return BuildAllreduceRabenseifner(a.Rank, a.Size, a.X, a.Op)
	})
	Register(OpAllreduce, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildAllreduceTwoLevelStriped(a.Rank, a.Nodes, a.X, a.Op, a.striping())
	})
	Register(OpAllreduce, AlgoSegRing, func(a Args) *Schedule {
		return BuildAllreduceSegRingStriped(a.Rank, a.Size, a.X, a.Op, a.Seg, a.striping())
	})
	Register(OpAllgather, AlgoRing, func(a Args) *Schedule {
		return BuildAllgather(a.Rank, a.Size, a.Mine, a.Out)
	})
	Register(OpAllgather, AlgoBruck, func(a Args) *Schedule {
		return BuildAllgatherBruck(a.Rank, a.Size, a.Mine, a.Out)
	})
	Register(OpAllgather, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildAllgatherTwoLevel(a.Rank, a.Nodes, a.Mine, a.Out)
	})
	Register(OpAlltoall, AlgoPairwise, func(a Args) *Schedule {
		return BuildAlltoall(a.Rank, a.Size, a.Send, a.Recv)
	})
	Register(OpAlltoall, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildAlltoallTwoLevel(a.Rank, a.Nodes, a.Send, a.Recv)
	})
	Register(OpGather, AlgoLinear, func(a Args) *Schedule {
		return BuildGather(a.Rank, a.Size, a.Root, a.Mine, a.Out)
	})
	Register(OpScatter, AlgoLinear, func(a Args) *Schedule {
		return BuildScatter(a.Rank, a.Size, a.Root, a.Send, a.Mine)
	})

	// Vector ops. Alltoallv and reduce-scatter have dedicated builders;
	// allgatherv, gatherv and scatterv reuse the block-view builders, which
	// already handle per-rank lengths (zero-length blocks included).
	Register(OpAlltoallv, AlgoPairwise, func(a Args) *Schedule {
		return BuildAlltoallv(a.Rank, a.Size, a.Send, a.Recv, true)
	})
	Register(OpAlltoallv, AlgoRing, func(a Args) *Schedule {
		return BuildAlltoallv(a.Rank, a.Size, a.Send, a.Recv, false)
	})
	Register(OpAllgatherv, AlgoRing, func(a Args) *Schedule {
		return BuildAllgather(a.Rank, a.Size, a.Mine, a.Out)
	})
	Register(OpAllgatherv, AlgoBruck, func(a Args) *Schedule {
		return BuildAllgatherBruck(a.Rank, a.Size, a.Mine, a.Out)
	})
	Register(OpAllgatherv, AlgoTwoLevel, func(a Args) *Schedule {
		return BuildAllgatherTwoLevel(a.Rank, a.Nodes, a.Mine, a.Out)
	})
	Register(OpGatherv, AlgoLinear, func(a Args) *Schedule {
		return BuildGather(a.Rank, a.Size, a.Root, a.Mine, a.Out)
	})
	Register(OpScatterv, AlgoLinear, func(a Args) *Schedule {
		return BuildScatter(a.Rank, a.Size, a.Root, a.Send, a.Mine)
	})
	Register(OpReduceScatter, AlgoRecHalving, func(a Args) *Schedule {
		return BuildReduceScatterHalving(a.Rank, a.Size, a.X, a.RecvF64, a.RCounts, a.Op)
	})
	Register(OpReduceScatter, AlgoPairwise, func(a Args) *Schedule {
		return BuildReduceScatterPairwise(a.Rank, a.Size, a.X, a.RecvF64, a.RCounts, a.Op)
	})
}

// Tuning parameterizes algorithm selection. The zero value (and a nil
// pointer) selects the built-in MPICH-flavoured defaults. Overrides apply
// in ONE precedence order, enforced by Select and asserted by test
// (TestTableBeatsLongOverride):
//
//		Force > topology (two-level) > Table > *Long overrides > defaults
//
//	  - Force pins an operation to one algorithm unconditionally;
//	  - topology: when the caller requests two-level and op has a
//	    hierarchical builder, that structural decision outranks any size
//	    threshold (a table cannot express placement);
//	  - Table supplies calibrated per-operation size thresholds (loaded via
//	    LoadTable from a colltune-emitted JSON file, or taken from the
//	    embedded per-stack calibrations in internal/coll/tune) and replaces
//	    the built-in size switch for the operations it covers — including
//	    the *Long knobs, which a covering table makes dead;
//	  - the *Long fields override individual default byte thresholds when
//	    > 0 — the pre-table tuning knobs, honoured only for operations the
//	    table does not cover.
//
// SegBytes forces the pipeline segment size of the segmented algorithms
// (chain / segmented-binomial / segmented-ring) in bytes; 0 defers to the
// table entry's seg field and then DefSegBytes. Stack names the MPI stack
// selection runs under (cluster.Stack.Name); mpi.Run fills it in
// automatically so the stack identity flows into every coll.Key. Tables
// and forced algorithms are validated by Validate — mpi.Run rejects
// malformed tuning instead of silently falling back.
type Tuning struct {
	Force    map[OpKind]Algo
	Table    *Table
	Stack    string
	SegBytes int

	// StripeWidth forces the rail-stripe width of the rail-striped
	// algorithms (see Striped); 0 defers to the table entry's stripe field,
	// and striping stays off when neither names one — unlike segment size
	// there is no nonzero default, because dealing segments across rails
	// only pays when calibration (or the caller) says the stack's rails
	// add up. Rails describes the rails selection runs over; mpi.Run fills
	// it from the stack configuration. Fewer than two rails disables
	// striping regardless of any override: single-rail stacks must compile
	// bit-identical schedules with or without this PR-era machinery.
	StripeWidth int
	Rails       []RailInfo

	BcastLong     int
	AllreduceLong int
	AllgatherLong int
}

// Default size thresholds (payload bytes) at which the selector switches
// from the latency-optimal to the bandwidth-optimal algorithm, and the
// default pipeline segment size of the segmented algorithms.
const (
	DefBcastLong     = 12 << 10
	DefAllreduceLong = 4 << 10
	DefAllgatherLong = 32 << 10
	DefSegBytes      = 8 << 10
)

// SegFor resolves the pipeline segment size a segmented algorithm runs
// with for op on np ranks at bytes of payload: SegBytes forces it,
// otherwise the calibrated table entry matching this rank count and payload
// supplies it, otherwise DefSegBytes — the same precedence ladder Select
// applies to the algorithm itself.
func (t *Tuning) SegFor(op OpKind, np, bytes int) int {
	if t != nil && t.SegBytes > 0 {
		return t.SegBytes
	}
	if t != nil && t.Table != nil {
		if e, ok := t.Table.LookupEntry(op, np, bytes); ok && e.Seg > 0 {
			return e.Seg
		}
	}
	return DefSegBytes
}

// StripeFor resolves the rail-stripe width a rail-striped algorithm runs
// with for op on np ranks at bytes of payload: fewer than two known rails
// means 0 (no striping, unconditionally), otherwise StripeWidth forces it,
// otherwise the calibrated table entry matching this rank count and payload
// supplies it; with neither, striping stays off. Widths clamp to the rail
// count — a table calibrated on a wider stack cannot make the assigner deal
// to rails that don't exist. The precedence mirrors SegFor minus the
// nonzero default (see Tuning.StripeWidth on why).
func (t *Tuning) StripeFor(op OpKind, np, bytes int) int {
	if t == nil || len(t.Rails) < 2 {
		return 0
	}
	w := 0
	if t.StripeWidth > 0 {
		w = t.StripeWidth
	} else if t.Table != nil {
		if e, ok := t.Table.LookupEntry(op, np, bytes); ok && e.Stripe > 0 {
			w = e.Stripe
		}
	}
	if w > len(t.Rails) {
		w = len(t.Rails)
	}
	if w < 2 {
		return 0
	}
	return w
}

// RailProfile canonicalizes the tuning's rail set for the cache key: rail
// names joined by '+', empty without rails. Part of Key for striped shapes
// so a schedule striped over one rail set never survives into a run over
// another.
func (t *Tuning) RailProfile() string {
	if t == nil || len(t.Rails) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, r := range t.Rails {
		if i > 0 {
			sb.WriteByte('+')
		}
		sb.WriteString(r.Name)
	}
	return sb.String()
}

func (t *Tuning) bcastLong() int {
	if t != nil && t.BcastLong > 0 {
		return t.BcastLong
	}
	return DefBcastLong
}

func (t *Tuning) allreduceLong() int {
	if t != nil && t.AllreduceLong > 0 {
		return t.AllreduceLong
	}
	return DefAllreduceLong
}

func (t *Tuning) allgatherLong() int {
	if t != nil && t.AllgatherLong > 0 {
		return t.AllgatherLong
	}
	return DefAllgatherLong
}

// Select picks the algorithm for op on size ranks moving bytes of payload;
// twoLevel requests the hierarchical variant where one exists. The
// precedence order is exactly the one Tuning documents — Force > topology
// (two-level) > Table > *Long overrides > defaults. A table covering op
// therefore makes the corresponding *Long knob dead: the size switch the
// *Long fields parameterize is only reached when the table has no entry
// for op (or no table is installed). The defaults are documented in
// internal/coll/README.md.
func (t *Tuning) Select(op OpKind, size, bytes int, twoLevel bool) Algo {
	if t != nil && t.Force != nil {
		if a, ok := t.Force[op]; ok && a != AlgoAuto {
			return a
		}
	}
	// A calibrated flat-vs-two-level crossover refines the topology request:
	// when the table records that leader aggregation only pays off above
	// some payload, smaller payloads take the flat selection even though the
	// caller asked for two-level. Uncalibrated tables keep the structural
	// default — two-level whenever requested.
	if twoLevel && t != nil && t.Table != nil && hasTwoLevel(op) {
		if m, ok := t.Table.TwoLevelMin[op.String()]; ok && (m < 0 || bytes <= m) {
			twoLevel = false
		}
	}
	if t != nil && t.Table != nil && !(twoLevel && hasTwoLevel(op)) {
		if a, ok := t.Table.Lookup(op, size, bytes); ok {
			return builderFallback(op, a, size)
		}
	}
	switch op {
	case OpBarrier:
		if twoLevel {
			return AlgoTwoLevel
		}
		return AlgoDissemination
	case OpBcast:
		if twoLevel {
			return AlgoTwoLevel
		}
		if size < 8 || bytes <= t.bcastLong() {
			return AlgoBinomial
		}
		return AlgoScatterAllgather
	case OpReduce:
		return AlgoBinomial
	case OpAllreduce:
		if twoLevel {
			return AlgoTwoLevel
		}
		if size < 4 || size&(size-1) != 0 || bytes <= t.allreduceLong() {
			return AlgoRecDoubling
		}
		return AlgoRabenseifner
	case OpAllgather:
		if twoLevel {
			return AlgoTwoLevel
		}
		if bytes <= t.allgatherLong() {
			return AlgoBruck
		}
		return AlgoRing
	case OpAlltoall:
		if twoLevel {
			return AlgoTwoLevel
		}
		return AlgoPairwise
	case OpGather, OpScatter, OpGatherv, OpScatterv:
		return AlgoLinear
	case OpAlltoallv:
		// Per-rank counts are private, so selection may only key on the
		// globally known rank count: XOR pairing for powers of two, rotated
		// shifts otherwise (see vector.go on why size-based or Bruck-style
		// choices are unavailable).
		if size&(size-1) == 0 {
			return AlgoPairwise
		}
		return AlgoRing
	case OpAllgatherv:
		// The full recvcounts vector is known on every rank, so the total
		// payload is a globally consistent selector input.
		if twoLevel {
			return AlgoTwoLevel
		}
		if bytes <= t.allgatherLong() {
			return AlgoBruck
		}
		return AlgoRing
	case OpReduceScatter:
		if size&(size-1) == 0 {
			return AlgoRecHalving
		}
		return AlgoPairwise
	}
	panic(fmt.Sprintf("coll: select on unknown op %d", op))
}

// hasTwoLevel reports whether op has a registered hierarchical variant —
// the operations whose twoLevel selection outranks any table entry.
func hasTwoLevel(op OpKind) bool { return registry[op][AlgoTwoLevel] != nil }

// HasTwoLevel is the exported form of hasTwoLevel — the autotuner sweeps
// the flat-vs-two-level crossover for exactly these operations.
func HasTwoLevel(op OpKind) bool { return hasTwoLevel(op) }

// builderFallback maps a table's pick to the algorithm the builder would
// actually construct at this rank count: the power-of-two-only choices fall
// back inside their builders (FallsBack), and normalizing here keeps
// Key.Algo honest and stops the schedule cache from holding two entries for
// one structure. Byte thresholds cannot express the rank-count constraint,
// so a calibrated table may legitimately name, say, Rabenseifner at a size
// where the communicator is not a power of two.
func builderFallback(op OpKind, algo Algo, size int) Algo {
	if !FallsBack(op, algo, size) {
		return algo
	}
	switch op {
	case OpAlltoallv:
		return AlgoRing
	case OpReduceScatter:
		return AlgoPairwise
	case OpAllreduce:
		return AlgoRecDoubling
	}
	return algo
}

// Key canonicalizes one collective invocation's compiled shape on a given
// communicator: operation, selected algorithm, root, the stack identity the
// selection ran under, and the counts signature. Two invocations with equal
// keys on the same communicator compile to structurally identical
// schedules, differing only in which caller buffers they are bound to — the
// property the per-communicator schedule cache (mpi) relies on. Stack is
// part of the key because selection is stack-dependent once tables are in
// play: keys minted under different calibrations must never conflate.
type Key struct {
	Op    OpKind
	Algo  Algo
	Root  int
	Stack string
	// NP is the communicator's rank count. Selection keys on it twice over
	// — rank-count-banded tables and the power-of-two builder fallbacks —
	// so two communicators of different sizes must never share a compiled
	// shape even when their buffer signatures coincide.
	NP int
	// Seg is the resolved pipeline segment size for segmented algorithms
	// (0 otherwise). It is part of the key because segment size is shape:
	// the same buffers pipelined at a different granularity compile a
	// different round program, so two seg values must never share a cached
	// schedule.
	Seg int
	// Stripe is the resolved rail-stripe width for rail-striped algorithms
	// (0 otherwise), and Rails the profile of the rail set it was resolved
	// against. Stripe is shape for the same reason Seg is: the same
	// segments dealt across a different number of rails carry different
	// placement hints. Rails guards the remaining aliasing — the same width
	// over a different rail set deals a different sequence (bandwidth
	// weights), so a cached striped shape must not survive a rail-set
	// change. Both stay zero for unstriped invocations, keeping their keys
	// byte-identical to the pre-striping era.
	Stripe int
	Rails  string
	Sig    string
}

// KeyFor selects the algorithm and builds the canonical key for one
// invocation. Topology-dependent fallbacks live here: the two-level
// alltoall needs uniform block sizes and every two-level variant needs a
// node map, otherwise the flat selection applies.
func KeyFor(t *Tuning, op OpKind, a Args, twoLevel bool) Key {
	if twoLevel && a.Nodes == nil {
		twoLevel = false
	}
	if twoLevel && op == OpAlltoall && !uniformBlocks(a.Send) {
		twoLevel = false
	}
	bytes := payloadBytes(op, a)
	algo := t.Select(op, a.Size, bytes, twoLevel)
	if algo == AlgoTwoLevel && a.Nodes == nil {
		// No node map, so the two-level builders cannot run — even when the
		// tuning *forces* two-level: strip Force for the re-selection or it
		// would just return AlgoTwoLevel again and the builder would panic.
		noForce := Tuning{}
		if t != nil {
			noForce = *t
			noForce.Force = nil
		}
		algo = noForce.Select(op, a.Size, bytes, false)
	}
	k := Key{Op: op, Algo: algo, Root: rootOf(op, a), NP: a.Size, Sig: sigOf(op, a)}
	if Segmented(algo) {
		k.Seg = t.SegFor(op, a.Size, bytes)
	}
	if Striped(op, algo) {
		if w := t.StripeFor(op, a.Size, bytes); w > 0 {
			k.Stripe = w
			k.Rails = t.RailProfile()
		}
	}
	if t != nil {
		k.Stack = t.Stack
	}
	return k
}

// Registration names one installed (operation, algorithm) builder pair.
type Registration struct {
	Op   OpKind
	Algo Algo
}

// Registrations enumerates every registered builder pair, operation-major —
// the conformance harness walks this so a newly registered algorithm is
// covered (or fails coverage) automatically.
func Registrations() []Registration {
	var regs []Registration
	for op := OpKind(0); op < numOps; op++ {
		for a := Algo(0); a < numAlgos; a++ {
			if registry[op][a] != nil {
				regs = append(regs, Registration{Op: op, Algo: a})
			}
		}
	}
	return regs
}

// countsInSig reports whether op's schedule structure depends on a counts
// vector that the buffer views do not already pin: reduce-scatter has no
// per-rank views, and its halving windows depend on the whole vector, not
// just len(X) and len(RecvF64). The other vector ops' counts equal their
// Send/Recv/Out view lengths, which sigOf already serializes.
func countsInSig(op OpKind) bool {
	return op == OpReduceScatter
}

// FallsBack reports whether forcing algo for op at this rank count would
// silently build a different algorithm: the power-of-two-only choices fall
// back inside their builders. Owned here, next to those builders, so
// harnesses (cmd/collbench) don't duplicate the rules.
func FallsBack(op OpKind, algo Algo, size int) bool {
	if size&(size-1) == 0 {
		return false
	}
	switch {
	case op == OpAlltoallv && algo == AlgoPairwise:
		return true // XOR ordering needs a power of two
	case op == OpReduceScatter && algo == AlgoRecHalving:
		return true
	case op == OpAllreduce && algo == AlgoRabenseifner:
		return true
	}
	return false
}

// Build compiles a's schedule with key's algorithm.
func Build(key Key, a Args) *Schedule {
	b := registry[key.Op][key.Algo]
	if b == nil {
		panic(fmt.Sprintf("coll: no %s builder registered for %s", key.Algo, key.Op))
	}
	s := b(a)
	s.Key = key
	return s
}

// ByteTunable reports whether op's selection is a payload-size tradeoff a
// tuning table can express: more than one flat algorithm, discriminated by
// a globally agreed byte count. Alltoallv fails the second condition (its
// counts are rank-private, so payloadBytes feeds the selector a constant
// zero); the rooted linear ops and alltoall fail the first.
func ByteTunable(op OpKind) bool {
	switch op {
	case OpBcast, OpAllreduce, OpAllgather, OpAllgatherv, OpReduceScatter:
		return true
	}
	return false
}

// payloadBytes is the selector's size input: the bytes one rank contributes
// or receives, per operation.
func payloadBytes(op OpKind, a Args) int {
	switch op {
	case OpBcast:
		return len(a.Data)
	case OpReduce, OpAllreduce:
		return 8 * len(a.X)
	case OpAllgather:
		t := len(a.Mine)
		for _, b := range a.Out {
			t += len(b)
		}
		return t
	case OpAlltoall:
		t := 0
		for _, b := range a.Send {
			t += len(b)
		}
		return t
	case OpGather, OpGatherv:
		return len(a.Mine)
	case OpScatter, OpScatterv:
		return len(a.Mine)
	case OpAlltoallv:
		return 0 // selection ignores payload: per-rank counts are private
	case OpAllgatherv:
		return sumInts(a.RCounts)
	case OpReduceScatter:
		return 8 * len(a.X)
	}
	return 0
}

func sumInts(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// rootOf returns the root for rooted operations, -1 otherwise.
func rootOf(op OpKind, a Args) int {
	switch op {
	case OpBcast, OpReduce, OpGather, OpScatter, OpGatherv, OpScatterv:
		return a.Root
	}
	return -1
}

// sigOf compresses the invocation's buffer counts into the key signature.
func sigOf(op OpKind, a Args) string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(len(a.Data)))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(len(a.X)))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(len(a.Mine)))
	writeLens := func(bs [][]byte) {
		sb.WriteByte('/')
		for i, b := range bs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(len(b)))
		}
	}
	writeLens(a.Out)
	writeLens(a.Send)
	writeLens(a.Recv)
	writeInts := func(tag byte, xs []int) {
		sb.WriteByte('/')
		sb.WriteByte(tag)
		for i, x := range xs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(x))
		}
	}
	// The counts signature, for the ops whose structure the views do not
	// already pin. Displacements stay out of the key for disjoint layouts —
	// they change which buffer regions the blocks bind to, not the
	// schedule's structure, so Rebind absorbs them — but the mpi layer sets
	// SDispls/RDispls for overlapping layouts, which must key exactly.
	if countsInSig(op) {
		writeInts('c', a.RCounts)
	}
	if a.SDispls != nil {
		writeInts('s', a.SDispls)
	}
	return sb.String()
}

// uniformBlocks reports whether every block has the same length.
func uniformBlocks(bs [][]byte) bool {
	for _, b := range bs {
		if len(b) != len(bs[0]) {
			return false
		}
	}
	return true
}
