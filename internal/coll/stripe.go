package coll

// This file holds the rail-striping post-pass of the segmented and two-level
// builders: marking which sends of a schedule should split across rails on a
// multirail stack.
//
// The point-to-point layer already splits one large rendezvous payload
// across rails (nmad's water-filling strategy), but a segmented schedule
// defeats that on purpose: it moves the payload as many sub-threshold
// segments, each of which the eager path places whole on the single best
// rail — the pipeline wins the overlap and loses the aggregate bandwidth.
// Striping restores the bandwidth at the schedule level: each large-enough
// send prim is stamped with a negative rail hint, -width, which the nmad
// transport implements by forcing the rendezvous protocol and water-filling
// the payload over the first `width` rails. Every segment of the pipeline
// then uses all striped rails concurrently, so per-segment wire time shrinks
// toward max-share time while the pipeline overlap is untouched.
//
// Splitting *within* a message is the only reorder-safe way to use several
// rails for one (peer, tag) stream: rendezvous chunks carry explicit offsets
// and reassemble correctly however the rails race, whereas dealing whole
// same-tag eager segments across rails lets a later segment overtake an
// earlier one and match the wrong posted receive. (It is also the only
// *profitable* way under a round-synchronized executor: alternating whole
// segments between rails cannot overlap consecutive sends of one rank, so it
// merely averages the rails' speeds instead of adding them.)

// RailInfo describes one rail of the stack a striped schedule runs over.
// The names feed the selection key's rail profile; the capacity fields are
// carried for observability and tuning. mpi.Run fills Tuning.Rails (and the
// builders' Args.Rails) from the stack's rail parameters.
type RailInfo struct {
	Name        string
	LatencyNS   int64
	BytesPerSec float64
}

// Striping carries one resolved stripe decision into a builder: Width is
// the number of rails to stripe sends across (0 or 1 disables striping) and
// Rails the stack's rails. The zero value — what every unstriped invocation
// passes — disables striping entirely, so unstriped schedules compile
// bit-identical to their pre-striping form.
type Striping struct {
	Width int
	Rails []RailInfo
}

// striping bundles an Args' stripe fields for the registered builders.
func (a Args) striping() Striping { return Striping{Width: a.Stripe, Rails: a.Rails} }

// width resolves the effective stripe width: clamped to the known rail
// count, and 0 (striping disabled) below two rails.
func (st Striping) width() int {
	w := st.Width
	if len(st.Rails) > 0 && w > len(st.Rails) {
		w = len(st.Rails)
	}
	if w < 2 || len(st.Rails) < 2 {
		return 0
	}
	return w
}

// stripeMinBytes is the smallest send worth striping. Below it the
// water-fill would collapse back to one rail anyway (nmad drops shares under
// its 4 KiB MinSplit), leaving only the cost of the forced rendezvous
// handshake — so smaller sends keep automatic placement.
const stripeMinBytes = 8 << 10

// sendBytes is a send prim's payload size without materializing it.
func sendBytes(pr *Prim) int {
	if pr.AccF64 != nil {
		return 8 * len(pr.AccF64)
	}
	return len(pr.Data)
}

// stampRails stamps the send prims of rounds [lo, len) with the stripe hint
// -width — the post-pass the striped builders run over the phase they want
// striped (segmented builders stripe everything; two-level builders stripe
// only the inter-node phase, since shared-memory traffic has no rails).
// Sends below stripeMinBytes, and every send when the striping resolves
// inactive, keep hint 0 (automatic placement).
func stampRails(s *Schedule, lo int, st Striping) {
	w := st.width()
	if w == 0 {
		return
	}
	for ri := lo; ri < len(s.Rounds); ri++ {
		for i := range s.Rounds[ri].Comm {
			if pr := &s.Rounds[ri].Comm[i]; pr.Kind == PrimSend && sendBytes(pr) >= stripeMinBytes {
				pr.Rail = -w
			}
		}
	}
}
