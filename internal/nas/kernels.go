package nas

import (
	"math"

	"repro/mpi"
)

// Effective class C operation counts, calibrated so that the simulated
// Grid5000 testbed (2.4 GF/s sustained per core) reproduces the class C
// execution times of Fig. 8 at 8/9 processes. See EXPERIMENTS.md.
const (
	effOpsBT = 1.099e13
	effOpsCG = 7.296e12
	effOpsEP = 1.824e12
	effOpsFT = 6.336e12
	effOpsSP = 8.03e12
	effOpsMG = 2.688e12
	effOpsLU = 8.69e12
)

// ---- EP: embarrassingly parallel -------------------------------------------

// EP generates Gaussian pairs independently on every rank and combines the
// counts with three small allreduces. It also runs a real (scaled-down)
// Marsaglia rejection loop so the combined statistics are verifiable.
func EP() Kernel {
	return Kernel{
		Name:     "EP",
		ValidNP:  func(np int) bool { return np >= 1 },
		AdjustNP: func(np int) int { return np },
		Run: func(c *mpi.Comm, class Class) Result {
			w := newWS()
			c.Barrier()
			t0 := c.Wtime()

			// Real (scaled) sample: deterministic LCG per rank.
			const realPairs = 1 << 12
			seed := uint64(271828183)*uint64(c.Rank()+1) + 31337
			lcg := func() float64 {
				seed = seed*6364136223846793005 + 1442695040888963407
				return float64(seed>>11) / float64(1<<53)
			}
			var sx, sy float64
			var q [10]float64
			accepted := 0.0
			for i := 0; i < realPairs; i++ {
				x := 2*lcg() - 1
				y := 2*lcg() - 1
				t := x*x + y*y
				if t <= 1 && t > 0 {
					f := math.Sqrt(-2 * math.Log(t) / t)
					gx, gy := x*f, y*f
					sx += gx
					sy += gy
					m := int(math.Max(math.Abs(gx), math.Abs(gy)))
					if m < 10 {
						q[m]++
					}
					accepted++
				}
			}

			// Analytic charge for the full class volume.
			c.ComputeFlops(effOpsCGClass(class, effOpsEP) / float64(c.Size()))

			// The three combination steps of the original kernel.
			sums := []float64{sx, sy, accepted}
			c.AllreduceF64(sums, mpi.OpSum)
			c.AllreduceF64(q[:], mpi.OpSum)
			maxT := []float64{float64(c.Rank())}
			c.AllreduceF64(maxT, mpi.OpMax)

			elapsed := c.Wtime() - t0
			// Verify: acceptance ratio must be ≈ π/4, and the bin counts
			// must sum to the accepted total.
			total := 0.0
			for _, b := range q {
				total += b
			}
			ratio := sums[2] / float64(realPairs*c.Size())
			if math.Abs(ratio-math.Pi/4) > 0.02 || total != sums[2] {
				w.errors++
			}
			return w.result(c, "EP", class, elapsed)
		},
	}
}

func effOpsCGClass(class Class, base float64) float64 { return base * classScale(class) }

// ---- CG: conjugate gradient --------------------------------------------------

// CG runs the NPB conjugate-gradient communication structure on a 2D
// process grid (rows × cols, cols ≥ rows): per matvec, a log(cols) sum
// reduction across the row exchanging vector segments, a transpose exchange,
// and two scalar allreduces per inner iteration.
func CG() Kernel {
	return Kernel{
		Name:     "CG",
		ValidNP:  isPow2,
		AdjustNP: pow2Below,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			rank := c.Rank()
			rows, cols := split2(np)

			n := int(150000 * sizeScale(class))
			niter := 75
			if class == ClassS {
				niter = 4
			}
			const inner = 25
			opsPerInner := effOpsCGClass(class, effOpsCG) / float64(niter*inner)

			myRow := rank / cols
			myCol := rank % cols
			segBytes := (n / rows) * 8

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()
			for it := 0; it < niter; it++ {
				for j := 0; j < inner; j++ {
					c.ComputeFlops(opsPerInner / float64(np))
					// Sum-reduce across the process row, halving distance.
					for d := cols / 2; d >= 1; d /= 2 {
						partnerCol := myCol ^ d
						partner := myRow*cols + partnerCol
						w.exchange(c, partner, partner, 10+it%2, segBytes)
					}
					// Transpose exchange (skip when the grid is square and
					// the rank sits on the diagonal).
					tr := (rank * rows) % (np - 1 + boolToInt(np == 1))
					if np > 1 {
						tr = transposePartner(rank, rows, cols)
						if tr != rank {
							w.exchange(c, tr, tr, 12, segBytes)
						}
					}
					// Two scalar reductions (rho, alpha).
					s := []float64{1}
					c.AllreduceF64(s, mpi.OpSum)
					c.AllreduceF64(s, mpi.OpSum)
				}
				// Residual norm.
				s := []float64{1}
				c.AllreduceF64(s, mpi.OpSum)
			}
			elapsed := c.Wtime() - t0
			return w.result(c, "CG", class, elapsed)
		},
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// transposePartner mirrors the NPB CG exchange_proc: the partner in the
// transposed grid position.
func transposePartner(rank, rows, cols int) int {
	r := rank / cols
	cl := rank % cols
	// Map (r, c) to (c mod rows, ...) conservatively: pair ranks across the
	// diagonal of the largest square subgrid.
	pr := cl % rows
	pc := r + (cl/rows)*rows
	if pc >= cols {
		pc = cl
		pr = r
	}
	return pr*cols + pc
}

// ---- FT: 3D FFT ----------------------------------------------------------------

// FT runs the spectral kernel: per iteration an evolve+FFT compute phase and
// one global transpose implemented as all-to-all, exchanging total/np²-byte
// blocks, plus a small checksum reduction.
func FT() Kernel {
	return Kernel{
		Name:     "FT",
		ValidNP:  isPow2,
		AdjustNP: pow2Below,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			nx := int(512 * sizeScale(class))
			if nx < 16 {
				nx = 16
			}
			totalBytes := float64(nx) * float64(nx) * float64(nx) * 16
			blockBytes := int(totalBytes / float64(np*np))
			niter := 20
			if class == ClassS {
				niter = 2
			}
			opsPerIter := effOpsCGClass(class, effOpsFT) / float64(niter)

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()
			for it := 0; it < niter; it++ {
				c.ComputeFlops(opsPerIter / float64(np))
				// Global transpose: pairwise exchange schedule, same as
				// coll.Alltoall but with checked workspace buffers.
				if np&(np-1) == 0 {
					for i := 1; i < np; i++ {
						partner := c.Rank() ^ i
						w.exchange(c, partner, partner, 20, blockBytes)
					}
				}
				// Checksum.
				s := []float64{1, 2}
				c.AllreduceF64(s, mpi.OpSum)
			}
			elapsed := c.Wtime() - t0
			return w.result(c, "FT", class, elapsed)
		},
	}
}

// ---- MG: multigrid --------------------------------------------------------------

// MG runs V-cycles on a 3D-partitioned mesh: per level, halo exchanges with
// the six neighbours (sizes shrinking 4× per level), then back up.
func MG() Kernel {
	return Kernel{
		Name:     "MG",
		ValidNP:  isPow2,
		AdjustNP: pow2Below,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			rank := c.Rank()
			px, py, pz := split3(np)
			n := int(512 * sizeScale(class))
			if n < 32 {
				n = 32
			}
			niter := 20
			if class == ClassS {
				niter = 2
			}
			levels := 0
			for (n >> uint(levels+1)) >= 4 {
				levels++
			}
			opsPerIter := effOpsCGClass(class, effOpsMG) / float64(niter)

			ix := rank % px
			iy := (rank / px) % py
			iz := rank / (px * py)
			neighbor := func(dx, dy, dz int) int {
				nx := (ix + dx + px) % px
				ny := (iy + dy + py) % py
				nz := (iz + dz + pz) % pz
				return nz*(px*py) + ny*px + nx
			}

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()
			for it := 0; it < niter; it++ {
				// Down and up the V-cycle: 2 passes over the levels.
				for pass := 0; pass < 2; pass++ {
					for l := 0; l < levels; l++ {
						dim := n >> uint(l)
						if dim < 4 {
							break
						}
						face := (dim / max(px, 1)) * (dim / max(py, 1)) * 8
						if face < 64 {
							face = 64
						}
						c.ComputeFlops(opsPerIter / float64(2*levels) / float64(np))
						if px > 1 {
							w.exchange(c, neighbor(1, 0, 0), neighbor(-1, 0, 0), 30, face)
							w.exchange(c, neighbor(-1, 0, 0), neighbor(1, 0, 0), 31, face)
						}
						if py > 1 {
							w.exchange(c, neighbor(0, 1, 0), neighbor(0, -1, 0), 32, face)
							w.exchange(c, neighbor(0, -1, 0), neighbor(0, 1, 0), 33, face)
						}
						if pz > 1 {
							w.exchange(c, neighbor(0, 0, 1), neighbor(0, 0, -1), 34, face)
							w.exchange(c, neighbor(0, 0, -1), neighbor(0, 0, 1), 35, face)
						}
					}
				}
				// Norm check.
				s := []float64{1}
				c.AllreduceF64(s, mpi.OpSum)
			}
			elapsed := c.Wtime() - t0
			return w.result(c, "MG", class, elapsed)
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
