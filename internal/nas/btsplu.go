package nas

import (
	"repro/mpi"
)

// ---- BT and SP: ADI / block-tridiagonal solvers -------------------------------
//
// Both kernels run on a square process grid q×q and perform, per iteration,
// three directional sweep phases (x, y, z). Each directional phase is a
// q-stage pipeline along the grid rows/columns (multi-partition scheme):
// every rank receives the incoming boundary from its predecessor, computes
// its cells, and forwards the boundary to its successor, then the back
// substitution runs the pipeline in reverse.

func adiKernel(name string, effOps float64, niter int, faceVars int) Kernel {
	return Kernel{
		Name:     name,
		ValidNP:  isSquare,
		AdjustNP: nextSquareAtLeast,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			q := isqrt(np)
			rank := c.Rank()
			row := rank / q
			col := rank % q

			iters := niter
			if class == ClassS {
				iters = 3
			}
			mesh := int(162 * sizeScale(class))
			if mesh < 12 {
				mesh = 12
			}
			// Boundary plane exchanged per pipeline stage: a cell face of
			// (mesh/q)² points times faceVars solution variables.
			cell := mesh / q
			if cell < 2 {
				cell = 2
			}
			faceBytes := cell * cell * faceVars * 8
			opsPerPhase := effOpsCGClass(class, effOps) / float64(iters*3*2)

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()

			// sweep runs one pipelined directional phase with the
			// multi-partition scheme: each rank owns q sub-blocks along the
			// sweep direction, so it computes one sub-block per pipeline
			// stage and all ranks stay busy once the pipeline fills (the
			// property that makes BT/SP scale).
			sweep := func(along, tag int, reverse bool) {
				var pos, n int
				if along == 0 {
					pos, n = col, q
				} else {
					pos, n = row, q
				}
				pred, succ := -1, -1
				if pos > 0 {
					if along == 0 {
						pred = row*q + (col - 1)
					} else {
						pred = (row-1)*q + col
					}
				}
				if pos < n-1 {
					if along == 0 {
						succ = row*q + (col + 1)
					} else {
						succ = (row+1)*q + col
					}
				}
				if reverse {
					pred, succ = succ, pred
				}
				stageOps := opsPerPhase / float64(np) / float64(q)
				for s := 0; s < q; s++ {
					if pred >= 0 {
						w.recvFrom(c, pred, tag, faceBytes)
					}
					c.ComputeFlops(stageOps)
					if succ >= 0 {
						w.sendTo(c, succ, tag, faceBytes)
					}
				}
			}

			for it := 0; it < iters; it++ {
				for dir := 0; dir < 3; dir++ {
					along := dir % 2
					tag := 40 + dir
					sweep(along, tag, false)  // forward elimination
					sweep(along, tag+3, true) // back substitution
				}
			}
			// Final residual verification reduce.
			s := []float64{1, 2, 3, 4, 5}
			c.AllreduceF64(s, mpi.OpSum)
			elapsed := c.Wtime() - t0
			return w.result(c, name, class, elapsed)
		},
	}
}

// BT is the block-tridiagonal ADI solver (200 iterations at class C, large
// boundary faces).
func BT() Kernel { return adiKernel("BT", effOpsBT, 200, 25) }

// SP is the scalar-pentadiagonal ADI solver (400 iterations at class C,
// smaller per-stage faces).
func SP() Kernel { return adiKernel("SP", effOpsSP, 400, 5) }

// ---- LU: SSOR wavefront ----------------------------------------------------------
//
// LU partitions the x-y plane over a 2D grid and pipelines the SSOR sweeps
// over blocks of k-planes: each block triggers small north/west receives and
// south/east sends — the many-small-messages behaviour the paper points at
// when explaining Open MPI's LU lag.

// LU is the SSOR solver.
func LU() Kernel {
	return Kernel{
		Name:     "LU",
		ValidNP:  isPow2,
		AdjustNP: pow2Below,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			rank := c.Rank()
			rows, cols := split2(np)
			row := rank / cols
			col := rank % cols

			mesh := int(162 * sizeScale(class))
			if mesh < 12 {
				mesh = 12
			}
			niter := 250
			if class == ClassS {
				niter = 3
			}
			const kBlock = 6 // k-planes per pipeline block
			blocks := (mesh + kBlock - 1) / kBlock
			// Pencil edge exchanged per block: (mesh/dim) points × 5 vars ×
			// kBlock planes.
			edgeX := (mesh / cols) * 5 * 8 * kBlock
			edgeY := (mesh / rows) * 5 * 8 * kBlock
			if edgeX < 40 {
				edgeX = 40
			}
			if edgeY < 40 {
				edgeY = 40
			}
			opsPerSweep := effOpsCGClass(class, effOpsLU) / float64(niter*2)

			north := -1
			if row > 0 {
				north = (row-1)*cols + col
			}
			south := -1
			if row < rows-1 {
				south = (row+1)*cols + col
			}
			west := -1
			if col > 0 {
				west = row*cols + (col - 1)
			}
			east := -1
			if col < cols-1 {
				east = row*cols + (col + 1)
			}

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()
			for it := 0; it < niter; it++ {
				// Lower-triangular sweep: wavefront from (0,0).
				for b := 0; b < blocks; b++ {
					if north >= 0 {
						w.recvFrom(c, north, 50, edgeX)
					}
					if west >= 0 {
						w.recvFrom(c, west, 51, edgeY)
					}
					c.ComputeFlops(opsPerSweep / float64(blocks) / float64(np))
					if south >= 0 {
						w.sendTo(c, south, 50, edgeX)
					}
					if east >= 0 {
						w.sendTo(c, east, 51, edgeY)
					}
				}
				// Upper-triangular sweep: wavefront from the far corner.
				for b := 0; b < blocks; b++ {
					if south >= 0 {
						w.recvFrom(c, south, 52, edgeX)
					}
					if east >= 0 {
						w.recvFrom(c, east, 53, edgeY)
					}
					c.ComputeFlops(opsPerSweep / float64(blocks) / float64(np))
					if north >= 0 {
						w.sendTo(c, north, 52, edgeX)
					}
					if west >= 0 {
						w.sendTo(c, west, 53, edgeY)
					}
				}
			}
			s := []float64{1}
			c.AllreduceF64(s, mpi.OpSum)
			elapsed := c.Wtime() - t0
			return w.result(c, "LU", class, elapsed)
		},
	}
}
