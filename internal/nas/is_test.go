package nas

import (
	"testing"

	"repro/cluster"
)

func TestISVerifiesGlobalSort(t *testing.T) {
	is := IS()
	for _, np := range []int{2, 4, 8} {
		res := runKernel(t, is, np, ClassS, cluster.MPICH2NmadIB())
		if !res.Verified {
			t.Fatalf("IS np=%d failed verification: %+v", np, res)
		}
		if res.Seconds <= 0 {
			t.Fatalf("IS np=%d reported non-positive time", np)
		}
	}
}

func TestISIncludedInKernelSet(t *testing.T) {
	// The paper omits IS (no datatype support in MPICH2-NewMadeleine at the
	// time); with alltoallv on the schedule engine the reproduction carries
	// it as an extension, last in the kernel set after the Fig. 8 seven.
	ks := Kernels()
	if ks[len(ks)-1].Name != "IS" {
		t.Fatalf("IS must close the kernel set, got %q", ks[len(ks)-1].Name)
	}
	if _, err := KernelByName("IS"); err != nil {
		t.Fatal(err)
	}
}

func TestISAcrossStacks(t *testing.T) {
	is := IS()
	for _, s := range []cluster.Stack{cluster.MVAPICH2(), cluster.MPICH2NmadIB().WithPIOMan(true)} {
		res := runKernel(t, is, 4, ClassS, s)
		if !res.Verified {
			t.Fatalf("IS on %s failed verification", s.Name)
		}
	}
}

func TestIntCodecRoundTrip(t *testing.T) {
	xs := []int{0, 1, 65535, 1 << 24, 12345}
	got := decodeInts(encodeInts(xs))
	if len(got) != len(xs) {
		t.Fatal("length mismatch")
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %d, want %d", i, got[i], xs[i])
		}
	}
}
