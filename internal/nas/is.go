package nas

import (
	"sort"

	"repro/mpi"
)

// effOpsIS calibrates IS class C near the published ~15 s at 8 processes.
const effOpsIS = 2.3e11

// IS is the integer-sort kernel. The paper's evaluation OMITS IS because
// MPICH2-NewMadeleine lacked datatype support (§4.2); this implementation is
// an *extension* beyond the paper's Fig. 8 set: with the vector collectives
// on the schedule engine (Comm.AlltoallvBytes compiles through
// internal/coll like every other collective, with per-communicator schedule
// caching) the kernel is a first-class member of Kernels() and
// cmd/nasbench.
//
// Structure per iteration (NPB IS): local bucket counting, an allreduce of
// the bucket histogram, an alltoall of per-destination counts, an
// alltoallv redistributing the real scaled-down keys, and an engine
// alltoall carrying the class-size exchange volume. Every collective runs
// on the schedule engine — no hand-rolled point-to-point loops remain. The
// key array is checked for global sortedness at the end.
func IS() Kernel {
	return Kernel{
		Name:     "IS",
		ValidNP:  isPow2,
		AdjustNP: pow2Below,
		Run: func(c *mpi.Comm, class Class) Result {
			np := c.Size()
			rank := c.Rank()

			totalKeys := 1 << 27 // class C
			switch class {
			case ClassS:
				totalKeys = 1 << 12
			case ClassA:
				totalKeys = 1 << 23
			case ClassB:
				totalKeys = 1 << 25
			}
			keysPer := totalKeys / np
			niter := 10
			if class == ClassS {
				niter = 3
			}
			opsPerIter := effOpsCGClass(class, effOpsIS) / float64(niter)

			// Real scaled key set: deterministic per-rank keys.
			const realKeys = 1 << 10
			keys := make([]int, realKeys)
			seed := uint32(rank*2654435761 + 12345)
			for i := range keys {
				seed = seed*1664525 + 1013904223
				keys[i] = int(seed % (1 << 16))
			}

			w := newWS()
			c.Barrier()
			t0 := c.Wtime()

			var lastLocal []int
			for it := 0; it < niter; it++ {
				c.ComputeFlops(opsPerIter / float64(np))

				// Bucket histogram allreduce (1024 buckets).
				hist := make([]float64, 1024)
				for _, k := range keys {
					hist[k*1024/(1<<16)]++
				}
				c.AllreduceF64(hist, mpi.OpSum)

				// Real redistribution of the scaled keys: keys go to the
				// rank owning their range.
				per := (1 << 16) / np
				sendKeys := make([][]int, np)
				for _, k := range keys {
					d := k / per
					if d >= np {
						d = np - 1
					}
					sendKeys[d] = append(sendKeys[d], k)
				}
				send := make([][]byte, np)
				for r := 0; r < np; r++ {
					send[r] = encodeInts(sendKeys[r])
				}
				// Counts exchange: uniform 8-byte blocks, a plain engine
				// alltoall (cached after the first iteration).
				cnt := make([][]byte, np)
				cntIn := make([][]byte, np)
				for r := 0; r < np; r++ {
					cnt[r] = mpi.F64Bytes([]float64{float64(len(send[r]))})
					cntIn[r] = make([]byte, 8)
				}
				c.Alltoall(cnt, cntIn)
				recv := make([][]byte, np)
				for r := 0; r < np; r++ {
					var v [1]float64
					mpi.BytesF64(v[:], cntIn[r])
					recv[r] = make([]byte, int(v[0]))
				}
				// Key redistribution: irregular counts, compiled by the
				// engine's alltoallv builder. The counts repeat across
				// iterations, so the schedule compiles once and rebinds.
				c.AlltoallvBytes(send, recv)
				// Class-size exchange volume rides on an engine alltoall
				// whose blocks alias the shared workspace buffers, keeping
				// host memory at one block instead of a class-C array.
				blockBytes := keysPer / np * 4
				if blockBytes > 0 && np > 1 {
					vsend := make([][]byte, np)
					vrecv := make([][]byte, np)
					for r := 0; r < np; r++ {
						vsend[r] = w.sendBuf(blockBytes)
						vrecv[r] = w.recvBuf(blockBytes)
					}
					c.Alltoall(vsend, vrecv)
				}

				var local []int
				for r := 0; r < np; r++ {
					local = append(local, decodeInts(recv[r])...)
				}
				sort.Ints(local)
				lastLocal = local
			}

			// Global sortedness: my max must not exceed my right
			// neighbour's min.
			myMax := -1
			if len(lastLocal) > 0 {
				myMax = lastLocal[len(lastLocal)-1]
			}
			if np > 1 {
				right := (rank + 1) % np
				left := (rank - 1 + np) % np
				st := c.Sendrecv(right, 61, mpi.F64Bytes([]float64{float64(myMax)}),
					left, 61, w.recvBuf(8))
				if rank > 0 && st.Len == 8 {
					var v [1]float64
					mpi.BytesF64(v[:], w.recvBuf(8))
					if len(lastLocal) > 0 && int(v[0]) > lastLocal[0] {
						w.errors++
					}
				}
			}
			// Every key must land in its owner's range.
			per := (1 << 16) / np
			for _, k := range lastLocal {
				d := k / per
				if d >= np {
					d = np - 1
				}
				if d != rank {
					w.errors++
				}
			}
			elapsed := c.Wtime() - t0
			return w.result(c, "IS", class, elapsed)
		},
	}
}

func encodeInts(xs []int) []byte {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		b[4*i] = byte(x)
		b[4*i+1] = byte(x >> 8)
		b[4*i+2] = byte(x >> 16)
		b[4*i+3] = byte(x >> 24)
	}
	return b
}

func decodeInts(b []byte) []int {
	xs := make([]int, len(b)/4)
	for i := range xs {
		xs[i] = int(b[4*i]) | int(b[4*i+1])<<8 | int(b[4*i+2])<<16 | int(b[4*i+3])<<24
	}
	return xs
}
