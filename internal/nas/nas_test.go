package nas

import (
	"testing"

	"repro/cluster"
	"repro/mpi"
)

func runKernel(t *testing.T, k Kernel, np int, class Class, stack cluster.Stack) Result {
	t.Helper()
	var res Result
	cfg := mpi.Config{Cluster: cluster.Grid5000(), Stack: stack, NP: np}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) {
		r := k.Run(c, class)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatalf("%s np=%d class=%c: %v", k.Name, np, class, err)
	}
	return res
}

func TestAllKernelsClassSVerify(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			np := k.AdjustNP(8)
			if !k.ValidNP(np) {
				t.Fatalf("AdjustNP(8) = %d is invalid", np)
			}
			res := runKernel(t, k, np, ClassS, stack)
			if !res.Verified {
				t.Fatalf("%s failed verification: %+v", k.Name, res)
			}
			if res.Seconds <= 0 {
				t.Fatalf("%s reported non-positive time", k.Name)
			}
			if res.NP != np || res.Kernel != k.Name {
				t.Fatalf("result meta wrong: %+v", res)
			}
		})
	}
}

func TestKernelsAcrossProcessCounts(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, want := range []int{8, 16} {
				np := k.AdjustNP(want)
				res := runKernel(t, k, np, ClassS, stack)
				if !res.Verified {
					t.Fatalf("np=%d not verified", np)
				}
			}
		})
	}
}

func TestScalability(t *testing.T) {
	// Class A EP at 8 vs 16 processes must show near-linear speedup (it is
	// embarrassingly parallel).
	stack := cluster.MPICH2NmadIB()
	ep := EP()
	t8 := runKernel(t, ep, 8, ClassA, stack).Seconds
	t16 := runKernel(t, ep, 16, ClassA, stack).Seconds
	speedup := t8 / t16
	if speedup < 1.7 || speedup > 2.1 {
		t.Fatalf("EP speedup 8->16 = %.2f, want ~2", speedup)
	}
}

func TestPIOManOverheadSmall(t *testing.T) {
	// §4.2: the PIOMan variant's overhead on the NAS kernels is usually
	// below 3%. The claim is about realistic problem sizes — at class S the
	// fixed per-message synchronization dominates the microscopic compute —
	// so measure at class A where compute/communication is representative.
	base := cluster.MPICH2NmadIB()
	pio := cluster.MPICH2NmadIB().WithPIOMan(true)
	mg := MG()
	t0 := runKernel(t, mg, 8, ClassA, base).Seconds
	t1 := runKernel(t, mg, 8, ClassA, pio).Seconds
	if t1 < t0 {
		return // PIOMan may even help (FT/SP in the paper)
	}
	if (t1-t0)/t0 > 0.03 {
		t.Fatalf("PIOMan overhead %.1f%% on class A MG (t0=%v t1=%v)",
			(t1-t0)/t0*100, t0, t1)
	}
}

func TestAdjustNP(t *testing.T) {
	bt := BT()
	if got := bt.AdjustNP(8); got != 9 {
		t.Fatalf("BT AdjustNP(8) = %d, want 9 (paper runs 9)", got)
	}
	if got := bt.AdjustNP(32); got != 36 {
		t.Fatalf("BT AdjustNP(32) = %d, want 36", got)
	}
	if got := bt.AdjustNP(16); got != 16 {
		t.Fatalf("BT AdjustNP(16) = %d, want 16", got)
	}
	cg := CG()
	if got := cg.AdjustNP(36); got != 32 {
		t.Fatalf("CG AdjustNP(36) = %d, want 32", got)
	}
}

func TestKernelByName(t *testing.T) {
	for _, name := range []string{"BT", "CG", "EP", "FT", "SP", "MG", "LU"} {
		k, err := KernelByName(name)
		if err != nil || k.Name != name {
			t.Fatalf("KernelByName(%s) = %v, %v", name, k.Name, err)
		}
	}
	if _, err := KernelByName("IS"); err != nil {
		t.Fatalf("IS must resolve now that alltoallv runs on the engine: %v", err)
	}
}

func TestDeterministicKernelTiming(t *testing.T) {
	stack := cluster.MVAPICH2()
	mg := MG()
	a := runKernel(t, mg, 8, ClassS, stack).Seconds
	b := runKernel(t, mg, 8, ClassS, stack).Seconds
	if a != b {
		t.Fatalf("MG timing not deterministic: %v vs %v", a, b)
	}
}

func TestSplitHelpers(t *testing.T) {
	for np := 1; np <= 64; np *= 2 {
		r, c := split2(np)
		if r*c != np || c < r {
			t.Fatalf("split2(%d) = %d,%d", np, r, c)
		}
		x, y, z := split3(np)
		if x*y*z != np {
			t.Fatalf("split3(%d) = %d,%d,%d", np, x, y, z)
		}
	}
	if !isSquare(36) || isSquare(37) {
		t.Fatal("isSquare broken")
	}
}

func TestTransposePartnerIsInvolution(t *testing.T) {
	for np := 2; np <= 64; np *= 2 {
		rows, cols := split2(np)
		for r := 0; r < np; r++ {
			p := transposePartner(r, rows, cols)
			if p < 0 || p >= np {
				t.Fatalf("np=%d rank=%d partner=%d out of range", np, r, p)
			}
			if pp := transposePartner(p, rows, cols); pp != r {
				t.Fatalf("np=%d: partner(%d)=%d but partner(%d)=%d", np, r, p, p, pp)
			}
		}
	}
}
