// Package nas implements the NAS Parallel Benchmark kernels the paper uses
// for its application evaluation (§4.2, Fig. 8): BT, CG, EP, FT, SP, MG and
// LU — plus IS, which the paper omits (MPICH2-NewMadeleine lacked datatype
// support at the time) and this reproduction includes as an extension now
// that its alltoallv runs on the schedule engine.
//
// Each kernel reproduces the *communication structure* of the original NPB
// code — process grids, exchange partners, message sizes and counts derived
// from the class problem sizes — while computation is charged analytically
// through mpi.Comm.ComputeFlops using per-kernel effective operation counts
// calibrated against the class C execution times the paper reports on the
// Grid5000 testbed. Message payloads are real bytes moving through the full
// stack (matching, protocols, rails); their numeric content is synthetic,
// and every kernel verifies message sizes and sources as a routing check.
package nas

import (
	"fmt"

	"repro/mpi"
)

// Class selects a problem size. S is a tiny testing class; A, B and C follow
// the NPB scaling the paper uses (§4.2 runs class C).
type Class byte

// Problem classes.
const (
	ClassS Class = 'S'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// MarshalJSON encodes a class as its letter ("S"), not its byte value.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(`"` + string(c) + `"`), nil
}

// classScale returns the effective-operation scale factor relative to C.
func classScale(c Class) float64 {
	switch c {
	case ClassS:
		return 1.0 / 50000
	case ClassA:
		return 1.0 / 16
	case ClassB:
		return 1.0 / 3.8
	case ClassC:
		return 1
	default:
		panic(fmt.Sprintf("nas: unknown class %c", c))
	}
}

// sizeScale returns the linear mesh-size factor relative to C (cube root of
// the work ratio, clamped to sane minimums by the kernels).
func sizeScale(c Class) float64 {
	switch c {
	case ClassS:
		return 1.0 / 16
	case ClassA:
		return 1.0 / 3.2 // 162->~51, 512->160, matches NPB A meshes loosely
	case ClassB:
		return 1.0 / 1.6
	case ClassC:
		return 1
	default:
		panic(fmt.Sprintf("nas: unknown class %c", c))
	}
}

// Result is one kernel execution outcome.
type Result struct {
	Kernel   string
	Class    Class
	NP       int
	Seconds  float64 // virtual execution time
	Verified bool    // message routing/size checks passed
	Messages int64   // point-to-point messages this rank initiated (rank 0)
}

// Kernel is one NAS benchmark.
type Kernel struct {
	Name string
	// ValidNP reports whether the kernel accepts this process count (BT and
	// SP need squares; CG, FT, MG and LU need powers of two).
	ValidNP func(np int) bool
	// AdjustNP maps a requested count to the nearest valid one, the way the
	// paper replaces 8 and 32 with 9 and 36 for BT/SP.
	AdjustNP func(np int) int
	// Run executes the kernel; it must be called from every rank.
	Run func(c *mpi.Comm, class Class) Result
}

// Kernels returns all implemented kernels: the paper's Fig. 8 set in its
// presentation order, then IS — the extension the paper could not run,
// enabled here by the engine-compiled vector collectives.
func Kernels() []Kernel {
	return []Kernel{BT(), CG(), EP(), FT(), SP(), MG(), LU(), IS()}
}

// KernelByName returns the named kernel.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("nas: unknown kernel %q", name)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func isSquare(n int) bool {
	for q := 1; q*q <= n; q++ {
		if q*q == n {
			return true
		}
	}
	return false
}

func isqrt(n int) int {
	for q := 1; ; q++ {
		if q*q >= n {
			return q
		}
	}
}

func pow2Below(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func nextSquareAtLeast(n int) int {
	q := 1
	for q*q < n {
		q++
	}
	return q * q
}

func log2(n int) int {
	l := 0
	for 1<<uint(l+1) <= n {
		l++
	}
	return l
}

// split2 factors a power-of-two np into (rows, cols) with cols >= rows,
// matching NPB CG's grid.
func split2(np int) (rows, cols int) {
	l := log2(np)
	rows = 1 << uint(l/2)
	cols = np / rows
	return rows, cols
}

// split3 factors a power-of-two np into three near-equal power-of-two dims.
func split3(np int) (x, y, z int) {
	l := log2(np)
	lx := (l + 2) / 3
	ly := (l - lx + 1) / 2
	lz := l - lx - ly
	return 1 << uint(lx), 1 << uint(ly), 1 << uint(lz)
}

// ws is a per-rank message workspace: a shared read-only zero buffer for
// payloads and a scratch receive buffer, so class C exchange volumes do not
// require materializing class C arrays.
type ws struct {
	send    []byte
	scratch []byte
	errors  int
	msgs    int64
}

func newWS() *ws { return &ws{} }

func (w *ws) sendBuf(n int) []byte {
	if cap(w.send) < n {
		w.send = make([]byte, n)
	}
	return w.send[:n]
}

func (w *ws) recvBuf(n int) []byte {
	if cap(w.scratch) < n {
		w.scratch = make([]byte, n)
	}
	return w.scratch[:n]
}

// exchange performs a sendrecv of n bytes with the two partners and checks
// the receive length and source.
func (w *ws) exchange(c *mpi.Comm, dst, src, tag, n int) {
	st := c.Sendrecv(dst, tag, w.sendBuf(n), src, tag, w.recvBuf(n))
	w.msgs++
	if st.Len != n || st.Source != src {
		w.errors++
	}
}

// sendTo / recvFrom are one-directional checked transfers.
func (w *ws) sendTo(c *mpi.Comm, dst, tag, n int) {
	c.Send(dst, tag, w.sendBuf(n))
	w.msgs++
}

func (w *ws) recvFrom(c *mpi.Comm, src, tag, n int) {
	st := c.Recv(src, tag, w.recvBuf(n))
	if st.Len != n || (src != mpi.AnySource && st.Source != src) {
		w.errors++
	}
}

func (w *ws) result(c *mpi.Comm, name string, class Class, elapsed float64) Result {
	ok := []float64{0}
	if w.errors > 0 {
		ok[0] = 1
	}
	c.AllreduceF64(ok, mpi.OpSum)
	return Result{
		Kernel:   name,
		Class:    class,
		NP:       c.Size(),
		Seconds:  elapsed,
		Verified: ok[0] == 0,
		Messages: w.msgs,
	}
}
