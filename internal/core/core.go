package core
