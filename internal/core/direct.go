package core

import (
	"fmt"

	"repro/internal/ch3"
	"repro/internal/nmad"
	"repro/internal/vtime"
)

// DirectConfig tunes the direct NewMadeleine module.
type DirectConfig struct {
	// GenericSend/GenericRecv model the cost of going through
	// NewMadeleine's generic interface from CH3 — the ≈300 ns/message the
	// paper measures over raw NewMadeleine (§4.1.1), split across sides.
	GenericSend vtime.Duration
	GenericRecv vtime.Duration
	// ASCheck is the extra cost of the ANY_SOURCE probe-and-post path —
	// the constant ≈300 ns gap of Fig. 4(a).
	ASCheck vtime.Duration
	// ASProbe is the per-poll cost of scanning the pending lists when no
	// matching message has arrived.
	ASProbe vtime.Duration
}

func (c DirectConfig) withDefaults() DirectConfig {
	if c.GenericSend == 0 {
		c.GenericSend = 150
	}
	if c.GenericRecv == 0 {
		c.GenericRecv = 150
	}
	if c.ASCheck == 0 {
		c.ASCheck = 300
	}
	if c.ASProbe == 0 {
		c.ASProbe = 30
	}
	return c
}

// Direct is the paper's NewMadeleine network module with the CH3 bypass:
// sends go straight from the (overridden) CH3 send path to nm_sr_isend,
// receives are posted to NewMadeleine which performs tag matching internally
// and delivers into user buffers, and ANY_SOURCE is handled with the pending
// request lists of §3.2 because posted NewMadeleine requests cannot be
// cancelled.
type Direct struct {
	p   *ch3.Process
	nm  *nmad.Core
	cfg DirectConfig
	as  *asSet

	// Stats.
	NetSends    int64
	NetRecvs    int64
	ASProbeHits int64
	Deferred    int64
}

// NewDirect builds the module for process p over NewMadeleine core nm.
// It installs the VC send-function override applied to every remote peer
// (§3.1.2): MPID_Send on those connections calls NewMadeleine directly.
// The override is one shared function handed to the process, which stamps
// it onto each off-node VC as the peer is first contacted — no O(NP) setup
// pass per rank.
func NewDirect(p *ch3.Process, nm *nmad.Core, cfg DirectConfig) *Direct {
	d := &Direct{p: p, nm: nm, cfg: cfg.withDefaults(), as: newASSet()}
	p.SetRemoteSendFn(func(proc *vtime.Proc, req *ch3.Request) { d.Isend(proc, req) })
	p.SetBackend(d)
	return d
}

// Name implements ch3.NetBackend.
func (d *Direct) Name() string { return "nmad-direct" }

// CentralMatching implements ch3.NetBackend: NewMadeleine matches tags.
func (d *Direct) CentralMatching() bool { return false }

// Isend implements ch3.NetBackend: the direct CH3→nm_sr_isend path.
func (d *Direct) Isend(proc *vtime.Proc, req *ch3.Request) {
	if d.cfg.GenericSend > 0 {
		proc.Sleep(d.cfg.GenericSend)
	}
	gate := d.nm.Gate(req.Dest())
	if gate == nil {
		panic(fmt.Sprintf("core[%d]: no gate to %d", d.p.Rank, req.Dest()))
	}
	rctx, _, rtag := reqTriple(req)
	nr := d.nm.ISendRail(gate, encodeTag(rctx, d.p.Rank, rtag), req.Data(), req.Rail)
	req.Nmad = nr
	d.NetSends++
	nr.SetOnComplete(func(*nmad.Request) { req.Complete() })
}

// reqTriple extracts (ctx, src, tag) for send requests tag/ctx live in the
// same fields.
func reqTriple(req *ch3.Request) (ctx int32, src int, tag int32) {
	c, s, t := req.MatchTriple()
	return c, int(s), t
}

// PostRecv implements ch3.NetBackend for known remote sources. If an
// ANY_SOURCE list could match the same messages, the request is deferred
// behind it to preserve ordering; otherwise it goes straight to NewMadeleine.
func (d *Direct) PostRecv(req *ch3.Request) {
	ctx, _, tag := req.MatchTriple()
	if l := d.as.blockingList(ctx, tag); l != nil {
		d.as.defer_(l, req)
		d.Deferred++
		return
	}
	d.postNmad(req)
}

// postNmad creates the NewMadeleine receive paired with the CH3 request.
func (d *Direct) postNmad(req *ch3.Request) {
	ctx, src, tag := req.MatchTriple()
	t, mask := recvTagMask(ctx, int(src), tag)
	gate := d.nm.Gate(int(src))
	nr := d.nm.IRecv(gate, t, mask, req.Buffer())
	req.Nmad = nr
	d.NetRecvs++
	nr.SetOnComplete(func(r *nmad.Request) {
		st := r.Status()
		_, _, mpiTag := decodeTag(st.Tag)
		req.SetRecvStatus(int32(st.Peer), mpiTag, st.Len, st.Truncated)
		d.nm.Owe(d.cfg.GenericRecv)
		d.p.RemovePosted(req)
		req.Complete()
	})
}

// PostRecvAny implements ch3.NetBackend: the request joins (or opens) the
// pending list for its tag; the actual NewMadeleine request is only created
// once a matching message is known to have arrived (Progress).
func (d *Direct) PostRecvAny(req *ch3.Request) {
	d.as.addAny(req)
}

// ShmMatchedAny implements ch3.NetBackend: the shared-memory path satisfied
// an ANY_SOURCE request, so its entry is removed from the pending lists and
// any requests queued behind a removed head become postable (§3.2.2).
func (d *Direct) ShmMatchedAny(req *ch3.Request) {
	l, wasHead := d.as.dropRequest(req)
	if l == nil {
		return
	}
	if wasHead && l.headPosted {
		// The probe path posts and completes in the same progress pass, so
		// a posted head can never still be visible to the shm path.
		panic("core: ANY_SOURCE head matched by shm after nmad post")
	}
	for _, r := range d.as.drainAfterDrop(l, wasHead) {
		d.postNmad(r)
	}
}

// Progress implements ch3.NetBackend: probe NewMadeleine for messages that
// could match a pending ANY_SOURCE head; when one has arrived, create the
// NewMadeleine request — it completes immediately since the message already
// sits in NewMadeleine's buffers — and promote the list.
func (d *Direct) Progress() (int, vtime.Duration) {
	events := 0
	var cost vtime.Duration
	i := 0
	for i < len(d.as.lists) {
		l := d.as.lists[i]
		if l.headPosted {
			// Head committed to a rendezvous still in flight.
			i++
			continue
		}
		head := l.queue[0]
		ctx, _, tag := head.MatchTriple()
		t, mask := probeTagMask(ctx, tag)
		gate, ok := d.nm.IProbe(t, mask)
		if !ok {
			cost += d.cfg.ASProbe
			i++
			continue
		}
		// Post the dynamic request. The matched message is committed to the
		// network source now, so the request leaves the CH3 posted queue
		// immediately (the shared-memory path must no longer match it).
		l.headPosted = true
		d.ASProbeHits++
		cost += d.cfg.ASCheck
		d.p.RemovePosted(head)
		list := l
		finish := func(r *nmad.Request) {
			st := r.Status()
			_, _, mpiTag := decodeTag(st.Tag)
			head.SetRecvStatus(int32(st.Peer), mpiTag, st.Len, st.Truncated)
			d.nm.Owe(d.cfg.GenericRecv)
			head.Complete()
			for _, q := range d.as.popHead(list) {
				d.postNmad(q)
			}
		}
		rt, rmask := recvTagMask(ctx, gate.PeerRank, tag)
		nr := d.nm.IRecv(gate, rt, rmask, head.Buffer())
		head.Nmad = nr
		events++
		// An eager message completes synchronously; a probed RTS completes
		// when the rendezvous payload lands.
		nr.SetOnComplete(finish)
		// Re-examine the same index: the list may have been removed or
		// promoted, and a new head may already have a buffered match.
	}
	return events, cost
}

// PendingASLists reports the number of open ANY_SOURCE lists (diagnostics).
func (d *Direct) PendingASLists() int { return len(d.as.lists) }
