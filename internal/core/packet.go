package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ch3"
	"repro/internal/nmad"
	"repro/internal/pioman"
	"repro/internal/shmq"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// PacketConfig tunes a packet-style backend: network arrivals carry CH3
// packets that are matched centrally by the CH3 queues, the way classic
// Nemesis network modules (and the modeled baseline stacks) behave.
type PacketConfig struct {
	// EagerMax is the network eager/rendezvous threshold.
	EagerMax int
	// Pipeline chunks rendezvous data into fixed-size transfers (Open MPI
	// openib/MX BTL style); 0 sends the payload as one transfer.
	Pipeline int
	// RailIdx selects the rail (baselines are single-rail).
	RailIdx int
	// HeaderBytes is the wire size of a CH3 packet header.
	HeaderBytes int
	// PacketCost is the receiver-side handling cost per packet.
	PacketCost vtime.Duration
	// CopyOnSend charges an extra staging copy on the send path — the
	// queue-cell copies of §2.1.3 that the paper's bypass eliminates.
	CopyOnSend bool
}

func (c PacketConfig) withDefaults() PacketConfig {
	if c.EagerMax == 0 {
		c.EagerMax = 32 << 10
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.PacketCost == 0 {
		c.PacketCost = 100
	}
	return c
}

// netPkt is one arrived network packet awaiting the progress engine.
type netPkt struct {
	hdr     shmq.Header
	data    []byte
	consume vtime.Duration
}

// Packet is a central-matching network backend over a raw simulated rail.
// It implements both ch3.NetBackend and pioman.Source.
type Packet struct {
	p    *ch3.Process
	e    *vtime.Engine
	cfg  PacketConfig
	rail *simnet.Rail
	node int
	mgr  *pioman.Manager

	peers []*Packet // by rank; nil for self/same-node

	inbox []netPkt

	// Stats.
	PktsSent int64
	PktsRecv int64
}

// NewPacket builds the backend for p on the given node, using rail
// cfg.RailIdx of net. Peers must be linked with LinkPacketPeers after all
// backends exist.
func NewPacket(p *ch3.Process, e *vtime.Engine, net *simnet.Network, node int,
	mgr *pioman.Manager, cfg PacketConfig) *Packet {
	b := &Packet{
		p: p, e: e, cfg: cfg.withDefaults(),
		rail: net.Rail(cfg.RailIdx), node: node, mgr: mgr,
		peers: make([]*Packet, p.Size),
	}
	p.SetBackend(b)
	mgr.Register(b, pioman.ClassNet)
	return b
}

// LinkPacketPeers wires the remote-peer pointers of a set of backends
// (indexed by rank; entries for same-node pairs are ignored by traffic).
func LinkPacketPeers(backends []*Packet) {
	for _, b := range backends {
		if b == nil {
			continue
		}
		copy(b.peers, backends)
	}
}

// Name implements ch3.NetBackend.
func (b *Packet) Name() string { return "packet/" + b.rail.Params.Name }

// CentralMatching implements ch3.NetBackend.
func (b *Packet) CentralMatching() bool { return true }

// SourceName implements pioman.Source.
func (b *Packet) SourceName() string { return fmt.Sprintf("net[%d]", b.p.Rank) }

// Poll implements pioman.Source: drain arrived packets into CH3 matching.
func (b *Packet) Poll() (int, vtime.Duration) {
	events := 0
	var cost vtime.Duration
	for len(b.inbox) > 0 {
		pkt := b.inbox[0]
		b.inbox = b.inbox[1:]
		events++
		b.PktsRecv++
		cost += pkt.consume + b.cfg.PacketCost
		cost += b.p.HandleArrival(pkt.hdr, pkt.data, netOrigin{b})
	}
	return events, cost
}

// Progress implements ch3.NetBackend (nothing beyond Poll for this backend).
func (b *Packet) Progress() (int, vtime.Duration) { return 0, 0 }

// PostRecv / PostRecvAny / ShmMatchedAny are no-ops: matching is central.
func (b *Packet) PostRecv(*ch3.Request)      {}
func (b *Packet) PostRecvAny(*ch3.Request)   {}
func (b *Packet) ShmMatchedAny(*ch3.Request) {}

// Isend implements ch3.NetBackend with the CH3 eager/rendezvous protocols.
func (b *Packet) Isend(proc *vtime.Proc, req *ch3.Request) {
	data := req.Data()
	ctx, _, tag := req.MatchTriple()
	if len(data) <= b.cfg.EagerMax {
		hdr := shmq.Header{Type: shmq.CellData, Src: int32(b.p.Rank), Tag: tag,
			Ctx: ctx, MsgLen: int64(len(data))}
		var extra vtime.Duration
		if b.cfg.CopyOnSend {
			extra = copyCostAt(len(data), b.p.ShmMemBW())
		}
		b.sendPacket(req.Dest(), hdr, data, extra, false, false, func() {
			if !req.Done() {
				req.Complete()
			}
		})
		return
	}
	cookie := b.p.RegisterRdvOut(req)
	hdr := shmq.Header{Type: shmq.CellRTS, Src: int32(b.p.Rank), Tag: tag,
		Ctx: ctx, MsgLen: int64(len(data)), ReqID: cookie}
	b.sendPacket(req.Dest(), hdr, nil, 0, false, false, nil)
}

// sendPacket submits one packet: host submission cost is deferred to the
// progress engine (PostTask), then the wire transfer runs. rdv selects the
// zero-copy (registration) cost model instead of the eager bounce copy.
func (b *Packet) sendPacket(dst int, hdr shmq.Header, data []byte,
	extraCost vtime.Duration, rdv, cachedReg bool, onSubmitted func()) {
	peer := b.peers[dst]
	if peer == nil {
		panic(fmt.Sprintf("core[%d]: packet to unlinked rank %d", b.p.Rank, dst))
	}
	size := b.cfg.HeaderBytes + len(data)
	var cost vtime.Duration
	if rdv {
		cost = b.rail.Params.SubmitRdv(size, cachedReg)
	} else {
		cost = b.rail.Params.SubmitEager(size)
	}
	cost += extraCost
	from, to := b.node, peer.node
	b.mgr.PostTask(pioman.Task{Cost: cost, Run: func() {
		b.PktsSent++
		b.rail.Transfer(from, to, size, &netPkt{hdr: hdr, data: data},
			func(d simnet.Delivery) {
				pkt := d.Payload.(*netPkt)
				pkt.consume = d.ConsumeCost
				peer.inbox = append(peer.inbox, *pkt)
				peer.mgr.Notify()
			})
		if onSubmitted != nil {
			// Send requests complete at local NIC completion (wire
			// drained), matching the Verbs/MX completion semantics.
			b.e.At(b.rail.TxIdleAt(from), func() {
				onSubmitted()
				b.mgr.Notify()
			})
		}
	}})
}

// netOrigin routes CH3 rendezvous replies back over the packet backend.
type netOrigin struct{ b *Packet }

func (o netOrigin) OriginName() string { return o.b.Name() }

func (o netOrigin) SendCTS(p *ch3.Process, dst int32, senderCookie, recvCookie uint64, granted int) vtime.Duration {
	hdr := shmq.Header{Type: shmq.CellCTS, Src: int32(p.Rank),
		ReqID: senderCookie, Offset: int64(recvCookie), MsgLen: int64(granted)}
	o.b.sendPacket(int(dst), hdr, nil, 0, false, false, nil)
	return 0
}

func (o netOrigin) SendRdvData(p *ch3.Process, req *ch3.Request, dst int32, recvCookie uint64, granted int) {
	data := req.Data()[:granted]
	chunk := o.b.cfg.Pipeline
	if chunk <= 0 || chunk > granted {
		chunk = granted
	}
	cached := o.b.rail.Params.RegCache
	var offs []int
	for off := 0; off < granted; off += chunk {
		offs = append(offs, off)
	}
	for i, off := range offs {
		end := off + chunk
		if end > granted {
			end = granted
		}
		hdr := shmq.Header{Type: shmq.CellRdvData, Src: int32(p.Rank),
			ReqID: recvCookie, Offset: int64(off), MsgLen: int64(granted)}
		last := i == len(offs)-1
		o.b.sendPacket(int(dst), hdr, data[off:end], 0, true, cached, func() {
			if last && !req.Done() {
				req.Complete()
			}
		})
	}
	if len(offs) == 0 && !req.Done() {
		req.Complete()
	}
}

// DataCopyCost: rendezvous payloads land by RDMA into the user buffer.
func (netOrigin) DataCopyCost(*ch3.Process, int) vtime.Duration { return 0 }

func copyCostAt(n int, bw float64) vtime.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / bw * 1e9)
}

// ---- generic Nemesis network module over NewMadeleine ---------------------

// GenericNmad is the "plain network module" integration the paper argues
// against (§2.1.3): CH3 packets are shipped as NewMadeleine messages on a
// single channel tag, so CH3 keeps its own matching and rendezvous protocol
// — and a large CH3 rendezvous DATA message triggers NewMadeleine's internal
// rendezvous on top, producing the nested handshake of Fig. 2. It exists as
// the ablation baseline for the direct module.
type GenericNmad struct {
	p   *ch3.Process
	nm  *nmad.Core
	cfg PacketConfig

	scratch []byte

	PktsSent int64
	PktsRecv int64
}

// NewGenericNmad builds the module and starts its persistent channel
// receive.
func NewGenericNmad(p *ch3.Process, nm *nmad.Core, cfg PacketConfig) *GenericNmad {
	g := &GenericNmad{p: p, nm: nm, cfg: cfg.withDefaults()}
	g.scratch = make([]byte, g.cfg.EagerMax+headerWireBytes)
	p.SetBackend(g)
	g.repostChannel()
	return g
}

// headerWireBytes is the encoded size of a CH3 packet header on the channel.
const headerWireBytes = 44

func encodeHeader(h shmq.Header, dst []byte) {
	dst[0] = byte(h.Type)
	binary.LittleEndian.PutUint32(dst[1:], uint32(h.Src))
	binary.LittleEndian.PutUint32(dst[5:], uint32(h.Tag))
	binary.LittleEndian.PutUint32(dst[9:], uint32(h.Ctx))
	binary.LittleEndian.PutUint32(dst[13:], h.SeqNo)
	binary.LittleEndian.PutUint64(dst[17:], uint64(h.MsgLen))
	binary.LittleEndian.PutUint64(dst[25:], uint64(h.Offset))
	binary.LittleEndian.PutUint64(dst[33:], h.ReqID)
}

func decodeHeader(src []byte) shmq.Header {
	return shmq.Header{
		Type:   shmq.CellType(src[0]),
		Src:    int32(binary.LittleEndian.Uint32(src[1:])),
		Tag:    int32(binary.LittleEndian.Uint32(src[5:])),
		Ctx:    int32(binary.LittleEndian.Uint32(src[9:])),
		SeqNo:  binary.LittleEndian.Uint32(src[13:]),
		MsgLen: int64(binary.LittleEndian.Uint64(src[17:])),
		Offset: int64(binary.LittleEndian.Uint64(src[25:])),
		ReqID:  binary.LittleEndian.Uint64(src[33:]),
	}
}

func (g *GenericNmad) Name() string          { return "nemesis-generic-nmad" }
func (g *GenericNmad) CentralMatching() bool { return true }

func (g *GenericNmad) repostChannel() {
	buf := make([]byte, len(g.scratch))
	nr := g.nm.IRecv(nil, chanTagBit, maskFull, buf)
	nr.SetOnComplete(func(r *nmad.Request) {
		st := r.Status()
		hdr := decodeHeader(buf)
		payload := buf[headerWireBytes:st.Len]
		g.PktsRecv++
		cost := g.p.HandleArrival(hdr, payload, genOrigin{g})
		g.nm.Owe(cost)
		g.repostChannel()
	})
}

// Isend: wrap the CH3 packet (header + eager payload) as a NewMadeleine
// channel message; large messages use the CH3 rendezvous whose DATA message
// is itself a NewMadeleine message (the nested handshake).
func (g *GenericNmad) Isend(proc *vtime.Proc, req *ch3.Request) {
	data := req.Data()
	ctx, _, tag := req.MatchTriple()
	if len(data) <= g.cfg.EagerMax {
		hdr := shmq.Header{Type: shmq.CellData, Src: int32(g.p.Rank), Tag: tag,
			Ctx: ctx, MsgLen: int64(len(data))}
		g.sendChan(req.Dest(), hdr, data, func() {
			if !req.Done() {
				req.Complete()
			}
		})
		return
	}
	cookie := g.p.RegisterRdvOut(req)
	hdr := shmq.Header{Type: shmq.CellRTS, Src: int32(g.p.Rank), Tag: tag,
		Ctx: ctx, MsgLen: int64(len(data)), ReqID: cookie}
	g.sendChan(req.Dest(), hdr, nil, nil)
}

// sendChan marshals header+data into one channel message. The marshalling
// copy is the packet-staging copy the direct module avoids.
func (g *GenericNmad) sendChan(dst int, hdr shmq.Header, data []byte, onDone func()) {
	msg := make([]byte, headerWireBytes+len(data))
	encodeHeader(hdr, msg)
	copy(msg[headerWireBytes:], data)
	g.nm.Owe(copyCostAt(len(data), g.p.ShmMemBW()))
	g.PktsSent++
	nr := g.nm.ISend(g.nm.Gate(dst), chanTagBit, msg)
	if onDone != nil {
		nr.SetOnComplete(func(*nmad.Request) { onDone() })
	}
}

func (g *GenericNmad) PostRecv(*ch3.Request)      {}
func (g *GenericNmad) PostRecvAny(*ch3.Request)   {}
func (g *GenericNmad) ShmMatchedAny(*ch3.Request) {}

func (g *GenericNmad) Progress() (int, vtime.Duration) { return 0, 0 }

// genOrigin routes CH3 rendezvous replies over the channel; rendezvous data
// travels as a dedicated NewMadeleine message (nested protocol).
type genOrigin struct{ g *GenericNmad }

func (o genOrigin) OriginName() string { return "nemesis-generic-nmad" }

func (o genOrigin) SendCTS(p *ch3.Process, dst int32, senderCookie, recvCookie uint64, granted int) vtime.Duration {
	if granted > 0 {
		// Post the direct-into-user-buffer receive for the data message
		// BEFORE granting, so the payload never waits unexpected.
		req := p.RdvInReq(recvCookie)
		nr := o.g.nm.IRecv(o.g.nm.Gate(int(dst)), rdvTag(recvCookie), maskFull,
			req.Buffer()[:granted])
		cookie := recvCookie
		nr.SetOnComplete(func(*nmad.Request) { p.CompleteRdvIn(cookie) })
	}
	hdr := shmq.Header{Type: shmq.CellCTS, Src: int32(p.Rank),
		ReqID: senderCookie, Offset: int64(recvCookie), MsgLen: int64(granted)}
	o.g.sendChan(int(dst), hdr, nil, nil)
	return 0
}

func (o genOrigin) SendRdvData(p *ch3.Process, req *ch3.Request, dst int32, recvCookie uint64, granted int) {
	// One NewMadeleine message; if granted exceeds the library's own
	// rendezvous threshold this triggers the *internal* handshake on top of
	// the CH3 one — Fig. 2's nested handshakes.
	nr := o.g.nm.ISend(o.g.nm.Gate(int(dst)), rdvTag(recvCookie), req.Data()[:granted])
	nr.SetOnComplete(func(*nmad.Request) {
		if !req.Done() {
			req.Complete()
		}
	})
}

func (genOrigin) DataCopyCost(*ch3.Process, int) vtime.Duration { return 0 }
