package core

import (
	"repro/internal/ch3"
)

// asKey identifies one ANY_SOURCE pending list: the paper keeps one sublist
// per MPI tag (Fig. 3); contexts separate communicators.
type asKey struct {
	ctx int32
	tag int32
}

// asList is one per-tag pending list. Its head is always an ANY_SOURCE
// request; behind it, requests posted later with the same tag — regular
// (known-source) or ANY_SOURCE — wait in post order so that message ordering
// is preserved (§3.2.2): regular requests must not be handed to NewMadeleine
// while an earlier ANY_SOURCE request could match the same message.
type asList struct {
	key   asKey
	queue []*ch3.Request // queue[0] is the head (ANY_SOURCE)
	// headPosted records that the head's NewMadeleine request has been
	// created after a successful probe. Because a probed message already
	// sits in NewMadeleine's buffers, posting completes it synchronously,
	// so this flag is only ever observed false by ShmMatchedAny.
	headPosted bool
}

// asSet is the "main list" of Fig. 3: the collection of per-tag lists. A
// deterministic slice keeps probe order stable; the index accelerates lookup.
type asSet struct {
	lists []*asList
	index map[asKey]*asList
}

func newASSet() *asSet {
	return &asSet{index: make(map[asKey]*asList)}
}

// blockingList returns the list that must delay a newly posted request with
// the given (ctx, tag), or nil. A regular or ANY_SOURCE request is delayed
// by a list with the exact same key or by a same-context AnyTag list; an
// AnyTag request is conservatively delayed by any same-context list.
func (s *asSet) blockingList(ctx, tag int32) *asList {
	if l := s.index[asKey{ctx, tag}]; l != nil {
		return l
	}
	if tag != ch3.AnyTag {
		if l := s.index[asKey{ctx, ch3.AnyTag}]; l != nil {
			return l
		}
		return nil
	}
	for _, l := range s.lists {
		if l.key.ctx == ctx {
			return l
		}
	}
	return nil
}

// addAny registers an ANY_SOURCE request: either it becomes the head of a
// fresh per-tag list, or it queues behind the existing one.
func (s *asSet) addAny(req *ch3.Request) {
	ctx, _, tag := req.MatchTriple()
	if l := s.blockingList(ctx, tag); l != nil {
		l.queue = append(l.queue, req)
		return
	}
	l := &asList{key: asKey{ctx, tag}, queue: []*ch3.Request{req}}
	s.lists = append(s.lists, l)
	s.index[l.key] = l
}

// defer_ queues a regular request behind the blocking list. The caller must
// have checked blockingList first.
func (s *asSet) defer_(l *asList, req *ch3.Request) {
	l.queue = append(l.queue, req)
}

// remove deletes a list from the set.
func (s *asSet) remove(l *asList) {
	delete(s.index, l.key)
	for i, x := range s.lists {
		if x == l {
			s.lists = append(s.lists[:i], s.lists[i+1:]...)
			return
		}
	}
}

// dropRequest removes req from whatever list holds it (shared-memory match
// of a queued — possibly head — ANY_SOURCE request, §3.2.2). It returns the
// list and whether req was its head.
func (s *asSet) dropRequest(req *ch3.Request) (*asList, bool) {
	for _, l := range s.lists {
		for i, q := range l.queue {
			if q == req {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				return l, i == 0
			}
		}
	}
	return nil, false
}

// popHead removes the completed head and returns the requests that become
// postable: regular requests up to (not including) the next ANY_SOURCE
// request, which becomes the new head ("it replaces the former request as
// list head"). If the list empties it is removed from the set.
func (s *asSet) popHead(l *asList) []*ch3.Request {
	if len(l.queue) > 0 {
		l.queue = l.queue[1:]
	}
	l.headPosted = false
	var postable []*ch3.Request
	for len(l.queue) > 0 {
		_, src, _ := l.queue[0].MatchTriple()
		if src == ch3.AnySource {
			return postable // new head found
		}
		postable = append(postable, l.queue[0])
		l.queue = l.queue[1:]
	}
	s.remove(l)
	return postable
}

// drainAfterDrop handles the same transition after a non-head drop has
// already removed the request: if the removed request was the head, the
// remaining queue is re-examined like popHead does.
func (s *asSet) drainAfterDrop(l *asList, wasHead bool) []*ch3.Request {
	if !wasHead {
		if len(l.queue) == 0 {
			s.remove(l)
		}
		return nil
	}
	l.headPosted = false
	var postable []*ch3.Request
	for len(l.queue) > 0 {
		_, src, _ := l.queue[0].MatchTriple()
		if src == ch3.AnySource {
			return postable
		}
		postable = append(postable, l.queue[0])
		l.queue = l.queue[1:]
	}
	s.remove(l)
	return postable
}
