// Package core implements the paper's contribution (§3): the NewMadeleine
// network module for MPICH2's Nemesis channel together with the CH3-level
// modifications that bypass Nemesis for inter-node traffic, the ANY_SOURCE
// pending-request lists that work around NewMadeleine's lack of request
// cancellation, and the packet-style backends used to model the generic
// Nemesis module and the baseline MPI stacks (MVAPICH2, Open MPI).
package core

import "repro/internal/ch3"

// NewMadeleine tag layout: [ctx:16][src:16][mpi-tag:32]. MPI matching on
// (context, source, tag) maps onto NewMadeleine's 64-bit tag + mask
// matching, which is what lets CH3 delegate tag matching entirely (§3.1.1).
const (
	tagBits  = 32
	srcBits  = 16
	srcShift = tagBits
	ctxShift = tagBits + srcBits

	maskFull   = ^uint64(0)
	maskTagFld = uint64(1)<<tagBits - 1
	maskSrcFld = (uint64(1)<<srcBits - 1) << srcShift
)

// encodeTag packs an MPI matching triple into a NewMadeleine tag.
func encodeTag(ctx int32, src int, tag int32) uint64 {
	return uint64(uint16(ctx))<<ctxShift |
		uint64(uint16(src))<<srcShift |
		uint64(uint32(tag))
}

// recvTagMask builds the (tag, mask) pair for a receive with known source.
// AnyTag clears the MPI-tag field from the mask.
func recvTagMask(ctx int32, src int, tag int32) (uint64, uint64) {
	if tag == ch3.AnyTag {
		return encodeTag(ctx, src, 0) &^ maskTagFld, maskFull &^ maskTagFld
	}
	return encodeTag(ctx, src, tag), maskFull
}

// probeTagMask builds the (tag, mask) pair for an ANY_SOURCE probe: the
// source field is wildcarded; AnyTag additionally wildcards the tag field.
func probeTagMask(ctx int32, tag int32) (uint64, uint64) {
	mask := maskFull &^ maskSrcFld
	if tag == ch3.AnyTag {
		mask &^= maskTagFld
		return encodeTag(ctx, 0, 0) & mask, mask
	}
	return encodeTag(ctx, 0, tag) & mask, mask
}

// decodeTag splits a NewMadeleine tag back into the MPI triple.
func decodeTag(t uint64) (ctx int32, src int, tag int32) {
	return int32(uint16(t >> ctxShift)), int(uint16(t >> srcShift)), int32(uint32(t))
}

// Reserved tag space for the generic (packet-over-NewMadeleine) module:
// bit 63 marks channel packets, bit 62 marks rendezvous payload streams.
const (
	chanTagBit = uint64(1) << 63
	rdvTagBit  = uint64(1) << 62
)

func rdvTag(cookie uint64) uint64 { return rdvTagBit | cookie }
