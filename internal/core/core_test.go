package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ch3"
)

func TestTagCodecRoundTrip(t *testing.T) {
	cases := []struct {
		ctx int32
		src int
		tag int32
	}{
		{0, 0, 0}, {1, 5, 42}, {7, 65535, 1 << 30}, {100, 63, 999},
	}
	for _, c := range cases {
		enc := encodeTag(c.ctx, c.src, c.tag)
		ctx, src, tag := decodeTag(enc)
		if ctx != c.ctx || src != c.src || tag != c.tag {
			t.Errorf("roundtrip (%d,%d,%d) -> (%d,%d,%d)", c.ctx, c.src, c.tag, ctx, src, tag)
		}
	}
}

func TestPropertyTagCodec(t *testing.T) {
	f := func(ctxRaw uint16, srcRaw uint16, tagRaw uint32) bool {
		ctx := int32(ctxRaw)
		src := int(srcRaw)
		tag := int32(tagRaw & 0x7FFFFFFF)
		c2, s2, t2 := decodeTag(encodeTag(ctx, src, tag))
		return c2 == ctx && s2 == src && t2 == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMaskExact(t *testing.T) {
	tag, mask := recvTagMask(3, 7, 55)
	if mask != maskFull {
		t.Fatal("exact receive must use the full mask")
	}
	if tag != encodeTag(3, 7, 55) {
		t.Fatal("exact receive tag mismatch")
	}
}

func TestRecvTagMaskAnyTag(t *testing.T) {
	tag, mask := recvTagMask(3, 7, ch3.AnyTag)
	// Any MPI tag from (ctx 3, src 7) must match.
	for _, mpiTag := range []int32{0, 1, 1 << 20} {
		enc := encodeTag(3, 7, mpiTag)
		if enc&mask != tag {
			t.Errorf("AnyTag mask rejects tag %d", mpiTag)
		}
	}
	// A different source must not match.
	if encodeTag(3, 8, 0)&mask == tag {
		t.Error("AnyTag mask accepts wrong source")
	}
	// A different context must not match.
	if encodeTag(4, 7, 0)&mask == tag {
		t.Error("AnyTag mask accepts wrong context")
	}
}

func TestProbeTagMask(t *testing.T) {
	tag, mask := probeTagMask(2, 9)
	// Any source with (ctx 2, tag 9) matches.
	for _, src := range []int{0, 3, 500} {
		if encodeTag(2, src, 9)&mask != tag {
			t.Errorf("probe mask rejects src %d", src)
		}
	}
	if encodeTag(2, 0, 10)&mask == tag {
		t.Error("probe mask accepts wrong tag")
	}
	// AnyTag probe: only ctx participates.
	tag, mask = probeTagMask(2, ch3.AnyTag)
	if encodeTag(2, 11, 12345)&mask != tag {
		t.Error("AnyTag probe rejects valid message")
	}
	if encodeTag(3, 11, 12345)&mask == tag {
		t.Error("AnyTag probe accepts wrong context")
	}
}

// --- asSet tests -------------------------------------------------------------

// newRecvForTest builds a detached receive request with the given triple.
func newRecvForTest(ctx int32, src int, tag int32) *ch3.Request {
	return ch3.NewRecvRequest(src, tag, ctx, nil)
}

func TestASSetLifecycle(t *testing.T) {
	s := newASSet()

	mkAny := func(tag int32) *ch3.Request {
		return newRecvForTest(0, int(ch3.AnySource), tag)
	}
	mkReg := func(src int, tag int32) *ch3.Request {
		return newRecvForTest(0, src, tag)
	}

	a1 := mkAny(5)
	s.addAny(a1)
	if len(s.lists) != 1 {
		t.Fatalf("lists = %d", len(s.lists))
	}
	// A regular request with the same tag is blocked.
	if s.blockingList(0, 5) == nil {
		t.Fatal("regular recv with same tag should be blocked")
	}
	// A regular request with a different tag is not.
	if s.blockingList(0, 6) != nil {
		t.Fatal("different tag must not be blocked")
	}
	// Different context is not blocked.
	if s.blockingList(1, 5) != nil {
		t.Fatal("different ctx must not be blocked")
	}

	r1 := mkReg(2, 5)
	s.defer_(s.blockingList(0, 5), r1)
	a2 := mkAny(5)
	s.addAny(a2) // queues behind
	r2 := mkReg(3, 5)
	s.defer_(s.blockingList(0, 5), r2)

	// Pop the head: r1 becomes postable, a2 becomes the new head, r2 stays.
	postable := s.popHead(s.index[asKey{0, 5}])
	if len(postable) != 1 || postable[0] != r1 {
		t.Fatalf("postable = %v", postable)
	}
	l := s.index[asKey{0, 5}]
	if l == nil || l.queue[0] != a2 {
		t.Fatal("a2 should be the new head")
	}
	// Pop again: r2 drains, list disappears.
	postable = s.popHead(l)
	if len(postable) != 1 || postable[0] != r2 {
		t.Fatalf("postable = %v", postable)
	}
	if len(s.lists) != 0 || s.index[asKey{0, 5}] != nil {
		t.Fatal("list should be removed when empty")
	}
}

func TestASSetDropNonHead(t *testing.T) {
	s := newASSet()
	a1 := newRecvForTest(0, int(ch3.AnySource), 7)
	a2 := newRecvForTest(0, int(ch3.AnySource), 7)
	s.addAny(a1)
	s.addAny(a2)
	l, wasHead := s.dropRequest(a2)
	if l == nil || wasHead {
		t.Fatalf("drop a2: l=%v head=%v", l, wasHead)
	}
	if got := s.drainAfterDrop(l, wasHead); len(got) != 0 {
		t.Fatalf("non-head drop must not release requests, got %v", got)
	}
	if len(s.lists) != 1 {
		t.Fatal("list with remaining head must survive")
	}
	// Dropping the head drains and removes.
	l, wasHead = s.dropRequest(a1)
	if !wasHead {
		t.Fatal("a1 was the head")
	}
	s.drainAfterDrop(l, wasHead)
	if len(s.lists) != 0 {
		t.Fatal("empty list must be removed")
	}
}

func TestASSetAnyTagBlocksEverything(t *testing.T) {
	s := newASSet()
	s.addAny(newRecvForTest(0, int(ch3.AnySource), ch3.AnyTag))
	if s.blockingList(0, 42) == nil {
		t.Fatal("AnyTag AS list must block every tag in the context")
	}
	if s.blockingList(1, 42) != nil {
		t.Fatal("AnyTag AS list must not block other contexts")
	}
	// And the converse: an AnyTag request is blocked by any same-ctx list.
	s2 := newASSet()
	s2.addAny(newRecvForTest(0, int(ch3.AnySource), 3))
	if s2.blockingList(0, ch3.AnyTag) == nil {
		t.Fatal("AnyTag post must be blocked by an existing same-ctx list")
	}
}

func TestASSetDropUnknownRequest(t *testing.T) {
	s := newASSet()
	l, head := s.dropRequest(newRecvForTest(0, 1, 1))
	if l != nil || head {
		t.Fatal("dropping unknown request must be a no-op")
	}
}
