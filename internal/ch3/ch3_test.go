package ch3

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/marcel"
	"repro/internal/nemesis"
	"repro/internal/pioman"
	"repro/internal/vtime"
)

// nullBackend satisfies NetBackend for shm-only tests.
type nullBackend struct{ anyCancelled int }

func (n *nullBackend) Name() string                    { return "null" }
func (n *nullBackend) CentralMatching() bool           { return true }
func (n *nullBackend) Isend(*vtime.Proc, *Request)     { panic("no network in test") }
func (n *nullBackend) PostRecv(*Request)               {}
func (n *nullBackend) PostRecvAny(*Request)            {}
func (n *nullBackend) ShmMatchedAny(*Request)          { n.anyCancelled++ }
func (n *nullBackend) Progress() (int, vtime.Duration) { return 0, 0 }

// node2 builds two CH3 processes on one node connected by shared memory.
func node2(t *testing.T, shmOpt nemesis.Options, cfg Config) (*vtime.Engine, []*Process) {
	t.Helper()
	return nodeN(t, 2, shmOpt, cfg)
}

func nodeN(t *testing.T, n int, shmOpt nemesis.Options, cfg Config) (*vtime.Engine, []*Process) {
	t.Helper()
	e := vtime.NewEngine()
	node := marcel.NewNode(e, "n0", 8)
	var eps []*nemesis.Endpoint
	for i := 0; i < n; i++ {
		ep, err := nemesis.NewEndpoint(e, i, shmOpt)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	for i := range eps {
		for j := range eps {
			if i != j {
				eps[i].ConnectLocal(eps[j])
			}
		}
	}
	same := func(int) bool { return true }
	var procs []*Process
	for i := 0; i < n; i++ {
		mgr := pioman.New(e, node, fmt.Sprintf("p%d", i), pioman.Config{})
		p := NewProcess(e, i, n, mgr, eps[i], same, cfg)
		p.SetBackend(&nullBackend{})
		procs = append(procs, p)
	}
	return e, procs
}

func spawn2(t *testing.T, e *vtime.Engine, f0, f1 func(p *vtime.Proc)) {
	t.Helper()
	e.Spawn("r0", f0)
	e.Spawn("r1", f1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShmEagerSmall(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	msg := []byte("intra-node hello")
	buf := make([]byte, 64)
	var st Status
	spawn2(t, e,
		func(p *vtime.Proc) {
			r := ps[0].Isend(p, 1, 5, 0, msg)
			ps[0].Wait(p, r)
		},
		func(p *vtime.Proc) {
			r := ps[1].Irecv(p, 0, 5, 0, buf)
			ps[1].Wait(p, r)
			st = r.Stat
		})
	if !bytes.Equal(buf[:st.Len], msg) || st.Source != 0 || st.Tag != 5 {
		t.Fatalf("st=%+v buf=%q", st, buf[:st.Len])
	}
}

func TestShmEagerMultiFragment(t *testing.T) {
	// Cell payload 1K, message 10K: 10 fragments.
	e, ps := node2(t, nemesis.Options{CellPayload: 1024, NumCells: 16}, Config{})
	msg := make([]byte, 10*1024)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	buf := make([]byte, len(msg))
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, msg)) },
		func(p *vtime.Proc) { ps[1].Wait(p, ps[1].Irecv(p, 0, 1, 0, buf)) })
	if !bytes.Equal(buf, msg) {
		t.Fatal("multi-fragment payload corrupted")
	}
}

func TestShmFlowControlTinyPool(t *testing.T) {
	// 2 cells of 512B for a 64KB eager message: heavy recycling required.
	e, ps := node2(t, nemesis.Options{CellPayload: 512, NumCells: 2}, Config{})
	msg := make([]byte, 64*1024)
	for i := range msg {
		msg[i] = byte(i >> 3)
	}
	buf := make([]byte, len(msg))
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, msg)) },
		func(p *vtime.Proc) { ps[1].Wait(p, ps[1].Irecv(p, 0, 1, 0, buf)) })
	if !bytes.Equal(buf, msg) {
		t.Fatal("flow-controlled payload corrupted")
	}
}

func TestShmRendezvousLarge(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{EagerShmMax: 4096})
	msg := make([]byte, 512*1024)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	buf := make([]byte, len(msg))
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 2, 0, msg)) },
		func(p *vtime.Proc) { ps[1].Wait(p, ps[1].Irecv(p, 0, 2, 0, buf)) })
	if !bytes.Equal(buf, msg) {
		t.Fatal("rendezvous payload corrupted")
	}
	if ps[0].ShmRdvSends != 1 {
		t.Fatalf("ShmRdvSends = %d, want 1", ps[0].ShmRdvSends)
	}
}

func TestShmRendezvousUnexpectedRTS(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{EagerShmMax: 1024})
	msg := make([]byte, 100*1024)
	for i := range msg {
		msg[i] = byte(i)
	}
	buf := make([]byte, len(msg))
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 2, 0, msg)) },
		func(p *vtime.Proc) {
			p.Sleep(10 * vtime.Microsecond)
			ps[1].Mgr.Progress(p) // RTS lands unexpected
			if ps[1].UnexpectedQLen() != 1 {
				t.Errorf("uq len = %d, want 1", ps[1].UnexpectedQLen())
			}
			ps[1].Wait(p, ps[1].Irecv(p, 0, 2, 0, buf))
		})
	if !bytes.Equal(buf, msg) {
		t.Fatal("late-posted rendezvous corrupted")
	}
}

func TestShmUnexpectedEager(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	msg := []byte("surprise")
	buf := make([]byte, 16)
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 9, 0, msg)) },
		func(p *vtime.Proc) {
			p.Sleep(10 * vtime.Microsecond)
			ps[1].Mgr.Progress(p)
			r := ps[1].Irecv(p, 0, 9, 0, buf)
			ps[1].Wait(p, r)
			if !r.Done() {
				t.Error("unexpected eager not consumed at Irecv")
			}
		})
	if string(buf[:8]) != "surprise" {
		t.Fatalf("buf=%q", buf)
	}
}

func TestAnySourceShm(t *testing.T) {
	e, ps := nodeN(t, 3, nemesis.Options{}, Config{})
	buf := make([]byte, 16)
	var st Status
	for i := range ps {
		i := i
		e.Spawn(fmt.Sprintf("r%d", i), func(p *vtime.Proc) {
			switch i {
			case 2:
				r := ps[2].Irecv(p, int(AnySource), 1, 0, buf)
				ps[2].Wait(p, r)
				st = r.Stat
			case 1:
				p.Sleep(5 * vtime.Microsecond)
				ps[1].Wait(p, ps[1].Isend(p, 2, 1, 0, []byte("one")))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Source != 1 || string(buf[:3]) != "one" {
		t.Fatalf("st=%+v buf=%q", st, buf)
	}
	if ps[2].Backend().(*nullBackend).anyCancelled != 1 {
		t.Fatal("shm ANY_SOURCE match must inform the backend (§3.2.2)")
	}
}

func TestAnyTagShm(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	buf := make([]byte, 8)
	var st Status
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 4242, 0, []byte("any"))) },
		func(p *vtime.Proc) {
			r := ps[1].Irecv(p, 0, AnyTag, 0, buf)
			ps[1].Wait(p, r)
			st = r.Stat
		})
	if st.Tag != 4242 || string(buf[:3]) != "any" {
		t.Fatalf("st=%+v", st)
	}
}

func TestContextSeparation(t *testing.T) {
	// A message on ctx 1 must not match a receive on ctx 0.
	e, ps := node2(t, nemesis.Options{}, Config{})
	buf0 := make([]byte, 8)
	buf1 := make([]byte, 8)
	spawn2(t, e,
		func(p *vtime.Proc) {
			ps[0].Isend(p, 1, 1, 1, []byte("ctx1"))
			ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, []byte("ctx0")))
		},
		func(p *vtime.Proc) {
			r0 := ps[1].Irecv(p, 0, 1, 0, buf0)
			ps[1].Wait(p, r0)
			r1 := ps[1].Irecv(p, 0, 1, 1, buf1)
			ps[1].Wait(p, r1)
		})
	if string(buf0[:4]) != "ctx0" || string(buf1[:4]) != "ctx1" {
		t.Fatalf("buf0=%q buf1=%q", buf0, buf1)
	}
}

func TestOrderingManySmall(t *testing.T) {
	e, ps := node2(t, nemesis.Options{CellPayload: 256, NumCells: 4}, Config{})
	const n = 40
	var got []byte
	spawn2(t, e,
		func(p *vtime.Proc) {
			var last *Request
			for i := 0; i < n; i++ {
				last = ps[0].Isend(p, 1, 7, 0, []byte{byte(i)})
			}
			ps[0].Wait(p, last)
		},
		func(p *vtime.Proc) {
			for i := 0; i < n; i++ {
				b := make([]byte, 1)
				ps[1].Wait(p, ps[1].Irecv(p, 0, 7, 0, b))
				got = append(got, b[0])
			}
		})
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestTruncationShm(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	buf := make([]byte, 3)
	var st Status
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, []byte("longmessage"))) },
		func(p *vtime.Proc) {
			r := ps[1].Irecv(p, 0, 1, 0, buf)
			ps[1].Wait(p, r)
			st = r.Stat
		})
	if !st.Truncated || st.Len != 3 || string(buf) != "lon" {
		t.Fatalf("st=%+v buf=%q", st, buf)
	}
}

func TestZeroByteShm(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	var st Status
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, nil)) },
		func(p *vtime.Proc) {
			r := ps[1].Irecv(p, 0, 1, 0, nil)
			ps[1].Wait(p, r)
			st = r.Stat
		})
	if st.Len != 0 || st.Truncated {
		t.Fatalf("st=%+v", st)
	}
}

func TestWaitAll(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	bufs := make([][]byte, 4)
	spawn2(t, e,
		func(p *vtime.Proc) {
			var rs []*Request
			for i := 0; i < 4; i++ {
				rs = append(rs, ps[0].Isend(p, 1, int32(i), 0, []byte{byte(i)}))
			}
			ps[0].WaitAll(p, rs)
		},
		func(p *vtime.Proc) {
			var rs []*Request
			for i := 0; i < 4; i++ {
				bufs[i] = make([]byte, 1)
				rs = append(rs, ps[1].Irecv(p, 0, int32(i), 0, bufs[i]))
			}
			ps[1].WaitAll(p, rs)
		})
	for i := 0; i < 4; i++ {
		if bufs[i][0] != byte(i) {
			t.Fatalf("bufs[%d]=%v", i, bufs[i])
		}
	}
}

func TestPartialAssemblyClaim(t *testing.T) {
	// A multi-fragment message arrives partially before the receive posts:
	// the receive must claim the in-flight entry and complete correctly.
	e, ps := node2(t, nemesis.Options{CellPayload: 1024, NumCells: 2}, Config{})
	msg := make([]byte, 8*1024)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	buf := make([]byte, len(msg))
	spawn2(t, e,
		func(p *vtime.Proc) { ps[0].Wait(p, ps[0].Isend(p, 1, 1, 0, msg)) },
		func(p *vtime.Proc) {
			// Poll exactly once so only some fragments land (2 cells).
			p.Sleep(2 * vtime.Microsecond)
			ps[1].Mgr.Progress(p)
			r := ps[1].Irecv(p, 0, 1, 0, buf)
			ps[1].Wait(p, r)
		})
	if !bytes.Equal(buf, msg) {
		t.Fatal("claimed partial assembly corrupted")
	}
}

func TestRequestCallbacksAndAccessors(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	fired := 0
	spawn2(t, e,
		func(p *vtime.Proc) {
			r := ps[0].Isend(p, 1, 3, 7, []byte("x"))
			if r.IsRecv() || r.Dest() != 1 {
				t.Error("send accessors wrong")
			}
			r.AddCallback(func() { fired++ })
			ps[0].Wait(p, r)
		},
		func(p *vtime.Proc) {
			b := make([]byte, 1)
			r := ps[1].Irecv(p, 0, 3, 7, b)
			ctx, src, tag := r.MatchTriple()
			if ctx != 7 || src != 0 || tag != 3 {
				t.Errorf("triple = %d %d %d", ctx, src, tag)
			}
			ps[1].Wait(p, r)
		})
	if fired != 1 {
		t.Fatalf("callback fired %d times", fired)
	}
}

func TestCallbackOnAlreadyDone(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{})
	fired := false
	spawn2(t, e,
		func(p *vtime.Proc) {
			r := ps[0].Isend(p, 1, 1, 0, []byte("x"))
			ps[0].Wait(p, r)
			r.AddCallback(func() { fired = true })
		},
		func(p *vtime.Proc) {
			b := make([]byte, 1)
			ps[1].Wait(p, ps[1].Irecv(p, 0, 1, 0, b))
		})
	if !fired {
		t.Fatal("callback on done request must fire immediately")
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	r := &Request{}
	r.Complete()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double completion")
		}
	}()
	r.Complete()
}

func TestSendSWChargedToCaller(t *testing.T) {
	e, ps := node2(t, nemesis.Options{}, Config{SendSW: 500, RecvSW: 300})
	spawn2(t, e,
		func(p *vtime.Proc) {
			start := p.Now()
			r := ps[0].Isend(p, 1, 1, 0, []byte("x"))
			if p.Now()-start < 500 {
				t.Errorf("SendSW not charged: %d", p.Now()-start)
			}
			ps[0].Wait(p, r)
		},
		func(p *vtime.Proc) {
			start := p.Now()
			b := make([]byte, 1)
			r := ps[1].Irecv(p, 0, 1, 0, b)
			if p.Now()-start < 300 {
				t.Errorf("RecvSW not charged: %d", p.Now()-start)
			}
			ps[1].Wait(p, r)
		})
}
