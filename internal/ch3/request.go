// Package ch3 implements the MPICH2 CH3 device layer: request objects, the
// posted-receive and unexpected queues that form "the core of the message
// passing management in MPICH2" (§3.1.1), the CH3 eager and rendezvous
// protocols used over shared memory (and over generic network modules), and
// the per-connection virtual-connection (VC) structure whose send functions
// can be overridden per destination — the hook the paper uses to bypass
// Nemesis and call NewMadeleine directly (§3.1.2).
package ch3

import (
	"fmt"

	"repro/internal/nmad"
	"repro/internal/vtime"
)

// Wildcards for receive matching.
const (
	AnySource int32 = -1
	AnyTag    int32 = -1
)

// Status describes a completed receive.
type Status struct {
	Source    int32
	Tag       int32
	Len       int
	Truncated bool
}

type reqKind uint8

const (
	sendReq reqKind = iota
	recvReq
)

// Request is a CH3/ADI3 communication request. Each MPI operation is managed
// through one; receive requests are queued on the posted receive queue, and
// the Nemesis-specific portion carries a pointer to the corresponding
// NewMadeleine request when the direct module is in use (§3.1.1).
type Request struct {
	p    *Process
	kind reqKind
	done bool

	// transient marks a pooled request (IsendPooled/IrecvPooled): the
	// caller holds it only until its single completion callback has run,
	// after which the request returns to the process free list. Exactly one
	// callback must ever be registered on a transient request.
	transient bool
	// tracked mirrors the request on the in-flight gauge; cleared (and the
	// gauge decremented) at completion.
	tracked bool

	// qseq is the monotone enqueue stamp the bucketed matching queues order
	// candidates by (see queues.go).
	qseq uint64

	// Stat is valid once Done for receive requests.
	Stat Status

	// Matching triple (receive side); src/tag may be wildcards.
	src, tag, ctx int32
	buf           []byte

	// Send side.
	dst  int32
	data []byte
	seq  uint32

	// Rail is the multirail placement hint of a send request: 0 lets the
	// backend's strategy place the transfer (the default), k > 0 pins it to
	// rail k-1. The collective engine's stripe assignments ride this;
	// shared-memory traffic and single-rail backends ignore it.
	Rail int

	// Nmad is the associated NewMadeleine request (direct module only).
	Nmad *nmad.Request

	// Rendezvous bookkeeping (CH3-level protocol: shm and packet backends).
	cookie    uint64
	remaining int

	onComplete []func()
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// IsRecv reports whether r is a receive request.
func (r *Request) IsRecv() bool { return r.kind == recvReq }

// Buffer returns the receive buffer (backends fill it).
func (r *Request) Buffer() []byte { return r.buf }

// Data returns the send payload.
func (r *Request) Data() []byte { return r.data }

// Dest returns the destination rank of a send request.
func (r *Request) Dest() int { return int(r.dst) }

// MatchTriple returns (ctx, src, tag) of a receive request.
func (r *Request) MatchTriple() (ctx, src, tag int32) { return r.ctx, r.src, r.tag }

// AddCallback registers f to run when the request completes. If the request
// is already complete, f runs immediately — and, for a transient request,
// that immediate run is the single permitted callback, so the request
// returns to the pool afterwards (the sync-completion half of the free
// rule; see Complete for the async half).
func (r *Request) AddCallback(f func()) {
	if r.done {
		f()
		if r.transient {
			r.p.putReq(r)
		}
		return
	}
	r.onComplete = append(r.onComplete, f)
}

// Complete marks the request done and fires callbacks. Exposed for backends.
//
// Transient free rule: a pooled request is recycled exactly once — here,
// after its callbacks ran, if any were registered; otherwise in
// AddCallback's immediate-run branch (the request completed synchronously
// inside Isend/Irecv, before its single callback was registered). No
// backend touches a request after Complete, so recycling here is safe.
func (r *Request) Complete() {
	if r.done {
		panic("ch3: double completion")
	}
	r.done = true
	if r.tracked {
		r.tracked = false
		r.p.inFlight.Dec()
	}
	ran := len(r.onComplete) > 0
	for i, f := range r.onComplete {
		r.onComplete[i] = nil
		f()
	}
	r.onComplete = r.onComplete[:0]
	if r.transient && ran {
		r.p.putReq(r)
	}
}

// SetRecvStatus records the receive outcome. Exposed for backends.
func (r *Request) SetRecvStatus(src, tag int32, n int, truncated bool) {
	r.Stat = Status{Source: src, Tag: tag, Len: n, Truncated: truncated}
}

// NewRecvRequest builds a detached receive request with the given matching
// triple (used by backends and tests that need a request outside the normal
// Irecv path).
func NewRecvRequest(src int, tag, ctx int32, buf []byte) *Request {
	return &Request{kind: recvReq, src: int32(src), tag: tag, ctx: ctx, buf: buf}
}

func (r *Request) String() string {
	k := "send"
	if r.kind == recvReq {
		k = "recv"
	}
	return fmt.Sprintf("req{%s ctx=%d src=%d dst=%d tag=%d done=%v}",
		k, r.ctx, r.src, r.dst, r.tag, r.done)
}

// matches reports whether an arrival (ctx, src, tag) satisfies receive r.
func (r *Request) matches(ctx, src, tag int32) bool {
	if r.ctx != ctx {
		return false
	}
	if r.src != AnySource && r.src != src {
		return false
	}
	if r.tag != AnyTag && r.tag != tag {
		return false
	}
	return true
}

// uqEntry is one unexpected message held by the CH3 layer (shared-memory or
// packet-backend arrivals; direct-module network arrivals stay in
// NewMadeleine's own buffers).
type uqEntry struct {
	ctx, src, tag int32
	qseq          uint64 // monotone enqueue stamp (bucketed-queue ordering)
	msgLen        int
	data          []byte // eager payload (fully assembled)
	pendingFrags  int    // >0 while multi-fragment assembly continues
	isRTS         bool
	rtsCookie     uint64 // sender request id for the CTS reply
	org           Origin
	key           asmKey // assembly key while fragments are pending
}

// NetBackend abstracts the inter-node communication engine behind CH3: the
// paper's direct-NewMadeleine module, a generic Nemesis network module, or
// the modeled baseline stacks (MVAPICH2 / Open MPI).
type NetBackend interface {
	Name() string
	// CentralMatching reports whether network arrivals are matched by the
	// CH3 posted/unexpected queues (true for packet-style modules) or by
	// the library's own tag matching (false for the direct module).
	CentralMatching() bool
	// Isend transmits req.Data() to remote rank req.Dest().
	Isend(proc *vtime.Proc, req *Request)
	// PostRecv registers a receive from a known remote source (direct
	// matching modules only; central-matching backends may no-op).
	PostRecv(req *Request)
	// PostRecvAny registers the network half of an ANY_SOURCE receive.
	PostRecvAny(req *Request)
	// ShmMatchedAny informs the backend that an ANY_SOURCE request was
	// satisfied by the shared-memory path (§3.2.2).
	ShmMatchedAny(req *Request)
	// Progress runs backend-specific polling (e.g. ANY_SOURCE probing);
	// it returns events handled and their cost.
	Progress() (int, vtime.Duration)
}
