package ch3

// Bucketed matching queues. The CH3 posted-receive and unexpected queues
// were flat slices scanned linearly on every arrival and every Irecv, so
// the cost of matching one message grew with the number of *unrelated*
// in-flight operations — exactly what a heavy-traffic workload (thousands
// of outstanding nonblocking collectives across many communicators)
// produces. Both queues are bucketed by (context, source) here, with a
// per-context wildcard bucket for ANY_SOURCE receives, so a lookup touches
// only the traffic that could possibly match.
//
// MPI's non-overtaking rule is preserved exactly: every enqueued entry is
// stamped with a monotone sequence number, buckets are FIFO, and a match
// that could be satisfied from two buckets (a specific-source bucket and
// the wildcard bucket, or — for an ANY_SOURCE receive — several source
// buckets of one context) takes the candidate with the smallest stamp.
// The first tag-match of a FIFO bucket is that bucket's smallest-stamp
// match, so the min over buckets equals the pick of the old global linear
// scan — the refactor is behavior-identical, hence virtual-time neutral.
//
// Removals splice with copy + nil of the vacated tail slot, so a drained
// bucket's backing array never retains dead requests (the old append-splice
// left the last element reachable forever). Emptied buckets keep their
// backing arrays: the set of (context, source) pairs a process talks to is
// small and stable, and reusing capacity keeps the steady-state hot path
// allocation-free.

// queueKey addresses one matching bucket.
type queueKey struct{ ctx, src int32 }

// postedQueue holds pending receive requests: specific-source receives in
// spec[(ctx,src)], ANY_SOURCE receives in wild[ctx].
type postedQueue struct {
	spec map[queueKey][]*Request
	wild map[int32][]*Request
	n    int
}

func (q *postedQueue) init() {
	if q.spec == nil {
		q.spec = make(map[queueKey][]*Request)
		q.wild = make(map[int32][]*Request)
	}
}

// add enqueues r, stamped with seq.
func (q *postedQueue) add(r *Request, seq uint64) {
	q.init()
	r.qseq = seq
	if r.src == AnySource {
		q.wild[r.ctx] = append(q.wild[r.ctx], r)
	} else {
		k := queueKey{r.ctx, r.src}
		q.spec[k] = append(q.spec[k], r)
	}
	q.n++
}

// tagOK reports whether a posted tag (possibly AnyTag) accepts an arrival
// tag.
func tagOK(posted, arrival int32) bool { return posted == AnyTag || posted == arrival }

// firstPosted returns the index of the first (smallest-stamp) request in a
// FIFO bucket accepting the arrival tag, or -1.
func firstPosted(b []*Request, tag int32) int {
	for i, r := range b {
		if tagOK(r.tag, tag) {
			return i
		}
	}
	return -1
}

// match removes and returns the oldest posted receive matching a concrete
// arrival triple, or nil. Candidates come from the specific (ctx,src)
// bucket and the context's wildcard bucket; the smaller stamp wins.
func (q *postedQueue) match(ctx, src, tag int32) *Request {
	if q.n == 0 {
		return nil
	}
	k := queueKey{ctx, src}
	sb := q.spec[k]
	wb := q.wild[ctx]
	si := firstPosted(sb, tag)
	wi := firstPosted(wb, tag)
	switch {
	case si < 0 && wi < 0:
		return nil
	case wi < 0 || (si >= 0 && sb[si].qseq < wb[wi].qseq):
		r := sb[si]
		q.spec[k] = spliceReqs(sb, si)
		q.n--
		return r
	default:
		r := wb[wi]
		q.wild[ctx] = spliceReqs(wb, wi)
		q.n--
		return r
	}
}

// remove drops r from its bucket; no-op if r is not queued.
func (q *postedQueue) remove(r *Request) {
	if q.n == 0 {
		return
	}
	if r.src == AnySource {
		b := q.wild[r.ctx]
		for i, x := range b {
			if x == r {
				q.wild[r.ctx] = spliceReqs(b, i)
				q.n--
				return
			}
		}
		return
	}
	k := queueKey{r.ctx, r.src}
	b := q.spec[k]
	for i, x := range b {
		if x == r {
			q.spec[k] = spliceReqs(b, i)
			q.n--
			return
		}
	}
}

// spliceReqs removes index i, niling the vacated tail slot so the backing
// array stops retaining the dropped request.
func spliceReqs(b []*Request, i int) []*Request {
	copy(b[i:], b[i+1:])
	b[len(b)-1] = nil
	return b[:len(b)-1]
}

// uqQueue holds unexpected arrivals, bucketed by their concrete
// (context, source). srcs indexes, per context, the sources that ever had
// a bucket, so an ANY_SOURCE receive scans only same-context buckets.
type uqQueue struct {
	buckets map[queueKey][]*uqEntry
	srcs    map[int32][]int32
	n       int
}

func (q *uqQueue) init() {
	if q.buckets == nil {
		q.buckets = make(map[queueKey][]*uqEntry)
		q.srcs = make(map[int32][]int32)
	}
}

// add enqueues u, stamped with seq.
func (q *uqQueue) add(u *uqEntry, seq uint64) {
	q.init()
	u.qseq = seq
	k := queueKey{u.ctx, u.src}
	b, existed := q.buckets[k]
	if !existed {
		q.srcs[u.ctx] = append(q.srcs[u.ctx], u.src)
	}
	q.buckets[k] = append(b, u)
	q.n++
}

// firstUq returns the index of the first live entry in a FIFO bucket
// accepting the receive tag (possibly AnyTag), or -1. Claimed entries
// (org == nil) are skipped, mirroring the old linear scan.
func firstUq(b []*uqEntry, rtag int32) int {
	for i, u := range b {
		if u.org == nil {
			continue
		}
		if rtag == AnyTag || rtag == u.tag {
			return i
		}
	}
	return -1
}

// take removes and returns the oldest unexpected entry matching receive r,
// or nil. A concrete-source receive looks at one bucket; an ANY_SOURCE
// receive takes the smallest stamp across the context's buckets.
func (q *uqQueue) take(r *Request) *uqEntry {
	if q.n == 0 {
		return nil
	}
	if r.src != AnySource {
		k := queueKey{r.ctx, r.src}
		b := q.buckets[k]
		i := firstUq(b, r.tag)
		if i < 0 {
			return nil
		}
		u := b[i]
		q.buckets[k] = spliceUq(b, i)
		q.n--
		return u
	}
	bestIdx := -1
	var bestKey queueKey
	var best *uqEntry
	for _, src := range q.srcs[r.ctx] {
		k := queueKey{r.ctx, src}
		b := q.buckets[k]
		if i := firstUq(b, r.tag); i >= 0 && (best == nil || b[i].qseq < best.qseq) {
			best, bestKey, bestIdx = b[i], k, i
		}
	}
	if best == nil {
		return nil
	}
	q.buckets[bestKey] = spliceUq(q.buckets[bestKey], bestIdx)
	q.n--
	return best
}

// spliceUq removes index i, niling the vacated tail slot.
func spliceUq(b []*uqEntry, i int) []*uqEntry {
	copy(b[i:], b[i+1:])
	b[len(b)-1] = nil
	return b[:len(b)-1]
}
