package ch3

import (
	"fmt"

	"repro/internal/nemesis"
	"repro/internal/pioman"
	"repro/internal/shmq"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Config carries the per-stack CH3 software cost model.
type Config struct {
	// SendSW / RecvSW are the per-operation software overheads of the
	// MPI + ADI3 + CH3 layers, charged at Isend/Irecv time.
	SendSW vtime.Duration
	RecvSW vtime.Duration
	// EagerShmMax is the largest message sent eagerly over shared memory;
	// larger messages use the CH3 rendezvous protocol.
	EagerShmMax int
	// CTSCost is the host cost of emitting a CH3 clear-to-send.
	CTSCost vtime.Duration
	// Rec, when set, records protocol-phase trace events (eager vs
	// rendezvous, RTS/CTS/data legs).
	Rec *trace.Recorder
	// Metrics, when set, registers the request-pool counters and the
	// in-flight-requests gauge under canonical names; nil keeps standalone
	// counters.
	Metrics *trace.Registry
	// NoPooling disables the request/job free lists: every operation
	// allocates fresh. Virtual-time results are identical either way; the
	// switch exists for neutrality verification.
	NoPooling bool
}

func (c Config) withDefaults() Config {
	if c.EagerShmMax == 0 {
		c.EagerShmMax = 64 << 10
	}
	if c.CTSCost == 0 {
		c.CTSCost = 50
	}
	return c
}

// Origin abstracts the path an arrival took so rendezvous replies travel the
// same way. Implementations: the shared-memory channel (here) and the packet
// backends (internal/core).
type Origin interface {
	OriginName() string
	// SendCTS emits a clear-to-send back to dst; returns host cost.
	SendCTS(p *Process, dst int32, senderCookie, recvCookie uint64, granted int) vtime.Duration
	// SendRdvData transmits req.Data()[:granted] to dst, tagged with the
	// receiver cookie; req completes when the data is fully submitted.
	SendRdvData(p *Process, req *Request, dst int32, recvCookie uint64, granted int)
	// DataCopyCost is the receiver-side cost of landing n rendezvous bytes
	// (memory copy for shm; ~0 for RDMA-capable network backends).
	DataCopyCost(p *Process, n int) vtime.Duration
}

type asmKey struct {
	src int32
	seq uint32
}

// assembly tracks a multi-fragment eager message being reassembled.
type assembly struct {
	req      *Request // non-nil when matched to a posted receive
	uq       *uqEntry // non-nil when unexpected
	received int
	msgLen   int
	bufLimit int // bytes we can actually store (truncation)
	ctx, src int32
	tag      int32
}

// shmJob is a queued shared-memory transmission (eager data, RTS/CTS
// control, or rendezvous data), advanced as free cells permit.
type shmJob struct {
	req     *Request // completed when the job finishes (may be nil)
	dst     int
	hdr     shmq.Header
	data    []byte
	off     int
	control bool // exactly one (possibly empty) cell
	sent    bool // control/empty-data cell emitted
}

// VC is the per-peer virtual connection. SendFn, when non-nil, overrides the
// CH3 send path for this destination — the function-pointer mechanism of
// §3.1.2 through which MPID_Send reaches NewMadeleine directly.
type VC struct {
	Peer     int
	SameNode bool
	SendFn   func(proc *vtime.Proc, req *Request)
}

// peerState is the lazily created per-peer connection state: the virtual
// connection plus the shm sequence counter and job queue toward that peer.
// At NP in the thousands a rank running log-depth collectives touches
// O(log NP) peers, so per-peer state is created on first contact instead of
// as NP-wide dense arrays (which would cost O(NP²) across the run).
type peerState struct {
	vc    VC
	seqTo uint32
	jobs  jobQueue
}

// Process is one rank's CH3/ADI3 state.
type Process struct {
	Rank int
	Size int

	e   *vtime.Engine
	Mgr *pioman.Manager
	cfg Config
	rec *trace.Recorder

	shm     *nemesis.Endpoint
	backend NetBackend

	// peers holds the lazily created per-peer state; sameNode classifies a
	// peer on first contact, remoteSend is the SendFn installed on VCs of
	// off-node peers (the §3.1.2 function-pointer override).
	peers      map[int]*peerState
	sameNode   func(peer int) bool
	remoteSend func(proc *vtime.Proc, req *Request)

	posted postedQueue
	uq     uqQueue
	qseq   uint64 // monotone stamp shared by both matching queues

	activeDsts []int

	asm        map[asmKey]*assembly
	rdvIn      map[uint64]*Request
	rdvOut     map[uint64]*Request
	nextCookie uint64

	// Free lists (see getReq/putReq): recycled transient requests and shm
	// jobs, so the nonblocking-collective hot path stops allocating.
	reqFree []*Request
	jobFree []*shmJob

	// Pool statistics and the live in-flight gauge, cached off cfg.Metrics
	// at construction so the hot path never does a registry lookup.
	reqPoolHits   *trace.Counter
	reqPoolMisses *trace.Counter
	inFlight      *trace.Gauge

	// shard is the progress-manager shard owning this process as a poll
	// source; notifications that need the ANY_SOURCE probe route to it.
	shard int

	// Stats.
	ShmEagerSends int64
	ShmRdvSends   int64
	UnexpectedLen int64
}

// jobQueue is one destination's FIFO of pending shm jobs, consumed via a
// head index so popping neither reallocates nor retains finished jobs (the
// vacated slot is niled; a drained queue resets to reuse its capacity).
type jobQueue struct {
	q    []*shmJob
	head int
}

func (jq *jobQueue) empty() bool    { return jq.head >= len(jq.q) }
func (jq *jobQueue) push(j *shmJob) { jq.q = append(jq.q, j) }
func (jq *jobQueue) front() *shmJob { return jq.q[jq.head] }
func (jq *jobQueue) pop() *shmJob {
	j := jq.q[jq.head]
	jq.q[jq.head] = nil
	jq.head++
	if jq.head == len(jq.q) {
		jq.q = jq.q[:0]
		jq.head = 0
	}
	return j
}

// NewProcess wires a CH3 process. shm may be nil when the rank shares a node
// with nobody. sameNode classifies a peer as co-located on first contact
// (nil means every peer is remote). The backend must be set with SetBackend
// before any traffic.
func NewProcess(e *vtime.Engine, rank, size int, mgr *pioman.Manager,
	shm *nemesis.Endpoint, sameNode func(peer int) bool, cfg Config) *Process {
	p := &Process{
		Rank: rank, Size: size, e: e, Mgr: mgr, cfg: cfg.withDefaults(),
		rec:      cfg.Rec,
		shm:      shm,
		peers:    make(map[int]*peerState),
		sameNode: sameNode,
		asm:      make(map[asmKey]*assembly),
		rdvIn:    make(map[uint64]*Request),
		rdvOut:   make(map[uint64]*Request),

		reqPoolHits:   cfg.Metrics.Counter(trace.CtrReqPoolHits),
		reqPoolMisses: cfg.Metrics.Counter(trace.CtrReqPoolMisses),
		inFlight:      cfg.Metrics.Gauge(trace.GaugeReqsInFlight),
	}
	if shm != nil {
		shm.SetHandler(func(hdr shmq.Header, payload []byte) vtime.Duration {
			return p.HandleArrival(hdr, payload, shmOrigin{})
		})
		// Arrival notifications wake only the worker whose shard owns the
		// shm source; the other workers have nothing new to poll.
		shmShard := mgr.Register(shm, pioman.ClassShm)
		shm.SetNotify(func() { mgr.NotifyShard(shmShard) })
		// The job engine is pinned onto the endpoint's shard: the endpoint's
		// notification is also the flow-control retry signal (a receiver
		// freed a cell, so a stalled advanceJobs can push again), and
		// arrival handling pushes CTS/rendezvous-data jobs that the next
		// sweep iteration must advance. On any other shard those cascades
		// would wake a worker that never polls the job engine.
		p.shard = mgr.RegisterAt(p, pioman.ClassShm, shmShard)
	} else {
		p.shard = mgr.Register(p, pioman.ClassShm)
	}
	return p
}

// SetBackend installs the inter-node backend.
func (p *Process) SetBackend(b NetBackend) { p.backend = b }

// Backend returns the installed backend.
func (p *Process) Backend() NetBackend { return p.backend }

// SetRemoteSendFn installs the send override applied to every off-node
// peer's VC — the direct module's CH3 bypass (§3.1.2). Already-created VCs
// are retrofitted; peers contacted later pick it up at creation.
func (p *Process) SetRemoteSendFn(fn func(proc *vtime.Proc, req *Request)) {
	p.remoteSend = fn
	for _, ps := range p.peers {
		if !ps.vc.SameNode && ps.vc.SendFn == nil {
			ps.vc.SendFn = fn
		}
	}
}

// peer returns rank's connection state, creating it on first contact.
func (p *Process) peer(rank int) *peerState {
	ps := p.peers[rank]
	if ps == nil {
		ps = &peerState{vc: VC{Peer: rank}}
		if rank != p.Rank && p.sameNode != nil && p.sameNode(rank) {
			ps.vc.SameNode = true
		} else if p.remoteSend != nil {
			ps.vc.SendFn = p.remoteSend
		}
		p.peers[rank] = ps
	}
	return ps
}

// VCOf returns the virtual connection to rank.
func (p *Process) VCOf(rank int) *VC { return &p.peer(rank).vc }

// Engine returns the simulation engine.
func (p *Process) Engine() *vtime.Engine { return p.e }

// ShmMemBW returns the node copy bandwidth (0 when no shm endpoint).
func (p *Process) ShmMemBW() float64 {
	if p.shm == nil {
		return 4e9
	}
	return p.shm.Options().MemBW
}

// NewSendRequest builds a send request (exposed for backends and tests).
func (p *Process) NewSendRequest(dst int, tag, ctx int32, data []byte) *Request {
	return &Request{p: p, kind: sendReq, dst: int32(dst), tag: tag, ctx: ctx, data: data}
}

// ---- request/job free lists ----------------------------------------------

// getReq pops a recycled request from the free list (or allocates on a
// miss), marked transient: it will return to the pool once its single
// completion callback has run.
func (p *Process) getReq(kind reqKind) *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree[n-1] = nil
		p.reqFree = p.reqFree[:n-1]
		r.p, r.kind, r.transient = p, kind, true
		p.reqPoolHits.Inc()
		return r
	}
	p.reqPoolMisses.Inc()
	return &Request{p: p, kind: kind, transient: true}
}

// putReq recycles a completed transient request, keeping its callback
// slice's capacity so re-registering a callback after reuse is free.
func (p *Process) putReq(r *Request) {
	cbs := r.onComplete[:0]
	*r = Request{onComplete: cbs}
	p.reqFree = append(p.reqFree, r)
}

// getJob pops a recycled shm job (or allocates on a miss).
func (p *Process) getJob() *shmJob {
	if p.cfg.NoPooling {
		return &shmJob{}
	}
	if n := len(p.jobFree); n > 0 {
		j := p.jobFree[n-1]
		p.jobFree[n-1] = nil
		p.jobFree = p.jobFree[:n-1]
		return j
	}
	return &shmJob{}
}

// putJob recycles a finished shm job.
func (p *Process) putJob(j *shmJob) {
	if p.cfg.NoPooling {
		return
	}
	*j = shmJob{}
	p.jobFree = append(p.jobFree, j)
}

// track mirrors a freshly issued request on the in-flight gauge; Complete
// decrements it.
func (p *Process) track(r *Request) {
	r.tracked = true
	p.inFlight.Inc()
}

// nextQSeq returns the next matching-queue stamp.
func (p *Process) nextQSeq() uint64 {
	p.qseq++
	return p.qseq
}

// Isend starts a send of data to dst under (ctx, tag). The caller's proc is
// charged the software overhead; same-node traffic goes through the Nemesis
// cell queues, remote traffic through the VC send override or backend.
func (p *Process) Isend(proc *vtime.Proc, dst int, tag, ctx int32, data []byte) *Request {
	return p.isend(proc, dst, tag, ctx, data, 0, false)
}

// IsendRail is Isend with a multirail placement hint: 0 lets the backend's
// strategy place the transfer, k > 0 pins it to rail k-1 (see Request.Rail).
func (p *Process) IsendRail(proc *vtime.Proc, dst int, tag, ctx int32, data []byte, rail int) *Request {
	return p.isend(proc, dst, tag, ctx, data, rail, false)
}

// IsendPooled is Isend returning a pooled transient request: the caller
// must register exactly one completion callback and never touch the
// request after that callback has run (the nonblocking-collective engine's
// contract). With Config.NoPooling it degrades to a plain Isend.
func (p *Process) IsendPooled(proc *vtime.Proc, dst int, tag, ctx int32, data []byte) *Request {
	return p.isend(proc, dst, tag, ctx, data, 0, !p.cfg.NoPooling)
}

// IsendRailPooled is IsendPooled carrying a multirail placement hint.
func (p *Process) IsendRailPooled(proc *vtime.Proc, dst int, tag, ctx int32, data []byte, rail int) *Request {
	return p.isend(proc, dst, tag, ctx, data, rail, !p.cfg.NoPooling)
}

func (p *Process) isend(proc *vtime.Proc, dst int, tag, ctx int32, data []byte, rail int, pooled bool) *Request {
	if p.cfg.SendSW > 0 {
		proc.Sleep(p.cfg.SendSW)
	}
	var r *Request
	if pooled {
		r = p.getReq(sendReq)
	} else {
		r = &Request{p: p, kind: sendReq}
	}
	r.dst, r.tag, r.ctx, r.data, r.Rail = int32(dst), tag, ctx, data, rail
	if dst == p.Rank {
		panic("ch3: self-send must be handled by the MPI layer")
	}
	p.track(r)
	vc := &p.peer(dst).vc
	if vc.SameNode {
		p.isendShm(proc, r)
		return r
	}
	if vc.SendFn != nil {
		vc.SendFn(proc, r)
		return r
	}
	p.backend.Isend(proc, r)
	return r
}

func (p *Process) isendShm(proc *vtime.Proc, r *Request) {
	dst := int(r.dst)
	ps := p.peer(dst)
	seq := ps.seqTo
	ps.seqTo++
	if len(r.data) <= p.cfg.EagerShmMax {
		p.ShmEagerSends++
		p.rec.Instant("proto", "shm-eager",
			trace.Int64("dst", int64(dst)), trace.Int64("bytes", int64(len(r.data))))
		j := p.getJob()
		j.req, j.dst = r, dst
		j.hdr = shmq.Header{Type: shmq.CellData, Tag: r.tag, Ctx: r.ctx,
			SeqNo: seq, MsgLen: int64(len(r.data))}
		j.data = r.data
		p.pushJob(j)
	} else {
		p.ShmRdvSends++
		p.rec.Instant("proto", "shm-rts",
			trace.Int64("dst", int64(dst)), trace.Int64("bytes", int64(len(r.data))))
		p.nextCookie++
		cookie := p.nextCookie
		r.cookie = cookie
		p.rdvOut[cookie] = r
		j := p.getJob()
		j.dst = dst
		j.hdr = shmq.Header{Type: shmq.CellRTS, Tag: r.tag, Ctx: r.ctx,
			SeqNo: seq, MsgLen: int64(len(r.data)), ReqID: cookie}
		j.control = true
		p.pushJob(j)
	}
	// Advance inline for latency; stalled fragments continue under Poll.
	if cost := p.advanceJobs(); cost > 0 {
		proc.Sleep(cost)
	}
}

// Irecv posts a receive for (ctx, src, tag); src may be AnySource and tag
// AnyTag. The unexpected queue is consulted first; otherwise the request is
// enqueued on the posted receive queue and/or handed to the backend.
func (p *Process) Irecv(proc *vtime.Proc, src int, tag, ctx int32, buf []byte) *Request {
	return p.irecv(proc, src, tag, ctx, buf, false)
}

// IrecvPooled is Irecv returning a pooled transient request, under the same
// single-callback contract as IsendPooled.
func (p *Process) IrecvPooled(proc *vtime.Proc, src int, tag, ctx int32, buf []byte) *Request {
	return p.irecv(proc, src, tag, ctx, buf, !p.cfg.NoPooling)
}

func (p *Process) irecv(proc *vtime.Proc, src int, tag, ctx int32, buf []byte, pooled bool) *Request {
	if p.cfg.RecvSW > 0 {
		proc.Sleep(p.cfg.RecvSW)
	}
	var r *Request
	if pooled {
		r = p.getReq(recvReq)
	} else {
		r = &Request{p: p, kind: recvReq}
	}
	r.src, r.tag, r.ctx, r.buf = int32(src), tag, ctx, buf
	p.track(r)

	if cost, matched := p.tryUnexpected(r); matched {
		if cost > 0 {
			proc.Sleep(cost)
		}
		return r
	}

	central := p.backend == nil || p.backend.CentralMatching()
	remoteKnown := src != int(AnySource) && !p.peer(src).vc.SameNode

	if src == int(AnySource) || !remoteKnown || central {
		p.posted.add(r, p.nextQSeq())
	}
	if p.backend != nil {
		if src == int(AnySource) {
			p.backend.PostRecvAny(r)
			// A matching message may already sit in the library's buffers;
			// only a progress pass (the ANY_SOURCE probe, §3.2.2) can marry
			// them, so nudge the worker polling this process — essential
			// under PIOMan, where nobody polls on the application thread.
			p.Mgr.NotifyShard(p.shard)
		} else if remoteKnown && !central {
			p.backend.PostRecv(r)
		}
	}
	return r
}

// tryUnexpected consults the unexpected queue for a match; on success it
// consumes/claims the entry and returns the copy cost.
func (p *Process) tryUnexpected(r *Request) (vtime.Duration, bool) {
	u := p.uq.take(r)
	if u == nil {
		return 0, false
	}
	if u.isRTS {
		return p.startRdvRecv(r, u.src, u.tag, u.msgLen, u.rtsCookie, u.org), true
	}
	if u.pendingFrags > 0 {
		// Partially assembled: claim it; completion happens when the
		// last fragment lands. The prefix already buffered is copied
		// out now.
		a := p.asm[u.key]
		a.req = r
		a.uq = nil
		n := copy(r.buf, u.data[:a.received])
		return copyCost(n, p.ShmMemBW()), true
	}
	n := copy(r.buf, u.data)
	r.SetRecvStatus(u.src, u.tag, n, n < u.msgLen)
	r.Complete()
	return copyCost(n, p.ShmMemBW()), true
}

// MatchPosted removes and returns the oldest posted receive matching the
// arrival triple, or nil. Exposed for central-matching backends.
func (p *Process) MatchPosted(ctx, src, tag int32) *Request {
	r := p.posted.match(ctx, src, tag)
	if r != nil && r.src == AnySource && p.backend != nil {
		p.backend.ShmMatchedAny(r)
	}
	return r
}

// RemovePosted drops a request from the posted queue (direct-module
// completion path). It is a no-op if the request is not queued.
func (p *Process) RemovePosted(r *Request) { p.posted.remove(r) }

// PostedLen and UnexpectedQLen expose queue depths for tests.
func (p *Process) PostedLen() int      { return p.posted.n }
func (p *Process) UnexpectedQLen() int { return p.uq.n }

// Wait blocks until r completes, driving progress per the configured regime.
func (p *Process) Wait(proc *vtime.Proc, r *Request) {
	p.Mgr.WaitUntil(proc, r.Done)
}

// WaitAll blocks until every request completes.
func (p *Process) WaitAll(proc *vtime.Proc, rs []*Request) {
	p.Mgr.WaitUntil(proc, func() bool {
		for _, r := range rs {
			if r != nil && !r.Done() {
				return false
			}
		}
		return true
	})
}

// RegisterRdvOut assigns a rendezvous cookie to a send request and tracks
// it until the CTS arrives. Packet backends use it when emitting an RTS.
func (p *Process) RegisterRdvOut(r *Request) uint64 {
	p.nextCookie++
	r.cookie = p.nextCookie
	p.rdvOut[r.cookie] = r
	return r.cookie
}

// RdvInReq returns the receive request registered under a rendezvous cookie.
func (p *Process) RdvInReq(cookie uint64) *Request { return p.rdvIn[cookie] }

// CompleteRdvIn completes the receive request behind cookie; backends whose
// rendezvous data bypasses HandleArrival (e.g. the generic Nemesis module
// sending data as a nested NewMadeleine message) call this when the library
// delivers the payload directly into the user buffer.
func (p *Process) CompleteRdvIn(cookie uint64) {
	r := p.rdvIn[cookie]
	if r == nil {
		panic(fmt.Sprintf("ch3[%d]: CompleteRdvIn unknown cookie %d", p.Rank, cookie))
	}
	delete(p.rdvIn, cookie)
	r.Complete()
}

// ---- pioman source: job advancement + backend progress -------------------

// SourceName implements pioman.Source.
func (p *Process) SourceName() string { return fmt.Sprintf("ch3[%d]", p.Rank) }

// Poll implements pioman.Source.
func (p *Process) Poll() (int, vtime.Duration) {
	cost := p.advanceJobs()
	events := 0
	if cost > 0 {
		events++
	}
	if p.backend != nil {
		n, c := p.backend.Progress()
		events += n
		cost += c
	}
	return events, cost
}

func (p *Process) pushJob(j *shmJob) {
	jq := &p.peer(j.dst).jobs
	if jq.empty() {
		p.activeDsts = append(p.activeDsts, j.dst)
	}
	jq.push(j)
}

// advanceJobs pushes fragments of queued shm jobs into free cells, in
// per-destination FIFO order. Returns the accumulated host cost.
func (p *Process) advanceJobs() vtime.Duration {
	if p.shm == nil || len(p.activeDsts) == 0 {
		return 0
	}
	var cost vtime.Duration
	still := p.activeDsts[:0]
	for _, dst := range p.activeDsts {
		jq := &p.peer(dst).jobs
		for !jq.empty() {
			c, done := p.advanceOne(jq.front())
			cost += c
			if !done {
				break // flow control: retry when a cell frees
			}
			p.putJob(jq.pop())
		}
		if !jq.empty() {
			still = append(still, dst)
		}
	}
	p.activeDsts = still
	return cost
}

func (p *Process) advanceOne(j *shmJob) (vtime.Duration, bool) {
	var cost vtime.Duration
	maxFrag := p.shm.MaxFragment()
	for {
		if j.control || len(j.data) == 0 {
			if j.sent {
				p.finishJob(j)
				return cost, true
			}
			// Control cells keep their header verbatim (CTS carries the
			// receiver cookie in Offset).
			c, ok := p.shm.TrySendFragment(j.dst, j.hdr, nil)
			if !ok {
				return cost, false
			}
			cost += c
			j.sent = true
			p.finishJob(j)
			return cost, true
		}
		if j.off >= len(j.data) {
			p.finishJob(j)
			return cost, true
		}
		end := j.off + maxFrag
		if end > len(j.data) {
			end = len(j.data)
		}
		hdr := j.hdr
		hdr.Offset = int64(j.off)
		c, ok := p.shm.TrySendFragment(j.dst, hdr, j.data[j.off:end])
		if !ok {
			return cost, false
		}
		cost += c
		j.off = end
	}
}

func (p *Process) finishJob(j *shmJob) {
	if j.req != nil && !j.req.done {
		j.req.Complete()
	}
}

// ---- arrival handling (shared by shm cells and packet backends) ----------

type shmOrigin struct{}

func (shmOrigin) OriginName() string { return "shm" }

func (shmOrigin) SendCTS(p *Process, dst int32, senderCookie, recvCookie uint64, granted int) vtime.Duration {
	j := p.getJob()
	j.dst = int(dst)
	j.hdr = shmq.Header{Type: shmq.CellCTS, ReqID: senderCookie,
		MsgLen: int64(granted), Offset: int64(recvCookie)}
	j.control = true
	p.pushJob(j)
	return p.cfg.CTSCost
}

func (shmOrigin) SendRdvData(p *Process, req *Request, dst int32, recvCookie uint64, granted int) {
	j := p.getJob()
	j.req, j.dst = req, int(dst)
	j.hdr = shmq.Header{Type: shmq.CellRdvData, ReqID: recvCookie,
		MsgLen: int64(granted)}
	j.data = req.data[:granted]
	p.pushJob(j)
}

func (shmOrigin) DataCopyCost(p *Process, n int) vtime.Duration {
	return copyCost(n, p.ShmMemBW())
}

// HandleArrival processes one arrived CH3 packet (a shm cell or an
// assembled network packet) and returns the host cost of handling it.
func (p *Process) HandleArrival(hdr shmq.Header, payload []byte, org Origin) vtime.Duration {
	switch hdr.Type {
	case shmq.CellData:
		return p.handleEagerFrag(hdr, payload, org)
	case shmq.CellRTS:
		return p.handleRTS(hdr, org)
	case shmq.CellCTS:
		return p.handleCTS(hdr, org)
	case shmq.CellRdvData:
		return p.handleRdvData(hdr, payload, org)
	}
	panic(fmt.Sprintf("ch3[%d]: unknown packet type %d", p.Rank, hdr.Type))
}

func (p *Process) handleEagerFrag(hdr shmq.Header, payload []byte, org Origin) vtime.Duration {
	key := asmKey{src: hdr.Src, seq: hdr.SeqNo}
	msgLen := int(hdr.MsgLen)

	if a, ok := p.asm[key]; ok {
		// Continuation fragment.
		var cost vtime.Duration
		if a.req != nil {
			n := copySlice(a.req.buf, int(hdr.Offset), payload)
			cost = copyCost(n, p.ShmMemBW())
		} else {
			n := copySlice(a.uq.data, int(hdr.Offset), payload)
			cost = copyCost(n, p.ShmMemBW())
		}
		a.received += len(payload)
		if a.received >= a.msgLen {
			delete(p.asm, key)
			if a.req != nil {
				n := a.msgLen
				if n > len(a.req.buf) {
					n = len(a.req.buf)
				}
				a.req.SetRecvStatus(a.src, a.tag, n, n < a.msgLen)
				a.req.Complete()
			} else {
				a.uq.pendingFrags = 0
			}
		}
		return cost
	}

	// First fragment: match.
	if r := p.MatchPosted(hdr.Ctx, hdr.Src, hdr.Tag); r != nil {
		n := copy(r.buf, payload)
		cost := copyCost(n, p.ShmMemBW())
		if len(payload) >= msgLen {
			lim := msgLen
			if lim > len(r.buf) {
				lim = len(r.buf)
			}
			r.SetRecvStatus(hdr.Src, hdr.Tag, lim, lim < msgLen)
			r.Complete()
			return cost
		}
		p.asm[key] = &assembly{req: r, received: len(payload), msgLen: msgLen,
			ctx: hdr.Ctx, src: hdr.Src, tag: hdr.Tag}
		return cost
	}

	// Unexpected: buffer the whole message (the extra copy of §2.1.3).
	p.rec.Instant("proto", "unexpected",
		trace.Int64("src", int64(hdr.Src)), trace.Int64("bytes", int64(msgLen)))
	u := &uqEntry{ctx: hdr.Ctx, src: hdr.Src, tag: hdr.Tag, msgLen: msgLen,
		data: make([]byte, msgLen), org: org}
	n := copy(u.data, payload)
	cost := copyCost(n, p.ShmMemBW())
	p.UnexpectedLen++
	if len(payload) < msgLen {
		u.pendingFrags = 1
		u.key = key
		p.asm[key] = &assembly{uq: u, received: len(payload), msgLen: msgLen,
			ctx: hdr.Ctx, src: hdr.Src, tag: hdr.Tag}
	}
	p.uq.add(u, p.nextQSeq())
	return cost
}

func (p *Process) handleRTS(hdr shmq.Header, org Origin) vtime.Duration {
	p.rec.Instant("proto", "rts",
		trace.Str("via", org.OriginName()),
		trace.Int64("src", int64(hdr.Src)), trace.Int64("bytes", hdr.MsgLen))
	if r := p.MatchPosted(hdr.Ctx, hdr.Src, hdr.Tag); r != nil {
		return p.startRdvRecv(r, hdr.Src, hdr.Tag, int(hdr.MsgLen), hdr.ReqID, org)
	}
	p.uq.add(&uqEntry{ctx: hdr.Ctx, src: hdr.Src, tag: hdr.Tag,
		msgLen: int(hdr.MsgLen), isRTS: true, rtsCookie: hdr.ReqID, org: org},
		p.nextQSeq())
	p.UnexpectedLen++
	return 0
}

func (p *Process) startRdvRecv(r *Request, src, tag int32, msgLen int, senderCookie uint64, org Origin) vtime.Duration {
	granted := msgLen
	if granted > len(r.buf) {
		granted = len(r.buf)
	}
	r.SetRecvStatus(src, tag, granted, granted < msgLen)
	if granted == 0 {
		cost := org.SendCTS(p, src, senderCookie, 0, 0)
		r.Complete()
		return cost
	}
	p.nextCookie++
	cookie := p.nextCookie
	r.cookie = cookie
	r.remaining = granted
	p.rdvIn[cookie] = r
	return org.SendCTS(p, src, senderCookie, cookie, granted)
}

func (p *Process) handleCTS(hdr shmq.Header, org Origin) vtime.Duration {
	p.rec.Instant("proto", "cts",
		trace.Str("via", org.OriginName()), trace.Int64("granted", hdr.MsgLen))
	r := p.rdvOut[hdr.ReqID]
	if r == nil {
		panic(fmt.Sprintf("ch3[%d]: CTS for unknown cookie %d", p.Rank, hdr.ReqID))
	}
	delete(p.rdvOut, hdr.ReqID)
	granted := int(hdr.MsgLen)
	if granted == 0 {
		r.Complete()
		return p.cfg.CTSCost
	}
	recvCookie := uint64(hdr.Offset)
	org.SendRdvData(p, r, hdr.Src, recvCookie, granted)
	return p.cfg.CTSCost
}

func (p *Process) handleRdvData(hdr shmq.Header, payload []byte, org Origin) vtime.Duration {
	p.rec.Instant("proto", "rdv-data",
		trace.Str("via", org.OriginName()), trace.Int64("bytes", int64(len(payload))))
	r := p.rdvIn[hdr.ReqID]
	if r == nil {
		panic(fmt.Sprintf("ch3[%d]: rdv data for unknown cookie %d", p.Rank, hdr.ReqID))
	}
	copySlice(r.buf, int(hdr.Offset), payload)
	cost := org.DataCopyCost(p, len(payload))
	r.remaining -= len(payload)
	if r.remaining <= 0 {
		delete(p.rdvIn, hdr.ReqID)
		r.Complete()
	}
	return cost
}

// copySlice copies src into dst at off, clipping to dst's length; it
// returns the bytes copied.
func copySlice(dst []byte, off int, src []byte) int {
	if off >= len(dst) {
		return 0
	}
	return copy(dst[off:], src)
}

func copyCost(n int, bw float64) vtime.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / bw * 1e9)
}
