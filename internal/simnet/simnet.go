// Package simnet simulates high-performance network rails (Infiniband,
// Myrinet/MX, TCP) between cluster nodes in virtual time.
//
// The model separates, per message:
//
//   - host submission work (memory registration, copies into pinned buffers,
//     doorbells, chunk pacing) — consumed as CPU time by the *caller*, which
//     is what lets progress engines matter: a stack without a background
//     progress thread performs this work only inside MPI calls;
//   - wire occupancy — each NIC serializes outgoing bytes (txBusy) and each
//     receiving NIC serializes incoming bytes (rxBusy), giving first-order
//     contention when several flows share a NIC;
//   - one-way latency — a constant per rail.
//
// Parameters are calibrated so the endpoints match the numbers reported in
// §4.1 of the paper (see package cluster for the presets).
package simnet

import (
	"fmt"

	"repro/internal/vtime"
)

// RailParams describes one network technology instance.
type RailParams struct {
	Name string
	// Latency is the one-way 0-byte wire+driver latency.
	Latency vtime.Duration
	// BytesPerSec is the peak wire bandwidth.
	BytesPerSec float64
	// PerMsgHost is the fixed host CPU cost to submit one packet
	// (descriptor build + doorbell).
	PerMsgHost vtime.Duration
	// HostCopyBW is the bounce-buffer copy bandwidth for eager submissions
	// (bytes/sec); eager payloads are staged through pre-registered buffers.
	HostCopyBW float64
	// ChunkBytes is the registration granularity for zero-copy rendezvous
	// submissions.
	ChunkBytes int
	// PerChunkHost is the host CPU cost to register one chunk for a
	// zero-copy (rendezvous) transfer.
	PerChunkHost vtime.Duration
	// RegCache, when true, models a registration cache: repeated sends from
	// the same buffer skip the per-chunk registration cost. MVAPICH2 uses
	// one; NewMadeleine registers dynamically on the fly (§4.1.1).
	RegCache bool
	// RecvPerMsgHost is the fixed receiver-side CPU cost to consume a packet.
	RecvPerMsgHost vtime.Duration
	// MaxPacket caps a single wire packet; larger submissions must be split
	// by the caller. Zero means unlimited.
	MaxPacket int
	// Hier holds the incremental cost of crossing each interconnect tier of
	// a hierarchical machine, innermost tier first (switch, then rack, ...).
	// A transfer between nodes at topology distance d pays the first d
	// entries on top of the base Latency/BytesPerSec. Empty means the rail
	// behaves as a single flat switch regardless of the node map.
	Hier []LevelCost
}

// LevelCost is the cost of crossing one interconnect tier: added one-way
// latency, and an effective-bandwidth multiplier modelling oversubscription
// of the uplinks (0 means 1.0, i.e. full bisection at that tier).
type LevelCost struct {
	ExtraLatency vtime.Duration
	BWFactor     float64
}

// Validate reports whether the parameters are usable.
func (rp RailParams) Validate() error {
	if rp.Name == "" {
		return fmt.Errorf("simnet: rail with empty name")
	}
	if rp.Latency <= 0 {
		return fmt.Errorf("simnet: rail %s: non-positive latency", rp.Name)
	}
	if rp.BytesPerSec <= 0 {
		return fmt.Errorf("simnet: rail %s: non-positive bandwidth", rp.Name)
	}
	if rp.ChunkBytes <= 0 {
		return fmt.Errorf("simnet: rail %s: non-positive chunk size", rp.Name)
	}
	for i, lc := range rp.Hier {
		if lc.ExtraLatency < 0 {
			return fmt.Errorf("simnet: rail %s: negative extra latency at tier %d", rp.Name, i)
		}
		if lc.BWFactor < 0 || lc.BWFactor > 1 {
			return fmt.Errorf("simnet: rail %s: bandwidth factor %g at tier %d outside (0, 1]",
				rp.Name, lc.BWFactor, i)
		}
	}
	return nil
}

// pathCost returns the one-way latency and effective bandwidth of a path
// crossing the first d hierarchy tiers.
func (rp RailParams) pathCost(d int) (vtime.Duration, float64) {
	lat, bw := rp.Latency, rp.BytesPerSec
	if d > len(rp.Hier) {
		d = len(rp.Hier)
	}
	for i := 0; i < d; i++ {
		lat += rp.Hier[i].ExtraLatency
		if f := rp.Hier[i].BWFactor; f > 0 {
			bw *= f
		}
	}
	return lat, bw
}

// WireTime returns the serialization time of size bytes at full bandwidth.
func (rp RailParams) WireTime(size int) vtime.Duration {
	if size <= 0 {
		return 0
	}
	return vtime.Duration(float64(size) / rp.BytesPerSec * 1e9)
}

// SubmitEager returns the host CPU cost of an eager submission: fixed
// per-message work plus the copy into a pre-registered bounce buffer.
func (rp RailParams) SubmitEager(size int) vtime.Duration {
	cost := rp.PerMsgHost
	if size > 0 && rp.HostCopyBW > 0 {
		cost += vtime.Duration(float64(size) / rp.HostCopyBW * 1e9)
	}
	return cost
}

// SubmitRdv returns the host CPU cost of a zero-copy rendezvous submission:
// fixed per-message work plus dynamic registration of each chunk, unless the
// registration cache holds the buffer.
func (rp RailParams) SubmitRdv(size int, cached bool) vtime.Duration {
	if cached && rp.RegCache {
		return rp.PerMsgHost
	}
	chunks := 0
	if size > 0 {
		chunks = (size + rp.ChunkBytes - 1) / rp.ChunkBytes
	}
	return rp.PerMsgHost + vtime.Duration(chunks)*rp.PerChunkHost
}

// EstimateXfer is the sampling estimate of the end-to-end one-way transfer
// time for size bytes on an idle rail: latency plus wire time. This is the
// quantity NewMadeleine's network sampling precomputes to derive multirail
// split ratios (§2.2, [4]).
func (rp RailParams) EstimateXfer(size int) vtime.Duration {
	return rp.Latency + rp.WireTime(size)
}

// nic tracks the occupancy of one endpoint of a rail on one node.
type nic struct {
	txBusy vtime.Time
	rxBusy vtime.Time
}

// Rail is an instantiated network: one NIC per node, a shared event engine.
type Rail struct {
	Params RailParams
	ID     int
	e      *vtime.Engine
	nics   []nic
	// dist maps a node pair to its topology distance (crossed tiers); nil
	// means flat (distance 0 everywhere).
	dist func(from, to int) int
	// Stats
	Packets   int64
	BytesSent int64
}

// Network is the set of rails connecting the nodes of a cluster.
type Network struct {
	e     *vtime.Engine
	rails []*Rail
}

// SetDistance installs the node-pair topology distance function on every
// rail — the hook mpi.Run wires a hierarchical cluster's
// topo.Hierarchy.Distance into. Rails whose params carry no Hier costs are
// unaffected; nil restores the flat interpretation.
func (n *Network) SetDistance(dist func(from, to int) int) {
	for _, r := range n.rails {
		r.dist = dist
	}
}

// New instantiates a network with one NIC per (rail, node).
func New(e *vtime.Engine, numNodes int, params ...RailParams) (*Network, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("simnet: %d nodes", numNodes)
	}
	n := &Network{e: e}
	for i, rp := range params {
		if err := rp.Validate(); err != nil {
			return nil, err
		}
		n.rails = append(n.rails, &Rail{Params: rp, ID: i, e: e, nics: make([]nic, numNodes)})
	}
	return n, nil
}

// Rails returns the rails in declaration order.
func (n *Network) Rails() []*Rail { return n.rails }

// Rail returns rail i.
func (n *Network) Rail(i int) *Rail { return n.rails[i] }

// NumRails returns the number of configured rails.
func (n *Network) NumRails() int { return len(n.rails) }

// Delivery carries an arrived wire packet to its consumer callback.
type Delivery struct {
	Rail     *Rail
	From, To int // nodes
	Size     int
	Payload  interface{}
	// ConsumeCost is the receiver host CPU cost to drain this packet from
	// the NIC; progress engines charge it when they pick the packet up.
	ConsumeCost vtime.Duration
}

// Transfer places size bytes on the wire from node `from` to node `to`.
// The caller is responsible for charging host submission cost *before*
// calling Transfer (see RailParams.SubmitCost). onDelivered runs in engine
// context at the virtual time the last byte reaches the destination NIC.
//
// Occupancy model: the sending NIC serializes outgoing packets; the
// receiving NIC serializes incoming packets. For a single uncontended flow
// delivery = start + latency + wire(size); concurrent flows queue.
func (r *Rail) Transfer(from, to, size int, payload interface{}, onDelivered func(Delivery)) {
	if from == to {
		panic("simnet: self-transfer over a network rail")
	}
	if r.Params.MaxPacket > 0 && size > r.Params.MaxPacket {
		panic(fmt.Sprintf("simnet: packet of %d bytes exceeds rail %s max %d",
			size, r.Params.Name, r.Params.MaxPacket))
	}
	now := r.e.Now()
	tx := &r.nics[from]
	rx := &r.nics[to]
	lat, bw := r.Params.Latency, r.Params.BytesPerSec
	if r.dist != nil && len(r.Params.Hier) > 0 {
		lat, bw = r.Params.pathCost(r.dist(from, to))
	}
	wire := vtime.Duration(0)
	if size > 0 {
		wire = vtime.Duration(float64(size) / bw * 1e9)
	}

	start := now
	if tx.txBusy > start {
		start = tx.txBusy
	}
	tx.txBusy = start.Add(wire)

	headArrive := start.Add(lat)
	if rx.rxBusy > headArrive {
		headArrive = rx.rxBusy
	}
	deliver := headArrive.Add(wire)
	rx.rxBusy = deliver

	r.Packets++
	r.BytesSent += int64(size)

	d := Delivery{
		Rail: r, From: from, To: to, Size: size, Payload: payload,
		ConsumeCost: r.Params.RecvPerMsgHost,
	}
	r.e.At(deliver, func() { onDelivered(d) })
}

// TxIdleAt reports the earliest time node's NIC can begin a new transmission.
func (r *Rail) TxIdleAt(node int) vtime.Time { return r.nics[node].txBusy }

// Busy reports whether the node's transmit side is occupied at the current
// virtual time. NewMadeleine's strategies consult this to decide whether to
// submit immediately or accumulate packets for optimization (§2.2).
func (r *Rail) Busy(node int) bool { return r.nics[node].txBusy > r.e.Now() }

// SamplePoint is one entry of a rail's sampling table.
type SamplePoint struct {
	Size int
	Xfer vtime.Duration
}

// SampleTable returns the transfer-time estimates for a standard ladder of
// sizes, emulating NewMadeleine's startup network sampling pass.
func (r *Rail) SampleTable() []SamplePoint {
	var pts []SamplePoint
	for size := 1; size <= 64<<20; size *= 2 {
		pts = append(pts, SamplePoint{Size: size, Xfer: r.Params.EstimateXfer(size)})
	}
	return pts
}
