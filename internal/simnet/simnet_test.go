package simnet

import (
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func testRail() RailParams {
	return RailParams{
		Name:         "test",
		Latency:      1000, // 1 us
		BytesPerSec:  1e9,  // 1 GB/s => 1 ns/byte
		PerMsgHost:   100,
		ChunkBytes:   4096,
		PerChunkHost: 50,
	}
}

func newNet(t *testing.T, nodes int, params ...RailParams) (*vtime.Engine, *Network) {
	t.Helper()
	e := vtime.NewEngine()
	if len(params) == 0 {
		params = []RailParams{testRail()}
	}
	n, err := New(e, nodes, params...)
	if err != nil {
		t.Fatal(err)
	}
	return e, n
}

func TestSingleTransferTiming(t *testing.T) {
	e, n := newNet(t, 2)
	var at vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 1000, "hi", func(d Delivery) {
			at = e.Now()
			if d.Payload.(string) != "hi" {
				t.Error("payload lost")
			}
			if d.From != 0 || d.To != 1 || d.Size != 1000 {
				t.Errorf("delivery meta = %+v", d)
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// latency 1000ns + 1000 bytes at 1ns/byte = 2000ns total.
	if at != 2000 {
		t.Fatalf("delivered at %d, want 2000", at)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	e, n := newNet(t, 2)
	var at vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 0, nil, func(d Delivery) { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 1000 {
		t.Fatalf("0-byte delivered at %d, want latency 1000", at)
	}
}

func TestSenderSerialization(t *testing.T) {
	e, n := newNet(t, 2)
	var first, second vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 1000, nil, func(Delivery) { first = e.Now() })
		n.Rail(0).Transfer(0, 1, 1000, nil, func(Delivery) { second = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 2000 {
		t.Fatalf("first at %d, want 2000", first)
	}
	// Second transfer's wire start is delayed by the first's occupancy.
	if second != 3000 {
		t.Fatalf("second at %d, want 3000 (pipelined)", second)
	}
}

func TestReceiverContention(t *testing.T) {
	// Two senders to one receiver: deliveries serialize at the receiving NIC.
	e, n := newNet(t, 3)
	var a, b vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 2, 1000, nil, func(Delivery) { a = e.Now() })
		n.Rail(0).Transfer(1, 2, 1000, nil, func(Delivery) { b = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 2000 {
		t.Fatalf("a at %d, want 2000", a)
	}
	if b != 3000 {
		t.Fatalf("b at %d, want 3000 (receiver serialized)", b)
	}
}

func TestIndependentFlowsDoNotInterfere(t *testing.T) {
	e, n := newNet(t, 4)
	var a, b vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 1000, nil, func(Delivery) { a = e.Now() })
		n.Rail(0).Transfer(2, 3, 1000, nil, func(Delivery) { b = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 2000 || b != 2000 {
		t.Fatalf("a=%d b=%d, want both 2000", a, b)
	}
}

func TestTwoRailsAreIndependent(t *testing.T) {
	fast := testRail()
	slow := testRail()
	slow.Name = "slow"
	slow.BytesPerSec = 0.5e9
	e, n := newNet(t, 2, fast, slow)
	var a, b vtime.Time
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 1000, nil, func(Delivery) { a = e.Now() })
		n.Rail(1).Transfer(0, 1, 1000, nil, func(Delivery) { b = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 2000 {
		t.Fatalf("fast rail at %d, want 2000", a)
	}
	if b != 3000 {
		t.Fatalf("slow rail at %d, want 3000", b)
	}
}

func TestBusyReporting(t *testing.T) {
	e, n := newNet(t, 2)
	r := n.Rail(0)
	e.At(0, func() {
		if r.Busy(0) {
			t.Error("idle NIC reported busy")
		}
		r.Transfer(0, 1, 10000, nil, func(Delivery) {})
		if !r.Busy(0) {
			t.Error("transmitting NIC reported idle")
		}
	})
	e.At(20001, func() {
		if r.Busy(0) {
			t.Error("NIC still busy after wire drained")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitEagerCost(t *testing.T) {
	rp := testRail()
	rp.HostCopyBW = 1e9 // 1 ns/byte
	if got := rp.SubmitEager(0); got != 100 {
		t.Fatalf("SubmitEager(0) = %d, want PerMsgHost 100", got)
	}
	if got := rp.SubmitEager(1000); got != 1100 {
		t.Fatalf("SubmitEager(1000) = %d, want 1100 (copy charged)", got)
	}
	rp.HostCopyBW = 0 // unset: no copy modeled
	if got := rp.SubmitEager(1000); got != 100 {
		t.Fatalf("SubmitEager with no copy BW = %d, want 100", got)
	}
}

func TestSubmitRdvCost(t *testing.T) {
	rp := testRail() // ChunkBytes 4096, PerChunkHost 50
	if got := rp.SubmitRdv(0, false); got != 100 {
		t.Fatalf("SubmitRdv(0) = %d, want 100", got)
	}
	if got := rp.SubmitRdv(4096, false); got != 150 {
		t.Fatalf("SubmitRdv(4096) = %d, want 150 (one chunk)", got)
	}
	if got := rp.SubmitRdv(4097, false); got != 200 {
		t.Fatalf("SubmitRdv(4097) = %d, want 200 (two chunks)", got)
	}
	// Cached only helps when the rail has a registration cache.
	if got := rp.SubmitRdv(1<<20, true); got != rp.SubmitRdv(1<<20, false) {
		t.Fatal("cache hit on cacheless rail must not help")
	}
	rp.RegCache = true
	if got := rp.SubmitRdv(1<<20, true); got != rp.PerMsgHost {
		t.Fatalf("cached cost = %d, want %d", got, rp.PerMsgHost)
	}
	if got := rp.SubmitRdv(1<<20, false); got == rp.PerMsgHost {
		t.Fatal("cold registration must pay per-chunk cost even with a cache")
	}
}

func TestEstimateAndSampleTable(t *testing.T) {
	rp := testRail()
	if got := rp.EstimateXfer(1000); got != 2000 {
		t.Fatalf("EstimateXfer(1000) = %d, want 2000", got)
	}
	e, n := newNet(t, 2)
	_ = e
	tbl := n.Rail(0).SampleTable()
	if len(tbl) == 0 {
		t.Fatal("empty sample table")
	}
	for i := 1; i < len(tbl); i++ {
		if tbl[i].Xfer <= tbl[i-1].Xfer {
			t.Fatal("sample table not monotonic")
		}
		if tbl[i].Size != tbl[i-1].Size*2 {
			t.Fatal("sample ladder must double")
		}
	}
	if tbl[len(tbl)-1].Size != 64<<20 {
		t.Fatalf("ladder top = %d, want 64MB", tbl[len(tbl)-1].Size)
	}
}

func TestValidation(t *testing.T) {
	e := vtime.NewEngine()
	if _, err := New(e, 0, testRail()); err == nil {
		t.Error("expected error for 0 nodes")
	}
	bad := testRail()
	bad.Latency = 0
	if _, err := New(e, 2, bad); err == nil {
		t.Error("expected error for zero latency")
	}
	bad = testRail()
	bad.Name = ""
	if _, err := New(e, 2, bad); err == nil {
		t.Error("expected error for empty name")
	}
	bad = testRail()
	bad.BytesPerSec = 0
	if _, err := New(e, 2, bad); err == nil {
		t.Error("expected error for zero bandwidth")
	}
	bad = testRail()
	bad.ChunkBytes = 0
	if _, err := New(e, 2, bad); err == nil {
		t.Error("expected error for zero chunk size")
	}
}

func TestSelfTransferPanics(t *testing.T) {
	e, n := newNet(t, 2)
	e.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on self transfer")
			}
		}()
		n.Rail(0).Transfer(1, 1, 10, nil, func(Delivery) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPacketEnforced(t *testing.T) {
	rp := testRail()
	rp.MaxPacket = 100
	e, n := newNet(t, 2, rp)
	e.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on oversized packet")
			}
		}()
		n.Rail(0).Transfer(0, 1, 101, nil, func(Delivery) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, n := newNet(t, 2)
	e.At(0, func() {
		n.Rail(0).Transfer(0, 1, 100, nil, func(Delivery) {})
		n.Rail(0).Transfer(1, 0, 200, nil, func(Delivery) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r := n.Rail(0)
	if r.Packets != 2 || r.BytesSent != 300 {
		t.Fatalf("stats = %d pkts %d bytes, want 2/300", r.Packets, r.BytesSent)
	}
}

// Property: bandwidth is conserved — k back-to-back messages of size s from
// one sender deliver the last one no earlier than latency + k*wire(s).
func TestPropertyBandwidthConservation(t *testing.T) {
	f := func(kRaw, sRaw uint8) bool {
		k := int(kRaw%8) + 1
		s := (int(sRaw) + 1) * 100
		e := vtime.NewEngine()
		n, err := New(e, 2, testRail())
		if err != nil {
			return false
		}
		var last vtime.Time
		e.At(0, func() {
			for i := 0; i < k; i++ {
				n.Rail(0).Transfer(0, 1, s, nil, func(Delivery) { last = e.Now() })
			}
		})
		if e.Run() != nil {
			return false
		}
		wire := testRail().WireTime(s)
		want := vtime.Time(0).Add(testRail().Latency + vtime.Duration(k)*wire)
		return last == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: deliveries on one rail to one node never go backwards in time
// and arrive in FIFO order per sender.
func TestPropertyFIFOPerFlow(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 50 {
			return true
		}
		e := vtime.NewEngine()
		n, err := New(e, 2, testRail())
		if err != nil {
			return false
		}
		var got []int
		e.At(0, func() {
			for i, s := range sizes {
				i := i
				n.Rail(0).Transfer(0, 1, int(s)+1, nil, func(Delivery) {
					got = append(got, i)
				})
			}
		})
		if e.Run() != nil {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return len(got) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
