// Package nmad implements the NewMadeleine communication library (§2.2):
// a message-passing engine that, unlike latency-obsessed libraries, keeps a
// window of pending packets per destination and applies optimization
// strategies (aggregation, multirail distribution) over the accumulated
// communication requests when the network is busy.
//
// The public surface mirrors the nm_sr ("send/receive") interface the paper
// quotes — nm_sr_isend / nm_sr_irecv plus completion queries — with internal
// tag matching, an internal eager/rendezvous protocol, native multirail
// support with sampling-derived split ratios, and *no request cancellation*
// (a posted request must eventually be matched, which is what forces the
// ANY_SOURCE design of §3.2 in the MPICH2 module).
package nmad

import (
	"fmt"

	"repro/internal/vtime"
)

// EntryKind discriminates the entries multiplexed inside a packet wrapper.
type EntryKind uint8

const (
	// EntryEager carries a complete small message in-band.
	EntryEager EntryKind = iota
	// EntryRTS announces a large message (rendezvous request-to-send).
	EntryRTS
	// EntryCTS grants a rendezvous (clear-to-send), sender-bound.
	EntryCTS
	// EntryData carries one chunk of rendezvous payload.
	EntryData
)

func (k EntryKind) String() string {
	switch k {
	case EntryEager:
		return "eager"
	case EntryRTS:
		return "rts"
	case EntryCTS:
		return "cts"
	case EntryData:
		return "data"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Wire-format overheads (bytes) charged for headers on the simulated wire.
const (
	pwHeaderBytes    = 24 // per packet wrapper
	entryHeaderBytes = 24 // per multiplexed entry
)

// Entry is one logical unit inside a packet wrapper.
type Entry struct {
	Kind EntryKind
	Tag  uint64
	Seq  uint32
	// MsgLen is the total message length (RTS announces it; eager carries
	// len(Data) == MsgLen).
	MsgLen int
	// PackID identifies the sender-side pack for RTS/CTS routing.
	PackID uint64
	// RecvID identifies the receiver-side request for CTS/Data routing.
	RecvID uint64
	// Offset is the chunk offset for EntryData.
	Offset int
	Data   []byte
}

func (en Entry) wireSize() int { return entryHeaderBytes + len(en.Data) }

// Packet is a packet wrapper: one wire transmission possibly aggregating
// several entries bound for the same gate (destination process).
type Packet struct {
	From, To int // ranks
	Entries  []Entry
}

// WireSize is the number of bytes the packet occupies on the wire.
func (pw *Packet) WireSize() int {
	s := pwHeaderBytes
	for _, en := range pw.Entries {
		s += en.wireSize()
	}
	return s
}

// Status describes a completed receive.
type Status struct {
	// Peer is the rank the message came from.
	Peer int
	// Tag is the matched tag.
	Tag uint64
	// Len is the number of payload bytes delivered.
	Len int
	// Truncated reports that the message was longer than the posted buffer.
	Truncated bool
}

// reqKind discriminates request flavours.
type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is an opaque in-flight operation handle (the nmad_request of the
// paper). Requests are allocated internally by ISend/IRecv; they cannot be
// cancelled — once posted, a request must eventually complete (§2.2.1).
type Request struct {
	kind reqKind
	core *Core
	done bool

	// Send side.
	gate *Gate
	tag  uint64
	data []byte
	seq  uint32
	id   uint64
	rdv  bool
	// pin, when non-zero, pins this pack to rail pin-1 instead of letting
	// the strategy place it (the collective engine's stripe assignments ride
	// this; see Core.ISendRail).
	pin int
	// finished marks a send whose protocol work is done; actual completion
	// is deferred until every earlier send on the same gate has finished
	// (FIFO completion order, enforced by Core.finishSend).
	finished bool
	// acked counts rendezvous payload bytes known to have left/arrived.
	acked int

	// Recv side.
	mask    uint64
	buf     []byte
	anyGate bool
	status  Status

	// OnComplete, if set, runs exactly once when the request completes,
	// in progress context. The MPICH2 module uses it to mark the paired
	// CH3 request complete (§3.1.1). Prefer SetOnComplete, which handles
	// requests that completed synchronously (e.g. a receive satisfied from
	// the unexpected store inside IRecv).
	OnComplete func(*Request)
}

// SetOnComplete installs the completion callback; if the request already
// completed it fires immediately.
func (r *Request) SetOnComplete(f func(*Request)) {
	if r.done {
		f(r)
		return
	}
	r.OnComplete = f
}

// Done reports completion.
func (r *Request) Done() bool { return r.done }

// Status returns the receive status; valid once Done() for receive requests.
func (r *Request) Status() Status { return r.status }

// IsRecv reports whether this is a receive request.
func (r *Request) IsRecv() bool { return r.kind == reqRecv }

func (r *Request) complete() {
	if r.done {
		return
	}
	r.done = true
	if r.OnComplete != nil {
		r.OnComplete(r)
	}
}

// CopyCost models a memory copy of n bytes at the node's copy bandwidth.
func copyCost(n int, memBW float64) vtime.Duration {
	if n <= 0 || memBW <= 0 {
		return 0
	}
	return vtime.Duration(float64(n) / memBW * 1e9)
}
