package nmad

import (
	"bytes"
	"testing"

	"repro/internal/vtime"
)

func TestISendRailStripesSubThreshold(t *testing.T) {
	// A striped sub-threshold pack (hint -2) must take the rendezvous path
	// and water-fill across both rails, even though the eager path would
	// have kept it whole on the best rail.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := make([]byte, 16<<10) // below the 32 KiB rendezvous threshold
	for i := range msg {
		msg[i] = byte(i >> 3)
	}
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, -2))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("striped send corrupted payload")
	}
	// Both rails must carry a real payload share (waterfill of 16 KiB over
	// these rails gives each well over 6 KiB; control entries are ~tens of
	// bytes, so payload on a rail is unmistakable).
	if ib := ev.net.Rail(0).BytesSent; ib < 6<<10 {
		t.Fatalf("rail 0 carried %d bytes, want a payload share", ib)
	}
	if mx := ev.net.Rail(1).BytesSent; mx < 6<<10 {
		t.Fatalf("rail 1 carried %d bytes, want a payload share", mx)
	}
}

func TestISendRailStripeWidthClamps(t *testing.T) {
	// Widths beyond the rail count clamp to it; width 1 and single-rail
	// stacks degrade to plain strategy placement (no forced rendezvous).
	two := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	g := two.cores[0].Gate(1)
	if r := two.cores[0].ISendRail(g, 1, make([]byte, 100), -9); r.pin != -2 || !r.rdv {
		t.Fatalf("hint -9 on two rails: pin=%d rdv=%v, want pin=-2 forced rdv", r.pin, r.rdv)
	}
	if r := two.cores[0].ISendRail(g, 2, make([]byte, 100), -1); r.pin != 0 || r.rdv {
		t.Fatalf("width 1 must fall back to auto placement: pin=%d rdv=%v", r.pin, r.rdv)
	}
	one := newEnv(t, 2, StratSplitBalance, ibRail())
	if r := one.cores[0].ISendRail(one.cores[0].Gate(1), 1, make([]byte, 100), -2); r.pin != 0 || r.rdv {
		t.Fatalf("stripe on a single rail must fall back to auto placement: pin=%d rdv=%v", r.pin, r.rdv)
	}
}

func TestISendRailStripeRestrictedToPrefix(t *testing.T) {
	// Width 2 on a three-rail stack must keep every payload byte on the
	// first two rails — the stripe names a rail prefix, not "any rails the
	// strategy likes".
	third := mxRail()
	third.Name = "mx2"
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail(), third)
	msg := make([]byte, 1<<20)
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, -2))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if r2 := ev.net.Rail(2).BytesSent; r2 > 1<<10 {
		t.Fatalf("payload leaked onto rail outside the stripe: %d bytes", r2)
	}
	if ib, mx := ev.net.Rail(0).BytesSent, ev.net.Rail(1).BytesSent; ib < 100<<10 || mx < 100<<10 {
		t.Fatalf("stripe rails unbalanced: ib=%d mx=%d", ib, mx)
	}
}

func TestStripedTinyPayloadCollapsesToOneRail(t *testing.T) {
	// A striped pack whose waterfill shares all fall below MinSplit must
	// collapse onto the stripe's best rail — still correct, still
	// rendezvous, just unsplit.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := []byte("tiny striped payload")
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, -2))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("tiny striped send corrupted payload")
	}
	if mx := ev.net.Rail(1).BytesSent; mx > int64(len(msg)/2) {
		t.Fatalf("tiny payload should collapse onto the fast rail, rail 1 got %d bytes", mx)
	}
}

func TestStripedSegmentStreamInOrder(t *testing.T) {
	// A stream of same-tag striped segments — exactly what a rail-striped
	// pipeline schedule emits — must land in posted order even though every
	// segment's chunks race over both rails. The RTS entries all ride the
	// control rail, so matching order is preserved; the data chunks are
	// offset-addressed, so their arrival order is irrelevant.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	const n, seg = 8, 16 << 10
	msgs := make([][]byte, n)
	for k := range msgs {
		msgs[k] = make([]byte, seg)
		for i := range msgs[k] {
			msgs[k][i] = byte(31*k + i)
		}
	}
	got := make([][]byte, n)
	for k := range got {
		got[k] = make([]byte, seg)
	}
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			reqs := make([]*Request, n)
			for k := 0; k < n; k++ {
				reqs[k] = ev.cores[0].ISendRail(ev.cores[0].Gate(1), 7, msgs[k], -2)
			}
			for _, r := range reqs {
				ev.wait(0, p, r)
			}
		} else {
			for k := 0; k < n; k++ {
				ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 7, ^uint64(0), got[k]))
			}
		}
	})
	for k := range msgs {
		if !bytes.Equal(got[k], msgs[k]) {
			t.Fatalf("segment %d landed out of order or corrupted", k)
		}
	}
}

func TestBalancedSharesRestrictedSetConserves(t *testing.T) {
	third := mxRail()
	third.Name = "mx2"
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail(), third)
	const size = 1 << 20
	shares := balancedShares(ev.cores[0], []int{0, 1}, size)
	total := 0
	for _, sh := range shares {
		if sh.Rail != 0 && sh.Rail != 1 {
			t.Fatalf("share outside the active set: %v", shares)
		}
		total += sh.Len
	}
	if total != size {
		t.Fatalf("conservation broken: %d != %d", total, size)
	}
	if len(shares) != 2 {
		t.Fatalf("1 MiB over two rails should split, got %v", shares)
	}
}
