package nmad

import (
	"fmt"

	"repro/internal/simnet"
	"repro/internal/vtime"
)

// StrategyKind selects a packet scheduling strategy.
type StrategyKind int

const (
	// StratDefault submits every pack immediately as its own packet wrapper
	// on the rail with the best estimated transfer time for its size.
	StratDefault StrategyKind = iota
	// StratAggreg behaves like StratDefault on an idle NIC but, when the
	// NIC is busy, accumulates pending packs and submits them as a single
	// aggregated packet wrapper once the NIC drains (§2.2: "when a network
	// becomes idle, it has the possibility to apply optimizations on the
	// accumulated communication requests").
	StratAggreg
	// StratSplitBalance adds multirail distribution: small messages go to
	// the lowest-latency rail, large rendezvous payloads are split across
	// all rails with a sampling-derived ratio so that every rail finishes
	// at the same time (§2.2, [4]).
	StratSplitBalance
	// StratSplitStatic is the naive multirail baseline: rendezvous payloads
	// are split in equal shares regardless of rail performance (the
	// ablation foil for the sampling-derived ratio).
	StratSplitStatic
)

func (k StrategyKind) String() string {
	switch k {
	case StratDefault:
		return "default"
	case StratAggreg:
		return "aggreg"
	case StratSplitBalance:
		return "split_balance"
	case StratSplitStatic:
		return "split_static"
	}
	return fmt.Sprintf("strategy(%d)", int(k))
}

// Share is one rail's portion of a split rendezvous payload.
type Share struct {
	Rail   int
	Offset int
	Len    int
}

// Strategy decides how packs on a gate's outlist become wire packets and how
// rendezvous payloads are distributed over rails.
type Strategy interface {
	Name() string
	// Schedule consumes packs from g's outlist and submits packet wrappers.
	// Runs in progress context.
	Schedule(c *Core, g *Gate)
	// SplitRdv partitions size bytes of rendezvous payload into rail shares.
	SplitRdv(c *Core, size int) []Share
}

func newStrategy(k StrategyKind) Strategy {
	switch k {
	case StratDefault:
		return stratDefault{}
	case StratAggreg:
		return stratAggreg{}
	case StratSplitBalance:
		return stratSplit{}
	case StratSplitStatic:
		return stratSplitStatic{}
	default:
		panic(fmt.Sprintf("nmad: unknown strategy %d", k))
	}
}

// packEntry converts a send pack into its wire entry (eager data or RTS).
func packEntry(c *Core, r *Request) Entry {
	if r.rdv {
		return Entry{Kind: EntryRTS, Tag: r.tag, Seq: r.seq, MsgLen: len(r.data), PackID: r.id}
	}
	return Entry{Kind: EntryEager, Tag: r.tag, Seq: r.seq, MsgLen: len(r.data), Data: r.data}
}

// ---- strat_default -------------------------------------------------------

type stratDefault struct{}

func (stratDefault) Name() string { return "default" }

func (stratDefault) Schedule(c *Core, g *Gate) {
	for len(g.outlist) > 0 {
		r := g.outlist[0]
		g.outlist = g.outlist[1:]
		pw := &Packet{From: c.rank, To: g.PeerRank, Entries: []Entry{packEntry(c, r)}}
		c.submit(g, pw, c.railFor(r), []*Request{r}, false)
	}
}

func (stratDefault) SplitRdv(c *Core, size int) []Share {
	return []Share{{Rail: c.bestRail(size), Offset: 0, Len: size}}
}

// ---- strat_aggreg --------------------------------------------------------

type stratAggreg struct{}

func (stratAggreg) Name() string { return "aggreg" }

func (stratAggreg) Schedule(c *Core, g *Gate) {
	for len(g.outlist) > 0 {
		head := g.outlist[0]
		rail := c.railFor(head)
		if c.opt.Rails[rail].Busy(c.node) {
			// NIC busy: keep the window of packets and revisit when idle.
			c.armIdleKick(g, rail)
			return
		}
		// NIC idle: submit the head pack, aggregating as many queued small
		// packs as fit under AggregMax into the same packet wrapper.
		var entries []Entry
		var sends []*Request
		payload := 0
		for len(g.outlist) > 0 {
			r := g.outlist[0]
			if r.pin != head.pin {
				// Differently-pinned packs must not share a wrapper: the
				// wrapper rides one rail and cross-aggregating would silently
				// move a pinned pack off its assigned rail.
				break
			}
			sz := len(r.data)
			if r.rdv {
				sz = 0 // RTS entries are header-only
			}
			if len(entries) > 0 && payload+sz > c.opt.AggregMax {
				break
			}
			g.outlist = g.outlist[1:]
			entries = append(entries, packEntry(c, r))
			sends = append(sends, r)
			payload += sz
		}
		pw := &Packet{From: c.rank, To: g.PeerRank, Entries: entries}
		c.submit(g, pw, rail, sends, false)
	}
}

func (stratAggreg) SplitRdv(c *Core, size int) []Share {
	return stratDefault{}.SplitRdv(c, size)
}

// ---- strat_split_balance -------------------------------------------------

type stratSplit struct{}

func (stratSplit) Name() string { return "split_balance" }

// Schedule: control and eager traffic behaves like the aggregation strategy
// (fastest rail, aggregate under pressure).
func (stratSplit) Schedule(c *Core, g *Gate) { stratAggreg{}.Schedule(c, g) }

// SplitRdv solves the water-filling problem min over splits of
// max_i(L_i + s_i/B_i) using the rails' sampling estimates: find t* with
// sum_i max(0, (t*-L_i)*B_i) = size, then s_i = (t*-L_i)*B_i. Rails whose
// share falls below MinSplit are dropped and the remainder recomputed, so
// small messages naturally collapse onto the fastest rail.
func (stratSplit) SplitRdv(c *Core, size int) []Share {
	if size <= 0 {
		return nil
	}
	active := make([]int, len(c.opt.Rails))
	for i := range active {
		active[i] = i
	}
	return balancedShares(c, active, size)
}

// balancedShares water-fills size bytes over the given rail set, iteratively
// dropping rails whose share falls below MinSplit (but always keeping one),
// so small payloads naturally collapse onto the set's fastest rail. The
// split strategy runs it over every rail; striped sends (Request.pin < 0)
// run it over the stripe's rail prefix only.
func balancedShares(c *Core, active []int, size int) []Share {
	for {
		shares := waterfill(c, active, size)
		kept := active[:0]
		for i, s := range shares {
			if s >= c.opt.MinSplit || len(active) == 1 {
				kept = append(kept, active[i])
			}
		}
		if len(kept) == 0 {
			best := active[0]
			for _, a := range active[1:] {
				if c.opt.Rails[a].Params.EstimateXfer(size) <
					c.opt.Rails[best].Params.EstimateXfer(size) {
					best = a
				}
			}
			kept = append(kept, best)
		}
		if len(kept) == len(active) {
			return buildShares(active, shares, size)
		}
		active = kept
		if len(active) == 1 {
			return []Share{{Rail: active[0], Offset: 0, Len: size}}
		}
	}
}

// ---- strat_split_static ----------------------------------------------------

type stratSplitStatic struct{}

func (stratSplitStatic) Name() string { return "split_static" }

func (stratSplitStatic) Schedule(c *Core, g *Gate) { stratAggreg{}.Schedule(c, g) }

func (stratSplitStatic) SplitRdv(c *Core, size int) []Share {
	n := len(c.opt.Rails)
	if size <= 0 {
		return nil
	}
	if n == 1 || size < n*c.opt.MinSplit {
		return []Share{{Rail: c.bestRail(size), Offset: 0, Len: size}}
	}
	per := size / n
	var out []Share
	off := 0
	for i := 0; i < n; i++ {
		l := per
		if i == n-1 {
			l = size - off
		}
		out = append(out, Share{Rail: i, Offset: off, Len: l})
		off += l
	}
	return out
}

// SplitPreview returns the shares strategy kind would assign to a
// rendezvous payload of size bytes over rails, without running any traffic
// — the pure sampling-derived split computation of §2.2, exposed so
// benchmark tooling (cmd/multirail -json) can report split ratios
// machine-readably. minSplit 0 means the library default.
func SplitPreview(kind StrategyKind, rails []*simnet.Rail, minSplit, size int) []Share {
	if minSplit == 0 {
		minSplit = 4 << 10
	}
	c := &Core{opt: Options{Rails: rails, MinSplit: minSplit}}
	return newStrategy(kind).SplitRdv(c, size)
}

// waterfill returns per-rail byte counts (aligned with active) equalizing
// completion times.
func waterfill(c *Core, active []int, size int) []int {
	// Solve sum_i max(0,(t-L_i))*B_i = size for t by accumulating rails in
	// latency order analytically.
	type rl struct {
		lat vtime.Duration
		bw  float64
		idx int // position in active
	}
	rails := make([]rl, len(active))
	for i, a := range active {
		p := c.opt.Rails[a].Params
		rails[i] = rl{lat: p.Latency, bw: p.BytesPerSec, idx: i}
	}
	// Insertion sort by latency (tiny N).
	for i := 1; i < len(rails); i++ {
		for j := i; j > 0 && rails[j].lat < rails[j-1].lat; j-- {
			rails[j], rails[j-1] = rails[j-1], rails[j]
		}
	}
	shares := make([]int, len(active))
	remaining := float64(size)
	// Try using the first k rails for k = len..1: compute t and check that
	// t >= L_k for all used rails.
	for k := len(rails); k >= 1; k-- {
		sumB := 0.0
		sumLB := 0.0
		for i := 0; i < k; i++ {
			sumB += rails[i].bw
			sumLB += rails[i].lat.Seconds() * rails[i].bw
		}
		t := (remaining + sumLB) / sumB // seconds
		if k > 1 && t < rails[k-1].lat.Seconds() {
			continue // slowest-started rail would get negative bytes
		}
		total := 0
		for i := 0; i < k; i++ {
			s := int((t - rails[i].lat.Seconds()) * rails[i].bw)
			if s < 0 {
				s = 0
			}
			shares[rails[i].idx] = s
			total += s
		}
		// Fix rounding drift on the fastest rail.
		shares[rails[0].idx] += size - total
		break
	}
	return shares
}

func buildShares(active []int, sizes []int, total int) []Share {
	var out []Share
	off := 0
	for i, a := range active {
		if sizes[i] <= 0 {
			continue
		}
		n := sizes[i]
		if off+n > total {
			n = total - off
		}
		if n <= 0 {
			continue
		}
		out = append(out, Share{Rail: a, Offset: off, Len: n})
		off += n
	}
	if off < total && len(out) > 0 {
		out[len(out)-1].Len += total - off
	}
	return out
}
