package nmad

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/marcel"
	"repro/internal/pioman"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// env wires two (or more) cores over a simulated network with per-process
// pioman managers in polling mode, mirroring how the MPICH2 module drives
// NewMadeleine.
type env struct {
	e     *vtime.Engine
	net   *simnet.Network
	cores []*Core
	mgrs  []*pioman.Manager
}

func ibRail() simnet.RailParams {
	return simnet.RailParams{
		Name: "ib", Latency: 1200, BytesPerSec: 1.25e9,
		PerMsgHost: 200, ChunkBytes: 64 << 10, PerChunkHost: 300, RecvPerMsgHost: 150,
	}
}

func mxRail() simnet.RailParams {
	return simnet.RailParams{
		Name: "mx", Latency: 2000, BytesPerSec: 1.15e9,
		PerMsgHost: 250, ChunkBytes: 32 << 10, PerChunkHost: 350, RecvPerMsgHost: 180,
	}
}

// newEnv builds n processes, one per node, fully connected.
func newEnv(t *testing.T, n int, strat StrategyKind, railParams ...simnet.RailParams) *env {
	t.Helper()
	if len(railParams) == 0 {
		railParams = []simnet.RailParams{ibRail()}
	}
	e := vtime.NewEngine()
	net, err := simnet.New(e, n, railParams...)
	if err != nil {
		t.Fatal(err)
	}
	ev := &env{e: e, net: net}
	for i := 0; i < n; i++ {
		node := marcel.NewNode(e, fmt.Sprintf("n%d", i), 8)
		mgr := pioman.New(e, node, fmt.Sprintf("p%d", i), pioman.Config{})
		core := New(e, i, i, Options{
			Strategy: strat,
			Rails:    net.Rails(),
			PostTask: func(cost vtime.Duration, run func()) {
				mgr.PostTask(pioman.Task{Cost: cost, Run: run})
			},
			Notify: mgr.Notify,
		})
		mgr.Register(core, pioman.ClassNet)
		ev.cores = append(ev.cores, core)
		ev.mgrs = append(ev.mgrs, mgr)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ev.cores[i].Connect(ev.cores[j])
			}
		}
	}
	return ev
}

// run spawns fn(rank) as the app thread of each rank and drives to drain.
func (ev *env) run(t *testing.T, fn func(rank int, p *vtime.Proc)) {
	t.Helper()
	for i := range ev.cores {
		i := i
		ev.e.Spawn(fmt.Sprintf("app%d", i), func(p *vtime.Proc) { fn(i, p) })
	}
	if err := ev.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func (ev *env) wait(rank int, p *vtime.Proc, r *Request) {
	ev.mgrs[rank].WaitUntil(p, r.Done)
}

func TestEagerSendRecv(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	msg := []byte("hello, newmadeleine")
	got := make([]byte, 64)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		switch rank {
		case 0:
			r := ev.cores[0].ISend(ev.cores[0].Gate(1), 7, msg)
			ev.wait(0, p, r)
		case 1:
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 7, ^uint64(0), got)
			ev.wait(1, p, r)
			st = r.Status()
		}
	})
	if !bytes.Equal(got[:st.Len], msg) {
		t.Fatalf("payload = %q", got[:st.Len])
	}
	if st.Peer != 0 || st.Tag != 7 || st.Truncated {
		t.Fatalf("status = %+v", st)
	}
}

func TestEagerLatencyComponents(t *testing.T) {
	// One-way 0-ish byte latency must include wire latency plus submission
	// and receive handling; verify it is in the right ballpark and that a
	// bigger message takes longer.
	for _, size := range []int{1, 4096} {
		ev := newEnv(t, 2, StratDefault)
		var arrived vtime.Time
		msg := make([]byte, size)
		got := make([]byte, size)
		ev.run(t, func(rank int, p *vtime.Proc) {
			if rank == 0 {
				r := ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg)
				ev.wait(0, p, r)
			} else {
				r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), got)
				ev.wait(1, p, r)
				arrived = p.Now()
			}
		})
		min := ibRail().Latency
		if vtime.Duration(arrived) <= min {
			t.Fatalf("size %d: arrival %d <= wire latency %d", size, arrived, min)
		}
		if vtime.Duration(arrived) > 100*vtime.Microsecond {
			t.Fatalf("size %d: arrival %d implausibly late", size, arrived)
		}
	}
}

func TestUnexpectedMessageBufferedAndDelivered(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	msg := []byte("early bird")
	got := make([]byte, 32)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		switch rank {
		case 0:
			r := ev.cores[0].ISend(ev.cores[0].Gate(1), 3, msg)
			ev.wait(0, p, r)
		case 1:
			// Let the message arrive unexpected first.
			p.Sleep(50 * vtime.Microsecond)
			ev.mgrs[1].Progress(p)
			if ev.cores[1].UnexpectedCount() != 1 {
				t.Errorf("unexpected count = %d, want 1", ev.cores[1].UnexpectedCount())
			}
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got)
			ev.wait(1, p, r)
			st = r.Status()
		}
	})
	if !bytes.Equal(got[:st.Len], msg) {
		t.Fatalf("payload = %q", got[:st.Len])
	}
	if ev.cores[1].UnexpectedCount() != 0 {
		t.Fatal("unexpected store not drained")
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	msg := make([]byte, 256<<10) // > 32K threshold
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		switch rank {
		case 0:
			r := ev.cores[0].ISend(ev.cores[0].Gate(1), 9, msg)
			ev.wait(0, p, r)
		case 1:
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 9, ^uint64(0), got)
			ev.wait(1, p, r)
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("rendezvous payload corrupted")
	}
	if ev.cores[1].RdvStarted != 1 {
		t.Fatalf("RdvStarted = %d, want 1", ev.cores[1].RdvStarted)
	}
}

func TestRendezvousUnexpectedRTS(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	msg := make([]byte, 100<<10)
	for i := range msg {
		msg[i] = byte(i)
	}
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		switch rank {
		case 0:
			r := ev.cores[0].ISend(ev.cores[0].Gate(1), 5, msg)
			ev.wait(0, p, r)
		case 1:
			p.Sleep(100 * vtime.Microsecond) // RTS arrives unexpected
			ev.mgrs[1].Progress(p)
			if _, ok := ev.cores[1].IProbe(5, ^uint64(0)); !ok {
				t.Error("IProbe should see the unexpected RTS")
			}
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 5, ^uint64(0), got)
			ev.wait(1, p, r)
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("late-posted rendezvous corrupted")
	}
}

func TestTruncationEager(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	msg := []byte("0123456789")
	got := make([]byte, 4)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg))
		} else {
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), got)
			ev.wait(1, p, r)
			st = r.Status()
		}
	})
	if !st.Truncated || st.Len != 4 || string(got) != "0123" {
		t.Fatalf("status %+v payload %q", st, got)
	}
}

func TestTagMatchingSelectsCorrectMessage(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	bufA := make([]byte, 8)
	bufB := make([]byte, 8)
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.cores[0].ISend(ev.cores[0].Gate(1), 100, []byte("tag100"))
			r := ev.cores[0].ISend(ev.cores[0].Gate(1), 200, []byte("tag200"))
			ev.wait(0, p, r)
		} else {
			// Post tag 200 first: must not receive the tag-100 message.
			rB := ev.cores[1].IRecv(ev.cores[1].Gate(0), 200, ^uint64(0), bufB)
			rA := ev.cores[1].IRecv(ev.cores[1].Gate(0), 100, ^uint64(0), bufA)
			ev.wait(1, p, rB)
			ev.wait(1, p, rA)
		}
	})
	if string(bufA[:6]) != "tag100" || string(bufB[:6]) != "tag200" {
		t.Fatalf("bufA=%q bufB=%q", bufA, bufB)
	}
}

func TestTagMaskMatching(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	buf := make([]byte, 8)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 0xAB42, []byte("masked")))
		} else {
			// Match only the high byte: any tag 0xABxx is accepted.
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 0xAB00, 0xFF00, buf)
			ev.wait(1, p, r)
			st = r.Status()
		}
	})
	if st.Tag != 0xAB42 || string(buf[:6]) != "masked" {
		t.Fatalf("status %+v buf %q", st, buf)
	}
}

func TestAnyGateRecv(t *testing.T) {
	ev := newEnv(t, 3, StratDefault)
	buf := make([]byte, 16)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		switch rank {
		case 2:
			r := ev.cores[2].IRecv(nil, 4, ^uint64(0), buf)
			ev.wait(2, p, r)
			st = r.Status()
		case 1:
			p.Sleep(10 * vtime.Microsecond)
			ev.wait(1, p, ev.cores[1].ISend(ev.cores[1].Gate(2), 4, []byte("from-1")))
		}
	})
	if st.Peer != 1 || string(buf[:6]) != "from-1" {
		t.Fatalf("status %+v buf %q", st, buf)
	}
}

func TestIProbeDoesNotConsume(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 8, []byte("probe me")))
		} else {
			p.Sleep(50 * vtime.Microsecond)
			ev.mgrs[1].Progress(p)
			g, ok := ev.cores[1].IProbe(8, ^uint64(0))
			if !ok || g.PeerRank != 0 {
				t.Errorf("probe = (%v,%v)", g, ok)
			}
			// Probe again: still there.
			if _, ok := ev.cores[1].IProbe(8, ^uint64(0)); !ok {
				t.Error("second probe failed: probe consumed the message")
			}
			buf := make([]byte, 16)
			r := ev.cores[1].IRecv(g, 8, ^uint64(0), buf)
			ev.wait(1, p, r)
			if _, ok := ev.cores[1].IProbe(8, ^uint64(0)); ok {
				t.Error("probe matched after message consumed")
			}
		}
	})
}

func TestFIFOOrderingSameTag(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	const n = 20
	var got []byte
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			var last *Request
			for i := 0; i < n; i++ {
				last = ev.cores[0].ISend(ev.cores[0].Gate(1), 1, []byte{byte(i)})
			}
			ev.wait(0, p, last)
		} else {
			for i := 0; i < n; i++ {
				buf := make([]byte, 1)
				r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf)
				ev.wait(1, p, r)
				got = append(got, buf[0])
			}
		}
	})
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestAggregationUnderBusyNIC(t *testing.T) {
	ev := newEnv(t, 2, StratAggreg)
	const n = 16
	msg := make([]byte, 2048)
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			var last *Request
			for i := 0; i < n; i++ {
				last = ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg)
			}
			ev.wait(0, p, last)
		} else {
			for i := 0; i < n; i++ {
				buf := make([]byte, 2048)
				r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf)
				ev.wait(1, p, r)
			}
		}
	})
	if ev.cores[0].PwsSent >= n {
		t.Fatalf("aggregation sent %d pws for %d messages (no aggregation happened)",
			ev.cores[0].PwsSent, n)
	}
	if ev.cores[0].Aggregated == 0 {
		t.Fatal("no entries were aggregated")
	}
}

func TestDefaultStrategyDoesNotAggregate(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	const n = 8
	msg := make([]byte, 2048)
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			var last *Request
			for i := 0; i < n; i++ {
				last = ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg)
			}
			ev.wait(0, p, last)
		} else {
			for i := 0; i < n; i++ {
				buf := make([]byte, 2048)
				ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf))
			}
		}
	})
	if ev.cores[0].PwsSent != n {
		t.Fatalf("default strategy sent %d pws, want %d", ev.cores[0].PwsSent, n)
	}
}

func TestMultirailSplitLargeMessage(t *testing.T) {
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := make([]byte, 4<<20)
	for i := range msg {
		msg[i] = byte(i >> 8)
	}
	got := make([]byte, len(msg))
	var done vtime.Time
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 2, msg))
		} else {
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 2, ^uint64(0), got)
			ev.wait(1, p, r)
			done = p.Now()
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("split payload corrupted")
	}
	// Both rails must have carried payload.
	ib, mx := ev.net.Rail(0), ev.net.Rail(1)
	if ib.BytesSent < 1<<20 || mx.BytesSent < 1<<20 {
		t.Fatalf("split unbalanced: ib=%d mx=%d", ib.BytesSent, mx.BytesSent)
	}
	// Aggregate bandwidth: the transfer must beat the best single rail.
	single := ibRail().EstimateXfer(len(msg))
	if vtime.Duration(done) >= single {
		t.Fatalf("multirail %v not faster than single-rail estimate %v", done, single)
	}
}

func TestSplitSmallMessageUsesFastestRailOnly(t *testing.T) {
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := make([]byte, 1024) // eager: below rdv threshold
	got := make([]byte, 1024)
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), got))
		}
	})
	if ev.net.Rail(1).Packets != 0 {
		t.Fatalf("small message used the slow rail (%d packets)", ev.net.Rail(1).Packets)
	}
}

func TestNoCancellationRequestStaysPending(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	buf := make([]byte, 8)
	var req *Request
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 1 {
			req = ev.cores[1].IRecv(ev.cores[1].Gate(0), 42, ^uint64(0), buf)
			p.Sleep(vtime.Millisecond)
		}
	})
	if req.Done() {
		t.Fatal("unmatched request completed spontaneously")
	}
	if ev.cores[1].PostedRecvs() != 1 {
		t.Fatalf("posted recvs = %d, want 1 (no cancellation support)", ev.cores[1].PostedRecvs())
	}
}

func TestOnCompleteCallback(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	fired := 0
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, []byte("cb")))
		} else {
			buf := make([]byte, 4)
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf)
			r.OnComplete = func(rr *Request) {
				if rr != r {
					t.Error("callback got wrong request")
				}
				fired++
			}
			ev.wait(1, p, r)
		}
	})
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", fired)
	}
}

func TestZeroByteMessage(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, nil))
		} else {
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), nil)
			ev.wait(1, p, r)
			st = r.Status()
		}
	})
	if st.Len != 0 || st.Truncated {
		t.Fatalf("status = %+v", st)
	}
}

// Property: waterfill conserves bytes and never produces negative shares.
func TestPropertySplitConservation(t *testing.T) {
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	strat := stratSplit{}
	f := func(szRaw uint32) bool {
		size := int(szRaw%(64<<20)) + 1
		shares := strat.SplitRdv(ev.cores[0], size)
		total := 0
		lastEnd := 0
		for _, s := range shares {
			if s.Len <= 0 || s.Offset != lastEnd {
				return false
			}
			if s.Rail < 0 || s.Rail >= 2 {
				return false
			}
			total += s.Len
			lastEnd = s.Offset + s.Len
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the split ratio approaches the bandwidth ratio for huge
// messages on rails with equal latency.
func TestSplitRatioTracksBandwidth(t *testing.T) {
	fast := ibRail()
	slow := ibRail()
	slow.Name = "slow"
	slow.BytesPerSec = fast.BytesPerSec / 3
	ev := newEnv(t, 2, StratSplitBalance, fast, slow)
	shares := stratSplit{}.SplitRdv(ev.cores[0], 64<<20)
	if len(shares) != 2 {
		t.Fatalf("want 2 shares, got %v", shares)
	}
	ratio := float64(shares[0].Len) / float64(shares[1].Len)
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("split ratio %.2f, want ~3.0", ratio)
	}
}

// Property: FIFO ordering holds for any message size mix on one tag.
func TestPropertyOrderingMixedSizes(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 12 {
			return true
		}
		sizes := make([]int, len(sizesRaw))
		for i, s := range sizesRaw {
			sizes[i] = int(s)*17 + 1 // 1 .. ~1.1MB, crosses rdv threshold
		}
		ev := newEnv(&testing.T{}, 2, StratAggreg)
		ok := true
		for i := range ev.cores {
			i := i
			ev.e.Spawn(fmt.Sprintf("app%d", i), func(p *vtime.Proc) {
				if i == 0 {
					var last *Request
					for k, sz := range sizes {
						msg := make([]byte, sz)
						for j := range msg {
							msg[j] = byte(k)
						}
						last = ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg)
					}
					ev.wait(0, p, last)
				} else {
					for k, sz := range sizes {
						buf := make([]byte, sz)
						r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf)
						ev.wait(1, p, r)
						if r.Status().Len != sz || (sz > 0 && buf[0] != byte(k)) {
							ok = false
						}
					}
				}
			})
		}
		if err := ev.e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FIFO send completion is scoped per (gate, tag): a send on another tag must
// complete independently of an in-flight rendezvous, otherwise legal MPI
// patterns like Isend(large) -> Barrier -> Recv deadlock (the barrier's
// eager traffic would wait on a rendezvous whose matching receive only gets
// posted after the barrier).
func TestSendCompletionIndependentAcrossTags(t *testing.T) {
	ev := newEnv(t, 2, StratAggreg)
	big := make([]byte, 100<<10) // rendezvous
	got := make([]byte, len(big))
	smallFirst := false
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			bigReq := ev.cores[0].ISend(ev.cores[0].Gate(1), 1, big)
			// Same gate, different tag: must complete while the rdv is
			// still waiting for its CTS (the peer posts that receive last).
			small := ev.cores[0].ISend(ev.cores[0].Gate(1), 2, []byte("ping"))
			ev.wait(0, p, small)
			smallFirst = !bigReq.Done()
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 3, []byte("go")))
			ev.wait(0, p, bigReq)
		} else {
			buf := make([]byte, 8)
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 2, ^uint64(0), buf))
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), buf))
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	if !smallFirst {
		t.Fatal("small send on tag 2 should complete before the tag-1 rendezvous")
	}
}

// A rendezvous message received into a zero-length buffer must complete on
// BOTH sides: the receive as fully truncated, and the send via a zero-grant
// CTS (previously the CTS was skipped and the sender hung forever).
func TestRendezvousZeroBufferRecvCompletesSender(t *testing.T) {
	ev := newEnv(t, 2, StratAggreg)
	big := make([]byte, 200<<10)
	var st Status
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 4, big))
			// The same tag must not stay gated behind the zero-grant pack.
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 4, []byte("after")))
		} else {
			r := ev.cores[1].IRecv(ev.cores[1].Gate(0), 4, ^uint64(0), nil)
			ev.wait(1, p, r)
			st = r.Status()
			buf := make([]byte, 8)
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 4, ^uint64(0), buf))
		}
	})
	if !st.Truncated || st.Len != 0 {
		t.Fatalf("zero-buffer rdv status = %+v", st)
	}
}

func TestStrategyNames(t *testing.T) {
	for k, want := range map[StrategyKind]string{
		StratDefault: "default", StratAggreg: "aggreg", StratSplitBalance: "split_balance",
	} {
		if newStrategy(k).Name() != want || k.String() != want {
			t.Errorf("strategy %d name mismatch", k)
		}
	}
}

func TestConnectIsIdempotentAndSelfPanics(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	g1 := ev.cores[0].Gate(1)
	g2 := ev.cores[0].Connect(ev.cores[1])
	if g1 != g2 {
		t.Fatal("Connect not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("self-connect must panic")
		}
	}()
	ev.cores[0].Connect(ev.cores[0])
}
