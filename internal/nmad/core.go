package nmad

import (
	"fmt"

	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Options configures a Core.
type Options struct {
	// Strategy selects the packet scheduling strategy.
	Strategy StrategyKind
	// RdvThreshold is the eager/rendezvous switch point in bytes.
	RdvThreshold int
	// AggregMax caps the payload of an aggregated packet wrapper.
	AggregMax int
	// MinSplit is the smallest rendezvous chunk worth placing on an extra
	// rail; below it the split strategy falls back to the fastest rail.
	MinSplit int
	// Rails are the network rails this process can use, in rail-id order.
	Rails []*simnet.Rail
	// MemBW is the node's memory copy bandwidth (bytes/sec) for eager and
	// unexpected-message copies.
	MemBW float64
	// PwParseCost is the host cost to parse one arrived packet wrapper.
	PwParseCost vtime.Duration
	// MatchCost is the host cost of one tag-matching step.
	MatchCost vtime.Duration
	// Peer resolves a rank to its Core so gates can be established lazily
	// on first traffic. With NP in the thousands, eagerly connecting every
	// pair costs O(NP²) gates while a log-depth collective touches O(log NP)
	// peers per rank; the resolver makes connection cost follow actual
	// communication. Nil means gates must be pre-wired with Connect.
	Peer func(rank int) *Core
	// PostTask defers host work (submission) to the progress engine.
	PostTask func(cost vtime.Duration, run func())
	// Notify signals the progress engine that events are pending.
	Notify func()
	// Rec, when set, records library trace events (eager vs rendezvous
	// submission, packet-wrapper activity, entry handling).
	Rec *trace.Recorder
}

// withDefaults fills zero fields with the library defaults.
func (o Options) withDefaults() Options {
	if o.RdvThreshold == 0 {
		o.RdvThreshold = 32 << 10
	}
	if o.AggregMax == 0 {
		o.AggregMax = 32 << 10
	}
	if o.MinSplit == 0 {
		o.MinSplit = 4 << 10
	}
	if o.MemBW == 0 {
		o.MemBW = 4e9
	}
	if o.PwParseCost == 0 {
		o.PwParseCost = 100
	}
	if o.MatchCost == 0 {
		o.MatchCost = 40
	}
	if o.PostTask == nil {
		panic("nmad: Options.PostTask is required")
	}
	if o.Notify == nil {
		o.Notify = func() {}
	}
	return o
}

// Gate is a connection to one peer process (§2.2: strategies operate on the
// set of messages sharing the same destination, i.e. per gate).
type Gate struct {
	owner    *Core
	peer     *Core
	PeerRank int
	peerNode int

	outlist []*Request // packs awaiting strategy scheduling, FIFO
	// sendFifo holds posted-but-uncompleted sends per tag, in submission
	// order (the completion-ordering guarantee of finishSend).
	sendFifo  map[uint64][]*Request
	nextSeq   uint32
	idleArmed bool
}

// unexp is an arrived-but-unmatched message (eager payload or RTS).
type unexp struct {
	from   *Gate
	kind   EntryKind // EntryEager or EntryRTS
	tag    uint64
	msgLen int
	data   []byte // copied eager payload
	packID uint64 // RTS only
}

// rdvRecv tracks an in-progress rendezvous reception.
type rdvRecv struct {
	req       *Request
	remaining int
}

type inPw struct {
	pw      *Packet
	consume vtime.Duration
}

// Core is one process's NewMadeleine instance.
type Core struct {
	e    *vtime.Engine
	rank int
	node int
	opt  Options

	strat Strategy
	gates map[int]*Gate

	inbox      []inPw
	posted     []*Request
	unexpected []*unexp

	nextPackID uint64
	nextRecvID uint64
	sendRdv    map[uint64]*Request
	recvRdv    map[uint64]*rdvRecv

	kicked []*Gate

	// owed accumulates costs incurred outside Poll (e.g. matching a posted
	// receive against the unexpected store); the next Poll charges them.
	owed vtime.Duration

	// Stats.
	PwsSent       int64
	PwsRecv       int64
	EntriesSent   int64
	Aggregated    int64 // entries that shared a pw with another entry
	UnexpectedHit int64
	RdvStarted    int64
}

// New creates a Core for the process `rank` living on cluster node `node`.
func New(e *vtime.Engine, rank, node int, opt Options) *Core {
	c := &Core{
		e:       e,
		rank:    rank,
		node:    node,
		opt:     opt.withDefaults(),
		gates:   make(map[int]*Gate),
		sendRdv: make(map[uint64]*Request),
		recvRdv: make(map[uint64]*rdvRecv),
	}
	c.strat = newStrategy(c.opt.Strategy)
	return c
}

// Rank returns the process rank this core belongs to.
func (c *Core) Rank() int { return c.rank }

// Strategy returns the active strategy's name.
func (c *Core) Strategy() string { return c.strat.Name() }

// Connect establishes (or returns) the gate toward peer.
func (c *Core) Connect(peer *Core) *Gate {
	if g, ok := c.gates[peer.rank]; ok {
		return g
	}
	if peer == c {
		panic("nmad: connecting a gate to self")
	}
	g := &Gate{owner: c, peer: peer, PeerRank: peer.rank, peerNode: peer.node}
	c.gates[peer.rank] = g
	return g
}

// Gate returns the gate to rank, or nil if not connected. With a Peer
// resolver configured, the first lookup toward a rank establishes the gate
// — the receive side does the same in handleEntry, so neither endpoint
// needs the O(NP²) pre-wiring pass.
func (c *Core) Gate(rank int) *Gate {
	if g, ok := c.gates[rank]; ok {
		return g
	}
	if c.opt.Peer != nil && rank != c.rank {
		if p := c.opt.Peer(rank); p != nil {
			return c.Connect(p)
		}
	}
	return nil
}

// ISend posts a send of data with the given tag toward gate g. Small
// messages take the eager path; messages above RdvThreshold use the internal
// rendezvous protocol. The request is enqueued on the gate's outlist and
// actual submission is decided by the strategy at the next progress point —
// this is the "uncoupled network request submission" of §2.2.
func (c *Core) ISend(g *Gate, tag uint64, data []byte) *Request {
	return c.ISendRail(g, tag, data, 0)
}

// ISendRail is ISend with a rail hint: 0 lets the strategy place the pack
// (the default), k > 0 pins it to rail k-1, and -w < 0 stripes the payload
// across the first min(w, rail count) rails. A pinned eager pack submits on
// its rail, and a pinned rendezvous payload stays whole on that rail instead
// of going through the split strategy (the stripe already distributes
// segments). A striped pack always takes the rendezvous path, whatever its
// size: rendezvous data chunks carry explicit offsets and reassemble
// correctly however the rails reorder them, whereas two eager packs of one
// (gate, tag) stream on different rails could arrive — and match posted
// receives — out of order. The collective engine's rail-striped schedules
// ride the negative form. Out-of-range hints (and stripe widths that clamp
// below two rails) fall back to strategy placement.
func (c *Core) ISendRail(g *Gate, tag uint64, data []byte, rail int) *Request {
	r := &Request{kind: reqSend, core: c, gate: g, tag: tag, data: data, seq: g.nextSeq}
	if rail > 0 && rail <= len(c.opt.Rails) {
		r.pin = rail
	} else if rail < 0 && len(c.opt.Rails) >= 2 {
		if w := -rail; w >= 2 {
			if w > len(c.opt.Rails) {
				w = len(c.opt.Rails)
			}
			r.pin = -w
		}
	}
	g.nextSeq++
	if len(data) > c.opt.RdvThreshold || r.pin < 0 {
		c.opt.Rec.Instant("proto", "net-rdv",
			trace.Int64("dst", int64(g.PeerRank)), trace.Int64("bytes", int64(len(data))))
		r.rdv = true
		c.nextPackID++
		r.id = c.nextPackID
		c.sendRdv[r.id] = r
	} else {
		c.opt.Rec.Instant("proto", "net-eager",
			trace.Int64("dst", int64(g.PeerRank)), trace.Int64("bytes", int64(len(data))))
	}
	g.outlist = append(g.outlist, r)
	if g.sendFifo == nil {
		g.sendFifo = make(map[uint64][]*Request)
	}
	g.sendFifo[r.tag] = append(g.sendFifo[r.tag], r)
	c.kick(g)
	return r
}

// finishSend marks a send request's protocol work as done and completes
// same-tag sends on the gate in FIFO submission order. Without this, a small
// eager pack submitted after a large rendezvous pack on the same (gate, tag)
// stream would complete at NIC drain while the rendezvous handshake is still
// in flight — the caller could then stop progressing the library (e.g.
// MPI_Wait on the last send of the stream returning), deadlocking the
// earlier transfer. The ordering is scoped per tag: packs on *different*
// tags (e.g. a collective riding a separate context) complete independently,
// since gating them would deadlock legal patterns like Isend(rendezvous)
// followed by a barrier whose completion the peer's matching receive waits
// behind.
func (c *Core) finishSend(r *Request) {
	r.finished = true
	g, tag := r.gate, r.tag
	for {
		q := g.sendFifo[tag]
		if len(q) == 0 || !q[0].finished {
			return
		}
		if len(q) == 1 {
			delete(g.sendFifo, tag)
		} else {
			g.sendFifo[tag] = q[1:]
		}
		// Pop before completing: the callback may post new sends on this
		// tag or re-enter finishSend.
		q[0].complete()
	}
}

// IRecv posts a receive. A nil gate means "any gate" (any source); mask
// selects which tag bits participate in matching (all-ones for exact).
// If a matching unexpected message has already arrived it is consumed
// immediately. There is no way to cancel the returned request.
func (c *Core) IRecv(g *Gate, tag, mask uint64, buf []byte) *Request {
	r := &Request{
		kind: reqRecv, core: c, gate: g, anyGate: g == nil,
		tag: tag & mask, mask: mask, buf: buf,
	}
	for i, u := range c.unexpected {
		if c.matchesUnexp(r, u) {
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			c.UnexpectedHit++
			c.consumeUnexpected(r, u)
			return r
		}
	}
	c.posted = append(c.posted, r)
	return r
}

// IProbe checks whether an unexpected message matching (tag, mask) has
// arrived, without consuming it. It returns the gate it arrived on. This is
// the probe primitive the MPICH2 module polls for ANY_SOURCE handling
// (§3.2.2): a NewMadeleine request is only created once a matching message
// is known to sit in NewMadeleine's buffers, so it completes shortly after
// posting and never needs cancellation.
func (c *Core) IProbe(tag, mask uint64) (*Gate, bool) {
	for _, u := range c.unexpected {
		if u.tag&mask == tag&mask {
			return u.from, true
		}
	}
	return nil, false
}

// Owe adds host cost to be charged at the next Poll. Completion callbacks
// (which cannot sleep) use it to account for upper-layer per-message costs,
// e.g. the generic-interface overhead of the MPICH2 module (§4.1.1).
func (c *Core) Owe(d vtime.Duration) {
	if d > 0 {
		c.owed += d
	}
}

// PostedRecvs reports the number of pending posted receive requests.
func (c *Core) PostedRecvs() int { return len(c.posted) }

// UnexpectedCount reports the number of arrived-but-unmatched messages.
func (c *Core) UnexpectedCount() int { return len(c.unexpected) }

func (c *Core) matchesUnexp(r *Request, u *unexp) bool {
	if !r.anyGate && r.gate != u.from {
		return false
	}
	return u.tag&r.mask == r.tag
}

func (c *Core) matchPosted(g *Gate, tag uint64) *Request {
	for i, r := range c.posted {
		if !r.anyGate && r.gate != g {
			continue
		}
		if tag&r.mask == r.tag {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// consumeUnexpected completes (or advances) r using stored message u.
func (c *Core) consumeUnexpected(r *Request, u *unexp) {
	switch u.kind {
	case EntryEager:
		n := copy(r.buf, u.data)
		r.status = Status{Peer: u.from.PeerRank, Tag: u.tag, Len: n, Truncated: n < u.msgLen}
		// The copy-out of a just-buffered message reads cache-hot data; the
		// dominant cost (the copy *into* the unexpected store) was already
		// charged at arrival. This keeps the ANY_SOURCE latency gap
		// constant in message size, as Fig. 4(a) reports.
		c.owed += copyCost(n, c.opt.MemBW) / 8
		r.complete()
	case EntryRTS:
		c.startRdvRecv(r, u.from, u.tag, u.msgLen, u.packID)
	default:
		panic(fmt.Sprintf("nmad: unexpected store holds %v", u.kind))
	}
}

// startRdvRecv registers reception state and sends the CTS.
func (c *Core) startRdvRecv(r *Request, g *Gate, tag uint64, msgLen int, packID uint64) {
	c.nextRecvID++
	id := c.nextRecvID
	n := msgLen
	if n > len(r.buf) {
		n = len(r.buf)
	}
	r.status = Status{Peer: g.PeerRank, Tag: tag, Len: n, Truncated: n < msgLen}
	c.RdvStarted++
	if n == 0 {
		// Zero-byte grant: the receive completes with truncation, but the
		// CTS must still flow so the sender's request can finish (its
		// payload is simply never transmitted).
		r.complete()
		c.sendControl(g, Entry{Kind: EntryCTS, Tag: tag, PackID: packID, RecvID: id, MsgLen: 0})
		return
	}
	c.recvRdv[id] = &rdvRecv{req: r, remaining: n}
	// CTS travels back over the same gate (it connects us to the sender).
	c.sendControl(g, Entry{Kind: EntryCTS, Tag: tag, PackID: packID, RecvID: id, MsgLen: n})
}

// sendControl submits a single control entry immediately on the
// lowest-latency rail, bypassing the strategy outlist (control plane).
func (c *Core) sendControl(g *Gate, en Entry) {
	pw := &Packet{From: c.rank, To: g.PeerRank, Entries: []Entry{en}}
	c.submit(g, pw, c.bestRail(0), nil, false)
}

// railFor returns the rail a send pack rides: its pin when set, otherwise
// the sampling-driven best rail for its size. A striped pack (pin < 0) only
// ever sends its header-only RTS through here — the data chunks are placed
// by sendRdvData — and that RTS rides the control rail (bestRail(0), the
// same lane CTS replies use) so the RTS stream of one (gate, tag) flow stays
// FIFO whatever the payload sizes, preserving matching order at the peer.
func (c *Core) railFor(r *Request) int {
	if r.pin > 0 {
		return r.pin - 1
	}
	if r.pin < 0 {
		return c.bestRail(0)
	}
	return c.bestRail(len(r.data))
}

// bestRail returns the index of the rail with the lowest estimated transfer
// time for size bytes (the sampling-driven choice of §2.2).
func (c *Core) bestRail(size int) int {
	best, bestT := 0, vtime.Duration(1<<62)
	for i, r := range c.opt.Rails {
		if t := r.Params.EstimateXfer(size); t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// kick marks g as needing strategy attention and defers a scheduling pass
// to the progress engine.
func (c *Core) kick(g *Gate) {
	for _, k := range c.kicked {
		if k == g {
			return
		}
	}
	c.kicked = append(c.kicked, g)
	c.opt.PostTask(0, func() { c.runStrategies() })
}

// kickFromEngine re-arms scheduling from an engine-context event (rail
// turned idle) and notifies the progress engine.
func (c *Core) kickFromEngine(g *Gate) {
	g.idleArmed = false
	found := false
	for _, k := range c.kicked {
		if k == g {
			found = true
		}
	}
	if !found {
		c.kicked = append(c.kicked, g)
	}
	c.opt.Notify()
}

// runStrategies drains the kicked set. Runs in progress context.
func (c *Core) runStrategies() {
	for len(c.kicked) > 0 {
		g := c.kicked[0]
		c.kicked = c.kicked[1:]
		c.strat.Schedule(c, g)
	}
}

// armIdleKick schedules a strategy re-run for when the rail's transmit side
// drains (used by the aggregation strategy to accumulate packets while the
// NIC is busy, §2.2).
func (c *Core) armIdleKick(g *Gate, rail int) {
	if g.idleArmed {
		return
	}
	g.idleArmed = true
	at := c.opt.Rails[rail].TxIdleAt(c.node)
	c.e.At(at, func() { c.kickFromEngine(g) })
}

// submit sends pw over rail railIdx; sends (may be nil) are the pack
// requests whose buffers become reusable once submission completes. The
// host submission cost is charged to whichever progress context executes
// the deferred task (application thread or PIOMan thread) — this is what
// makes submission offload observable (§2.2.3, Fig. 7a).
func (c *Core) submit(g *Gate, pw *Packet, railIdx int, sends []*Request, cachedReg bool) {
	rail := c.opt.Rails[railIdx]
	size := pw.WireSize()
	cost := rail.Params.SubmitEager(size)
	_ = cachedReg
	peer := g.peer
	from, to := c.node, g.peerNode
	c.opt.PostTask(cost, func() {
		c.PwsSent++
		c.EntriesSent += int64(len(pw.Entries))
		if len(pw.Entries) > 1 {
			c.Aggregated += int64(len(pw.Entries))
		}
		c.opt.Rec.Instant("nmad", "pw-submit",
			trace.Int64("dst", int64(pw.To)), trace.Int64("rail", int64(railIdx)),
			trace.Int64("bytes", int64(size)), trace.Int64("entries", int64(len(pw.Entries))))
		rail.Transfer(from, to, size, pw, peer.deliverPw)
		// Eager sends complete at *local* completion: when the NIC has
		// drained the packet onto the wire, not at submission. This is what
		// a send-completion event from MX/Verbs signals, and what makes
		// overlap measurable (Fig. 7a).
		var eager []*Request
		for _, s := range sends {
			if s.rdv {
				continue // rendezvous sends complete when all data is out
			}
			eager = append(eager, s)
		}
		if len(eager) > 0 {
			c.e.At(rail.TxIdleAt(from), func() {
				for _, s := range eager {
					c.finishSend(s)
				}
				c.opt.Notify()
			})
		}
	})
}

// deliverPw runs in engine context when a packet wrapper reaches this
// process's NIC.
func (c *Core) deliverPw(d simnet.Delivery) {
	c.inbox = append(c.inbox, inPw{pw: d.Payload.(*Packet), consume: d.ConsumeCost})
	c.opt.Notify()
}

// HasPending reports whether any inbox entries or kicked gates await Poll.
func (c *Core) HasPending() bool { return len(c.inbox) > 0 || len(c.kicked) > 0 || c.owed > 0 }

// SourceName implements pioman.Source.
func (c *Core) SourceName() string { return fmt.Sprintf("nmad[%d]", c.rank) }

// Poll implements pioman.Source: it parses arrived packet wrappers, performs
// tag matching, advances the rendezvous state machines and re-runs kicked
// strategies. It returns the number of wrapper-level events handled and the
// host cost incurred.
func (c *Core) Poll() (int, vtime.Duration) {
	events := 0
	cost := c.owed
	c.owed = 0
	c.runStrategies()
	for len(c.inbox) > 0 {
		in := c.inbox[0]
		c.inbox = c.inbox[1:]
		events++
		c.PwsRecv++
		c.opt.Rec.Instant("nmad", "pw-recv",
			trace.Int64("src", int64(in.pw.From)),
			trace.Int64("entries", int64(len(in.pw.Entries))))
		cost += in.consume + c.opt.PwParseCost
		for _, en := range in.pw.Entries {
			cost += c.handleEntry(in.pw.From, en)
		}
	}
	// Completion callbacks run by handleEntry may have accrued more owed
	// cost (e.g. the module's generic-interface overhead); flush it into
	// this poll so a follow-up sweep does not treat it as a fresh event
	// (which would double-charge the progress engine's sync overhead).
	cost += c.owed
	c.owed = 0
	if cost > 0 && events == 0 {
		events = 1 // owed costs must be charged even without new arrivals
	}
	return events, cost
}

// handleEntry dispatches one arrived entry; returns its host cost.
func (c *Core) handleEntry(fromRank int, en Entry) vtime.Duration {
	g := c.Gate(fromRank)
	if g == nil {
		panic(fmt.Sprintf("nmad[%d]: entry from unconnected rank %d", c.rank, fromRank))
	}
	cost := c.opt.MatchCost
	switch en.Kind {
	case EntryEager:
		if r := c.matchPosted(g, en.Tag); r != nil {
			n := copy(r.buf, en.Data)
			r.status = Status{Peer: fromRank, Tag: en.Tag, Len: n, Truncated: n < en.MsgLen}
			cost += copyCost(n, c.opt.MemBW)
			r.complete()
		} else {
			// Copy into NewMadeleine's buffers; delivered on a later IRecv.
			data := make([]byte, len(en.Data))
			copy(data, en.Data)
			c.unexpected = append(c.unexpected, &unexp{
				from: g, kind: EntryEager, tag: en.Tag, msgLen: en.MsgLen, data: data,
			})
			cost += copyCost(len(data), c.opt.MemBW)
		}
	case EntryRTS:
		if r := c.matchPosted(g, en.Tag); r != nil {
			c.startRdvRecv(r, g, en.Tag, en.MsgLen, en.PackID)
		} else {
			c.unexpected = append(c.unexpected, &unexp{
				from: g, kind: EntryRTS, tag: en.Tag, msgLen: en.MsgLen, packID: en.PackID,
			})
		}
	case EntryCTS:
		r := c.sendRdv[en.PackID]
		if r == nil {
			panic(fmt.Sprintf("nmad[%d]: CTS for unknown pack %d", c.rank, en.PackID))
		}
		delete(c.sendRdv, en.PackID)
		c.sendRdvData(r, en.RecvID, en.MsgLen)
	case EntryData:
		st := c.recvRdv[en.RecvID]
		if st == nil {
			panic(fmt.Sprintf("nmad[%d]: data for unknown recv %d", c.rank, en.RecvID))
		}
		copy(st.req.buf[en.Offset:], en.Data)
		st.remaining -= len(en.Data)
		if st.remaining <= 0 {
			delete(c.recvRdv, en.RecvID)
			st.req.complete()
		}
	}
	return cost
}

// sendRdvData splits the granted bytes across rails per the strategy and
// submits the data chunks. grant is the number of bytes the receiver can
// accept (its buffer may be shorter than the message).
func (c *Core) sendRdvData(r *Request, recvID uint64, grant int) {
	if grant == 0 {
		// Zero-byte grant (receiver posted an empty buffer): nothing to
		// transmit, the pack is done.
		c.finishSend(r)
		return
	}
	data := r.data[:grant]
	var shares []Share
	switch {
	case r.pin > 0:
		// Pinned rendezvous payloads bypass the split strategy: the pin
		// names one rail and re-splitting would defeat it.
		shares = []Share{{Rail: r.pin - 1, Offset: 0, Len: len(data)}}
	case r.pin < 0:
		// Striped payloads water-fill over exactly the stripe's rails —
		// the first -pin of the stack — so a schedule-level stripe width
		// is honoured even under strategies that would not split on their
		// own (aggreg keeps eager-sized packs whole) or would split over
		// a different rail set.
		active := make([]int, -r.pin)
		for i := range active {
			active[i] = i
		}
		shares = balancedShares(c, active, len(data))
	default:
		shares = c.strat.SplitRdv(c, len(data))
	}
	outstanding := len(shares)
	for _, sh := range shares {
		chunk := data[sh.Offset : sh.Offset+sh.Len]
		en := Entry{Kind: EntryData, Tag: r.tag, RecvID: recvID, Offset: sh.Offset,
			MsgLen: len(data), Data: chunk}
		pw := &Packet{From: c.rank, To: r.gate.PeerRank, Entries: []Entry{en}}
		rail := c.opt.Rails[sh.Rail]
		cached := rail.Params.RegCache
		last := r
		c.submitRdvChunk(r.gate, pw, sh.Rail, cached, func() {
			outstanding--
			if outstanding == 0 {
				c.finishSend(last)
			}
		})
	}
}

func (c *Core) submitRdvChunk(g *Gate, pw *Packet, railIdx int, cachedReg bool, onSubmitted func()) {
	rail := c.opt.Rails[railIdx]
	size := pw.WireSize()
	cost := rail.Params.SubmitRdv(size, cachedReg)
	peer := g.peer
	from, to := c.node, g.peerNode
	c.opt.PostTask(cost, func() {
		c.PwsSent++
		c.EntriesSent++
		c.opt.Rec.Instant("nmad", "pw-submit-rdv",
			trace.Int64("dst", int64(pw.To)), trace.Int64("rail", int64(railIdx)),
			trace.Int64("bytes", int64(size)))
		rail.Transfer(from, to, size, pw, peer.deliverPw)
		done := onSubmitted
		c.e.At(rail.TxIdleAt(from), func() {
			done()
			c.opt.Notify()
		})
	})
}
