package nmad

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/simnet"
	"repro/internal/vtime"
)

func TestStaticSplitEqualShares(t *testing.T) {
	ev := newEnv(t, 2, StratSplitStatic, ibRail(), mxRail())
	shares := stratSplitStatic{}.SplitRdv(ev.cores[0], 1<<20)
	if len(shares) != 2 {
		t.Fatalf("want 2 shares, got %v", shares)
	}
	if shares[0].Len != shares[1].Len && shares[0].Len != shares[1].Len-1 {
		// 1MB/2 exactly; allow remainder on last rail.
		if shares[0].Len+shares[1].Len != 1<<20 {
			t.Fatalf("static split not conserving: %v", shares)
		}
	}
	diff := shares[0].Len - shares[1].Len
	if diff < -1 || diff > 1 {
		t.Fatalf("static split not 50/50: %v", shares)
	}
}

func TestStaticSplitSmallFallsBack(t *testing.T) {
	ev := newEnv(t, 2, StratSplitStatic, ibRail(), mxRail())
	shares := stratSplitStatic{}.SplitRdv(ev.cores[0], 6000) // < 2*MinSplit
	if len(shares) != 1 {
		t.Fatalf("small payload must use one rail: %v", shares)
	}
}

func TestStaticSplitTransferCorrect(t *testing.T) {
	ev := newEnv(t, 2, StratSplitStatic, ibRail(), mxRail())
	msg := make([]byte, 1<<20)
	for i := range msg {
		msg[i] = byte(i >> 4)
	}
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 3, msg))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("static split corrupted payload")
	}
	// Both rails carried close to half the bytes.
	ib, mx := ev.net.Rail(0).BytesSent, ev.net.Rail(1).BytesSent
	if ib < 400<<10 || mx < 400<<10 {
		t.Fatalf("static split unbalanced: ib=%d mx=%d", ib, mx)
	}
}

func TestAdaptiveBeatsStaticOnAsymmetricRails(t *testing.T) {
	slow := mxRail()
	slow.BytesPerSec /= 3
	measure := func(strat StrategyKind) vtime.Time {
		ev := newEnv(t, 2, strat, ibRail(), slow)
		msg := make([]byte, 8<<20)
		var done vtime.Time
		ev.run(t, func(rank int, p *vtime.Proc) {
			if rank == 0 {
				ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg))
			} else {
				ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), make([]byte, len(msg))))
				done = p.Now()
			}
		})
		return done
	}
	adaptive := measure(StratSplitBalance)
	static := measure(StratSplitStatic)
	if adaptive >= static {
		t.Fatalf("adaptive (%d) should beat static 50/50 (%d) on asymmetric rails",
			adaptive, static)
	}
}

func TestThreeRailWaterfill(t *testing.T) {
	third := mxRail()
	third.Name = "mx2"
	third.BytesPerSec *= 0.5
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail(), third)
	shares := stratSplit{}.SplitRdv(ev.cores[0], 32<<20)
	if len(shares) != 3 {
		t.Fatalf("want 3 shares for a huge payload, got %v", shares)
	}
	total := 0
	for _, s := range shares {
		total += s.Len
	}
	if total != 32<<20 {
		t.Fatalf("conservation broken: %d", total)
	}
	// The fastest rail (ib) must carry the most, the slowest the least.
	if !(shares[0].Len > shares[1].Len && shares[1].Len > shares[2].Len) {
		t.Fatalf("shares not ordered by rail speed: %v", shares)
	}
}

func TestWaterfillSingleActiveRail(t *testing.T) {
	// With one active rail the analytic solve degenerates: the whole payload
	// lands on it, regardless of its latency or bandwidth.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	for _, size := range []int{1, 4096, 1 << 20} {
		shares := waterfill(ev.cores[0], []int{1}, size)
		if len(shares) != 1 || shares[0] != size {
			t.Fatalf("single-rail waterfill(%d) = %v, want [%d]", size, shares, size)
		}
	}
}

func TestMinSplitDropsToOneRail(t *testing.T) {
	// A payload whose slower-rail share falls below MinSplit must collapse
	// onto a single rail — the drop loop keeps exactly one share covering
	// the whole payload.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	ev.cores[0].opt.MinSplit = 1 << 20 // every secondary share is too small
	shares := stratSplit{}.SplitRdv(ev.cores[0], 256<<10)
	if len(shares) != 1 {
		t.Fatalf("want 1 share after MinSplit drop, got %v", shares)
	}
	if shares[0].Offset != 0 || shares[0].Len != 256<<10 {
		t.Fatalf("surviving share must cover the payload: %v", shares)
	}
	if shares[0].Rail != ev.cores[0].bestRail(256<<10) {
		t.Fatalf("surviving share on rail %d, want the best rail", shares[0].Rail)
	}
}

func TestWaterfillEqualLatencyRails(t *testing.T) {
	// Equal-latency rails exercise the sorted-insert tie path: with L equal,
	// the shares are exactly proportional to bandwidth and conservation
	// holds to the byte.
	fast := ibRail()
	fast.Latency = 1500
	fast.BytesPerSec = 2e9
	slow := mxRail()
	slow.Latency = 1500
	slow.BytesPerSec = 1e9
	ev := newEnv(t, 2, StratSplitBalance, fast, slow)
	const size = 3 << 20
	shares := stratSplit{}.SplitRdv(ev.cores[0], size)
	if len(shares) != 2 {
		t.Fatalf("want 2 shares, got %v", shares)
	}
	total := 0
	for _, s := range shares {
		total += s.Len
	}
	if total != size {
		t.Fatalf("conservation broken: %d != %d", total, size)
	}
	// 2:1 bandwidth ratio → 2:1 shares (± rounding absorbed by the fastest).
	if d := shares[0].Len - 2*shares[1].Len; d < -2 || d > 2 {
		t.Fatalf("equal-latency shares not bandwidth-proportional: %v", shares)
	}
}

func TestISendRailPinsEagerPack(t *testing.T) {
	// An eager pack pinned to the slower rail must ride it even though the
	// strategy would pick the faster one.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := make([]byte, 4<<10)
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, 2))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("pinned eager send corrupted payload")
	}
	if ev.net.Rail(1).Packets == 0 {
		t.Fatal("pinned pack never touched rail 1")
	}
	if ev.net.Rail(0).BytesSent > int64(len(msg)/2) {
		t.Fatalf("pinned pack leaked onto rail 0: %d bytes", ev.net.Rail(0).BytesSent)
	}
}

func TestISendRailPinsRdvWhole(t *testing.T) {
	// A pinned rendezvous payload must stay whole on its rail instead of
	// being split by the balance strategy (only control traffic may ride
	// the other rail).
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := make([]byte, 1<<20)
	for i := range msg {
		msg[i] = byte(i)
	}
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, 2))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("pinned rendezvous corrupted payload")
	}
	if mx := ev.net.Rail(1).BytesSent; mx < int64(len(msg)) {
		t.Fatalf("pinned rail carried %d bytes, want >= %d", mx, len(msg))
	}
	if ib := ev.net.Rail(0).BytesSent; ib > 4<<10 {
		t.Fatalf("payload leaked onto unpinned rail: %d bytes", ib)
	}
}

func TestISendRailOutOfRangeFallsBack(t *testing.T) {
	// Hints beyond the rail count degrade to strategy placement rather than
	// panicking or dropping traffic.
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	msg := []byte("fallback")
	got := make([]byte, len(msg))
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			ev.wait(0, p, ev.cores[0].ISendRail(ev.cores[0].Gate(1), 3, msg, 9))
		} else {
			ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 3, ^uint64(0), got))
		}
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("out-of-range hint corrupted payload")
	}
}

func TestSplitPreviewMatchesStrategy(t *testing.T) {
	ev := newEnv(t, 2, StratSplitBalance, ibRail(), mxRail())
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		want := stratSplit{}.SplitRdv(ev.cores[0], size)
		got := SplitPreview(StratSplitBalance, ev.net.Rails(), 0, size)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("SplitPreview(%d) = %v, strategy says %v", size, got, want)
		}
	}
}

func TestAggregationRespectsCap(t *testing.T) {
	ev := newEnv(t, 2, StratAggreg)
	core := ev.cores[0]
	// Queue many packs while the NIC is busy, then verify no emitted packet
	// wrapper exceeds AggregMax payload (+headers).
	const n = 64
	msgSize := 4 << 10
	ev.run(t, func(rank int, p *vtime.Proc) {
		if rank == 0 {
			var last *Request
			for i := 0; i < n; i++ {
				last = core.ISend(core.Gate(1), 1, make([]byte, msgSize))
			}
			ev.wait(0, p, last)
		} else {
			for i := 0; i < n; i++ {
				ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), make([]byte, msgSize)))
			}
		}
	})
	if core.PwsSent >= n {
		t.Fatalf("no aggregation: %d pws for %d messages", core.PwsSent, n)
	}
	// Each aggregated pw holds at most AggregMax/msgSize entries (8).
	maxEntries := core.opt.AggregMax/msgSize + 1
	if avg := float64(core.EntriesSent) / float64(core.PwsSent); avg > float64(maxEntries) {
		t.Fatalf("average %f entries per pw exceeds cap %d", avg, maxEntries)
	}
}

func TestSampleTableMatchesEstimate(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	rail := ev.net.Rail(0)
	for _, pt := range rail.SampleTable() {
		if pt.Xfer != rail.Params.EstimateXfer(pt.Size) {
			t.Fatalf("sampling table inconsistent at %d", pt.Size)
		}
	}
}

func TestOweChargesAtNextPoll(t *testing.T) {
	ev := newEnv(t, 2, StratDefault)
	core := ev.cores[0]
	core.Owe(12345)
	n, cost := core.Poll()
	if n == 0 || cost < 12345 {
		t.Fatalf("owed cost not charged: n=%d cost=%d", n, cost)
	}
	core.Owe(-5) // negative owed is ignored
	if core.owed != 0 {
		t.Fatal("negative Owe must be ignored")
	}
}

func TestGateAccessors(t *testing.T) {
	ev := newEnv(t, 3, StratDefault)
	g := ev.cores[0].Gate(2)
	if g == nil || g.PeerRank != 2 {
		t.Fatalf("gate = %+v", g)
	}
	if ev.cores[0].Gate(99) != nil {
		t.Fatal("unknown gate should be nil")
	}
	if ev.cores[0].Rank() != 0 || ev.cores[0].Strategy() != "default" {
		t.Fatal("accessors wrong")
	}
}

func TestEntryKindStrings(t *testing.T) {
	for k, want := range map[EntryKind]string{
		EntryEager: "eager", EntryRTS: "rts", EntryCTS: "cts", EntryData: "data",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
	if EntryKind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func TestPacketWireSize(t *testing.T) {
	pw := &Packet{Entries: []Entry{
		{Kind: EntryEager, Data: make([]byte, 100)},
		{Kind: EntryRTS},
	}}
	want := pwHeaderBytes + entryHeaderBytes + 100 + entryHeaderBytes
	if pw.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", pw.WireSize(), want)
	}
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newStrategy(StrategyKind(42))
}

func TestMissingPostTaskPanics(t *testing.T) {
	e := vtime.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing PostTask")
		}
	}()
	New(e, 0, 0, Options{Rails: []*simnet.Rail{}})
}

// Benchmark the nmad fast path: eager pingpong in virtual time, measuring
// wall-clock simulation throughput.
func BenchmarkEagerPingPongSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := &testing.T{}
		ev := newEnv(t, 2, StratAggreg)
		msg := make([]byte, 64)
		ev.run(t, func(rank int, p *vtime.Proc) {
			buf := make([]byte, 64)
			for k := 0; k < 50; k++ {
				if rank == 0 {
					ev.wait(0, p, ev.cores[0].ISend(ev.cores[0].Gate(1), 1, msg))
					ev.wait(0, p, ev.cores[0].IRecv(ev.cores[0].Gate(1), 1, ^uint64(0), buf))
				} else {
					ev.wait(1, p, ev.cores[1].IRecv(ev.cores[1].Gate(0), 1, ^uint64(0), buf))
					ev.wait(1, p, ev.cores[1].ISend(ev.cores[1].Gate(0), 1, msg))
				}
			}
		})
	}
	b.ReportMetric(float64(100*b.N), "msgs")
}

func ExamplePacket_WireSize() {
	pw := &Packet{From: 0, To: 1, Entries: []Entry{{Kind: EntryEager, Data: []byte("hi")}}}
	fmt.Println(pw.WireSize())
	// Output: 50
}
