// Package marcel models per-node CPU cores and thread scheduling in virtual
// time. It is the analogue of the Marcel user-level thread scheduler of the
// PM2 suite (§2.2.2): it knows how many cores a node has, which are busy, and
// therefore whether an "idle core" is available for background communication
// progress — the property PIOMan exploits to overlap communication with
// computation.
package marcel

import (
	"fmt"

	"repro/internal/vtime"
)

// Node models the cores of one physical node. Threads acquire a core to
// execute CPU work and release it when they block; acquisition is FIFO.
type Node struct {
	e     *vtime.Engine
	name  string
	cores int
	sema  *vtime.Sema
}

// NewNode returns a node with the given core count.
func NewNode(e *vtime.Engine, name string, cores int) *Node {
	if cores <= 0 {
		panic(fmt.Sprintf("marcel: node %s with %d cores", name, cores))
	}
	return &Node{e: e, name: name, cores: cores, sema: vtime.NewSema(e, name+": waiting for core", cores)}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Cores returns the total core count.
func (n *Node) Cores() int { return n.cores }

// IdleCores reports how many cores are currently unoccupied.
func (n *Node) IdleCores() int { return n.sema.Value() }

// Acquire blocks p until a core is free, then occupies it.
func (n *Node) Acquire(p *vtime.Proc) { n.sema.Acquire(p) }

// TryAcquire occupies a core if one is free, without blocking.
func (n *Node) TryAcquire() bool { return n.sema.TryAcquire() }

// Release frees a core.
func (n *Node) Release() { n.sema.Release() }

// Compute occupies a core for d of virtual time. This is how simulated
// application code "computes": the core is genuinely unavailable to other
// threads (including PIOMan's progress thread) for the duration.
func (n *Node) Compute(p *vtime.Proc, d vtime.Duration) {
	if d <= 0 {
		return
	}
	n.Acquire(p)
	p.Sleep(d)
	n.Release()
}
