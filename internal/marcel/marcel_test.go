package marcel

import (
	"testing"

	"repro/internal/vtime"
)

func TestComputeOccupiesCore(t *testing.T) {
	e := vtime.NewEngine()
	n := NewNode(e, "n0", 1)
	var aDone, bDone vtime.Time
	e.Spawn("a", func(p *vtime.Proc) {
		n.Compute(p, 100)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *vtime.Proc) {
		n.Compute(p, 100)
		bDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aDone != 100 {
		t.Fatalf("a done at %d, want 100", aDone)
	}
	if bDone != 200 {
		t.Fatalf("b done at %d, want 200 (serialized on 1 core)", bDone)
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	e := vtime.NewEngine()
	n := NewNode(e, "n0", 2)
	var aDone, bDone vtime.Time
	e.Spawn("a", func(p *vtime.Proc) { n.Compute(p, 100); aDone = p.Now() })
	e.Spawn("b", func(p *vtime.Proc) { n.Compute(p, 100); bDone = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aDone != 100 || bDone != 100 {
		t.Fatalf("a=%d b=%d, want both 100 (parallel)", aDone, bDone)
	}
}

func TestIdleCores(t *testing.T) {
	e := vtime.NewEngine()
	n := NewNode(e, "n0", 4)
	if n.IdleCores() != 4 {
		t.Fatalf("idle = %d, want 4", n.IdleCores())
	}
	e.Spawn("a", func(p *vtime.Proc) {
		n.Acquire(p)
		if n.IdleCores() != 3 {
			t.Errorf("idle = %d, want 3", n.IdleCores())
		}
		p.Sleep(10)
		n.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.IdleCores() != 4 {
		t.Fatalf("idle = %d after release, want 4", n.IdleCores())
	}
}

func TestTryAcquire(t *testing.T) {
	e := vtime.NewEngine()
	n := NewNode(e, "n0", 1)
	if !n.TryAcquire() {
		t.Fatal("TryAcquire on idle node failed")
	}
	if n.TryAcquire() {
		t.Fatal("TryAcquire on busy node succeeded")
	}
	n.Release()
	if !n.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	e := vtime.NewEngine()
	n := NewNode(e, "n0", 1)
	e.Spawn("a", func(p *vtime.Proc) {
		n.Compute(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero compute advanced time to %d", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0-core node")
		}
	}()
	NewNode(vtime.NewEngine(), "bad", 0)
}

func TestMeta(t *testing.T) {
	n := NewNode(vtime.NewEngine(), "node7", 8)
	if n.Name() != "node7" || n.Cores() != 8 {
		t.Fatalf("meta wrong: %s %d", n.Name(), n.Cores())
	}
}
