package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			times = append(times, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{100, 200, 300}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20) // t=30
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		trace = append(trace, "b20")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestCondSignalWait(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "test cond")
	var woke Time
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		woke = p.Now()
	})
	e.At(500, func() { c.Signal() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 500 {
		t.Fatalf("woke at %d, want 500", woke)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "bc")
	n := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	e.At(10, func() {
		if c.Waiters() != 5 {
			t.Errorf("waiters = %d, want 5", c.Waiters())
		}
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("woke %d, want 5", n)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "never signalled")
	e.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: never signalled" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	s := NewSema(e, "sem", 0)
	var acquired Time
	e.Spawn("acq", func(p *Proc) {
		s.Acquire(p)
		acquired = p.Now()
	})
	e.At(777, func() { s.Release() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 777 {
		t.Fatalf("acquired at %d, want 777", acquired)
	}
	if s.Value() != 0 {
		t.Fatalf("value = %d, want 0", s.Value())
	}
}

func TestSemaTryAcquire(t *testing.T) {
	e := NewEngine()
	s := NewSema(e, "sem", 2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("TryAcquire should succeed twice")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire should fail at zero")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire should succeed after Release")
	}
}

func TestSemaMultipleWaitersFIFO(t *testing.T) {
	e := NewEngine()
	s := NewSema(e, "sem", 0)
	var order []string
	spawn := func(name string, delay Duration) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			s.Acquire(p)
			order = append(order, name)
		})
	}
	spawn("first", 1)
	spawn("second", 2)
	spawn("third", 3)
	e.At(100, func() { s.Release(); s.Release(); s.Release() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(100, func() { ran++ })
	e.At(200, func() { ran++ })
	e.At(300, func() { ran++ })
	if err := e.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d events, want 2 (deadline inclusive)", ran)
	}
	if e.Now() != 200 {
		t.Fatalf("now = %d, want 200", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	_ = e.RunUntil(100)
	if ran != 1 {
		t.Fatalf("ran %d, want 1 after Stop", ran)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(50)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(10)
			childRan = c.Now()
		})
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childRan != 60 {
		t.Fatalf("child ran at %d, want 60", childRan)
	}
}

func TestStaleWakeupIgnored(t *testing.T) {
	// A proc woken by both a timer and a cond signal at different times must
	// not be resumed twice.
	e := NewEngine()
	c := NewCond(e, "c")
	wakes := 0
	e.Spawn("w", func(p *Proc) {
		c.Wait(p)
		wakes++
	})
	e.At(5, func() { c.Signal() })
	e.At(6, func() { c.Signal() }) // no waiter; must be a no-op
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1", wakes)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Microsecond != 1000 || Millisecond != 1_000_000 || Second != 1_000_000_000 {
		t.Fatal("unit constants wrong")
	}
	if d := DurationOf(1.5e-6); d != 1500 {
		t.Fatalf("DurationOf(1.5us) = %d, want 1500", d)
	}
	if DurationOf(-1) != 0 {
		t.Fatal("negative DurationOf should clamp to 0")
	}
	if got := Duration(2500).Micros(); got != 2.5 {
		t.Fatalf("Micros = %v, want 2.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := Time(1500).Micros(); got != 1.5 {
		t.Fatalf("Time.Micros = %v", got)
	}
}

// Property: for any set of (time, id) events, execution order is sorted by
// time with ties broken by insertion order.
func TestPropertyEventOrderIsStableSort(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		type rec struct {
			t   Time
			idx int
		}
		var got []rec
		for i, d := range delays {
			i, tt := i, Time(d%50) // force lots of ties
			e.At(tt, func() { got = append(got, rec{tt, i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		sorted := sort.SliceIsSorted(got, func(a, b int) bool {
			if got[a].t != got[b].t {
				return got[a].t < got[b].t
			}
			return got[a].idx < got[b].idx
		})
		return sorted && len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: N procs doing random sleeps always terminate with Run() == nil
// and the engine clock equals the max total sleep.
func TestPropertyProcsTerminate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 1 + rng.Intn(8)
		maxTotal := Time(0)
		for i := 0; i < n; i++ {
			total := Time(0)
			var sleeps []Duration
			for j := 0; j < 1+rng.Intn(10); j++ {
				d := Duration(rng.Intn(1000))
				sleeps = append(sleeps, d)
				total = total.Add(d)
			}
			if total > maxTotal {
				maxTotal = total
			}
			e.Spawn("p", func(p *Proc) {
				for _, d := range sleeps {
					p.Sleep(d)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == maxTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Sleep(0)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// a starts first (spawned first), yields at Sleep(0), b runs, then a2.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}
