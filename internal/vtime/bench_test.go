package vtime

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var schedule func()
	n := 0
	schedule = func() {
		n++
		if n < b.N {
			e.After(1, schedule)
		}
	}
	e.After(1, schedule)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcContextSwitch measures the goroutine-handoff cost of one
// simulated process sleep (the dominant cost of message-heavy simulations).
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemaPingPong measures a handoff ping-pong between two procs
// through semaphores (which, unlike conds, retain early releases).
func BenchmarkSemaPingPong(b *testing.B) {
	e := NewEngine()
	s1 := NewSema(e, "s1", 0)
	s2 := NewSema(e, "s2", 0)
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s2.Release()
			s1.Acquire(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s2.Acquire(p)
			s1.Release()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
