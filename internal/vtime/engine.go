// Package vtime implements a deterministic discrete-event simulation engine.
//
// Simulated processes (Proc) are goroutines that execute exactly one at a
// time under the control of an Engine; they block on virtual-time primitives
// (Sleep, Cond.Wait) and the engine advances a virtual clock between events.
// Because at most one goroutine ever runs simulation code at a time and all
// ordering ties are broken by a monotonically increasing sequence number,
// every run of a simulation is bit-for-bit deterministic.
//
// Time is measured in integer nanoseconds (Time). Sub-nanosecond costs are
// accumulated by callers before being charged.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// DurationOf converts a floating point number of seconds into a Duration,
// rounding to the nearest nanosecond.
func DurationOf(seconds float64) Duration {
	if seconds < 0 {
		return 0
	}
	return Duration(seconds*1e9 + 0.5)
}

// Seconds reports t as a floating-point number of seconds since time zero.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports t as a floating-point number of microseconds since zero.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

type event struct {
	t    Time
	seq  int64
	fn   func()
	proc *Proc // non-nil for a proc wakeup event
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation driver. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     int64
	yield   chan struct{}
	cur     *Proc
	live    int              // procs spawned and not yet finished
	blocked map[*Proc]string // procs waiting on a Cond, with a reason
	stopped bool
}

// NewEngine returns a fresh engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the total number of events scheduled so far. For a fixed
// configuration the count is bit-identical across runs, which makes it a
// deterministic proxy for host-side simulation work (every wakeup, sleep and
// timer is one event) — useful for comparing configurations without
// wall-clock noise.
func (e *Engine) Events() int64 { return e.seq }

// Current returns the proc presently executing simulation code, or nil when
// the engine is running an event callback (timer, NIC completion) with no
// proc scheduled. Observability layers use it to attribute work to threads.
func (e *Engine) Current() *Proc { return e.cur }

// At schedules fn to run in engine context at virtual time t. Scheduling in
// the past is an error and panics: simulations must never rewind the clock.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("vtime: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Spawn creates a new simulated process executing fn and schedules it to
// start at the current virtual time. The name is used in deadlock reports.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.live++
	e.seq++
	heap.Push(&e.events, &event{t: e.now, seq: e.seq, proc: p})
	go func() {
		<-p.resume // wait for the engine to run us the first time
		fn(p)
		p.done = true
		e.live--
		e.yield <- struct{}{} // return control to the engine forever
	}()
	return p
}

// wake schedules p to resume at time t.
func (e *Engine) wake(p *Proc, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, proc: p})
}

// run transfers control to proc p and waits until it yields back.
func (e *Engine) runProc(p *Proc) {
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = prev
}

// DeadlockError reports that the event queue drained while simulated
// processes were still blocked.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name: reason" for each blocked proc
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at t=%dns, %d blocked procs: %v",
		int64(d.Now), len(d.Blocked), d.Blocked)
}

// Run drives the simulation until the event queue is empty. It returns a
// *DeadlockError if processes remain blocked with no pending events, nil
// otherwise. Run must be called from outside any simulated process.
func (e *Engine) Run() error {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil drives the simulation until the event queue is empty or the next
// event would occur after the deadline. Events exactly at the deadline run.
func (e *Engine) RunUntil(deadline Time) error {
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].t > deadline {
			e.now = deadline
			return nil
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		if ev.proc != nil {
			if ev.proc.done {
				continue // stale wakeup for a finished proc
			}
			delete(e.blocked, ev.proc)
			e.runProc(ev.proc)
		} else {
			ev.fn()
		}
	}
	if len(e.blocked) > 0 {
		names := make([]string, 0, len(e.blocked))
		for p, reason := range e.blocked {
			names = append(names, p.name+": "+reason)
		}
		sort.Strings(names)
		return &DeadlockError{Now: e.now, Blocked: names}
	}
	return nil
}

// Stop makes Run return after the current event completes. Pending events
// are discarded; blocked procs are abandoned (their goroutines are leaked
// until process exit, which is acceptable for short-lived simulations).
func (e *Engine) Stop() { e.stopped = true }

// Proc is a simulated process. All methods must be called from within the
// process's own goroutine (i.e. from the fn passed to Spawn), except Name.
type Proc struct {
	e      *Engine
	name   string
	label  int
	resume chan struct{}
	done   bool
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// SetLabel stamps an application-defined classification on the process
// (e.g. a trace thread-track id). Zero until set.
func (p *Proc) SetLabel(l int) { p.label = l }

// Label returns the classification stamped by SetLabel.
func (p *Proc) Label() int { return p.label }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// yield returns control to the engine without scheduling a wakeup. The
// caller must have arranged for a wakeup (timer or Cond) beforehand.
func (p *Proc) yield() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. Zero or negative d
// still yields, allowing same-time events to interleave deterministically.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.e.wake(p, p.e.now.Add(d))
	p.yield()
}

// block suspends the process until some other party wakes it via engine.wake.
func (p *Proc) block(reason string) {
	p.e.blocked[p] = reason
	p.yield()
}

// Cond is a broadcast condition variable in virtual time. Waiters are woken
// by Signal in FIFO order at the signalling instant. As with sync.Cond,
// callers should re-check their predicate in a loop.
type Cond struct {
	e       *Engine
	waiters []condWaiter
	reason  string
	delay   Duration
}

// condWaiter is one blocked process; pred, when set, gates its wakeups.
type condWaiter struct {
	p    *Proc
	pred func() bool
}

// SetWakeDelay makes every future Signal/Broadcast wake this cond's waiters
// at now+d instead of now. A waiter that blocks and is then woken reaches
// the post-Wait code at the same virtual instant as a zero-delay wake
// followed by Sleep(d), but costs one scheduled event instead of two — the
// PIOMan workers use it to fold their reaction delay into the wakeup.
func (c *Cond) SetWakeDelay(d Duration) {
	if d < 0 {
		d = 0
	}
	c.delay = d
}

// NewCond returns a condition bound to engine e; reason appears in deadlock
// reports for processes blocked on it.
func NewCond(e *Engine, reason string) *Cond {
	return &Cond{e: e, reason: reason}
}

// Wait blocks p until the next Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, condWaiter{p: p})
	p.block(c.reason)
}

// WaitPred blocks p until a Signal or Broadcast arriving while pred() is
// true. The predicate runs in the waker's host context before any wake is
// scheduled: a broadcast that cannot satisfy the waiter skips it entirely —
// no event, no context switch — so a thread blocked on an N-part condition
// wakes once instead of N times. This mirrors the completion counters real
// MPI implementations use to wake MPI_Wait exactly once. pred must be cheap,
// must not touch virtual time, and — as with Wait — the caller should
// re-check it in a loop. Its state may only change through actions that
// are themselves followed by a Signal or Broadcast, else the waiter is
// never woken.
func (c *Cond) WaitPred(p *Proc, pred func() bool) {
	c.waiters = append(c.waiters, condWaiter{p: p, pred: pred})
	p.block(c.reason)
}

// Broadcast wakes every current waiter at the present virtual time, except
// predicate waiters whose predicate is false — those stay blocked.
func (c *Cond) Broadcast() {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.pred != nil && !w.pred() {
			kept = append(kept, w)
			continue
		}
		c.e.wake(w.p, c.e.now.Add(c.delay))
	}
	// Zero the vacated tail so woken waiters' closures are collectable.
	for i := len(kept); i < len(c.waiters); i++ {
		c.waiters[i] = condWaiter{}
	}
	c.waiters = kept
}

// Signal wakes the longest-waiting process, if any. Predicate waiters are
// woken regardless of their predicate's state (they re-check and re-wait).
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.e.wake(w.p, c.e.now.Add(c.delay))
}

// Waiters reports how many processes are blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Sema is a counting semaphore in virtual time; Release may be called from
// engine context (event callbacks), Acquire only from proc context. It is
// the analogue of the blocking primitives PIOMan substitutes for busy-wait
// loops (§3.3.2 of the paper).
type Sema struct {
	n    int
	cond *Cond
}

// NewSema returns a semaphore with initial count n.
func NewSema(e *Engine, reason string, n int) *Sema {
	return &Sema{n: n, cond: NewCond(e, reason)}
}

// Acquire decrements the semaphore, blocking p while the count is zero.
func (s *Sema) Acquire(p *Proc) {
	for s.n == 0 {
		s.cond.Wait(p)
	}
	s.n--
}

// TryAcquire decrements without blocking; reports whether it succeeded.
func (s *Sema) TryAcquire() bool {
	if s.n == 0 {
		return false
	}
	s.n--
	return true
}

// Release increments the semaphore and wakes one waiter.
func (s *Sema) Release() {
	s.n++
	s.cond.Signal()
}

// Value returns the current count.
func (s *Sema) Value() int { return s.n }
