// Package cluster provides the calibrated testbed and MPI-stack presets used
// throughout the reproduction: the rails (Infiniband ConnectX 10G, Myri-10G
// MX), the paper's two testbeds, and one Stack per MPI implementation
// evaluated in §4 — MPICH2-NewMadeleine (with and without PIOMan, single and
// multirail), MVAPICH2 1.0.3, Open MPI 1.2.7 (openib, MX BTL and MX CM), and
// the generic Nemesis module used as an ablation baseline.
//
// Calibration targets come from the paper's own reported endpoints: one-way
// small-message latencies of ≈1.5 µs (MVAPICH2), ≈1.6 µs (Open MPI), ≈2.1 µs
// (MPICH2-NMad), +300 ns with ANY_SOURCE, +450 ns/+2 µs with PIOMan over
// shm/network, and large-message bandwidths near the wire rates (~1200 MB/s
// Infiniband 10G, ~1150 MB/s Myri-10G, additive in the multirail case).
package cluster

import (
	"repro/internal/ch3"
	"repro/internal/core"
	"repro/internal/nemesis"
	"repro/internal/nmad"
	"repro/internal/pioman"
	"repro/internal/simnet"
	"repro/internal/topo"
	"repro/internal/vtime"
)

// BackendKind selects how CH3 reaches the network.
type BackendKind int

const (
	// BackendDirect is the paper's contribution: CH3 bypasses Nemesis and
	// calls NewMadeleine directly (§3.1).
	BackendDirect BackendKind = iota
	// BackendPacket is a classic central-matching network module over a raw
	// rail (models MVAPICH2 / Open MPI).
	BackendPacket
	// BackendGenericNmad is NewMadeleine mounted as a plain Nemesis network
	// module, with CH3 keeping its own protocols — the nested-handshake
	// configuration of §2.1.3 (ablation baseline).
	BackendGenericNmad
)

// Stack bundles every knob of one MPI implementation model.
type Stack struct {
	Name    string
	Backend BackendKind
	Rails   []simnet.RailParams

	// NewMadeleine options (Direct and GenericNmad backends).
	Strategy     nmad.StrategyKind
	RdvThreshold int
	AggregMax    int

	// PIOMan regime.
	PIOMan     bool
	PioSyncShm vtime.Duration
	PioSyncNet vtime.Duration
	PioReact   vtime.Duration

	// Layer cost models.
	CH3    ch3.Config
	Shm    nemesis.Options
	Direct core.DirectConfig
	Packet core.PacketConfig

	// ComputeEff scales effective per-core compute throughput; it models
	// the process placement/affinity interference visible in the paper's
	// NAS numbers (Open MPI lagging on EP/LU regardless of process count).
	ComputeEff float64
}

// PioConfig materializes the PIOMan configuration.
func (s Stack) PioConfig() pioman.Config {
	return pioman.Config{
		Enabled: s.PIOMan,
		SyncShm: s.PioSyncShm,
		SyncNet: s.PioSyncNet,
		React:   s.PioReact,
	}
}

// WithPIOMan returns a copy of the stack with the PIOMan regime toggled.
func (s Stack) WithPIOMan(on bool) Stack {
	s.PIOMan = on
	if on {
		s.Name += "+pioman"
	}
	return s
}

// Efficiency returns the compute-efficiency factor (1.0 when unset).
func (s Stack) Efficiency() float64 {
	if s.ComputeEff <= 0 {
		return 1.0
	}
	return s.ComputeEff
}

// ---- rails ----------------------------------------------------------------

// RailIB models a ConnectX Infiniband 10G NIC driven through Verbs with
// dynamic on-the-fly registration (the NewMadeleine discipline, §4.1.1).
func RailIB() simnet.RailParams {
	return simnet.RailParams{
		Name:           "ib",
		Latency:        1100 * vtime.Nanosecond,
		BytesPerSec:    1.25e9,
		PerMsgHost:     150,
		HostCopyBW:     6e9,
		ChunkBytes:     64 << 10,
		PerChunkHost:   2500,
		RecvPerMsgHost: 120,
	}
}

// RailIBFatTree is the Infiniband NIC on a two-tier fat tree matching
// topo.XeonRacks: crossing a leaf switch adds one switch hop of latency;
// crossing racks adds a heavier hop through 2:1-oversubscribed uplinks.
// Flat node maps are unaffected — the costs only apply once mpi.Run wires a
// hierarchical cluster's distance function into the network.
func RailIBFatTree() simnet.RailParams {
	r := RailIB()
	r.Name = "ib-fattree"
	r.Hier = []simnet.LevelCost{
		{ExtraLatency: 200 * vtime.Nanosecond, BWFactor: 1},
		{ExtraLatency: 600 * vtime.Nanosecond, BWFactor: 0.5},
	}
	return r
}

// RailIBCached is the same NIC with a registration cache (MVAPICH2).
func RailIBCached() simnet.RailParams {
	r := RailIB()
	r.Name = "ib-cached"
	r.PerMsgHost = 100
	r.RegCache = true
	return r
}

// RailMX models a Myri-10G NIC with the MX interface.
func RailMX() simnet.RailParams {
	return simnet.RailParams{
		Name:           "mx",
		Latency:        1400 * vtime.Nanosecond,
		BytesPerSec:    1.15e9,
		PerMsgHost:     130,
		HostCopyBW:     6e9,
		ChunkBytes:     32 << 10,
		PerChunkHost:   2800,
		RecvPerMsgHost: 100,
	}
}

// ---- shared-memory models --------------------------------------------------

// shmNemesis is the Nemesis cell-queue cost model (lock-free queues, single
// receive queue): ≈0.2 µs half-round-trip at 1 byte.
func shmNemesis() nemesis.Options {
	return nemesis.Options{
		NumCells:    64,
		CellPayload: 32 << 10,
		MemBW:       4e9,
		EnqueueCost: 15,
		DequeueCost: 15,
		Visibility:  80,
	}
}

// shmOpenMPI models Open MPI 1.2.7's sm BTL: double-copy FIFOs, so the
// effective copy bandwidth is halved and the base cost higher (Fig. 6a).
func shmOpenMPI() nemesis.Options {
	o := shmNemesis()
	o.MemBW = 2e9
	o.EnqueueCost = 40
	o.DequeueCost = 40
	o.Visibility = 120
	return o
}

// ---- stacks ----------------------------------------------------------------

// mpich2CH3 is the common MPICH2 CH3 software cost (also used by the
// MVAPICH2 derivative).
func mpich2CH3() ch3.Config {
	return ch3.Config{SendSW: 40, RecvSW: 40, EagerShmMax: 64 << 10}
}

// MPICH2Nmad is MPICH2-NewMadeleine over the given rails (the paper's
// system). Multiple rails enable the split_balance multirail strategy.
func MPICH2Nmad(name string, rails ...simnet.RailParams) Stack {
	strat := nmad.StratAggreg
	if len(rails) > 1 {
		strat = nmad.StratSplitBalance
	}
	return Stack{
		Name:         name,
		Backend:      BackendDirect,
		Rails:        rails,
		Strategy:     strat,
		RdvThreshold: 32 << 10,
		AggregMax:    32 << 10,
		PioSyncShm:   450,
		PioSyncNet:   2000,
		PioReact:     100,
		CH3:          mpich2CH3(),
		Shm:          shmNemesis(),
		Direct: core.DirectConfig{
			GenericSend: 250,
			GenericRecv: 250,
			ASCheck:     300,
			ASProbe:     30,
		},
		ComputeEff: 1.0,
	}
}

// MPICH2NmadIB is MPICH2:Nem:Nmad over Infiniband.
func MPICH2NmadIB() Stack { return MPICH2Nmad("mpich2-nmad-ib", RailIB()) }

// MPICH2NmadMX is MPICH2:Nem:Nmad over Myrinet MX.
func MPICH2NmadMX() Stack { return MPICH2Nmad("mpich2-nmad-mx", RailMX()) }

// MPICH2NmadMulti is the heterogeneous multirail configuration of Fig. 5:
// one Infiniband rail plus one Myri-10G rail, split by sampling.
func MPICH2NmadMulti() Stack {
	return MPICH2Nmad("mpich2-nmad-multi-mx-ib", RailIB(), RailMX())
}

// MVAPICH2 models MVAPICH2 1.0.3: an MPICH2 derivative with an
// Infiniband-native module, registration cache, single-shot RDMA rendezvous.
func MVAPICH2() Stack {
	return Stack{
		Name:    "mvapich2",
		Backend: BackendPacket,
		Rails:   []simnet.RailParams{RailIBCached()},
		CH3:     mpich2CH3(),
		Shm:     shmNemesis(),
		Packet: core.PacketConfig{
			EagerMax:   16 << 10,
			Pipeline:   0,
			PacketCost: 100,
		},
		ComputeEff: 1.0,
	}
}

// RailIBOpenMPI is the Infiniband NIC as Open MPI 1.2.7's openib BTL drives
// it: pipelined send protocol with heavier per-chunk staging/registration
// work and no long-lived registration cache, which depresses medium-size
// bandwidth (Fig. 4b).
func RailIBOpenMPI() simnet.RailParams {
	r := RailIB()
	r.Name = "ib-openib"
	r.PerChunkHost = 6000
	return r
}

// OpenMPIIB models Open MPI 1.2.7 with the openib BTL (+IB MTL latencies):
// pipelined rendezvous without a long-lived registration cache.
func OpenMPIIB() Stack {
	return Stack{
		Name:    "openmpi-ib",
		Backend: BackendPacket,
		Rails:   []simnet.RailParams{RailIBOpenMPI()},
		CH3:     ch3.Config{SendSW: 120, RecvSW: 120, EagerShmMax: 64 << 10},
		Shm:     shmOpenMPI(),
		Packet: core.PacketConfig{
			EagerMax:   12 << 10,
			Pipeline:   128 << 10,
			PacketCost: 120,
		},
		ComputeEff: 0.90,
	}
}

// OpenMPIBTLMX is Open MPI's MX BTL (higher latency path, Fig. 6b/7a).
func OpenMPIBTLMX() Stack {
	return Stack{
		Name:    "openmpi-btl-mx",
		Backend: BackendPacket,
		Rails:   []simnet.RailParams{RailMX()},
		CH3:     ch3.Config{SendSW: 650, RecvSW: 650, EagerShmMax: 64 << 10},
		Shm:     shmOpenMPI(),
		Packet: core.PacketConfig{
			EagerMax:   12 << 10,
			Pipeline:   128 << 10,
			PacketCost: 480,
		},
		ComputeEff: 0.90,
	}
}

// OpenMPICMMX is Open MPI's MX MTL/CM path (library-side matching, lower
// latency than the BTL).
func OpenMPICMMX() Stack {
	return Stack{
		Name:    "openmpi-cm-mx",
		Backend: BackendPacket,
		Rails:   []simnet.RailParams{RailMX()},
		CH3:     ch3.Config{SendSW: 470, RecvSW: 470, EagerShmMax: 64 << 10},
		Shm:     shmOpenMPI(),
		Packet: core.PacketConfig{
			EagerMax:   32 << 10,
			Pipeline:   0,
			PacketCost: 300,
		},
		ComputeEff: 0.90,
	}
}

// MPICH2NemesisGeneric mounts NewMadeleine as a plain Nemesis network module
// (ablation for §2.1.3): channel copies on the send path, CH3-level matching
// and rendezvous, nested handshakes for large messages.
func MPICH2NemesisGeneric() Stack {
	s := MPICH2NmadIB()
	s.Name = "mpich2-nemesis-generic"
	s.Backend = BackendGenericNmad
	s.Packet = core.PacketConfig{
		EagerMax:   16 << 10,
		PacketCost: 120,
	}
	return s
}

// Xeon2 and Grid5000 re-export the paper's testbeds.
func Xeon2() topo.Cluster    { return topo.Xeon2() }
func Grid5000() topo.Cluster { return topo.Grid5000() }

// XeonRacks re-exports the scaled-out hierarchical machine for NP-scale
// runs; pair it with RailIBFatTree so the rack/switch tiers carry cost.
func XeonRacks(nodes int) topo.Cluster { return topo.XeonRacks(nodes) }
