package cluster

import (
	"testing"

	"repro/internal/nmad"
)

func allPresets() []Stack {
	return []Stack{
		MPICH2NmadIB(), MPICH2NmadMX(), MPICH2NmadMulti(),
		MVAPICH2(), OpenMPIIB(), OpenMPIBTLMX(), OpenMPICMMX(),
		MPICH2NemesisGeneric(),
	}
}

func TestAllPresetRailsValidate(t *testing.T) {
	for _, s := range allPresets() {
		if len(s.Rails) == 0 {
			t.Errorf("%s has no rails", s.Name)
		}
		for _, r := range s.Rails {
			if err := r.Validate(); err != nil {
				t.Errorf("%s: %v", s.Name, err)
			}
		}
	}
}

func TestPresetNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allPresets() {
		if seen[s.Name] {
			t.Errorf("duplicate stack name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestWithPIOMan(t *testing.T) {
	base := MPICH2NmadIB()
	pio := base.WithPIOMan(true)
	if !pio.PIOMan || pio.Name == base.Name {
		t.Fatalf("WithPIOMan(true) = %+v", pio)
	}
	cfg := pio.PioConfig()
	if !cfg.Enabled || cfg.SyncShm != 450 || cfg.SyncNet != 2000 {
		t.Fatalf("PioConfig = %+v", cfg)
	}
	off := pio.WithPIOMan(false)
	if off.PIOMan {
		t.Fatal("WithPIOMan(false) left PIOMan on")
	}
	// The base preset itself must not run the background thread.
	if base.PioConfig().Enabled {
		t.Fatal("base preset enables PIOMan")
	}
}

func TestEfficiencyDefaults(t *testing.T) {
	var s Stack
	if s.Efficiency() != 1.0 {
		t.Fatalf("zero-value efficiency = %v", s.Efficiency())
	}
	if got := OpenMPIIB().Efficiency(); got != 0.90 {
		t.Fatalf("OpenMPI efficiency = %v", got)
	}
	if got := MVAPICH2().Efficiency(); got != 1.0 {
		t.Fatalf("MVAPICH2 efficiency = %v", got)
	}
}

func TestMultirailPresetUsesSplitStrategy(t *testing.T) {
	m := MPICH2NmadMulti()
	if len(m.Rails) != 2 {
		t.Fatalf("multirail preset has %d rails", len(m.Rails))
	}
	if m.Strategy != nmad.StratSplitBalance {
		t.Fatalf("multirail strategy = %v", m.Strategy)
	}
	single := MPICH2NmadIB()
	if single.Strategy != nmad.StratAggreg {
		t.Fatalf("single-rail strategy = %v", single.Strategy)
	}
}

func TestBackendAssignments(t *testing.T) {
	if MPICH2NmadIB().Backend != BackendDirect {
		t.Error("nmad stack must use the direct backend")
	}
	if MVAPICH2().Backend != BackendPacket || OpenMPIIB().Backend != BackendPacket {
		t.Error("baselines must use the packet backend")
	}
	if MPICH2NemesisGeneric().Backend != BackendGenericNmad {
		t.Error("generic stack must use the generic-nmad backend")
	}
}

func TestRegCacheOnlyOnMVAPICH(t *testing.T) {
	if !MVAPICH2().Rails[0].RegCache {
		t.Error("MVAPICH2 models a registration cache")
	}
	if MPICH2NmadIB().Rails[0].RegCache {
		t.Error("NewMadeleine registers on the fly (§4.1.1): no cache")
	}
	if OpenMPIIB().Rails[0].RegCache {
		t.Error("Open MPI 1.2.7 openib preset models no long-lived cache")
	}
}

func TestCalibrationRelationshipsStatic(t *testing.T) {
	// Wire-level sanity: IB is lower latency and higher bandwidth than MX.
	ib, mx := RailIB(), RailMX()
	if ib.Latency >= mx.Latency {
		t.Error("IB latency must undercut MX")
	}
	if ib.BytesPerSec <= mx.BytesPerSec {
		t.Error("IB bandwidth must exceed MX")
	}
	// Testbeds re-exported.
	if Xeon2().NumNodes != 2 || Grid5000().NumNodes != 10 {
		t.Error("testbed re-exports wrong")
	}
}
