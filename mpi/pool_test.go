package mpi

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
	"repro/internal/topo"
)

// TestCachedSchedStartZeroAlloc pins the heavy-traffic hot path at zero
// allocations: once a shape's schedule is cached, rebinding it and handing
// it to the nonblocking engine (acquireSched → StartDone, the body of every
// cached I* start) must not allocate — the free lists (requests, ops),
// the per-entry BufArgs scratch and the cached release closure cover it.
//
// The run is single-rank so the schedule is local-only and the measured
// calls cross no yield point: nothing else runs during AllocsPerRun.
func TestCachedSchedStartZeroAlloc(t *testing.T) {
	cfg := xeonCfg(1, cluster.MPICH2NmadIB())
	var avg float64
	_, err := Run(cfg, func(c *Comm) {
		x := make([]float64, 64)
		// Warm the path: first call compiles the entry, second grows the
		// rebind scratch and the free lists to steady state.
		c.Wait(c.IallreduceF64(x, OpSum))
		c.Wait(c.IallreduceF64(x, OpSum))

		// Pre-resolve what Comm.sched computes per call; KeyFor itself
		// builds a signature string, which is compile-time work outside
		// the pinned cached path.
		a := coll.Args{X: x, Op: coll.OpSum}
		a.Rank, a.Size = c.rank, len(c.group)
		key := coll.KeyFor(&c.cfg.Coll, coll.OpAllreduce, a, false)
		a.Seg = key.Seg
		eng := c.engine()

		avg = testing.AllocsPerRun(200, func() {
			s, release := c.acquireSched(key, a)
			eng.StartDone(c.proc, s, release)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("cached schedule rebind+start allocates %.2f objects/op, want 0", avg)
	}
}

// TestPoolingNeutrality: the free lists (requests, shm jobs, nbc ops) and
// bucketed matching queues are host-side mechanics — disabling pooling must
// reproduce bit-identical virtual-time results on every progress regime.
func TestPoolingNeutrality(t *testing.T) {
	for _, stack := range []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MVAPICH2(),
	} {
		stack := stack
		t.Run(stack.Name, func(t *testing.T) {
			run := func(noPooling bool) float64 {
				cfg := xeonCfg(4, stack)
				cfg.Placement = topo.RoundRobin(4, cluster.Xeon2().NumNodes)
				cfg.NoPooling = noPooling
				rep, err := Run(cfg, tracedWorkload)
				if err != nil {
					t.Fatal(err)
				}
				return rep.Seconds
			}
			pooled := run(false)
			fresh := run(true)
			if pooled != fresh {
				t.Fatalf("pooling perturbed the run: %v (pooled) != %v (fresh)", pooled, fresh)
			}
		})
	}
}

// TestConcurrentNbcStress keeps hundreds of nonblocking collectives from
// many sibling Split communicators in flight at once under PIOMan — the
// collstorm shape, asserting correctness where the benchmark measures
// throughput: every allreduce reduces exactly its communicator's
// contributions (isolation), every started op completes, and the matching
// queues drain. Run under -race in CI, it also exercises the pools and
// bucketed queues for data races.
func TestConcurrentNbcStress(t *testing.T) {
	const (
		np      = 8
		nSplits = 6
		perComm = 12 // in-flight ops per (rank, sub-communicator)
		vecLen  = 16
	)
	// 8 ranks × 6 splits × 12 ops = 576 concurrently outstanding requests.
	cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
	cfg.Placement = topo.RoundRobin(np, cluster.Xeon2().NumNodes)

	drained := make([]bool, np)
	rep, err := Run(cfg, func(c *Comm) {
		me := c.Rank()
		subs := make([]*Comm, nSplits)
		for k := range subs {
			color := (me >> (k % 3)) & 1
			subs[k] = c.Split(color, me)
		}

		var reqs []*Request
		var bufs [][]float64
		for k, sub := range subs {
			for j := 0; j < perComm; j++ {
				x := make([]float64, vecLen)
				scale := float64(k*perComm + j + 1)
				for i := range x {
					x[i] = scale * float64(sub.Rank()+1)
				}
				bufs = append(bufs, x)
				reqs = append(reqs, sub.IallreduceF64(x, OpSum))
			}
		}
		c.WaitAll(reqs...)

		// Each sub-communicator has 4 members with ranks 0..3, so the
		// elementwise sum is scale * (1+2+3+4).
		i := 0
		for k := range subs {
			for j := 0; j < perComm; j++ {
				want := float64(k*perComm+j+1) * 10
				for e, v := range bufs[i] {
					if v != want {
						t.Errorf("rank %d split %d op %d elem %d: got %v, want %v",
							me, k, j, e, v, want)
						break
					}
				}
				i++
			}
		}
		// All 576 ops are complete: no posted receive may linger (a leak
		// here means a bucketed-queue removal went wrong). The unexpected
		// queue is checked loosely — ranks that finished earlier are
		// already in the finalize barrier, whose eager messages legally
		// sit here until this rank enters it (at most one per barrier
		// round), but nothing from the stress ops may remain.
		drained[me] = c.p.PostedLen() == 0 && c.p.UnexpectedQLen() < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range drained {
		if !ok {
			t.Errorf("rank %d: matching queues not drained after WaitAll", r)
		}
	}
	cs := rep.Counters()
	if cs.NbcStarted != cs.NbcCompleted {
		t.Errorf("nbc ops: started %d != completed %d", cs.NbcStarted, cs.NbcCompleted)
	}
	if want := int64(np * nSplits * perComm); cs.NbcStarted < want {
		t.Errorf("nbc ops started %d, want at least %d", cs.NbcStarted, want)
	}
	if cs.ReqPoolHits == 0 || cs.OpPoolHits == 0 {
		t.Errorf("pools never hit: req %d/%d, op %d/%d",
			cs.ReqPoolHits, cs.ReqPoolMisses, cs.OpPoolHits, cs.OpPoolMisses)
	}
	if cs.ReqInFlight < np {
		t.Errorf("peak in-flight requests %d, want at least %d", cs.ReqInFlight, np)
	}
}
