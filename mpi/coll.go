package mpi

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/nbc"
	"repro/internal/vtime"
)

// Collectives compile to per-rank schedules through the internal/coll
// registry: coll.KeyFor selects the algorithm from payload size, rank count
// and topology (binomial vs scatter-allgather broadcast, recursive doubling
// vs Rabenseifner allreduce, Bruck vs ring allgather, flat vs two-level),
// and the per-communicator schedule cache reuses the compiled schedule when
// the same shape repeats — persistent-collective semantics: compile once,
// rebind buffers, re-execute. Blocking and nonblocking paths share both the
// selection and the cache.

// Per-operation tags on the blocking-collective context.
const (
	tagBarrier int32 = iota
	tagBcast
	tagAllreduce
	tagReduce
	tagAllgather
	tagAlltoall
	tagGather
	tagScatter
)

// SendT / RecvT / SendRecvT implement coll.PtPt on the collective context.
func (c *Comm) SendT(dst int, tag int32, data []byte) {
	if dst == c.rank {
		panic("mpi: collective self-send")
	}
	r := c.p.Isend(c.proc, c.world(dst), tag, c.collCtx, data)
	c.mgr.WaitUntil(c.proc, r.Done)
}

// RecvT receives on the collective context.
func (c *Comm) RecvT(src int, tag int32, buf []byte) int {
	r := c.p.Irecv(c.proc, c.world(src), tag, c.collCtx, buf)
	c.mgr.WaitUntil(c.proc, r.Done)
	return r.Stat.Len
}

// SendRecvT performs a concurrent exchange on the collective context.
func (c *Comm) SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int {
	rr := c.p.Irecv(c.proc, c.world(src), tag, c.collCtx, rbuf)
	sr := c.p.Isend(c.proc, c.world(dst), tag, c.collCtx, sdata)
	c.mgr.WaitUntil(c.proc, func() bool { return rr.Done() && sr.Done() })
	return rr.Stat.Len
}

// twoLevelApplies reports whether the topology-aware hierarchical variants
// apply to a communicator with the given node map: requested by config,
// placement known, and at least one node hosting several of the
// communicator's ranks. Computed once per communicator (group and config
// are immutable) and cached in Comm.twoLvl.
func twoLevelApplies(cfg *Config, nodes []int) bool {
	if !cfg.TwoLevelColl || nodes == nil {
		return false
	}
	counts := make(map[int]int, len(nodes))
	for _, n := range nodes {
		counts[n]++
		if counts[n] > 1 {
			return true
		}
	}
	return false
}

// sched selects the algorithm, then compiles or rebinds the schedule via the
// per-communicator cache. The returned release function must be called when
// the execution finishes (the nonblocking path defers it to completion).
func (c *Comm) sched(op coll.OpKind, a coll.Args) (*coll.Schedule, func()) {
	a.Rank, a.Size = c.rank, len(c.group)
	if c.twoLvl {
		a.Nodes = c.nodes
	}
	key := coll.KeyFor(&c.cfg.Coll, op, a, a.Nodes != nil)
	return c.acquireSched(key, a)
}

// ---- blocking collectives ----------------------------------------------------

// Barrier blocks until all ranks reach it.
func (c *Comm) Barrier() {
	s, release := c.sched(coll.OpBarrier, coll.Args{})
	coll.ExecBlocking(c, s, tagBarrier)
	release()
}

// Bcast distributes data (in place) from root.
func (c *Comm) Bcast(root int, data []byte) {
	c.checkRoot("Bcast", root)
	s, release := c.sched(coll.OpBcast, coll.Args{Root: root, Data: data})
	coll.ExecBlocking(c, s, tagBcast)
	release()
}

// AllreduceF64 combines x elementwise across ranks, in place.
func (c *Comm) AllreduceF64(x []float64, op coll.Op) {
	c.checkOp("AllreduceF64", op)
	s, release := c.sched(coll.OpAllreduce, coll.Args{X: x, Op: op})
	coll.ExecBlocking(c, s, tagAllreduce)
	release()
}

// ReduceF64 combines x into root's x (clobbered elsewhere).
func (c *Comm) ReduceF64(root int, x []float64, op coll.Op) {
	c.checkRoot("ReduceF64", root)
	c.checkOp("ReduceF64", op)
	s, release := c.sched(coll.OpReduce, coll.Args{Root: root, X: x, Op: op})
	coll.ExecBlocking(c, s, tagReduce)
	release()
}

// Allgather collects each rank's block into out[r].
func (c *Comm) Allgather(mine []byte, out [][]byte) {
	c.checkAllgather("Allgather", mine, out)
	s, release := c.sched(coll.OpAllgather, coll.Args{Mine: mine, Out: out})
	coll.ExecBlocking(c, s, tagAllgather)
	release()
}

// Alltoall exchanges send[r] → rank r into recv[s].
func (c *Comm) Alltoall(send, recv [][]byte) {
	c.checkAlltoall("Alltoall", send, recv)
	s, release := c.sched(coll.OpAlltoall, coll.Args{Send: send, Recv: recv})
	coll.ExecBlocking(c, s, tagAlltoall)
	release()
}

// Gather collects blocks at root (out[r] is filled on root only).
func (c *Comm) Gather(root int, mine []byte, out [][]byte) {
	c.checkGather("Gather", root, mine, out)
	s, release := c.sched(coll.OpGather, coll.Args{Root: root, Mine: mine, Out: out})
	coll.ExecBlocking(c, s, tagGather)
	release()
}

// Scatter distributes blocks[r] from root to rank r's buf (MPI_Scatter;
// blocks is only read on root).
func (c *Comm) Scatter(root int, blocks [][]byte, buf []byte) {
	c.checkScatter("Scatter", root, blocks, buf)
	s, release := c.sched(coll.OpScatter, coll.Args{Root: root, Send: blocks, Mine: buf})
	coll.ExecBlocking(c, s, tagScatter)
	release()
}

// ---- nonblocking collectives -------------------------------------------------
//
// The I* operations compile the same schedules as their blocking
// counterparts but hand them to the internal/nbc engine: the calling thread
// issues round 0 and returns immediately; subsequent rounds are driven by
// the progress engine, so with PIOMan enabled the collective advances on an
// idle core while the caller computes. The returned *Request composes with
// Wait, WaitAll, WaitAny and Test. A cached schedule stays bound to the
// operation until it completes; starting the same shape again while one is
// in flight compiles a throwaway schedule.

// nbcTransport adapts the CH3 layer to the nbc engine on the nbc context.
type nbcTransport struct{ c *Comm }

func (t nbcTransport) Isend(proc *vtime.Proc, dst int, tag int32, data []byte) nbc.Req {
	return t.c.p.Isend(proc, t.c.world(dst), tag, t.c.nbcCtx, data)
}

func (t nbcTransport) Irecv(proc *vtime.Proc, src int, tag int32, buf []byte) nbc.Req {
	return t.c.p.Irecv(proc, t.c.world(src), tag, t.c.nbcCtx, buf)
}

func (c *Comm) nbcStart(op coll.OpKind, a coll.Args) *Request {
	if c.nbcEng == nil {
		c.nbcEng = nbc.NewEngine(c.mgr, nbcTransport{c})
	}
	s, release := c.sched(op, a)
	return &Request{c: c, op: c.nbcEng.StartDone(c.proc, s, release)}
}

// Ibarrier starts a nonblocking barrier.
func (c *Comm) Ibarrier() *Request {
	return c.nbcStart(coll.OpBarrier, coll.Args{})
}

// Ibcast starts a nonblocking broadcast of data (in place) from root. The
// buffer must not be touched until the request completes.
func (c *Comm) Ibcast(root int, data []byte) *Request {
	c.checkRoot("Ibcast", root)
	return c.nbcStart(coll.OpBcast, coll.Args{Root: root, Data: data})
}

// IallreduceF64 starts a nonblocking elementwise allreduce of x in place.
func (c *Comm) IallreduceF64(x []float64, op coll.Op) *Request {
	c.checkOp("IallreduceF64", op)
	return c.nbcStart(coll.OpAllreduce, coll.Args{X: x, Op: op})
}

// IreduceF64 starts a nonblocking reduction of x into root's x (clobbered
// elsewhere).
func (c *Comm) IreduceF64(root int, x []float64, op coll.Op) *Request {
	c.checkRoot("IreduceF64", root)
	c.checkOp("IreduceF64", op)
	return c.nbcStart(coll.OpReduce, coll.Args{Root: root, X: x, Op: op})
}

// Iallgather starts a nonblocking allgather of each rank's block into out[r].
func (c *Comm) Iallgather(mine []byte, out [][]byte) *Request {
	c.checkAllgather("Iallgather", mine, out)
	return c.nbcStart(coll.OpAllgather, coll.Args{Mine: mine, Out: out})
}

// Ialltoall starts a nonblocking alltoall exchange send[r] → rank r.
func (c *Comm) Ialltoall(send, recv [][]byte) *Request {
	c.checkAlltoall("Ialltoall", send, recv)
	return c.nbcStart(coll.OpAlltoall, coll.Args{Send: send, Recv: recv})
}

// Igather starts a nonblocking gather of blocks at root.
func (c *Comm) Igather(root int, mine []byte, out [][]byte) *Request {
	c.checkGather("Igather", root, mine, out)
	return c.nbcStart(coll.OpGather, coll.Args{Root: root, Mine: mine, Out: out})
}

// Iscatter starts a nonblocking scatter of blocks[r] from root to rank r's
// buf (blocks is only read on root).
func (c *Comm) Iscatter(root int, blocks [][]byte, buf []byte) *Request {
	c.checkScatter("Iscatter", root, blocks, buf)
	return c.nbcStart(coll.OpScatter, coll.Args{Root: root, Send: blocks, Mine: buf})
}

// ---- argument validation -----------------------------------------------------
//
// Every collective validates its arguments at the entry point so mismatched
// counts fail with a per-operation error instead of a deep panic in a
// schedule builder or a silently truncated transfer. Cross-rank agreement
// (all ranks passing matching counts) remains the caller's contract, as in
// MPI.

func (c *Comm) checkRoot(op string, root int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: %s: root %d out of range [0,%d)", op, root, c.Size()))
	}
}

func (c *Comm) checkOp(op string, f coll.Op) {
	if f == nil {
		panic(fmt.Sprintf("mpi: %s: nil reduction operator", op))
	}
}

func (c *Comm) checkAllgather(op string, mine []byte, out [][]byte) {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: out has %d blocks for communicator size %d",
			op, len(out), c.Size()))
	}
	if len(out[c.rank]) != len(mine) {
		panic(fmt.Sprintf("mpi: %s: out[%d] is %d bytes but this rank contributes %d",
			op, c.rank, len(out[c.rank]), len(mine)))
	}
}

func (c *Comm) checkAlltoall(op string, send, recv [][]byte) {
	if len(send) != c.Size() || len(recv) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: send has %d blocks, recv %d, communicator size %d",
			op, len(send), len(recv), c.Size()))
	}
	if len(recv[c.rank]) != len(send[c.rank]) {
		panic(fmt.Sprintf("mpi: %s: self block mismatch: send[%d]=%d bytes, recv[%d]=%d",
			op, c.rank, len(send[c.rank]), c.rank, len(recv[c.rank])))
	}
}

func (c *Comm) checkGather(op string, root int, mine []byte, out [][]byte) {
	c.checkRoot(op, root)
	if c.rank != root {
		return
	}
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: out has %d blocks for communicator size %d",
			op, len(out), c.Size()))
	}
	if len(out[root]) != len(mine) {
		panic(fmt.Sprintf("mpi: %s: out[%d] is %d bytes but the root contributes %d",
			op, root, len(out[root]), len(mine)))
	}
}

func (c *Comm) checkScatter(op string, root int, blocks [][]byte, buf []byte) {
	c.checkRoot(op, root)
	if c.rank != root {
		return
	}
	if len(blocks) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: blocks has %d entries for communicator size %d",
			op, len(blocks), c.Size()))
	}
	if len(blocks[root]) != len(buf) {
		panic(fmt.Sprintf("mpi: %s: blocks[%d] is %d bytes but buf is %d",
			op, root, len(blocks[root]), len(buf)))
	}
}

// Reduction operators, re-exported.
var (
	OpSum = coll.OpSum
	OpMax = coll.OpMax
	OpMin = coll.OpMin
)

// F64Bytes / BytesF64 re-export the wire codec for float64 vectors.
func F64Bytes(xs []float64) []byte     { return coll.F64Bytes(xs) }
func BytesF64(dst []float64, b []byte) { coll.BytesF64(dst, b) }
