package mpi

import (
	"fmt"
	"unsafe"

	"repro/internal/coll"
	"repro/internal/nbc"
	"repro/internal/vtime"
)

// Collectives compile to per-rank schedules through the internal/coll
// registry: coll.KeyFor selects the algorithm from payload size, rank count
// and topology (binomial vs scatter-allgather broadcast, recursive doubling
// vs Rabenseifner allreduce, Bruck vs ring allgather, flat vs two-level),
// and the per-communicator schedule cache reuses the compiled schedule when
// the same shape repeats — persistent-collective semantics: compile once,
// rebind buffers, re-execute. Blocking and nonblocking paths share both the
// selection and the cache.

// Per-operation tags on the blocking-collective context.
const (
	tagBarrier int32 = iota
	tagBcast
	tagAllreduce
	tagReduce
	tagAllgather
	tagAlltoall
	tagGather
	tagScatter
	tagAlltoallv
	tagAllgatherv
	tagGatherv
	tagScatterv
	tagReduceScatter
)

// SendT / RecvT / SendRecvT implement coll.PtPt on the collective context.
func (c *Comm) SendT(dst int, tag int32, data []byte) {
	if dst == c.rank {
		panic("mpi: collective self-send")
	}
	r := c.p.Isend(c.proc, c.world(dst), tag, c.collCtx, data)
	c.mgr.WaitUntil(c.proc, r.Done)
}

// RecvT receives on the collective context.
func (c *Comm) RecvT(src int, tag int32, buf []byte) int {
	r := c.p.Irecv(c.proc, c.world(src), tag, c.collCtx, buf)
	c.mgr.WaitUntil(c.proc, r.Done)
	return r.Stat.Len
}

// SendRecvT performs a concurrent exchange on the collective context.
func (c *Comm) SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int {
	rr := c.p.Irecv(c.proc, c.world(src), tag, c.collCtx, rbuf)
	sr := c.p.Isend(c.proc, c.world(dst), tag, c.collCtx, sdata)
	c.mgr.WaitUntil(c.proc, func() bool { return rr.Done() && sr.Done() })
	return rr.Stat.Len
}

// SendRailT / SendRecvRailT implement coll.RailPtPt: the striped schedules'
// rail hints ride the CH3 request into the backend (rail encoding as on
// coll.Prim.Rail — 0 auto, k > 0 pins rail k-1; shared-memory and
// single-rail paths ignore it).
func (c *Comm) SendRailT(dst int, tag int32, data []byte, rail int) {
	if dst == c.rank {
		panic("mpi: collective self-send")
	}
	r := c.p.IsendRail(c.proc, c.world(dst), tag, c.collCtx, data, rail)
	c.mgr.WaitUntil(c.proc, r.Done)
}

// SendRecvRailT performs a concurrent exchange whose send half carries a
// rail placement hint.
func (c *Comm) SendRecvRailT(dst int, sdata []byte, src int, rbuf []byte, tag int32, rail int) int {
	rr := c.p.Irecv(c.proc, c.world(src), tag, c.collCtx, rbuf)
	sr := c.p.IsendRail(c.proc, c.world(dst), tag, c.collCtx, sdata, rail)
	c.mgr.WaitUntil(c.proc, func() bool { return rr.Done() && sr.Done() })
	return rr.Stat.Len
}

// twoLevelApplies reports whether the topology-aware hierarchical variants
// apply to a communicator with the given node map: requested by config,
// placement known, and at least one node hosting several of the
// communicator's ranks. Computed once per communicator (group and config
// are immutable) and cached in Comm.twoLvl.
func twoLevelApplies(cfg *Config, nodes []int) bool {
	if !cfg.TwoLevelColl || nodes == nil {
		return false
	}
	counts := make(map[int]int, len(nodes))
	for _, n := range nodes {
		counts[n]++
		if counts[n] > 1 {
			return true
		}
	}
	return false
}

// sched selects the algorithm, then compiles or rebinds the schedule via the
// per-communicator cache. The returned release function must be called when
// the execution finishes (the nonblocking path defers it to completion).
func (c *Comm) sched(op coll.OpKind, a coll.Args) (*coll.Schedule, func()) {
	a.Rank, a.Size = c.rank, len(c.group)
	if c.twoLvl {
		a.Nodes = c.nodes
	}
	key := coll.KeyFor(&c.cfg.Coll, op, a, a.Nodes != nil)
	a.Seg = key.Seg // resolved pipeline segment size (0 for non-segmented algos)
	c.stripeArgs(&a, key)
	return c.acquireSched(key, a)
}

// stripeArgs copies the key's resolved rail-stripe width back into the
// builder arguments (the mirror of the a.Seg copy-back) and hands the
// builders the rail capacities the stripe assigner weighs. Unstriped keys
// leave both fields zero, so unstriped builds see pre-striping Args exactly.
func (c *Comm) stripeArgs(a *coll.Args, key coll.Key) {
	if key.Stripe > 0 {
		a.Stripe = key.Stripe
		a.Rails = c.cfg.Coll.Rails
	}
}

// schedViews is sched for the uniform block-view entry points, whose
// arguments may carry aliased views. Aliased views bypass the cache
// entirely: positional rebinding cannot tell identical regions apart, so
// caching a schedule built over overlapping regions would poison later
// same-key calls (the counts signature only sees lengths). Such layouts
// are legal here — NAS IS exchanges class-size volume through one shared
// workspace block, and in-place shapes like Allgather(out[me], out) alias
// *across* argument slots — so the scan runs over every caller byte
// region combined, the same flattening BufArgs hands the rebinder. The
// vector entry points never need this check: their overlap analysis
// already happened (send overlaps keyed exactly via SDispls, receive and
// cross-buffer overlaps rejected), so they call sched directly and keep
// the hot cached path free of re-analysis.
func (c *Comm) schedViews(op coll.OpKind, a coll.Args) (*coll.Schedule, func()) {
	regions := make([][]byte, 0, len(a.Send)+len(a.Recv)+len(a.Out)+2)
	regions = append(regions, a.Data, a.Mine)
	regions = append(regions, a.Send...)
	regions = append(regions, a.Recv...)
	regions = append(regions, a.Out...)
	if blocksAlias(regions) {
		a.Rank, a.Size = c.rank, len(c.group)
		if c.twoLvl {
			a.Nodes = c.nodes
		}
		key := coll.KeyFor(&c.cfg.Coll, op, a, a.Nodes != nil)
		a.Seg = key.Seg
		c.stripeArgs(&a, key)
		c.countCompile()
		return coll.Build(key, a), func() {}
	}
	return c.sched(op, a)
}

// ---- blocking collectives ----------------------------------------------------

// Barrier blocks until all ranks reach it.
func (c *Comm) Barrier() {
	defer c.span("Barrier")()
	s, release := c.sched(coll.OpBarrier, coll.Args{})
	coll.ExecBlockingRec(c, s, tagBarrier, c.rec)
	release()
}

// Bcast distributes data (in place) from root.
func (c *Comm) Bcast(root int, data []byte) {
	defer c.span("Bcast")()
	c.checkRoot("Bcast", root)
	s, release := c.sched(coll.OpBcast, coll.Args{Root: root, Data: data})
	coll.ExecBlockingRec(c, s, tagBcast, c.rec)
	release()
}

// AllreduceF64 combines x elementwise across ranks, in place.
func (c *Comm) AllreduceF64(x []float64, op coll.Op) {
	defer c.span("AllreduceF64")()
	c.checkOp("AllreduceF64", op)
	s, release := c.sched(coll.OpAllreduce, coll.Args{X: x, Op: op})
	coll.ExecBlockingRec(c, s, tagAllreduce, c.rec)
	release()
}

// ReduceF64 combines x into root's x (clobbered elsewhere).
func (c *Comm) ReduceF64(root int, x []float64, op coll.Op) {
	defer c.span("ReduceF64")()
	c.checkRoot("ReduceF64", root)
	c.checkOp("ReduceF64", op)
	s, release := c.sched(coll.OpReduce, coll.Args{Root: root, X: x, Op: op})
	coll.ExecBlockingRec(c, s, tagReduce, c.rec)
	release()
}

// Allgather collects each rank's block into out[r].
func (c *Comm) Allgather(mine []byte, out [][]byte) {
	defer c.span("Allgather")()
	c.checkAllgather("Allgather", mine, out)
	s, release := c.schedViews(coll.OpAllgather, coll.Args{Mine: mine, Out: out})
	coll.ExecBlockingRec(c, s, tagAllgather, c.rec)
	release()
}

// Alltoall exchanges send[r] → rank r into recv[s].
func (c *Comm) Alltoall(send, recv [][]byte) {
	defer c.span("Alltoall")()
	c.checkAlltoall("Alltoall", send, recv)
	s, release := c.schedViews(coll.OpAlltoall, coll.Args{Send: send, Recv: recv})
	coll.ExecBlockingRec(c, s, tagAlltoall, c.rec)
	release()
}

// Gather collects blocks at root (out[r] is filled on root only).
func (c *Comm) Gather(root int, mine []byte, out [][]byte) {
	defer c.span("Gather")()
	c.checkGather("Gather", root, mine, out)
	s, release := c.schedViews(coll.OpGather, coll.Args{Root: root, Mine: mine, Out: out})
	coll.ExecBlockingRec(c, s, tagGather, c.rec)
	release()
}

// Scatter distributes blocks[r] from root to rank r's buf (MPI_Scatter;
// blocks is only read on root).
func (c *Comm) Scatter(root int, blocks [][]byte, buf []byte) {
	defer c.span("Scatter")()
	c.checkScatter("Scatter", root, blocks, buf)
	s, release := c.schedViews(coll.OpScatter, coll.Args{Root: root, Send: blocks, Mine: buf})
	coll.ExecBlockingRec(c, s, tagScatter, c.rec)
	release()
}

// ---- vector (per-rank count) collectives -------------------------------------
//
// The vector operations take MPI-style (buffer, counts, displacements)
// arguments: counts[r] is the bytes exchanged with rank r and displs[r] the
// block's offset in the flat buffer (nil displs packs blocks back-to-back).
// They compile through the same registry, schedule cache and nonblocking
// engine as the uniform collectives; only the counts — not the
// displacements — enter the cache key, so re-invoking with a different
// layout rebinds the cached schedule.

// Alltoallv exchanges variable-size blocks: sbuf's block d goes to rank d
// and rbuf's block s receives from rank s.
func (c *Comm) Alltoallv(sbuf []byte, scounts, sdispls []int, rbuf []byte, rcounts, rdispls []int) {
	defer c.span("Alltoallv")()
	a := c.alltoallvArgs("Alltoallv", sbuf, scounts, sdispls, rbuf, rcounts, rdispls)
	s, release := c.sched(coll.OpAlltoallv, a)
	coll.ExecBlockingRec(c, s, tagAlltoallv, c.rec)
	release()
}

// Ialltoallv starts a nonblocking variable-size alltoall exchange.
func (c *Comm) Ialltoallv(sbuf []byte, scounts, sdispls []int, rbuf []byte, rcounts, rdispls []int) *Request {
	defer c.span("Ialltoallv")()
	a := c.alltoallvArgs("Ialltoallv", sbuf, scounts, sdispls, rbuf, rcounts, rdispls)
	return c.nbcStart(coll.OpAlltoallv, a)
}

// Allgatherv collects each rank's variable-size block: rank r's mine (of
// rcounts[r] bytes) lands in rbuf's block r on every rank. rcounts must be
// identical on all ranks, as in MPI.
func (c *Comm) Allgatherv(mine []byte, rbuf []byte, rcounts, rdispls []int) {
	defer c.span("Allgatherv")()
	a := c.allgathervArgs("Allgatherv", mine, rbuf, rcounts, rdispls)
	s, release := c.sched(coll.OpAllgatherv, a)
	coll.ExecBlockingRec(c, s, tagAllgatherv, c.rec)
	release()
}

// Iallgatherv starts a nonblocking variable-size allgather.
func (c *Comm) Iallgatherv(mine []byte, rbuf []byte, rcounts, rdispls []int) *Request {
	defer c.span("Iallgatherv")()
	a := c.allgathervArgs("Iallgatherv", mine, rbuf, rcounts, rdispls)
	return c.nbcStart(coll.OpAllgatherv, a)
}

// Gatherv collects variable-size blocks at root: rank r's mine (of
// rcounts[r] bytes) lands in rbuf's block r on root. rbuf, rcounts and
// rdispls are only read on root.
func (c *Comm) Gatherv(root int, mine []byte, rbuf []byte, rcounts, rdispls []int) {
	defer c.span("Gatherv")()
	a := c.gathervArgs("Gatherv", root, mine, rbuf, rcounts, rdispls)
	s, release := c.sched(coll.OpGatherv, a)
	coll.ExecBlockingRec(c, s, tagGatherv, c.rec)
	release()
}

// Igatherv starts a nonblocking variable-size gather at root.
func (c *Comm) Igatherv(root int, mine []byte, rbuf []byte, rcounts, rdispls []int) *Request {
	defer c.span("Igatherv")()
	a := c.gathervArgs("Igatherv", root, mine, rbuf, rcounts, rdispls)
	return c.nbcStart(coll.OpGatherv, a)
}

// Scatterv distributes variable-size blocks from root: sbuf's block r (of
// scounts[r] bytes) lands in rank r's buf. sbuf, scounts and sdispls are
// only read on root.
func (c *Comm) Scatterv(root int, sbuf []byte, scounts, sdispls []int, buf []byte) {
	defer c.span("Scatterv")()
	a := c.scattervArgs("Scatterv", root, sbuf, scounts, sdispls, buf)
	s, release := c.sched(coll.OpScatterv, a)
	coll.ExecBlockingRec(c, s, tagScatterv, c.rec)
	release()
}

// Iscatterv starts a nonblocking variable-size scatter from root.
func (c *Comm) Iscatterv(root int, sbuf []byte, scounts, sdispls []int, buf []byte) *Request {
	defer c.span("Iscatterv")()
	a := c.scattervArgs("Iscatterv", root, sbuf, scounts, sdispls, buf)
	return c.nbcStart(coll.OpScatterv, a)
}

// ReduceScatterF64 reduces x (length sum(counts)) elementwise across ranks
// and scatters the result: rank r receives segment r (counts[r] elements)
// in recv. counts must be identical on all ranks, as in MPI. x may be
// clobbered as scratch.
func (c *Comm) ReduceScatterF64(x, recv []float64, counts []int, op coll.Op) {
	defer c.span("ReduceScatterF64")()
	a := c.reduceScatterArgs("ReduceScatterF64", x, recv, counts, op)
	s, release := c.sched(coll.OpReduceScatter, a)
	coll.ExecBlockingRec(c, s, tagReduceScatter, c.rec)
	release()
}

// IreduceScatterF64 starts a nonblocking reduce-scatter of x.
func (c *Comm) IreduceScatterF64(x, recv []float64, counts []int, op coll.Op) *Request {
	defer c.span("IreduceScatterF64")()
	a := c.reduceScatterArgs("IreduceScatterF64", x, recv, counts, op)
	return c.nbcStart(coll.OpReduceScatter, a)
}

// ---- nonblocking collectives -------------------------------------------------
//
// The I* operations compile the same schedules as their blocking
// counterparts but hand them to the internal/nbc engine: the calling thread
// issues round 0 and returns immediately; subsequent rounds are driven by
// the progress engine, so with PIOMan enabled the collective advances on an
// idle core while the caller computes. The returned *Request composes with
// Wait, WaitAll, WaitAny and Test. A cached schedule stays bound to the
// operation until it completes; starting the same shape again while one is
// in flight compiles a throwaway schedule.

// nbcTransport adapts the CH3 layer to the nbc engine on the nbc context.
// The engine registers exactly one completion callback per transfer and
// never touches the request afterwards, so the pooled (transient-request)
// entry points apply.
type nbcTransport struct{ c *Comm }

func (t nbcTransport) Isend(proc *vtime.Proc, dst int, tag int32, data []byte, rail int) nbc.Req {
	if rail != 0 {
		return t.c.p.IsendRailPooled(proc, t.c.world(dst), tag, t.c.nbcCtx, data, rail)
	}
	return t.c.p.IsendPooled(proc, t.c.world(dst), tag, t.c.nbcCtx, data)
}

func (t nbcTransport) Irecv(proc *vtime.Proc, src int, tag int32, buf []byte) nbc.Req {
	return t.c.p.IrecvPooled(proc, t.c.world(src), tag, t.c.nbcCtx, buf)
}

func (c *Comm) nbcStart(op coll.OpKind, a coll.Args) *Request {
	s, release := c.sched(op, a)
	return c.nbcStartSched(s, release)
}

// nbcStartViews is nbcStart through schedViews (possibly aliased views).
func (c *Comm) nbcStartViews(op coll.OpKind, a coll.Args) *Request {
	s, release := c.schedViews(op, a)
	return c.nbcStartSched(s, release)
}

// nbcStartSched hands a compiled schedule to the nonblocking engine;
// release (nil for uncached schedules) runs when the operation completes.
func (c *Comm) nbcStartSched(s *coll.Schedule, release func()) *Request {
	op := c.engine().StartDone(c.proc, s, release)
	// No yield separates StartDone returning and the Gen read, so the
	// generation observed is the started op's even if it already completed
	// (and was recycled) synchronously.
	return &Request{c: c, op: op, opGen: op.Gen()}
}

// engine returns the communicator's schedule engine, created lazily.
func (c *Comm) engine() *nbc.Engine {
	if c.nbcEng == nil {
		c.nbcEng = nbc.NewEngine(c.mgr, nbcTransport{c})
		c.nbcEng.Instrument(c.rec, c.met)
		// Shard deferred rounds by the communicator's collective context —
		// the stable key multi-worker progression distributes queues by
		// (sibling communicators land on different workers; a storm on one
		// communicator spreads via stealing).
		c.nbcEng.SetShard(int(c.nbcCtx))
		if c.cfg.NoPooling {
			c.nbcEng.DisablePooling()
		}
	}
	return c.nbcEng
}

// Ibarrier starts a nonblocking barrier.
func (c *Comm) Ibarrier() *Request {
	defer c.span("Ibarrier")()
	return c.nbcStart(coll.OpBarrier, coll.Args{})
}

// Ibcast starts a nonblocking broadcast of data (in place) from root. The
// buffer must not be touched until the request completes.
func (c *Comm) Ibcast(root int, data []byte) *Request {
	defer c.span("Ibcast")()
	c.checkRoot("Ibcast", root)
	return c.nbcStart(coll.OpBcast, coll.Args{Root: root, Data: data})
}

// IallreduceF64 starts a nonblocking elementwise allreduce of x in place.
func (c *Comm) IallreduceF64(x []float64, op coll.Op) *Request {
	defer c.span("IallreduceF64")()
	c.checkOp("IallreduceF64", op)
	return c.nbcStart(coll.OpAllreduce, coll.Args{X: x, Op: op})
}

// IreduceF64 starts a nonblocking reduction of x into root's x (clobbered
// elsewhere).
func (c *Comm) IreduceF64(root int, x []float64, op coll.Op) *Request {
	defer c.span("IreduceF64")()
	c.checkRoot("IreduceF64", root)
	c.checkOp("IreduceF64", op)
	return c.nbcStart(coll.OpReduce, coll.Args{Root: root, X: x, Op: op})
}

// Iallgather starts a nonblocking allgather of each rank's block into out[r].
func (c *Comm) Iallgather(mine []byte, out [][]byte) *Request {
	defer c.span("Iallgather")()
	c.checkAllgather("Iallgather", mine, out)
	return c.nbcStartViews(coll.OpAllgather, coll.Args{Mine: mine, Out: out})
}

// Ialltoall starts a nonblocking alltoall exchange send[r] → rank r.
func (c *Comm) Ialltoall(send, recv [][]byte) *Request {
	defer c.span("Ialltoall")()
	c.checkAlltoall("Ialltoall", send, recv)
	return c.nbcStartViews(coll.OpAlltoall, coll.Args{Send: send, Recv: recv})
}

// Igather starts a nonblocking gather of blocks at root.
func (c *Comm) Igather(root int, mine []byte, out [][]byte) *Request {
	defer c.span("Igather")()
	c.checkGather("Igather", root, mine, out)
	return c.nbcStartViews(coll.OpGather, coll.Args{Root: root, Mine: mine, Out: out})
}

// Iscatter starts a nonblocking scatter of blocks[r] from root to rank r's
// buf (blocks is only read on root).
func (c *Comm) Iscatter(root int, blocks [][]byte, buf []byte) *Request {
	defer c.span("Iscatter")()
	c.checkScatter("Iscatter", root, blocks, buf)
	return c.nbcStartViews(coll.OpScatter, coll.Args{Root: root, Send: blocks, Mine: buf})
}

// ---- argument validation -----------------------------------------------------
//
// Every collective validates its arguments at the entry point so mismatched
// counts fail with a per-operation error instead of a deep panic in a
// schedule builder or a silently truncated transfer. Cross-rank agreement
// (all ranks passing matching counts) remains the caller's contract, as in
// MPI.

func (c *Comm) checkRoot(op string, root int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: %s: root %d out of range [0,%d)", op, root, c.Size()))
	}
}

func (c *Comm) checkOp(op string, f coll.Op) {
	if f == nil {
		panic(fmt.Sprintf("mpi: %s: nil reduction operator", op))
	}
}

func (c *Comm) checkAllgather(op string, mine []byte, out [][]byte) {
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: out has %d blocks for communicator size %d",
			op, len(out), c.Size()))
	}
	if len(out[c.rank]) != len(mine) {
		panic(fmt.Sprintf("mpi: %s: out[%d] is %d bytes but this rank contributes %d",
			op, c.rank, len(out[c.rank]), len(mine)))
	}
}

func (c *Comm) checkAlltoall(op string, send, recv [][]byte) {
	if len(send) != c.Size() || len(recv) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: send has %d blocks, recv %d, communicator size %d",
			op, len(send), len(recv), c.Size()))
	}
	if len(recv[c.rank]) != len(send[c.rank]) {
		panic(fmt.Sprintf("mpi: %s: self block mismatch: send[%d]=%d bytes, recv[%d]=%d",
			op, c.rank, len(send[c.rank]), c.rank, len(recv[c.rank])))
	}
}

func (c *Comm) checkGather(op string, root int, mine []byte, out [][]byte) {
	c.checkRoot(op, root)
	if c.rank != root {
		return
	}
	if len(out) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: out has %d blocks for communicator size %d",
			op, len(out), c.Size()))
	}
	if len(out[root]) != len(mine) {
		panic(fmt.Sprintf("mpi: %s: out[%d] is %d bytes but the root contributes %d",
			op, root, len(out[root]), len(mine)))
	}
}

// checkVec validates one side's count/displacement vectors against the flat
// buffer they index: one count per rank, no negative counts, and every block
// inside the buffer. It reports whether any two nonzero blocks overlap —
// legal for sends (which only read), but such aliased layouts must enter
// the cache key (coll.Args.SDispls) because positional rebinding cannot
// tell overlapping regions apart; receive-side callers panic on overlap
// instead, since aliased receive blocks silently corrupt each other.
func (c *Comm) checkVec(op, side string, buf []byte, counts, displs []int) (overlap bool) {
	if len(counts) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: %d %s counts for communicator size %d",
			op, len(counts), side, c.Size()))
	}
	if displs != nil && len(displs) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: %d %s displacements for communicator size %d",
			op, len(displs), side, c.Size()))
	}
	off := 0
	for r, n := range counts {
		if n < 0 {
			panic(fmt.Sprintf("mpi: %s: negative %s count %d for rank %d", op, side, n, r))
		}
		if displs != nil {
			off = displs[r]
		}
		if off < 0 || off+n > len(buf) {
			panic(fmt.Sprintf("mpi: %s: %s block %d [%d:%d) exceeds buffer length %d",
				op, side, r, off, off+n, len(buf)))
		}
		off += n
	}
	if displs == nil {
		return false // packed layouts cannot overlap
	}
	return blocksAlias(coll.Blocks(buf, counts, displs))
}

// checkDisjoint panics when two caller buffers overlap in memory: the
// vector collectives require disjoint send/receive regions (as MPI does),
// and the schedule cache's positional rebinding relies on it — a region
// aliased across the two argument sets would rebind ambiguously on a later
// same-key call.
func checkDisjoint(op, aName, bName string, a, b []byte) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	pa, pb := uintptr(unsafe.Pointer(&a[0])), uintptr(unsafe.Pointer(&b[0]))
	if pa < pb+uintptr(len(b)) && pb < pa+uintptr(len(a)) {
		panic(fmt.Sprintf("mpi: %s: %s overlaps %s", op, aName, bName))
	}
}

// checkDisjointF64 is checkDisjoint for float64 buffers.
func checkDisjointF64(op, aName, bName string, a, b []float64) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	const esz = unsafe.Sizeof(float64(0))
	pa, pb := uintptr(unsafe.Pointer(&a[0])), uintptr(unsafe.Pointer(&b[0]))
	if pa < pb+uintptr(len(b))*esz && pb < pa+uintptr(len(a))*esz {
		panic(fmt.Sprintf("mpi: %s: %s overlaps %s", op, aName, bName))
	}
}

func (c *Comm) alltoallvArgs(op string, sbuf []byte, scounts, sdispls []int, rbuf []byte, rcounts, rdispls []int) coll.Args {
	sOverlap := c.checkVec(op, "send", sbuf, scounts, sdispls)
	if c.checkVec(op, "recv", rbuf, rcounts, rdispls) {
		panic(fmt.Sprintf("mpi: %s: overlapping recv blocks", op))
	}
	checkDisjoint(op, "recv buffer", "send buffer", rbuf, sbuf)
	if scounts[c.rank] != rcounts[c.rank] {
		panic(fmt.Sprintf("mpi: %s: self block mismatch: scounts[%d]=%d, rcounts[%d]=%d",
			op, c.rank, scounts[c.rank], c.rank, rcounts[c.rank]))
	}
	a := coll.Args{
		Send: coll.Blocks(sbuf, scounts, sdispls),
		Recv: coll.Blocks(rbuf, rcounts, rdispls),
	}
	if sOverlap {
		a.SDispls = sdispls
	}
	return a
}

func (c *Comm) allgathervArgs(op string, mine, rbuf []byte, rcounts, rdispls []int) coll.Args {
	if c.checkVec(op, "recv", rbuf, rcounts, rdispls) {
		panic(fmt.Sprintf("mpi: %s: overlapping recv blocks", op))
	}
	checkDisjoint(op, "recv buffer", "mine", rbuf, mine)
	if rcounts[c.rank] != len(mine) {
		panic(fmt.Sprintf("mpi: %s: rcounts[%d]=%d but this rank contributes %d bytes",
			op, c.rank, rcounts[c.rank], len(mine)))
	}
	return coll.Args{Mine: mine, Out: coll.Blocks(rbuf, rcounts, rdispls), RCounts: rcounts}
}

func (c *Comm) gathervArgs(op string, root int, mine, rbuf []byte, rcounts, rdispls []int) coll.Args {
	c.checkRoot(op, root)
	a := coll.Args{Root: root, Mine: mine}
	if c.rank != root {
		return a
	}
	if c.checkVec(op, "recv", rbuf, rcounts, rdispls) {
		panic(fmt.Sprintf("mpi: %s: overlapping recv blocks", op))
	}
	checkDisjoint(op, "recv buffer", "mine", rbuf, mine)
	if rcounts[root] != len(mine) {
		panic(fmt.Sprintf("mpi: %s: rcounts[%d]=%d but the root contributes %d bytes",
			op, root, rcounts[root], len(mine)))
	}
	a.Out = coll.Blocks(rbuf, rcounts, rdispls)
	return a
}

func (c *Comm) scattervArgs(op string, root int, sbuf []byte, scounts, sdispls []int, buf []byte) coll.Args {
	c.checkRoot(op, root)
	a := coll.Args{Root: root, Mine: buf}
	if c.rank != root {
		return a
	}
	overlap := c.checkVec(op, "send", sbuf, scounts, sdispls)
	checkDisjoint(op, "send buffer", "buf", sbuf, buf)
	if scounts[root] != len(buf) {
		panic(fmt.Sprintf("mpi: %s: scounts[%d]=%d but buf is %d bytes",
			op, root, scounts[root], len(buf)))
	}
	a.Send = coll.Blocks(sbuf, scounts, sdispls)
	if overlap {
		a.SDispls = sdispls
	}
	return a
}

func (c *Comm) reduceScatterArgs(op string, x, recv []float64, counts []int, f coll.Op) coll.Args {
	c.checkOp(op, f)
	checkDisjointF64(op, "recv", "x", recv, x)
	if len(counts) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: %d counts for communicator size %d",
			op, len(counts), c.Size()))
	}
	total := 0
	for r, n := range counts {
		if n < 0 {
			panic(fmt.Sprintf("mpi: %s: negative count %d for rank %d", op, n, r))
		}
		total += n
	}
	if total != len(x) {
		panic(fmt.Sprintf("mpi: %s: counts sum to %d elements but x has %d",
			op, total, len(x)))
	}
	if len(recv) != counts[c.rank] {
		panic(fmt.Sprintf("mpi: %s: recv has %d elements but counts[%d]=%d",
			op, len(recv), c.rank, counts[c.rank]))
	}
	return coll.Args{X: x, RecvF64: recv, RCounts: counts, Op: f}
}

func (c *Comm) checkScatter(op string, root int, blocks [][]byte, buf []byte) {
	c.checkRoot(op, root)
	if c.rank != root {
		return
	}
	if len(blocks) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: blocks has %d entries for communicator size %d",
			op, len(blocks), c.Size()))
	}
	if len(blocks[root]) != len(buf) {
		panic(fmt.Sprintf("mpi: %s: blocks[%d] is %d bytes but buf is %d",
			op, root, len(blocks[root]), len(buf)))
	}
}

// Reduction operators, re-exported.
var (
	OpSum = coll.OpSum
	OpMax = coll.OpMax
	OpMin = coll.OpMin
)

// F64Bytes / BytesF64 re-export the wire codec for float64 vectors.
func F64Bytes(xs []float64) []byte     { return coll.F64Bytes(xs) }
func BytesF64(dst []float64, b []byte) { coll.BytesF64(dst, b) }
