package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/cluster"
	"repro/internal/topo"
	"repro/internal/vtime"
)

func xeonCfg(np int, s cluster.Stack) Config {
	return Config{Cluster: cluster.Xeon2(), Stack: s, NP: np}
}

func gridCfg(np int, s cluster.Stack) Config {
	return Config{Cluster: cluster.Grid5000(), Stack: s, NP: np}
}

// allStacks enumerates every stack preset for cross-backend tests.
func allStacks() []cluster.Stack {
	return []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MPICH2NmadMX(),
		cluster.MPICH2NmadMulti(),
		cluster.MVAPICH2(),
		cluster.OpenMPIIB(),
		cluster.OpenMPIBTLMX(),
		cluster.OpenMPICMMX(),
		cluster.MPICH2NemesisGeneric(),
	}
}

func TestPingPongAllStacksAllSizes(t *testing.T) {
	sizes := []int{0, 1, 64, 4 << 10, 32 << 10, 256 << 10, 2 << 20}
	for _, s := range allStacks() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, size := range sizes {
				msg := make([]byte, size)
				for i := range msg {
					msg[i] = byte(i * 31)
				}
				got := make([]byte, size)
				_, err := Run(xeonCfg(2, s), func(c *Comm) {
					if c.Rank() == 0 {
						c.Send(1, 7, msg)
						c.Recv(1, 8, got)
					} else {
						buf := make([]byte, size)
						c.Recv(0, 7, buf)
						c.Send(0, 8, buf)
					}
				})
				if err != nil {
					t.Fatalf("size %d: %v", size, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("size %d: payload corrupted", size)
				}
			}
		})
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() float64 {
		var dt float64
		_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
			buf := make([]byte, 1024)
			t0 := c.Wtime()
			for i := 0; i < 10; i++ {
				if c.Rank() == 0 {
					c.Send(1, 1, buf)
					c.Recv(1, 1, buf)
				} else {
					c.Recv(0, 1, buf)
					c.Send(0, 1, buf)
				}
			}
			if c.Rank() == 0 {
				dt = c.Wtime() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return dt
	}
	a, b := run(), run()
	if a != b || a <= 0 {
		t.Fatalf("non-deterministic timing: %v vs %v", a, b)
	}
}

// TestLatencyCalibration checks the one-way small-message latencies against
// the paper's reported values (§4.1.1) within 15%.
func TestLatencyCalibration(t *testing.T) {
	oneWay := func(s cluster.Stack, anySource bool) float64 {
		const iters = 200
		var dt float64
		cfg := xeonCfg(2, s)
		_, err := Run(cfg, func(c *Comm) {
			buf := make([]byte, 4)
			src0, src1 := 1, 0
			if anySource {
				// Wildcard on every receive, as in the paper's AS run.
				src0, src1 = AnySource, AnySource
			}
			c.Barrier()
			t0 := c.Wtime()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(1, 1, buf)
					c.Recv(src0, 1, buf)
				} else {
					c.Recv(src1, 1, buf)
					c.Send(0, 1, buf)
				}
			}
			if c.Rank() == 0 {
				dt = (c.Wtime() - t0) / (2 * iters) * 1e6 // one-way µs
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return dt
	}

	checks := []struct {
		name   string
		stack  cluster.Stack
		any    bool
		target float64 // µs
	}{
		{"mvapich2", cluster.MVAPICH2(), false, 1.5},
		{"openmpi-ib", cluster.OpenMPIIB(), false, 1.6},
		{"nmad-ib", cluster.MPICH2NmadIB(), false, 2.1},
		{"nmad-ib-anysource", cluster.MPICH2NmadIB(), true, 2.4},
	}
	for _, ck := range checks {
		got := oneWay(ck.stack, ck.any)
		if math.Abs(got-ck.target)/ck.target > 0.15 {
			t.Errorf("%s: one-way latency %.3f µs, want %.2f ±15%%", ck.name, got, ck.target)
		} else {
			t.Logf("%s: %.3f µs (target %.2f)", ck.name, got, ck.target)
		}
	}
}

// TestBandwidthOrdering checks the large/medium-message relationships of
// Fig. 4(b): MVAPICH2 fastest at 1 MB; NMad beats Open MPI at medium sizes;
// everyone lands near the wire rate at 64 MB.
func TestBandwidthOrdering(t *testing.T) {
	bw := func(s cluster.Stack, size int) float64 {
		var mbps float64
		_, err := Run(xeonCfg(2, s), func(c *Comm) {
			msg := make([]byte, size)
			c.Barrier()
			t0 := c.Wtime()
			const iters = 3
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(1, 1, msg)
					c.Recv(1, 1, msg)
				} else {
					c.Recv(0, 1, msg)
					c.Send(0, 1, msg)
				}
			}
			if c.Rank() == 0 {
				dt := (c.Wtime() - t0) / (2 * iters)
				mbps = float64(size) / dt / (1 << 20)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return mbps
	}
	mv := bw(cluster.MVAPICH2(), 1<<20)
	nm := bw(cluster.MPICH2NmadIB(), 1<<20)
	om := bw(cluster.OpenMPIIB(), 1<<20)
	if !(mv > nm) {
		t.Errorf("1MB: MVAPICH2 (%.0f) should beat NMad (%.0f)", mv, nm)
	}
	nm16 := bw(cluster.MPICH2NmadIB(), 16<<10)
	om16 := bw(cluster.OpenMPIIB(), 16<<10)
	if !(nm16 > om16) {
		t.Errorf("16KB: NMad (%.0f) should beat OpenMPI (%.0f)", nm16, om16)
	}
	big := bw(cluster.MPICH2NmadIB(), 64<<20)
	if big < 1000 || big > 1250 {
		t.Errorf("64MB NMad bandwidth %.0f MB/s, want near wire ~1150-1200", big)
	}
	_ = om
}

// TestMultirailAdditive checks Fig. 5(b): the heterogeneous multirail
// bandwidth approaches the sum of the individual rails.
func TestMultirailAdditive(t *testing.T) {
	bw := func(s cluster.Stack) float64 {
		var mbps float64
		_, err := Run(xeonCfg(2, s), func(c *Comm) {
			msg := make([]byte, 16<<20)
			c.Barrier()
			t0 := c.Wtime()
			if c.Rank() == 0 {
				c.Send(1, 1, msg)
				c.Recv(1, 1, msg)
			} else {
				c.Recv(0, 1, msg)
				c.Send(0, 1, msg)
			}
			if c.Rank() == 0 {
				mbps = float64(len(msg)) / ((c.Wtime() - t0) / 2) / (1 << 20)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return mbps
	}
	ib := bw(cluster.MPICH2NmadIB())
	mx := bw(cluster.MPICH2NmadMX())
	multi := bw(cluster.MPICH2NmadMulti())
	if multi < 1.6*ib || multi < 1.6*mx {
		t.Errorf("multirail %.0f MB/s not additive (ib %.0f, mx %.0f)", multi, ib, mx)
	}
	if multi > ib+mx {
		t.Errorf("multirail %.0f exceeds sum of rails (%.0f)", multi, ib+mx)
	}
}

func TestAnySourceOverNetworkAndShm(t *testing.T) {
	// 4 ranks on 2 nodes: rank 0 receives ANY_SOURCE from both its
	// same-node peer (rank 2, via shm on node 0 with round-robin) and a
	// remote one. Round-robin placement on Xeon2: ranks 0,2 on node0;
	// 1,3 on node1.
	for _, s := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.MVAPICH2()} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			var sources []int
			_, err := Run(xeonCfg(4, s), func(c *Comm) {
				switch c.Rank() {
				case 0:
					for i := 0; i < 3; i++ {
						buf := make([]byte, 8)
						st := c.Recv(AnySource, 5, buf)
						sources = append(sources, st.Source)
						if string(buf[:st.Len]) != fmt.Sprintf("from-%d", st.Source) {
							t.Errorf("payload mismatch from %d: %q", st.Source, buf[:st.Len])
						}
					}
				default:
					c.Send(0, 5, []byte(fmt.Sprintf("from-%d", c.Rank())))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(sources) != 3 {
				t.Fatalf("received %d messages, want 3", len(sources))
			}
			seen := map[int]bool{}
			for _, s := range sources {
				seen[s] = true
			}
			if !seen[1] || !seen[2] || !seen[3] {
				t.Fatalf("sources = %v", sources)
			}
		})
	}
}

func TestAnySourceOrderingWithRegularRecvs(t *testing.T) {
	// §3.2.2: a regular recv posted after an ANY_SOURCE recv with the same
	// tag must not overtake it. Rank 1 sends two messages with tag 9; the
	// AS recv must get the first.
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 9, []byte("first"))
			c.Send(0, 9, []byte("second"))
			return
		}
		bufAS := make([]byte, 8)
		bufReg := make([]byte, 8)
		rAS := c.Irecv(AnySource, 9, bufAS)
		rReg := c.Irecv(1, 9, bufReg)
		c.WaitAll(rAS, rReg)
		if string(bufAS[:5]) != "first" {
			t.Errorf("ANY_SOURCE got %q, want \"first\"", bufAS[:5])
		}
		if string(bufReg[:6]) != "second" {
			t.Errorf("regular recv got %q, want \"second\"", bufReg[:6])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesAllStacks(t *testing.T) {
	for _, s := range []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MVAPICH2(),
		cluster.MPICH2NemesisGeneric(),
	} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, np := range []int{2, 5, 8, 13, 16} {
				np := np
				_, err := Run(gridCfg(np, s), func(c *Comm) {
					// Allreduce sum of ranks.
					x := []float64{float64(c.Rank()), 1}
					c.AllreduceF64(x, OpSum)
					wantSum := float64(np*(np-1)) / 2
					if x[0] != wantSum || x[1] != float64(np) {
						t.Errorf("np=%d allreduce got %v", np, x)
					}
					// Bcast from rank np-1.
					data := make([]byte, 16)
					if c.Rank() == np-1 {
						copy(data, "broadcast-data")
					}
					c.Bcast(np-1, data)
					if string(data[:14]) != "broadcast-data" {
						t.Errorf("np=%d bcast got %q", np, data)
					}
					// Reduce max to root 0.
					y := []float64{float64(c.Rank() * 10)}
					c.ReduceF64(0, y, OpMax)
					if c.Rank() == 0 && y[0] != float64((np-1)*10) {
						t.Errorf("np=%d reduce got %v", np, y)
					}
					// Allgather.
					out := make([][]byte, np)
					for i := range out {
						out[i] = make([]byte, 4)
					}
					mine := []byte{byte(c.Rank()), 0xAA, 0xBB, 0xCC}
					c.Allgather(mine, out)
					for r := 0; r < np; r++ {
						if out[r][0] != byte(r) || out[r][1] != 0xAA {
							t.Errorf("np=%d allgather out[%d] = %v", np, r, out[r])
						}
					}
					// Alltoall.
					snd := make([][]byte, np)
					rcv := make([][]byte, np)
					for i := range snd {
						snd[i] = []byte{byte(c.Rank()), byte(i)}
						rcv[i] = make([]byte, 2)
					}
					c.Alltoall(snd, rcv)
					for r := 0; r < np; r++ {
						if rcv[r][0] != byte(r) || rcv[r][1] != byte(c.Rank()) {
							t.Errorf("np=%d alltoall rcv[%d] = %v", np, r, rcv[r])
						}
					}
					c.Barrier()
				})
				if err != nil {
					t.Fatalf("np=%d: %v", np, err)
				}
			}
		})
	}
}

func TestSelfSendRecv(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, 3, []byte("self"))
			buf := make([]byte, 8)
			st := c.Recv(0, 3, buf)
			if string(buf[:st.Len]) != "self" || st.Source != 0 {
				t.Errorf("self recv st=%+v buf=%q", st, buf)
			}
			// Reverse order: recv posted first.
			q := c.Irecv(0, 4, buf)
			c.Send(0, 4, []byte("second"))
			st = c.Wait(q)
			if string(buf[:st.Len]) != "second" {
				t.Errorf("posted-first self recv %q", buf[:st.Len])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]byte, 8)
			c.Recv(1, 99, buf) // never sent
		}
	})
	if _, ok := err.(*vtime.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestDupContexts(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("on-c"))
			d.Send(1, 1, []byte("on-d"))
		} else {
			bufD := make([]byte, 8)
			bufC := make([]byte, 8)
			// Post d's receive first: contexts must separate the streams.
			qd := d.Irecv(0, 1, bufD)
			qc := c.Irecv(0, 1, bufC)
			d.Wait(qd)
			c.Wait(qc)
			if string(bufC[:4]) != "on-c" || string(bufD[:4]) != "on-d" {
				t.Errorf("bufC=%q bufD=%q", bufC[:4], bufD[:4])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeAndWtime(t *testing.T) {
	_, err := Run(xeonCfg(1, cluster.MPICH2NmadIB()), func(c *Comm) {
		t0 := c.Wtime()
		c.Compute(0.25)
		if dt := c.Wtime() - t0; math.Abs(dt-0.25) > 1e-9 {
			t.Errorf("Compute(0.25) advanced %v", dt)
		}
		t0 = c.Wtime()
		c.ComputeFlops(3.0e9) // 1 second at 3 GF/s (Xeon2 preset)
		if dt := c.Wtime() - t0; math.Abs(dt-1.0) > 1e-6 {
			t.Errorf("ComputeFlops advanced %v", dt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportRailStats(t *testing.T) {
	rep, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 1000))
		} else {
			c.Recv(0, 1, make([]byte, 1000))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rails) != 1 || rep.Rails[0].Packets == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Seconds <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestManyRanksMixedTraffic(t *testing.T) {
	// 16 ranks on 10 nodes: shm and network mixed; ring + random pairs.
	_, err := Run(gridCfg(16, cluster.MPICH2NmadIB()), func(c *Comm) {
		np := c.Size()
		right := (c.Rank() + 1) % np
		left := (c.Rank() - 1 + np) % np
		buf := make([]byte, 512)
		msg := make([]byte, 512)
		for i := range msg {
			msg[i] = byte(c.Rank())
		}
		for iter := 0; iter < 5; iter++ {
			st := c.Sendrecv(right, 1, msg, left, 1, buf)
			if st.Source != left || buf[0] != byte(left) {
				t.Errorf("ring iter %d: st=%+v", iter, st)
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Cluster: topo.Xeon2(), Stack: cluster.MPICH2NmadIB(), NP: 0}, nil); err == nil {
		t.Error("NP=0 must fail")
	}
	bad := cluster.MPICH2NmadIB()
	bad.Rails = nil
	if _, err := Run(Config{Cluster: topo.Xeon2(), Stack: bad, NP: 2}, nil); err == nil {
		t.Error("no rails with cross-node ranks must fail")
	}
	cfg := Config{Cluster: topo.Xeon2(), Stack: cluster.MPICH2NmadIB(), NP: 2,
		Placement: topo.Placement{0}}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("short placement must fail")
	}
}
