package mpi

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/cluster"
)

// ---- datatypes -----------------------------------------------------------------

func TestVectorDatatypePackUnpack(t *testing.T) {
	v := Vector{Count: 3, BlockLen: 2, Stride: 4}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Size() != 6 || v.Extent() != 10 {
		t.Fatalf("size=%d extent=%d", v.Size(), v.Extent())
	}
	user := []byte{1, 2, 0, 0, 3, 4, 0, 0, 5, 6}
	wire := make([]byte, v.Size())
	v.Pack(wire, user)
	if !bytes.Equal(wire, []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("packed %v", wire)
	}
	out := make([]byte, v.Extent())
	v.Unpack(out, wire)
	if !bytes.Equal(out, []byte{1, 2, 0, 0, 3, 4, 0, 0, 5, 6}) {
		t.Fatalf("unpacked %v", out)
	}
}

func TestVectorValidate(t *testing.T) {
	bad := []Vector{
		{Count: 0, BlockLen: 1, Stride: 1},
		{Count: 1, BlockLen: 0, Stride: 1},
		{Count: 2, BlockLen: 4, Stride: 2},
	}
	for _, v := range bad {
		if v.Validate() == nil {
			t.Errorf("%+v should be invalid", v)
		}
	}
}

func TestPropertyVectorRoundTrip(t *testing.T) {
	f := func(countRaw, blockRaw, padRaw uint8, fill byte) bool {
		count := int(countRaw%8) + 1
		block := int(blockRaw%16) + 1
		stride := block + int(padRaw%8)
		v := Vector{Count: count, BlockLen: block, Stride: stride}
		user := make([]byte, v.Extent())
		for i := range user {
			user[i] = fill + byte(i)
		}
		wire := make([]byte, v.Size())
		v.Pack(wire, user)
		out := make([]byte, v.Extent())
		v.Unpack(out, wire)
		// Every block position must round-trip.
		for i := 0; i < count; i++ {
			for j := 0; j < block; j++ {
				if out[i*stride+j] != user[i*stride+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvDatatypeOverNetwork(t *testing.T) {
	// A strided column of a matrix travels packed and lands strided.
	v := Vector{Count: 8, BlockLen: 8, Stride: 64} // one f64 column of an 8x8 f64 matrix
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			user := make([]byte, v.Extent())
			for i := 0; i < v.Count; i++ {
				for j := 0; j < v.BlockLen; j++ {
					user[i*v.Stride+j] = byte(i*10 + j)
				}
			}
			c.SendD(1, 1, user, v, 1)
		} else {
			user := make([]byte, v.Extent())
			st := c.RecvD(0, 1, user, v, 1)
			if st.Len != v.Size() {
				t.Errorf("wire len %d, want %d", st.Len, v.Size())
			}
			for i := 0; i < v.Count; i++ {
				for j := 0; j < v.BlockLen; j++ {
					if user[i*v.Stride+j] != byte(i*10+j) {
						t.Fatalf("strided landing corrupted at block %d byte %d", i, j)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContigDatatype(t *testing.T) {
	ct := Contig{N: 16}
	if ct.Size() != 16 || ct.Extent() != 16 || ct.Name() == "" {
		t.Fatal("contig meta wrong")
	}
	_, err := Run(xeonCfg(2, cluster.MVAPICH2()), func(c *Comm) {
		if c.Rank() == 0 {
			user := make([]byte, 32)
			for i := range user {
				user[i] = byte(i)
			}
			c.SendD(1, 1, user, ct, 2)
		} else {
			user := make([]byte, 32)
			c.RecvD(0, 1, user, ct, 2)
			for i := range user {
				if user[i] != byte(i) {
					t.Fatalf("contig count=2 corrupted at %d", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---- RMA ------------------------------------------------------------------------

func TestRMAPutGet(t *testing.T) {
	for _, s := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.MPICH2NmadIB().WithPIOMan(true)} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			_, err := Run(xeonCfg(4, s), func(c *Comm) {
				win := c.CreateWin(make([]byte, 64))
				rank := c.Rank()
				// Everyone puts its rank byte into slot `rank` of the right
				// neighbour's window.
				right := (rank + 1) % c.Size()
				win.Put(right, rank, []byte{byte(rank + 100)})
				win.Fence()
				left := (rank - 1 + c.Size()) % c.Size()
				if win.Buffer()[left] != byte(left+100) {
					t.Errorf("rank %d window[%d] = %d, want %d",
						rank, left, win.Buffer()[left], left+100)
				}
				// Now read it back from the neighbour with Get.
				got := make([]byte, 1)
				win.Get(right, rank, got)
				win.Fence()
				if got[0] != byte(rank+100) {
					t.Errorf("rank %d got %d, want %d", rank, got[0], rank+100)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRMALocalFastPath(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MVAPICH2()), func(c *Comm) {
		win := c.CreateWin(make([]byte, 8))
		win.Put(c.Rank(), 0, []byte{42})
		got := make([]byte, 1)
		win.Get(c.Rank(), 0, got)
		if got[0] != 42 {
			t.Errorf("local RMA got %d", got[0])
		}
		win.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMALargePut(t *testing.T) {
	// A rendezvous-size Put travels the full protocol path.
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		win := c.CreateWin(make([]byte, 256<<10))
		if c.Rank() == 0 {
			data := make([]byte, 200<<10)
			for i := range data {
				data[i] = byte(i * 7)
			}
			win.Put(1, 0, data)
		}
		win.Fence()
		if c.Rank() == 1 {
			for i := 0; i < 200<<10; i += 4097 {
				if win.Buffer()[i] != byte(i*7) {
					t.Fatalf("large put corrupted at %d", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAMultipleEpochs(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		win := c.CreateWin(make([]byte, 8))
		for epoch := 0; epoch < 5; epoch++ {
			if c.Rank() == 0 {
				win.Put(1, 0, []byte{byte(epoch)})
			}
			win.Fence()
			if c.Rank() == 1 && win.Buffer()[0] != byte(epoch) {
				t.Errorf("epoch %d: window = %d", epoch, win.Buffer()[0])
			}
			win.Fence()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvBytes(t *testing.T) {
	for _, np := range []int{2, 4, 7, 8} {
		np := np
		_, err := Run(gridCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
			rank := c.Rank()
			send := make([][]byte, np)
			recv := make([][]byte, np)
			for r := 0; r < np; r++ {
				// Variable sizes: (rank+1)*(r+1) bytes to rank r.
				send[r] = bytes.Repeat([]byte{byte(rank)}, (rank+1)*(r+1))
				recv[r] = make([]byte, (r+1)*(rank+1))
			}
			c.AlltoallvBytes(send, recv)
			for r := 0; r < np; r++ {
				if len(recv[r]) != (r+1)*(rank+1) {
					t.Errorf("np=%d recv[%d] len %d", np, r, len(recv[r]))
				}
				for _, b := range recv[r] {
					if b != byte(r) {
						t.Fatalf("np=%d recv[%d] has byte %d", np, r, b)
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}

// TestRMATwoPutsPerRankPIOMan reproduces a halo-exchange pattern: every rank
// Puts into both neighbours in one epoch (two incoming ops per target).
func TestRMATwoPutsPerRankPIOMan(t *testing.T) {
	for _, s := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.MPICH2NmadIB().WithPIOMan(true)} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			_, err := Run(xeonCfg(4, s), func(c *Comm) {
				np := c.Size()
				rank := c.Rank()
				win := c.CreateWin(make([]byte, 2))
				up := (rank - 1 + np) % np
				down := (rank + 1) % np
				win.Put(down, 0, []byte{byte(rank + 1)})
				win.Put(up, 1, []byte{byte(rank + 101)})
				win.Fence()
				if win.Buffer()[0] != byte(up+1) || win.Buffer()[1] != byte(down+101) {
					t.Errorf("rank %d window = %v", rank, win.Buffer())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
