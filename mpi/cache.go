package mpi

import (
	"repro/internal/coll"
	"repro/internal/trace"
)

// The per-communicator schedule cache gives collectives persistent-schedule
// semantics (libNBC's NBC_Handle reuse): the first invocation of a shape —
// identified by coll.Key (operation, algorithm, root, counts) — compiles a
// schedule; repeats rebind the cached schedule's buffers to the new call's
// arguments and re-execute it with zero compile work. Rank, size and
// topology are fixed per communicator, so the key fully determines the
// schedule's structure. Cached and uncached execution are identical in
// virtual time: compilation is host work, invisible to the simulation —
// the cache removes host overhead and allocation churn from hot loops
// without perturbing results (asserted by TestSchedCacheDeterminism).
type schedCache struct {
	entries  map[coll.Key]*schedEntry
	compiles int64
	hits     int64
}

type schedEntry struct {
	sched *coll.Schedule
	args  coll.BufArgs
	inUse bool
}

// countCompile records an out-of-cache compilation (the aliased-views
// bypass in schedViews) so SchedCacheStats and the collbench Compiles
// column see every build, cached path or not.
func (c *Comm) countCompile() {
	if c.cache == nil {
		c.cache = &schedCache{entries: make(map[coll.Key]*schedEntry)}
	}
	c.cache.compiles++
	c.met.Counter(trace.CtrSchedCompiles).Inc()
}

// schedEvent annotates a cache decision on the trace: the op/algorithm pair
// and whether the call compiled fresh or rebound a cached schedule.
func (c *Comm) schedEvent(what string, key coll.Key) {
	if c.rec.Enabled() {
		c.rec.Instant("sched", what,
			trace.Str("op", key.Op.String()), trace.Str("algo", key.Algo.String()))
	}
}

// acquireSched returns a ready-to-run schedule for key bound to a's buffers,
// and the release function that returns it to the cache. While an entry is
// in flight (a nonblocking collective not yet complete), a second request
// for the same key compiles a throwaway schedule instead of corrupting the
// cached one.
func (c *Comm) acquireSched(key coll.Key, a coll.Args) (*coll.Schedule, func()) {
	if c.cache == nil {
		c.cache = &schedCache{entries: make(map[coll.Key]*schedEntry)}
	}
	if c.cfg.NoSchedCache {
		c.cache.compiles++
		c.met.Counter(trace.CtrSchedCompiles).Inc()
		c.schedEvent("compile", key)
		return coll.Build(key, a), func() {}
	}
	if e, ok := c.cache.entries[key]; ok {
		if e.inUse {
			c.cache.compiles++
			c.met.Counter(trace.CtrSchedCompiles).Inc()
			c.schedEvent("compile", key)
			return coll.Build(key, a), func() {}
		}
		ba := a.BufArgs()
		e.sched.Rebind(e.args, ba)
		e.args = ba
		e.inUse = true
		c.cache.hits++
		c.met.Counter(trace.CtrSchedHits).Inc()
		c.schedEvent("rebind", key)
		return e.sched, func() { e.inUse = false }
	}
	e := &schedEntry{sched: coll.Build(key, a), args: a.BufArgs(), inUse: true}
	c.cache.entries[key] = e
	c.cache.compiles++
	c.met.Counter(trace.CtrSchedCompiles).Inc()
	c.schedEvent("compile", key)
	return e.sched, func() { e.inUse = false }
}

// SchedCacheStats reports how many schedules this communicator compiled and
// how many invocations reused a cached one — instrumentation for tests and
// cmd/collbench.
func (c *Comm) SchedCacheStats() (compiles, hits int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.compiles, c.cache.hits
}
