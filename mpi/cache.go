package mpi

import (
	"repro/internal/coll"
	"repro/internal/trace"
)

// The per-communicator schedule cache gives collectives persistent-schedule
// semantics (libNBC's NBC_Handle reuse): the first invocation of a shape —
// identified by coll.Key (operation, algorithm, root, counts) — compiles a
// schedule; repeats rebind the cached schedule's buffers to the new call's
// arguments and re-execute it with zero compile work. Rank, size and
// topology are fixed per communicator, so the key fully determines the
// schedule's structure. Cached and uncached execution are identical in
// virtual time: compilation is host work, invisible to the simulation —
// the cache removes host overhead and allocation churn from hot loops
// without perturbing results (asserted by TestSchedCacheDeterminism).
type schedCache struct {
	entries  map[coll.Key]*schedEntry
	compiles int64
	hits     int64

	// Registry counters, resolved once (the rebind hot path must not do
	// map lookups in the registry).
	compilesCtr *trace.Counter
	hitsCtr     *trace.Counter
}

type schedEntry struct {
	sched *coll.Schedule
	args  coll.BufArgs
	// scratch is the flattening target of the next rebind; it swaps with
	// args on every cache hit so the hot path reuses both region lists'
	// capacity instead of allocating.
	scratch coll.BufArgs
	inUse   bool
	// release is the closure handed to callers, built once per entry so a
	// cached start does not allocate it.
	release func()
}

// ensureCache creates the cache on first use.
func (c *Comm) ensureCache() *schedCache {
	if c.cache == nil {
		c.cache = &schedCache{
			entries:     make(map[coll.Key]*schedEntry),
			compilesCtr: c.met.Counter(trace.CtrSchedCompiles),
			hitsCtr:     c.met.Counter(trace.CtrSchedHits),
		}
	}
	return c.cache
}

// noRelease is the release handed out for throwaway (uncached) schedules.
var noRelease = func() {}

// countCompile records an out-of-cache compilation (the aliased-views
// bypass in schedViews) so SchedCacheStats and the collbench Compiles
// column see every build, cached path or not.
func (c *Comm) countCompile() {
	cc := c.ensureCache()
	cc.compiles++
	cc.compilesCtr.Inc()
}

// schedEvent annotates a cache decision on the trace: the op/algorithm pair
// and whether the call compiled fresh or rebound a cached schedule.
func (c *Comm) schedEvent(what string, key coll.Key) {
	if c.rec.Enabled() {
		c.rec.Instant("sched", what,
			trace.Str("op", key.Op.String()), trace.Str("algo", key.Algo.String()))
	}
}

// acquireSched returns a ready-to-run schedule for key bound to a's buffers,
// and the release function that returns it to the cache. While an entry is
// in flight (a nonblocking collective not yet complete), a second request
// for the same key compiles a throwaway schedule instead of corrupting the
// cached one.
func (c *Comm) acquireSched(key coll.Key, a coll.Args) (*coll.Schedule, func()) {
	cc := c.ensureCache()
	if c.cfg.NoSchedCache {
		cc.compiles++
		cc.compilesCtr.Inc()
		c.schedEvent("compile", key)
		return coll.Build(key, a), noRelease
	}
	if e, ok := cc.entries[key]; ok {
		if e.inUse {
			cc.compiles++
			cc.compilesCtr.Inc()
			c.schedEvent("compile", key)
			return coll.Build(key, a), noRelease
		}
		// Flatten into the entry's scratch, rebind, then swap scratch and
		// args: no allocation once both lists have grown to the shape's
		// region count. The old regions are zeroed so the vacated list does
		// not retain the previous invocation's buffers.
		a.BufArgsInto(&e.scratch)
		e.sched.Rebind(e.args, e.scratch)
		e.args, e.scratch = e.scratch, e.args
		clearBufArgs(&e.scratch)
		e.inUse = true
		cc.hits++
		cc.hitsCtr.Inc()
		c.schedEvent("rebind", key)
		return e.sched, e.release
	}
	e := &schedEntry{sched: coll.Build(key, a), args: a.BufArgs(), inUse: true}
	e.release = func() { e.inUse = false }
	cc.entries[key] = e
	cc.compiles++
	cc.compilesCtr.Inc()
	c.schedEvent("compile", key)
	return e.sched, e.release
}

// clearBufArgs drops a flattened region list's references (keeping
// capacity) so swapped-out scratch stops pinning caller buffers.
func clearBufArgs(ba *coll.BufArgs) {
	for i := range ba.Bytes {
		ba.Bytes[i] = nil
	}
	for i := range ba.F64 {
		ba.F64[i] = nil
	}
	ba.Bytes = ba.Bytes[:0]
	ba.F64 = ba.F64[:0]
	ba.Op = nil
}

// SchedCacheStats reports how many schedules this communicator compiled and
// how many invocations reused a cached one — instrumentation for tests and
// cmd/collbench.
func (c *Comm) SchedCacheStats() (compiles, hits int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.compiles, c.cache.hits
}

// PoolStats reports this rank's hot-path free-list effectiveness alongside
// SchedCacheStats: request- and op-pool hits/misses plus the peak number of
// CH3 requests concurrently in flight.
type PoolStats struct {
	ReqHits, ReqMisses int64
	OpHits, OpMisses   int64
	ReqInFlightPeak    int64
}

// PoolStats snapshots the rank's pool counters (registered by Run on the
// same registry the schedule-cache counters live in).
func (c *Comm) PoolStats() PoolStats {
	return PoolStats{
		ReqHits:         c.met.Counter(trace.CtrReqPoolHits).Value(),
		ReqMisses:       c.met.Counter(trace.CtrReqPoolMisses).Value(),
		OpHits:          c.met.Counter(trace.CtrOpPoolHits).Value(),
		OpMisses:        c.met.Counter(trace.CtrOpPoolMisses).Value(),
		ReqInFlightPeak: c.met.Gauge(trace.GaugeReqsInFlight).Peak(),
	}
}
