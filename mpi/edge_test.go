package mpi

import (
	"bytes"
	"testing"

	"repro/cluster"
	"repro/internal/topo"
)

// TestNetworkTruncationRendezvous: the receive buffer is smaller than the
// rendezvous message; the CTS grants only the buffer size, the sender ships
// the granted prefix and both requests complete with Truncated set.
func TestNetworkTruncationRendezvous(t *testing.T) {
	for _, s := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.MVAPICH2(), cluster.MPICH2NemesisGeneric()} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			msg := make([]byte, 1<<20)
			for i := range msg {
				msg[i] = byte(i * 3)
			}
			_, err := Run(xeonCfg(2, s), func(c *Comm) {
				if c.Rank() == 0 {
					c.Send(1, 1, msg)
				} else {
					buf := make([]byte, 4096)
					st := c.Recv(0, 1, buf)
					if !st.Truncated || st.Len != 4096 {
						t.Errorf("status %+v, want truncated 4096", st)
					}
					if !bytes.Equal(buf, msg[:4096]) {
						t.Error("granted prefix corrupted")
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBidirectionalRendezvous: both ranks send large messages to each other
// simultaneously — two interleaved rendezvous handshakes must not deadlock.
func TestBidirectionalRendezvous(t *testing.T) {
	for _, s := range allStacks() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			const size = 512 << 10
			_, err := Run(xeonCfg(2, s), func(c *Comm) {
				me := byte(c.Rank() + 1)
				out := bytes.Repeat([]byte{me}, size)
				in := make([]byte, size)
				other := 1 - c.Rank()
				st := c.Sendrecv(other, 1, out, other, 1, in)
				if st.Len != size {
					t.Errorf("rank %d got %d bytes", c.Rank(), st.Len)
				}
				want := byte(other + 1)
				for i := 0; i < size; i += 7919 {
					if in[i] != want {
						t.Fatalf("rank %d byte %d = %d, want %d", c.Rank(), i, in[i], want)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestManyOutstandingRendezvous: several rendezvous transfers in flight on
// one gate, completed out of posting order by size.
func TestManyOutstandingRendezvous(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		sizes := []int{64 << 10, 256 << 10, 128 << 10, 512 << 10}
		if c.Rank() == 0 {
			var qs []*Request
			for i, n := range sizes {
				msg := bytes.Repeat([]byte{byte(i + 1)}, n)
				qs = append(qs, c.Isend(1, i, msg))
			}
			c.WaitAll(qs...)
		} else {
			var qs []*Request
			bufs := make([][]byte, len(sizes))
			for i, n := range sizes {
				bufs[i] = make([]byte, n)
				qs = append(qs, c.Irecv(0, i, bufs[i]))
			}
			c.WaitAll(qs...)
			for i := range sizes {
				if bufs[i][0] != byte(i+1) || bufs[i][len(bufs[i])-1] != byte(i+1) {
					t.Errorf("transfer %d corrupted", i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagOverNetwork(t *testing.T) {
	for _, s := range []cluster.Stack{cluster.MPICH2NmadIB(), cluster.MVAPICH2()} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			_, err := Run(xeonCfg(2, s), func(c *Comm) {
				if c.Rank() == 0 {
					c.Send(1, 4242, []byte("anytag"))
				} else {
					buf := make([]byte, 8)
					st := c.Recv(0, AnyTag, buf)
					if st.Tag != 4242 || string(buf[:st.Len]) != "anytag" {
						t.Errorf("st=%+v buf=%q", st, buf)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAnySourceAnyTagCombined(t *testing.T) {
	_, err := Run(xeonCfg(4, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				buf := make([]byte, 8)
				st := c.Recv(AnySource, AnyTag, buf)
				if st.Tag != st.Source*100 {
					t.Errorf("tag %d from %d", st.Tag, st.Source)
				}
			}
		} else {
			c.Send(0, c.Rank()*100, []byte{byte(c.Rank())})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestMakesProgress(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("ping"))
		} else {
			buf := make([]byte, 8)
			q := c.Irecv(0, 1, buf)
			// Spin on Test instead of Wait; each Test drives progress.
			for !c.Test(q) {
				c.Compute(100e-9)
			}
			if string(buf[:4]) != "ping" {
				t.Errorf("buf=%q", buf[:4])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCollective(t *testing.T) {
	_, err := Run(gridCfg(7, cluster.MPICH2NmadIB()), func(c *Comm) {
		np := c.Size()
		out := make([][]byte, np)
		for i := range out {
			out[i] = make([]byte, 2)
		}
		mine := []byte{byte(c.Rank()), 0x5A}
		c.Gather(2, mine, out)
		if c.Rank() == 2 {
			for r := 0; r < np; r++ {
				if out[r][0] != byte(r) || out[r][1] != 0x5A {
					t.Errorf("out[%d] = %v", r, out[r])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockPlacementAllShm(t *testing.T) {
	// Four ranks packed on one node: all traffic through Nemesis cells.
	cfg := Config{
		Cluster:   cluster.Xeon2(),
		Stack:     cluster.MPICH2NmadIB(),
		NP:        4,
		Placement: topo.Placement{0, 0, 0, 0},
	}
	rep, err := Run(cfg, func(c *Comm) {
		x := []float64{float64(c.Rank())}
		c.AllreduceF64(x, OpSum)
		if x[0] != 6 {
			t.Errorf("allreduce = %v", x)
		}
		right := (c.Rank() + 1) % 4
		left := (c.Rank() + 3) % 4
		buf := make([]byte, 100<<10) // rendezvous over shm
		msg := make([]byte, 100<<10)
		st := c.Sendrecv(right, 1, msg, left, 1, buf)
		if st.Len != len(msg) {
			t.Errorf("shm rdv len %d", st.Len)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rails {
		if r.Packets != 0 {
			t.Errorf("network used (%d pkts) with single-node placement", r.Packets)
		}
	}
}

func TestThreeRailSplit(t *testing.T) {
	third := cluster.RailMX()
	third.Name = "mx2"
	third.BytesPerSec *= 0.7
	stack := cluster.MPICH2Nmad("nmad-3rail", cluster.RailIB(), cluster.RailMX(), third)
	rep, err := Run(Config{
		Cluster: cluster.Xeon2(), Stack: stack, NP: 2,
		Placement: topo.Placement{0, 1},
	}, func(c *Comm) {
		msg := make([]byte, 32<<20)
		if c.Rank() == 0 {
			c.Send(1, 1, msg)
		} else {
			c.Recv(0, 1, msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rails {
		if r.Bytes < 1<<20 {
			t.Errorf("rail %s carried only %d bytes; want all three active", r.Name, r.Bytes)
		}
	}
}

func TestSendrecvSelfPaired(t *testing.T) {
	// Sendrecv where both peers are self.
	_, err := Run(xeonCfg(1, cluster.MPICH2NmadIB()), func(c *Comm) {
		out := []byte("loop")
		in := make([]byte, 4)
		st := c.Sendrecv(0, 9, out, 0, 9, in)
		if st.Len != 4 || string(in) != "loop" {
			t.Errorf("st=%+v in=%q", st, in)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargestMessage64MB(t *testing.T) {
	// The paper's bandwidth axis tops at 64 MB; make sure the stack moves it.
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadMulti()), func(c *Comm) {
		size := 64 << 20
		if c.Rank() == 0 {
			msg := make([]byte, size)
			msg[0], msg[size-1] = 0xAB, 0xCD
			c.Send(1, 1, msg)
		} else {
			buf := make([]byte, size)
			st := c.Recv(0, 1, buf)
			if st.Len != size || buf[0] != 0xAB || buf[size-1] != 0xCD {
				t.Errorf("64MB transfer corrupted: %+v", st)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAny(t *testing.T) {
	_, err := Run(xeonCfg(3, cluster.MPICH2NmadIB()), func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf1 := make([]byte, 8)
			buf2 := make([]byte, 8)
			q1 := c.Irecv(1, 1, buf1) // never satisfied until late
			q2 := c.Irecv(2, 2, buf2) // satisfied first
			idx, st := c.WaitAny(q1, q2)
			if idx != 1 || st.Source != 2 {
				t.Errorf("WaitAny = (%d, %+v), want (1, from 2)", idx, st)
			}
			c.Wait(q1)
		case 1:
			c.Compute(50e-6) // delay rank 1's send
			c.Send(0, 1, []byte("late"))
		case 2:
			c.Send(0, 2, []byte("early"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyAlreadyDone(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MVAPICH2()), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("x"))
		} else {
			buf := make([]byte, 1)
			q := c.Irecv(0, 1, buf)
			c.Wait(q)
			idx, _ := c.WaitAny(q) // already complete: immediate
			if idx != 0 {
				t.Errorf("idx = %d", idx)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	for _, np := range []int{2, 5, 8} {
		np := np
		_, err := Run(gridCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
			const root = 1
			var blocks [][]byte
			if c.Rank() == root {
				for r := 0; r < np; r++ {
					blocks = append(blocks, []byte{byte(r * 3), 0x77})
				}
			}
			buf := make([]byte, 2)
			c.Scatter(root, blocks, buf)
			if buf[0] != byte(c.Rank()*3) || buf[1] != 0x77 {
				t.Errorf("np=%d rank=%d got %v", np, c.Rank(), buf)
			}
		})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
}
