package mpi

import (
	"math"
	"testing"

	"repro/cluster"
	"repro/internal/topo"
)

// TestSplitBasic: color groups renumber 0..n-1 in (key, rank) order and
// collectives run within the subgroup only.
func TestSplitBasic(t *testing.T) {
	const np = 6
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		sub := c.Split(me%2, me)
		if sub == nil {
			t.Errorf("rank %d: nil subcomm for non-negative color", me)
			return
		}
		if sub.Size() != np/2 {
			t.Errorf("rank %d: subcomm size %d, want %d", me, sub.Size(), np/2)
		}
		if want := me / 2; sub.Rank() != want {
			t.Errorf("rank %d: subcomm rank %d, want %d", me, sub.Rank(), want)
		}

		// Allreduce over the subgroup: evens sum 0+2+4, odds 1+3+5.
		x := []float64{float64(me)}
		sub.AllreduceF64(x, OpSum)
		want := 6.0 // 0+2+4
		if me%2 == 1 {
			want = 9.0 // 1+3+5
		}
		if x[0] != want {
			t.Errorf("rank %d: subcomm allreduce = %g, want %g", me, x[0], want)
		}

		// Point-to-point within the subgroup uses subcomm numbering.
		if sub.Rank() == 0 {
			sub.Send(1, 42, []byte{byte(me)})
		} else if sub.Rank() == 1 {
			buf := make([]byte, 1)
			st := sub.Recv(0, 42, buf)
			if st.Source != 0 {
				t.Errorf("rank %d: status source %d, want subcomm rank 0", me, st.Source)
			}
			if buf[0] != byte(me%2) { // subcomm rank 0 of my parity group
				t.Errorf("rank %d: got %d from subcomm rank 0", me, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitKeyOrdering: keys reorder the subgroup; ties break by parent rank.
func TestSplitKeyOrdering(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		sub := c.Split(0, -me) // reversed order
		if want := np - 1 - me; sub.Rank() != want {
			t.Errorf("rank %d: reversed subcomm rank %d, want %d", me, sub.Rank(), want)
		}
		// Bcast from subcomm root (= parent rank np-1) reaches everyone.
		data := make([]byte, 8)
		if sub.Rank() == 0 {
			for i := range data {
				data[i] = byte(i + 9)
			}
		}
		sub.Bcast(0, data)
		for i := range data {
			if data[i] != byte(i+9) {
				t.Errorf("rank %d: bcast byte %d = %d", me, i, data[i])
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitUndefined: a negative color opts out and returns nil while the
// rest proceed.
func TestSplitUndefined(t *testing.T) {
	const np = 5
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		color := 0
		if me == 2 {
			color = -1
		}
		sub := c.Split(color, me)
		if me == 2 {
			if sub != nil {
				t.Errorf("rank 2: expected nil subcomm for color -1")
			}
			return
		}
		if sub == nil || sub.Size() != np-1 {
			t.Errorf("rank %d: bad subcomm after opt-out", me)
			return
		}
		sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitContextIsolation: same tag, same peer, two communicators — the
// receive posted on the parent must match the parent-context message even
// though the subcomm message was sent first. If Split reused the parent
// context, per-pair FIFO would deliver the subcomm payload to the parent
// receive.
func TestSplitContextIsolation(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		sub := c.Split(0, c.Rank())
		const tag = 5
		if c.Rank() == 0 {
			sub.Send(1, tag, []byte("sub-ctx"))
			c.Send(1, tag, []byte("parent!"))
		} else {
			buf := make([]byte, 7)
			c.Recv(0, tag, buf)
			if string(buf) != "parent!" {
				t.Errorf("parent recv got %q, want \"parent!\" (context leak)", buf)
			}
			sub.Recv(0, tag, buf)
			if string(buf) != "sub-ctx" {
				t.Errorf("subcomm recv got %q, want \"sub-ctx\"", buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDupContextIsolation: the same property for Dup.
func TestDupContextIsolation(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		d := c.Dup()
		const tag = 7
		if c.Rank() == 0 {
			d.Send(1, tag, []byte("dup-ctx"))
			c.Send(1, tag, []byte("origin!"))
		} else {
			buf := make([]byte, 7)
			c.Recv(0, tag, buf)
			if string(buf) != "origin!" {
				t.Errorf("parent recv got %q (context leak)", buf)
			}
			d.Recv(0, tag, buf)
			if string(buf) != "dup-ctx" {
				t.Errorf("dup recv got %q", buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitNodeLeaders: SplitNode groups co-located ranks; SplitLeaders
// returns a communicator only on the lowest rank of each node.
func TestSplitNodeLeaders(t *testing.T) {
	const np = 8
	cfg := xeonCfg(np, cluster.MPICH2NmadIB())
	cfg.Placement = topo.Block(np, cfg.Cluster.NumNodes) // 0-3 node0, 4-7 node1
	_, err := Run(cfg, func(c *Comm) {
		me := c.Rank()
		nodeComm := c.SplitNode()
		if nodeComm.Size() != 4 {
			t.Errorf("rank %d: node comm size %d, want 4", me, nodeComm.Size())
		}
		if want := me % 4; nodeComm.Rank() != want {
			t.Errorf("rank %d: node comm rank %d, want %d", me, nodeComm.Rank(), want)
		}
		leaders := c.SplitLeaders()
		if me == 0 || me == 4 {
			if leaders == nil || leaders.Size() != 2 {
				t.Errorf("rank %d: expected leader comm of size 2", me)
				return
			}
			// Leaders can run their own collective over the rails.
			x := []float64{float64(me)}
			leaders.AllreduceF64(x, OpSum)
			if x[0] != 4 {
				t.Errorf("rank %d: leader allreduce = %g, want 4", me, x[0])
			}
		} else if leaders != nil {
			t.Errorf("rank %d: non-leader got a leader comm", me)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitNodeRagged: SplitNode, SplitLeaders and the two-level collectives
// on an uneven node map over a hierarchical cluster — 5 ranks on node 0, a
// singleton on node 1, 5 more on node 2, NP odd and not a power of two. The
// flat-map assumptions this pins against: per-node sizes derived from
// NP/nodes division, leader election by rank arithmetic instead of the node
// map, and two-level builders choking on a node that hosts exactly one rank.
func TestSplitNodeRagged(t *testing.T) {
	nodeOf := topo.Placement{0, 0, 0, 0, 0, 1, 2, 2, 2, 2, 2}
	np := len(nodeOf)
	cfg := Config{
		Cluster:      cluster.XeonRacks(3),
		Stack:        cluster.MPICH2NmadIB(),
		NP:           np,
		Placement:    nodeOf,
		TwoLevelColl: true,
	}
	nodeSize := map[int]int{0: 5, 1: 1, 2: 5}
	_, err := Run(cfg, func(c *Comm) {
		me := c.Rank()

		node := c.SplitNode()
		if want := nodeSize[nodeOf[me]]; node.Size() != want {
			t.Errorf("rank %d: node comm size %d, want %d", me, node.Size(), want)
		}

		leaders := c.SplitLeaders()
		isLeader := me == 0 || me == 5 || me == 6
		if isLeader {
			if leaders == nil || leaders.Size() != 3 {
				t.Errorf("rank %d: leader comm missing or wrong size", me)
			}
		} else if leaders != nil {
			t.Errorf("rank %d: non-leader got a leader comm", me)
		}

		// Two-level collectives on the ragged map. Root 7 is a non-leader on
		// node 2, exercising the root-promotion rule on an uneven node.
		const root = 7
		data := make([]byte, 100)
		if me == root {
			for i := range data {
				data[i] = byte(i)
			}
		}
		c.Bcast(root, data)
		for i := range data {
			if data[i] != byte(i) {
				t.Errorf("rank %d: bcast byte %d = %d", me, i, data[i])
				break
			}
		}

		x := []float64{float64(me + 1)}
		c.AllreduceF64(x, OpSum)
		if want := float64(np*(np+1)) / 2; x[0] != want {
			t.Errorf("rank %d: allreduce = %g, want %g", me, x[0], want)
		}

		mine := []byte{byte(me), byte(me * 3)}
		out := make([][]byte, np)
		for r := range out {
			out[r] = make([]byte, 2)
		}
		c.Allgather(mine, out)
		for r := range out {
			if out[r][0] != byte(r) || out[r][1] != byte(r*3) {
				t.Errorf("rank %d: allgather block %d = %v", me, r, out[r])
			}
		}
		c.Barrier()

		// A derived communicator inherits a ragged, sparse slice of the node
		// map (odd ranks: nodes {0,0,1,2,2}); two-level still applies there.
		child := c.Split(me%2, me)
		y := []float64{1}
		child.AllreduceF64(y, OpSum)
		if want := float64(child.Size()); y[0] != want {
			t.Errorf("rank %d: child allreduce = %g, want %g", me, y[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitNestedCollectives: subcomms of subcomms, with nonblocking
// collectives running on the innermost level.
func TestSplitNestedCollectives(t *testing.T) {
	const np = 8
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		me := c.Rank()
		half := c.Split(me/4, me)                      // {0..3}, {4..7}
		pair := half.Split(half.Rank()/2, half.Rank()) // pairs
		if pair.Size() != 2 {
			t.Errorf("rank %d: pair size %d", me, pair.Size())
		}
		x := []float64{float64(me), 1}
		q := pair.IallreduceF64(x, OpSum)
		pair.Compute(10e-6)
		pair.Wait(q)
		base := me - me%2
		if want := float64(2*base + 1); x[0] != want || x[1] != 2 {
			t.Errorf("rank %d: pair Iallreduce = %v, want [%g 2]", me, x, want)
		}
		// Collectives on different levels interleave without cross-matching.
		c.Barrier()
		half.Barrier()
		pair.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitAlltoallvBytes: the variable-size alltoall primitive translates
// sub-communicator ranks to world ranks (regression: it used to pass local
// ranks straight to the transport and deadlock on split communicators).
func TestSplitAlltoallvBytes(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		sub := c.Split(me/2, me) // {0,1} and {2,3}
		n := sub.Size()
		send := make([][]byte, n)
		recv := make([][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = []byte{byte(me), byte(r)}
			recv[r] = make([]byte, 2)
		}
		sub.AlltoallvBytes(send, recv)
		base := (me / 2) * 2
		for r := 0; r < n; r++ {
			if recv[r][0] != byte(base+r) || recv[r][1] != byte(sub.Rank()) {
				t.Errorf("rank %d: AlltoallvBytes from sub rank %d = %v", me, r, recv[r])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitTwoLevelOnSubcomm: a subcomm spanning both nodes still applies
// the two-level variants using its restricted placement view.
func TestSplitTwoLevelOnSubcomm(t *testing.T) {
	const np = 8
	cfg := xeonCfg(np, cluster.MPICH2NmadIB())
	cfg.Placement = topo.Block(np, cfg.Cluster.NumNodes)
	cfg.TwoLevelColl = true
	_, err := Run(cfg, func(c *Comm) {
		me := c.Rank()
		sub := c.Split(me%2, me) // evens and odds, each spanning both nodes
		x := make([]float64, 50)
		for i := range x {
			x[i] = float64(me + i)
		}
		sub.AllreduceF64(x, OpSum)
		for i := range x {
			want := 0.0
			for r := me % 2; r < np; r += 2 {
				want += float64(r + i)
			}
			if math.Abs(x[i]-want) > 1e-9 {
				t.Errorf("rank %d: subcomm two-level allreduce[%d] = %g, want %g", me, i, x[i], want)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
