package mpi

import (
	"testing"

	"repro/cluster"
	"repro/internal/topo"
)

// stormLoad is a small multi-communicator nonblocking storm: enough
// concurrent schedules and deferred rounds to keep several progression
// workers busy and their queues deep enough to steal from.
func stormLoad(split bool, window int) func(*Comm) {
	return func(c *Comm) {
		sub := c
		if split {
			sub = c.Split(c.Rank()&1, c.Rank())
		}
		bufs := make([][]float64, window)
		reqs := make([]*Request, window)
		for s := range bufs {
			bufs[s] = make([]float64, 8+s)
		}
		for b := 0; b < 3; b++ {
			for s := range reqs {
				for i := range bufs[s] {
					bufs[s][i] = float64(sub.Rank() + 1)
				}
				reqs[s] = sub.IallreduceF64(bufs[s], OpSum)
			}
			c.WaitAll(reqs...)
		}
	}
}

func workersCfg(np, workers int) Config {
	cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
	cfg.Placement = topo.RoundRobin(np, cluster.Xeon2().NumNodes)
	cfg.Pioman.Workers = workers
	return cfg
}

// TestWorkersValidation: negative counts and multi-worker without PIOMan are
// configuration errors, not silent clamps.
func TestWorkersValidation(t *testing.T) {
	cfg := workersCfg(4, -1)
	if _, err := Run(cfg, func(c *Comm) {}); err == nil {
		t.Fatal("Workers=-1 accepted")
	}
	bad := xeonCfg(4, cluster.MPICH2NmadIB())
	bad.Pioman.Workers = 2
	if _, err := Run(bad, func(c *Comm) {}); err == nil {
		t.Fatal("Workers=2 without PIOMan accepted")
	}
}

// TestWorkersDeterminism: a fixed multi-worker count is a fixed schedule —
// virtual time and engine event counts are bit-identical across repetitions.
func TestWorkersDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		rep, err := Run(workersCfg(8, 3), stormLoad(true, 24))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds, rep.Events
	}
	aS, aE := run()
	bS, bE := run()
	if aS != bS || aE != bE {
		t.Fatalf("Workers=3 runs diverged: %.9fs/%d events != %.9fs/%d events", aS, aE, bS, bE)
	}
}

// TestWorkersOneIsDefault: Workers=1 is the same schedule as the classic
// unset (0) configuration, bit for bit.
func TestWorkersOneIsDefault(t *testing.T) {
	run := func(w int) (float64, int64) {
		rep, err := Run(workersCfg(8, w), stormLoad(true, 24))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds, rep.Events
	}
	dS, dE := run(0)
	oS, oE := run(1)
	if dS != oS || dE != oE {
		t.Fatalf("Workers=1 diverged from default: %.9fs/%d events != %.9fs/%d events", oS, oE, dS, dE)
	}
}

// TestWorkersCounters: multi-worker runs surface the per-worker breakdown
// and the steal counter in the counter snapshot, and a single-communicator
// storm — whose deferred rounds all key onto one shard — forces steals.
func TestWorkersCounters(t *testing.T) {
	rep, err := Run(workersCfg(8, 2), stormLoad(false, 48))
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Counters()
	if len(cs.Workers) != 2 {
		t.Fatalf("snapshot has %d worker rows, want 2", len(cs.Workers))
	}
	var tasks int64
	for _, w := range cs.Workers {
		tasks += w.Tasks
	}
	if tasks == 0 {
		t.Fatal("no deferred tasks ran on any worker")
	}
	if cs.BgSteals == 0 {
		t.Fatal("single-communicator storm produced no steals: the idle worker never helped")
	}
	if cs.Workers[1].Steals != cs.BgSteals {
		t.Errorf("worker 1 steals %d != total %d (world context keys to shard 0)",
			cs.Workers[1].Steals, cs.BgSteals)
	}
}

// TestWorkersRaceStress drives the storm at 2 and 4 workers; under -race it
// doubles as proof that the multi-proc progression has no host-side races
// (the engine runs one proc at a time, and this pins that contract).
func TestWorkersRaceStress(t *testing.T) {
	for _, w := range []int{2, 4} {
		rep, err := Run(workersCfg(8, w), stormLoad(true, 32))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		cs := rep.Counters()
		if cs.NbcStarted == 0 || cs.NbcStarted != cs.NbcCompleted {
			t.Fatalf("workers=%d leaked ops: started %d, completed %d",
				w, cs.NbcStarted, cs.NbcCompleted)
		}
	}
}

// TestWorkersEventBatching: multi-worker progression must not inflate the
// engine's scheduled-event count. Worker wake-ups arriving while a sweep
// is in progress are batched into one end-of-sweep flush — without that, a
// worker wakes, drains one task, sleeps and wakes again for the next
// completion, and Workers=2 costs ~4% more events than the single-worker
// schedule on this storm. The bound pins the batching at 2%.
func TestWorkersEventBatching(t *testing.T) {
	run := func(w int) int64 {
		rep, err := Run(workersCfg(8, w), stormLoad(true, 32))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return rep.Events
	}
	one := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if limit := one + one/50; got > limit {
			t.Errorf("Workers=%d scheduled %d engine events; bound is %d (2%% over Workers=1's %d)",
				w, got, limit, one)
		}
	}
}

// TestWorkersImproveVirtualTime: with deep per-shard queues, parallel
// progression finishes the storm no later than the single worker — the
// deterministic analogue of the paper's multicore progression win.
func TestWorkersImproveVirtualTime(t *testing.T) {
	run := func(w int) float64 {
		rep, err := Run(workersCfg(8, w), stormLoad(true, 64))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	one, two := run(1), run(2)
	if two > one {
		t.Fatalf("Workers=2 finished at %.9fs, later than Workers=1 at %.9fs", two, one)
	}
}
