package mpi

import (
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestStripedBcastEndToEnd: a forced-striped chain bcast on the two-rail
// stack delivers the exact payload to every rank, compiles its schedule once
// and rebinds fresh buffers on cache hits, and the registry's rail counters
// show the payload split across both wires.
func TestStripedBcastEndToEnd(t *testing.T) {
	const np, n = 4, 256 << 10
	cfg := xeonCfg(np, cluster.MPICH2NmadMulti())
	cfg.Coll.Force = map[coll.OpKind]coll.Algo{coll.OpBcast: coll.AlgoChain}
	cfg.Coll.SegBytes = 32 << 10
	cfg.Coll.StripeWidth = 2
	rep, err := Run(cfg, func(c *Comm) {
		for rep := 0; rep < 3; rep++ {
			data := make([]byte, n)
			if c.Rank() == 0 {
				for i := range data {
					data[i] = byte(i>>4 + rep)
				}
			}
			c.Bcast(0, data)
			for i := range data {
				if data[i] != byte(i>>4+rep) {
					t.Fatalf("rank %d rep %d: byte %d corrupted", c.Rank(), rep, i)
				}
			}
		}
		compiles, hits := c.SchedCacheStats()
		if c.Rank() == 0 && (compiles != 1 || hits != 2) {
			t.Errorf("striped shape: compiles=%d hits=%d, want 1/2", compiles, hits)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rails := rep.Counters().Rails
	if len(rails) != 2 {
		t.Fatalf("want 2 rail counters, got %v", rails)
	}
	for _, rc := range rails {
		// 3 bcasts × 256 KiB over a 2-rail stripe: each rail carries well
		// over 100 KiB of payload if the stripe actually split.
		if rc.Bytes < 100<<10 {
			t.Errorf("rail %s carried %d bytes — stripe did not split", rc.Name, rc.Bytes)
		}
	}
}

// TestStripedSelectionMatchesUnstriped: striping is a placement hint, so a
// striped and an unstriped run of the same collective produce identical
// results — and on a single-rail stack the forced width must not even change
// the virtual time.
func TestStripedVirtualTimeSingleRailIdentity(t *testing.T) {
	run := func(stripe int) float64 {
		var elapsed float64
		cfg := xeonCfg(2, cluster.MPICH2NmadIB())
		cfg.Coll.Force = map[coll.OpKind]coll.Algo{coll.OpBcast: coll.AlgoChain}
		cfg.Coll.SegBytes = 32 << 10
		cfg.Coll.StripeWidth = stripe
		_, err := Run(cfg, func(c *Comm) {
			data := make([]byte, 512<<10)
			t0 := c.Wtime()
			c.Bcast(0, data)
			if c.Rank() == 0 {
				elapsed = c.Wtime() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := run(0), run(2); a != b {
		t.Fatalf("stripe width on a single-rail stack changed virtual time: %g vs %g", a, b)
	}
}
