package mpi

import (
	"fmt"

	"repro/internal/ch3"
	"repro/internal/marcel"
	"repro/internal/nbc"
	"repro/internal/pioman"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Status describes a completed receive. Source is a rank of the
// communicator the receive was posted on.
type Status struct {
	Source    int
	Tag       int
	Len       int
	Truncated bool
}

func fromCH3(s ch3.Status) Status {
	return Status{Source: int(s.Source), Tag: int(s.Tag), Len: s.Len, Truncated: s.Truncated}
}

// Request is an in-flight nonblocking operation (point-to-point or
// collective).
type Request struct {
	c  *Comm
	r  *ch3.Request // nil for self-sends/recvs and collectives
	op *nbc.Op      // nonblocking collective, nil otherwise
	st *Status      // self-op status (set on completion)
	ok *bool        // self-op completion flag

	// opGen pins the collective op's acquisition generation: completed ops
	// recycle inside the engine, so completion is read through DoneGen,
	// which stays correct after the struct is reused for another start.
	opGen uint64

	// Self-receive matching state.
	selfTag int32
	selfCtx int32
	selfBuf []byte
}

// Done reports completion.
func (q *Request) Done() bool {
	if q.op != nil {
		return q.op.DoneGen(q.opGen)
	}
	if q.r != nil {
		return q.r.Done()
	}
	return *q.ok
}

// Comm is one rank's communicator handle (MPI_COMM_WORLD by default; Dup
// and Split derive new communicators over fresh contexts). A derived
// communicator renumbers its members 0..Size()-1 and translates to world
// ranks internally.
type Comm struct {
	cfg  Config
	proc *vtime.Proc
	p    *ch3.Process
	node *marcel.Node
	mgr  *pioman.Manager

	// group maps comm-local ranks to world (ch3) ranks; inv is the
	// world→local inverse (-1 for non-members); rank is this process's
	// local rank; nodes maps local ranks to node ids (nil when no
	// placement is known).
	group  []int
	inv    []int
	rank   int
	nodes  []int
	twoLvl bool // two-level collectives apply (precomputed from cfg+nodes)

	ctx     int32 // point-to-point context
	collCtx int32 // blocking-collective context
	nbcCtx  int32 // nonblocking-collective context

	nextCtx *int32 // shared counter for Dup/Split

	nbcEng *nbc.Engine // lazily created schedule engine
	cache  *schedCache // per-communicator persistent-schedule cache

	rec *trace.Recorder // event recorder (nil when tracing is off)
	met *trace.Registry // this rank's counter registry (never nil under Run)

	selfSends []selfMsg
	selfRecvs []*Request
}

type selfMsg struct {
	tag  int32
	ctx  int32
	data []byte
}

func newComm(cfg Config, proc *vtime.Proc, p *ch3.Process, node *marcel.Node,
	mgr *pioman.Manager, rec *trace.Recorder, met *trace.Registry) *Comm {
	next := int32(3)
	group := make([]int, p.Size)
	inv := make([]int, p.Size)
	for i := range group {
		group[i] = i
		inv[i] = i
	}
	var nodes []int
	if len(cfg.Placement) == p.Size {
		nodes = append([]int(nil), cfg.Placement...)
	}
	return &Comm{cfg: cfg, proc: proc, p: p, node: node, mgr: mgr,
		group: group, inv: inv, rank: p.Rank, nodes: nodes,
		twoLvl: twoLevelApplies(&cfg, nodes),
		ctx:    0, collCtx: 1, nbcCtx: 2, nextCtx: &next,
		rec: rec, met: met}
}

// noEnd is the span closer handed out when tracing is off.
var noEnd = func() {}

// span opens an "mpi" entry-point span and returns its closer. With tracing
// off it returns immediately; entry points pay only a nil check.
func (c *Comm) span(name string, args ...trace.Arg) func() {
	if c.rec == nil {
		return noEnd
	}
	return c.rec.Span("mpi", name, args...)
}

// Mark drops a named instant event on this rank's app track — an
// application annotation (phase boundaries, iteration markers) that trace
// consumers such as bench.OverlapFromTrace key on. No-op when tracing is off.
func (c *Comm) Mark(name string) {
	c.rec.Instant("mark", name)
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// world translates a comm-local rank to the underlying process rank.
func (c *Comm) world(r int) int { return c.group[r] }

// localOf translates a world rank back to this communicator's numbering
// (identity for ranks outside the group, which only self-ops produce).
func (c *Comm) localOf(w int) int {
	if w >= 0 && w < len(c.inv) && c.inv[w] >= 0 {
		return c.inv[w]
	}
	return w
}

// Dup returns a communicator with the same group over fresh contexts
// (all ranks must call it in the same order, as in MPI).
func (c *Comm) Dup() *Comm {
	d := *c
	d.ctx = *c.nextCtx
	d.collCtx = *c.nextCtx + 1
	d.nbcCtx = *c.nextCtx + 2
	*c.nextCtx += 3
	d.nbcEng = nil
	d.cache = nil
	d.selfSends = nil
	d.selfRecvs = nil
	return &d
}

// Wtime returns the current virtual time in seconds.
func (c *Comm) Wtime() float64 { return c.proc.Now().Seconds() }

// Compute occupies a core for the given number of virtual seconds.
func (c *Comm) Compute(seconds float64) {
	end := c.span("Compute")
	c.node.Compute(c.proc, vtime.DurationOf(seconds))
	end()
}

// ComputeFlops occupies a core for the time ops floating-point operations
// take at the cluster's sustained per-core rate (scaled by the stack's
// compute efficiency).
func (c *Comm) ComputeFlops(ops float64) {
	rate := c.cfg.Cluster.FlopsPerCore * c.cfg.Stack.Efficiency()
	c.Compute(ops / rate)
}

// ---- point to point --------------------------------------------------------

// Isend starts a nonblocking send.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	defer c.span("Isend", trace.Int64("dst", int64(dst)), trace.Int64("bytes", int64(len(data))))()
	c.checkRank(dst, "Isend")
	if dst == c.rank {
		return c.selfIsend(int32(tag), c.ctx, data)
	}
	return &Request{c: c, r: c.p.Isend(c.proc, c.world(dst), int32(tag), c.ctx, data)}
}

// Irecv starts a nonblocking receive; src may be AnySource, tag AnyTag.
func (c *Comm) Irecv(src, tag int, buf []byte) *Request {
	defer c.span("Irecv", trace.Int64("src", int64(src)))()
	if src != AnySource {
		c.checkRank(src, "Irecv")
	}
	if src == c.rank {
		return c.selfIrecv(int32(tag), c.ctx, buf)
	}
	wsrc := src
	if src != AnySource {
		wsrc = c.world(src)
	}
	return &Request{c: c, r: c.p.Irecv(c.proc, wsrc, int32(tag), c.ctx, buf)}
}

// Send is a blocking send.
func (c *Comm) Send(dst, tag int, data []byte) {
	defer c.span("Send", trace.Int64("dst", int64(dst)), trace.Int64("bytes", int64(len(data))))()
	c.Wait(c.Isend(dst, tag, data))
}

// Recv is a blocking receive.
func (c *Comm) Recv(src, tag int, buf []byte) Status {
	defer c.span("Recv", trace.Int64("src", int64(src)))()
	return c.Wait(c.Irecv(src, tag, buf))
}

// Wait blocks until the request completes and returns its status (zero
// Status for sends).
func (c *Comm) Wait(q *Request) Status {
	end := c.span("Wait")
	c.mgr.WaitUntil(c.proc, q.Done)
	end()
	return q.status()
}

// WaitAll blocks until every request completes.
func (c *Comm) WaitAll(qs ...*Request) {
	defer c.span("WaitAll", trace.Int64("n", int64(len(qs))))()
	// The predicate re-runs on every completion broadcast while blocked. A
	// cursor makes the re-checks amortized O(1): completed requests stay
	// completed, so the scan resumes at the first request not yet seen done
	// instead of walking the whole window each wake — with thousands of
	// outstanding requests and per-sweep wakeups the full rescan dominates
	// host time.
	i := 0
	c.mgr.WaitUntil(c.proc, func() bool {
		for i < len(qs) && (qs[i] == nil || qs[i].Done()) {
			i++
		}
		return i == len(qs)
	})
}

// WaitAny blocks until at least one request completes and returns its index
// and status (MPI_Waitany). Indexes of already-completed requests win.
func (c *Comm) WaitAny(qs ...*Request) (int, Status) {
	defer c.span("WaitAny", trace.Int64("n", int64(len(qs))))()
	idx := -1
	c.mgr.WaitUntil(c.proc, func() bool {
		for i, q := range qs {
			if q != nil && q.Done() {
				idx = i
				return true
			}
		}
		return false
	})
	return idx, qs[idx].status()
}

// Test reports whether the request completed, after one progress pass.
func (c *Comm) Test(q *Request) bool {
	if q.Done() {
		return true
	}
	c.mgr.Progress(c.proc)
	return q.Done()
}

// Sendrecv performs a concurrent send and receive (both with tag).
func (c *Comm) Sendrecv(dst, stag int, sdata []byte, src, rtag int, rbuf []byte) Status {
	defer c.span("Sendrecv", trace.Int64("dst", int64(dst)), trace.Int64("src", int64(src)))()
	rq := c.Irecv(src, rtag, rbuf)
	sq := c.Isend(dst, stag, sdata)
	c.WaitAll(sq, rq)
	return rq.status()
}

func (q *Request) status() Status {
	if q.r != nil {
		if q.r.IsRecv() {
			st := fromCH3(q.r.Stat)
			st.Source = q.c.localOf(st.Source)
			return st
		}
		return Status{}
	}
	if q.st != nil {
		return *q.st
	}
	return Status{}
}

func (c *Comm) checkRank(r int, op string) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", op, r, c.Size()))
	}
}

// ---- self messaging ---------------------------------------------------------
//
// MPI allows a process to send to itself (nonblocking, buffered below the
// eager threshold). Matching is by (ctx, tag); AnySource receives do not
// match self messages in this implementation (documented limitation).

func (c *Comm) selfIsend(tag, ctx int32, data []byte) *Request {
	cp := make([]byte, len(data))
	copy(cp, data)
	done := true
	q := &Request{c: c, ok: &done}
	// Try pending self receives first (FIFO).
	for i, rq := range c.selfRecvs {
		if rq.matchSelf(tag, ctx) {
			copy(c.selfRecvs[i:], c.selfRecvs[i+1:])
			c.selfRecvs[len(c.selfRecvs)-1] = nil // drop the tail reference
			c.selfRecvs = c.selfRecvs[:len(c.selfRecvs)-1]
			rq.completeSelf(c.rank, tag, cp)
			return q
		}
	}
	c.selfSends = append(c.selfSends, selfMsg{tag: tag, ctx: ctx, data: cp})
	return q
}

func (q *Request) matchSelf(tag, ctx int32) bool {
	return q.selfCtx == ctx && (q.selfTag == int32(AnyTag) || q.selfTag == tag)
}

func (q *Request) completeSelf(src int, tag int32, data []byte) {
	n := copy(q.selfBuf, data)
	*q.ok = true
	*q.st = Status{Source: src, Tag: int(tag), Len: n, Truncated: n < len(data)}
}

func (c *Comm) selfIrecv(tag, ctx int32, buf []byte) *Request {
	done := false
	st := Status{}
	q := &Request{c: c, ok: &done, st: &st, selfTag: tag, selfCtx: ctx, selfBuf: buf}
	for i, m := range c.selfSends {
		if m.ctx == ctx && (tag == int32(AnyTag) || tag == m.tag) {
			copy(c.selfSends[i:], c.selfSends[i+1:])
			c.selfSends[len(c.selfSends)-1] = selfMsg{} // drop the tail's payload
			c.selfSends = c.selfSends[:len(c.selfSends)-1]
			q.completeSelf(c.rank, m.tag, m.data)
			return q
		}
	}
	c.selfRecvs = append(c.selfRecvs, q)
	return q
}
