package mpi

import (
	"fmt"

	"repro/internal/ch3"
	"repro/internal/coll"
	"repro/internal/marcel"
	"repro/internal/nbc"
	"repro/internal/pioman"
	"repro/internal/vtime"
)

// Status describes a completed receive.
type Status struct {
	Source    int
	Tag       int
	Len       int
	Truncated bool
}

func fromCH3(s ch3.Status) Status {
	return Status{Source: int(s.Source), Tag: int(s.Tag), Len: s.Len, Truncated: s.Truncated}
}

// Request is an in-flight nonblocking operation (point-to-point or
// collective).
type Request struct {
	c  *Comm
	r  *ch3.Request // nil for self-sends/recvs and collectives
	op *nbc.Op      // nonblocking collective, nil otherwise
	st *Status      // self-op status (set on completion)
	ok *bool        // self-op completion flag

	// Self-receive matching state.
	selfTag int32
	selfCtx int32
	selfBuf []byte
}

// Done reports completion.
func (q *Request) Done() bool {
	if q.op != nil {
		return q.op.Done()
	}
	if q.r != nil {
		return q.r.Done()
	}
	return *q.ok
}

// Comm is one rank's communicator handle (MPI_COMM_WORLD by default; Dup
// derives new contexts).
type Comm struct {
	cfg  Config
	proc *vtime.Proc
	p    *ch3.Process
	node *marcel.Node
	mgr  *pioman.Manager

	ctx     int32 // point-to-point context
	collCtx int32 // blocking-collective context
	nbcCtx  int32 // nonblocking-collective context

	nextCtx *int32 // shared counter for Dup

	nbcEng *nbc.Engine // lazily created schedule engine

	selfSends []selfMsg
	selfRecvs []*Request
}

type selfMsg struct {
	tag  int32
	ctx  int32
	data []byte
}

func newComm(cfg Config, proc *vtime.Proc, p *ch3.Process, node *marcel.Node, mgr *pioman.Manager) *Comm {
	next := int32(3)
	return &Comm{cfg: cfg, proc: proc, p: p, node: node, mgr: mgr,
		ctx: 0, collCtx: 1, nbcCtx: 2, nextCtx: &next}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.p.Rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.p.Size }

// Dup returns a communicator with fresh contexts (local operation; all
// ranks must call it in the same order, as in MPI).
func (c *Comm) Dup() *Comm {
	d := *c
	d.ctx = *c.nextCtx
	d.collCtx = *c.nextCtx + 1
	d.nbcCtx = *c.nextCtx + 2
	*c.nextCtx += 3
	d.nbcEng = nil
	d.selfSends = nil
	d.selfRecvs = nil
	return &d
}

// Wtime returns the current virtual time in seconds.
func (c *Comm) Wtime() float64 { return c.proc.Now().Seconds() }

// Compute occupies a core for the given number of virtual seconds.
func (c *Comm) Compute(seconds float64) {
	c.node.Compute(c.proc, vtime.DurationOf(seconds))
}

// ComputeFlops occupies a core for the time ops floating-point operations
// take at the cluster's sustained per-core rate (scaled by the stack's
// compute efficiency).
func (c *Comm) ComputeFlops(ops float64) {
	rate := c.cfg.Cluster.FlopsPerCore * c.cfg.Stack.Efficiency()
	c.Compute(ops / rate)
}

// ---- point to point --------------------------------------------------------

// Isend starts a nonblocking send.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.checkRank(dst, "Isend")
	if dst == c.Rank() {
		return c.selfIsend(int32(tag), c.ctx, data)
	}
	return &Request{c: c, r: c.p.Isend(c.proc, dst, int32(tag), c.ctx, data)}
}

// Irecv starts a nonblocking receive; src may be AnySource, tag AnyTag.
func (c *Comm) Irecv(src, tag int, buf []byte) *Request {
	if src != AnySource {
		c.checkRank(src, "Irecv")
	}
	if src == c.Rank() {
		return c.selfIrecv(int32(tag), c.ctx, buf)
	}
	return &Request{c: c, r: c.p.Irecv(c.proc, src, int32(tag), c.ctx, buf)}
}

// Send is a blocking send.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.Wait(c.Isend(dst, tag, data))
}

// Recv is a blocking receive.
func (c *Comm) Recv(src, tag int, buf []byte) Status {
	return c.Wait(c.Irecv(src, tag, buf))
}

// Wait blocks until the request completes and returns its status (zero
// Status for sends).
func (c *Comm) Wait(q *Request) Status {
	c.mgr.WaitUntil(c.proc, q.Done)
	return q.status()
}

// WaitAll blocks until every request completes.
func (c *Comm) WaitAll(qs ...*Request) {
	c.mgr.WaitUntil(c.proc, func() bool {
		for _, q := range qs {
			if q != nil && !q.Done() {
				return false
			}
		}
		return true
	})
}

// WaitAny blocks until at least one request completes and returns its index
// and status (MPI_Waitany). Indexes of already-completed requests win.
func (c *Comm) WaitAny(qs ...*Request) (int, Status) {
	idx := -1
	c.mgr.WaitUntil(c.proc, func() bool {
		for i, q := range qs {
			if q != nil && q.Done() {
				idx = i
				return true
			}
		}
		return false
	})
	return idx, qs[idx].status()
}

// Test reports whether the request completed, after one progress pass.
func (c *Comm) Test(q *Request) bool {
	if q.Done() {
		return true
	}
	c.mgr.Progress(c.proc)
	return q.Done()
}

// Sendrecv performs a concurrent send and receive (both with tag).
func (c *Comm) Sendrecv(dst, stag int, sdata []byte, src, rtag int, rbuf []byte) Status {
	rq := c.Irecv(src, rtag, rbuf)
	sq := c.Isend(dst, stag, sdata)
	c.WaitAll(sq, rq)
	return rq.status()
}

func (q *Request) status() Status {
	if q.r != nil {
		if q.r.IsRecv() {
			return fromCH3(q.r.Stat)
		}
		return Status{}
	}
	if q.st != nil {
		return *q.st
	}
	return Status{}
}

func (c *Comm) checkRank(r int, op string) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("mpi: %s rank %d out of range [0,%d)", op, r, c.Size()))
	}
}

// ---- self messaging ---------------------------------------------------------
//
// MPI allows a process to send to itself (nonblocking, buffered below the
// eager threshold). Matching is by (ctx, tag); AnySource receives do not
// match self messages in this implementation (documented limitation).

func (c *Comm) selfIsend(tag, ctx int32, data []byte) *Request {
	cp := make([]byte, len(data))
	copy(cp, data)
	done := true
	q := &Request{c: c, ok: &done}
	// Try pending self receives first (FIFO).
	for i, rq := range c.selfRecvs {
		if rq.matchSelf(tag, ctx) {
			c.selfRecvs = append(c.selfRecvs[:i], c.selfRecvs[i+1:]...)
			rq.completeSelf(c.Rank(), tag, cp)
			return q
		}
	}
	c.selfSends = append(c.selfSends, selfMsg{tag: tag, ctx: ctx, data: cp})
	return q
}

func (q *Request) matchSelf(tag, ctx int32) bool {
	return q.selfCtx == ctx && (q.selfTag == int32(AnyTag) || q.selfTag == tag)
}

func (q *Request) completeSelf(src int, tag int32, data []byte) {
	n := copy(q.selfBuf, data)
	*q.ok = true
	*q.st = Status{Source: src, Tag: int(tag), Len: n, Truncated: n < len(data)}
}

func (c *Comm) selfIrecv(tag, ctx int32, buf []byte) *Request {
	done := false
	st := Status{}
	q := &Request{c: c, ok: &done, st: &st, selfTag: tag, selfCtx: ctx, selfBuf: buf}
	for i, m := range c.selfSends {
		if m.ctx == ctx && (tag == int32(AnyTag) || tag == m.tag) {
			c.selfSends = append(c.selfSends[:i], c.selfSends[i+1:]...)
			q.completeSelf(c.Rank(), m.tag, m.data)
			return q
		}
	}
	c.selfRecvs = append(c.selfRecvs, q)
	return q
}

// ---- collectives -------------------------------------------------------------

// SendT / RecvT / SendRecvT implement coll.PtPt on the collective context.
func (c *Comm) SendT(dst int, tag int32, data []byte) {
	if dst == c.Rank() {
		panic("mpi: collective self-send")
	}
	r := c.p.Isend(c.proc, dst, tag, c.collCtx, data)
	c.mgr.WaitUntil(c.proc, r.Done)
}

// RecvT receives on the collective context.
func (c *Comm) RecvT(src int, tag int32, buf []byte) int {
	r := c.p.Irecv(c.proc, src, tag, c.collCtx, buf)
	c.mgr.WaitUntil(c.proc, r.Done)
	return r.Stat.Len
}

// SendRecvT performs a concurrent exchange on the collective context.
func (c *Comm) SendRecvT(dst int, sdata []byte, src int, rbuf []byte, tag int32) int {
	rr := c.p.Irecv(c.proc, src, tag, c.collCtx, rbuf)
	sr := c.p.Isend(c.proc, dst, tag, c.collCtx, sdata)
	c.mgr.WaitUntil(c.proc, func() bool { return rr.Done() && sr.Done() })
	return rr.Stat.Len
}

// Barrier blocks until all ranks reach it.
func (c *Comm) Barrier() { coll.ExecBlocking(c, c.barrierSchedule(), 0) }

// Bcast distributes data (in place) from root.
func (c *Comm) Bcast(root int, data []byte) { coll.ExecBlocking(c, c.bcastSchedule(root, data), 1) }

// AllreduceF64 combines x elementwise across ranks, in place.
func (c *Comm) AllreduceF64(x []float64, op coll.Op) {
	coll.ExecBlocking(c, c.allreduceSchedule(x, op), 2)
}

// ReduceF64 combines x into root's x (clobbered elsewhere).
func (c *Comm) ReduceF64(root int, x []float64, op coll.Op) { coll.Reduce(c, root, x, op, 3) }

// Allgather collects each rank's block into out[r].
func (c *Comm) Allgather(mine []byte, out [][]byte) { coll.Allgather(c, mine, out, 4) }

// Alltoall exchanges send[r] → rank r into recv[s].
func (c *Comm) Alltoall(send, recv [][]byte) { coll.Alltoall(c, send, recv, 5) }

// Gather collects blocks at root.
func (c *Comm) Gather(root int, mine []byte, out [][]byte) { coll.Gather(c, root, mine, out, 6) }

// Scatter distributes blocks[r] from root to rank r's buf (MPI_Scatter;
// blocks is only read on root).
func (c *Comm) Scatter(root int, blocks [][]byte, buf []byte) {
	if c.Rank() == root {
		copy(buf, blocks[c.Rank()])
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.SendT(r, 8, blocks[r])
			}
		}
		return
	}
	c.RecvT(root, 8, buf)
}

// ---- schedule selection ------------------------------------------------------
//
// Collectives compile to per-rank schedules (internal/coll). When the stack
// is configured for topology-aware collectives and several ranks share a
// node, the two-level variants route intra-node traffic over shared memory
// and let only the per-node leaders touch the network rails.

// twoLevel reports whether the hierarchical variants apply.
func (c *Comm) twoLevel() bool {
	if !c.cfg.TwoLevelColl || len(c.cfg.Placement) != c.Size() {
		return false
	}
	return c.cfg.Placement.MaxRanksPerNode(c.cfg.Cluster.NumNodes) > 1
}

func (c *Comm) barrierSchedule() *coll.Schedule {
	if c.twoLevel() {
		return coll.BuildBarrierTwoLevel(c.Rank(), c.cfg.Placement)
	}
	return coll.BuildBarrier(c.Rank(), c.Size())
}

func (c *Comm) bcastSchedule(root int, data []byte) *coll.Schedule {
	if c.twoLevel() {
		return coll.BuildBcastTwoLevel(c.Rank(), c.cfg.Placement, root, data)
	}
	return coll.BuildBcast(c.Rank(), c.Size(), root, data)
}

func (c *Comm) allreduceSchedule(x []float64, op coll.Op) *coll.Schedule {
	if c.twoLevel() {
		return coll.BuildAllreduceTwoLevel(c.Rank(), c.cfg.Placement, x, op)
	}
	return coll.BuildAllreduce(c.Rank(), c.Size(), x, op)
}

// ---- nonblocking collectives -------------------------------------------------
//
// The I* operations compile the same schedules as their blocking
// counterparts but hand them to the internal/nbc engine: the calling thread
// issues round 0 and returns immediately; subsequent rounds are driven by
// the progress engine, so with PIOMan enabled the collective advances on an
// idle core while the caller computes. The returned *Request composes with
// Wait, WaitAll, WaitAny and Test.

// nbcTransport adapts the CH3 layer to the nbc engine on the nbc context.
type nbcTransport struct{ c *Comm }

func (t nbcTransport) Isend(proc *vtime.Proc, dst int, tag int32, data []byte) nbc.Req {
	return t.c.p.Isend(proc, dst, tag, t.c.nbcCtx, data)
}

func (t nbcTransport) Irecv(proc *vtime.Proc, src int, tag int32, buf []byte) nbc.Req {
	return t.c.p.Irecv(proc, src, tag, t.c.nbcCtx, buf)
}

func (c *Comm) nbcStart(s *coll.Schedule) *Request {
	if c.nbcEng == nil {
		c.nbcEng = nbc.NewEngine(c.mgr, nbcTransport{c})
	}
	return &Request{c: c, op: c.nbcEng.Start(c.proc, s)}
}

// Ibarrier starts a nonblocking barrier.
func (c *Comm) Ibarrier() *Request {
	return c.nbcStart(c.barrierSchedule())
}

// Ibcast starts a nonblocking broadcast of data (in place) from root. The
// buffer must not be touched until the request completes.
func (c *Comm) Ibcast(root int, data []byte) *Request {
	return c.nbcStart(c.bcastSchedule(root, data))
}

// IallreduceF64 starts a nonblocking elementwise allreduce of x in place.
func (c *Comm) IallreduceF64(x []float64, op coll.Op) *Request {
	return c.nbcStart(c.allreduceSchedule(x, op))
}

// Iallgather starts a nonblocking allgather of each rank's block into out[r].
func (c *Comm) Iallgather(mine []byte, out [][]byte) *Request {
	return c.nbcStart(coll.BuildAllgather(c.Rank(), c.Size(), mine, out))
}

// Ialltoall starts a nonblocking alltoall exchange send[r] → rank r.
func (c *Comm) Ialltoall(send, recv [][]byte) *Request {
	return c.nbcStart(coll.BuildAlltoall(c.Rank(), c.Size(), send, recv))
}

// Reduction operators, re-exported.
var (
	OpSum = coll.OpSum
	OpMax = coll.OpMax
	OpMin = coll.OpMin
)

// F64Bytes / BytesF64 re-export the wire codec for float64 vectors.
func F64Bytes(xs []float64) []byte     { return coll.F64Bytes(xs) }
func BytesF64(dst []float64, b []byte) { coll.BytesF64(dst, b) }
