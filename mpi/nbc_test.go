package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/cluster"
	"repro/internal/topo"
)

// nbcStacks are the stacks the nonblocking-collective engine is exercised
// under: the paper's system with and without PIOMan, and a baseline.
func nbcStacks() []cluster.Stack {
	return []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MVAPICH2(),
	}
}

// runNbcAllOps runs all five nonblocking collectives on np ranks and checks
// their results against the blocking counterparts computed in-run.
func runNbcAllOps(t *testing.T, cfg Config) {
	t.Helper()
	np := cfg.NP
	_, err := Run(cfg, func(c *Comm) {
		me := c.Rank()

		// Ibarrier: just completes on all ranks.
		c.Wait(c.Ibarrier())

		// Ibcast vs Bcast.
		want := make([]byte, 3000)
		for i := range want {
			want[i] = byte(i * 7)
		}
		got := make([]byte, len(want))
		if me == 1%np {
			copy(got, want)
		}
		c.Wait(c.Ibcast(1%np, got))
		if !bytes.Equal(got, want) {
			t.Errorf("np=%d rank %d: Ibcast mismatch", np, me)
		}

		// IallreduceF64 vs AllreduceF64.
		x := make([]float64, 33)
		y := make([]float64, 33)
		for i := range x {
			x[i] = float64(me*100 + i)
			y[i] = x[i]
		}
		c.AllreduceF64(y, OpSum)
		c.Wait(c.IallreduceF64(x, OpSum))
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				t.Errorf("np=%d rank %d: Iallreduce[%d] = %g, want %g", np, me, i, x[i], y[i])
				break
			}
		}

		// Iallgather vs Allgather.
		mine := []byte(fmt.Sprintf("rank-%02d", me))
		outB := make([][]byte, np)
		outN := make([][]byte, np)
		for r := range outB {
			outB[r] = make([]byte, len(mine))
			outN[r] = make([]byte, len(mine))
		}
		c.Allgather(mine, outB)
		c.Wait(c.Iallgather(mine, outN))
		for r := range outB {
			if !bytes.Equal(outB[r], outN[r]) {
				t.Errorf("np=%d rank %d: Iallgather[%d] = %q, want %q", np, me, r, outN[r], outB[r])
			}
		}

		// Ialltoall vs Alltoall.
		send := make([][]byte, np)
		recvB := make([][]byte, np)
		recvN := make([][]byte, np)
		for r := range send {
			send[r] = []byte(fmt.Sprintf("%02d->%02d", me, r))
			recvB[r] = make([]byte, len(send[r]))
			recvN[r] = make([]byte, len(send[r]))
		}
		c.Alltoall(send, recvB)
		c.Wait(c.Ialltoall(send, recvN))
		for r := range recvB {
			if !bytes.Equal(recvB[r], recvN[r]) {
				t.Errorf("np=%d rank %d: Ialltoall[%d] = %q, want %q", np, me, r, recvN[r], recvB[r])
			}
		}

		// IreduceF64 vs ReduceF64.
		root := (np - 1) % np
		rx := make([]float64, 17)
		ry := make([]float64, 17)
		for i := range rx {
			rx[i] = float64(me*10 + i)
			ry[i] = rx[i]
		}
		c.ReduceF64(root, ry, OpSum)
		c.Wait(c.IreduceF64(root, rx, OpSum))
		if me == root {
			for i := range rx {
				if math.Abs(rx[i]-ry[i]) > 1e-9 {
					t.Errorf("np=%d rank %d: Ireduce[%d] = %g, want %g", np, me, i, rx[i], ry[i])
					break
				}
			}
		}

		// Igather vs Gather.
		gmine := []byte{byte(me), byte(me + 1)}
		goutB := make([][]byte, np)
		goutN := make([][]byte, np)
		for r := range goutB {
			goutB[r] = make([]byte, 2)
			goutN[r] = make([]byte, 2)
		}
		c.Gather(0, gmine, goutB)
		c.Wait(c.Igather(0, gmine, goutN))
		if me == 0 {
			for r := range goutB {
				if !bytes.Equal(goutB[r], goutN[r]) {
					t.Errorf("np=%d rank %d: Igather[%d] = %v, want %v", np, me, r, goutN[r], goutB[r])
				}
			}
		}

		// Iscatter vs Scatter.
		var blocks [][]byte
		if me == 0 {
			blocks = make([][]byte, np)
			for r := range blocks {
				blocks[r] = []byte{byte(3 * r), byte(3*r + 1)}
			}
		}
		sB := make([]byte, 2)
		sN := make([]byte, 2)
		c.Scatter(0, blocks, sB)
		c.Wait(c.Iscatter(0, blocks, sN))
		if !bytes.Equal(sB, sN) || sB[0] != byte(3*me) {
			t.Errorf("np=%d rank %d: Iscatter = %v, blocking %v", np, me, sN, sB)
		}
	})
	if err != nil {
		t.Fatalf("np=%d: %v", np, err)
	}
}

func TestNbcMatchesBlocking(t *testing.T) {
	for _, stack := range nbcStacks() {
		for _, np := range []int{2, 3, 4, 8, 16} {
			cfg := xeonCfg(np, stack)
			t.Run(fmt.Sprintf("%s/np%d", stack.Name, np), func(t *testing.T) {
				runNbcAllOps(t, cfg)
			})
		}
	}
}

func TestNbcSingleRank(t *testing.T) {
	_, err := Run(xeonCfg(1, cluster.MPICH2NmadIB()), func(c *Comm) {
		c.Wait(c.Ibarrier())
		x := []float64{3, 4}
		c.Wait(c.IallreduceF64(x, OpSum))
		if x[0] != 3 || x[1] != 4 {
			t.Errorf("single-rank allreduce clobbered x: %v", x)
		}
		out := [][]byte{make([]byte, 2)}
		c.Wait(c.Iallgather([]byte("ab"), out))
		if string(out[0]) != "ab" {
			t.Errorf("single-rank allgather: %q", out[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNbcDeterminism: identical runs produce identical virtual end times.
func TestNbcDeterminism(t *testing.T) {
	run := func() float64 {
		rep, err := Run(xeonCfg(8, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
			x := make([]float64, 512)
			for i := range x {
				x[i] = float64(c.Rank() + i)
			}
			q := c.IallreduceF64(x, OpSum)
			c.Compute(50e-6)
			c.Wait(q)
			c.Wait(c.Ibarrier())
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic nbc run: %v != %v", a, b)
	}
}

// TestNbcOutstandingConcurrent: several collectives in flight at once, waited
// out of order.
func TestNbcOutstandingConcurrent(t *testing.T) {
	_, err := Run(xeonCfg(4, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		np := c.Size()
		x := make([]float64, 64)
		for i := range x {
			x[i] = float64(c.Rank())
		}
		mine := []byte{byte(c.Rank())}
		out := make([][]byte, np)
		for r := range out {
			out[r] = make([]byte, 1)
		}
		q1 := c.IallreduceF64(x, OpMax)
		q2 := c.Iallgather(mine, out)
		q3 := c.Ibarrier()
		c.WaitAll(q3, q1, q2)
		for i := range x {
			if x[i] != float64(np-1) {
				t.Errorf("allreduce max = %v, want %d", x[i], np-1)
				break
			}
		}
		for r := range out {
			if out[r][0] != byte(r) {
				t.Errorf("allgather[%d] = %d", r, out[r][0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNbcTestPolling: Test() eventually completes a collective without Wait.
func TestNbcTestPolling(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		q := c.Ibarrier()
		spins := 0
		for !c.Test(q) {
			// Advance virtual time between polls (a pure spin would never
			// yield to the engine); this is the poll-while-computing idiom.
			c.Compute(1e-6)
			spins++
			if spins > 10000 {
				t.Fatal("Ibarrier never completed under Test polling")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIsendBarrierRecv: the legal MPI pattern Isend(rendezvous) -> Barrier
// -> Recv must complete — the barrier's collective traffic must not be
// completion-gated behind the outstanding rendezvous send (regression for
// the per-tag scoping of nmad's FIFO send completion).
func TestIsendBarrierRecv(t *testing.T) {
	for _, stack := range nbcStacks() {
		t.Run(stack.Name, func(t *testing.T) {
			cfg := xeonCfg(2, stack)
			_, err := Run(cfg, func(c *Comm) {
				peer := 1 - c.Rank()
				msg := make([]byte, 64<<10) // above every rdv threshold
				for i := range msg {
					msg[i] = byte(c.Rank() + i)
				}
				q := c.Isend(peer, 5, msg)
				c.Barrier()
				buf := make([]byte, len(msg))
				st := c.Recv(peer, 5, buf)
				c.Wait(q)
				if st.Len != len(msg) || buf[0] != byte(peer) {
					t.Errorf("rank %d: got len %d first byte %d", c.Rank(), st.Len, buf[0])
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNbcOverlapProperty: with PIOMan, IallreduceF64 + Compute must beat the
// blocking AllreduceF64 + Compute sequence — the schedule engine progresses
// rounds on the background thread while the app computes.
func TestNbcOverlapProperty(t *testing.T) {
	const computeSec = 300e-6
	elems := 64 << 10 // 512 KB vectors: rendezvous regime

	measure := func(stack cluster.Stack, nonblocking bool) float64 {
		var total float64
		cfg := Config{
			Cluster:   cluster.Xeon2(),
			Stack:     stack,
			NP:        2,
			Placement: topo.Placement{0, 1},
		}
		_, err := Run(cfg, func(c *Comm) {
			x := make([]float64, elems)
			for i := range x {
				x[i] = float64(c.Rank() + i)
			}
			c.Barrier()
			t0 := c.Wtime()
			if nonblocking {
				q := c.IallreduceF64(x, OpSum)
				c.Compute(computeSec)
				c.Wait(q)
			} else {
				c.AllreduceF64(x, OpSum)
				c.Compute(computeSec)
			}
			if c.Rank() == 0 {
				total = c.Wtime() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}

	pio := cluster.MPICH2NmadIB().WithPIOMan(true)
	blocking := measure(pio, false)
	overlapped := measure(pio, true)
	if overlapped >= blocking {
		t.Fatalf("PIOMan Iallreduce+Compute (%.1fµs) not faster than blocking sequence (%.1fµs)",
			overlapped*1e6, blocking*1e6)
	}
	// The win must come from genuine overlap: at least 20%% of the compute
	// time hidden behind the collective.
	if blocking-overlapped < 0.2*computeSec {
		t.Fatalf("overlap too small: blocking %.1fµs, overlapped %.1fµs",
			blocking*1e6, overlapped*1e6)
	}
}

// TestTwoLevelCollectivesMatch: topology-aware collectives produce the same
// results as the flat ones, blocking and nonblocking, on a placement with
// several ranks per node.
func TestTwoLevelCollectivesMatch(t *testing.T) {
	for _, np := range []int{4, 6, 16} {
		cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
		cfg.Placement = topo.Block(np, cfg.Cluster.NumNodes)
		cfg.TwoLevelColl = true
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			_, err := Run(cfg, func(c *Comm) {
				me := c.Rank()

				c.Barrier()
				c.Wait(c.Ibarrier())

				data := make([]byte, 2000)
				if me == 0 {
					for i := range data {
						data[i] = byte(i * 3)
					}
				}
				c.Bcast(0, data)
				for i := range data {
					if data[i] != byte(i*3) {
						t.Errorf("rank %d: two-level bcast wrong at %d", me, i)
						break
					}
				}

				x := make([]float64, 100)
				for i := range x {
					x[i] = float64(me + i)
				}
				c.AllreduceF64(x, OpSum)
				for i := range x {
					want := float64(np*i) + float64(np*(np-1)/2)
					if math.Abs(x[i]-want) > 1e-9 {
						t.Errorf("rank %d: two-level allreduce[%d] = %g, want %g", me, i, x[i], want)
						break
					}
				}

				y := make([]float64, 16)
				for i := range y {
					y[i] = float64(me)
				}
				c.Wait(c.IallreduceF64(y, OpMax))
				for i := range y {
					if y[i] != float64(np-1) {
						t.Errorf("rank %d: two-level Iallreduce = %v", me, y[i])
						break
					}
				}

				buf := make([]byte, 100)
				if me == np-1 {
					for i := range buf {
						buf[i] = byte(255 - i)
					}
				}
				c.Wait(c.Ibcast(np-1, buf))
				for i := range buf {
					if buf[i] != byte(255-i) {
						t.Errorf("rank %d: two-level Ibcast wrong at %d", me, i)
						break
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTwoLevelLeadersOnlyOnNetwork: with two-level collectives and co-located
// ranks, an allreduce moves fewer bytes over the rails than the flat variant.
func TestTwoLevelLeadersOnlyOnNetwork(t *testing.T) {
	base := xeonCfg(8, cluster.MPICH2NmadIB())
	base.Placement = topo.Block(8, base.Cluster.NumNodes)

	railBytes := func(twoLevel bool) int64 {
		cfg := base
		cfg.TwoLevelColl = twoLevel
		rep, err := Run(cfg, func(c *Comm) {
			x := make([]float64, 4096)
			for i := range x {
				x[i] = float64(c.Rank())
			}
			c.AllreduceF64(x, OpSum)
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, r := range rep.Rails {
			total += r.Bytes
		}
		return total
	}

	flat, two := railBytes(false), railBytes(true)
	if two >= flat {
		t.Fatalf("two-level allreduce used %d rail bytes, flat %d — hierarchy saved nothing", two, flat)
	}
}

// TestTwoLevelAllgatherAlltoallRails: the two-level allgather and alltoall
// aggregate per node, so only the per-node leaders appear on the rails —
// far fewer rail packets than the flat variants, whose co-located ranks
// each push their own blocks across the network.
func TestTwoLevelAllgatherAlltoallRails(t *testing.T) {
	base := xeonCfg(8, cluster.MPICH2NmadIB())
	base.Placement = topo.Block(8, base.Cluster.NumNodes) // 4 ranks per node

	railPackets := func(twoLevel bool, body func(c *Comm)) int64 {
		cfg := base
		cfg.TwoLevelColl = twoLevel
		rep, err := Run(cfg, body)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, r := range rep.Rails {
			total += r.Packets
		}
		return total
	}

	allgather := func(c *Comm) {
		mine := make([]byte, 512)
		out := make([][]byte, c.Size())
		for r := range out {
			out[r] = make([]byte, len(mine))
		}
		c.Wait(c.Iallgather(mine, out))
	}
	alltoall := func(c *Comm) {
		send := make([][]byte, c.Size())
		recv := make([][]byte, c.Size())
		for r := range send {
			send[r] = make([]byte, 512)
			recv[r] = make([]byte, 512)
		}
		c.Wait(c.Ialltoall(send, recv))
	}

	for _, tc := range []struct {
		name string
		body func(c *Comm)
	}{{"allgather", allgather}, {"alltoall", alltoall}} {
		flat, two := railPackets(false, tc.body), railPackets(true, tc.body)
		if two >= flat {
			t.Errorf("%s: two-level used %d rail packets, flat %d — leaders-only aggregation saved nothing",
				tc.name, two, flat)
		}
		// With 2 nodes the leader exchange is exactly one aggregate message
		// each way; allow a small factor for eager-protocol framing but rule
		// out per-block traffic (flat moves >= 14 cross-node blocks for
		// allgather, 32 for alltoall).
		if two*4 > flat {
			t.Errorf("%s: two-level rail packets %d not <1/4 of flat %d", tc.name, two, flat)
		}
	}
}

// TestTwoLevelAllgatherAlltoallMatch: two-level allgather/alltoall results
// match the flat variants on co-located placements, blocking and
// nonblocking.
func TestTwoLevelAllgatherAlltoallMatch(t *testing.T) {
	for _, np := range []int{4, 6, 8} {
		np := np
		cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
		cfg.Placement = topo.Block(np, cfg.Cluster.NumNodes)
		cfg.TwoLevelColl = true
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			_, err := Run(cfg, func(c *Comm) {
				me := c.Rank()

				mine := []byte(fmt.Sprintf("<blk%02d>", me))
				out := make([][]byte, np)
				for r := range out {
					out[r] = make([]byte, len(mine))
				}
				c.Allgather(mine, out)
				for r := range out {
					if string(out[r]) != fmt.Sprintf("<blk%02d>", r) {
						t.Errorf("rank %d: two-level allgather[%d] = %q", me, r, out[r])
					}
				}
				outN := make([][]byte, np)
				for r := range outN {
					outN[r] = make([]byte, len(mine))
				}
				c.Wait(c.Iallgather(mine, outN))
				for r := range outN {
					if !bytes.Equal(outN[r], out[r]) {
						t.Errorf("rank %d: two-level Iallgather[%d] = %q", me, r, outN[r])
					}
				}

				send := make([][]byte, np)
				recv := make([][]byte, np)
				recvN := make([][]byte, np)
				for r := range send {
					send[r] = []byte(fmt.Sprintf("%02d>%02d", me, r))
					recv[r] = make([]byte, len(send[r]))
					recvN[r] = make([]byte, len(send[r]))
				}
				c.Alltoall(send, recv)
				for r := range recv {
					if string(recv[r]) != fmt.Sprintf("%02d>%02d", r, me) {
						t.Errorf("rank %d: two-level alltoall[%d] = %q", me, r, recv[r])
					}
				}
				c.Wait(c.Ialltoall(send, recvN))
				for r := range recvN {
					if !bytes.Equal(recvN[r], recv[r]) {
						t.Errorf("rank %d: two-level Ialltoall[%d] = %q", me, r, recvN[r])
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
