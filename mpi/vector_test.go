package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/cluster"
)

// vCell is the deterministic payload byte at position i of the s→d block.
func vCell(s, d, i int) byte { return byte(s*37 + d*11 + i*5 + 3) }

// vMatrix is a fixed skewed count matrix for np ranks: zero blocks, a heavy
// row and a heavy column included.
func vMatrix(np int) [][]int {
	m := make([][]int, np)
	for s := range m {
		m[s] = make([]int, np)
		for d := range m[s] {
			switch {
			case (s+d)%3 == 0:
				m[s][d] = 0
			case s == 1:
				m[s][d] = 96 + d // heavy sender
			case d == 2%np:
				m[s][d] = 80 + s // heavy receiver
			default:
				m[s][d] = (s*7 + d*3) % 23
			}
		}
	}
	return m
}

// TestAlltoallvEngineMatchesReference: the counts-based entry point routes
// every irregular block, with receive displacements laying blocks out in
// reverse order (gaps included) to exercise rebatching via displs.
func TestAlltoallvEngineMatchesReference(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8} {
		np := np
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
				me := c.Rank()
				m := vMatrix(np)
				scounts, rcounts := m[me], make([]int, np)
				for s := 0; s < np; s++ {
					rcounts[s] = m[s][me]
				}
				stotal, rtotal := 0, 0
				for r := 0; r < np; r++ {
					stotal += scounts[r]
					rtotal += rcounts[r]
				}
				sbuf := make([]byte, stotal)
				off := 0
				for d := 0; d < np; d++ {
					for i := 0; i < scounts[d]; i++ {
						sbuf[off+i] = vCell(me, d, i)
					}
					off += scounts[d]
				}
				// Reverse-order receive layout with a 3-byte gap per block.
				rdispls := make([]int, np)
				pos := 0
				for s := np - 1; s >= 0; s-- {
					rdispls[s] = pos
					pos += rcounts[s] + 3
				}
				rbuf := make([]byte, pos)
				c.Alltoallv(sbuf, scounts, nil, rbuf, rcounts, rdispls)
				for s := 0; s < np; s++ {
					for i := 0; i < rcounts[s]; i++ {
						if got := rbuf[rdispls[s]+i]; got != vCell(s, me, i) {
							t.Errorf("rank %d: block from %d byte %d = %d, want %d",
								me, s, i, got, vCell(s, me, i))
							return
						}
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlltoallvBytesRunsOnEngine: the block-view form compiles schedules
// through the per-communicator cache — the historical hand-rolled loop is
// gone — and repeated shapes rebind instead of recompiling.
func TestAlltoallvBytesRunsOnEngine(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		m := vMatrix(np)
		run := func() {
			send := make([][]byte, np)
			recv := make([][]byte, np)
			for d := 0; d < np; d++ {
				send[d] = make([]byte, m[me][d])
				for i := range send[d] {
					send[d][i] = vCell(me, d, i)
				}
				recv[d] = make([]byte, m[d][me])
			}
			c.AlltoallvBytes(send, recv)
			for s := 0; s < np; s++ {
				for i := range recv[s] {
					if recv[s][i] != vCell(s, me, i) {
						t.Errorf("rank %d: bad byte from %d", me, s)
						return
					}
				}
			}
		}
		run()
		c0, h0 := c.SchedCacheStats()
		if c0 == 0 {
			t.Errorf("rank %d: AlltoallvBytes bypassed the schedule cache", me)
		}
		for i := 0; i < 3; i++ {
			run() // fresh buffers, same counts: rebinds, no recompiles
		}
		c1, h1 := c.SchedCacheStats()
		if c1 != c0 {
			t.Errorf("rank %d: %d recompiles on repeated irregular shape", me, c1-c0)
		}
		if h1 != h0+3 {
			t.Errorf("rank %d: %d cache hits, want %d", me, h1-h0, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgathervGathervScattervEngine(t *testing.T) {
	const np = 5
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		counts := []int{0, 17, 5, 96, 3}
		total := 0
		for _, n := range counts {
			total += n
		}
		mine := make([]byte, counts[me])
		for i := range mine {
			mine[i] = vCell(me, me, i)
		}

		rbuf := make([]byte, total)
		c.Allgatherv(mine, rbuf, counts, nil)
		off := 0
		for r := 0; r < np; r++ {
			for i := 0; i < counts[r]; i++ {
				if rbuf[off+i] != vCell(r, r, i) {
					t.Errorf("rank %d: allgatherv block %d corrupt", me, r)
					return
				}
			}
			off += counts[r]
		}

		const root = 2
		var gbuf []byte
		if me == root {
			gbuf = make([]byte, total)
		}
		if me == root {
			c.Gatherv(root, mine, gbuf, counts, nil)
		} else {
			c.Gatherv(root, mine, nil, nil, nil)
		}
		if me == root {
			off = 0
			for r := 0; r < np; r++ {
				for i := 0; i < counts[r]; i++ {
					if gbuf[off+i] != vCell(r, r, i) {
						t.Errorf("gatherv block %d corrupt", r)
						return
					}
				}
				off += counts[r]
			}
		}

		buf := make([]byte, counts[me])
		if me == root {
			sbuf := make([]byte, total)
			off = 0
			for r := 0; r < np; r++ {
				for i := 0; i < counts[r]; i++ {
					sbuf[off+i] = vCell(root, r, i)
				}
				off += counts[r]
			}
			c.Scatterv(root, sbuf, counts, nil, buf)
		} else {
			c.Scatterv(root, nil, nil, nil, buf)
		}
		for i := range buf {
			if buf[i] != vCell(root, me, i) {
				t.Errorf("rank %d: scatterv block corrupt", me)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterF64Engine(t *testing.T) {
	for _, np := range []int{2, 3, 4, 8} { // pow2 = halving, odd = pairwise
		np := np
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
				me := c.Rank()
				counts := make([]int, np)
				for r := range counts {
					counts[r] = (r * 5) % 11 // zero segment at rank 0
				}
				total := 0
				for _, n := range counts {
					total += n
				}
				x := make([]float64, total)
				for i := range x {
					x[i] = float64(me*100 + i)
				}
				recv := make([]float64, counts[me])
				c.ReduceScatterF64(x, recv, counts, OpSum)
				off := 0
				for r := 0; r < me; r++ {
					off += counts[r]
				}
				for i := range recv {
					want := 0.0
					for s := 0; s < np; s++ {
						want += float64(s*100 + off + i)
					}
					if math.Abs(recv[i]-want) > 1e-9 {
						t.Errorf("rank %d elem %d = %g, want %g", me, i, recv[i], want)
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIVectorCollectives: the nonblocking vector family progresses through
// the nbc engine and composes with Wait/WaitAll, overlapping compute.
func TestIVectorCollectives(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		me := c.Rank()
		m := vMatrix(np)
		scounts, rcounts := m[me], make([]int, np)
		stotal, rtotal := 0, 0
		for s := 0; s < np; s++ {
			rcounts[s] = m[s][me]
			stotal += scounts[s]
			rtotal += rcounts[s]
		}
		sbuf := make([]byte, stotal)
		off := 0
		for d := 0; d < np; d++ {
			for i := 0; i < scounts[d]; i++ {
				sbuf[off+i] = vCell(me, d, i)
			}
			off += scounts[d]
		}
		rbuf := make([]byte, rtotal)

		gcounts := []int{9, 0, 33, 5}
		gtotal := 0
		for _, n := range gcounts {
			gtotal += n
		}
		mine := make([]byte, gcounts[me])
		gbuf := make([]byte, gtotal)

		ecounts := []int{3, 8, 0, 5}
		etotal := 0
		for _, n := range ecounts {
			etotal += n
		}
		x := make([]float64, etotal)
		for i := range x {
			x[i] = float64(me + i)
		}
		recv := make([]float64, ecounts[me])

		q1 := c.Ialltoallv(sbuf, scounts, nil, rbuf, rcounts, nil)
		q2 := c.Iallgatherv(mine, gbuf, gcounts, nil)
		q3 := c.IreduceScatterF64(x, recv, ecounts, OpSum)
		c.Compute(50e-6)
		c.WaitAll(q1, q2, q3)

		off = 0
		for s := 0; s < np; s++ {
			for i := 0; i < rcounts[s]; i++ {
				if rbuf[off+i] != vCell(s, me, i) {
					t.Errorf("rank %d: Ialltoallv block from %d corrupt", me, s)
					return
				}
			}
			off += rcounts[s]
		}
		eoff := 0
		for r := 0; r < me; r++ {
			eoff += ecounts[r]
		}
		for i := range recv {
			want := 0.0
			for s := 0; s < np; s++ {
				want += float64(s + eoff + i)
			}
			if math.Abs(recv[i]-want) > 1e-9 {
				t.Errorf("rank %d: IreduceScatterF64 elem %d = %g, want %g", me, i, recv[i], want)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVectorSchedCacheDeterminism: cached and uncached runs of an irregular
// workload — vector collectives mixed with their nonblocking forms — are
// identical in virtual time.
func TestVectorSchedCacheDeterminism(t *testing.T) {
	workload := func(c *Comm) {
		np := c.Size()
		me := c.Rank()
		m := vMatrix(np)
		scounts, rcounts := m[me], make([]int, np)
		stotal, rtotal := 0, 0
		for s := 0; s < np; s++ {
			rcounts[s] = m[s][me]
			stotal += scounts[s]
			rtotal += rcounts[s]
		}
		ecounts := make([]int, np)
		gcounts := make([]int, np)
		etotal, gtotal := 0, 0
		for r := range ecounts {
			ecounts[r] = (r * 3) % 7
			etotal += ecounts[r]
			gcounts[r] = (r * 5) % 9
			gtotal += gcounts[r]
		}
		for iter := 0; iter < 4; iter++ {
			sbuf := make([]byte, stotal)
			rbuf := make([]byte, rtotal)
			q := c.Ialltoallv(sbuf, scounts, nil, rbuf, rcounts, nil)
			c.Compute(30e-6)
			c.Wait(q)
			x := make([]float64, etotal)
			recv := make([]float64, ecounts[me])
			c.ReduceScatterF64(x, recv, ecounts, OpSum)
			gbuf := make([]byte, gtotal)
			c.Allgatherv(make([]byte, gcounts[me]), gbuf, gcounts, nil)
			c.Barrier()
		}
	}
	measure := func(noCache bool) float64 {
		cfg := xeonCfg(8, cluster.MPICH2NmadIB().WithPIOMan(true))
		cfg.NoSchedCache = noCache
		rep, err := Run(cfg, workload)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	cached, uncached := measure(false), measure(true)
	if cached != uncached {
		t.Fatalf("cached run %.9fs != uncached run %.9fs", cached, uncached)
	}
}

// TestVectorValidationPanics: the vector entry points reject malformed
// counts with the operation name in the message, per the validation
// convention.
func TestVectorValidationPanics(t *testing.T) {
	cases := []struct {
		name string
		want string
		call func(c *Comm)
	}{
		{"AlltoallvNegative", "Alltoallv: negative send count",
			func(c *Comm) {
				c.Alltoallv(make([]byte, 8), []int{-1, 2}, nil, make([]byte, 8), []int{2, 2}, nil)
			}},
		{"AlltoallvCountsLen", "Alltoallv: 3 send counts for communicator size 2",
			func(c *Comm) {
				c.Alltoallv(make([]byte, 8), []int{1, 1, 1}, nil, make([]byte, 8), []int{2, 2}, nil)
			}},
		{"AlltoallvOverrun", "Alltoallv: send block 1 [4:12) exceeds buffer length 8",
			func(c *Comm) {
				c.Alltoallv(make([]byte, 8), []int{4, 8}, nil, make([]byte, 16), []int{4, 4}, nil)
			}},
		{"AlltoallvSelf", "Alltoallv: self block mismatch",
			func(c *Comm) {
				c.Alltoallv(make([]byte, 8), []int{4, 4}, nil, make([]byte, 8), []int{2, 6}, nil)
			}},
		{"AllgathervMine", "Allgatherv: rcounts[0]=4 but this rank contributes 2",
			func(c *Comm) {
				c.Allgatherv(make([]byte, 2), make([]byte, 8), []int{4, 4}, nil)
			}},
		{"AllgathervDispls", "Allgatherv: 1 recv displacements for communicator size 2",
			func(c *Comm) {
				c.Allgatherv(make([]byte, 4), make([]byte, 8), []int{4, 4}, []int{0})
			}},
		{"IalltoallvNegative", "Ialltoallv: negative recv count",
			func(c *Comm) {
				c.Ialltoallv(make([]byte, 8), []int{4, 4}, nil, make([]byte, 8), []int{4, -4}, nil)
			}},
		{"GathervRoot", "Gatherv: root 5 out of range",
			func(c *Comm) { c.Gatherv(5, make([]byte, 4), nil, nil, nil) }},
		{"ScattervBuf", "Scatterv: scounts[0]=4 but buf is 2",
			func(c *Comm) {
				c.Scatterv(0, make([]byte, 8), []int{4, 4}, nil, make([]byte, 2))
			}},
		{"ReduceScatterSum", "ReduceScatterF64: counts sum to 6 elements but x has 8",
			func(c *Comm) {
				c.ReduceScatterF64(make([]float64, 8), make([]float64, 3), []int{3, 3}, OpSum)
			}},
		{"ReduceScatterNegative", "IreduceScatterF64: negative count",
			func(c *Comm) {
				c.IreduceScatterF64(make([]float64, 8), make([]float64, 9), []int{9, -1}, OpSum)
			}},
		{"ReduceScatterRecv", "ReduceScatterF64: recv has 1 elements but counts[0]=3",
			func(c *Comm) {
				c.ReduceScatterF64(make([]float64, 8), make([]float64, 1), []int{3, 5}, OpSum)
			}},
		{"ReduceScatterAliased", "ReduceScatterF64: recv overlaps x",
			func(c *Comm) {
				x := make([]float64, 8)
				c.ReduceScatterF64(x, x[:3], []int{3, 5}, OpSum)
			}},
		{"AlltoallvAliased", "Alltoallv: recv buffer overlaps send buffer",
			func(c *Comm) {
				buf := make([]byte, 8)
				c.Alltoallv(buf, []int{2, 2}, nil, buf[2:], []int{2, 2}, nil)
			}},
		{"AllgathervAliased", "Allgatherv: recv buffer overlaps mine",
			func(c *Comm) {
				rbuf := make([]byte, 8)
				c.Allgatherv(rbuf[:4], rbuf, []int{4, 4}, nil)
			}},
		{"AlltoallvRecvOverlap", "Alltoallv: overlapping recv blocks",
			func(c *Comm) {
				c.Alltoallv(make([]byte, 8), []int{4, 4}, nil,
					make([]byte, 8), []int{4, 4}, []int{0, 2})
			}},
		{"AllgathervRecvOverlap", "Allgatherv: overlapping recv blocks",
			func(c *Comm) {
				c.Allgatherv(make([]byte, 4), make([]byte, 8), []int{4, 4}, []int{0, 0})
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var msg string
			_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
				if c.Rank() != 0 {
					return
				}
				defer func() {
					if r := recover(); r != nil {
						msg = fmt.Sprint(r)
					}
				}()
				tc.call(c)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(msg, tc.want) {
				t.Errorf("panic %q does not contain %q", msg, tc.want)
			}
		})
	}
}

// TestAlltoallvOverlappingDisplsNotCacheConfused: a call whose send blocks
// alias each other (legal for sends) must not poison the schedule cache for
// a later same-counts call with a different, disjoint layout — overlapping
// layouts key on their displacements, disjoint ones rebind positionally.
func TestAlltoallvOverlappingDisplsNotCacheConfused(t *testing.T) {
	const np = 2
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		counts := []int{4, 4}

		// Call 1: both send blocks alias sbuf[0:4].
		sbuf := make([]byte, 8)
		for i := 0; i < 4; i++ {
			sbuf[i] = byte(0x10 + me)
		}
		rbuf := make([]byte, 8)
		c.Alltoallv(sbuf, counts, []int{0, 0}, rbuf, counts, nil)
		for s := 0; s < np; s++ {
			for i := 0; i < 4; i++ {
				if rbuf[4*s+i] != byte(0x10+s) {
					t.Errorf("rank %d: aliased call, block from %d corrupt", me, s)
					return
				}
			}
		}

		// Call 2: same counts, disjoint layout, distinct per-block content.
		// A stale rebind of call 1's schedule would send block 0's bytes to
		// rank 1 again.
		for d := 0; d < np; d++ {
			for i := 0; i < 4; i++ {
				sbuf[4*d+i] = byte(0x20 + 16*me + d)
			}
		}
		c.Alltoallv(sbuf, counts, []int{0, 4}, rbuf, counts, nil)
		for s := 0; s < np; s++ {
			for i := 0; i < 4; i++ {
				if got := rbuf[4*s+i]; got != byte(0x20+16*s+me) {
					t.Errorf("rank %d: disjoint call got %#x from %d, want %#x (stale aliased rebind?)",
						me, got, s, 0x20+16*s+me)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallvBytesAliasedSendsBypassCache: aliased send views (the
// workspace-reuse idiom) must not poison the cache for a later same-length
// call with disjoint blocks — aliased layouts compile throwaway schedules;
// aliased receive views panic.
func TestAlltoallvBytesAliasedSendsBypassCache(t *testing.T) {
	const np = 2
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		mkRecv := func() [][]byte {
			r := make([][]byte, np)
			for i := range r {
				r[i] = make([]byte, 4)
			}
			return r
		}

		// Call 1: every send block aliases one shared buffer.
		shared := make([]byte, 4)
		for i := range shared {
			shared[i] = byte(0x30 + me)
		}
		recv := mkRecv()
		c.AlltoallvBytes([][]byte{shared, shared}, recv)
		for s := 0; s < np; s++ {
			if recv[s][0] != byte(0x30+s) {
				t.Errorf("rank %d: aliased call corrupt from %d", me, s)
				return
			}
		}

		// Call 2: same lengths, disjoint blocks with distinct content. A
		// stale rebind of call 1's schedule would resend block 0 to rank 1.
		send := make([][]byte, np)
		for d := 0; d < np; d++ {
			send[d] = make([]byte, 4)
			for i := range send[d] {
				send[d][i] = byte(0x50 + 16*me + d)
			}
		}
		recv = mkRecv()
		c.AlltoallvBytes(send, recv)
		for s := 0; s < np; s++ {
			if got := recv[s][0]; got != byte(0x50+16*s+me) {
				t.Errorf("rank %d: disjoint call got %#x from %d, want %#x (stale aliased rebind?)",
					me, got, s, 0x50+16*s+me)
				return
			}
		}

		// Aliased receive blocks are rejected.
		if me == 0 {
			defer func() {
				if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "overlapping recv blocks") {
					t.Errorf("aliased recv blocks did not panic (got %v)", r)
				}
			}()
			rb := make([]byte, 4)
			c.AlltoallvBytes(send, [][]byte{rb, rb})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
