package mpi

import (
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/coll"
	"repro/internal/vtime"
)

// Datatype describes the memory layout of a message element, supporting the
// non-contiguous user datatypes the paper lists as future work ("we think
// that NewMadeleine's optimization schemes might improve performance for
// non-contiguous user datatypes", §5). This implementation packs and unpacks
// through a contiguous staging buffer — the classic MPICH2 approach — and
// charges the packing copies to the caller.
type Datatype interface {
	// Size is the number of payload bytes one element carries.
	Size() int
	// Extent is the span of one element in user memory.
	Extent() int
	// Pack gathers one element from user memory into wire form.
	Pack(dst, user []byte)
	// Unpack scatters one element from wire form into user memory.
	Unpack(user, src []byte)
	// Name describes the type.
	Name() string
}

// Contig is n contiguous bytes.
type Contig struct{ N int }

func (t Contig) Size() int               { return t.N }
func (t Contig) Extent() int             { return t.N }
func (t Contig) Pack(dst, user []byte)   { copy(dst, user[:t.N]) }
func (t Contig) Unpack(user, src []byte) { copy(user, src[:t.N]) }
func (t Contig) Name() string            { return fmt.Sprintf("contig(%d)", t.N) }

// Vector is the strided MPI_Type_vector layout: Count blocks of BlockLen
// bytes separated by Stride bytes in user memory.
type Vector struct {
	Count    int
	BlockLen int
	Stride   int
}

// Validate reports whether the vector layout is well formed.
func (t Vector) Validate() error {
	if t.Count <= 0 || t.BlockLen <= 0 || t.Stride < t.BlockLen {
		return fmt.Errorf("mpi: invalid vector datatype %+v", t)
	}
	return nil
}

func (t Vector) Size() int   { return t.Count * t.BlockLen }
func (t Vector) Extent() int { return (t.Count-1)*t.Stride + t.BlockLen }

func (t Vector) Pack(dst, user []byte) {
	for i := 0; i < t.Count; i++ {
		copy(dst[i*t.BlockLen:(i+1)*t.BlockLen], user[i*t.Stride:])
	}
}

func (t Vector) Unpack(user, src []byte) {
	for i := 0; i < t.Count; i++ {
		copy(user[i*t.Stride:i*t.Stride+t.BlockLen], src[i*t.BlockLen:])
	}
}

func (t Vector) Name() string {
	return fmt.Sprintf("vector(%dx%d/%d)", t.Count, t.BlockLen, t.Stride)
}

// packCost models the staging copy.
func (c *Comm) packCost(n int) {
	bw := c.p.ShmMemBW()
	if n <= 0 || bw <= 0 {
		return
	}
	c.proc.Sleep(vtime.Duration(float64(n) / bw * 1e9))
}

// SendD sends `count` elements of datatype dt taken from user memory. The
// elements are packed into a contiguous wire buffer first (cost charged).
func (c *Comm) SendD(dst, tag int, user []byte, dt Datatype, count int) {
	wire := c.packD(user, dt, count)
	c.Send(dst, tag, wire)
}

// RecvD receives `count` elements of datatype dt into user memory. It
// returns the receive status (Len counts wire bytes).
func (c *Comm) RecvD(src, tag int, user []byte, dt Datatype, count int) Status {
	wire := make([]byte, dt.Size()*count)
	st := c.Recv(src, tag, wire)
	c.unpackD(user, wire[:st.Len], dt)
	return st
}

func (c *Comm) packD(user []byte, dt Datatype, count int) []byte {
	size, extent := dt.Size(), dt.Extent()
	wire := make([]byte, size*count)
	for i := 0; i < count; i++ {
		dt.Pack(wire[i*size:(i+1)*size], user[i*extent:])
	}
	c.packCost(size * count)
	return wire
}

func (c *Comm) unpackD(user, wire []byte, dt Datatype) {
	size, extent := dt.Size(), dt.Extent()
	n := len(wire) / size
	for i := 0; i < n; i++ {
		dt.Unpack(user[i*extent:], wire[i*size:(i+1)*size])
	}
	c.packCost(len(wire))
}

// AlltoallvBytes exchanges variable-size blocks: send[r] goes to rank r and
// recv[s] (pre-sized by the caller) receives from rank s. It is the
// block-view form of Alltoallv and compiles through the same schedule
// engine: per-rank pairwise rounds with zero-length blocks elided, cached
// and rebound per communicator like every other collective. Send blocks may
// alias each other (sched compiles schedules over aliased views outside
// the cache, whose positional rebinding cannot tell overlapping regions
// apart); aliased receive blocks panic. This is the primitive the IS
// kernel needs.
func (c *Comm) AlltoallvBytes(send, recv [][]byte) {
	a := c.alltoallvBytesArgs("AlltoallvBytes", send, recv)
	s, release := c.schedViews(coll.OpAlltoallv, a)
	coll.ExecBlocking(c, s, tagAlltoallv)
	release()
}

// IalltoallvBytes starts a nonblocking block-view alltoallv.
func (c *Comm) IalltoallvBytes(send, recv [][]byte) *Request {
	a := c.alltoallvBytesArgs("IalltoallvBytes", send, recv)
	return c.nbcStartViews(coll.OpAlltoallv, a)
}

func (c *Comm) alltoallvBytesArgs(op string, send, recv [][]byte) coll.Args {
	c.checkAlltoall(op, send, recv)
	if blocksAlias(recv) {
		panic(fmt.Sprintf("mpi: %s: overlapping recv blocks", op))
	}
	return coll.Args{Send: send, Recv: recv}
}

// blocksAlias reports whether any two nonzero blocks overlap in memory.
func blocksAlias(blocks [][]byte) bool {
	type span struct{ lo, hi uintptr }
	spans := make([]span, 0, len(blocks))
	for _, b := range blocks {
		if len(b) > 0 {
			p := uintptr(unsafe.Pointer(&b[0]))
			spans = append(spans, span{p, p + uintptr(len(b))})
		}
	}
	// With nonzero spans sorted by start, pairwise-adjacent disjointness
	// implies global disjointness.
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return true
		}
	}
	return false
}
