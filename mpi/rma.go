package mpi

import "fmt"

// Win is an MPI-2 one-sided communication window — the RMA support the paper
// lists as an open challenge ("efficiently support MPI2 RMA operations
// without compromising the optimizations implemented", §5). This
// implementation provides the active-target, fence-synchronized subset:
// Put and Get accesses queued between two Fence calls are exchanged and
// applied at the closing Fence, on top of the stack's ordinary
// point-to-point path (so every optimization below — strategies, multirail,
// PIOMan progress — applies to RMA traffic too).
type Win struct {
	c   *Comm
	buf []byte

	puts []rmaPut
	gets []rmaGet
}

type rmaPut struct {
	target int
	offset int
	data   []byte
}

type rmaGet struct {
	target int
	offset int
	dst    []byte
}

// rmaCtxTag is the reserved collective-context tag space for RMA exchange.
const (
	rmaTagCount = 100
	rmaTagPut   = 101
	rmaTagGetRq = 102
	rmaTagGetRp = 103
)

// CreateWin exposes buf as this rank's window. Collective: every rank must
// call it in the same order. The initial epoch is open.
func (c *Comm) CreateWin(buf []byte) *Win {
	c.Barrier()
	return &Win{c: c, buf: buf}
}

// Buffer returns the exposed local window memory.
func (w *Win) Buffer() []byte { return w.buf }

// Put queues a write of data into target's window at offset. It completes
// at the next Fence. The data is captured at call time (MPI's origin-buffer
// semantics for the simple case).
func (w *Win) Put(target, offset int, data []byte) {
	if target == w.c.Rank() {
		copy(w.buf[offset:], data)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	w.puts = append(w.puts, rmaPut{target: target, offset: offset, data: cp})
}

// Get queues a read of len(dst) bytes from target's window at offset into
// dst. dst is valid after the next Fence.
func (w *Win) Get(target, offset int, dst []byte) {
	if target == w.c.Rank() {
		copy(dst, w.buf[offset:])
		return
	}
	w.gets = append(w.gets, rmaGet{target: target, offset: offset, dst: dst})
}

// header layout for RMA control messages: [kind(1) offset(4) len(4)].
func rmaHeader(kind byte, offset, n int) []byte {
	h := make([]byte, 9)
	h[0] = kind
	put32 := func(i, v int) {
		h[i] = byte(v)
		h[i+1] = byte(v >> 8)
		h[i+2] = byte(v >> 16)
		h[i+3] = byte(v >> 24)
	}
	put32(1, offset)
	put32(5, n)
	return h
}

func rmaParse(h []byte) (kind byte, offset, n int) {
	get32 := func(i int) int {
		return int(h[i]) | int(h[i+1])<<8 | int(h[i+2])<<16 | int(h[i+3])<<24
	}
	return h[0], get32(1), get32(5)
}

// Fence closes the current access epoch: all queued Puts are delivered and
// applied at their targets, all queued Gets are answered, and all ranks
// synchronize before the next epoch opens.
func (w *Win) Fence() {
	c := w.c
	np := c.Size()
	rank := c.Rank()

	// 1. Exchange per-target operation counts so every rank knows how many
	// incoming requests to service.
	counts := make([]float64, np)
	for _, p := range w.puts {
		counts[p.target]++
	}
	for _, g := range w.gets {
		counts[g.target]++
	}
	incoming := make([][]byte, np)
	mine := make([][]byte, np)
	for r := 0; r < np; r++ {
		mine[r] = F64Bytes([]float64{counts[r]})
		incoming[r] = make([]byte, 8)
	}
	c.AlltoallvBytes(mine, incoming)

	expected := 0
	for r := 0; r < np; r++ {
		if r == rank {
			continue
		}
		var v [1]float64
		BytesF64(v[:], incoming[r])
		expected += int(v[0])
	}

	// 2. Send our operations (deterministic order: puts then gets).
	type pendingGet struct {
		g  rmaGet
		rq *Request
	}
	var replies []pendingGet
	for _, p := range w.puts {
		hdr := rmaHeader('P', p.offset, len(p.data))
		c.Send(p.target, rmaTagPut, append(hdr, p.data...))
	}
	for _, g := range w.gets {
		// Post the reply receive before issuing the request.
		rq := c.Irecv(g.target, rmaTagGetRp, g.dst)
		c.Send(g.target, rmaTagGetRq, rmaHeader('G', g.offset, len(g.dst)))
		replies = append(replies, pendingGet{g: g, rq: rq})
	}

	// 3. Service incoming operations.
	for i := 0; i < expected; i++ {
		buf := make([]byte, len(w.buf)+16)
		st := c.Recv(AnySource, AnyTag, buf)
		switch st.Tag {
		case rmaTagPut:
			_, off, n := rmaParse(buf)
			copy(w.buf[off:off+n], buf[9:9+n])
		case rmaTagGetRq:
			_, off, n := rmaParse(buf)
			c.Send(st.Source, rmaTagGetRp, w.buf[off:off+n])
		default:
			panic(fmt.Sprintf("mpi: unexpected RMA tag %d", st.Tag))
		}
	}

	// 4. Complete our gets and synchronize the epoch boundary.
	for _, pg := range replies {
		c.Wait(pg.rq)
	}
	w.puts = nil
	w.gets = nil
	c.Barrier()
}
