package mpi

import (
	"encoding/binary"
	"sort"
)

// Split partitions the communicator (MPI_Comm_split): ranks passing the
// same color form a new sub-communicator, ordered by (key, parent rank).
// A negative color (MPI_UNDEFINED) opts out and returns nil. Split is
// collective over c — every rank must call it, and in the same order
// relative to other context-allocating operations (Split/Dup), which is
// what keeps the derived context ids agreeing across ranks without
// negotiation.
//
// Isolation: each Split call advances the shared context counter, so the
// sub-communicators' point-to-point, blocking-collective and
// nonblocking-collective contexts never match the parent's or those of
// communicators from other Split/Dup calls. Sub-communicators from the
// same call share context ids but have disjoint members, so their traffic
// cannot cross either.
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) pairs over the parent's collective machinery.
	mine := make([]byte, 16)
	binary.LittleEndian.PutUint64(mine, uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	out := make([][]byte, c.Size())
	for r := range out {
		out[r] = make([]byte, 16)
	}
	c.Allgather(mine, out)

	base := *c.nextCtx
	*c.nextCtx += 3
	if color < 0 {
		return nil
	}

	type member struct {
		key int64
		r   int // parent-local rank
	}
	var members []member
	for r := range out {
		col := int64(binary.LittleEndian.Uint64(out[r]))
		k := int64(binary.LittleEndian.Uint64(out[r][8:]))
		if col == int64(color) {
			members = append(members, member{key: k, r: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].r < members[j].r
	})

	group := make([]int, len(members))
	inv := make([]int, len(c.inv))
	for i := range inv {
		inv[i] = -1
	}
	var nodes []int
	if c.nodes != nil {
		nodes = make([]int, len(members))
	}
	rank := -1
	for i, m := range members {
		group[i] = c.group[m.r]
		inv[group[i]] = i
		if nodes != nil {
			nodes[i] = c.nodes[m.r]
		}
		if m.r == c.rank {
			rank = i
		}
	}

	return &Comm{cfg: c.cfg, proc: c.proc, p: c.p, node: c.node, mgr: c.mgr,
		group: group, inv: inv, rank: rank, nodes: nodes,
		twoLvl: twoLevelApplies(&c.cfg, nodes),
		ctx:    base, collCtx: base + 1, nbcCtx: base + 2, nextCtx: c.nextCtx,
		rec: c.rec, met: c.met}
}

// SplitNode returns the sub-communicator of the ranks sharing this rank's
// node, ordered by parent rank — the intra-node communicator of the
// two-level collective decomposition. Falls back to a full Dup-equivalent
// group when no placement is known.
func (c *Comm) SplitNode() *Comm {
	color := 0
	if c.nodes != nil {
		color = c.nodes[c.rank]
	}
	return c.Split(color, c.rank)
}

// SplitLeaders returns the sub-communicator of one leader rank per node
// (the lowest parent rank on each node) — the inter-node rail communicator
// of the two-level decomposition — and nil on every other rank. Every rank
// must call it (it is collective over c).
func (c *Comm) SplitLeaders() *Comm {
	color := -1
	if c.nodes == nil {
		if c.rank == 0 {
			color = 0
		}
		return c.Split(color, c.rank)
	}
	lowest := make(map[int]int)
	for r, n := range c.nodes {
		if lr, ok := lowest[n]; !ok || r < lr {
			lowest[n] = r
		}
	}
	if lowest[c.nodes[c.rank]] == c.rank {
		color = 0
	}
	return c.Split(color, c.rank)
}
