package mpi

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestSchedCacheCompilesOnce: repeating a collective with the same shape on
// one communicator compiles its schedule exactly once; later invocations
// are cache hits that rebind buffers.
func TestSchedCacheCompilesOnce(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		x := make([]float64, 64)
		data := make([]byte, 512)

		c.Wait(c.IallreduceF64(x, OpSum))
		c.Wait(c.Ibcast(0, data))
		compiles0, hits0 := c.SchedCacheStats()

		const reps = 5
		for i := 0; i < reps; i++ {
			// Fresh buffers each time: reuse must come from rebinding, not
			// from pointer identity.
			y := make([]float64, 64)
			buf := make([]byte, 512)
			c.Wait(c.IallreduceF64(y, OpSum))
			c.Wait(c.Ibcast(0, buf))
			// The blocking paths share the same cache entries.
			c.AllreduceF64(y, OpSum)
			c.Bcast(0, buf)
		}
		compiles, hits := c.SchedCacheStats()
		if compiles != compiles0 {
			t.Errorf("rank %d: %d new compiles on repeated shapes, want 0",
				c.Rank(), compiles-compiles0)
		}
		if want := hits0 + 4*reps; hits != want {
			t.Errorf("rank %d: %d cache hits, want %d", c.Rank(), hits, want)
		}

		// A different shape compiles anew...
		c.Wait(c.IallreduceF64(make([]float64, 128), OpSum))
		c2, _ := c.SchedCacheStats()
		if c2 != compiles+1 {
			t.Errorf("rank %d: new shape added %d compiles, want 1", c.Rank(), c2-compiles)
		}
		// ...and a different root does too.
		c.Wait(c.Ibcast(1, data))
		c3, _ := c.SchedCacheStats()
		if c3 != c2+1 {
			t.Errorf("rank %d: new root added %d compiles, want 1", c.Rank(), c3-c2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedCacheDeterminism: cached and uncached runs produce identical
// virtual-time results — compilation is host work, invisible to the
// simulation.
func TestSchedCacheDeterminism(t *testing.T) {
	workload := func(c *Comm) {
		me := c.Rank()
		np := c.Size()
		x := make([]float64, 700) // Rabenseifner regime
		for i := range x {
			x[i] = float64(me + i)
		}
		data := make([]byte, 20<<10) // binomial regime
		mine := make([]byte, 256)
		out := make([][]byte, np)
		for r := range out {
			out[r] = make([]byte, 256)
		}
		for iter := 0; iter < 4; iter++ {
			q := c.IallreduceF64(x, OpSum)
			c.Compute(40e-6)
			c.Wait(q)
			c.Bcast(0, data)
			c.Wait(c.Iallgather(mine, out))
			c.Barrier()
		}
	}
	measure := func(noCache bool) float64 {
		cfg := xeonCfg(8, cluster.MPICH2NmadIB().WithPIOMan(true))
		cfg.NoSchedCache = noCache
		rep, err := Run(cfg, workload)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	cached, uncached := measure(false), measure(true)
	if cached != uncached {
		t.Fatalf("cached run %.9fs != uncached run %.9fs", cached, uncached)
	}
}

// TestSchedCacheConcurrentSameShape: two in-flight collectives with the
// same shape stay correct — the second compiles a throwaway schedule
// instead of rebinding the busy cached one.
func TestSchedCacheConcurrentSameShape(t *testing.T) {
	const np = 4
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		me := c.Rank()
		a := make([]float64, 32)
		b := make([]float64, 32)
		for i := range a {
			a[i] = float64(me)
			b[i] = float64(10 * me)
		}
		q1 := c.IallreduceF64(a, OpSum)
		q2 := c.IallreduceF64(b, OpSum)
		c.WaitAll(q1, q2)
		sum := float64(np * (np - 1) / 2)
		for i := range a {
			if math.Abs(a[i]-sum) > 1e-9 || math.Abs(b[i]-10*sum) > 1e-9 {
				t.Errorf("rank %d: concurrent same-shape results wrong: %g %g", me, a[i], b[i])
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedCacheNilVsEmpty: nil and zero-length buffers share a cache key
// (the signature only encodes lengths), so flattening them into rebind
// regions must treat them identically (regression: nil-vs-empty repeats
// used to panic with a Rebind shape mismatch).
func TestSchedCacheNilVsEmpty(t *testing.T) {
	_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
		c.Bcast(0, []byte{})
		c.Bcast(0, nil)
		x := make([]float64, 0)
		c.AllreduceF64(x, OpSum)
		c.AllreduceF64(nil, OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForcedAlgorithmsMatch: every registered allreduce/allgather/bcast
// algorithm produces identical results when forced via Config.Coll.
func TestForcedAlgorithmsMatch(t *testing.T) {
	type probe struct {
		op    coll.OpKind
		algos []coll.Algo
	}
	probes := []probe{
		{coll.OpBcast, []coll.Algo{coll.AlgoBinomial, coll.AlgoScatterAllgather}},
		{coll.OpAllreduce, []coll.Algo{coll.AlgoRecDoubling, coll.AlgoRabenseifner}},
		{coll.OpAllgather, []coll.Algo{coll.AlgoRing, coll.AlgoBruck}},
	}
	for _, p := range probes {
		for _, algo := range p.algos {
			p, algo := p, algo
			t.Run(fmt.Sprintf("%s/%s", p.op, algo), func(t *testing.T) {
				cfg := xeonCfg(8, cluster.MPICH2NmadIB())
				cfg.Coll.Force = map[coll.OpKind]coll.Algo{p.op: algo}
				_, err := Run(cfg, func(c *Comm) {
					me := c.Rank()
					np := c.Size()
					switch p.op {
					case coll.OpBcast:
						data := make([]byte, 3000)
						if me == 0 {
							for i := range data {
								data[i] = byte(i * 13)
							}
						}
						c.Bcast(0, data)
						for i := range data {
							if data[i] != byte(i*13) {
								t.Errorf("rank %d: bcast[%d] wrong under %s", me, i, algo)
								return
							}
						}
					case coll.OpAllreduce:
						x := make([]float64, 300)
						for i := range x {
							x[i] = float64(me + i)
						}
						c.AllreduceF64(x, OpSum)
						for i := range x {
							want := float64(np*i) + float64(np*(np-1)/2)
							if math.Abs(x[i]-want) > 1e-9 {
								t.Errorf("rank %d: allreduce[%d] = %g want %g under %s",
									me, i, x[i], want, algo)
								return
							}
						}
					case coll.OpAllgather:
						mine := []byte(fmt.Sprintf("r%02d", me))
						out := make([][]byte, np)
						for r := range out {
							out[r] = make([]byte, len(mine))
						}
						c.Allgather(mine, out)
						for r := range out {
							if string(out[r]) != fmt.Sprintf("r%02d", r) {
								t.Errorf("rank %d: allgather[%d] = %q under %s", me, r, out[r], algo)
								return
							}
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCollectiveValidation: mismatched arguments fail at the entry point
// with a clear per-operation error.
func TestCollectiveValidation(t *testing.T) {
	cases := []struct {
		name string
		want string // substring of the panic message
		call func(c *Comm)
	}{
		{"BcastRoot", "Bcast: root 7", func(c *Comm) { c.Bcast(7, make([]byte, 4)) }},
		{"IbcastRoot", "Ibcast: root -1", func(c *Comm) { c.Ibcast(-1, make([]byte, 4)) }},
		{"AllreduceNilOp", "AllreduceF64: nil reduction operator",
			func(c *Comm) { c.AllreduceF64(make([]float64, 2), nil) }},
		{"AllgatherCount", "Allgather: out has 3 blocks for communicator size 2",
			func(c *Comm) { c.Allgather(make([]byte, 4), make([][]byte, 3)) }},
		{"IallgatherSelf", "Iallgather: out[0] is 2 bytes but this rank contributes 4",
			func(c *Comm) {
				c.Iallgather(make([]byte, 4), [][]byte{make([]byte, 2), make([]byte, 4)})
			}},
		{"AlltoallCount", "Alltoall: send has 1 blocks, recv 2",
			func(c *Comm) { c.Alltoall(make([][]byte, 1), make([][]byte, 2)) }},
		{"GatherCount", "Gather: out has 5 blocks for communicator size 2",
			func(c *Comm) { c.Gather(0, make([]byte, 1), make([][]byte, 5)) }},
		{"IscatterSelf", "Iscatter: blocks[0] is 1 bytes but buf is 3",
			func(c *Comm) {
				c.Iscatter(0, [][]byte{make([]byte, 1), make([]byte, 3)}, make([]byte, 3))
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var msg string
			_, err := Run(xeonCfg(2, cluster.MPICH2NmadIB()), func(c *Comm) {
				if c.Rank() != 0 {
					return
				}
				defer func() {
					if r := recover(); r != nil {
						msg = fmt.Sprint(r)
					}
				}()
				tc.call(c)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(msg, tc.want) {
				t.Errorf("panic %q does not contain %q", msg, tc.want)
			}
		})
	}
}

// TestAliasedAlltoallBypassesCache: fully aliased block views (NAS IS's
// class-size volume exchange shares one workspace block across all peers)
// must not enter the schedule cache — positional rebinding cannot tell
// identical regions apart, so a cached aliased schedule would poison a
// later same-key call with distinct blocks. The aliased call compiles a
// throwaway schedule; the distinct-block shape before and after it stays
// cached and correct.
func TestAliasedAlltoallBypassesCache(t *testing.T) {
	const np, b = 4, 8
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		distinct := func(tag byte) ([][]byte, [][]byte) {
			send := make([][]byte, np)
			recv := make([][]byte, np)
			for r := range send {
				send[r] = make([]byte, b)
				for i := range send[r] {
					send[r][i] = tag + byte(me)
				}
				recv[r] = make([]byte, b)
			}
			return send, recv
		}
		verify := func(step string, recv [][]byte, tag byte) {
			for r := range recv {
				for i := range recv[r] {
					if recv[r][i] != tag+byte(r) {
						t.Errorf("rank %d %s: recv[%d][%d] = %d, want %d",
							me, step, r, i, recv[r][i], tag+byte(r))
						return
					}
				}
			}
		}

		s1, r1 := distinct(10)
		c.Alltoall(s1, r1)
		verify("before aliased call", r1, 10)

		// IS-style volume exchange: every block is the same shared buffer
		// on both sides. Data is garbage by design; the call must neither
		// panic nor poison the cache entry for this shape.
		shared := make([]byte, b)
		sharedIn := make([]byte, b)
		aliasedS := make([][]byte, np)
		aliasedR := make([][]byte, np)
		for r := range aliasedS {
			aliasedS[r] = shared
			aliasedR[r] = sharedIn
		}
		c.Alltoall(aliasedS, aliasedR)

		s2, r2 := distinct(100)
		c.Alltoall(s2, r2)
		verify("after aliased call", r2, 100)

		if compiles, hits := c.SchedCacheStats(); compiles != 2 || hits != 1 {
			t.Errorf("rank %d: compiles/hits = %d/%d, want 2/1 (aliased call compiled uncached)",
				me, compiles, hits)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInPlaceAllgatherBypassesCache: aliasing *across* argument slots —
// mine being out[rank], the natural in-place allgather shape — must bypass
// the cache exactly like within-list aliasing: the flattened buffer-args
// view the rebinder sees holds two identical regions, which positional
// rebinding cannot tell apart on a later same-key call.
func TestInPlaceAllgatherBypassesCache(t *testing.T) {
	const np, b = 4, 16
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB()), func(c *Comm) {
		me := c.Rank()
		mkOut := func(tag byte) [][]byte {
			out := make([][]byte, np)
			for r := range out {
				out[r] = make([]byte, b)
			}
			for i := range out[me] {
				out[me][i] = tag + byte(me)
			}
			return out
		}
		verify := func(step string, out [][]byte, tag byte) {
			for r := range out {
				if out[r][0] != tag+byte(r) || out[r][b-1] != tag+byte(r) {
					t.Errorf("rank %d %s: out[%d] = %v, want filled with %d",
						me, step, r, out[r][:2], tag+byte(r))
					return
				}
			}
		}

		// In-place: mine aliases out[me].
		inPlace := mkOut(10)
		c.Allgather(inPlace[me], inPlace)
		verify("in-place", inPlace, 10)

		// Same key, fully distinct buffers: must not inherit a schedule
		// compiled over the aliased layout.
		out := mkOut(100)
		mine := make([]byte, b)
		copy(mine, out[me])
		c.Allgather(mine, out)
		verify("distinct after in-place", out, 100)

		if compiles, hits := c.SchedCacheStats(); compiles != 2 || hits != 0 {
			t.Errorf("rank %d: compiles/hits = %d/%d, want 2/0 (in-place call compiled uncached)",
				me, compiles, hits)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
