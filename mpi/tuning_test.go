package mpi

import (
	"strings"
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// TestRunRejectsMalformedTuning: misconfigured tuning fails Run with a
// helpful error instead of panicking mid-collective or silently selecting
// defaults.
func TestRunRejectsMalformedTuning(t *testing.T) {
	cfg := xeonCfg(2, cluster.MPICH2NmadIB())
	cfg.Coll.Force = map[coll.OpKind]coll.Algo{coll.OpBarrier: coll.AlgoRing}
	_, err := Run(cfg, func(c *Comm) {})
	if err == nil || !strings.Contains(err.Error(), "no such builder") {
		t.Fatalf("forced ring barrier: err = %v, want builder complaint", err)
	}

	cfg2 := xeonCfg(2, cluster.MPICH2NmadIB())
	cfg2.Coll.Table = &coll.Table{Stack: "x", Ops: map[string][]coll.TableEntry{
		"bcast": {{MaxBytes: 4096, Algo: coll.AlgoBinomial}}, // no unbounded tail
	}}
	_, err = Run(cfg2, func(c *Comm) {})
	if err == nil || !strings.Contains(err.Error(), "must be unbounded") {
		t.Fatalf("invalid table: err = %v, want unbounded complaint", err)
	}

	var tn coll.Tuning
	if err := tn.LoadTable([]byte(`{"stack":`)); err == nil {
		t.Fatal("LoadTable accepted truncated JSON")
	}
}

// TestTableChangesExecution: a calibrated table redirects the executed
// algorithm end to end — virtual time under the table matches the forced
// algorithm the table names, and differs from the default selection.
func TestTableChangesExecution(t *testing.T) {
	stack := cluster.MPICH2NmadIB()
	const bytes = 64 << 10 // default bcast selection: scatter-allgather
	measure := func(mut func(*Config)) float64 {
		cfg := xeonCfg(8, stack)
		mut(&cfg)
		rep, err := Run(cfg, func(c *Comm) {
			data := make([]byte, bytes)
			c.Bcast(0, data)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	binomialOnly := &coll.Table{Stack: stack.Name, Ops: map[string][]coll.TableEntry{
		"bcast": {{MaxBytes: -1, Algo: coll.AlgoBinomial}},
	}}

	tDefault := measure(func(*Config) {})
	tTable := measure(func(cfg *Config) { cfg.Coll.Table = binomialOnly })
	tBinomial := measure(func(cfg *Config) {
		cfg.Coll.Force = map[coll.OpKind]coll.Algo{coll.OpBcast: coll.AlgoBinomial}
	})
	tSag := measure(func(cfg *Config) {
		cfg.Coll.Force = map[coll.OpKind]coll.Algo{coll.OpBcast: coll.AlgoScatterAllgather}
	})

	if tDefault != tSag {
		t.Errorf("default bcast at 64KB = %.3gs, forced scatter-allgather = %.3gs — expected identical", tDefault, tSag)
	}
	if tTable != tBinomial {
		t.Errorf("tabled bcast = %.3gs, forced binomial = %.3gs — table not honoured", tTable, tBinomial)
	}
	if tTable == tDefault {
		t.Errorf("table did not change execution (both %.3gs)", tTable)
	}
}

// The complementary integration test — the shipped embedded calibration
// running through mpi.Run — lives in internal/coll/tune/tune_test.go:
// importing tune here would cycle (tune → bench → mpi).
