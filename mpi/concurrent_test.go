package mpi

import (
	"testing"

	"repro/cluster"
)

// TestConcurrentNbcSiblingComms exercises the schedule cache under
// concurrent compile/rebind: every rank keeps nonblocking collectives in
// flight on two sibling Split communicators plus the parent at once, over
// several iterations (rebind of cached schedules while others compile),
// and finishes with two same-shape operations outstanding on one
// communicator (the in-flight entry forces a throwaway compile). Run under
// -race in CI, where the PIOMan progress threads advance rounds while the
// application threads start and wait on requests.
func TestConcurrentNbcSiblingComms(t *testing.T) {
	const np = 8
	_, err := Run(xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true)), func(c *Comm) {
		me := c.Rank()
		evens := c.Split(me%2, me)  // {0,2,4,6} / {1,3,5,7}
		thirds := c.Split(me%3, me) // {0,3,6} / {1,4,7} / {2,5}

		evenSum := 12.0 // 0+2+4+6
		if me%2 == 1 {
			evenSum = 16.0
		}
		thirdSums := []float64{9, 12, 7}
		thirdSum := thirdSums[me%3]

		for iter := 0; iter < 5; iter++ {
			x := make([]float64, 256)
			y := make([]float64, 128)
			for i := range x {
				x[i] = float64(me)
			}
			for i := range y {
				y[i] = float64(me)
			}
			data := make([]byte, 4<<10)
			if me == 0 {
				for i := range data {
					data[i] = byte(iter)
				}
			}
			q1 := evens.IallreduceF64(x, OpSum)
			q2 := thirds.IallreduceF64(y, OpSum)
			q3 := c.Ibcast(0, data)
			c.Compute(50e-6)
			c.WaitAll(q1, q2, q3)
			if x[0] != evenSum || x[len(x)-1] != evenSum {
				t.Errorf("rank %d iter %d: evens allreduce = %g, want %g", me, iter, x[0], evenSum)
			}
			if y[0] != thirdSum {
				t.Errorf("rank %d iter %d: thirds allreduce = %g, want %g", me, iter, y[0], thirdSum)
			}
			if data[0] != byte(iter) || data[len(data)-1] != byte(iter) {
				t.Errorf("rank %d iter %d: bcast payload %d, want %d", me, iter, data[0], iter)
			}
		}

		// Two same-shape operations in flight on one communicator: the
		// cached entry is busy, so the second compiles a throwaway schedule
		// while the first still runs.
		a := make([]float64, 64)
		b := make([]float64, 64)
		for i := range a {
			a[i] = 1
			b[i] = 2
		}
		qa := evens.IallreduceF64(a, OpSum)
		qb := evens.IallreduceF64(b, OpSum)
		c.WaitAll(qa, qb)
		if a[0] != 4 || b[0] != 8 {
			t.Errorf("rank %d: overlapped same-shape allreduces = %g/%g, want 4/8", me, a[0], b[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
