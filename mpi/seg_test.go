package mpi

import (
	"math"
	"testing"

	"repro/cluster"
	"repro/internal/coll"
)

// segCfg builds a config that forces the segmented algorithms for bcast
// and allreduce at a given segment size.
func segCfg(np, seg int, noCache bool) Config {
	cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
	cfg.Coll.Force = map[coll.OpKind]coll.Algo{
		coll.OpBcast:     coll.AlgoChain,
		coll.OpAllreduce: coll.AlgoSegRing,
	}
	cfg.Coll.SegBytes = seg
	cfg.NoSchedCache = noCache
	return cfg
}

// TestSegmentedSchedCacheRebind: repeated segmented collectives with fresh
// buffers compile exactly once and rebind thereafter — the per-segment
// sub-slices the pipelined builders take must all retarget onto the new
// buffers, and the data must stay correct on every repeat.
func TestSegmentedSchedCacheRebind(t *testing.T) {
	const np, sz = 4, 40 << 10 // 40KB over 4KB segments: 10 segments
	_, err := Run(segCfg(np, 4<<10, false), func(c *Comm) {
		me := c.Rank()
		c.Bcast(0, make([]byte, sz))
		c.AllreduceF64(make([]float64, sz/8), OpSum)
		compiles0, _ := c.SchedCacheStats()

		const reps = 3
		for i := 0; i < reps; i++ {
			// Fresh buffers each round: reuse must come from rebinding.
			data := make([]byte, sz)
			if me == 0 {
				for j := range data {
					data[j] = byte(j*13 + i)
				}
			}
			c.Bcast(0, data)
			for j := range data {
				if data[j] != byte(j*13+i) {
					t.Errorf("rank %d rep %d: chain bcast byte %d = %d, want %d",
						me, i, j, data[j], byte(j*13+i))
					return
				}
			}
			x := make([]float64, sz/8)
			for j := range x {
				x[j] = float64(me + j + i)
			}
			c.AllreduceF64(x, OpSum)
			for j := range x {
				want := float64(np*(j+i)) + float64(np*(np-1)/2)
				if math.Abs(x[j]-want) > 1e-9 {
					t.Errorf("rank %d rep %d: segring allreduce[%d] = %g, want %g",
						me, i, j, x[j], want)
					return
				}
			}
		}
		compiles, hits := c.SchedCacheStats()
		if compiles != compiles0 {
			t.Errorf("rank %d: %d new compiles on repeated segmented shapes, want 0",
				me, compiles-compiles0)
		}
		if want := int64(2 * reps); hits < want {
			t.Errorf("rank %d: %d cache hits, want >= %d", me, hits, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedSchedCacheDeterminism: cached and uncached runs of the
// pipelined builders produce identical virtual time — compilation and
// rebinding stay host work for segmented schedules too (the cached≡uncached
// contract extended to the pipelined builders).
func TestSegmentedSchedCacheDeterminism(t *testing.T) {
	workload := func(c *Comm) {
		data := make([]byte, 96<<10)
		x := make([]float64, 6<<10)
		for iter := 0; iter < 3; iter++ {
			q := c.IallreduceF64(x, OpSum) // segmented ring under PIOMan
			c.Compute(60e-6)
			c.Wait(q)
			c.Bcast(0, data) // pipelined chain
			c.Wait(c.Ibcast(0, data))
		}
	}
	measure := func(noCache bool) float64 {
		rep, err := Run(segCfg(8, 8<<10, noCache), workload)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	cached, uncached := measure(false), measure(true)
	if cached != uncached {
		t.Fatalf("segmented cached run %.9fs != uncached run %.9fs", cached, uncached)
	}
}

// TestSegmentedSegChangesKey: the same shape at a different -seg is a
// different schedule — ranks running under different SegBytes settings
// compile distinct keys (asserted at the coll level in
// TestKeyForSegmented), and end to end a different segment size changes
// the compile count on a fresh communicator rather than rebinding across
// seg values.
func TestSegmentedSegChangesKey(t *testing.T) {
	count := func(seg int) int64 {
		var compiles int64
		_, err := Run(segCfg(2, seg, false), func(c *Comm) {
			c.Bcast(0, make([]byte, 32<<10))
			c.Bcast(0, make([]byte, 32<<10))
			if c.Rank() == 0 {
				compiles, _ = c.SchedCacheStats()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return compiles
	}
	if c4, c16 := count(4<<10), count(16<<10); c4 != 1 || c16 != 1 {
		t.Fatalf("compiles = %d/%d, want 1/1 (second call rebinds within one seg value)", c4, c16)
	}
	// Different seg values really execute different pipelines: virtual time
	// must differ for a payload spanning several segments.
	tOf := func(seg int) float64 {
		rep, err := Run(segCfg(8, seg, false), func(c *Comm) {
			c.Bcast(0, make([]byte, 1<<20))
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	if t4, t64 := tOf(4<<10), tOf(64<<10); t4 == t64 {
		t.Fatalf("seg 4K and 64K bcast identical (%.9fs) — segment size not reaching the builder", t4)
	}
}

// TestSegmentedNonblockingForms: the I* forms execute the identical
// segmented round programs on the nbc engine — results stay exact with
// computation overlapped under PIOMan, and concurrent segmented
// collectives on one communicator never cross-match (per-segment rounds
// multiply the in-flight transfers, the regime PIOMan exists for).
func TestSegmentedNonblockingForms(t *testing.T) {
	const np, sz = 4, 64 << 10
	_, err := Run(segCfg(np, 4<<10, false), func(c *Comm) {
		me := c.Rank()
		for iter := 0; iter < 2; iter++ {
			data := make([]byte, sz)
			if me == 0 {
				for j := range data {
					data[j] = byte(j*11 + iter)
				}
			}
			x := make([]float64, sz/8)
			for j := range x {
				x[j] = float64(me*1000 + j)
			}
			qb := c.Ibcast(0, data)
			qa := c.IallreduceF64(x, OpSum)
			c.Compute(100e-6) // the pipelines advance in the background
			c.WaitAll(qb, qa)
			for j := range data {
				if data[j] != byte(j*11+iter) {
					t.Errorf("rank %d iter %d: Ibcast(chain) byte %d = %d, want %d",
						me, iter, j, data[j], byte(j*11+iter))
					return
				}
			}
			for j := range x {
				want := float64(np*j) + 1000*float64(np*(np-1)/2)
				if math.Abs(x[j]-want) > 1e-9 {
					t.Errorf("rank %d iter %d: Iallreduce(segring)[%d] = %g, want %g",
						me, iter, j, x[j], want)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
