package mpi

import (
	"bytes"
	"testing"

	"repro/cluster"
	"repro/internal/topo"
	"repro/internal/trace"
)

// tracedWorkload exercises most instrumented paths: blocking and
// nonblocking collectives (cache hits included), point-to-point, compute
// and a user mark.
func tracedWorkload(c *Comm) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(c.Rank() + i)
	}
	c.Barrier()
	c.Mark("iter:start")
	c.AllreduceF64(x, OpSum)
	q := c.IallreduceF64(x, OpSum)
	c.Compute(100e-6)
	c.Wait(q)
	c.AllreduceF64(x, OpSum) // cache hit
	if c.Rank() == 0 {
		c.Send(1, 5, make([]byte, 4096))
	} else if c.Rank() == 1 {
		c.Recv(0, 5, make([]byte, 4096))
	}
	c.Mark("iter:end")
	c.Barrier()
}

// runTraced runs the workload on np ranks of the PIOMan stack with a fresh
// trace and returns the trace and report.
func runTraced(t *testing.T, np int) (*trace.Trace, *Report) {
	t.Helper()
	tr := trace.New()
	cfg := xeonCfg(np, cluster.MPICH2NmadIB().WithPIOMan(true))
	cfg.Placement = topo.RoundRobin(np, cluster.Xeon2().NumNodes)
	cfg.Trace = tr
	rep, err := Run(cfg, tracedWorkload)
	if err != nil {
		t.Fatal(err)
	}
	return tr, rep
}

// TestTraceDeterminism: two identical traced runs export byte-identical
// Chrome traces — the end-to-end determinism guarantee of the tracing layer.
func TestTraceDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	ta, _ := runTraced(t, 4)
	if err := trace.WriteChrome(&a, ta); err != nil {
		t.Fatal(err)
	}
	tb, _ := runTraced(t, 4)
	if err := trace.WriteChrome(&b, tb); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical runs exported different trace bytes")
	}
}

// TestTraceNeutrality: recording a trace never charges virtual time, so a
// traced and an untraced run finish at the bit-identical virtual instant,
// across progress regimes.
func TestTraceNeutrality(t *testing.T) {
	for _, stack := range []cluster.Stack{
		cluster.MPICH2NmadIB(),
		cluster.MPICH2NmadIB().WithPIOMan(true),
		cluster.MVAPICH2(),
	} {
		stack := stack
		t.Run(stack.Name, func(t *testing.T) {
			run := func(tr *trace.Trace) float64 {
				cfg := xeonCfg(4, stack)
				cfg.Placement = topo.RoundRobin(4, cluster.Xeon2().NumNodes)
				cfg.Trace = tr
				rep, err := Run(cfg, tracedWorkload)
				if err != nil {
					t.Fatal(err)
				}
				return rep.Seconds
			}
			plain := run(nil)
			traced := run(trace.New())
			if plain != traced {
				t.Fatalf("tracing perturbed the run: %v (off) != %v (on)", plain, traced)
			}
		})
	}
}

// TestTraceReuseRejected: binding one Trace to a second run fails instead
// of interleaving two engines' timestamps.
func TestTraceReuseRejected(t *testing.T) {
	tr := trace.New()
	cfg := xeonCfg(2, cluster.MPICH2NmadIB())
	cfg.Trace = tr
	if _, err := Run(cfg, func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, func(c *Comm) { c.Barrier() }); err == nil {
		t.Fatal("reusing a bound trace did not error")
	}
}

// TestTraceThreadAttribution: under PIOMan the trace distinguishes the
// application thread from the background progress thread, and the
// background track actually carries progress work.
func TestTraceThreadAttribution(t *testing.T) {
	tr, _ := runTraced(t, 2)
	byTid := map[int]int{}
	sweeps := 0
	for _, ev := range tr.Events() {
		byTid[ev.Tid]++
		if ev.Cat == "pioman" && ev.Name == "sweep" && ev.Ph == 'B' {
			if ev.Tid != trace.TidPioman {
				t.Fatalf("sweep span on tid %d, want %d", ev.Tid, trace.TidPioman)
			}
			sweeps++
		}
	}
	if byTid[trace.TidApp] == 0 || byTid[trace.TidPioman] == 0 {
		t.Fatalf("missing thread tracks: app=%d pioman=%d", byTid[trace.TidApp], byTid[trace.TidPioman])
	}
	if sweeps == 0 {
		t.Fatal("no background sweep spans recorded under PIOMan")
	}
}

// TestTraceSpansBalanced: every rank/tid's B/E spans nest and close — the
// invariant viewers rely on to build flame graphs.
func TestTraceSpansBalanced(t *testing.T) {
	tr, _ := runTraced(t, 4)
	depth := map[[2]int]int{}
	for _, ev := range tr.Events() {
		key := [2]int{ev.Rank, ev.Tid}
		switch ev.Ph {
		case 'B':
			depth[key]++
		case 'E':
			depth[key]--
			if depth[key] < 0 {
				t.Fatalf("unbalanced E on rank %d tid %d", ev.Rank, ev.Tid)
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			t.Fatalf("rank %d tid %d left %d spans open", key[0], key[1], d)
		}
	}
}

// TestReportCounters: the registry-backed snapshot agrees with the
// per-communicator compat views and carries the rail traffic.
func TestReportCounters(t *testing.T) {
	var compiles, hits int64
	tr := trace.New()
	cfg := xeonCfg(2, cluster.MPICH2NmadIB().WithPIOMan(true))
	cfg.Placement = topo.RoundRobin(2, cluster.Xeon2().NumNodes)
	cfg.Trace = tr
	rep, err := Run(cfg, func(c *Comm) {
		tracedWorkload(c)
		if c.Rank() == 0 {
			compiles, hits = c.SchedCacheStats()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Counters()
	if cs.SchedCompiles == 0 || cs.SchedHits == 0 {
		t.Fatalf("cache counters empty: %+v", cs)
	}
	// The registry sums all ranks; the compat view is rank 0 only, read
	// before Run's implicit final Barrier (one more cache hit per rank).
	// Ranks run the same collective sequence, so totals are np × rank 0's.
	if cs.SchedCompiles != 2*compiles || cs.SchedHits != 2*(hits+1) {
		t.Fatalf("registry (%d/%d) disagrees with 2× per-comm stats (%d/%d+1)",
			cs.SchedCompiles, cs.SchedHits, compiles, hits)
	}
	if cs.CacheHitRate <= 0 || cs.CacheHitRate >= 1 {
		t.Fatalf("cache hit rate %v out of (0,1)", cs.CacheHitRate)
	}
	if cs.BgPolls == 0 {
		t.Fatal("no background polls under PIOMan")
	}
	if cs.NbcStarted != 2 || cs.NbcCompleted != 2 {
		t.Fatalf("nbc counters %d/%d, want 2/2", cs.NbcStarted, cs.NbcCompleted)
	}
	if len(cs.Rails) == 0 {
		t.Fatal("no rail counters")
	}
	var bytes int64
	for _, r := range cs.Rails {
		bytes += r.Bytes
	}
	if bytes == 0 {
		t.Fatal("rail counters carry no traffic")
	}
	// Rail counters are mirrored into the run-level registry for Summarize.
	if got := rep.Metrics.Total(trace.RailBytesCtr(cs.Rails[0].Name)); got != cs.Rails[0].Bytes {
		t.Fatalf("run registry rail bytes %d != report %d", got, cs.Rails[0].Bytes)
	}
}

// TestTraceSummary: Summarize folds the traced run into consistent
// aggregates — round timings for executed algorithms and a nonzero overlap
// attribution for the compute-while-nbc window.
func TestTraceSummary(t *testing.T) {
	tr, _ := runTraced(t, 2)
	s := trace.Summarize(tr)
	if s.Events == 0 || s.Ranks != 2 {
		t.Fatalf("summary shape wrong: %d events, %d ranks", s.Events, s.Ranks)
	}
	if len(s.RoundTimings) == 0 {
		t.Fatal("no round timings aggregated")
	}
	for _, rt := range s.RoundTimings {
		if rt.Rounds <= 0 || rt.TotalUS < 0 {
			t.Fatalf("bad round timing %+v", rt)
		}
	}
	if len(s.Overlap) != 2 {
		t.Fatalf("overlap attribution for %d ranks, want 2", len(s.Overlap))
	}
	for _, o := range s.Overlap {
		if o.ComputeUS <= 0 {
			t.Fatalf("rank %d has no compute time", o.Rank)
		}
		if o.OverlapUS > o.ComputeUS || o.OverlapUS > o.NbcUS {
			t.Fatalf("overlap exceeds its parts: %+v", o)
		}
		if o.OverlapUS <= 0 {
			t.Fatalf("rank %d: compute ran alongside an in-flight collective but overlap is 0", o.Rank)
		}
	}
	if s.SchedHits == 0 || s.BgPolls == 0 {
		t.Fatalf("summary counters empty: hits=%d bgpolls=%d", s.SchedHits, s.BgPolls)
	}
}
