// Package mpi is the public API of the MPICH2-NewMadeleine reproduction: it
// runs an SPMD program over a simulated cluster under a selectable MPI stack
// (MPICH2-NewMadeleine with or without PIOMan, MVAPICH2, Open MPI, or the
// generic Nemesis module) and exposes MPI-style point-to-point operations,
// blocking and nonblocking collectives, compute modeling and virtual-time
// measurement.
//
// A minimal program:
//
//	cfg := mpi.Config{Cluster: cluster.Xeon2(), Stack: cluster.MPICH2NmadIB(), NP: 2}
//	report, err := mpi.Run(cfg, func(c *mpi.Comm) {
//		if c.Rank() == 0 {
//			c.Send(1, 0, []byte("hello"))
//		} else {
//			buf := make([]byte, 8)
//			st := c.Recv(0, 0, buf)
//			fmt.Println(string(buf[:st.Len]))
//		}
//	})
//
// Everything runs in deterministic virtual time: Wtime returns simulated
// seconds and repeated runs produce identical timings.
//
// # Collective engine
//
// Every collective — blocking or nonblocking — compiles to a per-rank
// schedule (rounds of {send, recv, copy, reduce} primitives) through the
// internal/coll registry. The algorithm is selected per invocation from
// payload size, rank count and topology: binomial vs scatter-allgather
// broadcast, recursive-doubling vs Rabenseifner allreduce, Bruck vs ring
// allgather, flat vs two-level hierarchical variants (the selection table
// lives in internal/coll/README.md, tunable via Config.Coll). Selection is
// data-driven when a calibrated tuning table is installed (see
// Config.Coll): per-stack crossover thresholds measured by cmd/colltune
// replace the hard-coded MPICH-flavoured defaults. Large messages can run
// *segmented*: the pipelined chain and segmented-binomial broadcasts and
// the segmented ring allreduce split the payload into pipeline segments
// whose per-segment rounds overlap across ranks; the calibrated tables
// pick them (with a per-entry segment size) where they win, and
// Config.Coll.SegBytes forces the granularity.
//
// Schedules are persistent: each communicator caches compiled schedules by
// shape (operation, algorithm, root, counts), so a collective repeated in a
// loop compiles exactly once — later invocations rebind the cached
// schedule to the new buffers and re-execute it. Compilation is host work,
// invisible to virtual time, so cached and uncached runs produce identical
// simulated timings (Config.NoSchedCache turns the cache off to verify).
//
// # Nonblocking collectives
//
// Ibarrier, Ibcast, IallreduceF64, IreduceF64, Iallgather, Ialltoall,
// Igather and Iscatter return a *Request composable with Wait, WaitAll,
// WaitAny and Test. The calling thread issues round 0; every later round
// starts from the progress engine, so the schedule's advancement follows
// the stack's progress regime exactly as the paper's §3.3 describes for
// point-to-point:
//
//   - with PIOMan, the background progress thread picks rounds up on an
//     idle core and the collective overlaps with Compute;
//   - without it, rounds only advance inside MPI calls (Wait/Test), so the
//     collective and the computation serialize.
//
// The canonical overlap pattern:
//
//	q := c.IallreduceF64(x, mpi.OpSum)
//	c.Compute(300e-6) // overlaps with the allreduce under PIOMan
//	c.Wait(q)
//
// # Sub-communicators
//
// Comm.Dup derives a same-group communicator over fresh contexts;
// Comm.Split partitions the group by color, renumbering each part's
// members 0..Size()-1 (SplitNode and SplitLeaders build the node/leader
// communicators of the two-level decomposition). Contexts isolate matching
// completely: traffic on one communicator never matches receives on
// another, even with identical tags.
//
// Config.TwoLevelColl selects topology-aware collectives: when several
// ranks share a node, the intra-node phase runs over shared memory and only
// one leader per node touches the network rails (Barrier, Bcast,
// AllreduceF64, Allgather, Alltoall and their nonblocking counterparts).
package mpi

import (
	"fmt"

	"repro/cluster"
	"repro/internal/ch3"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/marcel"
	"repro/internal/nemesis"
	"repro/internal/nmad"
	"repro/internal/pioman"
	"repro/internal/simnet"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Wildcards, re-exported.
const (
	AnySource = int(ch3.AnySource)
	AnyTag    = int(ch3.AnyTag)
)

// Config describes one run.
type Config struct {
	// Cluster is the simulated testbed.
	Cluster topo.Cluster
	// Placement maps ranks to nodes; defaults to round-robin.
	Placement topo.Placement
	// Stack selects the MPI implementation model.
	Stack cluster.Stack
	// NP is the number of ranks.
	NP int
	// TwoLevelColl enables the topology-aware two-level collectives: the
	// intra-node phase runs over shared memory, only per-node leaders touch
	// the network rails. Applies to Barrier, Bcast, AllreduceF64, Allgather,
	// Alltoall and their nonblocking counterparts when several ranks share a
	// node.
	TwoLevelColl bool
	// Coll tunes collective algorithm selection: forced algorithms,
	// threshold overrides, and calibrated per-stack tuning tables. The zero
	// value selects the defaults documented in internal/coll/README.md. A
	// table loads from a colltune-emitted JSON file via
	// cfg.Coll.LoadTable(data), or from the embedded per-stack calibrations
	// via cfg.Coll.Table = tune.TableFor(cfg.Stack.Name). Run fills
	// Coll.Stack from Stack.Name (when unset) so the stack identity flows
	// into selection and every coll.Key, and rejects malformed tuning
	// (unregistered forced algorithms, invalid tables) with an error
	// instead of silently falling back.
	Coll coll.Tuning
	// NoSchedCache disables the per-communicator persistent-schedule cache,
	// recompiling every collective invocation. Virtual-time results are
	// identical either way; the switch exists for verification and
	// benchmarking.
	NoSchedCache bool
	// NoPooling disables the hot-path free lists (CH3 requests, shm jobs,
	// nbc ops): every operation allocates fresh. Virtual-time results are
	// identical either way; the switch exists for neutrality verification
	// and allocation benchmarking.
	NoPooling bool
	// Pioman tunes background progression beyond the stack's regime
	// defaults. The zero value is the classic single-worker behavior.
	Pioman PiomanConfig
	// Trace, when set, records a deterministic virtual-time event trace of
	// the run (MPI entry points, protocol phases, progress passes,
	// collective rounds). Create with trace.New(); export afterwards with
	// trace.WriteChrome / trace.Summarize. Each Trace binds to exactly one
	// run. Tracing is behavior-neutral: virtual-time results are identical
	// with it on or off.
	Trace *trace.Trace
}

// PiomanConfig tunes the PIOMan progress engine.
type PiomanConfig struct {
	// Workers is the number of background progression workers per rank
	// (0 and 1 both mean the classic single worker). Each worker is its own
	// simulated thread (trace tracks pioman-0..N-1): sources and deferred
	// collective rounds are sharded across workers by registration order
	// and communicator context, and idle workers steal from loaded queues.
	// Requires a stack with PIOMan enabled when > 1 — the polling regime
	// has no background procs to multiply.
	Workers int
}

// RailStat summarizes one rail's traffic after a run.
type RailStat struct {
	Name    string
	Packets int64
	Bytes   int64
}

// Report is returned by Run.
type Report struct {
	// Seconds is the virtual time at which the simulation drained.
	Seconds float64
	// Events is the total number of simulation events the engine scheduled:
	// a deterministic (noise-free) proxy for host-side work, bit-identical
	// across repetitions of the same configuration.
	Events int64
	// Rails holds per-rail traffic statistics.
	Rails []RailStat
	// Metrics holds the run's counter registries (always populated): per-rank
	// progress/collective statistics plus run-level rail traffic.
	Metrics *trace.Metrics
}

// RailCounter is one rail's traffic in a counter snapshot.
type RailCounter struct {
	Name    string `json:"name"`
	Packets int64  `json:"packets"`
	Bytes   int64  `json:"bytes"`
}

// CounterSnapshot condenses a run's registries into the observability
// numbers benchmark JSON rows carry: schedule-cache effectiveness, the
// app/background poll split, nonblocking-collective activity and per-rail
// traffic.
type CounterSnapshot struct {
	SchedCompiles int64   `json:"sched_compiles"`
	SchedHits     int64   `json:"sched_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	AppPolls      int64   `json:"app_polls"`
	AppEvents     int64   `json:"app_events"`
	BgPolls       int64   `json:"bg_polls"`
	BgEvents      int64   `json:"bg_events"`
	BgTasks       int64   `json:"bg_tasks"`
	BgSteals      int64   `json:"bg_steals"`
	NbcStarted    int64   `json:"nbc_started"`
	NbcCompleted  int64   `json:"nbc_completed"`
	NbcBGRounds   int64   `json:"nbc_bg_rounds"`
	ReqPoolHits   int64   `json:"req_pool_hits"`
	ReqPoolMisses int64   `json:"req_pool_misses"`
	OpPoolHits    int64   `json:"op_pool_hits"`
	OpPoolMisses  int64   `json:"op_pool_misses"`
	ReqInFlight   int64   `json:"req_in_flight_peak"`
	// Workers breaks background progression down per PIOMan worker
	// (cross-rank totals; empty for polling-regime runs).
	Workers []WorkerCounter `json:"workers,omitempty"`
	Rails   []RailCounter   `json:"rails,omitempty"`
}

// WorkerCounter is one PIOMan worker's cross-rank sweep statistics.
type WorkerCounter struct {
	Worker int   `json:"worker"`
	Polls  int64 `json:"polls"`
	Events int64 `json:"events"`
	Tasks  int64 `json:"tasks"`
	Steals int64 `json:"steals"`
}

// Counters snapshots the report's metrics registries.
func (rep *Report) Counters() *CounterSnapshot {
	m := rep.Metrics
	cs := &CounterSnapshot{
		SchedCompiles: m.Total(trace.CtrSchedCompiles),
		SchedHits:     m.Total(trace.CtrSchedHits),
		AppPolls:      m.Total(trace.CtrAppPolls),
		AppEvents:     m.Total(trace.CtrAppEvents),
		BgPolls:       m.Total(trace.CtrBgPolls),
		BgEvents:      m.Total(trace.CtrBgEvents),
		BgTasks:       m.Total(trace.CtrBgTasks),
		BgSteals:      m.Total(trace.CtrBgSteals),
		NbcStarted:    m.Total(trace.CtrNbcStarted),
		NbcCompleted:  m.Total(trace.CtrNbcCompleted),
		NbcBGRounds:   m.Total(trace.CtrNbcBGRounds),
		ReqPoolHits:   m.Total(trace.CtrReqPoolHits),
		ReqPoolMisses: m.Total(trace.CtrReqPoolMisses),
		OpPoolHits:    m.Total(trace.CtrOpPoolHits),
		OpPoolMisses:  m.Total(trace.CtrOpPoolMisses),
		ReqInFlight:   m.GaugePeak(trace.GaugeReqsInFlight),
	}
	if n := cs.SchedCompiles + cs.SchedHits; n > 0 {
		cs.CacheHitRate = float64(cs.SchedHits) / float64(n)
	}
	for i := 0; i < int(m.GaugePeak(trace.GaugeWorkers)); i++ {
		cs.Workers = append(cs.Workers, WorkerCounter{
			Worker: i,
			Polls:  m.Total(trace.CtrWorkerPolls(i)),
			Events: m.Total(trace.CtrWorkerEvents(i)),
			Tasks:  m.Total(trace.CtrWorkerTasks(i)),
			Steals: m.Total(trace.CtrWorkerSteals(i)),
		})
	}
	for _, r := range rep.Rails {
		cs.Rails = append(cs.Rails, RailCounter{Name: r.Name, Packets: r.Packets, Bytes: r.Bytes})
	}
	return cs
}

// Run executes main once per rank over the configured stack and cluster. It
// returns when the simulation drains; an *vtime.DeadlockError means the MPI
// program deadlocked (with the blocked ranks listed).
func Run(cfg Config, main func(*Comm)) (*Report, error) {
	if cfg.NP <= 0 {
		return nil, fmt.Errorf("mpi: NP = %d", cfg.NP)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.Coll.Stack == "" {
		cfg.Coll.Stack = cfg.Stack.Name
	}
	if cfg.Coll.Rails == nil {
		// Hand the stack's rail profile to collective selection: on multirail
		// stacks the striped builders deal segments across these (weighted by
		// bandwidth), and the profile enters every striped coll.Key. A
		// single-rail profile disables striping outright, so single-rail runs
		// compile bit-identical schedules.
		for _, rp := range cfg.Stack.Rails {
			cfg.Coll.Rails = append(cfg.Coll.Rails, coll.RailInfo{
				Name:        rp.Name,
				LatencyNS:   int64(rp.Latency),
				BytesPerSec: rp.BytesPerSec,
			})
		}
	}
	if err := cfg.Coll.Validate(); err != nil {
		return nil, fmt.Errorf("mpi: %v", err)
	}
	if cfg.Pioman.Workers < 0 {
		return nil, fmt.Errorf("mpi: Pioman.Workers = %d", cfg.Pioman.Workers)
	}
	if cfg.Pioman.Workers > 1 && !cfg.Stack.PIOMan {
		return nil, fmt.Errorf("mpi: Pioman.Workers = %d needs a PIOMan stack (%q polls on the application thread)",
			cfg.Pioman.Workers, cfg.Stack.Name)
	}
	placement := cfg.Placement
	if placement == nil {
		placement = topo.RoundRobin(cfg.NP, cfg.Cluster.NumNodes)
	}
	if len(placement) != cfg.NP {
		return nil, fmt.Errorf("mpi: placement covers %d ranks, NP = %d", len(placement), cfg.NP)
	}
	if err := placement.Validate(cfg.Cluster); err != nil {
		return nil, err
	}
	cfg.Placement = placement // hand the resolved placement to the comms
	if len(cfg.Stack.Rails) == 0 && cfg.NP > 1 && needsNetwork(placement) {
		return nil, fmt.Errorf("mpi: stack %q has no rails but ranks span nodes", cfg.Stack.Name)
	}

	e := vtime.NewEngine()
	net, err := simnet.New(e, cfg.Cluster.NumNodes, cfg.Stack.Rails...)
	if err != nil {
		return nil, err
	}
	if !cfg.Cluster.Hierarchy.Flat() {
		// Rack/switch tiers: rails whose params carry per-level costs now
		// charge them by node-pair distance.
		net.SetDistance(cfg.Cluster.Hierarchy.Distance)
	}

	// Counter registries always exist (counters cost what the old ad-hoc
	// stat fields did); event recorders only when a Trace is configured.
	met := trace.NewMetrics(cfg.NP)
	recs := make([]*trace.Recorder, cfg.NP)
	if cfg.Trace != nil {
		if err := cfg.Trace.Bind(e, cfg.NP); err != nil {
			return nil, fmt.Errorf("mpi: %v", err)
		}
		cfg.Trace.AttachMetrics(met)
		for r := range recs {
			recs[r] = cfg.Trace.Recorder(r)
		}
	}

	nodes := make([]*marcel.Node, cfg.Cluster.NumNodes)
	for i := range nodes {
		nodes[i] = marcel.NewNode(e, fmt.Sprintf("node%d", i), cfg.Cluster.CoresPerNode)
	}

	// Shared-memory endpoints for co-located ranks.
	eps := make([]*nemesis.Endpoint, cfg.NP)
	for n := 0; n < cfg.Cluster.NumNodes; n++ {
		local := placement.RanksOnNode(n)
		if len(local) < 2 {
			continue
		}
		for _, r := range local {
			shmOpt := cfg.Stack.Shm
			shmOpt.Rec = recs[r]
			ep, err := nemesis.NewEndpoint(e, r, shmOpt)
			if err != nil {
				return nil, err
			}
			eps[r] = ep
		}
		for _, a := range local {
			for _, b := range local {
				if a != b {
					eps[a].ConnectLocal(eps[b])
				}
			}
		}
	}

	mgrs := make([]*pioman.Manager, cfg.NP)
	procs := make([]*ch3.Process, cfg.NP)
	for r := 0; r < cfg.NP; r++ {
		node := nodes[placement.NodeOf(r)]
		pioCfg := cfg.Stack.PioConfig()
		pioCfg.Workers = cfg.Pioman.Workers
		pioCfg.Metrics = met.Rank(r)
		pioCfg.Rec = recs[r]
		mgrs[r] = pioman.New(e, node, fmt.Sprintf("rank%d", r), pioCfg)
		r := r
		same := func(q int) bool { return q != r && placement.SameNode(r, q) }
		ch3Cfg := cfg.Stack.CH3
		ch3Cfg.Rec = recs[r]
		ch3Cfg.Metrics = met.Rank(r)
		ch3Cfg.NoPooling = cfg.NoPooling
		procs[r] = ch3.NewProcess(e, r, cfg.NP, mgrs[r], eps[r], same, ch3Cfg)
	}

	if err := wireBackend(cfg, e, net, placement, mgrs, procs, recs); err != nil {
		return nil, err
	}

	// Spawn application threads; the last rank to finish stops the progress
	// managers so the engine can drain (MPI_Finalize semantics: a barrier
	// precedes teardown).
	finished := 0
	for r := 0; r < cfg.NP; r++ {
		r := r
		ap := e.Spawn(fmt.Sprintf("app%d", r), func(p *vtime.Proc) {
			c := newComm(cfg, p, procs[r], nodes[placement.NodeOf(r)], mgrs[r],
				recs[r], met.Rank(r))
			main(c)
			c.Barrier()
			finished++
			if finished == cfg.NP {
				for _, m := range mgrs {
					m.Stop()
				}
			}
		})
		ap.SetLabel(trace.TidApp)
	}

	if err := e.Run(); err != nil {
		return nil, err
	}

	rep := &Report{Seconds: e.Now().Seconds(), Events: e.Events(), Metrics: met}
	for _, rail := range net.Rails() {
		rep.Rails = append(rep.Rails, RailStat{
			Name: rail.Params.Name, Packets: rail.Packets, Bytes: rail.BytesSent,
		})
		met.Run.Counter(trace.RailPacketsCtr(rail.Params.Name)).Add(rail.Packets)
		met.Run.Counter(trace.RailBytesCtr(rail.Params.Name)).Add(rail.BytesSent)
	}
	return rep, nil
}

func needsNetwork(p topo.Placement) bool {
	for i := 1; i < len(p); i++ {
		if p[i] != p[0] {
			return true
		}
	}
	return false
}

// wireBackend instantiates the configured network backend for every rank.
func wireBackend(cfg Config, e *vtime.Engine, net *simnet.Network,
	placement topo.Placement, mgrs []*pioman.Manager, procs []*ch3.Process,
	recs []*trace.Recorder) error {

	switch cfg.Stack.Backend {
	case cluster.BackendDirect, cluster.BackendGenericNmad:
		cores := make([]*nmad.Core, cfg.NP)
		// Gates are established lazily on first traffic through the Peer
		// resolver — an all-pairs Connect pass here would cost O(NP²) gates
		// while a log-depth collective touches O(log NP) peers per rank.
		resolve := func(rank int) *nmad.Core { return cores[rank] }
		for r := 0; r < cfg.NP; r++ {
			mgr := mgrs[r]
			// The core's deferred work and arrival notifications route to
			// the worker shard the source lands on; coreShard is assigned by
			// Register below, before any traffic can invoke the closures.
			var coreShard int
			cores[r] = nmad.New(e, r, placement.NodeOf(r), nmad.Options{
				Strategy:     cfg.Stack.Strategy,
				RdvThreshold: cfg.Stack.RdvThreshold,
				AggregMax:    cfg.Stack.AggregMax,
				Rails:        net.Rails(),
				MemBW:        cfg.Stack.Shm.MemBW,
				Peer:         resolve,
				PostTask: func(cost vtime.Duration, run func()) {
					mgr.PostTaskShard(coreShard, pioman.Task{Cost: cost, Run: run})
				},
				Notify: func() { mgr.NotifyShard(coreShard) },
				Rec:    recs[r],
			})
			coreShard = mgrs[r].Register(cores[r], pioman.ClassNet)
		}
		for r := 0; r < cfg.NP; r++ {
			if cfg.Stack.Backend == cluster.BackendDirect {
				core.NewDirect(procs[r], cores[r], cfg.Stack.Direct)
			} else {
				core.NewGenericNmad(procs[r], cores[r], cfg.Stack.Packet)
			}
		}
	case cluster.BackendPacket:
		backends := make([]*core.Packet, cfg.NP)
		for r := 0; r < cfg.NP; r++ {
			backends[r] = core.NewPacket(procs[r], e, net, placement.NodeOf(r),
				mgrs[r], cfg.Stack.Packet)
		}
		core.LinkPacketPeers(backends)
	default:
		return fmt.Errorf("mpi: unknown backend %d", cfg.Stack.Backend)
	}
	return nil
}
